#!/bin/sh
# validatecheck.sh — run the ground-truth validation sweep and gate it on
# the checked-in accuracy floors (scripts/validatefloor.txt). Simulator
# scenarios with authoritative event records go through the full T-DAT
# pipeline; the inferred series, delay factors, verdicts, and detectors are
# scored against the recorded truth. A non-zero exit means the analyzer
# regressed against the simulator.
#
# Usage: sh scripts/validatecheck.sh [outdir] [quick|full]
# Writes scorecard.txt and validate.json into outdir (default: ./validate).
# Mode defaults to quick (the CI mode; full is the local investigation grid).
set -eu

dir=${1:-validate}
mode=${2:-quick}
floors=$(dirname "$0")/validatefloor.txt
mkdir -p "$dir"

flags="-floors $floors -json $dir/validate.json"
case $mode in
quick) flags="$flags -quick -stacks all -stack-table $dir/stacktable.md" ;;
full) flags="$flags -stacks all -stack-table $dir/stacktable.md" ;;
*)
	echo "validatecheck.sh: unknown mode \"$mode\" (want quick or full)" >&2
	exit 2
	;;
esac

# shellcheck disable=SC2086 # flags is a deliberate word list
go run ./cmd/validate $flags | tee "$dir/scorecard.txt"

#!/bin/sh
# covercheck.sh — enforce per-package statement-coverage floors on the
# ingest-path packages. The floors are checked in (scripts/coverfloor.txt)
# and sit a couple of points below measured coverage, so the check trips on
# genuine erosion — a new code path with no test — not on noise.
#
# Usage: sh scripts/covercheck.sh [coverdir]
# Writes per-package profiles plus a merged cover.html into coverdir
# (default: ./cover).
set -eu

dir=${1:-cover}
floors=$(dirname "$0")/coverfloor.txt
mkdir -p "$dir"

fail=0
merged="$dir/cover.out"
echo "mode: set" > "$merged"
while read -r pkg floor; do
	case $pkg in ''|\#*) continue ;; esac
	profile="$dir/$(echo "$pkg" | tr / _).out"
	go test -coverprofile="$profile" "./$pkg" > /dev/null
	grep -v '^mode:' "$profile" >> "$merged"
	pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
	ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN {print (p >= f) ? 1 : 0}')
	if [ "$ok" = 1 ]; then
		echo "ok   $pkg ${pct}% (floor ${floor}%)"
	else
		echo "FAIL $pkg ${pct}% below floor ${floor}%" >&2
		fail=1
	fi
done < "$floors"

go tool cover -html="$merged" -o "$dir/cover.html"
exit "$fail"

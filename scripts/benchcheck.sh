#!/bin/sh
# benchcheck.sh — run the performance-gate benchmarks and enforce the
# checked-in floors (scripts/benchfloor.txt). Two kinds of floor keep the
# hot path honest:
#
#   - allocs/op ceilings are machine-independent and tight: the zero-copy
#     decode and pcap record loop must stay at 0 allocs/op, and whole-
#     pipeline allocations may not creep back toward the pre-zero-copy
#     count.
#   - conns/sec minimums and ns/op ceilings are deliberately loose (CI
#     runners vary severalfold in speed); they catch order-of-magnitude
#     regressions, not noise.
#
# Usage: sh scripts/benchcheck.sh [outdir]
# Writes the raw benchmark output (bench.txt) and a parsed JSON snapshot
# (BENCH_speed.json) into outdir (default: ./bench). The checked-in
# BENCH_speed.json at the repo root is the performance trajectory: refresh
# it from a quiet local machine when a PR moves these numbers.
set -eu

dir=${1:-bench}
floors=$(dirname "$0")/benchfloor.txt
mkdir -p "$dir"
raw="$dir/bench.txt"

# Pipeline throughput + shard sweep (root package), then the zero-copy
# microbenchmarks. -benchtime counts both in iterations-or-seconds; 1s is
# enough for stable allocs/op, which is what the tight floors gate.
{
	go test -run '^$' \
		-bench 'BenchmarkAnalyzeParallel$|BenchmarkAnalyzeParallelStream$|BenchmarkAnalyzeParallelSharded$|BenchmarkFlowExtraction$' \
		-benchmem -benchtime 1s .
	go test -run '^$' -bench 'BenchmarkDecodeInto$|BenchmarkDecodeReference$' \
		-benchmem -benchtime 1s ./internal/packet
	go test -run '^$' -bench 'BenchmarkReadInto$' \
		-benchmem -benchtime 1s ./internal/pcapio
} | tee "$raw"

# Parse `go test -bench` lines into "name metric value" triples. Benchmark
# names carry a -<GOMAXPROCS> suffix; strip it so floors are host-agnostic.
parsed="$dir/parsed.txt"
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i < NF; i += 2) {
		printf "%s %s %s\n", name, $(i + 1), $i
	}
}
' "$raw" > "$parsed"

# JSON snapshot: one object per benchmark with its reported metrics.
{
	echo '{'
	echo '  "note": "go test -bench snapshot; see scripts/benchcheck.sh",'
	echo '  "results": ['
	awk '
	{
		key = $1
		if (key != last) {
			if (last != "") printf "},\n"
			printf "    {\"bench\": \"%s\"", key
			last = key
		}
		metric = $2
		gsub(/[^A-Za-z0-9_]/, "_", metric)
		printf ", \"%s\": %s", metric, $3
	}
	END { if (last != "") printf "}\n" }
	' "$parsed" | sed '$!s/^    {/    {/'
	echo '  ]'
	echo '}'
} > "$dir/BENCH_speed.json"

fail=0
while read -r bench metric bound floor; do
	case $bench in ''|\#*) continue ;; esac
	value=$(awk -v b="$bench" -v m="$metric" '$1 == b && $2 == m { print $3; exit }' "$parsed")
	if [ -z "$value" ]; then
		echo "FAIL $bench $metric: not reported (benchmark missing or renamed)" >&2
		fail=1
		continue
	fi
	ok=$(awk -v v="$value" -v f="$floor" -v b="$bound" 'BEGIN {
		if (b == "min") print (v >= f) ? 1 : 0
		else           print (v <= f) ? 1 : 0
	}')
	if [ "$ok" = 1 ]; then
		echo "ok   $bench $metric $value ($bound $floor)"
	else
		echo "FAIL $bench $metric $value violates $bound $floor" >&2
		fail=1
	fi
done < "$floors"
exit "$fail"

#!/bin/sh
# lintcheck.sh — run the in-repo static analyzers (cmd/tdatlint) over the
# whole module and enforce two ratchets: the number of //tdatlint:ignore
# suppressions may never exceed the checked-in floor (scripts/lintfloor.txt,
# counted per waived code, so one multi-code line costs one per code), and
# the whole run must finish inside a wall-time budget so the interprocedural
# engine can't quietly turn CI into a coffee break. Waivers can only be paid
# down, never accumulated. Mirrors covercheck.sh/validatecheck.sh.
#
# Usage: sh scripts/lintcheck.sh
#   LINT_BUDGET_SECS overrides the time budget (default 300).
set -eu

floorfile=$(dirname "$0")/lintfloor.txt
budget=${LINT_BUDGET_SECS:-300}
fail=0
start=$(date +%s)

echo "== tdatlint ./... =="
if ! go run ./cmd/tdatlint -timing ./...; then
	echo "FAIL unsuppressed lint diagnostics (see above)" >&2
	fail=1
fi

count=$(go run ./cmd/tdatlint -count-ignores ./...)
floor=$(grep -v '^#' "$floorfile" | head -n1 | tr -d '[:space:]')
if [ "$count" -gt "$floor" ]; then
	echo "FAIL suppression count grew: $count per-code //tdatlint:ignore waiver(s), floor is $floor" >&2
	echo "     new waivers and the analyzers they mute:" >&2
	go run ./cmd/tdatlint -list-ignores ./... >&2
	echo "     fix the violation instead of suppressing it, or make the case for raising the floor" >&2
	fail=1
elif [ "$count" -lt "$floor" ]; then
	echo "note: suppression count $count is below the floor $floor — ratchet it down in $floorfile"
	echo "ok   suppressions $count (floor $floor)"
else
	echo "ok   suppressions $count (floor $floor)"
fi

elapsed=$(( $(date +%s) - start ))
if [ "$elapsed" -gt "$budget" ]; then
	echo "FAIL lint run took ${elapsed}s, budget is ${budget}s — see the -timing rows above for the slow analyzer" >&2
	fail=1
else
	echo "ok   wall time ${elapsed}s (budget ${budget}s)"
fi

exit "$fail"

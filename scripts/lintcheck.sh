#!/bin/sh
# lintcheck.sh — run the in-repo static analyzers (cmd/tdatlint) over the
# whole module and enforce the suppression ratchet: the number of
# //tdatlint:ignore comments may never exceed the checked-in floor
# (scripts/lintfloor.txt), so waivers can only be paid down, never
# accumulated. Mirrors covercheck.sh/validatecheck.sh.
#
# Usage: sh scripts/lintcheck.sh
set -eu

floorfile=$(dirname "$0")/lintfloor.txt
fail=0

echo "== tdatlint ./... =="
if ! go run ./cmd/tdatlint ./...; then
	echo "FAIL unsuppressed lint diagnostics (see above)" >&2
	fail=1
fi

count=$(go run ./cmd/tdatlint -count-ignores ./...)
floor=$(grep -v '^#' "$floorfile" | head -n1 | tr -d '[:space:]')
if [ "$count" -gt "$floor" ]; then
	echo "FAIL suppression count grew: $count //tdatlint:ignore comment(s), floor is $floor" >&2
	echo "     fix the violation instead of suppressing it, or make the case for raising the floor" >&2
	fail=1
elif [ "$count" -lt "$floor" ]; then
	echo "note: suppression count $count is below the floor $floor — ratchet it down in $floorfile"
	echo "ok   suppressions $count (floor $floor)"
else
	echo "ok   suppressions $count (floor $floor)"
fi

exit "$fail"

module tdat

go 1.22

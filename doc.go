// Package tdat is a from-scratch Go reproduction of "Explaining BGP Slow
// Table Transfers: Implementing a TCP Delay Analyzer" (Cheng, Park, Patel,
// Amante, Zhang — ICDCS 2012 / UCLA CS TR #110020).
//
// The analyzer (T-DAT) lives under internal/core with one package per
// subsystem; the binaries under cmd/ mirror the paper's tool suite
// (Table VI: tdat, pcap2bgp, tcptrace', BGPlot) plus the synthetic trace
// generator and the experiment harness that regenerates every table and
// figure of the paper's evaluation. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package tdat

// Timer-gap inference (paper §IV-B, Fig 17): sweep senders configured with
// different pacing timers and show the knee-point detector recovering each
// timer from the idle-gap distribution alone.
//
//	go run ./examples/timergaps
package main

import (
	"fmt"
	"log"

	"tdat/internal/core"
	"tdat/internal/detect"
	"tdat/internal/tracegen"
)

func main() {
	analyzer := core.New(core.Config{})
	fmt.Println("configured timer -> inferred timer (from packet trace only)")
	for i, timerMs := range []int64{80, 100, 200, 400} {
		trace := tracegen.Run(tracegen.Scenario{
			Kind:         tracegen.KindPaced,
			Seed:         int64(10 + i),
			Routes:       10_000,
			PacingTimer:  timerMs * 1000,
			PacingBudget: 24,
		})
		rep := analyzer.AnalyzePackets(trace.Packets())
		if len(rep.Transfers) != 1 {
			log.Fatalf("timer %dms: expected one connection", timerMs)
		}
		t := rep.Transfers[0]
		if t.Timer == nil {
			fmt.Printf("  %4d ms -> (not detected)\n", timerMs)
			continue
		}
		fmt.Printf("  %4d ms -> %4.0f ms  (%d gaps, %.1fs of induced delay over a %.1fs transfer)\n",
			timerMs, float64(t.Timer.TimerMicros)/1e3, t.Timer.Gaps,
			float64(t.Timer.InducedDelay)/1e6, float64(t.Duration())/1e6)
	}

	// A control: an unpaced transfer must NOT produce a timer.
	trace := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindSmallWindow, Seed: 99, Routes: 10_000})
	rep := analyzer.AnalyzePackets(trace.Packets())
	t := rep.Transfers[0]
	if t.Timer == nil {
		fmt.Println("  control (window-limited transfer) -> no timer detected, as expected")
	} else {
		fmt.Printf("  control -> FALSE timer %.0f ms!\n", float64(t.Timer.TimerMicros)/1e3)
	}

	// Show the raw evaluation curve for one transfer, like the paper's plot.
	trace = tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 10, Routes: 10_000,
		PacingTimer: 200_000, PacingBudget: 24,
	})
	t = analyzer.AnalyzePackets(trace.Packets()).Transfers[0]
	gaps := detect.GapLengths(t.Catalog, t.Transfer)
	fmt.Printf("\nsorted idle gaps of the 200 ms sender (%d gaps):\n", len(gaps))
	for i := 0; i < len(gaps); i += len(gaps)/8 + 1 {
		fmt.Printf("  gap[%3d] = %7.1f ms\n", i, gaps[i]/1000)
	}
}

// Quickstart: synthesize one slow BGP table transfer, run the T-DAT
// analyzer over the sniffer's capture, and print where the time went.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"tdat/internal/core"
	"tdat/internal/tracegen"
)

func main() {
	// 1. Simulate a table transfer: an operational router streams a
	//    12k-route table to a collector, throttled by a 200 ms pacing timer
	//    (the undocumented vendor behavior of Houidi et al.).
	trace := tracegen.Run(tracegen.Scenario{
		Kind:         tracegen.KindPaced,
		Seed:         1,
		Routes:       12_000,
		PacingTimer:  200_000, // µs
		PacingBudget: 24,      // updates per tick
	})
	fmt.Printf("simulated transfer: %d packets captured, %d routes delivered, took %.1fs\n\n",
		len(trace.Captures), trace.RoutesDelivered, float64(trace.GroundDuration)/1e6)

	// 2. Analyze the capture exactly as T-DAT would analyze a tcpdump file.
	analyzer := core.New(core.Config{})
	report := analyzer.AnalyzePackets(trace.Packets())
	if len(report.Transfers) != 1 {
		log.Fatalf("expected one connection, found %d", len(report.Transfers))
	}
	t := report.Transfers[0]

	// 3. The verdict: the delay-ratio vectors and detected problems.
	if err := t.WriteText(os.Stdout, true); err != nil {
		log.Fatal(err)
	}

	// 4. Programmatic access to the same results.
	group, ratio := t.Factors.Dominant()
	fmt.Printf("\ndominant group: %s (%.0f%% of the transfer)\n", group, ratio*100)
	if t.Timer != nil {
		fmt.Printf("the sender paces updates every %.0f ms — the paper's 'gaps in table transfers'\n",
			float64(t.Timer.TimerMicros)/1e3)
	}
}

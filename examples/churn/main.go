// Churn analysis (paper §VII future work): beyond the initial table
// transfer, analyze the massive update burst a routing failure triggers on
// an established session. The analyzer takes an explicit window — here the
// churn burst — and explains that period alone.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"tdat/internal/core"
	"tdat/internal/flows"
	"tdat/internal/timerange"
	"tdat/internal/tracegen"
)

func main() {
	// Initial 8k-route transfer, 10 s of idle, then a failure re-announces
	// half the table — all through the same paced sender.
	ct := tracegen.RunChurn(tracegen.Scenario{
		Kind:         tracegen.KindPaced,
		Seed:         3,
		Routes:       8_000,
		PacingTimer:  200_000,
		PacingBudget: 24,
	}, 10_000_000, 0.5)
	fmt.Printf("initial transfer + churn: %d routes delivered total\n", ct.RoutesDelivered)
	fmt.Printf("churn burst: %.1fs - %.1fs (%.1fs)\n\n",
		float64(ct.ChurnStart)/1e6, float64(ct.ChurnEnd)/1e6,
		float64(ct.ChurnEnd-ct.ChurnStart)/1e6)

	analyzer := core.New(core.Config{})
	conns := flows.Extract(ct.Packets())
	if len(conns) != 1 {
		log.Fatalf("expected one connection, got %d", len(conns))
	}

	// Analyze the whole session, then just the churn window.
	whole := analyzer.AnalyzeConnectionWindow(conns[0], timerange.Range{})
	churn := analyzer.AnalyzeConnectionWindow(conns[0], timerange.R(ct.ChurnStart, ct.ChurnEnd))

	fmt.Printf("whole session : G=%v (includes the idle gap)\n", whole.Factors.G)
	fmt.Printf("churn window  : G=%v\n", churn.Factors.G)
	if churn.Timer != nil {
		fmt.Printf("the burst is paced by the same %.0f ms timer as the initial transfer\n",
			float64(churn.Timer.TimerMicros)/1e3)
	}
	g, ratio := churn.Factors.Dominant()
	fmt.Printf("churn verdict : %s limited (%.0f%%)\n", g, ratio*100)
}

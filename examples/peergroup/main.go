// Peer-group blocking (paper §II-B3, Fig 9): two collectors share one
// vendor peer group on the router. One collector dies mid-transfer; the
// healthy session stalls until the dead member's hold timer evicts it.
// T-DAT finds the blocking by intersecting series across the two
// connections — the cross-connection analysis the set representation makes
// cheap.
//
//	go run ./examples/peergroup
package main

import (
	"fmt"
	"log"
	"os"

	"tdat/internal/asciiplot"
	"tdat/internal/core"
	"tdat/internal/detect"
	"tdat/internal/series"
	"tdat/internal/tracegen"
)

func main() {
	// Kill the vendor collector 1 s into the transfer; the router's hold
	// timer is 180 s (the ISP_A default).
	pg := tracegen.RunPeerGroup(7, 20_000, 1_000_000, 180_000_000)
	fmt.Printf("ground truth: member failed at t1=%.1fs, removed from the group at t2=%.1fs\n",
		float64(pg.KillAt)/1e6, float64(pg.HoldExpiry)/1e6)
	fmt.Printf("healthy collector received %d routes (ground duration %.1fs)\n\n",
		pg.Healthy.RoutesDelivered, float64(pg.Healthy.GroundDuration)/1e6)

	analyzer := core.New(core.Config{})
	healthyRep := analyzer.AnalyzePackets(pg.Healthy.Packets())
	faultyRep := analyzer.AnalyzePackets(pg.Faulty.Packets())
	if len(healthyRep.Transfers) != 1 || len(faultyRep.Transfers) != 1 {
		log.Fatal("expected one connection per capture")
	}
	healthy, faulty := healthyRep.Transfers[0], faultyRep.Transfers[0]

	// The paper's cross-connection intersection:
	//   healthy.SendAppLimited ∩ faulty.Loss
	res, ok := detect.PeerGroupBlocking(healthy.Catalog, faulty.Catalog, 0)
	if !ok {
		log.Fatal("blocking not detected")
	}
	fmt.Printf("detected peer-group blocking: longest pause %.1fs (ground truth %.1fs)\n",
		float64(res.LongestPause)/1e6, float64(pg.HoldExpiry-pg.KillAt)/1e6)
	fmt.Printf("blocked periods: %v\n\n", res.Blocked)

	// Visualize both sessions on the healthy session's timeline.
	span := healthy.Conn.Span()
	rows := []asciiplot.Row{
		{Label: "healthy.Transmission", Set: healthy.Catalog.Get(series.Transmission)},
		{Label: "healthy.SendAppLimited", Set: healthy.Catalog.Get(series.SendAppLimited)},
		{Label: "faulty.Outstanding", Set: faulty.Catalog.Get(series.Outstanding)},
		{Label: "blocked (intersection)", Set: res.Blocked},
	}
	if err := asciiplot.Series(os.Stdout, span, rows, 100); err != nil {
		log.Fatal(err)
	}
}

// Incast / concurrent transfers (paper §II-B2 and Fig 15): many routers
// start table transfers to one collector at once. With few senders the TCP
// advertised window is the bottleneck; as concurrency grows, the
// collector's BGP process falls behind and its closing windows dominate —
// and the shared interface queue starts dropping packets receiver-locally.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/tracegen"
)

func main() {
	analyzer := core.New(core.Config{})
	fmt.Println("n  = concurrent transfers to one collector")
	fmt.Println("n   recvBGP  recvTCPwin  recvLocalLoss  meanDur(s)")
	for _, n := range []int{1, 4, 8, 16} {
		traces := tracegen.RunIncast(42, n, 20_000, 40, 2_000_000)
		var bgp, win, loss, dur float64
		cnt := 0
		for _, tr := range traces {
			rep := analyzer.AnalyzePackets(tr.Packets())
			if len(rep.Transfers) != 1 {
				continue
			}
			t := rep.Transfers[0]
			bgp += t.Factors.V.At(factors.ReceiverApp)
			win += t.Factors.V.At(factors.ReceiverWindow)
			loss += t.Factors.V.At(factors.ReceiverLocalLoss)
			dur += float64(t.Duration()) / 1e6
			cnt++
		}
		if cnt == 0 {
			continue
		}
		f := float64(cnt)
		fmt.Printf("%-3d  %6.2f  %9.2f  %12.2f  %9.1f\n", n, bgp/f, win/f, loss/f, dur/f)
	}
	fmt.Println("\nthe receiver's BGP process becomes the bottleneck as concurrency grows,")
	fmt.Println("and the small shared queue (40 packets) adds receiver-local losses —")
	fmt.Println("the incast pattern the paper links to BGP scaling (§II-B2).")
}

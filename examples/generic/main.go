// T-DAT is BGP agnostic (paper §V-D, §VII): the event series and delay
// factors only assume window-based TCP. This example analyzes a synthetic
// NON-BGP transfer — a bulk HTTP-like download whose server stalls
// periodically (an application writing in spurts) against a slow-reading
// client — and shows the factor attribution working without any BGP
// decoding (MCT falls back to the last data packet).
//
//	go run ./examples/generic
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"

	"tdat/internal/core"
	"tdat/internal/flows"
	"tdat/internal/netem"
	"tdat/internal/packet"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
)

func main() {
	eng := sim.New(0, 9)

	var server, client *tcpsim.Endpoint
	path := netem.NewPath(eng, netem.PathConfig{
		UpstreamDelay:   10_000, // 20 ms RTT
		DownstreamDelay: 100,
	},
		func(p *packet.Packet) { client.Deliver(p) },
		func(p *packet.Packet) { server.Deliver(p) },
	)
	server = tcpsim.NewEndpoint(eng, tcpsim.Config{
		Addr: netip.MustParseAddr("192.0.2.10"), Port: 80,
	}, tcpsim.Handler(path.DataIn))
	client = tcpsim.NewEndpoint(eng, tcpsim.Config{
		Addr: netip.MustParseAddr("192.0.2.20"), Port: 55000,
	}, tcpsim.Handler(path.AckIn))
	client.Listen()

	// The "application": the server produces 8 KB of (non-BGP) content
	// every 300 ms — a chunked encoder, a disk-bound file server, whatever;
	// T-DAT only sees the spurts.
	const chunk, chunks = 8 << 10, 40
	payload := make([]byte, chunk)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	sent := 0
	var produce func()
	produce = func() {
		if sent >= chunks {
			server.Close()
			return
		}
		server.Write(payload)
		sent++
		eng.After(300_000, produce)
	}
	server.OnEstablished = func() { eng.After(300_000, produce) }

	// The client reads steadily.
	client.OnReadable = func() { client.Read(client.ReadableLen()) }

	server.Connect(client.Config().Addr, client.Config().Port)
	eng.Run(60_000_000)

	// Analyze the sniffer's capture — no BGP anywhere.
	caps := path.Sniffer.Captures()
	fmt.Printf("captured %d packets of a %d KB HTTP-like transfer\n\n",
		len(caps), chunk*chunks/1024)

	pkts := make([]flows.TimedPacket, len(caps))
	for i, c := range caps {
		pkts[i] = flows.TimedPacket{Time: c.Time, Pkt: c.Pkt}
	}
	analyzer := core.New(core.Config{})
	rep := analyzer.AnalyzePackets(pkts)
	if len(rep.Transfers) != 1 {
		log.Fatalf("expected one connection, got %d", len(rep.Transfers))
	}
	t := rep.Transfers[0]
	if err := t.WriteText(os.Stdout, false); err != nil {
		log.Fatal(err)
	}
	g, ratio := t.Factors.Dominant()
	fmt.Printf("\nverdict: the transfer is %s limited (%.0f%%) — the server app's\n", g, ratio*100)
	fmt.Println("300 ms production spurts, found without knowing anything about the protocol.")
	if t.Timer != nil {
		fmt.Printf("the analyzer even recovers the application's period: %.0f ms\n",
			float64(t.Timer.TimerMicros)/1e3)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tdat/internal/lint"
)

// fixture is the lint package's fixture mini-module — a self-contained
// go.mod tree with known violations in every analyzer's scope.
const fixture = "../../internal/lint/testdata/mod"

func runDriver(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCodes(t *testing.T) {
	if code, _, _ := runDriver(t, "-list"); code != 0 {
		t.Errorf("-list exit = %d, want 0", code)
	}
	// The fixture timerange package is clean under nilobs (wrong scope), so
	// a scoped run is the clean-exit case.
	if code, out, _ := runDriver(t, "-dir", fixture, "-analyzers", "nilobs", "./internal/timerange"); code != 0 || out != "" {
		t.Errorf("clean run exit = %d stdout %q, want 0 and empty", code, out)
	}
	if code, out, _ := runDriver(t, "-dir", fixture, "./..."); code != 1 || out == "" {
		t.Errorf("dirty run exit = %d (stdout %d bytes), want 1 with diagnostics", code, len(out))
	}
	if code, _, stderr := runDriver(t, "-analyzers", "nope"); code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer exit = %d stderr %q, want 2", code, stderr)
	}
	if code, _, _ := runDriver(t, "-dir", "/definitely/not/a/module"); code != 2 {
		t.Errorf("bad dir exit = %d, want 2", code)
	}
	if code, _, _ := runDriver(t, "-badflag"); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	_, out, _ := runDriver(t, "-list")
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
}

// TestJSONSchema pins the machine-readable mode: valid JSON, one object per
// diagnostic, every field populated, codes drawn from the registered set.
func TestJSONSchema(t *testing.T) {
	code, out, _ := runDriver(t, "-dir", fixture, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("fixture run produced no diagnostics")
	}
	known := map[string]bool{"badignore": true, "unusedignore": true}
	for _, a := range lint.Analyzers() {
		known[a.Name] = true
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if !known[d.Code] {
			t.Errorf("diagnostic carries unregistered code %q", d.Code)
		}
		if strings.Contains(d.File, "\\") || strings.HasPrefix(d.File, "/") {
			t.Errorf("file should be module-relative with forward slashes: %q", d.File)
		}
	}
}

// TestJSONCleanIsEmptyArray pins that a clean -json run emits [] rather
// than null, so downstream jq pipelines never special-case.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runDriver(t, "-dir", fixture, "-json", "-analyzers", "nilobs", "./internal/timerange")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

// TestMetamorphicIdenticalRuns is the driver-level determinism check: two
// full runs over the same tree produce byte-identical stdout in both text
// and JSON modes.
func TestMetamorphicIdenticalRuns(t *testing.T) {
	for _, mode := range [][]string{
		{"-dir", fixture, "./..."},
		{"-dir", fixture, "-json", "./..."},
	} {
		code1, out1, _ := runDriver(t, mode...)
		code2, out2, _ := runDriver(t, mode...)
		if code1 != code2 || out1 != out2 {
			t.Errorf("runs diverge for %v: exits %d/%d\n--- first ---\n%s--- second ---\n%s",
				mode, code1, code2, out1, out2)
		}
	}
}

// TestCountIgnores pins the suppression ratchet's counter: the fixture
// module carries five suppressions across four //tdatlint:ignore comments —
// used, reasonless, stale, and one multi-code line that counts once per
// code. Documentation examples inside other comments don't count.
func TestCountIgnores(t *testing.T) {
	code, out, _ := runDriver(t, "-dir", fixture, "-count-ignores", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if got := strings.TrimSpace(out); got != "5" {
		t.Errorf("-count-ignores = %q, want 5", got)
	}
}

// TestListIgnores pins the ratchet's audit trail: every suppression is
// listed per code with its location and reason, so a ratchet failure can
// name the analyzer being waived.
func TestListIgnores(t *testing.T) {
	code, out, _ := runDriver(t, "-dir", fixture, "-list-ignores", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("-list-ignores printed %d lines, want 5:\n%s", len(lines), out)
	}
	// The multi-code line in ignored.go expands to one entry per code,
	// sharing a location and reason.
	var mixed []string
	for _, l := range lines {
		if strings.Contains(l, "one waived draw") {
			mixed = append(mixed, l)
		}
	}
	if len(mixed) != 2 {
		t.Fatalf("multi-code ignore expanded to %d entries, want 2:\n%s", len(mixed), out)
	}
	if !strings.Contains(mixed[0], " globalrand: ") || !strings.Contains(mixed[1], " wallclock: ") {
		t.Errorf("multi-code entries missing per-code labels:\n%s", strings.Join(mixed, "\n"))
	}
}

// TestMultiCodeIgnorePerCode pins the per-code suppression contract end to
// end: on the fixture's Mixed function one line waives globalrand (used)
// and wallclock (stale), so a full run must stay silent about the rand
// draw but flag the wallclock half as unusedignore.
func TestMultiCodeIgnorePerCode(t *testing.T) {
	code, out, _ := runDriver(t, "-dir", fixture, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out, "ignored.go:34") {
		t.Errorf("globalrand finding on the waived line leaked through:\n%s", out)
	}
	if !strings.Contains(out, `ignored.go:33:2: unusedignore: suppression for "wallclock"`) {
		t.Errorf("stale wallclock half of the multi-code ignore not reported:\n%s", out)
	}
}

// TestTimingFlag pins -timing: one stderr row per analyzer plus the shared
// summary engine, diagnostics on stdout untouched.
func TestTimingFlag(t *testing.T) {
	code, out, stderr := runDriver(t, "-dir", fixture, "-timing", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if out == "" {
		t.Error("-timing suppressed stdout diagnostics")
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stderr, a.Name) {
			t.Errorf("-timing stderr missing a row for %s:\n%s", a.Name, stderr)
		}
	}
	if !strings.Contains(stderr, "summaries") {
		t.Errorf("-timing stderr missing the summaries row:\n%s", stderr)
	}
}

// TestDiagnosticsSorted pins the output ordering contract: file, then line,
// then column.
func TestDiagnosticsSorted(t *testing.T) {
	_, out, _ := runDriver(t, "-dir", fixture, "-json", "./...")
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

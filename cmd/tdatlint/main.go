// Command tdatlint runs T-DAT's in-repo static analyzers — the mechanized
// form of the invariants the compiler cannot see: passive (trace-derived)
// time, map-order-independent output, seed-reproducible simulators,
// non-mutating timerange.Set algebra, and the obs nil-fast-path contract.
//
// Usage:
//
//	tdatlint [-dir d] [-json] [-analyzers a,b] [-list] [-timing] [packages...]
//
// Packages default to ./... relative to -dir. Exit status is 0 when the
// tree is clean, 1 when diagnostics were reported, and 2 on usage or load
// errors. Suppress a single finding with an explanatory comment on the
// flagged line or the line above:
//
//	//tdatlint:ignore wallclock the self-profile times the analyzer, not the trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tdat/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdatlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("dir", ".", "module directory to analyze from")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		onlyList = fs.Bool("list", false, "list registered analyzers and exit")
		names    = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		count    = fs.Bool("count-ignores", false, "print the number of //tdatlint:ignore comments and exit (the suppression ratchet)")
		listIgn  = fs.Bool("list-ignores", false, "print every //tdatlint:ignore suppression (file:line:col: code: reason) and exit")
		timing   = fs.Bool("timing", false, "report per-analyzer wall time on stderr, slowest first")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdatlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *onlyList {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			a := lint.Lookup(name)
			if a == nil {
				fmt.Fprintf(stderr, "tdatlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "tdatlint: %v\n", err)
		return 2
	}
	if *count {
		fmt.Fprintln(stdout, lint.CountIgnores(pkgs))
		return 0
	}
	if *listIgn {
		for _, line := range lint.IgnoreList(pkgs) {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}
	// The clock lives in the driver: internal/lint never reads wall time,
	// holding the linter to the rule it enforces.
	var clock func() int64
	if *timing {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	diags, timings := lint.RunTimed(pkgs, analyzers, clock)
	if *timing {
		for _, row := range timings {
			fmt.Fprintf(stderr, "tdatlint: %-12s %8.1fms\n", row.Name, float64(row.Nanos)/1e6)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "tdatlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "tdatlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// Command bgplot renders a pcap trace as terminal graphics — the repo's
// stand-in for the paper's BGPlot/SCNMPlot (Table VI): a tcptrace-style
// time-sequence diagram plus the derived T-DAT event-series lanes.
//
// Usage:
//
//	bgplot [-conn 0] [-width 110] [-height 20] [-log-level info] trace.pcap
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"tdat/internal/asciiplot"
	"tdat/internal/core"
	"tdat/internal/obs"
	"tdat/internal/series"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		connIdx  = flag.Int("conn", 0, "connection index to plot")
		width    = flag.Int("width", 110, "plot width in columns")
		height   = flag.Int("height", 20, "time-sequence plot height in rows")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "bgplot: %v\n", err)
		return 2
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bgplot [flags] trace.pcap")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		slog.Error("opening trace", "err", err)
		return 1
	}
	defer f.Close()

	rep, err := core.New(core.Config{}).AnalyzePcap(f)
	if err != nil {
		slog.Error("analysis failed", "err", err)
		return 1
	}
	if *connIdx < 0 || *connIdx >= len(rep.Transfers) {
		slog.Error("connection index out of range", "conn", *connIdx, "connections", len(rep.Transfers))
		return 1
	}
	t := rep.Transfers[*connIdx]
	fmt.Printf("connection %s -> %s (transfer %.2fs)\n\n",
		t.Conn.Sender, t.Conn.Receiver, float64(t.Duration())/1e6)
	if err := asciiplot.TimeSequence(os.Stdout, t.Conn, *width, *height); err != nil {
		slog.Error("rendering time-sequence plot", "err", err)
		return 1
	}
	fmt.Println()
	rows := []asciiplot.Row{
		{Label: "Transmission", Set: t.Catalog.Get(series.Transmission)},
		{Label: "Outstanding", Set: t.Catalog.Get(series.Outstanding)},
		{Label: "SendAppLimited", Set: t.Catalog.Get(series.SendAppLimited)},
		{Label: "AdvBndOut", Set: t.Catalog.Get(series.AdvBndOut)},
		{Label: "CwndBndOut", Set: t.Catalog.Get(series.CwndBndOut)},
		{Label: "UpstreamLoss", Set: t.Catalog.Get(series.UpstreamLoss)},
		{Label: "DownstreamLoss", Set: t.Catalog.Get(series.DownstreamLoss)},
		{Label: "ZeroAdvWindow", Set: t.Catalog.Get(series.ZeroAdvWindow)},
		{Label: "BandwidthLimited", Set: t.Catalog.Get(series.BandwidthLimited)},
	}
	if err := asciiplot.Series(os.Stdout, t.Transfer, rows, *width); err != nil {
		slog.Error("rendering series lanes", "err", err)
		return 1
	}
	return 0
}

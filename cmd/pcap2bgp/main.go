// Command pcap2bgp reconstructs TCP data streams from a raw packet trace
// and extracts the BGP messages they carry, saving them in MRT format —
// the paper's side tool (§II-A, Table VI) for vendor collectors that keep
// no BGP archive of their own. It tolerates out-of-order delivery and
// retransmissions and reports capture holes instead of guessing framing.
//
// Usage:
//
//	pcap2bgp [-o out.mrt] [-v] [-online] trace.pcap
//
// With -online the trace is processed in a single pass with the streaming
// reassembler (per-direction state only), the mode a collector box would
// run live; the default mode reassembles per extracted connection.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"net/netip"
	"os"
	"sort"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/mrt"
	"tdat/internal/obs"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/reassembly"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("o", "", "output MRT file (default: stdout summary only)")
		verbose  = flag.Bool("v", false, "print per-message details")
		online   = flag.Bool("online", false, "single-pass streaming mode")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "pcap2bgp: %v\n", err)
		return 2
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcap2bgp [flags] trace.pcap")
		flag.PrintDefaults()
		return 2
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		slog.Error("opening trace", "err", err)
		return 1
	}
	defer f.Close()
	recs, err := pcapio.ReadAll(f)
	if err != nil && len(recs) == 0 {
		slog.Error("reading trace", "err", err)
		return 1
	}
	if err != nil {
		slog.Warn("trace truncated (tcpdump drop?)", "records", len(recs), "err", err)
	}

	if *online {
		return runOnline(recs, *out, *verbose)
	}

	conns, skipped := flows.FromPcap(recs)
	if skipped > 0 {
		slog.Warn("undecodable packets skipped", "count", skipped)
	}

	var mw *mrt.Writer
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			slog.Error("creating output", "err", err)
			return 1
		}
		defer of.Close()
		mw = mrt.NewWriter(of)
	}

	for ci, c := range conns {
		res, err := reassembly.Reassemble(c)
		if err != nil {
			fmt.Printf("connection %d (%s -> %s): framing error: %v\n", ci, c.Sender, c.Receiver, err)
			continue
		}
		updates, prefixes := 0, 0
		for _, m := range res.Messages {
			if u, ok := m.Msg.(*bgp.Update); ok {
				updates++
				prefixes += len(u.NLRI)
			}
			if *verbose {
				fmt.Printf("  %12d %T\n", m.Time, m.Msg)
			}
			if mw != nil {
				rec := mrt.Record{
					TimeMicros: m.Time,
					PeerIP:     c.Sender.Addr,
					LocalIP:    c.Receiver.Addr,
					Raw:        m.Raw,
				}
				if err := mw.Write(rec); err != nil {
					slog.Error("writing MRT", "err", err)
					return 1
				}
			}
		}
		fmt.Printf("connection %d (%s -> %s): %d bytes, %d messages (%d updates, %d prefixes), %d capture holes\n",
			ci, c.Sender, c.Receiver, res.StreamBytes, len(res.Messages), updates, prefixes, len(res.MissingRanges))
	}
	if mw != nil {
		if err := mw.Flush(); err != nil {
			slog.Error("writing MRT", "err", err)
			return 1
		}
	}
	return 0
}

// dirKey identifies one direction of one connection.
type dirKey struct {
	src, dst     [4]byte
	sport, dport uint16
}

// runOnline processes the records in one pass with per-direction streaming
// reassemblers.
func runOnline(recs []pcapio.Record, out string, verbose bool) int {
	var mw *mrt.Writer
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			slog.Error("creating output", "err", err)
			return 1
		}
		defer of.Close()
		mw = mrt.NewWriter(of)
	}
	type dirState struct {
		stream   *reassembly.Stream
		messages int
		updates  int
		prefixes int
		dead     bool
	}
	streams := map[dirKey]*dirState{}
	skipped := 0
	for _, rec := range recs {
		p, err := packet.Decode(rec.Data)
		if err != nil {
			skipped++
			continue
		}
		k := dirKey{
			src: p.IP.Src.As4(), dst: p.IP.Dst.As4(),
			sport: p.TCP.SrcPort, dport: p.TCP.DstPort,
		}
		st, ok := streams[k]
		if !ok {
			st = &dirState{}
			src, dst := p.IP.Src, p.IP.Dst
			st.stream = reassembly.NewStream(func(m reassembly.Message) {
				st.messages++
				if u, okU := m.Msg.(*bgp.Update); okU {
					st.updates++
					st.prefixes += len(u.NLRI)
				}
				if verbose {
					fmt.Printf("  %12d %s->%s %T\n", m.Time, src, dst, m.Msg)
				}
				if mw != nil {
					_ = mw.Write(mrt.Record{
						TimeMicros: m.Time, PeerIP: src, LocalIP: dst, Raw: m.Raw,
					})
				}
			})
			streams[k] = st
		}
		if st.dead {
			continue
		}
		if err := st.stream.Packet(rec.TimeMicros, p); err != nil {
			fmt.Printf("direction %v:%d -> %v:%d: %v (direction abandoned)\n",
				p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort, err)
			st.dead = true
		}
	}
	if skipped > 0 {
		slog.Warn("undecodable packets skipped", "count", skipped)
	}
	total := 0
	// Report in a fixed direction order, not map order, so repeated runs
	// over one capture emit byte-identical summaries.
	keys := make([]dirKey, 0, len(streams))
	for k := range streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return bytes.Compare(a.src[:], b.src[:]) < 0
		}
		if a.dst != b.dst {
			return bytes.Compare(a.dst[:], b.dst[:]) < 0
		}
		if a.sport != b.sport {
			return a.sport < b.sport
		}
		return a.dport < b.dport
	})
	for _, k := range keys {
		st := streams[k]
		if st.messages == 0 {
			continue
		}
		src := netip.AddrFrom4(k.src)
		dst := netip.AddrFrom4(k.dst)
		fmt.Printf("%v:%d -> %v:%d: %d messages (%d updates, %d prefixes)\n",
			src, k.sport, dst, k.dport, st.messages, st.updates, st.prefixes)
		total += st.messages
	}
	fmt.Printf("online mode: %d messages total\n", total)
	if mw != nil {
		if err := mw.Flush(); err != nil {
			slog.Error("writing MRT", "err", err)
			return 1
		}
	}
	return 0
}

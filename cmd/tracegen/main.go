// Command tracegen synthesizes BGP/TCP capture files: it runs one
// table-transfer scenario in the discrete-event simulator and writes the
// sniffer's pcap plus the collector's MRT archive — ready for tdat,
// pcap2bgp, tcpprof, or bgplot.
//
// Usage:
//
//	tracegen -kind paced -routes 12000 -seed 1 -o transfer.pcap [-mrt transfer.mrt]
//	tracegen -dataset ispa-vendor -n 20 -outdir traces/   # a whole dataset
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/netip"
	"os"
	"path/filepath"

	"strconv"
	"strings"

	"tdat/internal/mrt"
	"tdat/internal/netem"
	"tdat/internal/obs"
	"tdat/internal/pcapio"
	"tdat/internal/tcpsim"
	"tdat/internal/tracegen"
)

// parseGE reads the -burst-loss value: three comma-separated probabilities
// pGoodBad,pBadGood,dropBad of the Gilbert-Elliott loss process.
func parseGE(s string) (*netem.GEParams, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("want pGoodBad,pBadGood,dropBad, got %q", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("field %d of %q: %v", i+1, s, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("field %d of %q: %v outside [0,1]", i+1, s, v)
		}
		vals[i] = v
	}
	return &netem.GEParams{PGoodBad: vals[0], PBadGood: vals[1], DropBad: vals[2]}, nil
}

var kinds = map[string]tracegen.Kind{
	"clean":           tracegen.KindClean,
	"paced":           tracegen.KindPaced,
	"slow-receiver":   tracegen.KindSlowReceiver,
	"small-window":    tracegen.KindSmallWindow,
	"upstream-loss":   tracegen.KindUpstreamLoss,
	"downstream-loss": tracegen.KindDownstreamLoss,
	"bandwidth":       tracegen.KindBandwidth,
	"zero-ack-bug":    tracegen.KindZeroAckBug,
	"heavy-tail-app":  tracegen.KindHeavyTailApp,
	"bimodal-app":     tracegen.KindBimodalApp,
	"varying-rate":    tracegen.KindVaryingRate,
	"fanout":          tracegen.KindFanout,
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dataset  = flag.String("dataset", "", "write a whole dataset: ispa-vendor|ispa-quagga|routeviews")
		n        = flag.Int("n", 20, "transfers in the dataset (-dataset mode)")
		outdir   = flag.String("outdir", "traces", "output directory (-dataset mode)")
		kind     = flag.String("kind", "clean", "scenario kind: clean|paced|slow-receiver|small-window|upstream-loss|downstream-loss|bandwidth|zero-ack-bug|heavy-tail-app|bimodal-app|varying-rate|fanout")
		routes   = flag.Int("routes", 12_000, "routing table size")
		seed     = flag.Int64("seed", 1, "random seed")
		rtt      = flag.Int64("rtt", 8_000, "round-trip propagation in microseconds")
		out      = flag.String("o", "transfer.pcap", "output pcap file")
		mrtOut   = flag.String("mrt", "", "also write the collector MRT archive here")
		timer    = flag.Int64("timer", 200_000, "pacing timer (paced kind), microseconds")
		budget   = flag.Int("budget", 24, "updates per pacing tick (paced kind)")
		rate     = flag.Int64("rate", 0, "collector processing or link rate override, bytes/sec")
		recvbuf  = flag.Int("recvbuf", 0, "collector receive buffer override, bytes")
		stack    = flag.String("stack", "reno", "sender stack: reno|cubic|rate-paced|sack|stretch-ack|wscale-bug")
		lossRate = flag.Float64("loss", 0, "drop probability override for the loss kinds")
		profile  = flag.String("rate-profile", "", "varying-rate capacity shape: step|sawtooth")
		rateLow  = flag.Int64("rate-low", 0, "varying-rate trough capacity, bytes/sec")
		ratePer  = flag.Int64("rate-period", 0, "varying-rate profile period, microseconds")
		burst    = flag.String("burst-loss", "", "Gilbert-Elliott burst loss for the loss kinds as pGoodBad,pBadGood,dropBad (e.g. 0.05,0.25,0.9)")
		members  = flag.Int("members", 0, "fanout peer-group size")
		slack    = flag.Int("slack", 0, "fanout peer-group slack bound, updates")
		slowMem  = flag.Int("slow-members", 0, "fanout members running throttled collectors")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 2
	}

	if *dataset != "" {
		return writeDataset(*dataset, *n, *seed, *outdir)
	}

	k, ok := kinds[*kind]
	if !ok {
		slog.Error("unknown kind", "kind", *kind)
		return 2
	}
	st, err := tcpsim.ParseStack(*stack)
	if err != nil {
		slog.Error("unknown stack", "err", err)
		return 2
	}
	sc := tracegen.Scenario{
		Kind: k, Seed: *seed, Routes: *routes, RTT: *rtt,
		PacingTimer: *timer, PacingBudget: *budget, Stack: st,
		LossRate: *lossRate, RateProfile: *profile, RateLow: *rateLow,
		RatePeriod: tracegen.Micros(*ratePer), GroupMembers: *members,
		GroupSlack: *slack, SlowMembers: *slowMem,
	}
	if *rate > 0 {
		sc.CollectorRate = *rate
		sc.UpstreamRate = *rate
	}
	if *recvbuf > 0 {
		sc.RecvBuf = *recvbuf
	}
	if *burst != "" {
		ge, err := parseGE(*burst)
		if err != nil {
			slog.Error("bad -burst-loss", "err", err)
			return 2
		}
		sc.BurstLoss = ge
	}
	tr := tracegen.Run(sc)
	fmt.Printf("scenario %s: %d captures, %d routes delivered, ground duration %.2fs\n",
		k, len(tr.Captures), tr.RoutesDelivered, float64(tr.GroundDuration)/1e6)

	pf, err := os.Create(*out)
	if err != nil {
		slog.Error("writing output", "err", err)
		return 1
	}
	defer pf.Close()
	pw := pcapio.NewWriter(pf)
	for _, c := range tr.Captures {
		frame, err := c.Pkt.Marshal()
		if err != nil {
			slog.Error("marshaling packet", "err", err)
			return 1
		}
		if err := pw.WritePacket(c.Time, frame); err != nil {
			slog.Error("writing output", "err", err)
			return 1
		}
	}
	if err := pw.Flush(); err != nil {
		slog.Error("writing output", "err", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)

	if *mrtOut != "" {
		mf, err := os.Create(*mrtOut)
		if err != nil {
			slog.Error("writing output", "err", err)
			return 1
		}
		defer mf.Close()
		// Router/collector addresses from the capture itself.
		peer := netip.MustParseAddr("10.0.0.1")
		local := netip.MustParseAddr("10.0.0.2")
		if len(tr.Captures) > 0 {
			peer = tr.Captures[0].Pkt.IP.Src
			local = tr.Captures[0].Pkt.IP.Dst
		}
		mw := mrt.NewWriter(mf)
		for _, e := range tr.Archive {
			rec := mrt.Record{
				TimeMicros: e.Time,
				PeerAS:     e.PeerAS,
				LocalAS:    65000,
				PeerIP:     peer,
				LocalIP:    local,
				Raw:        e.Raw,
			}
			if err := mw.Write(rec); err != nil {
				slog.Error("writing output", "err", err)
				return 1
			}
		}
		if err := mw.Flush(); err != nil {
			slog.Error("writing output", "err", err)
			return 1
		}
		fmt.Printf("wrote %s (%d records)\n", *mrtOut, len(tr.Archive))
	}
	return 0
}

// writeDataset generates a whole profile's worth of transfers as numbered
// pcap files (plus one merged MRT archive), mimicking a collection
// deployment's output directory.
func writeDataset(name string, n int, seed int64, dir string) int {
	var profile tracegen.DatasetProfile
	switch name {
	case "ispa-vendor":
		profile = tracegen.ISPAVendor(n, max(2, n/8), seed)
	case "ispa-quagga":
		profile = tracegen.ISPAQuagga(n, max(2, n/8), seed)
	case "routeviews":
		profile = tracegen.RouteViews(n, max(2, n/8), seed)
	default:
		slog.Error("unknown dataset", "dataset", name)
		return 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		slog.Error("writing output", "err", err)
		return 1
	}
	mf, err := os.Create(filepath.Join(dir, "archive.mrt"))
	if err != nil {
		slog.Error("writing output", "err", err)
		return 1
	}
	defer mf.Close()
	mw := mrt.NewWriter(mf)

	failed := false
	profile.Generate(func(t tracegen.Transfer) {
		name := filepath.Join(dir, fmt.Sprintf("transfer-%03d-%s.pcap", t.Index, t.Trace.Kind))
		pf, err := os.Create(name)
		if err != nil {
			slog.Error("writing output", "err", err)
			failed = true
			return
		}
		defer pf.Close()
		pw := pcapio.NewWriter(pf)
		for _, c := range t.Trace.Captures {
			frame, err := c.Pkt.Marshal()
			if err != nil {
				failed = true
				return
			}
			if err := pw.WritePacket(c.Time, frame); err != nil {
				failed = true
				return
			}
		}
		if err := pw.Flush(); err != nil {
			failed = true
			return
		}
		for _, e := range t.Trace.Archive {
			_ = mw.Write(mrt.Record{
				TimeMicros: e.Time,
				PeerAS:     e.PeerAS,
				LocalAS:    65000,
				PeerIP:     netip.MustParseAddr("10.0.0.1"),
				LocalIP:    netip.MustParseAddr("10.0.0.2"),
				Raw:        e.Raw,
			})
		}
		fmt.Printf("wrote %s (%d packets, %s, router %d)\n",
			name, len(t.Trace.Captures), t.Trace.Kind, t.Router.ID)
	})
	if err := mw.Flush(); err != nil {
		slog.Error("writing output", "err", err)
		return 1
	}
	if failed {
		return 1
	}
	fmt.Printf("dataset %s: %d transfers under %s\n", profile.Name, n, dir)
	return 0
}

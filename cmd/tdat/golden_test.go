package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestGoldenReport runs the full CLI on the committed clean trace and
// compares the complete report text against the checked-in golden file, so
// output-format changes are deliberate (rerun with -update to accept them).
// The same run is repeated at several worker counts: a clean trace's report
// must be byte-identical regardless of pool size.
func TestGoldenReport(t *testing.T) {
	trace := filepath.Join("testdata", "clean.pcap")
	golden := filepath.Join("testdata", "clean.golden")

	render := func(workers string) string {
		var out, errBuf bytes.Buffer
		args := []string{"-series", "-workers", workers, "-log-level", "error", trace}
		if code := run(args, &out, &errBuf); code != 0 {
			t.Fatalf("run(workers=%s) = %d, stderr:\n%s", workers, code, errBuf.String())
		}
		return out.String()
	}

	got := render("1")
	for _, w := range []string{"2", "8"} {
		if alt := render(w); alt != got {
			t.Errorf("report differs between -workers 1 and -workers %s", w)
		}
	}

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tdat -run TestGoldenReport -update` to seed it)", err)
	}
	if got != string(want) {
		t.Errorf("report differs from %s (rerun with -update if intended)\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestGoldenJSON pins the machine-readable output the same way.
func TestGoldenJSON(t *testing.T) {
	trace := filepath.Join("testdata", "clean.pcap")
	golden := filepath.Join("testdata", "clean.json.golden")

	var out, errBuf bytes.Buffer
	if code := run([]string{"-json", "-log-level", "error", trace}, &out, &errBuf); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, errBuf.String())
	}
	got := out.String()

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tdat -run TestGoldenJSON -update` to seed it)", err)
	}
	if got != string(want) {
		t.Errorf("JSON output differs from %s (rerun with -update if intended)\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestUsageExitCode: bad invocations exit 2 without touching stdout.
func TestUsageExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if out.Len() != 0 {
		t.Errorf("usage error wrote to stdout: %q", out.String())
	}
	if code := run([]string{"-sniffer", "bogus", "x.pcap"}, &out, &errBuf); code != 2 {
		t.Errorf("bad-sniffer exit = %d, want 2", code)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// renderExplain runs the CLI on the committed clean trace with -explain and
// the given concurrency/observability knobs, returning stdout.
func renderExplain(t *testing.T, jsonMode bool, workers, shards string, withObs bool) string {
	t.Helper()
	trace := filepath.Join("testdata", "clean.pcap")
	args := []string{"-explain", "-workers", workers, "-shards", shards, "-log-level", "error"}
	if jsonMode {
		args = append(args, "-json")
	}
	if withObs {
		// -metrics-json enables the Obs layer without touching stdout, so the
		// obs-on/obs-off comparison is byte-for-byte.
		args = append(args, "-metrics-json", filepath.Join(t.TempDir(), "m.json"))
	}
	args = append(args, trace)
	var out, errBuf bytes.Buffer
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, errBuf.String())
	}
	return out.String()
}

// TestGoldenExplain pins the -explain text report against a golden file and
// asserts the evidence contract: byte-identical output at every
// workers×shards combination, with the Obs layer on or off.
func TestGoldenExplain(t *testing.T) {
	golden := filepath.Join("testdata", "clean.explain.golden")
	got := renderExplain(t, false, "1", "1", false)

	for _, workers := range []string{"1", "2", "8"} {
		for _, shards := range []string{"1", "4"} {
			if alt := renderExplain(t, false, workers, shards, false); alt != got {
				t.Errorf("explain output differs at workers=%s shards=%s", workers, shards)
			}
		}
	}
	if alt := renderExplain(t, false, "4", "2", true); alt != got {
		t.Error("explain output differs with obs enabled")
	}

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tdat -run TestGoldenExplain -update` to seed it)", err)
	}
	if got != string(want) {
		t.Errorf("explain report differs from %s (rerun with -update if intended)\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestGoldenExplainJSON pins the -json -explain output the same way.
func TestGoldenExplainJSON(t *testing.T) {
	golden := filepath.Join("testdata", "clean.explain.json.golden")
	got := renderExplain(t, true, "1", "1", false)

	for _, workers := range []string{"2", "8"} {
		if alt := renderExplain(t, true, workers, "4", false); alt != got {
			t.Errorf("explain JSON differs at workers=%s shards=4", workers)
		}
	}

	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/tdat -run TestGoldenExplainJSON -update` to seed it)", err)
	}
	if got != string(want) {
		t.Errorf("explain JSON differs from %s (rerun with -update if intended)\n--- got\n%s\n--- want\n%s",
			golden, got, want)
	}
}

// TestTraceJSONSchema runs -trace-json on the clean trace and checks the
// catapult contract: the file parses, every event has name/ph/ts/pid/tid,
// and both layers are present — pipeline spans (pid 1) and at least one
// per-connection transfer timeline (pid ≥ 100).
func TestTraceJSONSchema(t *testing.T) {
	trace := filepath.Join("testdata", "clean.pcap")
	out := filepath.Join(t.TempDir(), "run.trace.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-trace-json", out, "-log-level", "error", trace}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	pipelineSpans, timelineEvents := 0, 0
	for i, ev := range f.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		pid, _ := ev["pid"].(float64)
		if ev["ph"] == "M" {
			continue
		}
		if pid == 1 {
			pipelineSpans++
		}
		if pid >= 100 {
			timelineEvents++
		}
	}
	if pipelineSpans == 0 {
		t.Error("no pipeline spans (pid 1) in trace")
	}
	if timelineEvents == 0 {
		t.Error("no per-connection timeline events (pid ≥ 100) in trace")
	}
}

// httpGet fetches url, returning body and status ("" and 0 on transport
// error so pollers can retry).
func httpGet(url string) (string, int) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode
}

// launchWithMetrics starts run in the background with -metrics-addr :0 and
// returns the bound address plus the exit-code channel.
func launchWithMetrics(t *testing.T, extra ...string) (string, chan int) {
	t.Helper()
	trace := filepath.Join("testdata", "clean.pcap")
	addrCh := make(chan string, 1)
	metricsAddrHook = func(a string) { addrCh <- a }
	t.Cleanup(func() { metricsAddrHook = nil })
	args := append([]string{"-metrics-addr", "127.0.0.1:0", "-metrics-hold", "2s",
		"-log-level", "error"}, extra...)
	args = append(args, trace)
	done := make(chan int, 1)
	go func() {
		var stdout, stderr bytes.Buffer
		done <- run(args, &stdout, &stderr)
	}()
	select {
	case addr := <-addrCh:
		return addr, done
	case <-time.After(10 * time.Second):
		t.Fatal("metrics listener never came up")
		return "", done
	}
}

// TestDebugExplainEndpoint scrapes /debug/explain after a -explain run:
// 503 while analysis runs is tolerated, then the JSON report must appear.
func TestDebugExplainEndpoint(t *testing.T) {
	addr, done := launchWithMetrics(t, "-explain")
	url := "http://" + addr + "/debug/explain"
	deadline := time.Now().Add(5 * time.Second)
	var body string
	var status int
	for time.Now().Before(deadline) {
		body, status = httpGet(url)
		if status == 200 {
			break
		}
		if status != 0 && status != http.StatusServiceUnavailable {
			t.Fatalf("/debug/explain status %d, body %q", status, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != 200 {
		t.Fatalf("/debug/explain never became ready (last status %d)", status)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("explain endpoint returned invalid JSON: %v\n%s", err, body)
	}
	if _, ok := rep["transfers"]; !ok {
		t.Errorf("explain JSON missing transfers: %s", body)
	}
	if code := <-done; code != 0 {
		t.Errorf("run exit %d", code)
	}
}

// TestDebugExplainDisabled: without -explain the endpoint answers 404.
func TestDebugExplainDisabled(t *testing.T) {
	addr, done := launchWithMetrics(t)
	body, status := httpGet("http://" + addr + "/debug/explain")
	if status != http.StatusNotFound {
		t.Errorf("/debug/explain without -explain: status %d, body %q", status, body)
	}
	if code := <-done; code != 0 {
		t.Errorf("run exit %d", code)
	}
}

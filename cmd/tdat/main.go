// Command tdat is the TCP Delay Analysis Tool: it reads a bidirectional
// pcap trace captured next to a BGP collector, extracts every TCP
// connection, and explains where each table transfer's time went — the
// 8-factor delay-ratio vector, the 3-group summary, and the known-problem
// detectors (pacing timers, consecutive losses, the zero-window bug).
//
// Usage:
//
//	tdat [-series] [-threshold 0.3] [-sniffer receiver|sender]
//	     [-mrt archive.mrt] [-workers N]
//	     [-strict] [-max-connections N] [-max-reassembly-bytes N]
//	     [-explain] [-trace-json run.trace.json]
//	     [-progress] [-metrics-addr :9177] [-metrics-hold 60s]
//	     [-span-log spans.jsonl] [-self-profile] [-metrics-json m.json]
//	     [-log-level info] trace.pcap
//
// With -mrt, transfer ends come from the collector's BGP archive (the
// paper's Quagga pipeline) instead of payload reassembly.
//
// Damaged captures are analyzed leniently by default: unreadable records,
// truncated tails, clock regressions, and corrupt BGP framing degrade the
// analysis and are itemized in a degradation report after the transfers.
// -strict refuses such input at the first concession; -max-connections and
// -max-reassembly-bytes bound demux and reassembly memory against
// adversarial traces (0 = unlimited).
//
// The observability flags never change analysis output and freely combine —
// each one independently enables the shared instrumentation layer:
// -progress reports ingest progress on stderr, -metrics-addr serves
// Prometheus /metrics plus /debug/vars, /debug/pprof, and /debug/explain,
// -span-log records per-stage tracing spans as JSON lines (schema v2; also
// feeds -trace-json and the -metrics-json histograms), -self-profile prints
// the analyzer's own delay-factor breakdown (which pipeline stage the run's
// time went to), and -metrics-json writes the same registry a -metrics-addr
// scrape would see as one JSON snapshot at exit.
//
// -explain records evidence provenance for every rule evaluation — which
// rule fired, the measurements compared, the thresholds, and the
// contributing intervals — rendered as a text report (or JSON with -json)
// and served on /debug/explain. -trace-json writes a Chrome trace_event
// file merging the pipeline spans with per-connection transfer timelines;
// open it at ui.perfetto.dev. Both are deterministic: byte-identical output
// at any -workers/-shards setting.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/netip"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"tdat/internal/core"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/mrt"
	"tdat/internal/obs"
	"tdat/internal/series"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// metricsAddrHook, when set (by tests), receives the bound metrics address
// once the listener is up.
var metricsAddrHook func(string)

// run is main with its dependencies injected — the golden end-to-end test
// drives it in-process with a buffer for stdout.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		plotSeries = fs.Bool("series", false, "render the event-series lanes per connection")
		threshold  = fs.Float64("threshold", 0.3, "major factor-group threshold (fraction of transfer duration)")
		sniffer    = fs.String("sniffer", "receiver", "sniffer location: receiver or sender")
		noShift    = fs.Bool("noshift", false, "disable sniffer-location ACK shifting")
		mrtPath    = fs.String("mrt", "", "collector MRT archive to pin transfer ends (Quagga pipeline)")
		asJSON     = fs.Bool("json", false, "emit machine-readable JSON per connection")
		workers    = fs.Int("workers", 0, "analysis worker count (0 = all CPUs, 1 = sequential); output is identical for any value")
		shards     = fs.Int("shards", 0, "demux shard count for connection tracking (0 or 1 = single demuxer); output is identical for any value")
		strict     = fs.Bool("strict", false, "refuse damaged captures: fail at the first degradation event instead of analyzing leniently")
		maxConns   = fs.Int("max-connections", 0, "cap simultaneously tracked connections; when full the oldest open one is force-completed (0 = unlimited)")
		maxReasm   = fs.Int64("max-reassembly-bytes", 0, "cap per-connection reassembled stream bytes (0 = unlimited)")
		explainOut = fs.Bool("explain", false, "record evidence provenance per rule evaluation; printed after the report (JSON with -json) and served on /debug/explain")
		traceJSON  = fs.String("trace-json", "", "write a Chrome trace_event timeline (pipeline spans + per-connection transfer lanes) to this file; open in Perfetto")

		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		progress    = fs.Bool("progress", false, "report ingest progress on stderr while analyzing")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (\":0\" picks a port)")
		metricsHold = fs.Duration("metrics-hold", 0, "keep the metrics listener up this long after analysis (lets scrapers catch one-shot runs)")
		spanLog     = fs.String("span-log", "", "append per-stage tracing spans as JSON lines (schema v2) to this file; combines freely with -metrics-json and -self-profile")
		selfProfile = fs.Bool("self-profile", false, "print the analyzer self delay-factor profile after the report; combines freely with -span-log and -metrics-json")
		metricsJSON = fs.String("metrics-json", "", "write a JSON metrics snapshot (the same registry a -metrics-addr scrape sees) to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := obs.InitLogging(stderr, *logLevel); err != nil {
		fmt.Fprintf(stderr, "tdat: %v\n", err)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tdat [flags] trace.pcap")
		fs.PrintDefaults()
		return 2
	}

	cfg := core.Config{
		MajorThreshold:     *threshold,
		Workers:            *workers,
		Shards:             *shards,
		Strict:             *strict,
		MaxConnections:     *maxConns,
		MaxReassemblyBytes: *maxReasm,
	}
	cfg.Series.DisableShift = *noShift
	switch *sniffer {
	case "receiver":
		cfg.Series.Sniffer = series.AtReceiver
	case "sender":
		cfg.Series.Sniffer = series.AtSender
	default:
		slog.Error("unknown sniffer location", "sniffer", *sniffer)
		return 2
	}

	cfg.Explain = *explainOut

	// Any observability consumer enables the shared Obs hook; with none the
	// analyzer keeps its nil fast path.
	var o *obs.Obs
	if *progress || *metricsAddr != "" || *spanLog != "" || *selfProfile || *metricsJSON != "" || *traceJSON != "" {
		o = obs.New()
	}
	cfg.Obs = o
	if *traceJSON != "" {
		o.KeepSpans()
	}

	// The explain report is published to /debug/explain once analysis
	// completes; until then the handler answers 503.
	var explainBuf atomic.Pointer[[]byte]

	// flushSpans runs before the -metrics-hold sleep too, so a scraper-side
	// kill during the hold can't lose buffered span records.
	flushSpans := func() {}
	if *spanLog != "" {
		sf, err := os.Create(*spanLog)
		if err != nil {
			slog.Error("opening span log", "path", *spanLog, "err", err)
			return 1
		}
		defer sf.Close()
		sw := bufio.NewWriter(sf)
		flushSpans = func() { sw.Flush() }
		defer sw.Flush()
		o.SetSpanLog(sw)
		slog.Debug("span log enabled", "path", *spanLog)
	}

	if *metricsAddr != "" {
		explainRoute := obs.Route{Pattern: "/debug/explain", Handler: http.HandlerFunc(
			func(w http.ResponseWriter, _ *http.Request) {
				if !*explainOut {
					http.Error(w, "explain disabled: run with -explain", http.StatusNotFound)
					return
				}
				b := explainBuf.Load()
				if b == nil {
					http.Error(w, "analysis in progress", http.StatusServiceUnavailable)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.Write(*b)
			})}
		srv, err := obs.Serve(*metricsAddr, o, explainRoute)
		if err != nil {
			slog.Error("starting metrics listener", "addr", *metricsAddr, "err", err)
			return 1
		}
		defer srv.Close()
		slog.Info("metrics listening", "addr", srv.Addr(),
			"endpoints", "/metrics /debug/vars /debug/pprof /debug/explain")
		if metricsAddrHook != nil {
			metricsAddrHook(srv.Addr())
		}
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		slog.Error("opening trace", "err", err)
		return 1
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && o != nil {
		o.Progress.SetTotalBytes(fi.Size())
	}

	stopProgress := func() {}
	if *progress {
		stopProgress = o.Progress.Run(stderr, 2*time.Second)
	}

	analyzer := core.New(cfg)
	var rep *core.Report
	if *mrtPath == "" {
		rep, err = analyzer.AnalyzePcap(f)
	} else {
		rep, err = analyzeWithArchive(analyzer, f, *mrtPath)
	}
	stopProgress()
	if err != nil {
		slog.Error("analysis failed", "err", err)
		return 1
	}
	if rep.SkippedPackets > 0 {
		slog.Warn("undecodable packets skipped", "count", rep.SkippedPackets)
	}
	if !rep.Degradation.Empty() {
		slog.Warn("damaged capture analyzed leniently; see degradation report",
			"concessions", rep.Degradation.Count())
	}
	for _, fl := range rep.Failures {
		slog.Warn("connection analysis panicked; report omitted",
			"conn", fl.Conn, "panic", fl.Panic)
	}

	var explainRep *core.ExplainReport
	if *explainOut {
		explainRep = rep.Explain()
		var buf bytes.Buffer
		if err := explainRep.WriteJSON(&buf); err == nil {
			b := buf.Bytes()
			explainBuf.Store(&b)
		}
	}

	code := 0
	if *asJSON {
		for _, t := range rep.Transfers {
			if err := t.WriteJSON(stdout); err != nil {
				slog.Error("writing report", "err", err)
				code = 1
				break
			}
		}
		if code == 0 && explainRep != nil {
			if err := explainRep.WriteJSON(stdout); err != nil {
				slog.Error("writing explain report", "err", err)
				code = 1
			}
		}
	} else {
		fmt.Fprintf(stdout, "%d connection(s)\n\n", len(rep.Transfers))
		for _, t := range rep.Transfers {
			if err := t.WriteText(stdout, *plotSeries); err != nil {
				slog.Error("writing report", "err", err)
				code = 1
				break
			}
			fmt.Fprintln(stdout)
		}
		// Printed only for damaged input, so clean-trace output is
		// byte-identical with and without the lenient machinery.
		if code == 0 && !rep.Degradation.Empty() {
			if err := rep.Degradation.WriteText(stdout); err != nil {
				slog.Error("writing degradation report", "err", err)
				code = 1
			}
		}
		if code == 0 && explainRep != nil {
			if err := explainRep.WriteText(stdout); err != nil {
				slog.Error("writing explain report", "err", err)
				code = 1
			}
		}
	}

	if *traceJSON != "" && code == 0 {
		// Pipeline spans under pid 1, per-connection timelines from pid 100,
		// merged into one catapult file.
		events := obs.SpanTraceEvents(o.Spans(), 1)
		events = append(events, rep.TraceEvents(100)...)
		tf, err := os.Create(*traceJSON)
		if err != nil {
			slog.Error("writing trace", "path", *traceJSON, "err", err)
			code = 1
		} else {
			if err := obs.WriteTrace(tf, events); err != nil {
				slog.Error("writing trace", "path", *traceJSON, "err", err)
				code = 1
			}
			tf.Close()
		}
	}

	if *selfProfile && code == 0 {
		o.WriteSelfProfile(stdout)
	}
	if *metricsJSON != "" {
		mf, err := os.Create(*metricsJSON)
		if err != nil {
			slog.Error("writing metrics snapshot", "path", *metricsJSON, "err", err)
			code = 1
		} else {
			if err := o.Registry().WriteJSON(mf); err != nil {
				slog.Error("writing metrics snapshot", "path", *metricsJSON, "err", err)
				code = 1
			}
			mf.Close()
		}
	}
	flushSpans()
	if *metricsHold > 0 && *metricsAddr != "" {
		slog.Info("holding metrics listener open", "hold", *metricsHold)
		time.Sleep(*metricsHold)
	}
	return code
}

// analyzeWithArchive runs the Quagga pipeline: connections from the pcap
// (streamed through the concurrent analysis pipeline), transfer ends from
// the MRT archive, matched by the sending router's address.
func analyzeWithArchive(a *core.Analyzer, pcapF *os.File, mrtPath string) (*core.Report, error) {
	mf, err := os.Open(mrtPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	mrecs, err := mrt.ReadAll(mf)
	if err != nil && len(mrecs) == 0 {
		return nil, err
	}
	// Bucket archive records by peer (router) address and sort each bucket
	// by timestamp once, so scoping each connection's lifetime window is a
	// pair of binary searches instead of a scan of the whole archive
	// (archives span many sessions; transfers × records scans dominated).
	byPeer := map[netip.Addr][]mrt.Record{}
	for _, r := range mrecs {
		byPeer[r.PeerIP] = append(byPeer[r.PeerIP], r)
	}
	for _, recs := range byPeer {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].TimeMicros < recs[j].TimeMicros })
	}
	// byPeer is read-only from here on: the per-connection analyses below
	// run concurrently on the worker pool.
	return a.AnalyzePcapWith(pcapF, func(c *flows.Connection) *core.TransferReport {
		// Only archive records within this connection's lifetime belong to
		// its transfer (plus a 1 s grace for the collector's write delay).
		recs := byPeer[c.Sender.Addr]
		start, end := c.Profile.Start, c.Profile.End+1_000_000
		lo := sort.Search(len(recs), func(i int) bool { return recs[i].TimeMicros >= start })
		hi := sort.Search(len(recs), func(i int) bool { return recs[i].TimeMicros > end })
		ups := mct.FromMRT(recs[lo:hi])
		return a.AnalyzeConnectionWithUpdates(c, ups)
	})
}

// Command tdat is the TCP Delay Analysis Tool: it reads a bidirectional
// pcap trace captured next to a BGP collector, extracts every TCP
// connection, and explains where each table transfer's time went — the
// 8-factor delay-ratio vector, the 3-group summary, and the known-problem
// detectors (pacing timers, consecutive losses, the zero-window bug).
//
// Usage:
//
//	tdat [-series] [-threshold 0.3] [-sniffer receiver|sender]
//	     [-mrt archive.mrt] [-workers N] trace.pcap
//
// With -mrt, transfer ends come from the collector's BGP archive (the
// paper's Quagga pipeline) instead of payload reassembly.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"

	"tdat/internal/core"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/mrt"
	"tdat/internal/series"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		plotSeries = flag.Bool("series", false, "render the event-series lanes per connection")
		threshold  = flag.Float64("threshold", 0.3, "major factor-group threshold (fraction of transfer duration)")
		sniffer    = flag.String("sniffer", "receiver", "sniffer location: receiver or sender")
		noShift    = flag.Bool("noshift", false, "disable sniffer-location ACK shifting")
		mrtPath    = flag.String("mrt", "", "collector MRT archive to pin transfer ends (Quagga pipeline)")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON per connection")
		workers    = flag.Int("workers", 0, "analysis worker count (0 = all CPUs, 1 = sequential); output is identical for any value")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdat [flags] trace.pcap")
		flag.PrintDefaults()
		return 2
	}

	cfg := core.Config{MajorThreshold: *threshold, Workers: *workers}
	cfg.Series.DisableShift = *noShift
	switch *sniffer {
	case "receiver":
		cfg.Series.Sniffer = series.AtReceiver
	case "sender":
		cfg.Series.Sniffer = series.AtSender
	default:
		fmt.Fprintf(os.Stderr, "tdat: unknown sniffer location %q\n", *sniffer)
		return 2
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
		return 1
	}
	defer f.Close()

	analyzer := core.New(cfg)
	var rep *core.Report
	if *mrtPath == "" {
		rep, err = analyzer.AnalyzePcap(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
	} else {
		rep, err = analyzeWithArchive(analyzer, f, *mrtPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
	}
	if rep.SkippedPackets > 0 {
		fmt.Printf("warning: %d undecodable packets skipped\n", rep.SkippedPackets)
	}
	if *asJSON {
		for _, t := range rep.Transfers {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
				return 1
			}
		}
		return 0
	}
	fmt.Printf("%d connection(s)\n\n", len(rep.Transfers))
	for _, t := range rep.Transfers {
		if err := t.WriteText(os.Stdout, *plotSeries); err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

// analyzeWithArchive runs the Quagga pipeline: connections from the pcap
// (streamed through the concurrent analysis pipeline), transfer ends from
// the MRT archive, matched by the sending router's address.
func analyzeWithArchive(a *core.Analyzer, pcapF *os.File, mrtPath string) (*core.Report, error) {
	mf, err := os.Open(mrtPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	mrecs, err := mrt.ReadAll(mf)
	if err != nil && len(mrecs) == 0 {
		return nil, err
	}
	// Bucket archive records by peer (router) address and sort each bucket
	// by timestamp once, so scoping each connection's lifetime window is a
	// pair of binary searches instead of a scan of the whole archive
	// (archives span many sessions; transfers × records scans dominated).
	byPeer := map[netip.Addr][]mrt.Record{}
	for _, r := range mrecs {
		byPeer[r.PeerIP] = append(byPeer[r.PeerIP], r)
	}
	for _, recs := range byPeer {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].TimeMicros < recs[j].TimeMicros })
	}
	// byPeer is read-only from here on: the per-connection analyses below
	// run concurrently on the worker pool.
	return a.AnalyzePcapWith(pcapF, func(c *flows.Connection) *core.TransferReport {
		// Only archive records within this connection's lifetime belong to
		// its transfer (plus a 1 s grace for the collector's write delay).
		recs := byPeer[c.Sender.Addr]
		start, end := c.Profile.Start, c.Profile.End+1_000_000
		lo := sort.Search(len(recs), func(i int) bool { return recs[i].TimeMicros >= start })
		hi := sort.Search(len(recs), func(i int) bool { return recs[i].TimeMicros > end })
		ups := mct.FromMRT(recs[lo:hi])
		return a.AnalyzeConnectionWithUpdates(c, ups)
	})
}

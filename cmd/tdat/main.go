// Command tdat is the TCP Delay Analysis Tool: it reads a bidirectional
// pcap trace captured next to a BGP collector, extracts every TCP
// connection, and explains where each table transfer's time went — the
// 8-factor delay-ratio vector, the 3-group summary, and the known-problem
// detectors (pacing timers, consecutive losses, the zero-window bug).
//
// Usage:
//
//	tdat [-series] [-threshold 0.3] [-sniffer receiver|sender]
//	     [-mrt archive.mrt] trace.pcap
//
// With -mrt, transfer ends come from the collector's BGP archive (the
// paper's Quagga pipeline) instead of payload reassembly.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"tdat/internal/core"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/mrt"
	"tdat/internal/pcapio"
	"tdat/internal/series"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		plotSeries = flag.Bool("series", false, "render the event-series lanes per connection")
		threshold  = flag.Float64("threshold", 0.3, "major factor-group threshold (fraction of transfer duration)")
		sniffer    = flag.String("sniffer", "receiver", "sniffer location: receiver or sender")
		noShift    = flag.Bool("noshift", false, "disable sniffer-location ACK shifting")
		mrtPath    = flag.String("mrt", "", "collector MRT archive to pin transfer ends (Quagga pipeline)")
		asJSON     = flag.Bool("json", false, "emit machine-readable JSON per connection")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdat [flags] trace.pcap")
		flag.PrintDefaults()
		return 2
	}

	cfg := core.Config{MajorThreshold: *threshold}
	cfg.Series.DisableShift = *noShift
	switch *sniffer {
	case "receiver":
		cfg.Series.Sniffer = series.AtReceiver
	case "sender":
		cfg.Series.Sniffer = series.AtSender
	default:
		fmt.Fprintf(os.Stderr, "tdat: unknown sniffer location %q\n", *sniffer)
		return 2
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
		return 1
	}
	defer f.Close()

	analyzer := core.New(cfg)
	var rep *core.Report
	if *mrtPath == "" {
		rep, err = analyzer.AnalyzePcap(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
	} else {
		rep, err = analyzeWithArchive(analyzer, f, *mrtPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
	}
	if rep.SkippedPackets > 0 {
		fmt.Printf("warning: %d undecodable packets skipped\n", rep.SkippedPackets)
	}
	if *asJSON {
		for _, t := range rep.Transfers {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
				return 1
			}
		}
		return 0
	}
	fmt.Printf("%d connection(s)\n\n", len(rep.Transfers))
	for _, t := range rep.Transfers {
		if err := t.WriteText(os.Stdout, *plotSeries); err != nil {
			fmt.Fprintf(os.Stderr, "tdat: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	return 0
}

// analyzeWithArchive runs the Quagga pipeline: connections from the pcap,
// transfer ends from the MRT archive, matched by the sending router's
// address.
func analyzeWithArchive(a *core.Analyzer, pcapF *os.File, mrtPath string) (*core.Report, error) {
	recs, err := pcapio.ReadAll(pcapF)
	if err != nil && len(recs) == 0 {
		return nil, err
	}
	mf, err := os.Open(mrtPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	mrecs, err := mrt.ReadAll(mf)
	if err != nil && len(mrecs) == 0 {
		return nil, err
	}
	// Bucket archive records by peer (router) address.
	byPeer := map[netip.Addr][]mrt.Record{}
	for _, r := range mrecs {
		byPeer[r.PeerIP] = append(byPeer[r.PeerIP], r)
	}
	conns, skipped := flows.FromPcap(recs)
	rep := &core.Report{SkippedPackets: skipped}
	for _, c := range conns {
		// Only archive records within this connection's lifetime belong to
		// its transfer (an archive spans many sessions).
		var scoped []mrt.Record
		for _, r := range byPeer[c.Sender.Addr] {
			if r.TimeMicros >= c.Profile.Start && r.TimeMicros <= c.Profile.End+1_000_000 {
				scoped = append(scoped, r)
			}
		}
		ups := mct.FromMRT(scoped)
		rep.Transfers = append(rep.Transfers, a.AnalyzeConnectionWithUpdates(c, ups))
	}
	return rep, nil
}

// Command tcpprof is the repo's mini-tcptrace (paper Table VI, tcptrace'):
// it extracts TCP connections from a pcap trace and prints per-connection
// profiles — endpoints, duration, RTT, MSS, advertised windows, volumes,
// and retransmission/out-of-sequence/reordering labels.
//
// Usage:
//
//	tcpprof trace.pcap
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"tdat/internal/flows"
	"tdat/internal/obs"
	"tdat/internal/pcapio"
)

func main() {
	os.Exit(run())
}

func run() int {
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	flag.Parse()
	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "tcpprof: %v\n", err)
		return 2
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcpprof [flags] trace.pcap")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		slog.Error("opening trace", "err", err)
		return 1
	}
	defer f.Close()
	recs, err := pcapio.ReadAll(f)
	if err != nil && len(recs) == 0 {
		slog.Error("reading trace", "err", err)
		return 1
	}
	conns, skipped := flows.FromPcap(recs)
	fmt.Printf("%d records (%d undecodable), %d connections\n\n", len(recs), skipped, len(conns))
	for i, c := range conns {
		p := c.Profile
		fmt.Printf("conn %d: %s -> %s\n", i, c.Sender, c.Receiver)
		fmt.Printf("  span: %.3fs - %.3fs (%.3fs)\n",
			float64(p.Start)/1e6, float64(p.End)/1e6, float64(p.End-p.Start)/1e6)
		fmt.Printf("  rtt: %.2fms  mss: %d  max adv window: %d  initiator=sender: %v\n",
			float64(p.RTT)/1e3, p.MSS, p.MaxAdvWindow, p.InitiatorIsSender)
		fmt.Printf("  data: %d bytes in %d packets; acks: %d\n",
			p.TotalDataBytes, p.TotalDataPackets, len(c.Acks))
		fmt.Printf("  retransmissions: %d  out-of-sequence: %d  reordered: %d\n",
			p.RetransmitCount, p.GapFillCount, p.ReorderCount)
		fmt.Printf("  loss recovery: upstream %.3fs in %d ranges, downstream %.3fs in %d ranges\n\n",
			float64(c.UpstreamLoss.Size())/1e6, c.UpstreamLoss.Len(),
			float64(c.DownstreamLoss.Size())/1e6, c.DownstreamLoss.Len())
	}
	return 0
}

// Command experiments regenerates the paper's evaluation: every table
// (I–V) and figure (3–17) from synthetic datasets at reproduction scale.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|table4|table5|fig3|fig4|
//	             fig5|fig6|fig7|fig8|fig9|fig11|fig14|fig15|fig16|fig17|
//	             paperscale|accuracy|stacks|dimensions|throughput]
//	            [-scale default|quick] [-seed 42] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"tdat/internal/experiments"
	"tdat/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		which    = flag.String("run", "all", "experiment id(s), comma separated")
		scale    = flag.String("scale", "default", "dataset scale: default, quick, or full (paper-exact)")
		seed     = flag.Int64("seed", 42, "base random seed")
		workers  = flag.Int("workers", 0, "generate+analyze worker count (0 = all CPUs); results are identical for any value")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()
	if err := obs.InitLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}

	sc := experiments.DefaultScale()
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale() // paper-exact 10396/436/94; ~10 min on one core
	}
	sc.Seed = *seed
	sc.Workers = *workers

	want := map[string]bool{}
	for _, id := range strings.Split(*which, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	need := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	w := os.Stdout
	// Suite-based experiments share one generated suite.
	var suite *experiments.Suite
	if need("table1", "table2", "table4", "table5", "fig3", "fig4", "fig14", "fig16", "fig17", "throughput") {
		slog.Info("generating datasets", "scale", *scale, "seed", *seed)
		start := time.Now()
		suite = experiments.RunSuite(sc)
		slog.Info("generated and analyzed suite",
			"transfers", len(suite.Vendor().Transfers)+len(suite.Quagga().Transfers)+len(suite.RV().Transfers),
			"elapsed", time.Since(start).Round(100*time.Millisecond))
	}

	if need("table1") {
		experiments.Table1(w, suite)
	}
	if need("fig3") {
		experiments.Fig3(w, suite)
	}
	if need("fig4") {
		experiments.Fig4(w, suite)
	}
	if need("table2") {
		experiments.Table2(w, suite, 3)
	}
	if need("table3") {
		experiments.Table3(w, sc.Seed+1000)
	}
	if need("fig5") {
		experiments.Fig5(w, sc.Seed+1001)
	}
	if need("fig6") {
		experiments.Fig6(w, sc.Seed+1002)
	}
	if need("fig7") {
		experiments.Fig7(w, sc.Seed+1003)
	}
	if need("fig8") {
		experiments.Fig8(w, sc.Seed+1004)
	}
	if need("fig9") {
		experiments.Fig9(w, sc.Seed+1005)
	}
	if need("fig11") {
		experiments.Fig11(w, sc.Seed+1006)
	}
	if need("fig14") {
		experiments.Fig14(w, suite)
	}
	if need("table4") {
		experiments.Table4(w, suite)
	}
	if need("fig15") {
		experiments.Fig15(w, sc.Seed+1007, nil)
	}
	if need("fig16") {
		experiments.Fig16(w, suite)
	}
	if need("fig17") {
		experiments.Fig17(w, suite)
		experiments.Fig17Gaps(w, suite)
	}
	if need("table5") {
		experiments.Table5(w, suite, 3)
	}
	if need("paperscale") {
		experiments.PaperScale(w, sc.Seed+4000)
	}
	if need("accuracy") {
		experiments.AccuracyTable(w, sc.Seed+3000, 5)
	}
	if need("stacks") {
		experiments.StackRobustnessTable(w, sc.Seed+5000, 3)
	}
	if need("dimensions") {
		// The dimension grid's expected verdicts are calibrated at seed
		// offset 0 (the same grid the validation floors gate); a non-default
		// -seed rotates it by the user's deviation.
		experiments.DimensionRobustnessTable(w, sc.Seed-experiments.DefaultScale().Seed)
	}
	if need("throughput") {
		t := experiments.MeasureThroughput(30, sc.Seed+2000)
		fmt.Fprintf(w, "\n=== Analyzer throughput (paper §V-C: 26 s/connection in Perl) ===\n%s\n", t)
	}
	return 0
}

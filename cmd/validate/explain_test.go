package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExplainFailuresNegativePath raises a floor beyond reach (F1 > 1 is
// unsatisfiable) and asserts -explain-failures turns the breach into a
// non-empty evidence diff: the offending case, the truth-vs-inference
// interval sets, and the analyzer's rule evaluations.
func TestExplainFailuresNegativePath(t *testing.T) {
	floors := filepath.Join(t.TempDir(), "floors.txt")
	if err := os.WriteFile(floors, []byte("series.app-idle.f1 1.01\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-quick", "-routes", "500", "-floors", floors, "-explain-failures"},
		&out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (floor breach), stderr:\n%s", code, errBuf.String())
	}
	text := out.String()
	for _, want := range []string{
		"FLOOR BREACHES",
		"explaining 1 floor breach(es)",
		"series app-idle: F1",
		"offends: series app-idle F1",
		"diff app-idle",
		"truth",
		"inferred",
		"missed",
		"spurious",
		"analyzer evidence",
		"rule evaluations",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain-failures output missing %q\n--- output ---\n%s", want, text)
		}
	}
}

// TestExplainFailuresQuietWhenPassing: with floors that hold, the sweep
// exits 0 and prints no evidence dump.
func TestExplainFailuresQuietWhenPassing(t *testing.T) {
	floors := filepath.Join(t.TempDir(), "floors.txt")
	// Floors of 0 always hold.
	if err := os.WriteFile(floors,
		[]byte("series.app-idle.f1 0\nconfusion.accuracy 0\ndetect.rate 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-quick", "-routes", "500", "-floors", floors, "-explain-failures"},
		&out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0, output:\n%s\nstderr:\n%s", code, out.String(), errBuf.String())
	}
	if strings.Contains(out.String(), "explaining") {
		t.Errorf("evidence dump printed with all floors holding:\n%s", out.String())
	}
}

// Command validate runs the ground-truth validation sweep: simulator
// scenarios with authoritative event records are analyzed by the full
// T-DAT pipeline, the inferred series and factors are scored against the
// truth, and the scorecard is gated on accuracy floors. CI runs it via
// scripts/validatecheck.sh; a non-zero exit means the analyzer regressed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tdat/internal/oracle"
	"tdat/internal/tcpsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "one representative case per scenario kind (the CI mode)")
	seed := fs.Int64("seed", 0, "scenario seed offset")
	workers := fs.Int("workers", 0, "analyzer worker-pool size (0 = GOMAXPROCS)")
	routes := fs.Int("routes", 0, "routes per scenario table (0 = default)")
	jsonPath := fs.String("json", "", "also write the JSON report to this path")
	floorPath := fs.String("floors", "", "floor file overriding the built-in gate (see scripts/validatefloor.txt)")
	noGate := fs.Bool("nogate", false, "report only; never fail on floors")
	explainFailures := fs.Bool("explain-failures", false, "on a floor breach, print the evidence diff between oracle truth and analyzer inference for offending cases")
	stacksFlag := fs.String("stacks", "", "extra sender stacks to sweep: comma list (reno,cubic,...) or \"all\"; empty = reno only")
	stackTable := fs.String("stack-table", "", "write the markdown which-inferences-survive-which-stack table to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stacks, err := parseStacks(*stacksFlag)
	if err != nil {
		fmt.Fprintf(stderr, "validate: %v\n", err)
		return 2
	}

	floors := oracle.DefaultFloors()
	if *floorPath != "" {
		f, err := os.Open(*floorPath)
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
		floors, err = oracle.ParseFloors(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
	}

	res := oracle.Run(oracle.Config{
		Quick:   *quick,
		Seed:    *seed,
		Workers: *workers,
		Routes:  *routes,
		Explain: *explainFailures,
		Stacks:  stacks,
	})
	res.WriteText(stdout)

	if *stackTable != "" {
		f, err := os.Create(*stackTable)
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
		res.WriteStackTable(f)
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
		err = res.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "validate: %v\n", err)
			return 2
		}
	}

	if breaches := res.Check(floors); len(breaches) > 0 {
		fmt.Fprintf(stdout, "\nFLOOR BREACHES (%d):\n", len(breaches))
		for _, b := range breaches {
			fmt.Fprintf(stdout, "  - %s\n", b)
		}
		if *explainFailures {
			fmt.Fprintln(stdout)
			res.WriteExplainFailures(stdout, floors)
		}
		if !*noGate {
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "\nall floors hold\n")
	}
	return 0
}

// parseStacks turns the -stacks flag into the oracle's sweep list: empty
// means the default (Reno only), "all" is every known stack, and otherwise
// it is a comma-separated list of stack names with Reno prepended if absent
// (the top-level scorecard always belongs to Reno).
func parseStacks(spec string) ([]tcpsim.Stack, error) {
	if spec == "" {
		return nil, nil
	}
	if spec == "all" {
		return tcpsim.AllStacks(), nil
	}
	var out []tcpsim.Stack
	haveReno := false
	for _, name := range strings.Split(spec, ",") {
		s, err := tcpsim.ParseStack(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if s == tcpsim.StackReno {
			haveReno = true
		}
		out = append(out, s)
	}
	if !haveReno {
		out = append([]tcpsim.Stack{tcpsim.StackReno}, out...)
	}
	return out, nil
}

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (printed once per run), plus microbenchmarks of the hot data
// structures and ablations of the analyzer's design choices.
//
//	go test -bench=. -benchmem
package tdat_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"tdat/internal/core"
	"tdat/internal/experiments"
	"tdat/internal/factors"
	"tdat/internal/flows"
	"tdat/internal/obs"
	"tdat/internal/pcapio"
	"tdat/internal/series"
	"tdat/internal/timerange"
	"tdat/internal/tracegen"
)

// sharedSuite generates the three datasets once per bench run; the per-
// iteration work of the table/figure benches is the aggregation itself.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		// Progress goes to stderr: stdout carries the regenerated tables and
		// figures, and tooling (benchstat, the CI perf gate) parses it.
		fmt.Fprintln(os.Stderr, "# generating benchmark suite (default scale, seed 42)...")
		suite = experiments.RunSuite(experiments.DefaultScale())
	})
	return suite
}

// onceEach prints each experiment's rows exactly once per bench run.
var printed sync.Map

func printOnce(key string, f func(w io.Writer)) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		f(os.Stdout)
	}
}

// --- Paper tables ---

func BenchmarkTable1Datasets(b *testing.B) {
	s := sharedSuite(b)
	printOnce("table1", func(w io.Writer) { experiments.Table1(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, s)
	}
}

func BenchmarkTable2Problems(b *testing.B) {
	s := sharedSuite(b)
	printOnce("table2", func(w io.Writer) { experiments.Table2(w, s, 3) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, s, 3)
	}
}

func BenchmarkTable3RetxDelays(b *testing.B) {
	printOnce("table3", func(w io.Writer) { experiments.Table3(w, 1042) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard, 1042)
	}
}

func BenchmarkTable4Factors(b *testing.B) {
	s := sharedSuite(b)
	printOnce("table4", func(w io.Writer) { experiments.Table4(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, s)
	}
}

func BenchmarkTable5ProblemDelay(b *testing.B) {
	s := sharedSuite(b)
	printOnce("table5", func(w io.Writer) { experiments.Table5(w, s, 3) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, s, 1)
	}
}

// --- Paper figures ---

func BenchmarkFig3DurationCDF(b *testing.B) {
	s := sharedSuite(b)
	printOnce("fig3", func(w io.Writer) { experiments.Fig3(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig3(io.Discard, s)
	}
}

func BenchmarkFig4StretchCDF(b *testing.B) {
	s := sharedSuite(b)
	printOnce("fig4", func(w io.Writer) { experiments.Fig4(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig4(io.Discard, s)
	}
}

func BenchmarkFig5TimerGapExample(b *testing.B) {
	printOnce("fig5", func(w io.Writer) { experiments.Fig5(w, 1043) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(io.Discard, 1043)
	}
}

func BenchmarkFig6ConsecutiveRetx(b *testing.B) {
	printOnce("fig6", func(w io.Writer) { experiments.Fig6(w, 1044) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(io.Discard, 1044)
	}
}

func BenchmarkFig7DownstreamLoss(b *testing.B) {
	printOnce("fig7", func(w io.Writer) { experiments.Fig7(w, 1045) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(io.Discard, 1045)
	}
}

func BenchmarkFig8UpstreamLoss(b *testing.B) {
	printOnce("fig8", func(w io.Writer) { experiments.Fig8(w, 1046) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(io.Discard, 1046)
	}
}

func BenchmarkFig9PeerGroupBlocking(b *testing.B) {
	printOnce("fig9", func(w io.Writer) { experiments.Fig9(w, 1047) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig9(io.Discard, 1047)
	}
}

func BenchmarkFig11SeriesExample(b *testing.B) {
	printOnce("fig11", func(w io.Writer) { experiments.Fig11(w, 1048) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig11(io.Discard, 1048)
	}
}

func BenchmarkFig14Scatter(b *testing.B) {
	s := sharedSuite(b)
	printOnce("fig14", func(w io.Writer) { experiments.Fig14(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig14(io.Discard, s)
	}
}

func BenchmarkFig15Concurrent(b *testing.B) {
	printOnce("fig15", func(w io.Writer) { experiments.Fig15(w, 1049, nil) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig15(io.Discard, 1049, []int{1, 8})
	}
}

func BenchmarkFig16DurationByFactor(b *testing.B) {
	s := sharedSuite(b)
	printOnce("fig16", func(w io.Writer) { experiments.Fig16(w, s) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig16(io.Discard, s)
	}
}

func BenchmarkFig17TimerKnee(b *testing.B) {
	s := sharedSuite(b)
	printOnce("fig17", func(w io.Writer) {
		experiments.Fig17(w, s)
		experiments.Fig17Gaps(w, s)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig17(io.Discard, s)
	}
}

// --- Parallel pipeline (connections fan out to the worker pool) ---

// parallelSuite builds one merged 32-connection capture (distinct router
// addresses, mixed pathologies) shared by the parallel benchmarks.
var (
	parallelOnce sync.Once
	parallelPkts []flows.TimedPacket
)

func parallelTrace(b *testing.B) []flows.TimedPacket {
	b.Helper()
	parallelOnce.Do(func() {
		const conns = 32
		for i := 0; i < conns; i++ {
			sc := tracegen.Scenario{Seed: int64(8000 + i), Routes: 2_000 + 250*(i%4)}
			switch i % 3 {
			case 0:
				sc.Kind = tracegen.KindPaced
				sc.PacingTimer = 200_000
				sc.PacingBudget = 24
			case 1:
				sc.Kind = tracegen.KindClean
			default:
				sc.Kind = tracegen.KindBandwidth
				sc.UpstreamRate = 120_000
			}
			tr := tracegen.Run(sc)
			// Each scenario simulates the same address pair; give every
			// transfer its own router address so the capture holds 32
			// distinct connections.
			addr := netip.AddrFrom4([4]byte{10, 2, 0, byte(i) + 1})
			for _, tp := range tr.Packets() {
				if tp.Pkt.TCP.SrcPort == 179 {
					tp.Pkt.IP.Src = addr
				} else {
					tp.Pkt.IP.Dst = addr
				}
				parallelPkts = append(parallelPkts, tp)
			}
		}
		sort.SliceStable(parallelPkts, func(i, j int) bool {
			return parallelPkts[i].Time < parallelPkts[j].Time
		})
	})
	return parallelPkts
}

// BenchmarkAnalyzeParallel measures whole-capture analysis throughput in
// connections/sec as the worker pool grows. Reports are byte-identical at
// every worker count (see core's TestParallelAnalysisByteIdentical); only
// wall-clock changes. Scaling needs real cores: on a 1-CPU box every row
// reports roughly the same rate.
func BenchmarkAnalyzeParallel(b *testing.B) {
	pkts := parallelTrace(b)
	ws := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ws = append(ws, n)
	}
	for _, w := range ws {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			analyzer := core.New(core.Config{Workers: w})
			var conns int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := analyzer.AnalyzePackets(pkts)
				conns = len(rep.Transfers)
			}
			if conns != 32 {
				b.Fatalf("transfers = %d, want 32", conns)
			}
			b.ReportMetric(float64(conns)*float64(b.N)/b.Elapsed().Seconds(), "conns/sec")
		})
	}
}

// BenchmarkAnalyzeParallelSharded sweeps the demux shard count on the
// streaming path (sharding only exists there — AnalyzePackets always uses
// one demuxer). Reports are byte-identical at every shard count (core's
// TestShardedAnalysisByteIdentical); the sweep prices the sharding
// machinery itself: global sequence numbering, the hash route, and the
// arrival-order merge.
func BenchmarkAnalyzeParallelSharded(b *testing.B) {
	pkts := parallelTrace(b)
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	for _, tp := range pkts {
		frame, err := tp.Pkt.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WritePacket(tp.Time, frame); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, s := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			analyzer := core.New(core.Config{Workers: 1, Shards: s})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := analyzer.AnalyzePcap(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Transfers) != 32 {
					b.Fatalf("transfers = %d", len(rep.Transfers))
				}
			}
			b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "conns/sec")
		})
	}
}

// BenchmarkAnalyzeParallelObs quantifies the observability layer's cost on
// the same workload: disabled (Config.Obs nil — the default fast path,
// whose regression budget vs. the uninstrumented seed is <2%), enabled
// (metrics + stage histograms), and enabled with the span log draining to
// io.Discard. The disabled row is the one BenchmarkAnalyzeParallel also
// exercises; the enabled rows price the full instrumentation.
func BenchmarkAnalyzeParallelObs(b *testing.B) {
	pkts := parallelTrace(b)
	modes := []struct {
		name string
		mk   func() *obs.Obs
	}{
		{"disabled", func() *obs.Obs { return nil }},
		{"enabled", obs.New},
		{"enabled+spanlog", func() *obs.Obs {
			o := obs.New()
			o.SetSpanLog(io.Discard)
			return o
		}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			analyzer := core.New(core.Config{Workers: 1, Obs: m.mk()})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := analyzer.AnalyzePackets(pkts)
				if len(rep.Transfers) != 32 {
					b.Fatalf("transfers = %d, want 32", len(rep.Transfers))
				}
			}
			b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "conns/sec")
		})
	}
}

// BenchmarkAnalyzeParallelStream is the same workload through the
// streaming pcap path — ingest, demux, and the analysis pool overlap.
func BenchmarkAnalyzeParallelStream(b *testing.B) {
	pkts := parallelTrace(b)
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	for _, tp := range pkts {
		frame, err := tp.Pkt.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WritePacket(tp.Time, frame); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	ws := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		ws = append(ws, n)
	}
	for _, nw := range ws {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			analyzer := core.New(core.Config{Workers: nw})
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := analyzer.AnalyzePcap(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Transfers) != 32 {
					b.Fatalf("transfers = %d", len(rep.Transfers))
				}
			}
			b.ReportMetric(32*float64(b.N)/b.Elapsed().Seconds(), "conns/sec")
		})
	}
}

// --- Analyzer throughput (paper §V-C: 26 s/connection in Perl) ---

func BenchmarkAnalyzerThroughput(b *testing.B) {
	printOnce("throughput", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Analyzer throughput ===\n%s\n", experiments.MeasureThroughput(20, 2042))
	})
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindSlowReceiver, Seed: 2042, Routes: 12_000})
	pkts := tr.Packets()
	analyzer := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := analyzer.AnalyzePackets(pkts)
		if len(rep.Transfers) != 1 {
			b.Fatal("analysis failed")
		}
	}
	b.ReportMetric(float64(len(pkts)), "packets/conn")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationAckShift compares factor attribution with and without
// the sniffer-location ACK shift.
func BenchmarkAblationAckShift(b *testing.B) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindBandwidth, Seed: 3042, Routes: 12_000, UpstreamRate: 60_000})
	pkts := tr.Packets()
	printOnce("ablation-ackshift", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Ablation: ACK shift (bandwidth-limited transfer) ===\n")
		for _, disable := range []bool{false, true} {
			cfg := core.Config{}
			cfg.Series.DisableShift = disable
			rep := core.New(cfg).AnalyzePackets(pkts)
			t := rep.Transfers[0]
			fmt.Fprintf(w, "shift=%-5v V=%v G=%v\n", !disable, t.Factors.V, t.Factors.G)
		}
	})
	analyzer := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.AnalyzePackets(pkts)
	}
}

// BenchmarkAblationMajorThreshold sweeps the major-factor cutoff (paper
// claims 0.3–0.5 is qualitatively stable).
func BenchmarkAblationMajorThreshold(b *testing.B) {
	s := sharedSuite(b)
	printOnce("ablation-threshold", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Ablation: major-factor threshold (ISPA-Vendor dominant-group counts) ===\n")
		for _, th := range []float64{0.3, 0.4, 0.5} {
			counts := map[factors.Group]int{}
			for _, t := range s.Vendor().Transfers {
				rep := factors.Analyze(t.Report.Catalog, t.Report.Transfer, th)
				if !rep.Unknown() {
					counts[rep.MajorGroups[0]]++
				}
			}
			fmt.Fprintf(w, "threshold=%.1f sender=%d receiver=%d network=%d\n",
				th, counts[factors.GroupSender], counts[factors.GroupReceiver], counts[factors.GroupNetwork])
		}
	})
	t0 := s.Vendor().Transfers[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		factors.Analyze(t0.Report.Catalog, t0.Report.Transfer, 0.3)
	}
}

// BenchmarkAblationWindowThreshold sweeps the small-window cutoff (3·MSS in
// the paper, adopted from the rate-analysis literature).
func BenchmarkAblationWindowThreshold(b *testing.B) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindSlowReceiver, Seed: 4042, Routes: 15_000, CollectorRate: 20_000})
	pkts := tr.Packets()
	printOnce("ablation-window", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Ablation: small-window threshold (slow-receiver transfer) ===\n")
		for _, mss := range []int{2, 3, 4} {
			cfg := core.Config{}
			cfg.Series.SmallWindowMSS = mss
			rep := core.New(cfg).AnalyzePackets(pkts)
			t := rep.Transfers[0]
			fmt.Fprintf(w, "smallWindow=%d·MSS recvApp=%.2f recvWindow=%.2f\n",
				mss, t.Factors.V.At(factors.ReceiverApp), t.Factors.V.At(factors.ReceiverWindow))
		}
	})
	analyzer := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.AnalyzePackets(pkts)
	}
}

// BenchmarkAblationReorderFilter toggles the Jaiswal reordering filter.
func BenchmarkAblationReorderFilter(b *testing.B) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 5042, Routes: 12_000, LossRate: 0.05})
	pkts := tr.Packets()
	printOnce("ablation-reorder", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Ablation: reordering filter (upstream-lossy transfer) ===\n")
		for _, disable := range []bool{false, true} {
			cfg := core.Config{}
			cfg.Flows.DisableReorderFilter = disable
			rep := core.New(cfg).AnalyzePackets(pkts)
			t := rep.Transfers[0]
			fmt.Fprintf(w, "filter=%-5v gapFills=%d reordered=%d netLossRatio=%.2f\n",
				!disable, t.Conn.Profile.GapFillCount, t.Conn.Profile.ReorderCount,
				t.Factors.V.At(factors.NetLoss))
		}
	})
	analyzer := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.AnalyzePackets(pkts)
	}
}

// BenchmarkAblationConsecLossThreshold sweeps the ≥8 consecutive-loss rule.
func BenchmarkAblationConsecLossThreshold(b *testing.B) {
	s := sharedSuite(b)
	printOnce("ablation-consec", func(w io.Writer) {
		fmt.Fprintf(w, "\n=== Ablation: consecutive-loss threshold (episodes across suite) ===\n")
		for _, th := range []int{4, 8, 16} {
			total := 0
			for _, ds := range s.Datasets {
				for _, t := range ds.Transfers {
					cfg := core.Config{ConsecutiveLossThreshold: th}
					_ = cfg
					if t.Report.ConsecLoss.MaxRun >= th {
						total++
					}
				}
			}
			fmt.Fprintf(w, "threshold=%-3d transfers with an episode: %d\n", th, total)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Vendor().Transfers[0].Report.ConsecLoss
	}
}

// --- Microbenchmarks: the set container and codecs ---

func randomSet(rnd *rand.Rand, n int) *timerange.Set {
	s := timerange.NewSet()
	for i := 0; i < n; i++ {
		start := timerange.Micros(rnd.Intn(1_000_000))
		s.Add(timerange.R(start, start+timerange.Micros(rnd.Intn(1_000))))
	}
	return s
}

func BenchmarkRangeSetAdd(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		randomSet(rnd, 1000)
	}
}

func BenchmarkRangeSetUnion(b *testing.B) {
	rnd := rand.New(rand.NewSource(2))
	x := randomSet(rnd, 1000)
	y := randomSet(rnd, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Union(y)
	}
}

func BenchmarkRangeSetIntersect(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	x := randomSet(rnd, 1000)
	y := randomSet(rnd, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkSeriesGeneration(b *testing.B) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 6042, Routes: 12_000})
	conns := flows.Extract(toTimed(tr))
	if len(conns) != 1 {
		b.Fatal("extraction failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.Generate(conns[0], series.Config{})
	}
}

func BenchmarkFlowExtraction(b *testing.B) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 7042, Routes: 12_000})
	pkts := toTimed(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flows.Extract(pkts)
	}
}

func toTimed(tr *tracegen.Trace) []flows.TimedPacket { return tr.Packets() }

// BenchmarkAccuracyGroundTruth scores the analyzer's dominant-group verdict
// against the simulator's known pathology (the reproduction's headline
// quality metric), with the ACK-shift ablation.
func BenchmarkAccuracyGroundTruth(b *testing.B) {
	printOnce("accuracy", func(w io.Writer) { experiments.AccuracyTable(w, 3042, 5) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Accuracy(3042, 1, false)
	}
}

// BenchmarkPaperScaleTransfer pushes one full-size (300k-route) table
// through the pipeline — the paper's headline "tens of minutes" case.
func BenchmarkPaperScaleTransfer(b *testing.B) {
	printOnce("paperscale", func(w io.Writer) { experiments.PaperScale(w, 5042) })
	tr := tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 5042, Routes: 300_000,
		PacingTimer: 200_000, PacingBudget: 24, Horizon: 3_600_000_000,
	})
	pkts := tr.Packets()
	analyzer := core.New(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzer.AnalyzePackets(pkts)
	}
	b.ReportMetric(float64(len(pkts)), "packets")
}

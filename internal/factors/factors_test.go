package factors

import (
	"testing"

	"tdat/internal/series"
	"tdat/internal/timerange"
	"tdat/internal/traceutil"
)

const mss = 1460

// pacedCatalog builds a sender-app-limited transfer: 200 ms pacing gaps
// dominate.
func pacedCatalog() (*series.Catalog, timerange.Range) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	t0 := traceutil.Micros(20_000)
	off := int64(0)
	for i := 0; i < 10; i++ {
		b.Data(t0, off, mss)
		off += mss
		b.Ack(t0+10_000, off, 65535)
		t0 += 200_000
	}
	cat := series.Generate(b.Extract(), series.Config{DisableShift: true})
	return cat, timerange.R(0, t0)
}

// windowBoundCatalog builds a receiver-window-bounded transfer with a tiny
// (small-bucket) window.
func windowBoundCatalog() (*series.Catalog, timerange.Range) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	win := uint16(2 * mss) // < 3·MSS: the small bucket
	t0 := traceutil.Micros(20_000)
	off := int64(0)
	for f := 0; f < 20; f++ {
		b.Data(t0, off, mss)
		b.Data(t0+100, off+mss, mss)
		off += 2 * mss
		b.Ack(t0+10_000, off, win)
		t0 += 10_000
	}
	cat := series.Generate(b.Extract(), series.Config{DisableShift: true})
	return cat, timerange.R(0, t0)
}

func TestPacedTransferIsSenderLimited(t *testing.T) {
	cat, period := pacedCatalog()
	rep := Analyze(cat, period, 0)
	if rep.Threshold != DefaultMajorThreshold {
		t.Errorf("threshold = %v", rep.Threshold)
	}
	if rep.G.At(GroupSender) < 0.8 {
		t.Errorf("sender ratio = %.2f, want > 0.8 (G=%v)", rep.G.At(GroupSender), rep.G)
	}
	if len(rep.MajorGroups) == 0 || rep.MajorGroups[0] != GroupSender {
		t.Errorf("major groups = %v", rep.MajorGroups)
	}
	if rep.DominantFactor[GroupSender] != SenderApp {
		t.Errorf("dominant sender factor = %v", rep.DominantFactor[GroupSender])
	}
	g, ratio := rep.Dominant()
	if g != GroupSender || ratio < 0.8 {
		t.Errorf("Dominant = %v %.2f", g, ratio)
	}
}

func TestWindowBoundTransferIsReceiverLimited(t *testing.T) {
	cat, period := windowBoundCatalog()
	rep := Analyze(cat, period, 0)
	if rep.G.At(GroupReceiver) < 0.5 {
		t.Errorf("receiver ratio = %.2f (G=%v)", rep.G.At(GroupReceiver), rep.G)
	}
	if rep.DominantFactor[GroupReceiver] != ReceiverApp {
		t.Errorf("dominant receiver factor = %v (small window ⇒ receiver app)",
			rep.DominantFactor[GroupReceiver])
	}
	if rep.Unknown() {
		t.Error("report should not be unknown")
	}
}

func TestEmptyPeriodYieldsUnknown(t *testing.T) {
	cat, _ := pacedCatalog()
	rep := Analyze(cat, timerange.R(5, 5), 0)
	if !rep.Unknown() {
		t.Error("zero-length period must be unknown")
	}
	for f := Factor(0); int(f) < numFactors; f++ {
		if rep.V.At(f) != 0 {
			t.Errorf("factor %v ratio = %v on empty period", f, rep.V.At(f))
		}
	}
}

func TestThresholdSweepStability(t *testing.T) {
	// Paper: thresholds 0.3–0.5 do not qualitatively change the relative
	// importance of factors.
	cat, period := pacedCatalog()
	var prevDominant Group
	for i, th := range []float64{0.3, 0.4, 0.5} {
		rep := Analyze(cat, period, th)
		g, _ := rep.Dominant()
		if i > 0 && g != prevDominant {
			t.Errorf("dominant group changed at threshold %v: %v → %v", th, prevDominant, g)
		}
		prevDominant = g
	}
}

func TestRatiosBounded(t *testing.T) {
	cat, period := windowBoundCatalog()
	rep := Analyze(cat, period, 0)
	for f := Factor(0); int(f) < numFactors; f++ {
		if r := rep.V.At(f); r < 0 || r > 1.0001 {
			t.Errorf("factor %v ratio %v out of [0,1]", f, r)
		}
	}
	for g := GroupSender; int(g) < numGroups; g++ {
		if r := rep.G.At(g); r < 0 || r > 1.0001 {
			t.Errorf("group %v ratio %v out of [0,1]", g, r)
		}
	}
	// Group ratio cannot exceed the sum of member factors but must be at
	// least the max member (union ≥ any member).
	maxMember := 0.0
	for _, f := range []Factor{ReceiverApp, ReceiverWindow, ReceiverLocalLoss} {
		if rep.V.At(f) > maxMember {
			maxMember = rep.V.At(f)
		}
	}
	if rep.G.At(GroupReceiver) < maxMember-1e-9 {
		t.Errorf("group union %v below max member %v", rep.G.At(GroupReceiver), maxMember)
	}
}

func TestGroupOfCoversAllFactors(t *testing.T) {
	want := map[Factor]Group{
		SenderApp: GroupSender, SenderCwnd: GroupSender, SenderLocalLoss: GroupSender,
		ReceiverApp: GroupReceiver, ReceiverWindow: GroupReceiver, ReceiverLocalLoss: GroupReceiver,
		NetBandwidth: GroupNetwork, NetLoss: GroupNetwork,
	}
	for f, g := range want {
		if GroupOf(f) != g {
			t.Errorf("GroupOf(%v) = %v, want %v", f, GroupOf(f), g)
		}
	}
}

func TestStringers(t *testing.T) {
	if SenderApp.String() != "bgp-sender-app" || NetLoss.String() != "network-loss" {
		t.Error("factor stringer broken")
	}
	if Factor(99).String() != "unknown" || Group(99).String() != "unknown" {
		t.Error("unknown stringers broken")
	}
	if GroupSender.String() != "sender" || GroupReceiver.String() != "receiver" || GroupNetwork.String() != "network" {
		t.Error("group stringer broken")
	}
	var v Vector
	v[SenderApp] = 0.5
	if v.String() == "" {
		t.Error("vector stringer empty")
	}
	g := GroupVector{0.8, 0.1, 0.1}
	if g.String() != "(0.80, 0.10, 0.10)" {
		t.Errorf("group vector = %q", g.String())
	}
}

func TestMajorGroupsSortedDescending(t *testing.T) {
	cat, period := windowBoundCatalog()
	rep := Analyze(cat, period, 0.01) // tiny threshold admits several groups
	for i := 1; i < len(rep.MajorGroups); i++ {
		if rep.G.At(rep.MajorGroups[i-1]) < rep.G.At(rep.MajorGroups[i]) {
			t.Errorf("major groups not sorted: %v with G=%v", rep.MajorGroups, rep.G)
		}
	}
}

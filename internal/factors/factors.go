// Package factors reduces a series catalog to T-DAT's conclusive output
// (paper §III-D): eight delay factors in three groups (Sender, Receiver,
// Network), each scored with a delay ratio — the factor's series size over
// the analysis period — plus group ratios computed on the union of member
// series, and the major-factor classification at the paper's 30% threshold.
package factors

import (
	"fmt"
	"strings"

	"tdat/internal/explain"
	"tdat/internal/obs"
	"tdat/internal/series"
	"tdat/internal/timerange"
)

// Factor identifies one of the eight conclusive delay factors.
type Factor int

// The eight factors (paper Table IV rows).
const (
	// SenderApp is the BGP sender application limit (pacing timers, slow
	// route generation).
	SenderApp Factor = iota
	// SenderCwnd is the TCP congestion-window limit.
	SenderCwnd
	// SenderLocalLoss is packet loss local to the sender (only observable
	// with a sender-side sniffer).
	SenderLocalLoss
	// ReceiverApp is the BGP receiver application limit (small/zero
	// advertised windows).
	ReceiverApp
	// ReceiverWindow is the TCP advertised-window parameter limit (bounded
	// at a large, i.e. fully open, window).
	ReceiverWindow
	// ReceiverLocalLoss is packet loss local to the receiver.
	ReceiverLocalLoss
	// NetBandwidth is the path bandwidth limit.
	NetBandwidth
	// NetLoss is in-network packet loss.
	NetLoss

	numFactors = int(NetLoss) + 1
)

// String implements fmt.Stringer.
func (f Factor) String() string {
	switch f {
	case SenderApp:
		return "bgp-sender-app"
	case SenderCwnd:
		return "tcp-congestion-window"
	case SenderLocalLoss:
		return "sender-local-loss"
	case ReceiverApp:
		return "bgp-receiver-app"
	case ReceiverWindow:
		return "tcp-advertised-window"
	case ReceiverLocalLoss:
		return "receiver-local-loss"
	case NetBandwidth:
		return "bandwidth-limited"
	case NetLoss:
		return "network-loss"
	default:
		return "unknown"
	}
}

// Group is a top-level factor group.
type Group int

// The three groups.
const (
	GroupSender Group = iota
	GroupReceiver
	GroupNetwork
	numGroups = int(GroupNetwork) + 1
)

// String implements fmt.Stringer.
func (g Group) String() string {
	switch g {
	case GroupSender:
		return "sender"
	case GroupReceiver:
		return "receiver"
	case GroupNetwork:
		return "network"
	default:
		return "unknown"
	}
}

// GroupOf maps a factor to its group.
func GroupOf(f Factor) Group {
	switch f {
	case SenderApp, SenderCwnd, SenderLocalLoss:
		return GroupSender
	case ReceiverApp, ReceiverWindow, ReceiverLocalLoss:
		return GroupReceiver
	default:
		return GroupNetwork
	}
}

// seriesOf maps each factor to its backing series.
func seriesOf(f Factor) series.Name {
	switch f {
	case SenderApp:
		return series.SendAppLimited
	case SenderCwnd:
		return series.CwndBndOut
	case SenderLocalLoss:
		return series.SendLocalLoss
	case ReceiverApp:
		return series.SmallAdvBndOut
	case ReceiverWindow:
		return series.LargeAdvBndOut
	case ReceiverLocalLoss:
		return series.RecvLocalLoss
	case NetBandwidth:
		return series.BandwidthLimited
	default:
		return series.NetworkLoss
	}
}

// DefaultMajorThreshold is the paper's 30%-of-duration rule for calling a
// factor group "major".
const DefaultMajorThreshold = 0.3

// Vector is the raw per-factor delay-ratio vector V = (r_1 … r_8).
type Vector [numFactors]float64

// At returns the ratio for f.
func (v Vector) At(f Factor) float64 { return v[f] }

// String renders the vector compactly.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, r := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", r)
	}
	b.WriteByte(')')
	return b.String()
}

// GroupVector is the compact 3-vector G = (R_s, R_r, R_n).
type GroupVector [numGroups]float64

// At returns the ratio for g.
func (v GroupVector) At(g Group) float64 { return v[g] }

// String renders the group vector like the paper's examples, e.g.
// "(0.80, 0.10, 0.10)".
func (v GroupVector) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", v[0], v[1], v[2])
}

// Report is the factor analysis of one transfer.
type Report struct {
	// Period is the analysis window (the BGP table transfer duration).
	Period timerange.Range
	// V is the raw 8-factor ratio vector.
	V Vector
	// G is the 3-group ratio vector, computed on member-series unions.
	G GroupVector
	// MajorGroups lists groups whose ratio exceeds the threshold, in
	// descending ratio order.
	MajorGroups []Group
	// DominantFactor per major group: the member factor with the largest
	// ratio (paper Table IV breakdown).
	DominantFactor map[Group]Factor
	// Threshold echoes the major-factor threshold used.
	Threshold float64
}

// Unknown reports whether no group reached the major threshold.
func (r *Report) Unknown() bool { return len(r.MajorGroups) == 0 }

// Observe tallies this classification in the metrics registry: one
// analyzed-transfers tick plus a per-dominant-group counter (the live
// analogue of the paper's Table IV distribution). No-op on a nil registry.
func (r *Report) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("tdat_factors_analyzed_total").Inc()
	if r.Unknown() {
		reg.Counter("tdat_factor_dominant_total", "group", "unknown").Inc()
		return
	}
	g, _ := r.Dominant()
	reg.Counter("tdat_factor_dominant_total", "group", g.String()).Inc()
}

// Dominant returns the single most limiting group and its ratio (the
// largest group ratio, regardless of threshold).
func (r *Report) Dominant() (Group, float64) {
	best := GroupSender
	for g := GroupSender; int(g) < numGroups; g++ {
		if r.G[g] > r.G[best] {
			best = g
		}
	}
	return best, r.G[best]
}

// Analyze scores the catalog over the analysis period. A non-positive
// threshold selects the paper's default 0.3.
func Analyze(cat *series.Catalog, period timerange.Range, threshold float64) *Report {
	return AnalyzeEv(cat, period, threshold, nil)
}

// AnalyzeEv is Analyze with evidence capture: every factor and group ratio
// records its numerator interval set (the backing series clipped to the
// period) and denominator, and the major classification records which
// groups crossed the threshold. A nil Recorder keeps the uninstrumented
// fast path.
func AnalyzeEv(cat *series.Catalog, period timerange.Range, threshold float64, rec *explain.Recorder) *Report {
	if threshold <= 0 {
		threshold = DefaultMajorThreshold
	}
	rep := &Report{
		Period:         period,
		DominantFactor: map[Group]Factor{},
		Threshold:      threshold,
	}
	dur := float64(period.Len())
	if dur <= 0 {
		return rep
	}
	window := timerange.NewSet(period)

	ratio := func(s *timerange.Set) float64 {
		return float64(s.Intersect(window).Size()) / dur
	}
	for f := Factor(0); int(f) < numFactors; f++ {
		rep.V[f] = ratio(cat.Get(seriesOf(f)))
	}
	groupSets := map[Group]*timerange.Set{
		GroupSender:   cat.Get(series.SenderLimited),
		GroupReceiver: cat.Get(series.ReceiverLimited),
		GroupNetwork:  cat.Get(series.NetworkLimited),
	}
	for g, s := range groupSets {
		rep.G[g] = ratio(s)
	}

	// Major groups in descending ratio order.
	for g := GroupSender; int(g) < numGroups; g++ {
		if rep.G[g] > threshold {
			rep.MajorGroups = append(rep.MajorGroups, g)
		}
	}
	for i := 1; i < len(rep.MajorGroups); i++ {
		for j := i; j > 0 && rep.G[rep.MajorGroups[j-1]] < rep.G[rep.MajorGroups[j]]; j-- {
			rep.MajorGroups[j-1], rep.MajorGroups[j] = rep.MajorGroups[j], rep.MajorGroups[j-1]
		}
	}

	// Dominant member factor per group.
	for g := GroupSender; int(g) < numGroups; g++ {
		best := Factor(-1)
		for f := Factor(0); int(f) < numFactors; f++ {
			if GroupOf(f) != g {
				continue
			}
			if best < 0 || rep.V[f] > rep.V[best] {
				best = f
			}
		}
		rep.DominantFactor[g] = best
	}

	if rec.Enabled() {
		// Per-factor ratio provenance: the clipped backing series is the
		// numerator, the period length the denominator. Intervals are only
		// enumerated for contributing factors to keep the record compact.
		for f := Factor(0); int(f) < numFactors; f++ {
			name := seriesOf(f)
			ev := explain.Evidence{
				Rule: "factors.ratio/" + f.String(), Outcome: explain.OutcomeScored,
				Score: rep.V[f],
				Inputs: []explain.KV{
					{K: "numerator_us", V: rep.V[f] * dur},
					{K: "period_us", V: dur},
				},
				Detail: "clipped |" + string(name) + "| over the transfer period",
			}
			if rep.V[f] > 0 {
				ev.Intervals = []explain.IntervalSet{
					explain.Capture(string(name), cat.Get(name).Intersect(window)),
				}
			}
			rec.Add(ev)
		}
		// Group ratios on member-series unions (enum order, not map order).
		for g := GroupSender; int(g) < numGroups; g++ {
			rec.Add(explain.Evidence{
				Rule: "factors.group/" + g.String(), Outcome: explain.OutcomeScored,
				Score: rep.G[g],
				Inputs: []explain.KV{
					{K: "numerator_us", V: rep.G[g] * dur},
					{K: "period_us", V: dur},
				},
				Detail: "member-series union over the transfer period",
			})
		}
		// The major classification itself.
		major := explain.Evidence{
			Rule:       "factors.major",
			Thresholds: []explain.KV{{K: "major_threshold", V: threshold}},
		}
		if rep.Unknown() {
			major.Outcome = explain.OutcomeRejected
			major.Detail = "no group ratio above the major threshold"
		} else {
			major.Outcome = explain.OutcomeFired
			major.Score = rep.G[rep.MajorGroups[0]]
			var b strings.Builder
			for i, g := range rep.MajorGroups {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s(%.2f, dominant=%s)", g, rep.G[g], rep.DominantFactor[g])
			}
			major.Detail = "major groups: " + b.String()
		}
		rec.Add(major)
	}
	return rep
}

package pcapio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// readCorpus loads one committed adversarial trace (generated once by
// internal/faults/gen and checked in).
func readCorpus(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "adversarial", name))
	if err != nil {
		t.Fatalf("reading corpus trace: %v", err)
	}
	return data
}

// TestAdversarialCorpus drives the reader over every damage class of the
// committed corpus: whatever a real sniffer leaves on disk, the reader must
// return records plus a typed error — never panic, never an unbounded
// allocation, never an untyped failure.
func TestAdversarialCorpus(t *testing.T) {
	cases := []struct {
		name string
		// wantErr is the sentinel the read must report, nil for damage the
		// pcap layer itself reads cleanly (payload- or clock-level damage).
		wantErr error
		// minRecords is the least complete records the reader must salvage.
		minRecords int
	}{
		{name: "truncated_header.pcap", wantErr: ErrTruncated, minRecords: 0},
		{name: "truncated_record.pcap", wantErr: ErrTruncated, minRecords: 1},
		{name: "zero_snaplen.pcap", wantErr: nil, minRecords: 1},
		{name: "corrupt_bgp_length.pcap", wantErr: nil, minRecords: 1},
		{name: "clock_regression.pcap", wantErr: nil, minRecords: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, err := ReadAll(bytes.NewReader(readCorpus(t, tc.name)))
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("ReadAll: %v", err)
				}
			} else if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if len(recs) < tc.minRecords {
				t.Errorf("salvaged %d records, want >= %d", len(recs), tc.minRecords)
			}
		})
	}
}

// TestCorpusRecordErrorLocatesDamage checks the mid-record truncation trace
// reports where the file went bad, so the degradation report can say "the
// capture is readable up to byte N".
func TestCorpusRecordErrorLocatesDamage(t *testing.T) {
	data := readCorpus(t, "truncated_record.pcap")
	_, err := ReadAll(bytes.NewReader(data))
	var re *RecordError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RecordError", err)
	}
	if re.Index <= 0 || re.Offset <= 24 || re.Offset > int64(len(data)) {
		t.Errorf("damage located at record %d byte %d, file is %d bytes", re.Index, re.Offset, len(data))
	}
	if !errors.Is(re, ErrTruncated) {
		t.Errorf("cause = %v, want ErrTruncated", re.Err)
	}
}

// TestCorpusZeroSnapLen checks the snapped-to-nothing trace reads as records
// with zero captured bytes but intact original lengths.
func TestCorpusZeroSnapLen(t *testing.T) {
	recs, err := ReadAll(bytes.NewReader(readCorpus(t, "zero_snaplen.pcap")))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if len(r.Data) != 0 {
			t.Fatalf("record %d has %d captured bytes, want 0", i, len(r.Data))
		}
		if r.OrigLen == 0 {
			t.Fatalf("record %d lost its original wire length", i)
		}
	}
}

package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	packets := []Record{
		{TimeMicros: 1_500_000, Data: []byte{1, 2, 3}},
		{TimeMicros: 1_500_123, Data: []byte{4}},
		{TimeMicros: 2_000_000_000_000, Data: bytes.Repeat([]byte{0xAB}, 1500)},
	}
	for _, p := range packets {
		if err := w.WritePacket(p.TimeMicros, p.Data); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(packets) {
		t.Fatalf("read %d records, want %d", len(got), len(packets))
	}
	for i := range got {
		if got[i].TimeMicros != packets[i].TimeMicros {
			t.Errorf("record %d time = %d, want %d", i, got[i].TimeMicros, packets[i].TimeMicros)
		}
		if !bytes.Equal(got[i].Data, packets[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
		if got[i].OrigLen != len(packets[i].Data) {
			t.Errorf("record %d origLen = %d, want %d", i, got[i].OrigLen, len(packets[i].Data))
		}
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 0 {
		t.Errorf("empty capture: records=%d err=%v", len(got), err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	// Short garbage is the wrong file, not a damaged capture.
	_, err := NewReader(bytes.NewReader(make([]byte, 10)))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("short garbage err = %v, want ErrBadMagic", err)
	}
	// A short header that starts with the pcap magic is a truncated capture.
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	_, err = NewReader(bytes.NewReader(hdr[:10]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header err = %v, want ErrTruncated", err)
	}
	// Under four bytes nothing can be judged: treat as truncated.
	_, err = NewReader(bytes.NewReader(hdr[:2]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("2-byte file err = %v, want ErrTruncated", err)
	}
}

func TestReaderRejectsNonEthernet(t *testing.T) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // raw IP
	_, err := NewReader(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrLinkType) {
		t.Errorf("err = %v, want ErrLinkType", err)
	}
}

func TestBigEndianInput(t *testing.T) {
	// Hand-build a big-endian file with a single 2-byte packet.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicLE) // written BE reads as swapped magic
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 7)  // sec
	binary.BigEndian.PutUint32(rec[4:8], 42) // usec
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec[:])
	buf.Write([]byte{0xDE, 0xAD})

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 1 || got[0].TimeMicros != 7_000_042 || !bytes.Equal(got[0].Data, []byte{0xDE, 0xAD}) {
		t.Errorf("got %+v", got)
	}
}

func TestTruncatedRecordReported(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(1, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(2, []byte{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second record's data.
	chopped := buf.Bytes()[:buf.Len()-2]
	got, err := ReadAll(bytes.NewReader(chopped))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
	if len(got) != 1 {
		t.Errorf("records before truncation = %d, want 1", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: arbitrary timestamps and payload sizes survive a round trip
	// in order.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(20)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []Record
		ts := int64(rnd.Intn(1_000_000_000))
		for i := 0; i < n; i++ {
			ts += int64(rnd.Intn(1_000_000))
			data := make([]byte, rnd.Intn(200))
			rnd.Read(data)
			want = append(want, Record{TimeMicros: ts, Data: data})
			if err := w.WritePacket(ts, data); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].TimeMicros != want[i].TimeMicros || !bytes.Equal(got[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNextEOFAtCleanEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(5, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("second Next err = %v, want io.EOF", err)
	}
	if r.SnapLen() != DefaultSnapLen {
		t.Errorf("SnapLen = %d", r.SnapLen())
	}
}

// errWriter fails after n bytes to exercise writer error paths.
type errWriter struct{ room int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.room {
		n := w.room
		w.room = 0
		return n, errors.New("disk full")
	}
	w.room -= len(p)
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	// The writer buffers (bufio), so I/O failures surface at Flush — or
	// earlier once the buffer spills.
	w := NewWriter(&errWriter{room: 10})
	if err := w.WritePacket(1, []byte{1}); err != nil {
		// Acceptable: surfaced immediately.
		return
	}
	if err := w.Flush(); err == nil {
		t.Error("write error never surfaced")
	}
	// A large record spills the 4 KB bufio buffer mid-write.
	w2 := NewWriter(&errWriter{room: 24})
	err := w2.WritePacket(1, make([]byte, 10_000))
	if err == nil {
		err = w2.Flush()
	}
	if err == nil {
		t.Error("record error never surfaced")
	}
}

func TestImplausibleCaptureLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Append a record header claiming a gigantic capture length.
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[8:12], 0xFFFFFFF0)
	buf.Write(rec[:])
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("implausible length accepted")
	}
}

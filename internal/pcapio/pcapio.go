// Package pcapio reads and writes classic libpcap capture files
// (https://wiki.wireshark.org/Development/LibpcapFileFormat) with
// microsecond timestamps and the Ethernet link type, which is all the
// simulator emits and the analyzer consumes. Big- and little-endian files
// are both read; files are written little-endian.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic numbers for microsecond-resolution pcap files.
const (
	magicLE = 0xA1B2C3D4 // written by this package
	magicBE = 0xD4C3B2A1 // byte-swapped input
)

// LinkTypeEthernet is the DLT value for Ethernet frames.
const LinkTypeEthernet = 1

// DefaultSnapLen is the snapshot length written into file headers: whole
// packets are captured, as in the paper's tcpdump setup ("the whole packet,
// including the headers and data, is captured").
const DefaultSnapLen = 65535

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("pcapio: not a pcap file")
	ErrTruncated = errors.New("pcapio: truncated file")
	ErrLinkType  = errors.New("pcapio: unsupported link type")
	ErrCorrupt   = errors.New("pcapio: corrupt record header")
)

// MaxSaneSnapLen bounds the snapshot length the reader will honor from a
// file header. Real captures use at most a few hundred KB; a corrupt header
// claiming a multi-gigabyte snap length must not let a single corrupt
// record header drive a matching allocation.
const MaxSaneSnapLen = 1 << 24

// RecordError locates a record-level read failure: which record (0-based)
// and at which byte offset of the file the damage begins. It wraps the
// underlying cause (ErrTruncated for short reads, ErrCorrupt for
// implausible record headers) so errors.Is keeps working, and gives the
// lenient analysis path the position it reports in the degradation report.
type RecordError struct {
	// Index is the 0-based index of the unreadable record.
	Index int64
	// Offset is the file byte offset where the record begins.
	Offset int64
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *RecordError) Error() string {
	return fmt.Sprintf("record %d at byte %d: %v", e.Index, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RecordError) Unwrap() error { return e.Err }

// Record is one captured packet: a timestamp in microseconds since the epoch
// and the captured bytes. OrigLen records the original wire length, which
// exceeds len(Data) only if the capture was truncated by a snap length.
type Record struct {
	TimeMicros int64
	OrigLen    int
	Data       []byte
}

// Writer writes pcap records to an underlying stream.
type Writer struct {
	w       *bufio.Writer
	snapLen int
	started bool
}

// NewWriter creates a Writer. The file header is emitted lazily on the first
// Write (or on Flush) so an unused writer leaves the stream untouched.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), snapLen: DefaultSnapLen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w.snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record. The packet is written in full (no
// snap-length truncation on output).
func (w *Writer) WritePacket(timeMicros int64, data []byte) error {
	return w.WriteRecord(Record{TimeMicros: timeMicros, Data: data})
}

// WriteRecord appends one record preserving its original wire length, so a
// snap-length-clipped capture (len(Data) < OrigLen) round-trips. An OrigLen
// of zero is taken to mean the record is unclipped.
func (w *Writer) WriteRecord(rec Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("pcapio: writing file header: %w", err)
		}
		w.started = true
	}
	origLen := rec.OrigLen
	if origLen == 0 {
		origLen = len(rec.Data)
	}
	var hdr [16]byte
	sec := rec.TimeMicros / 1_000_000
	usec := rec.TimeMicros % 1_000_000
	if usec < 0 {
		sec--
		usec += 1_000_000
	}
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(usec))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(rec.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcapio: writing record header: %w", err)
	}
	if _, err := w.w.Write(rec.Data); err != nil {
		return fmt.Errorf("pcapio: writing record data: %w", err)
	}
	return nil
}

// Flush writes any buffered data (and the file header, if no packet has been
// written yet, so that an empty capture is still a valid pcap file).
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader reads pcap records from an underlying stream. It counts the
// records and raw file bytes it has consumed, which is what progress
// reporting (records/sec, ETA from the byte fraction of a sized input)
// needs from the ingest stage.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	linkType uint32
	snapLen  uint32
	records  int64
	bytes    int64
	// hdr is the record-header scratch buffer. It lives on the Reader (not
	// the stack of readRecordHeader) because a stack array passed to
	// io.ReadFull escapes, costing one heap allocation per record — which
	// TestReadIntoAllocs pins to zero.
	hdr [16]byte
}

// NewReader parses the file header and returns a Reader positioned at the
// first record. The magic number is checked before completeness, so a
// truncated-but-genuine pcap header reports ErrTruncated (recoverable
// damage: the lenient analysis path degrades to an empty capture) while
// non-pcap bytes report ErrBadMagic (the wrong file, a hard error).
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	n, err := io.ReadFull(br, hdr[:])
	if err != nil && n < 4 {
		return nil, fmt.Errorf("%w: file header: %v", ErrTruncated, err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicLE:
		order = binary.LittleEndian
	case magicBE:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: magic 0x%08x", ErrBadMagic, binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if err != nil {
		return nil, fmt.Errorf("%w: file header: %d of 24 bytes", ErrTruncated, n)
	}
	rd := &Reader{
		r:        br,
		order:    order,
		snapLen:  order.Uint32(hdr[16:20]),
		linkType: order.Uint32(hdr[20:24]),
	}
	if rd.linkType != LinkTypeEthernet {
		return nil, fmt.Errorf("%w: %d", ErrLinkType, rd.linkType)
	}
	rd.bytes = int64(len(hdr))
	return rd, nil
}

// SnapLen returns the snapshot length declared in the file header.
func (r *Reader) SnapLen() int { return int(r.snapLen) }

// RecordsRead returns the number of complete records consumed so far.
func (r *Reader) RecordsRead() int64 { return r.records }

// BytesRead returns the raw file bytes consumed so far (header plus every
// complete record) — an exact file offset for progress/ETA computation.
func (r *Reader) BytesRead() int64 { return r.bytes }

// Next returns the next record, or io.EOF at a clean end of file. Damage is
// reported as a *RecordError locating the unreadable record: a file that
// ends mid-record wraps ErrTruncated (callers treat it as the paper treats
// tcpdump drop gaps — the trailing partial data is excluded), and a record
// header claiming an implausible capture length wraps ErrCorrupt (pcap
// framing has no resync point, so reading cannot continue past it).
//
// Each record's Data is freshly allocated, so callers may retain it. The
// analyzer's hot path uses ReadInto instead, which reuses a caller-owned
// buffer and allocates nothing per record.
func (r *Reader) Next() (Record, error) {
	capLen, origLen, tm, err := r.readRecordHeader()
	if err != nil {
		return Record{}, err
	}
	data, err := readData(r.r, int(capLen))
	if err != nil {
		return Record{}, r.recordErr(fmt.Errorf("%w: record data: %v", ErrTruncated, err))
	}
	r.records++
	r.bytes += 16 + int64(capLen)
	return Record{TimeMicros: tm, OrigLen: int(origLen), Data: data}, nil
}

// ReadInto reads the next record into rec, reusing rec.Data's backing array
// (growing it only when a record exceeds its capacity). After the first few
// records the loop performs zero allocations (enforced by
// TestReadIntoAllocs and the CI bench gate), which is what lets the ingest
// hot path chew through fleet-sized corpora without per-record garbage.
//
// Buffer ownership: rec.Data is owned by the caller and overwritten by the
// next ReadInto — downstream layers must copy whatever bytes they keep
// (packet.DecodeInto documents the same rule for its field views). io.EOF
// marks a clean end of file; damage reporting matches Next.
func (r *Reader) ReadInto(rec *Record) error {
	capLen, origLen, tm, err := r.readRecordHeader()
	if err != nil {
		return err
	}
	n := int(capLen)
	buf := rec.Data[:0]
	if cap(buf) >= n {
		// Steady state: the buffer already fits, one read, no allocation.
		buf = buf[:n]
		if _, err := io.ReadFull(r.r, buf); err != nil {
			rec.Data = buf[:0]
			return r.recordErr(fmt.Errorf("%w: record data: %v", ErrTruncated, err))
		}
	} else {
		// Growth path — incremental, mirroring readData: a lying header
		// over a short file must not force a huge up-front allocation.
		const chunk = 1 << 16
		for len(buf) < n {
			step := n - len(buf)
			if step > chunk {
				step = chunk
			}
			off := len(buf)
			buf = append(buf, make([]byte, step)...)
			if _, err := io.ReadFull(r.r, buf[off:]); err != nil {
				rec.Data = buf[:0]
				return r.recordErr(fmt.Errorf("%w: record data: %v", ErrTruncated, err))
			}
		}
	}
	r.records++
	r.bytes += 16 + int64(capLen)
	rec.TimeMicros = tm
	rec.OrigLen = int(origLen)
	rec.Data = buf
	return nil
}

// readRecordHeader parses the next 16-byte record header, applying the
// corrupt-length clamp shared by Next and ReadInto.
func (r *Reader) readRecordHeader() (capLen, origLen uint32, timeMicros int64, err error) {
	hdr := &r.hdr
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, 0, io.EOF
		}
		return 0, 0, 0, r.recordErr(fmt.Errorf("%w: record header: %v", ErrTruncated, err))
	}
	sec := int64(r.order.Uint32(hdr[0:4]))
	usec := int64(r.order.Uint32(hdr[4:8]))
	capLen = r.order.Uint32(hdr[8:12])
	origLen = r.order.Uint32(hdr[12:16])
	// Sanity bound against corrupt headers: no honest record exceeds the
	// declared snap length (plus slack for writers that set it low), and no
	// snap length is gigabytes — without the clamp a single flipped bit in
	// a record header could demand a multi-GB allocation.
	bound := r.snapLen
	if bound > MaxSaneSnapLen {
		bound = MaxSaneSnapLen
	}
	if capLen > bound+65535 {
		return 0, 0, 0, r.recordErr(fmt.Errorf("%w: implausible capture length %d", ErrCorrupt, capLen))
	}
	return capLen, origLen, sec*1_000_000 + usec, nil
}

// recordErr wraps a record-level failure with its position.
func (r *Reader) recordErr(err error) error {
	return &RecordError{Index: r.records, Offset: r.bytes, Err: err}
}

// readData reads exactly n record bytes. Small records (the overwhelmingly
// common case) are read in one allocation; implausibly large claims are
// read incrementally so a lying header over a short file cannot force a
// huge up-front allocation.
func readData(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	if n <= chunk {
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	data := make([]byte, 0, chunk)
	for len(data) < n {
		step := n - len(data)
		if step > chunk {
			step = chunk
		}
		off := len(data)
		data = append(data, make([]byte, step)...)
		if _, err := io.ReadFull(r, data[off:]); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// Each streams every record in r through fn without buffering the file —
// the ingest stage of the analysis pipeline, where downstream work starts
// while the trace is still being read. Iteration stops at the first fn
// error (returned verbatim). A trailing truncated record is reported like
// a tcpdump drop gap: fn has already seen every complete record and Each
// returns ErrTruncated.
func (r *Reader) Each(fn func(Record) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// EachInto is Each on the reused-buffer read mode: every record is streamed
// through fn in one caller-owned Record whose Data buffer is recycled
// between calls, so a whole-file scan performs no per-record allocation. fn
// must not retain rec.Data (or any packet.DecodeInto view into it) past its
// return — layers that keep bytes copy them (the flows demuxer's
// per-connection arena). Error reporting matches Each.
func (r *Reader) EachInto(fn func(Record) error) error {
	var rec Record
	for {
		err := r.ReadInto(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// ReadAll drains the reader into a slice. Trailing truncation is reported
// alongside the records read so far.
func ReadAll(r io.Reader) ([]Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Record
	err = rd.Each(func(rec Record) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

package pcapio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReader throws arbitrary bytes at the pcap reader. The contract under
// fuzz: ReadAll never panics, never hangs, and any failure is one of the
// package's typed sentinels — callers branch on errors.Is, so an untyped
// error is a bug even when rejecting garbage.
func FuzzReader(f *testing.F) {
	// Seed with a genuine two-record file so the fuzzer starts from valid
	// structure, plus the committed adversarial traces (more seeds live in
	// testdata/fuzz/FuzzReader).
	var valid bytes.Buffer
	w := NewWriter(&valid)
	if err := w.WriteRecord(Record{TimeMicros: 1, Data: []byte("abcdef")}); err != nil {
		f.Fatal(err)
	}
	if err := w.WriteRecord(Record{TimeMicros: 2, Data: bytes.Repeat([]byte{0xFF}, 80)}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	for _, name := range []string{"truncated_header.pcap", "truncated_record.pcap", "zero_snaplen.pcap"} {
		if data, err := os.ReadFile(filepath.Join("testdata", "adversarial", name)); err == nil {
			f.Add(data)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err == nil {
			return
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrLinkType) {
			t.Fatalf("untyped reader error: %v", err)
		}
		// Partial results must still be coherent records.
		for i, r := range recs {
			if len(r.Data) > MaxSaneSnapLen {
				t.Fatalf("record %d holds %d bytes, beyond the sane snaplen bound", i, len(r.Data))
			}
		}
	})
}

package pcapio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// writeTestCapture builds an in-memory capture of n records with varied
// sizes (including empty records) and returns the file bytes plus the
// records as written.
func writeTestCapture(t testing.TB, n int) ([]byte, []Record) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Record
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, (i*37)%256)
		rec := Record{TimeMicros: int64(1_000_000 + i), Data: data}
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
		rec.OrigLen = len(data)
		want = append(want, rec)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// TestReadIntoMatchesNext proves the reused-buffer mode yields exactly the
// records Next does, record for record.
func TestReadIntoMatchesNext(t *testing.T) {
	file, want := writeTestCapture(t, 64)
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	for i := range want {
		if err := r.ReadInto(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.TimeMicros != want[i].TimeMicros || rec.OrigLen != want[i].OrigLen ||
			!bytes.Equal(rec.Data, want[i].Data) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, rec, want[i])
		}
	}
	if err := r.ReadInto(&rec); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
	if r.RecordsRead() != int64(len(want)) || r.BytesRead() != int64(len(file)) {
		t.Fatalf("counters: records %d bytes %d, want %d/%d",
			r.RecordsRead(), r.BytesRead(), len(want), len(file))
	}
}

// TestEachIntoMatchesEach runs both streaming modes over the same capture
// and asserts identical records and identical truncation reporting.
func TestEachIntoMatchesEach(t *testing.T) {
	file, _ := writeTestCapture(t, 48)
	for _, cut := range []int{0, 3, 9} { // clean, mid-record, mid-header
		in := file[:len(file)-cut]
		collect := func(stream func(*Reader, func(Record) error) error) ([]Record, error) {
			r, err := NewReader(bytes.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			var out []Record
			err = stream(r, func(rec Record) error {
				out = append(out, Record{TimeMicros: rec.TimeMicros, OrigLen: rec.OrigLen,
					Data: append([]byte(nil), rec.Data...)})
				return nil
			})
			return out, err
		}
		got, gotErr := collect((*Reader).EachInto)
		want, wantErr := collect((*Reader).Each)
		if (gotErr == nil) != (wantErr == nil) ||
			(gotErr != nil && gotErr.Error() != wantErr.Error()) {
			t.Fatalf("cut %d: EachInto err %v, Each err %v", cut, gotErr, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("cut %d: EachInto %d records, Each %d", cut, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i].Data, want[i].Data) || got[i].TimeMicros != want[i].TimeMicros {
				t.Fatalf("cut %d record %d mismatch", cut, i)
			}
		}
	}
}

// TestReadIntoTruncatedData checks that a record cut mid-data reports a
// positioned RecordError wrapping ErrTruncated, like Next.
func TestReadIntoTruncatedData(t *testing.T) {
	file, _ := writeTestCapture(t, 4)
	r, err := NewReader(bytes.NewReader(file[:len(file)-2]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	var last error
	for {
		if last = r.ReadInto(&rec); last != nil {
			break
		}
	}
	if !errors.Is(last, ErrTruncated) {
		t.Fatalf("error %v, want ErrTruncated", last)
	}
	var re *RecordError
	if !errors.As(last, &re) {
		t.Fatalf("error %T lacks record position", last)
	}
}

// TestReadIntoAllocs is the local allocation-regression gate for the ingest
// loop: once the record buffer has grown to the capture's largest record,
// reading must allocate nothing. benchcheck.sh enforces the same floor in
// CI; this fails plain `go test` first.
func TestReadIntoAllocs(t *testing.T) {
	file, _ := writeTestCapture(t, 2100)
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	for i := 0; i < 64; i++ { // warm the buffer past the largest record
		if err := r.ReadInto(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(2000, func() {
		if err := r.ReadInto(&rec); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadInto allocates %.1f times per record, want 0", n)
	}
}

// BenchmarkReadInto is the reused-buffer record-loop microbenchmark the CI
// perf gate parses; scripts/benchfloor.txt pins its allocs/op to 0.
func BenchmarkReadInto(b *testing.B) {
	file, _ := writeTestCapture(b, 1000)
	body := file[24:] // replayable record stream past the file header
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		b.Fatal(err)
	}
	src := &loopReader{body: body}
	r.r.Reset(src)
	var rec Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ReadInto(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader replays a record stream forever, so a benchmark can read an
// unbounded number of records from a fixed capture.
type loopReader struct {
	body []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.body) {
		l.off = 0
	}
	n := copy(p, l.body[l.off:])
	l.off += n
	return n, nil
}

package oracle

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"tdat/internal/tcpsim"
)

// TestQuickSweepMeetsFloors is the in-tree copy of the CI accuracy gate:
// the quick sweep must clear every default floor.
func TestQuickSweepMeetsFloors(t *testing.T) {
	res := Run(Config{Quick: true})
	if breaches := res.Check(DefaultFloors()); len(breaches) > 0 {
		var buf bytes.Buffer
		res.WriteText(&buf)
		t.Fatalf("quick sweep breaches floors:\n%s\n\nscorecard:\n%s",
			strings.Join(breaches, "\n"), buf.String())
	}
	if res.Cases == 0 || res.Conf.Total != res.Cases {
		t.Fatalf("confusion total %d != cases %d", res.Conf.Total, res.Cases)
	}
}

// TestSweepDeterministic: the sweep is a pure function of its config — two
// runs must render byte-identical scorecards (text and JSON).
func TestSweepDeterministic(t *testing.T) {
	render := func() (string, string) {
		res := Run(Config{Quick: true})
		var txt, js bytes.Buffer
		res.WriteText(&txt)
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	txt1, js1 := render()
	txt2, js2 := render()
	if txt1 != txt2 {
		t.Errorf("text scorecards differ:\n--- run 1\n%s\n--- run 2\n%s", txt1, txt2)
	}
	if js1 != js2 {
		t.Errorf("JSON reports differ")
	}
}

// TestToleranceMonotonic: widening the interval-matching tolerance can only
// admit more matched time, so no interval F1 may decrease.
func TestToleranceMonotonic(t *testing.T) {
	tight := Run(Config{Quick: true, IntervalTolMicros: 10_000})
	loose := Run(Config{Quick: true, IntervalTolMicros: 80_000})
	for _, s := range tight.Series {
		if s.Kind != "interval" {
			continue
		}
		ls, ok := loose.SeriesByName(s.Name)
		if !ok {
			t.Fatalf("series %s missing from loose run", s.Name)
		}
		if ls.F1 < s.F1-1e-9 {
			t.Errorf("series %s: F1 fell from %.4f to %.4f as tolerance widened",
				s.Name, s.F1, ls.F1)
		}
	}
}

// TestScoresBounded: every reported rate is a probability.
func TestScoresBounded(t *testing.T) {
	res := Run(Config{Quick: true})
	check := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	for _, s := range res.Series {
		check(s.Name+".precision", s.Precision)
		check(s.Name+".recall", s.Recall)
		check(s.Name+".f1", s.F1)
	}
	check("confusion.accuracy", res.Conf.Accuracy)
	check("detect.rate", res.Detect.Rate)
	for _, f := range res.Factors {
		if f.MAE < 0 || f.Max < f.MAE {
			t.Errorf("factor %s: MAE %v, max %v inconsistent", f.Name, f.MAE, f.Max)
		}
	}
}

func TestParseFloors(t *testing.T) {
	in := `
# comment
series.zero-window.f1 0.85
confusion.accuracy 0.9
detect.rate 1.0
factor.bgp-sender-app.mae 0.2
violations.max 3
`
	fl, err := ParseFloors(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fl.SeriesF1["zero-window"] != 0.85 {
		t.Errorf("series floor = %v", fl.SeriesF1["zero-window"])
	}
	if fl.ConfusionAccuracy != 0.9 || fl.DetectRate != 1.0 {
		t.Errorf("accuracy/detect floors = %v/%v", fl.ConfusionAccuracy, fl.DetectRate)
	}
	if fl.FactorMAE["bgp-sender-app"] != 0.2 {
		t.Errorf("factor ceiling = %v", fl.FactorMAE["bgp-sender-app"])
	}
	if !fl.hasMaxViolations || fl.MaxViolations != 3 {
		t.Errorf("violations.max = %v (set %v)", fl.MaxViolations, fl.hasMaxViolations)
	}
}

func TestParseFloorsErrors(t *testing.T) {
	for _, bad := range []string{
		"series.zero-window.f1",        // missing value
		"series.zero-window.f1 x",      // non-numeric
		"unknown.key 1.0",              // unknown key
		"series.zero-window.f1 0.9 ex", // trailing field
	} {
		if _, err := ParseFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFloors(%q) accepted", bad)
		}
	}
}

func TestCheckReportsBreaches(t *testing.T) {
	res := &Result{Scores: Scores{
		Series: []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.5, Runs: 1}},
		Conf:   Confusion{Total: 4, Correct: 2, Accuracy: 0.5},
		Detect: Detection{Checked: 2, Passed: 1, Rate: 0.5},
		Factors: []FactorError{
			{Name: "bgp-sender-app", MAE: 0.4, Max: 0.4, Runs: 1},
		},
		Violations: []string{"case-x: boom"},
	}}
	breaches := res.Check(DefaultFloors())
	want := []string{
		"series adv-blocked: not scored",
		"series zero-window: F1 0.500 below floor",
		"confusion accuracy 0.500 below floor",
		"detection rate 0.500 below floor",
		"factor adv-bounded: not scored",
		"factor bgp-sender-app: MAE 0.4000 above ceiling",
		"1 violations exceed the allowed 0",
	}
	for _, w := range want {
		found := false
		for _, b := range breaches {
			if strings.Contains(b, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("breach %q not reported; got %v", w, breaches)
		}
	}
	if got := res.Check(Floors{}); len(got) != 0 {
		t.Errorf("empty floors produced breaches: %v", got)
	}
}

// TestMultiStackSweep: sweeping extra stacks must leave the Reno scorecard
// byte-identical to a Reno-only run (per-stack accumulators are isolated)
// and put every non-Reno stack under PerStack.
func TestMultiStackSweep(t *testing.T) {
	// NoDimensions: the adversarial-dimension sweep is Reno-only by
	// construction (covered by TestDimensionSweep); skipping it here keeps
	// the double full-grid run cheap.
	solo := Run(Config{Quick: true, NoDimensions: true})
	multi := Run(Config{Quick: true, NoDimensions: true, Stacks: []tcpsim.Stack{tcpsim.StackReno, tcpsim.StackSACK}})

	var soloTxt, multiTop bytes.Buffer
	solo.WriteText(&soloTxt)
	renoOnly := &Result{Quick: multi.Quick, Seed: multi.Seed, Scores: multi.Scores}
	renoOnly.WriteText(&multiTop)
	if soloTxt.String() != multiTop.String() {
		t.Errorf("Reno scorecard changed when swept alongside sack:\n--- solo\n%s\n--- multi\n%s",
			soloTxt.String(), multiTop.String())
	}

	if len(multi.PerStack) != 1 || multi.PerStack[0].Stack != "sack" {
		t.Fatalf("PerStack = %+v, want exactly one sack entry", multi.PerStack)
	}
	if multi.PerStack[0].Cases != multi.Cases {
		t.Errorf("sack swept %d cases, reno %d", multi.PerStack[0].Cases, multi.Cases)
	}
	if _, ok := multi.StackByName("sack"); !ok {
		t.Error("StackByName(sack) missed")
	}
}

// TestDimensionSweep: every adversarial-diversity axis appears exactly once
// in grid order with a complete scorecard, NoDimensions suppresses the axis
// sweeps without perturbing the embedded Reno scorecard, and the quick sweep
// clears the committed per-dimension floors.
func TestDimensionSweep(t *testing.T) {
	res := Run(Config{Quick: true})
	wantDims := []string{
		"long-rtt", "varying-rate", "burst-loss",
		"heavy-tail-app", "bimodal-app", "fanout",
	}
	if len(res.PerDimension) != len(wantDims) {
		t.Fatalf("swept %d dimensions, want %d: %+v",
			len(res.PerDimension), len(wantDims), res.PerDimension)
	}
	for i, d := range res.PerDimension {
		if d.Dimension != wantDims[i] {
			t.Errorf("dimension[%d] = %s, want %s", i, d.Dimension, wantDims[i])
		}
		if d.Cases == 0 || d.Conf.Total != d.Cases {
			t.Errorf("dimension %s: confusion total %d != cases %d",
				d.Dimension, d.Conf.Total, d.Cases)
		}
	}
	if _, ok := res.DimensionByName("long-rtt"); !ok {
		t.Error("DimensionByName(long-rtt) missed")
	}
	if _, ok := res.DimensionByName("no-such-axis"); ok {
		t.Error("DimensionByName invented an axis")
	}

	bare := Run(Config{Quick: true, NoDimensions: true})
	if bare.PerDimension != nil {
		t.Errorf("NoDimensions still swept %d dimensions", len(bare.PerDimension))
	}
	var withTxt, bareTxt bytes.Buffer
	renoOnly := &Result{Quick: res.Quick, Seed: res.Seed, Scores: res.Scores}
	renoOnly.WriteText(&withTxt)
	bare.WriteText(&bareTxt)
	if withTxt.String() != bareTxt.String() {
		t.Errorf("Reno scorecard changed when dimensions were swept:\n--- with\n%s\n--- without\n%s",
			withTxt.String(), bareTxt.String())
	}

	// The committed floor file must hold against the quick sweep — the
	// in-tree copy of the CI dimension gate. Per-stack floors are dropped
	// because this run sweeps Reno only.
	f, err := os.Open("../../scripts/validatefloor.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fl, err := ParseFloors(f)
	if err != nil {
		t.Fatal(err)
	}
	fl.PerStack = nil
	if breaches := res.Check(fl); len(breaches) > 0 {
		t.Errorf("quick sweep breaches committed dimension floors:\n%s",
			strings.Join(breaches, "\n"))
	}
}

// TestParseFloorsPerDimension: the dim.<name>.<key> syntax lands in
// Floors.PerDimension and bad dimension keys are rejected.
func TestParseFloorsPerDimension(t *testing.T) {
	in := `
series.zero-window.f1 0.95
dim.long-rtt.series.app-idle.f1 0.93
dim.long-rtt.violations.max 1
dim.varying-rate.confusion.accuracy 0.95
`
	fl, err := ParseFloors(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	lr := fl.PerDimension["long-rtt"]
	if lr == nil || lr.SeriesF1["app-idle"] != 0.93 {
		t.Fatalf("long-rtt floors = %+v", lr)
	}
	if !lr.hasMaxViolations || lr.MaxViolations != 1 {
		t.Errorf("long-rtt violations.max = %v (set %v)", lr.MaxViolations, lr.hasMaxViolations)
	}
	if vr := fl.PerDimension["varying-rate"]; vr == nil || vr.ConfusionAccuracy != 0.95 {
		t.Errorf("varying-rate floors = %+v", vr)
	}
	for _, bad := range []string{"dim. 1.0", "dim.long-rtt 1.0", "dim.long-rtt.bogus 1.0"} {
		if _, err := ParseFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFloors(%q) accepted", bad)
		}
	}
}

// TestCheckPerDimension: per-dimension floors gate the matching PerDimension
// scorecard with a prefixed breach message, and floors for an unswept
// dimension breach.
func TestCheckPerDimension(t *testing.T) {
	res := &Result{
		Scores: Scores{
			Series: []SeriesScore{{Name: "app-idle", Kind: "interval", F1: 0.99, Runs: 1}},
			Conf:   Confusion{Total: 1, Correct: 1, Accuracy: 1},
			Detect: Detection{Checked: 1, Passed: 1, Rate: 1},
		},
		PerDimension: []DimensionResult{{Dimension: "long-rtt", Scores: Scores{
			Series: []SeriesScore{{Name: "app-idle", Kind: "interval", F1: 0.60, Runs: 1}},
			Conf:   Confusion{Total: 1, Correct: 1, Accuracy: 1},
			Detect: Detection{Checked: 1, Passed: 1, Rate: 1},
		}}},
	}
	fl := Floors{
		SeriesF1: map[string]float64{"app-idle": 0.90},
		PerDimension: map[string]*Floors{
			"long-rtt": {SeriesF1: map[string]float64{"app-idle": 0.90}},
			"fanout":   {SeriesF1: map[string]float64{"app-idle": 0.50}},
		},
	}
	breaches := res.Check(fl)
	want := []string{
		"dim long-rtt: series app-idle: F1 0.600 below floor 0.90",
		"dimension fanout: floors set but dimension not swept",
	}
	for _, w := range want {
		found := false
		for _, b := range breaches {
			if strings.Contains(b, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("breach %q not reported; got %v", w, breaches)
		}
	}
	for _, b := range breaches {
		if !strings.Contains(b, "dim") && strings.Contains(b, "app-idle") {
			t.Errorf("reno scorecard breached spuriously: %v", b)
		}
	}
}

// TestParseFloorsPerStack: the stack.<name>.<key> syntax lands in
// Floors.PerStack and bad stack keys are rejected.
func TestParseFloorsPerStack(t *testing.T) {
	in := `
series.zero-window.f1 0.95
stack.cubic.series.adv-blocked.f1 0.80
stack.cubic.violations.max 2
stack.stretch-ack.confusion.accuracy 0.60
`
	fl, err := ParseFloors(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cubic := fl.PerStack["cubic"]
	if cubic == nil || cubic.SeriesF1["adv-blocked"] != 0.80 {
		t.Fatalf("cubic floors = %+v", cubic)
	}
	if !cubic.hasMaxViolations || cubic.MaxViolations != 2 {
		t.Errorf("cubic violations.max = %v (set %v)", cubic.MaxViolations, cubic.hasMaxViolations)
	}
	if sa := fl.PerStack["stretch-ack"]; sa == nil || sa.ConfusionAccuracy != 0.60 {
		t.Errorf("stretch-ack floors = %+v", sa)
	}
	for _, bad := range []string{"stack. 1.0", "stack.cubic 1.0", "stack.cubic.bogus 1.0"} {
		if _, err := ParseFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFloors(%q) accepted", bad)
		}
	}
}

// TestCheckPerStack: per-stack floors gate the matching PerStack scorecard
// with a prefixed breach message, and floors for an unswept stack breach.
func TestCheckPerStack(t *testing.T) {
	res := &Result{
		Scores: Scores{
			Series: []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.99, Runs: 1}},
			Conf:   Confusion{Total: 1, Correct: 1, Accuracy: 1},
			Detect: Detection{Checked: 1, Passed: 1, Rate: 1},
		},
		PerStack: []StackResult{{Stack: "cubic", Scores: Scores{
			Series: []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.70, Runs: 1}},
			Conf:   Confusion{Total: 1, Correct: 1, Accuracy: 1},
			Detect: Detection{Checked: 1, Passed: 1, Rate: 1},
		}}},
	}
	fl := Floors{
		SeriesF1: map[string]float64{"zero-window": 0.90},
		PerStack: map[string]*Floors{
			"cubic":      {SeriesF1: map[string]float64{"zero-window": 0.90}},
			"rate-paced": {SeriesF1: map[string]float64{"zero-window": 0.50}},
		},
	}
	breaches := res.Check(fl)
	want := []string{
		"stack cubic: series zero-window: F1 0.700 below floor 0.90",
		"stack rate-paced: floors set but stack not swept",
	}
	for _, w := range want {
		found := false
		for _, b := range breaches {
			if strings.Contains(b, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("breach %q not reported; got %v", w, breaches)
		}
	}
	for _, b := range breaches {
		if strings.Contains(b, "stack") == false && strings.Contains(b, "zero-window") {
			t.Errorf("reno scorecard breached spuriously: %v", b)
		}
	}
}

// TestWriteStackTable: the markdown generator marks scores that fail the
// default Reno gate and renders one column per stack.
func TestWriteStackTable(t *testing.T) {
	res := &Result{
		Scores: Scores{
			Series:  []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.99, Runs: 1}},
			Factors: []FactorError{{Name: "bgp-sender-app", MAE: 0.05, Runs: 1}},
			Conf:    Confusion{Total: 1, Correct: 1, Accuracy: 1},
			Detect:  Detection{Checked: 1, Passed: 1, Rate: 1},
		},
		PerStack: []StackResult{{Stack: "stretch-ack", Scores: Scores{
			Series:  []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.42, Runs: 1}},
			Factors: []FactorError{{Name: "bgp-sender-app", MAE: 0.30, Runs: 1}},
			Conf:    Confusion{Total: 1, Correct: 0, Accuracy: 0},
			Detect:  Detection{Checked: 1, Passed: 1, Rate: 1},
		}}},
	}
	var buf bytes.Buffer
	res.WriteStackTable(&buf)
	out := buf.String()
	for _, want := range []string{
		"| inference | reno | stretch-ack |",
		"0.990 ✓",
		"**0.420 ✗**",
		"**0.300 ✗**",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stack table missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkOracleSweep times one full quick sweep — the CI validate job's
// dominant cost (tracked in BENCH_validate.json).
func BenchmarkOracleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(Config{Quick: true})
		if res.Cases == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkOracleSweepDimensions times the quick adversarial-dimension grid
// alone (Reno, no base cases): the 500 ms+ RTT and fanout scenarios dominate
// the sweep's added cost, and this isolates that share. CI archives it in
// BENCH_validate.json via the shared -bench regex; like the stack benchmark
// below it stays out of the benchfloor gate.
func BenchmarkOracleSweepDimensions(b *testing.B) {
	cfg := Config{Quick: true}.withDefaults()
	for i := 0; i < b.N; i++ {
		scores, _ := runCases(cfg, DimensionCases(cfg), tcpsim.StackReno)
		if scores.Cases == 0 {
			b.Fatal("empty dimension sweep")
		}
	}
}

// BenchmarkOracleSweepStacks times the quick sweep under each sender stack
// separately. CI archives these alongside BenchmarkOracleSweep in
// BENCH_validate.json (the -bench regex matches both); they are kept out of
// the benchfloor gate — stack cost is informational, not a regression gate.
func BenchmarkOracleSweepStacks(b *testing.B) {
	for _, st := range tcpsim.AllStacks() {
		b.Run(st.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := Run(Config{Quick: true, Stacks: []tcpsim.Stack{st}})
				if res.Cases == 0 && len(res.PerStack) == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

package oracle

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickSweepMeetsFloors is the in-tree copy of the CI accuracy gate:
// the quick sweep must clear every default floor.
func TestQuickSweepMeetsFloors(t *testing.T) {
	res := Run(Config{Quick: true})
	if breaches := res.Check(DefaultFloors()); len(breaches) > 0 {
		var buf bytes.Buffer
		res.WriteText(&buf)
		t.Fatalf("quick sweep breaches floors:\n%s\n\nscorecard:\n%s",
			strings.Join(breaches, "\n"), buf.String())
	}
	if res.Cases == 0 || res.Conf.Total != res.Cases {
		t.Fatalf("confusion total %d != cases %d", res.Conf.Total, res.Cases)
	}
}

// TestSweepDeterministic: the sweep is a pure function of its config — two
// runs must render byte-identical scorecards (text and JSON).
func TestSweepDeterministic(t *testing.T) {
	render := func() (string, string) {
		res := Run(Config{Quick: true})
		var txt, js bytes.Buffer
		res.WriteText(&txt)
		if err := res.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	txt1, js1 := render()
	txt2, js2 := render()
	if txt1 != txt2 {
		t.Errorf("text scorecards differ:\n--- run 1\n%s\n--- run 2\n%s", txt1, txt2)
	}
	if js1 != js2 {
		t.Errorf("JSON reports differ")
	}
}

// TestToleranceMonotonic: widening the interval-matching tolerance can only
// admit more matched time, so no interval F1 may decrease.
func TestToleranceMonotonic(t *testing.T) {
	tight := Run(Config{Quick: true, IntervalTolMicros: 10_000})
	loose := Run(Config{Quick: true, IntervalTolMicros: 80_000})
	for _, s := range tight.Series {
		if s.Kind != "interval" {
			continue
		}
		ls, ok := loose.SeriesByName(s.Name)
		if !ok {
			t.Fatalf("series %s missing from loose run", s.Name)
		}
		if ls.F1 < s.F1-1e-9 {
			t.Errorf("series %s: F1 fell from %.4f to %.4f as tolerance widened",
				s.Name, s.F1, ls.F1)
		}
	}
}

// TestScoresBounded: every reported rate is a probability.
func TestScoresBounded(t *testing.T) {
	res := Run(Config{Quick: true})
	check := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v outside [0,1]", name, v)
		}
	}
	for _, s := range res.Series {
		check(s.Name+".precision", s.Precision)
		check(s.Name+".recall", s.Recall)
		check(s.Name+".f1", s.F1)
	}
	check("confusion.accuracy", res.Conf.Accuracy)
	check("detect.rate", res.Detect.Rate)
	for _, f := range res.Factors {
		if f.MAE < 0 || f.Max < f.MAE {
			t.Errorf("factor %s: MAE %v, max %v inconsistent", f.Name, f.MAE, f.Max)
		}
	}
}

func TestParseFloors(t *testing.T) {
	in := `
# comment
series.zero-window.f1 0.85
confusion.accuracy 0.9
detect.rate 1.0
factor.bgp-sender-app.mae 0.2
violations.max 3
`
	fl, err := ParseFloors(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fl.SeriesF1["zero-window"] != 0.85 {
		t.Errorf("series floor = %v", fl.SeriesF1["zero-window"])
	}
	if fl.ConfusionAccuracy != 0.9 || fl.DetectRate != 1.0 {
		t.Errorf("accuracy/detect floors = %v/%v", fl.ConfusionAccuracy, fl.DetectRate)
	}
	if fl.FactorMAE["bgp-sender-app"] != 0.2 {
		t.Errorf("factor ceiling = %v", fl.FactorMAE["bgp-sender-app"])
	}
	if !fl.hasMaxViolations || fl.MaxViolations != 3 {
		t.Errorf("violations.max = %v (set %v)", fl.MaxViolations, fl.hasMaxViolations)
	}
}

func TestParseFloorsErrors(t *testing.T) {
	for _, bad := range []string{
		"series.zero-window.f1",        // missing value
		"series.zero-window.f1 x",      // non-numeric
		"unknown.key 1.0",              // unknown key
		"series.zero-window.f1 0.9 ex", // trailing field
	} {
		if _, err := ParseFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseFloors(%q) accepted", bad)
		}
	}
}

func TestCheckReportsBreaches(t *testing.T) {
	res := &Result{
		Series: []SeriesScore{{Name: "zero-window", Kind: "interval", F1: 0.5, Runs: 1}},
		Conf:   Confusion{Total: 4, Correct: 2, Accuracy: 0.5},
		Detect: Detection{Checked: 2, Passed: 1, Rate: 0.5},
		Factors: []FactorError{
			{Name: "bgp-sender-app", MAE: 0.4, Max: 0.4, Runs: 1},
		},
		Violations: []string{"case-x: boom"},
	}
	breaches := res.Check(DefaultFloors())
	want := []string{
		"series adv-blocked: not scored",
		"series zero-window: F1 0.500 below floor",
		"confusion accuracy 0.500 below floor",
		"detection rate 0.500 below floor",
		"factor adv-bounded: not scored",
		"factor bgp-sender-app: MAE 0.4000 above ceiling",
		"1 violations exceed the allowed 0",
	}
	for _, w := range want {
		found := false
		for _, b := range breaches {
			if strings.Contains(b, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("breach %q not reported; got %v", w, breaches)
		}
	}
	if got := res.Check(Floors{}); len(got) != 0 {
		t.Errorf("empty floors produced breaches: %v", got)
	}
}

// BenchmarkOracleSweep times one full quick sweep — the CI validate job's
// dominant cost (tracked in BENCH_validate.json).
func BenchmarkOracleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Run(Config{Quick: true})
		if res.Cases == 0 {
			b.Fatal("empty sweep")
		}
	}
}

package oracle

import (
	"fmt"
	"io"
	"strconv"

	"tdat/internal/explain"
	"tdat/internal/timerange"
)

// SeriesDiff is the truth-vs-inference interval diff for one scored series
// of one case: what the analyzer missed (truth time with no nearby
// inference) and what it invented (inferred time with no nearby truth),
// after the scorer's dilation tolerance.
type SeriesDiff struct {
	Name string  `json:"name"`
	F1   float64 `json:"f1"`
	// Truth and Inferred are the two compared sets, clipped to the window.
	Truth    explain.IntervalSet `json:"truth"`
	Inferred explain.IntervalSet `json:"inferred"`
	// Missed is truth ∖ dilate(inferred): what recall lost.
	Missed explain.IntervalSet `json:"missed"`
	// Spurious is inferred ∖ dilate(truth): what precision lost.
	Spurious explain.IntervalSet `json:"spurious"`
}

// CaseEvidence couples one case's oracle diff with the analyzer's own
// evidence record, so a floor breach can be read end-to-end: which truth
// the analyzer missed, and which rule evaluations produced the wrong
// intervals.
type CaseEvidence struct {
	Case        string             `json:"case"`
	Kind        string             `json:"kind"`
	Expected    string             `json:"expected"`
	Got         string             `json:"got"`
	GroupRatios string             `json:"group_ratios"`
	SeriesDiffs []SeriesDiff       `json:"series_diffs,omitempty"`
	Evidence    []explain.Evidence `json:"evidence,omitempty"`
}

// diffSeries builds one SeriesDiff from clipped truth/inferred sets.
func diffSeries(name string, f1 float64, inferred, truth *timerange.Set, tol Micros, w timerange.Range) SeriesDiff {
	A := clip(inferred, w)
	T := clip(truth, w)
	return SeriesDiff{
		Name:     name,
		F1:       f1,
		Truth:    explain.Capture("truth", T),
		Inferred: explain.Capture("inferred", A),
		Missed:   explain.Capture("missed", T.Subtract(Dilate(A, tol))),
		Spurious: explain.Capture("spurious", A.Subtract(Dilate(T, tol))),
	}
}

// eventSet renders truth drop instants as a point-interval set so event
// series diff with the same machinery as interval series.
func eventSet(events []Micros, w timerange.Range) *timerange.Set {
	s := timerange.NewSet()
	for _, t := range events {
		if w.Contains(t) {
			s.Add(timerange.R(t, t+1))
		}
	}
	return s
}

// fmtSec renders a µs offset as seconds.
func fmtSec(us Micros) string {
	return strconv.FormatFloat(float64(us)/1e6, 'f', 3, 64) + "s"
}

// writeIntervalSet renders one captured interval set as a single line.
func writeIntervalSet(w io.Writer, prefix string, s explain.IntervalSet) {
	fmt.Fprintf(w, "%s%-9s n=%d size=%s", prefix, s.Name, s.Count, fmtSec(s.SizeMicros))
	if len(s.Ranges) > 0 {
		fmt.Fprint(w, " [")
		for i, r := range s.Ranges {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%s-%s", fmtSec(r.Start), fmtSec(r.End))
		}
		if s.Count > len(s.Ranges) {
			fmt.Fprintf(w, " +%d more", s.Count-len(s.Ranges))
		}
		fmt.Fprint(w, "]")
	}
	fmt.Fprintln(w)
}

// WriteExplainFailures renders, for every floor breach, the evidence diff
// between oracle truth and analyzer inference for the offending cases:
// which intervals were missed or invented, and the analyzer's own rule
// evaluations for that transfer. It returns the breaches it explained
// (empty when the gate passes). Requires a sweep run with Config.Explain.
func (r *Result) WriteExplainFailures(w io.Writer, fl Floors) []string {
	breaches := r.Check(fl)
	if len(breaches) == 0 {
		fmt.Fprintln(w, "all floors hold; nothing to explain")
		return breaches
	}
	fmt.Fprintf(w, "explaining %d floor breach(es):\n", len(breaches))
	for _, b := range breaches {
		fmt.Fprintf(w, "  - %s\n", b)
	}
	if len(r.CaseEvidence) == 0 {
		fmt.Fprintln(w, "\nno case evidence captured (sweep ran without -explain-failures)")
		return breaches
	}

	// A case is offending when it drags a breached series floor down, or is
	// misclassified while the confusion floor is breached. With only
	// aggregate breaches (detect rate, violations), every case with recorded
	// evidence is fair game.
	breachedSeries := map[string]float64{}
	for name, min := range fl.SeriesF1 {
		if s, ok := r.SeriesByName(name); ok && s.F1 < min {
			breachedSeries[name] = min
		}
	}
	accBreached := r.Conf.Accuracy < fl.ConfusionAccuracy

	printed := 0
	for _, ce := range r.CaseEvidence {
		var reasons []string
		offendingDiffs := make([]SeriesDiff, 0, len(ce.SeriesDiffs))
		for _, sd := range ce.SeriesDiffs {
			if min, ok := breachedSeries[sd.Name]; ok && sd.F1 < min {
				reasons = append(reasons, fmt.Sprintf("series %s F1 %.3f < floor %.2f", sd.Name, sd.F1, min))
				offendingDiffs = append(offendingDiffs, sd)
			}
		}
		if accBreached && ce.Got != ce.Expected {
			reasons = append(reasons, fmt.Sprintf("misclassified: got %s, expected %s", ce.Got, ce.Expected))
			offendingDiffs = ce.SeriesDiffs
		}
		if len(reasons) == 0 {
			continue
		}
		printed++
		fmt.Fprintf(w, "\ncase %s (%s): expected %s, got %s, G=%s\n",
			ce.Case, ce.Kind, ce.Expected, ce.Got, ce.GroupRatios)
		for _, reason := range reasons {
			fmt.Fprintf(w, "  offends: %s\n", reason)
		}
		for _, sd := range offendingDiffs {
			fmt.Fprintf(w, "  diff %s (F1 %.3f):\n", sd.Name, sd.F1)
			writeIntervalSet(w, "    ", sd.Truth)
			writeIntervalSet(w, "    ", sd.Inferred)
			writeIntervalSet(w, "    ", sd.Missed)
			writeIntervalSet(w, "    ", sd.Spurious)
		}
		if len(ce.Evidence) > 0 {
			fmt.Fprintf(w, "  analyzer evidence (%d rule evaluations):\n", len(ce.Evidence))
			explain.WriteText(w, "    ", ce.Evidence)
		}
	}
	if printed == 0 {
		// Aggregate-only breaches (detect rate, violations): no single series
		// diff identifies the culprit, so dump every recorded case.
		fmt.Fprintln(w, "\nno single case pinpointed; all recorded case evidence follows:")
		for _, ce := range r.CaseEvidence {
			fmt.Fprintf(w, "\ncase %s (%s): expected %s, got %s, G=%s\n",
				ce.Case, ce.Kind, ce.Expected, ce.Got, ce.GroupRatios)
			if len(ce.Evidence) > 0 {
				explain.WriteText(w, "  ", ce.Evidence)
			}
		}
	}
	return breaches
}

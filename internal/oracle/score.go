// Package oracle validates the analyzer against simulator ground truth: it
// runs the full pipeline (core.Analyze) on simulator-generated traces whose
// authoritative event record (tracegen.Truth) is known, scores the inferred
// event series and delay factors against that record, and aggregates the
// scores into a gated scorecard (cmd/validate, scripts/validatecheck.sh).
//
// Scoring follows the validation methodology of trace-driven rate analyzers
// (Zhang et al., "On the Characteristics and Origins of Internet Flow
// Rates"): inference is compared against known causes, with tolerances where
// passive inference is structurally late (an RTO-repaired loss only becomes
// visible at the retransmission) rather than wrong.
package oracle

import (
	"sort"

	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// Dilate returns a copy of s with every range widened by tol on both sides
// (coalescing as needed). Dilation implements the scorer's time tolerance:
// an inferred interval matches truth if it lands within tol of it.
func Dilate(s *timerange.Set, tol Micros) *timerange.Set {
	if tol <= 0 {
		return s.Clone()
	}
	out := timerange.NewSet()
	for _, r := range s.Ranges() {
		out.Add(timerange.Range{Start: r.Start - tol, End: r.End + tol})
	}
	return out
}

// clip restricts s to the analysis window.
func clip(s *timerange.Set, w timerange.Range) *timerange.Set {
	return s.Intersect(timerange.NewSet(w))
}

// IntervalScore is a time-weighted precision/recall over interval series:
//
//	precision = |A ∩ dilate(T, tol)| / |A|   (inferred time that is near truth)
//	recall    = |T ∩ dilate(A, tol)| / |T|   (truth time that was inferred)
//
// Time-weighting (rather than per-interval matching) makes the score robust
// to interval splitting and coalescing: truth intervals from adjacent pacing
// windows merge inside timerange.Set, and the analyzer may report one merged
// recovery where the simulator logged two — neither should count as error.
type IntervalScore struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// InferredMicros and TruthMicros are the total durations compared.
	InferredMicros Micros `json:"inferred_micros"`
	TruthMicros    Micros `json:"truth_micros"`
	// Runs counts sweep runs that contributed (either side non-empty).
	Runs int `json:"runs"`
}

// intervalAccum micro-averages interval scores across sweep runs: the
// overlap and size numerators accumulate, and precision/recall are computed
// once at the end, so short runs cannot dominate the score.
type intervalAccum struct {
	overlapAT Micros // |A ∩ dilate(T)|
	sizeA     Micros // |A|
	overlapTA Micros // |T ∩ dilate(A)|
	sizeT     Micros // |T|
	runs      int
}

// add scores one run's inferred set A against truth T inside window w.
func (a *intervalAccum) add(inferred, truth *timerange.Set, tol Micros, w timerange.Range) {
	A := clip(inferred, w)
	T := clip(truth, w)
	if A.Empty() && T.Empty() {
		return
	}
	a.runs++
	a.sizeA += A.Size()
	a.sizeT += T.Size()
	a.overlapAT += A.Intersect(Dilate(T, tol)).Size()
	a.overlapTA += T.Intersect(Dilate(A, tol)).Size()
}

// merge folds another accumulator (one case's contribution) into a.
func (a *intervalAccum) merge(o intervalAccum) {
	a.overlapAT += o.overlapAT
	a.sizeA += o.sizeA
	a.overlapTA += o.overlapTA
	a.sizeT += o.sizeT
	a.runs += o.runs
}

// score computes the micro-averaged result. With no inferred (or no truth)
// time at all, the undefined ratio defaults to 1 so the other side alone
// determines F1.
func (a *intervalAccum) score() IntervalScore {
	s := IntervalScore{
		Precision:      1,
		Recall:         1,
		InferredMicros: a.sizeA,
		TruthMicros:    a.sizeT,
		Runs:           a.runs,
	}
	if a.sizeA > 0 {
		s.Precision = float64(a.overlapAT) / float64(a.sizeA)
	}
	if a.sizeT > 0 {
		s.Recall = float64(a.overlapTA) / float64(a.sizeT)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// EventScore is precision/recall for instantaneous truth events (packet
// drops) against inferred recovery intervals:
//
//	recall    = truth events covered by dilate(A, tol) / all truth events
//	precision = inferred ranges containing ≥1 truth event within tol / ranges
//
// The analyzer infers recovery *periods*, not drop instants, so events score
// by coverage rather than time overlap; the tolerance absorbs detection
// latency (an RTO-repaired drop surfaces seconds after the drop).
type EventScore struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Events    int     `json:"events"`
	Ranges    int     `json:"ranges"`
	Runs      int     `json:"runs"`
}

type eventAccum struct {
	covered int // truth events inside the dilated inferred set
	events  int
	hit     int // inferred ranges with ≥1 truth event within tol
	ranges  int
	runs    int
}

// add scores one run's inferred recovery set against truth drop instants.
func (a *eventAccum) add(inferred *timerange.Set, events []Micros, tol Micros, w timerange.Range) {
	A := clip(inferred, w)
	inWindow := make([]Micros, 0, len(events))
	for _, t := range events {
		if w.Contains(t) {
			inWindow = append(inWindow, t)
		}
	}
	if A.Empty() && len(inWindow) == 0 {
		return
	}
	a.runs++
	sort.Slice(inWindow, func(i, j int) bool { return inWindow[i] < inWindow[j] })

	dilated := Dilate(A, tol)
	for _, t := range inWindow {
		if dilated.Contains(t) {
			a.covered++
		}
	}
	a.events += len(inWindow)

	for _, r := range A.Ranges() {
		a.ranges++
		lo := sort.Search(len(inWindow), func(i int) bool { return inWindow[i] >= r.Start-tol })
		if lo < len(inWindow) && inWindow[lo] < r.End+tol {
			a.hit++
		}
	}
}

// merge folds another accumulator (one case's contribution) into a.
func (a *eventAccum) merge(o eventAccum) {
	a.covered += o.covered
	a.events += o.events
	a.hit += o.hit
	a.ranges += o.ranges
	a.runs += o.runs
}

func (a *eventAccum) score() EventScore {
	s := EventScore{Precision: 1, Recall: 1, Events: a.events, Ranges: a.ranges, Runs: a.runs}
	if a.ranges > 0 {
		s.Precision = float64(a.hit) / float64(a.ranges)
	}
	if a.events > 0 {
		s.Recall = float64(a.covered) / float64(a.events)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

package oracle

import (
	"fmt"
	"sort"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/netem"
	"tdat/internal/series"
	"tdat/internal/tcpsim"
	"tdat/internal/timerange"
	"tdat/internal/tracegen"
)

// Config tunes the validation sweep. The zero value selects the full
// default sweep with the documented tolerances.
type Config struct {
	// Seed offsets every scenario seed, so CI can rotate inputs.
	Seed int64
	// Quick caps the sweep at one representative case per scenario kind
	// (the CI mode; the full grid is for local investigation).
	Quick bool
	// Workers is the analyzer pool size (0 = GOMAXPROCS). Every case is
	// re-analyzed at a different worker count and the factor vectors
	// compared, so the sweep doubles as the worker-invariance check.
	Workers int
	// Routes is the per-scenario table size (default 8000; quick halves it).
	Routes int
	// Explain records per-case evidence: the analyzer's rule evaluations
	// (core.Config.Explain) plus truth-vs-inference interval diffs, surfaced
	// by Result.WriteExplainFailures on a floor breach.
	Explain bool
	// Stacks lists the sender-stack personalities to sweep (nil = Reno
	// only). The Reno sweep populates the Result's top-level fields — the
	// scores the historical floors gate — and every other stack lands in
	// Result.PerStack with its own scorecard.
	Stacks []tcpsim.Stack
	// NoDimensions skips the adversarial-diversity sweep (DimensionCases →
	// Result.PerDimension). The default runs it; tests that re-run the
	// sweep many times and only examine the base grid set this to stay
	// fast. It never changes the embedded Reno scorecard.
	NoDimensions bool

	// IntervalTolMicros is the base interval-matching tolerance (default
	// 25 ms); the effective per-run tolerance is max(base, 4×RTT) capped at
	// RTT+200 ms, since every passive inference dates events from wire
	// arrivals that trail the simulator's internal instant by propagation
	// and ACK latency. The cap matters on very-long-delay paths: at 500 ms+
	// RTT an uncapped 4×RTT window (2 s+) would absorb whole stall episodes
	// and make the interval scores vacuously perfect.
	IntervalTolMicros Micros
	// LossTolMicros is the loss-event tolerance (default 4 s): an
	// RTO-repaired drop becomes visible only at the retransmission, one
	// backed-off RTO (MinRTO 1 s, doubling) after the drop. On paths with
	// RTT above 100 ms the effective tolerance grows by 4×(RTT−100 ms) —
	// RTO itself is RTT-proportional once it exceeds MinRTO, so a fixed
	// window would misscore genuine repairs as spurious at 500 ms+ RTT.
	LossTolMicros Micros
}

func (c Config) withDefaults() Config {
	if c.Routes == 0 {
		c.Routes = 8_000
		if c.Quick {
			c.Routes = 4_000
		}
	}
	if c.IntervalTolMicros == 0 {
		c.IntervalTolMicros = 25_000
	}
	if c.LossTolMicros == 0 {
		c.LossTolMicros = 4_000_000
	}
	return c
}

// intervalTol returns the effective interval tolerance for a scenario:
// max(base, 4×RTT), capped at RTT+200 ms so long-delay paths keep a
// meaningful matching window (see Config.IntervalTolMicros). The cap is
// inactive below 100 ms RTT, leaving the historical grid byte-identical.
func (c Config) intervalTol(sc tracegen.Scenario) Micros {
	t := 4 * sc.RTT
	if t > sc.RTT+200_000 {
		t = sc.RTT + 200_000
	}
	if t > c.IntervalTolMicros {
		return t
	}
	return c.IntervalTolMicros
}

// lossTol returns the effective loss-event tolerance for a scenario: the
// base window plus 4×(RTT−100 ms) on long-delay paths, since RTO repair
// latency scales with RTT once above MinRTO. Below 100 ms RTT this is
// exactly the base, leaving the historical grid byte-identical.
func (c Config) lossTol(sc tracegen.Scenario) Micros {
	t := c.LossTolMicros
	if sc.RTT > 100_000 {
		t += 4 * (sc.RTT - 100_000)
	}
	return t
}

// ExpectedGroup maps each simulated pathology to the factor group T-DAT
// should blame. KindClean transfers are mildly pacing-limited by
// construction (routers never blast at line rate), so sender is correct
// there too.
func ExpectedGroup(k tracegen.Kind) factors.Group {
	switch k {
	case tracegen.KindPaced, tracegen.KindClean,
		tracegen.KindHeavyTailApp, tracegen.KindBimodalApp, tracegen.KindFanout:
		return factors.GroupSender
	case tracegen.KindSlowReceiver, tracegen.KindSmallWindow,
		tracegen.KindDownstreamLoss, tracegen.KindZeroAckBug:
		return factors.GroupReceiver
	default: // upstream loss, bandwidth, varying rate
		return factors.GroupNetwork
	}
}

// Case is one sweep scenario with its expected verdicts.
type Case struct {
	Name     string
	Scenario tracegen.Scenario
	Expected factors.Group
	// Dimension tags the adversarial-diversity axis this case stresses
	// (empty for the historical base grid). Cases sharing a dimension are
	// scored together into one Result.PerDimension entry.
	Dimension string
	// CheckTimer asserts the pacing-timer detector finds the scenario's
	// timer within 20%.
	CheckTimer bool
	// CheckConsec asserts the consecutive-loss detector reports ≥1 episode.
	CheckConsec bool
	// CheckBug asserts the ZeroAckBug conflict detector fires.
	CheckBug bool
}

// Cases builds the sweep grid: scenario kind × the parameter each kind is
// sensitive to (pacing/MRAI timer, receive buffer, loss rate, link rate) ×
// RTT. Quick mode keeps one representative case per kind.
func Cases(cfg Config) []Case {
	cfg = cfg.withDefaults()
	var out []Case
	add := func(name string, sc tracegen.Scenario, mut func(*Case)) {
		sc.Seed += cfg.Seed
		sc.Routes = cfg.Routes
		c := Case{Name: name, Scenario: sc, Expected: ExpectedGroup(sc.Kind)}
		if mut != nil {
			mut(&c)
		}
		out = append(out, c)
	}
	timer := func(c *Case) { c.CheckTimer = true }

	if cfg.Quick {
		add("clean", tracegen.Scenario{Kind: tracegen.KindClean, Seed: 11}, nil)
		add("paced-200ms", tracegen.Scenario{Kind: tracegen.KindPaced, Seed: 12}, timer)
		add("slow-receiver", tracegen.Scenario{Kind: tracegen.KindSlowReceiver, Seed: 13}, nil)
		add("small-window", tracegen.Scenario{Kind: tracegen.KindSmallWindow, Seed: 14, RTT: 30_000}, nil)
		add("upstream-loss", tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 15}, nil)
		add("downstream-loss", tracegen.Scenario{Kind: tracegen.KindDownstreamLoss, Seed: 16}, nil)
		add("bandwidth", tracegen.Scenario{Kind: tracegen.KindBandwidth, Seed: 17, UpstreamRate: 60_000}, nil)
		add("zero-ack-bug", tracegen.Scenario{Kind: tracegen.KindZeroAckBug, Seed: 18},
			func(c *Case) { c.CheckBug = true })
		add("loss-episode", lossEpisodeScenario(19), func(c *Case) {
			c.CheckConsec = true
			// The table must outlast all eight flaps for the run to chain.
			c.Scenario.Routes *= 8
		})
		return out
	}

	for _, rtt := range []Micros{8_000, 30_000} {
		tag := fmt.Sprintf("rtt%dms", rtt/1_000)
		add("clean-"+tag, tracegen.Scenario{Kind: tracegen.KindClean, Seed: 21, RTT: rtt}, nil)
		for _, pt := range []Micros{100_000, 200_000, 400_000} {
			add(fmt.Sprintf("paced-%dms-%s", pt/1_000, tag),
				tracegen.Scenario{Kind: tracegen.KindPaced, Seed: 23, PacingTimer: pt, RTT: rtt}, timer)
		}
		for _, rate := range []int64{15_000, 25_000} {
			add(fmt.Sprintf("slow-receiver-%dk-%s", rate/1_000, tag),
				tracegen.Scenario{Kind: tracegen.KindSlowReceiver, Seed: 25, CollectorRate: rate, RTT: rtt}, nil)
		}
		// Loss below ~5% over a table this size is a handful of drops — too
		// few for the loss group to dominate the verdict (and with an
		// unlucky seed, zero drops); the grid starts where the pathology
		// has statistical weight.
		for _, loss := range []float64{0.06, 0.12} {
			add(fmt.Sprintf("upstream-loss-%02.0f-%s", loss*100, tag),
				tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 27, LossRate: loss, RTT: rtt}, nil)
			add(fmt.Sprintf("downstream-loss-%02.0f-%s", loss*100, tag),
				tracegen.Scenario{Kind: tracegen.KindDownstreamLoss, Seed: 29, LossRate: loss, RTT: rtt}, nil)
		}
		add("bandwidth-"+tag,
			tracegen.Scenario{Kind: tracegen.KindBandwidth, Seed: 31, UpstreamRate: 60_000, RTT: rtt}, nil)
	}
	// Small windows only bind when the bandwidth-delay product exceeds them.
	for _, rtt := range []Micros{30_000, 80_000} {
		for _, buf := range []int{8_192, 16_384} {
			add(fmt.Sprintf("small-window-%dk-rtt%dms", buf/1024, rtt/1_000),
				tracegen.Scenario{Kind: tracegen.KindSmallWindow, Seed: 33, RecvBuf: buf, RTT: rtt}, nil)
		}
	}
	add("zero-ack-bug", tracegen.Scenario{Kind: tracegen.KindZeroAckBug, Seed: 35},
		func(c *Case) { c.CheckBug = true })
	add("loss-episode", lossEpisodeScenario(37), func(c *Case) {
		c.CheckConsec = true
		c.Scenario.Routes *= 8
	})
	return out
}

// DimensionCases builds the adversarial-diversity grid: one group of cases
// per stress axis beyond the base grid's reach. Each dimension lands in its
// own Result.PerDimension scorecard so a regression on, say, 500 ms paths
// cannot hide inside an aggregate over easy cases. Quick mode keeps one
// representative case per dimension.
func DimensionCases(cfg Config) []Case {
	cfg = cfg.withDefaults()
	var out []Case
	add := func(dim, name string, sc tracegen.Scenario, mut func(*Case)) {
		sc.Seed += cfg.Seed
		if sc.Routes == 0 {
			sc.Routes = cfg.Routes
		}
		c := Case{Name: name, Scenario: sc, Expected: ExpectedGroup(sc.Kind), Dimension: dim}
		if mut != nil {
			mut(&c)
		}
		out = append(out, c)
	}
	timer := func(c *Case) { c.CheckTimer = true }
	// Burst loss at the tracegen-test operating point: ~15% stationary loss
	// arriving in multi-packet bursts (mean bad dwell 4 packets, 90% drop).
	ge := &netem.GEParams{PGoodBad: 0.05, PBadGood: 0.25, DropBad: 0.9}

	// More routes at the frontier operating points: at 500 ms+ RTT a single
	// frontier drop repaired by one long-backoff RTO leaves only one missing
	// IP ID — below the silent-loss scan's threshold — so a short transfer
	// can spend most of its life in an unattributable blackout. Tripling the
	// table makes steady-state behaviour (and multi-retry blackouts the scan
	// does catch) dominate the verdict. Same cure for the burst-loss seeds
	// whose Gilbert–Elliott chain starts in a lucky good-state dwell.
	routes3 := func(c *Case) { c.Scenario.Routes *= 3 }

	if cfg.Quick {
		add("long-rtt", "upstream-loss-rtt500ms",
			tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 41, RTT: 500_000, LossRate: 0.06}, routes3)
		// Second long-rtt case so quick mode (the CI gate) also exercises
		// the timer detector at the 500 ms masking bound.
		add("long-rtt", "paced-2000ms-rtt500ms",
			tracegen.Scenario{Kind: tracegen.KindPaced, Seed: 42, PacingTimer: 2_000_000, RTT: 500_000}, timer)
		add("varying-rate", "sawtooth-rtt30ms",
			tracegen.Scenario{Kind: tracegen.KindVaryingRate, Seed: 43, RateProfile: "sawtooth", RTT: 30_000}, nil)
		add("burst-loss", "ge-upstream",
			tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 45, BurstLoss: ge}, nil)
		add("heavy-tail-app", "pareto",
			tracegen.Scenario{Kind: tracegen.KindHeavyTailApp, Seed: 47}, nil)
		add("bimodal-app", "bimodal",
			tracegen.Scenario{Kind: tracegen.KindBimodalApp, Seed: 49}, nil)
		add("fanout", "members-120",
			tracegen.Scenario{Kind: tracegen.KindFanout, Seed: 51}, nil)
		return out
	}

	for _, rtt := range []Micros{500_000, 1_000_000} {
		tag := fmt.Sprintf("rtt%dms", rtt/1_000)
		add("long-rtt", "clean-"+tag,
			tracegen.Scenario{Kind: tracegen.KindClean, Seed: 41, RTT: rtt}, nil)
		// A pacing timer is detectable only above ~2.6×RTT + delayed-ACK:
		// below that, the Nagle runt's ack re-anchors each tick within the
		// ack-shift cap (1.5×RTT) and the cadence dissolves (DESIGN.md §17).
		// The grid points sit just above the bound for each RTT.
		pt := Micros(2_000_000)
		if rtt >= 1_000_000 {
			pt = 3_500_000
		}
		add("long-rtt", fmt.Sprintf("paced-%dms-%s", pt/1_000, tag),
			tracegen.Scenario{Kind: tracegen.KindPaced, Seed: 43, PacingTimer: pt, RTT: rtt}, timer)
		add("long-rtt", "upstream-loss-"+tag,
			tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 45, LossRate: 0.06, RTT: rtt}, routes3)
		add("long-rtt", "small-window-"+tag,
			tracegen.Scenario{Kind: tracegen.KindSmallWindow, Seed: 47, RecvBuf: 16_384, RTT: rtt}, routes3)
	}
	// Trough spacing must stay within the bandwidth detector's ≤4×RTT
	// gap veto; at 8 ms RTT the sawtooth's idle troughs exceed it and the
	// case degenerates to app-limited by design, so the grid starts at 30 ms.
	for _, profile := range []string{"step", "sawtooth"} {
		for _, rtt := range []Micros{30_000, 80_000} {
			add("varying-rate", fmt.Sprintf("%s-rtt%dms", profile, rtt/1_000),
				tracegen.Scenario{Kind: tracegen.KindVaryingRate, Seed: 53, RateProfile: profile, RTT: rtt}, nil)
		}
	}
	// A gentler process (longer good dwell, shallower bad-state drop) pairs
	// with the stress point so the dimension covers both burst regimes.
	mild := &netem.GEParams{PGoodBad: 0.02, PBadGood: 0.2, DropBad: 0.7}
	add("burst-loss", "ge-upstream", tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 55, BurstLoss: ge}, nil)
	add("burst-loss", "ge-downstream", tracegen.Scenario{Kind: tracegen.KindDownstreamLoss, Seed: 57, BurstLoss: ge}, routes3)
	add("burst-loss", "ge-upstream-mild", tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 59, BurstLoss: mild}, nil)
	for _, seed := range []int64{61, 63} {
		add("heavy-tail-app", fmt.Sprintf("pareto-s%d", seed),
			tracegen.Scenario{Kind: tracegen.KindHeavyTailApp, Seed: seed}, nil)
		add("bimodal-app", fmt.Sprintf("bimodal-s%d", seed),
			tracegen.Scenario{Kind: tracegen.KindBimodalApp, Seed: seed}, nil)
	}
	add("fanout", "members-120", tracegen.Scenario{Kind: tracegen.KindFanout, Seed: 65}, nil)
	add("fanout", "members-240",
		tracegen.Scenario{Kind: tracegen.KindFanout, Seed: 67, GroupMembers: 240, SlowMembers: 8}, nil)
	return out
}

// lossEpisodeScenario scripts a flapping receiver-local interface: starting
// mid-transfer (t=250ms, once slow start has grown the flight to dozens of
// segments), the downstream link goes dark for 350 ms every 1.4 s, eight
// times. Each flap wipes the flight in transit, forcing a timeout and a
// go-back-N repair burst; the flaps sit closer together than the detector's
// chain gap (max(3·RTT, 3 s)), so the retransmission instants chain into
// one long run — the repetitive-retransmission signature the
// consecutive-loss detector hunts (§IV-B).
func lossEpisodeScenario(seed int64) tracegen.Scenario {
	const (
		first  = 250_000
		period = 1_400_000
		dark   = 350_000
		flaps  = 8
	)
	wins := make([]timerange.Range, flaps)
	for i := range wins {
		start := timerange.Micros(first + i*period)
		wins[i] = timerange.R(start, start+dark)
	}
	return tracegen.Scenario{
		Kind:         tracegen.KindDownstreamLoss,
		Seed:         seed,
		LossEpisodes: wins,
	}
}

// caseOutcome is the per-case summary kept for the report.
type caseOutcome struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Expected string `json:"expected"`
	Got      string `json:"got"`
	Correct  bool   `json:"correct"`
	// SeriesF1 holds this case's per-series F1 for every series the case
	// exercised — the drill-down when an aggregate score drops.
	SeriesF1 map[string]float64 `json:"series_f1,omitempty"`
}

// scoreCase runs one case through the analyzer and folds its scores into
// the accumulators. It returns the violations it detected.
func (v *validator) scoreCase(c Case) []string {
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf("%s: "+format, append([]any{c.Name}, args...)...))
	}

	tr := tracegen.Run(c.Scenario)
	rep := v.analyzer.AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 1 {
		fail("expected 1 transfer, got %d", len(rep.Transfers))
		return violations
	}
	t := rep.Transfers[0]
	w := t.Transfer
	truth := tr.Truth
	sc := c.Scenario.WithDefaults()
	tol := v.cfg.intervalTol(sc)
	lossTol := v.cfg.lossTol(sc)

	// Interval series vs truth sets; each case scores locally first so the
	// outcome can carry its own F1 breakdown.
	caseF1 := map[string]float64{}
	var diffs []SeriesDiff
	interval := func(name string, acc *intervalAccum, inferred, truthSet *timerange.Set) {
		var local intervalAccum
		local.add(inferred, truthSet, tol, w)
		if local.runs > 0 {
			caseF1[name] = local.score().F1
		}
		acc.merge(local)
		if v.cfg.Explain && local.runs > 0 {
			diffs = append(diffs, diffSeries(name, local.score().F1, inferred, truthSet, tol, w))
		}
	}
	interval("zero-window", &v.zeroWindow, t.Catalog.Get(series.ZeroAdvWindow), truth.ZeroWindow)
	// The raw AdvBndOut series deliberately overlaps loss recovery: while
	// sndUna is frozen at a hole, the outstanding data fills the advertised
	// window and the flight rule fires, but the binding constraint is the
	// loss, not the receiver. The pipeline resolves that overlap by
	// precedence (recovery is the transport's fault — see the SendAppLimited
	// subtraction in series/generate.go), so the oracle scores the
	// post-precedence window signal (DESIGN.md §7, §12).
	advInferred := t.Catalog.Get(series.AdvBndOut).
		Subtract(t.Catalog.Get(series.LossRecovery))
	interval("adv-blocked", &v.advBlocked, advInferred, truth.AdvBlocked)
	// On the wire a peer-group slack stall is indistinguishable from timer
	// pacing — the sender goes quiet with an open window — so the app-idle
	// truth is the union of both sender-side causes. For everything but
	// fanout GroupBlocked is empty and this is exactly truth.AppIdle.
	truthIdle := truth.AppIdle.Union(truth.GroupBlocked)
	interval("app-idle", &v.appIdle, t.Catalog.Get(series.SendAppLimited), truthIdle)

	// Loss events vs recovery intervals.
	event := func(name string, acc *eventAccum, inferred *timerange.Set, events []Micros) {
		var local eventAccum
		local.add(inferred, events, lossTol, w)
		if local.runs > 0 {
			caseF1[name] = local.score().F1
		}
		acc.merge(local)
		if v.cfg.Explain && local.runs > 0 {
			diffs = append(diffs, diffSeries(name, local.score().F1, inferred, eventSet(events, w), lossTol, w))
		}
	}
	event("upstream-loss", &v.upLoss, t.Catalog.Get(series.UpstreamLoss), truth.UpstreamDrops)
	event("downstream-loss", &v.downLoss, t.Catalog.Get(series.DownstreamLoss), truth.DownstreamDrops)

	// Dominant-group confusion matrix.
	got, _ := t.Factors.Dominant()
	v.confusion[c.Expected][got]++
	v.outcomes = append(v.outcomes, caseOutcome{
		Name:     c.Name,
		Kind:     c.Scenario.Kind.String(),
		Expected: c.Expected.String(),
		Got:      got.String(),
		Correct:  got == c.Expected,
		SeriesF1: caseF1,
	})
	if got != c.Expected {
		fail("dominant group %s, expected %s (G=%s)", got, c.Expected, t.Factors.G)
	}
	if v.cfg.Explain {
		v.caseEvidence = append(v.caseEvidence, CaseEvidence{
			Case:        c.Name,
			Kind:        c.Scenario.Kind.String(),
			Expected:    c.Expected.String(),
			Got:         got.String(),
			GroupRatios: t.Factors.G.String(),
			SeriesDiffs: diffs,
			Evidence:    t.Evidence,
		})
	}

	// Detection checks.
	v.scoreDetection(c, t, fail)

	// Per-factor delay-ratio error against truth ratios.
	dur := float64(w.Len())
	if dur > 0 {
		truthApp := float64(clip(truthIdle, w).Size()) / dur
		v.factorErr["bgp-sender-app"].add(t.Factors.V.At(factors.SenderApp) - truthApp)
		truthAdv := float64(clip(truth.AdvBlocked, w).Size()) / dur
		inferredAdv := float64(clip(advInferred, w).Size()) / dur
		v.factorErr["adv-bounded"].add(inferredAdv - truthAdv)
	}

	// Factor-ratio invariants: every ratio in [0,1]; each group ratio
	// bounded below by its largest member (union ⊇ member) and above by the
	// member sum (union ⊆ concatenation).
	violations = append(violations, checkFactorInvariants(c.Name, t.Factors)...)

	// Worker invariance: the alternate pool size must produce the identical
	// verdict.
	alt := v.altAnalyzer.AnalyzePackets(tr.Packets())
	if len(alt.Transfers) != 1 {
		fail("alternate worker count produced %d transfers", len(alt.Transfers))
	} else if a := alt.Transfers[0]; a.Factors.V != t.Factors.V || a.Factors.G != t.Factors.G {
		fail("factor vectors differ across worker counts: %s vs %s", t.Factors.V, a.Factors.V)
	}
	return violations
}

// scoreDetection applies the per-case detector assertions.
func (v *validator) scoreDetection(c Case, t *core.TransferReport, fail func(string, ...any)) {
	if c.CheckTimer {
		v.detectChecked++
		sc := c.Scenario.WithDefaults()
		switch {
		case t.Timer == nil:
			fail("pacing timer not detected (want %d ms)", sc.PacingTimer/1_000)
		case abs64(t.Timer.TimerMicros-sc.PacingTimer) > sc.PacingTimer/5:
			fail("pacing timer %d ms, want %d ms ±20%%", t.Timer.TimerMicros/1_000, sc.PacingTimer/1_000)
		default:
			v.detectPassed++
		}
	}
	if c.CheckConsec {
		v.detectChecked++
		if t.ConsecLoss.Episodes < 1 {
			fail("consecutive-loss episode not detected (max run %d)", t.ConsecLoss.MaxRun)
		} else {
			v.detectPassed++
		}
	}
	if c.CheckBug {
		v.detectChecked++
		if !t.ZeroAckBug {
			fail("ZeroAckBug conflict not detected")
		} else {
			v.detectPassed++
		}
	}
}

// checkFactorInvariants verifies the report-level algebra the paper's delay
// ratios must obey regardless of scenario.
func checkFactorInvariants(name string, rep *factors.Report) []string {
	var out []string
	const eps = 1e-9
	groups := map[factors.Group][]factors.Factor{}
	for f := factors.SenderApp; f <= factors.NetLoss; f++ {
		r := rep.V.At(f)
		if r < -eps || r > 1+eps {
			out = append(out, fmt.Sprintf("%s: factor %s ratio %.4f outside [0,1]", name, f, r))
		}
		g := factors.GroupOf(f)
		groups[g] = append(groups[g], f)
	}
	// Walk groups in enum order, not map order, so invariant-failure
	// messages line up byte-for-byte across runs.
	keys := make([]factors.Group, 0, len(groups))
	for g := range groups {
		keys = append(keys, g)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, g := range keys {
		members := groups[g]
		gr := rep.G.At(g)
		if gr < -eps || gr > 1+eps {
			out = append(out, fmt.Sprintf("%s: group %s ratio %.4f outside [0,1]", name, g, gr))
		}
		sum, max := 0.0, 0.0
		for _, f := range members {
			r := rep.V.At(f)
			sum += r
			if r > max {
				max = r
			}
		}
		if gr < max-eps {
			out = append(out, fmt.Sprintf("%s: group %s ratio %.4f below largest member %.4f", name, g, gr, max))
		}
		if gr > sum+eps {
			out = append(out, fmt.Sprintf("%s: group %s ratio %.4f above member sum %.4f", name, g, gr, sum))
		}
	}
	return out
}

func abs64(v Micros) Micros {
	if v < 0 {
		return -v
	}
	return v
}

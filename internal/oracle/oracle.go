package oracle

import (
	"sort"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/tcpsim"
)

// SeriesScore is one scored series in the final result.
type SeriesScore struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"` // "interval" or "event"
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Runs      int     `json:"runs"`
}

// FactorError is the per-factor delay-ratio error against truth ratios.
type FactorError struct {
	Name string  `json:"name"`
	MAE  float64 `json:"mae"` // mean absolute error of the ratio
	Max  float64 `json:"max"` // worst single-run absolute error
	Runs int     `json:"runs"`
}

// errAccum accumulates signed ratio errors.
type errAccum struct {
	sumAbs float64
	max    float64
	runs   int
}

func (e *errAccum) add(err float64) {
	if err < 0 {
		err = -err
	}
	e.sumAbs += err
	if err > e.max {
		e.max = err
	}
	e.runs++
}

func (e *errAccum) result(name string) FactorError {
	fe := FactorError{Name: name, Max: e.max, Runs: e.runs}
	if e.runs > 0 {
		fe.MAE = e.sumAbs / float64(e.runs)
	}
	return fe
}

// Confusion is the dominant-group confusion matrix over the sweep.
type Confusion struct {
	// Matrix[expected][got] counts verdicts; group order is
	// sender, receiver, network.
	Matrix   [3][3]int `json:"matrix"`
	Total    int       `json:"total"`
	Correct  int       `json:"correct"`
	Accuracy float64   `json:"accuracy"`
}

// Detection summarizes the §IV-B detector checks.
type Detection struct {
	Checked int     `json:"checked"`
	Passed  int     `json:"passed"`
	Rate    float64 `json:"rate"`
}

// Scores is one stack's complete scorecard: everything the sweep measures
// about the inference pipeline under a single sender personality. The
// top-level Result embeds the Reno scores (so historical JSON consumers and
// floors see the same shape they always have) and each non-Reno stack gets
// its own copy under Result.PerStack.
type Scores struct {
	Cases   int           `json:"cases"`
	Series  []SeriesScore `json:"series"`
	Factors []FactorError `json:"factors"`
	Conf    Confusion     `json:"confusion"`
	Detect  Detection     `json:"detection"`
	// Outcomes lists every case's expected-vs-got verdict.
	Outcomes []caseOutcome `json:"outcomes"`
	// Violations lists everything that went wrong: misattributed cases,
	// missed detections, broken invariants, worker-count divergence. The
	// floor check treats specific classes as gating; the rest is context.
	Violations []string `json:"violations,omitempty"`
}

// SeriesByName returns the named series score.
func (s *Scores) SeriesByName(name string) (SeriesScore, bool) {
	for _, sc := range s.Series {
		if sc.Name == name {
			return sc, true
		}
	}
	return SeriesScore{}, false
}

// FactorByName returns the named factor error.
func (s *Scores) FactorByName(name string) (FactorError, bool) {
	for _, f := range s.Factors {
		if f.Name == name {
			return f, true
		}
	}
	return FactorError{}, false
}

// StackResult is a non-Reno stack's scorecard within a multi-stack sweep.
type StackResult struct {
	Stack string `json:"stack"`
	Scores
}

// DimensionResult is one adversarial-diversity axis's scorecard (see
// DimensionCases). Dimensions are swept under Reno only: they measure
// scenario stress, and the stack axis is already covered by PerStack.
type DimensionResult struct {
	Dimension string `json:"dimension"`
	Scores
}

// Result is the full validation scorecard.
type Result struct {
	Quick bool  `json:"quick"`
	Seed  int64 `json:"seed"`
	Scores
	// PerStack holds one scorecard per extra sender stack swept (see
	// Config.Stacks); the embedded Scores above always belong to Reno.
	PerStack []StackResult `json:"per_stack,omitempty"`
	// PerDimension holds one scorecard per adversarial-diversity axis (see
	// DimensionCases), swept under Reno. Omitted with Config.NoDimensions.
	PerDimension []DimensionResult `json:"per_dimension,omitempty"`
	// CaseEvidence holds per-case truth-vs-inference diffs plus the
	// analyzer's evidence records (populated only with Config.Explain,
	// Reno sweep only).
	CaseEvidence []CaseEvidence `json:"case_evidence,omitempty"`
}

// StackByName returns the named per-stack scorecard.
func (r *Result) StackByName(name string) (StackResult, bool) {
	for _, s := range r.PerStack {
		if s.Stack == name {
			return s, true
		}
	}
	return StackResult{}, false
}

// DimensionByName returns the named per-dimension scorecard.
func (r *Result) DimensionByName(name string) (DimensionResult, bool) {
	for _, d := range r.PerDimension {
		if d.Dimension == name {
			return d, true
		}
	}
	return DimensionResult{}, false
}

// validator carries the sweep's accumulators.
type validator struct {
	cfg         Config
	analyzer    *core.Analyzer
	altAnalyzer *core.Analyzer

	zeroWindow intervalAccum
	advBlocked intervalAccum
	appIdle    intervalAccum
	upLoss     eventAccum
	downLoss   eventAccum

	confusion [3][3]int
	outcomes  []caseOutcome

	caseEvidence []CaseEvidence

	detectChecked int
	detectPassed  int

	factorErr map[string]*errAccum
}

// Run executes the validation sweep and returns the scorecard. With
// Config.Stacks set, the whole case grid is re-swept once per stack: the
// Reno pass fills the Result's embedded (historically gated) scores and
// every other stack is appended to Result.PerStack.
func Run(cfg Config) *Result {
	cfg = cfg.withDefaults()
	stacks := cfg.Stacks
	if len(stacks) == 0 {
		stacks = []tcpsim.Stack{tcpsim.StackReno}
	}
	res := &Result{Quick: cfg.Quick, Seed: cfg.Seed}
	sawReno := false
	for _, st := range stacks {
		scores, evidence := runCases(cfg, Cases(cfg), st)
		if st == tcpsim.StackReno && !sawReno {
			sawReno = true
			res.Scores = scores
			res.CaseEvidence = evidence
		} else {
			res.PerStack = append(res.PerStack, StackResult{Stack: st.String(), Scores: scores})
		}
	}
	if !cfg.NoDimensions {
		// One scorecard per diversity axis, Reno only, in grid order. The
		// dimension sweeps never feed the embedded (historically gated)
		// scores, so the Reno scorecard stays byte-identical with or without
		// them; evidence stays off — the per-dimension floors are the signal.
		dimCfg := cfg
		dimCfg.Explain = false
		var order []string
		grouped := map[string][]Case{}
		for _, c := range DimensionCases(cfg) {
			if _, ok := grouped[c.Dimension]; !ok {
				order = append(order, c.Dimension)
			}
			grouped[c.Dimension] = append(grouped[c.Dimension], c)
		}
		for _, dim := range order {
			scores, _ := runCases(dimCfg, grouped[dim], tcpsim.StackReno)
			res.PerDimension = append(res.PerDimension, DimensionResult{Dimension: dim, Scores: scores})
		}
	}
	return res
}

// runCases sweeps one case list under one sender stack with fresh
// accumulators, returning its scorecard plus any per-case evidence.
func runCases(cfg Config, cases []Case, stack tcpsim.Stack) (Scores, []CaseEvidence) {
	altWorkers := 1
	if cfg.Workers == 1 {
		altWorkers = 4
	}
	v := &validator{
		cfg:         cfg,
		analyzer:    core.New(core.Config{Workers: cfg.Workers, Explain: cfg.Explain}),
		altAnalyzer: core.New(core.Config{Workers: altWorkers}),
		factorErr: map[string]*errAccum{
			"bgp-sender-app": {},
			"adv-bounded":    {},
		},
	}

	var violations []string
	for _, c := range cases {
		c.Scenario.Stack = stack
		violations = append(violations, v.scoreCase(c)...)
	}

	s := Scores{
		Cases: len(cases),
		Series: []SeriesScore{
			seriesScore("zero-window", v.zeroWindow.score()),
			seriesScore("adv-blocked", v.advBlocked.score()),
			seriesScore("app-idle", v.appIdle.score()),
			eventScore("upstream-loss", v.upLoss.score()),
			eventScore("downstream-loss", v.downLoss.score()),
		},
		Outcomes:   v.outcomes,
		Violations: violations,
	}

	names := make([]string, 0, len(v.factorErr))
	for n := range v.factorErr {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Factors = append(s.Factors, v.factorErr[n].result(n))
	}

	s.Conf.Matrix = v.confusion
	for e := 0; e < 3; e++ {
		for g := 0; g < 3; g++ {
			s.Conf.Total += v.confusion[e][g]
			if e == g {
				s.Conf.Correct += v.confusion[e][g]
			}
		}
	}
	if s.Conf.Total > 0 {
		s.Conf.Accuracy = float64(s.Conf.Correct) / float64(s.Conf.Total)
	}

	s.Detect = Detection{Checked: v.detectChecked, Passed: v.detectPassed}
	if v.detectChecked > 0 {
		s.Detect.Rate = float64(v.detectPassed) / float64(v.detectChecked)
	}
	return s, v.caseEvidence
}

func seriesScore(name string, s IntervalScore) SeriesScore {
	return SeriesScore{
		Name: name, Kind: "interval",
		Precision: s.Precision, Recall: s.Recall, F1: s.F1, Runs: s.Runs,
	}
}

func eventScore(name string, s EventScore) SeriesScore {
	return SeriesScore{
		Name: name, Kind: "event",
		Precision: s.Precision, Recall: s.Recall, F1: s.F1, Runs: s.Runs,
	}
}

// groupNames renders the confusion axes in index order.
var groupNames = [3]string{
	factors.GroupSender.String(),
	factors.GroupReceiver.String(),
	factors.GroupNetwork.String(),
}

package oracle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the human-readable scorecard.
func (r *Result) WriteText(w io.Writer) {
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "T-DAT validation scorecard (%s sweep, %d cases, seed %d)\n\n", mode, r.Cases, r.Seed)
	writeScoresText(w, &r.Scores)
	for i := range r.PerStack {
		sr := &r.PerStack[i]
		fmt.Fprintf(w, "\n==== stack %s (%d cases) ====\n\n", sr.Stack, sr.Cases)
		writeScoresText(w, &sr.Scores)
	}
	for i := range r.PerDimension {
		dr := &r.PerDimension[i]
		fmt.Fprintf(w, "\n==== dimension %s (%d cases) ====\n\n", dr.Dimension, dr.Cases)
		writeScoresText(w, &dr.Scores)
	}
}

// writeScoresText renders one stack's scorecard block.
func writeScoresText(w io.Writer, r *Scores) {
	fmt.Fprintf(w, "%-17s %-9s %5s %7s %7s %7s\n", "series", "scoring", "runs", "prec", "recall", "F1")
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-17s %-9s %5d %7.3f %7.3f %7.3f\n",
			s.Name, s.Kind, s.Runs, s.Precision, s.Recall, s.F1)
	}

	fmt.Fprintf(w, "\n%-17s %5s %9s %9s\n", "factor ratio", "runs", "MAE", "max err")
	for _, f := range r.Factors {
		fmt.Fprintf(w, "%-17s %5d %9.4f %9.4f\n", f.Name, f.Runs, f.MAE, f.Max)
	}

	fmt.Fprintf(w, "\ndominant-group confusion (rows = truth, cols = verdict):\n")
	fmt.Fprintf(w, "%-10s", "")
	for _, n := range groupNames {
		fmt.Fprintf(w, " %9s", n)
	}
	fmt.Fprintln(w)
	for e := 0; e < 3; e++ {
		fmt.Fprintf(w, "%-10s", groupNames[e])
		for g := 0; g < 3; g++ {
			fmt.Fprintf(w, " %9d", r.Conf.Matrix[e][g])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "accuracy: %d/%d = %.3f\n", r.Conf.Correct, r.Conf.Total, r.Conf.Accuracy)

	fmt.Fprintf(w, "\ndetection checks (timer / consecutive-loss / zero-ack-bug): %d/%d passed\n",
		r.Detect.Passed, r.Detect.Checked)

	if len(r.Violations) > 0 {
		fmt.Fprintf(w, "\nviolations (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(w, "  - %s\n", v)
		}
	} else {
		fmt.Fprintf(w, "\nno violations\n")
	}
}

// WriteJSON renders the machine-readable report.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Floors are the gating thresholds for a validation run. Keys mirror
// scripts/validatefloor.txt:
//
//	series.<name>.f1 <min>    — per-series F1 floor
//	confusion.accuracy <min>  — dominant-group accuracy floor
//	detect.rate <min>         — detector-check pass-rate floor
//	factor.<name>.mae <max>   — per-factor ratio error CEILING
//	violations.max <max>      — total violation CEILING
//
// Per-stack floors prefix any of the above with `stack.<stack>.`, e.g.
// `stack.cubic.series.zero-window.f1 0.90`. They gate the matching entry in
// Result.PerStack; a per-stack floor with no matching swept stack is a
// breach. Per-dimension floors likewise use `dim.<dimension>.<key>`, e.g.
// `dim.long-rtt.series.app-idle.f1 0.90`, gating Result.PerDimension.
type Floors struct {
	SeriesF1          map[string]float64
	ConfusionAccuracy float64
	DetectRate        float64
	FactorMAE         map[string]float64
	MaxViolations     int
	hasMaxViolations  bool
	// PerStack gates Result.PerStack entries by stack name.
	PerStack map[string]*Floors
	// PerDimension gates Result.PerDimension entries by dimension name.
	PerDimension map[string]*Floors
}

// DefaultFloors returns the gate the CI validate job enforces when no floor
// file overrides it: F1 ≥ 0.9 on every scored series, confusion accuracy
// ≥ 0.95, every detector check passing, and zero violations.
func DefaultFloors() Floors {
	return Floors{
		SeriesF1: map[string]float64{
			"zero-window":     0.90,
			"adv-blocked":     0.90,
			"app-idle":        0.90,
			"upstream-loss":   0.90,
			"downstream-loss": 0.90,
		},
		ConfusionAccuracy: 0.95,
		DetectRate:        1.0,
		FactorMAE: map[string]float64{
			"bgp-sender-app": 0.10,
			"adv-bounded":    0.15,
		},
		MaxViolations:    0,
		hasMaxViolations: true,
	}
}

// ParseFloors reads a floor file (see Floors for the key syntax). Blank
// lines and #-comments are ignored.
func ParseFloors(r io.Reader) (Floors, error) {
	f := Floors{SeriesF1: map[string]float64{}, FactorMAE: map[string]float64{}}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return f, fmt.Errorf("floor line %d: want \"key value\", got %q", line, text)
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return f, fmt.Errorf("floor line %d: bad value %q: %v", line, fields[1], err)
		}
		key := fields[0]
		target := &f
		for _, scope := range []struct {
			prefix string
			byName *map[string]*Floors
		}{
			{"stack.", &f.PerStack},
			{"dim.", &f.PerDimension},
		} {
			rest, ok := strings.CutPrefix(key, scope.prefix)
			if !ok {
				continue
			}
			name, sub, ok := strings.Cut(rest, ".")
			if !ok || name == "" {
				return f, fmt.Errorf("floor line %d: want %q, got %q",
					line, scope.prefix+"<name>.<key>", key)
			}
			if *scope.byName == nil {
				*scope.byName = map[string]*Floors{}
			}
			target = (*scope.byName)[name]
			if target == nil {
				target = &Floors{SeriesF1: map[string]float64{}, FactorMAE: map[string]float64{}}
				(*scope.byName)[name] = target
			}
			key = sub
			break
		}
		if err := target.setKey(key, val); err != nil {
			return f, fmt.Errorf("floor line %d: %v", line, err)
		}
	}
	return f, sc.Err()
}

// setKey applies one non-stack-prefixed floor key to this Floors.
func (f *Floors) setKey(key string, val float64) error {
	switch {
	case strings.HasPrefix(key, "series.") && strings.HasSuffix(key, ".f1"):
		name := strings.TrimSuffix(strings.TrimPrefix(key, "series."), ".f1")
		f.SeriesF1[name] = val
	case key == "confusion.accuracy":
		f.ConfusionAccuracy = val
	case key == "detect.rate":
		f.DetectRate = val
	case strings.HasPrefix(key, "factor.") && strings.HasSuffix(key, ".mae"):
		name := strings.TrimSuffix(strings.TrimPrefix(key, "factor."), ".mae")
		f.FactorMAE[name] = val
	case key == "violations.max":
		f.MaxViolations = int(val)
		f.hasMaxViolations = true
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// Check compares the result against the floors and returns the list of
// breaches (empty when the gate passes). Floors.PerStack entries gate the
// matching Result.PerStack scorecards, Floors.PerDimension the matching
// Result.PerDimension ones.
func (r *Result) Check(fl Floors) []string {
	out := checkScores("", &r.Scores, fl)
	stacks := make([]string, 0, len(fl.PerStack))
	for n := range fl.PerStack {
		stacks = append(stacks, n)
	}
	sort.Strings(stacks)
	for _, n := range stacks {
		sub := fl.PerStack[n]
		sr, ok := r.StackByName(n)
		if !ok {
			out = append(out, fmt.Sprintf("stack %s: floors set but stack not swept", n))
			continue
		}
		out = append(out, checkScores("stack "+n+": ", &sr.Scores, *sub)...)
	}
	dims := make([]string, 0, len(fl.PerDimension))
	for n := range fl.PerDimension {
		dims = append(dims, n)
	}
	sort.Strings(dims)
	for _, n := range dims {
		sub := fl.PerDimension[n]
		dr, ok := r.DimensionByName(n)
		if !ok {
			out = append(out, fmt.Sprintf("dimension %s: floors set but dimension not swept", n))
			continue
		}
		out = append(out, checkScores("dim "+n+": ", &dr.Scores, *sub)...)
	}
	return out
}

// checkScores gates one stack's scorecard, prefixing every breach message.
func checkScores(prefix string, r *Scores, fl Floors) []string {
	var out []string
	names := make([]string, 0, len(fl.SeriesF1))
	for n := range fl.SeriesF1 {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		min := fl.SeriesF1[n]
		s, ok := r.SeriesByName(n)
		if !ok {
			out = append(out, fmt.Sprintf("%sseries %s: not scored (floor %.2f)", prefix, n, min))
			continue
		}
		if s.F1 < min {
			out = append(out, fmt.Sprintf("%sseries %s: F1 %.3f below floor %.2f", prefix, n, s.F1, min))
		}
	}
	if r.Conf.Accuracy < fl.ConfusionAccuracy {
		out = append(out, fmt.Sprintf("%sconfusion accuracy %.3f below floor %.2f",
			prefix, r.Conf.Accuracy, fl.ConfusionAccuracy))
	}
	if r.Detect.Rate < fl.DetectRate {
		out = append(out, fmt.Sprintf("%sdetection rate %.3f below floor %.2f",
			prefix, r.Detect.Rate, fl.DetectRate))
	}
	names = names[:0]
	for n := range fl.FactorMAE {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		max := fl.FactorMAE[n]
		f, ok := r.FactorByName(n)
		if !ok {
			out = append(out, fmt.Sprintf("%sfactor %s: not scored (ceiling %.2f)", prefix, n, max))
			continue
		}
		if f.MAE > max {
			out = append(out, fmt.Sprintf("%sfactor %s: MAE %.4f above ceiling %.2f", prefix, n, f.MAE, max))
		}
	}
	if fl.hasMaxViolations && len(r.Violations) > fl.MaxViolations {
		out = append(out, fmt.Sprintf("%s%d violations exceed the allowed %d",
			prefix, len(r.Violations), fl.MaxViolations))
	}
	return out
}

// WriteStackTable renders the "which inferences are Reno-specific" markdown
// table from a multi-stack sweep: one column per stack, one row per scored
// inference. A ✓ means the score still meets the default Reno gate
// (DefaultFloors); a ✗ marks an inference that does not survive that stack.
func (r *Result) WriteStackTable(w io.Writer) {
	type col struct {
		name string
		s    *Scores
	}
	cols := []col{{"reno", &r.Scores}}
	for i := range r.PerStack {
		cols = append(cols, col{r.PerStack[i].Stack, &r.PerStack[i].Scores})
	}
	fl := DefaultFloors()

	fmt.Fprintf(w, "| inference |")
	for _, c := range cols {
		fmt.Fprintf(w, " %s |", c.name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range cols {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)

	row := func(label string, cell func(*Scores) (float64, bool, bool)) {
		fmt.Fprintf(w, "| %s |", label)
		for _, c := range cols {
			val, scored, ok := cell(c.s)
			switch {
			case !scored:
				fmt.Fprintf(w, " — |")
			case ok:
				fmt.Fprintf(w, " %.3f ✓ |", val)
			default:
				fmt.Fprintf(w, " **%.3f ✗** |", val)
			}
		}
		fmt.Fprintln(w)
	}

	for _, sc := range r.Series {
		name := sc.Name
		row(name+" F1", func(s *Scores) (float64, bool, bool) {
			got, ok := s.SeriesByName(name)
			return got.F1, ok, got.F1 >= fl.SeriesF1[name]
		})
	}
	row("dominant-group accuracy", func(s *Scores) (float64, bool, bool) {
		return s.Conf.Accuracy, s.Conf.Total > 0, s.Conf.Accuracy >= fl.ConfusionAccuracy
	})
	row("detector checks pass rate", func(s *Scores) (float64, bool, bool) {
		return s.Detect.Rate, s.Detect.Checked > 0, s.Detect.Rate >= fl.DetectRate
	})
	for _, fe := range r.Factors {
		name := fe.Name
		row(name+" MAE", func(s *Scores) (float64, bool, bool) {
			got, ok := s.FactorByName(name)
			return got.MAE, ok && got.Runs > 0, got.MAE <= fl.FactorMAE[name]
		})
	}
}

// Package sim provides the deterministic discrete-event engine under the
// network/TCP/BGP simulator. Time is virtual, in microseconds; events fire
// in timestamp order with FIFO tie-breaking, and all randomness flows from a
// single seeded source so that every synthetic trace is reproducible.
package sim

import (
	"container/heap"
	"math/rand"

	"tdat/internal/timerange"
)

// Micros re-exports the simulator time unit.
type Micros = timerange.Micros

// Engine is a discrete-event scheduler. The zero value is not usable; use
// New.
type Engine struct {
	now    Micros
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// New creates an engine whose clock starts at startTime and whose randomness
// derives from seed.
func New(startTime Micros, seed int64) *Engine {
	return &Engine{now: startTime, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Micros { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fired {
		return false
	}
	t.ev.canceled = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && !t.ev.fired
}

// At schedules fn to run at absolute time t. Scheduling in the past runs at
// the current time (immediately on the next Step).
func (e *Engine) At(t Micros, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d microseconds from now.
func (e *Engine) After(d Micros, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the clock would pass
// until; it returns the number of events executed. Events scheduled exactly
// at until still run. On return the clock stands at until (bounded-run
// semantics), so repeated chunked calls always make progress even when no
// event falls inside a chunk.
func (e *Engine) Run(until Micros) int {
	n := 0
	for len(e.events) > 0 {
		// Peek to avoid advancing past the horizon.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.time > until {
			break
		}
		e.Step()
		n++
	}
	if until > e.now {
		e.now = until
	}
	return n
}

// RunAll executes events until none remain and returns the count. Guarded by
// maxEvents to surface accidental event storms; a non-positive maxEvents
// means no limit.
func (e *Engine) RunAll(maxEvents int) int {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
	}
	return n
}

// Pending returns the number of scheduled (non-canceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

type event struct {
	time     Micros
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

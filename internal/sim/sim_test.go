package sim

import (
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(0, 1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.RunAll(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d, want 30", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New(0, 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New(100, 1)
	var fired Micros
	e.After(50, func() { fired = e.Now() })
	e.RunAll(0)
	if fired != 150 {
		t.Errorf("fired at %d, want 150", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New(1000, 1)
	var fired Micros = -1
	e.At(5, func() { fired = e.Now() })
	e.RunAll(0)
	if fired != 1000 {
		t.Errorf("fired at %d, want clamped to 1000", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := New(0, 1)
	fired := false
	tm := e.After(10, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Error("Stop should report cancellation")
	}
	if tm.Active() {
		t.Error("timer should be inactive after Stop")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	e.RunAll(0)
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(0, 1)
	tm := e.After(1, func() {})
	e.RunAll(0)
	if tm.Stop() {
		t.Error("Stop after fire should report false")
	}
	if tm.Active() {
		t.Error("fired timer reports active")
	}
}

func TestRunHorizon(t *testing.T) {
	e := New(0, 1)
	var fired []Micros
	for _, tt := range []Micros{10, 20, 30, 40} {
		tt := tt
		e.At(tt, func() { fired = append(fired, tt) })
	}
	n := e.Run(25)
	if n != 2 || len(fired) != 2 {
		t.Errorf("ran %d events, fired %v", n, fired)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Events at exactly the horizon run.
	n = e.Run(30)
	if n != 1 || fired[len(fired)-1] != 30 {
		t.Errorf("horizon-inclusive run: n=%d fired=%v", n, fired)
	}
}

func TestRunAllEventStormGuard(t *testing.T) {
	e := New(0, 1)
	var reschedule func()
	reschedule = func() { e.After(1, reschedule) }
	e.After(1, reschedule)
	n := e.RunAll(100)
	if n != 100 {
		t.Errorf("guard stopped after %d events, want 100", n)
	}
}

func TestCascadingEvents(t *testing.T) {
	// Events scheduled from within events run at correct times.
	e := New(0, 1)
	var times []Micros
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
		e.At(12, func() { times = append(times, e.Now()) })
	})
	e.RunAll(0)
	if len(times) != 3 || times[0] != 10 || times[1] != 12 || times[2] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestDeterministicRand(t *testing.T) {
	a := New(0, 42).Rand().Int63()
	b := New(0, 42).Rand().Int63()
	if a != b {
		t.Error("same seed produced different random streams")
	}
	c := New(0, 43).Rand().Int63()
	if a == c {
		t.Error("different seeds produced identical first values (suspicious)")
	}
}

func TestPendingSkipsCanceled(t *testing.T) {
	e := New(0, 1)
	tm := e.After(10, func() {})
	e.After(20, func() {})
	tm.Stop()
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestNilTimerStopSafe(t *testing.T) {
	var tm *Timer
	if tm.Stop() || tm.Active() {
		t.Error("nil timer should be inert")
	}
}

func TestRunAdvancesClockPastQuietChunks(t *testing.T) {
	// Regression: Run(until) must land the clock on until even when no
	// event falls inside the chunk — otherwise chunked callers recompute
	// the same horizon forever (the upstream-loss livelock).
	e := New(0, 5)
	fired := false
	e.At(10_000_000, func() { fired = true })
	for i := 0; i < 3; i++ {
		e.Run(e.Now() + 1_000_000)
	}
	if e.Now() != 3_000_000 {
		t.Errorf("clock = %d, want 3000000", e.Now())
	}
	if fired {
		t.Error("event fired early")
	}
	for !fired && e.Now() < 20_000_000 {
		e.Run(e.Now() + 1_000_000)
	}
	if !fired || e.Now() != 10_000_000 {
		t.Errorf("fired=%v clock=%d", fired, e.Now())
	}
}

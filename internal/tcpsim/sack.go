package tcpsim

import (
	"sort"

	"tdat/internal/packet"
)

// This file holds the selective-acknowledgment machinery (RFC 2018): the
// sender-side scoreboard of peer-SACKed byte ranges, the receiver-side SACK
// block generation from the out-of-order buffer, and the fast-recovery hole
// retransmission that replaces blind go-back-N when SACK is negotiated.

// scoreboard tracks the byte ranges the peer has selectively acknowledged,
// as sorted disjoint [left, right) stream-offset intervals above sndUna.
type scoreboard struct {
	ranges [][2]int64
}

// add merges [l, r) into the scoreboard.
func (s *scoreboard) add(l, r int64) {
	if l >= r {
		return
	}
	out := s.ranges[:0]
	inserted := false
	for _, rr := range s.ranges {
		switch {
		case rr[1] < l || r < rr[0]:
			// Disjoint (adjacent ranges merge below).
			if rr[0] > r && !inserted {
				out = append(out, [2]int64{l, r})
				inserted = true
			}
			out = append(out, rr)
		default:
			// Overlapping or adjacent: absorb into the pending range.
			if rr[0] < l {
				l = rr[0]
			}
			if rr[1] > r {
				r = rr[1]
			}
		}
	}
	if !inserted {
		out = append(out, [2]int64{l, r})
	}
	// Absorption can leave the merged range out of place; restore order.
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	s.ranges = out
}

// advance drops everything below the new cumulative ACK point.
func (s *scoreboard) advance(una int64) {
	out := s.ranges[:0]
	for _, rr := range s.ranges {
		if rr[1] <= una {
			continue
		}
		if rr[0] < una {
			rr[0] = una
		}
		out = append(out, rr)
	}
	s.ranges = out
}

// coveringEnd returns the right edge of the range covering off, if any.
func (s *scoreboard) coveringEnd(off int64) (int64, bool) {
	for _, rr := range s.ranges {
		if rr[0] <= off && off < rr[1] {
			return rr[1], true
		}
		if rr[0] > off {
			break
		}
	}
	return 0, false
}

// nextSackedStart returns the left edge of the first range starting after
// off, if any.
func (s *scoreboard) nextSackedStart(off int64) (int64, bool) {
	for _, rr := range s.ranges {
		if rr[0] > off {
			return rr[0], true
		}
	}
	return 0, false
}

// max returns the highest SACKed offset, if any range is recorded.
func (s *scoreboard) max() (int64, bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[len(s.ranges)-1][1], true
}

// sackBlocks builds the receiver's SACK blocks from the out-of-order buffer
// in wire sequence space: the block containing the most recent arrival
// first (RFC 2018 §4), then the remaining spans in ascending order, capped
// at three blocks to leave option room alongside padding.
func (e *Endpoint) sackBlocks() [][2]uint32 {
	if len(e.ooo) == 0 {
		return nil
	}
	offs := make([]int64, 0, len(e.ooo))
	for off := range e.ooo {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	var spans [][2]int64
	for _, off := range offs {
		end := off + int64(len(e.ooo[off]))
		if n := len(spans); n > 0 && off <= spans[n-1][1] {
			if end > spans[n-1][1] {
				spans[n-1][1] = end
			}
			continue
		}
		spans = append(spans, [2]int64{off, end})
	}

	first := 0
	for i, sp := range spans {
		if e.lastOOO >= sp[0] && e.lastOOO < sp[1] {
			first = i
			break
		}
	}
	ordered := make([][2]int64, 0, len(spans))
	ordered = append(ordered, spans[first])
	for i, sp := range spans {
		if i != first {
			ordered = append(ordered, sp)
		}
	}
	if len(ordered) > 3 {
		ordered = ordered[:3]
	}

	blocks := make([][2]uint32, len(ordered))
	for i, sp := range ordered {
		blocks[i] = [2]uint32{e.recvWireSeq(sp[0]), e.recvWireSeq(sp[1])}
	}
	return blocks
}

// recvWireSeq converts a receive-stream offset to the peer's wire sequence
// number.
func (e *Endpoint) recvWireSeq(off int64) uint32 { return e.irs + 1 + uint32(off) }

// sackRetransmitHole retransmits the next un-SACKed hole below the highest
// SACKed offset — one hole per duplicate ACK, keeping the repair
// ACK-clocked like the fast retransmit it extends.
func (e *Endpoint) sackRetransmitHole() {
	high, ok := e.sb.max()
	if !ok {
		return
	}
	off := e.sackRexmitNxt
	if off < e.sndUna {
		off = e.sndUna
	}
	for off < high {
		if end, covered := e.sb.coveringEnd(off); covered {
			off = end
			continue
		}
		n := int64(e.cfg.MSS)
		if next, has := e.sb.nextSackedStart(off); has && next-off < n {
			n = next - off
		}
		if fl := e.sndNxt - off; fl < n {
			n = fl
		}
		if n <= 0 {
			return
		}
		start := off - e.sndUna
		e.timing = false // Karn's algorithm: never time retransmitted data
		e.emit(packet.FlagACK|packet.FlagPSH, e.wireSeq(off), e.wireAck(),
			e.sndBuf[start:start+n], true)
		e.sackRexmitNxt = off + n
		return
	}
}

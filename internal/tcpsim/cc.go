package tcpsim

// This file defines the pluggable congestion-control strategy layer. The
// Endpoint owns transport mechanics — buffers, sequence bookkeeping, timers,
// duplicate-ACK counting, retransmission emission — and delegates every
// window decision to a CongestionControl implementation: how fast to grow,
// how hard to back off, whether a retransmission timeout collapses into a
// go-back-N repair or a scoreboard-guided one, and whether transmissions are
// rate-paced off the event loop. The Reno implementation below is a verbatim
// extraction of the arithmetic that used to be interleaved through send.go;
// tracegen's golden trace hashes pin its wire schedule byte-for-byte.

// AckInfo is the context handed to a CongestionControl hook: the event time,
// how many bytes the ACK newly covered (0 for duplicates and timeouts), the
// flight size, the consecutive duplicate-ACK count, the effective MSS, and
// the current smoothed RTT estimate (µs, 0 before the first sample).
type AckInfo struct {
	Now     Micros
	Acked   int64
	Flight  int64
	DupAcks int
	MSS     int
	SRTT    float64
}

// Reaction tells the endpoint what transmission action a duplicate-ACK hook
// wants.
type Reaction int

// Duplicate-ACK reactions.
const (
	// ReactNone requests no retransmission.
	ReactNone Reaction = iota
	// ReactFastRetransmit requests an immediate retransmission of the first
	// unacknowledged segment (the classic third-dup-ACK response).
	ReactFastRetransmit
)

// RepairMode selects how the endpoint walks a timeout-wiped flight back out
// as ACKs reopen the congestion window.
type RepairMode int

// Timeout-repair modes.
const (
	// RepairGoBackN retransmits every outstanding byte below the recovery
	// point (everything is presumed lost).
	RepairGoBackN RepairMode = iota
	// RepairSkipSACKed walks the same range but skips byte ranges the
	// receiver has selectively acknowledged.
	RepairSkipSACKed
)

// CongestionControl is a pluggable sender strategy. Implementations own the
// congestion window and the recovery-state machine; the endpoint reports
// events into the hooks and reads Cwnd back before each transmission
// decision. Hooks run synchronously inside the discrete-event engine and
// must be deterministic.
type CongestionControl interface {
	// Name identifies the strategy ("reno", "cubic", ...).
	Name() string
	// Init seeds the window state from the endpoint configuration.
	Init(cfg Config)
	// Cwnd returns the congestion window in bytes.
	Cwnd() float64
	// InRecovery reports whether the strategy is in loss recovery.
	InRecovery() bool
	// OnAck processes a new cumulative ACK (ev.Acked > 0). Flight is the
	// bytes still outstanding after the ACK advanced sndUna.
	OnAck(ev AckInfo)
	// OnDupAck processes a duplicate ACK (ev.DupAcks is the consecutive
	// count) and returns the retransmission action the endpoint should take.
	OnDupAck(ev AckInfo) Reaction
	// OnRTO processes a retransmission timeout (ev.Flight is the wiped
	// flight) and returns how the endpoint should repair it.
	OnRTO(ev AckInfo) RepairMode
	// OnRecoveryExit fires after an OnAck ended recovery (the endpoint
	// detects the InRecovery true→false edge), for epoch resets and the
	// like.
	OnRecoveryExit(now Micros)
	// PacingGate is consulted before each segment transmission: 0 admits
	// the segment now (and accounts for it), a positive value is the delay
	// after which the endpoint should retry. Window-based strategies
	// return 0 unconditionally.
	PacingGate(now Micros, segBytes int) Micros
}

// newCongestionControl builds the strategy selected by cfg.Stack.
func newCongestionControl(cfg Config) CongestionControl {
	var cc CongestionControl
	switch cfg.Stack {
	case StackCubic:
		cc = &cubicCC{}
	case StackRatePaced:
		cc = &ratePacedCC{}
	case StackSACK:
		cc = &sackCC{}
	default:
		cc = &renoCC{}
	}
	cc.Init(cfg)
	return cc
}

// renoCC is classic Reno: slow start, congestion avoidance with appropriate
// byte counting (RFC 3465), fast retransmit at the third duplicate ACK with
// window inflation, recovery exit on the first new ACK, and a collapse to
// one MSS on timeout. The arithmetic is the exact float64 sequence the
// pre-extraction send.go ran, so simulator output is byte-identical.
type renoCC struct {
	cwnd, ssthresh float64
	maxCwnd        float64
	inRecovery     bool
}

// Name implements CongestionControl.
func (r *renoCC) Name() string { return "reno" }

// Init implements CongestionControl.
func (r *renoCC) Init(cfg Config) {
	r.cwnd = float64(cfg.InitialCwnd * cfg.MSS)
	r.ssthresh = float64(cfg.InitialSsthresh)
	r.maxCwnd = float64(cfg.MaxCwnd)
}

// Cwnd implements CongestionControl.
func (r *renoCC) Cwnd() float64 { return r.cwnd }

// InRecovery implements CongestionControl.
func (r *renoCC) InRecovery() bool { return r.inRecovery }

// clamp caps cwnd at the configured maximum (0 = unbounded).
func (r *renoCC) clamp() {
	if r.maxCwnd > 0 && r.cwnd > r.maxCwnd {
		r.cwnd = r.maxCwnd
	}
}

// OnAck implements CongestionControl.
func (r *renoCC) OnAck(ev AckInfo) {
	if r.inRecovery {
		// Classic Reno: leave recovery on the first new ACK.
		r.inRecovery = false
		r.cwnd = r.ssthresh
		return
	}
	// Appropriate byte counting (RFC 3465): growth is bounded by the bytes
	// this ACK actually covered, so streams of tinygram ACKs cannot inflate
	// the window MSS-per-ACK.
	credit := float64(ev.Acked)
	if credit > float64(ev.MSS) {
		credit = float64(ev.MSS)
	}
	if r.cwnd < r.ssthresh {
		r.cwnd += credit // slow start
	} else {
		r.cwnd += credit * float64(ev.MSS) / r.cwnd // congestion avoidance
	}
	r.clamp()
}

// OnDupAck implements CongestionControl.
func (r *renoCC) OnDupAck(ev AckInfo) Reaction {
	switch {
	case ev.DupAcks == 3:
		flight := float64(ev.Flight)
		r.ssthresh = maxf(flight/2, float64(2*ev.MSS))
		r.cwnd = r.ssthresh + float64(3*ev.MSS)
		r.inRecovery = true
		r.clamp()
		return ReactFastRetransmit
	case ev.DupAcks > 3 && r.inRecovery:
		r.cwnd += float64(ev.MSS) // window inflation per extra dup ACK
		r.clamp()
	}
	return ReactNone
}

// OnRTO implements CongestionControl.
func (r *renoCC) OnRTO(ev AckInfo) RepairMode {
	flight := float64(ev.Flight)
	r.ssthresh = maxf(flight/2, float64(2*ev.MSS))
	r.cwnd = float64(ev.MSS)
	r.inRecovery = false
	return RepairGoBackN
}

// OnRecoveryExit implements CongestionControl (Reno's window restore happens
// in OnAck).
func (r *renoCC) OnRecoveryExit(Micros) {}

// PacingGate implements CongestionControl: Reno is purely window-clocked.
func (r *renoCC) PacingGate(Micros, int) Micros { return 0 }

// sackCC is Reno arithmetic with SACK-aware repair: the endpoint keeps a
// scoreboard of selectively acknowledged ranges, fast recovery clocks out
// un-SACKed holes instead of blind first-segment retransmissions, and the
// post-timeout repair walk skips ranges the receiver already holds.
type sackCC struct {
	renoCC
}

// Name implements CongestionControl.
func (s *sackCC) Name() string { return "sack" }

// OnRTO implements CongestionControl: the wiped flight is repaired
// scoreboard-aware.
func (s *sackCC) OnRTO(ev AckInfo) RepairMode {
	s.renoCC.OnRTO(ev)
	return RepairSkipSACKed
}

package tcpsim

import (
	"bytes"
	"testing"

	"tdat/internal/netem"
	"tdat/internal/packet"
	"tdat/internal/timerange"
)

// ---- Metamorphic properties, driven directly against the strategies ----

// ccUnderTest builds a fresh strategy for the stack with the test MSS and
// window cap applied.
func ccUnderTest(t *testing.T, s Stack, maxCwnd int) CongestionControl {
	t.Helper()
	cfg := Config{Stack: s, MaxCwnd: maxCwnd}.withDefaults()
	return newCongestionControl(cfg)
}

// senderStacks are the stacks that own a CongestionControl strategy (the
// buggy variants are receiver quirks riding on Reno).
func senderStacks() []Stack {
	return []Stack{StackReno, StackCubic, StackRatePaced, StackSACK}
}

// TestCCWindowBounds drives every strategy through a deterministic mix of
// new ACKs, duplicate-ACK bursts, and timeouts, and asserts the two hard
// window invariants after every event: at least one MSS, never above the
// configured maximum.
func TestCCWindowBounds(t *testing.T) {
	const (
		mss     = 1460
		maxCwnd = 50_000
	)
	for _, s := range senderStacks() {
		t.Run(s.String(), func(t *testing.T) {
			cc := ccUnderTest(t, s, maxCwnd)
			check := func(when string, now Micros) {
				if w := cc.Cwnd(); w < float64(mss) || w > float64(maxCwnd) {
					t.Fatalf("%s cwnd = %.0f at t=%d after %s, want within [%d, %d]",
						s, w, now, when, mss, maxCwnd)
				}
			}
			now := Micros(1000)
			flight := int64(10 * mss)
			for i := 0; i < 3000; i++ {
				now += 500
				ev := AckInfo{Now: now, Acked: mss, Flight: flight, MSS: mss, SRTT: 10_000}
				switch {
				case i%97 == 96:
					// A three-dup-ACK burst plus two extra duplicates.
					for d := 1; d <= 5; d++ {
						now += 100
						cc.OnDupAck(AckInfo{Now: now, Flight: flight, DupAcks: d, MSS: mss, SRTT: 10_000})
						check("dup ACK", now)
					}
				case i%499 == 498:
					cc.OnRTO(AckInfo{Now: now, Flight: flight, MSS: mss, SRTT: 10_000})
					check("RTO", now)
				default:
					was := cc.InRecovery()
					cc.OnAck(ev)
					if was && !cc.InRecovery() {
						cc.OnRecoveryExit(now)
					}
					check("new ACK", now)
				}
			}
		})
	}
}

// TestCCSlowStartMonotone asserts that before any loss event, the
// window-clocked strategies never shrink the window: a pure ACK stream only
// grows (or holds) cwnd. The rate-paced model is exempt — its window tracks
// the bandwidth estimate, not the ACK count.
func TestCCSlowStartMonotone(t *testing.T) {
	const mss = 1460
	for _, s := range []Stack{StackReno, StackCubic, StackSACK} {
		t.Run(s.String(), func(t *testing.T) {
			cc := ccUnderTest(t, s, 0)
			now := Micros(0)
			prev := cc.Cwnd()
			for i := 0; i < 5000; i++ {
				now += 500
				cc.OnAck(AckInfo{Now: now, Acked: mss, Flight: 20 * mss, MSS: mss, SRTT: 10_000})
				if w := cc.Cwnd(); w < prev {
					t.Fatalf("%s cwnd shrank %.1f → %.1f on ACK %d with no loss", s, prev, w, i)
				} else {
					prev = w
				}
			}
			if cc.InRecovery() {
				t.Fatalf("%s entered recovery without a loss event", s)
			}
		})
	}
}

// TestCubicConvergesToRenoTinyRTT drives CUBIC and Reno through identical
// congestion-avoidance ACK streams at a tiny RTT, where the cubic term is
// negligible and the TCP-friendly region should keep CUBIC within a
// constant factor of Reno (√α ≈ 0.73 asymptotically, RFC 8312 §4.2).
func TestCubicConvergesToRenoTinyRTT(t *testing.T) {
	const mss = 1460
	// Start both in congestion avoidance: ssthresh below the initial window.
	cfg := Config{InitialSsthresh: 1, MSS: mss}.withDefaults()
	reno, cubic := &renoCC{}, &cubicCC{}
	reno.Init(cfg)
	cubic.Init(cfg)

	now := Micros(0)
	for i := 0; i < 4000; i++ {
		now += 500 // ~0.5 ms between ACKs: 2 s total, cubic term ≈ one MSS
		ev := AckInfo{Now: now, Acked: mss, Flight: 20 * mss, MSS: mss, SRTT: 1000}
		reno.OnAck(ev)
		cubic.OnAck(ev)
	}
	ratio := cubic.Cwnd() / reno.Cwnd()
	if ratio < 0.6 || ratio > 1.25 {
		t.Fatalf("cubic/reno cwnd ratio = %.3f after tiny-RTT CA stream (cubic %.0f, reno %.0f), want ≈0.73 within [0.6, 1.25]",
			ratio, cubic.Cwnd(), reno.Cwnd())
	}
}

// TestCCLossResponse pins the multiplicative-decrease contract: a
// third-duplicate-ACK event must not grow the window, and a timeout must
// collapse it below where it was.
func TestCCLossResponse(t *testing.T) {
	const mss = 1460
	for _, s := range senderStacks() {
		t.Run(s.String(), func(t *testing.T) {
			cc := ccUnderTest(t, s, 0)
			// Grow out of the initial window first.
			now := Micros(0)
			for i := 0; i < 200; i++ {
				now += 500
				cc.OnAck(AckInfo{Now: now, Acked: mss, Flight: 30 * mss, MSS: mss, SRTT: 10_000})
			}
			before := cc.Cwnd()
			for d := 1; d <= 3; d++ {
				now += 100
				if r := cc.OnDupAck(AckInfo{Now: now, Flight: 30 * mss, DupAcks: d, MSS: mss, SRTT: 10_000}); d == 3 && r != ReactFastRetransmit {
					t.Fatalf("%s third dup ACK reaction = %v, want fast retransmit", s, r)
				}
			}
			if w := cc.Cwnd(); w > before {
				t.Errorf("%s grew the window on loss: %.0f → %.0f", s, before, w)
			}
			afterFR := cc.Cwnd()
			now += 1000
			cc.OnRTO(AckInfo{Now: now, Flight: 30 * mss, MSS: mss, SRTT: 10_000})
			if w := cc.Cwnd(); w > afterFR {
				t.Errorf("%s RTO did not shrink the window: %.0f → %.0f", s, afterFR, w)
			}
		})
	}
}

// ---- Endpoint-level behavior per stack ----

// stackPair builds a connected pair with ApplyStack applied to the
// client (sender) and server (receiver) configurations.
func stackPair(t *testing.T, s Stack, seed int64, pcfg netem.PathConfig) *pair {
	t.Helper()
	var ccfg, scfg Config
	ApplyStack(s, &ccfg, &scfg)
	return newPair(t, seed, ccfg, scfg, pcfg)
}

// TestStacksDeliverStreamIntact transfers a fixed payload under random
// downstream loss for every stack personality and asserts the byte stream
// arrives complete and uncorrupted — recovery machinery may differ, but
// reliability must not.
func TestStacksDeliverStreamIntact(t *testing.T) {
	data := make([]byte, 150_000)
	for i := range data {
		data[i] = byte(i*131 + i>>9)
	}
	for _, s := range AllStacks() {
		t.Run(s.String(), func(t *testing.T) {
			pcfg := defaultPath()
			pcfg.DownstreamLoss = 0.02
			p := stackPair(t, s, 7, pcfg)
			var got bytes.Buffer
			p.sinkServer(&got)
			p.connect(t)

			sent := 0
			feed := func() {
				for sent < len(data) {
					n := p.client.Write(data[sent:])
					if n == 0 {
						break
					}
					sent += n
				}
			}
			p.client.OnSendSpace = feed
			feed()
			p.eng.RunAll(10_000_000)

			if !bytes.Equal(got.Bytes(), data) {
				t.Fatalf("stack %s: received %d bytes, want %d (match=%v)",
					s, got.Len(), len(data), bytes.Equal(got.Bytes(), data[:min(len(data), got.Len())]))
			}
			if p.client.Unacked() != 0 {
				t.Errorf("stack %s: %d bytes unacked after drain", s, p.client.Unacked())
			}
			if want := stackCCName(s); p.client.StackName() != want {
				t.Errorf("stack %s: sender strategy = %s, want %s", s, p.client.StackName(), want)
			}
		})
	}
}

// stackCCName maps a stack personality to the sender strategy it installs.
func stackCCName(s Stack) string {
	switch s {
	case StackCubic:
		return "cubic"
	case StackRatePaced:
		return "rate-paced"
	case StackSACK:
		return "sack"
	default:
		return "reno" // buggy variants are receiver quirks on a Reno sender
	}
}

// TestSACKNegotiation checks OptSACKPermitted handling: SACK activates only
// when both sides offer it.
func TestSACKNegotiation(t *testing.T) {
	cases := []struct {
		name           string
		client, server bool
		want           bool
	}{
		{"both", true, true, true},
		{"client-only", true, false, false},
		{"server-only", false, true, false},
		{"neither", false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPair(t, 5, Config{SACK: tc.client}, Config{SACK: tc.server}, defaultPath())
			p.connect(t)
			if p.client.SACKEnabled() != tc.want || p.server.SACKEnabled() != tc.want {
				t.Errorf("sackOK = %v/%v, want %v", p.client.SACKEnabled(), p.server.SACKEnabled(), tc.want)
			}
		})
	}
}

// TestSACKBlocksAdvertised drops a single mid-flight segment and asserts
// the receiver's duplicate ACKs carry SACK blocks sitting above the hole,
// and that the stream still completes.
func TestSACKBlocksAdvertised(t *testing.T) {
	p := stackPair(t, StackSACK, 9, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)

	// Drop exactly one mid-flight data segment on the wire.
	var droppedSeq uint32
	dropped := false
	dataSegs := 0
	clientOut := p.client.out
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) > 0 {
			dataSegs++
			if dataSegs == 3 && !dropped {
				dropped = true
				droppedSeq = pk.TCP.Seq
				return // lost
			}
		}
		clientOut(pk)
	}
	// Watch the receiver's ACK stream for the first SACK option.
	var sackBlocks [][2]uint32
	serverOut := p.server.out
	p.server.out = func(pk *packet.Packet) {
		if b := pk.TCP.SACKBlocks(); len(b) > 0 && sackBlocks == nil {
			sackBlocks = b
		}
		serverOut(pk)
	}
	p.connect(t)

	data := make([]byte, 30_000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	sent := 0
	feed := func() {
		for sent < len(data) {
			n := p.client.Write(data[sent:])
			if n == 0 {
				break
			}
			sent += n
		}
	}
	p.client.OnSendSpace = feed
	feed()
	p.eng.RunAll(5_000_000)

	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d/%d bytes", got.Len(), len(data))
	}
	if !dropped {
		t.Fatal("test harness never dropped a segment")
	}
	if sackBlocks == nil {
		t.Fatal("no SACK blocks observed after a mid-flight drop")
	}
	if left := sackBlocks[0][0]; int32(left-droppedSeq) <= 0 {
		t.Errorf("first SACK block left edge %d not above the dropped segment %d", left, droppedSeq)
	}
}

// TestScoreboard unit-tests the SACK scoreboard range algebra.
func TestScoreboard(t *testing.T) {
	var sb scoreboard
	sb.add(1000, 2000)
	sb.add(3000, 4000)
	sb.add(1500, 2500) // extends the first range
	if end, ok := sb.coveringEnd(1000); !ok || end != 2500 {
		t.Fatalf("coveringEnd(1000) = %d,%v want 2500,true", end, ok)
	}
	if _, ok := sb.coveringEnd(2500); ok {
		t.Fatal("2500 should be a hole")
	}
	if next, ok := sb.nextSackedStart(2500); !ok || next != 3000 {
		t.Fatalf("nextSackedStart(2500) = %d,%v want 3000,true", next, ok)
	}
	if hi, ok := sb.max(); !ok || hi != 4000 {
		t.Fatalf("max = %d,%v want 4000,true", hi, ok)
	}
	sb.add(2500, 3000) // bridges the hole
	if end, ok := sb.coveringEnd(1200); !ok || end != 4000 {
		t.Fatalf("after bridge coveringEnd(1200) = %d,%v want 4000,true", end, ok)
	}
	sb.advance(3500)
	if end, ok := sb.coveringEnd(3500); !ok || end != 4000 {
		t.Fatalf("after advance coveringEnd(3500) = %d,%v want 4000,true", end, ok)
	}
	if _, ok := sb.coveringEnd(1200); ok {
		t.Fatal("ranges below the cumulative ACK must be dropped")
	}
	sb.advance(5000)
	if _, ok := sb.max(); ok {
		t.Fatal("scoreboard should be empty past the last range")
	}
}

// ---- Satellite: the RTO repair fold ----

// TestRTORepairNotOneSegmentPerTimeout reproduces the failure the
// go-back-N repair originally fixed, now living behind the strategy's
// OnRTO path: a loss episode wipes an entire flight; once connectivity
// returns, the repair must walk the whole flight forward at slow-start
// pace clocked by ACKs — not retransmit one segment per exponentially
// backed-off timeout, which would take minutes for a 40-segment flight.
func TestRTORepairNotOneSegmentPerTimeout(t *testing.T) {
	pcfg := defaultPath()
	// connect() runs the engine to t=2 s, so the transfer starts there; by
	// 2.1 s slow start has a full 64 KB window (~45 segments) in flight.
	// Everything on the upstream data path then dies until 4.5 s, wiping
	// the whole flight.
	pcfg.UpstreamHook = netem.LossEpisodes(timerange.R(2_100_000, 4_500_000))
	p := newPair(t, 11, Config{}, Config{}, pcfg)
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)

	data := make([]byte, 400_000)
	for i := range data {
		data[i] = byte(i * 17)
	}
	doneAt := Micros(-1)
	p.server.OnReadable = func() {
		got.Write(p.server.Read(p.server.ReadableLen()))
		if got.Len() == len(data) && doneAt < 0 {
			doneAt = p.eng.Now()
		}
	}
	sent := 0
	feed := func() {
		for sent < len(data) {
			n := p.client.Write(data[sent:])
			if n == 0 {
				break
			}
			sent += n
		}
	}
	p.client.OnSendSpace = feed
	feed()
	p.eng.RunAll(5_000_000)

	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d/%d bytes after loss episode", got.Len(), len(data))
	}
	st := p.client.Stats()
	// One timeout inside the episode and at most a couple of backoffs; a
	// one-segment-per-RTO sender would need ~40 timeouts with exponential
	// backoff to move this flight.
	if st.Timeouts > 5 {
		t.Errorf("timeouts = %d, want ≤ 5 (repair must be ACK-clocked, not timer-clocked)", st.Timeouts)
	}
	// The wiped flight (~40 segments) must actually have been retransmitted.
	if st.Retransmits < 20 {
		t.Errorf("retransmits = %d, want ≥ 20 (the flight was wiped)", st.Retransmits)
	}
	// Connectivity returns at 4.5 s; the backed-off timer fires within a
	// couple of seconds of that, and the ACK-clocked walk finishes the
	// remaining transfer in tens of RTTs. The broken one-segment-per-RTO
	// behavior would still be probing at minute scale.
	if doneAt < 0 || doneAt > 12_000_000 {
		t.Errorf("transfer completed at t=%d µs, want within 12 s", doneAt)
	}
}

// TestStretchAckQuirkSlowsAckClock asserts the stretch-ACK receiver sends
// materially fewer ACKs for the same payload — the signature that starves
// a window-based sender's ACK clock.
func TestStretchAckQuirkSlowsAckClock(t *testing.T) {
	run := func(s Stack) (acks int, dur Micros) {
		p := stackPair(t, s, 13, defaultPath())
		var got bytes.Buffer
		p.sinkServer(&got)
		p.connect(t)
		data := make([]byte, 120_000)
		sent := 0
		feed := func() {
			for sent < len(data) {
				n := p.client.Write(data[sent:])
				if n == 0 {
					break
				}
				sent += n
			}
		}
		p.client.OnSendSpace = feed
		feed()
		p.eng.RunAll(10_000_000)
		if got.Len() != len(data) {
			panic("transfer incomplete")
		}
		return p.server.Stats().SegmentsSent, p.eng.Now()
	}
	renoAcks, _ := run(StackReno)
	stretchAcks, _ := run(StackStretchAck)
	if stretchAcks >= renoAcks*2/3 {
		t.Errorf("stretch-ACK receiver sent %d segments vs reno %d, want a materially lower ACK rate", stretchAcks, renoAcks)
	}
}

// TestWScaleBugShrinksWindow asserts the broken-window-scaling receiver
// advertises at most a fraction of its real buffer.
func TestWScaleBugShrinksWindow(t *testing.T) {
	p := stackPair(t, StackWScaleBug, 17, defaultPath())
	p.connect(t)
	if adv := p.server.AdvertisedWindow(); adv > 65535>>4 {
		t.Errorf("advertised window = %d, want ≤ %d under a 4-bit scaling bug", adv, 65535>>4)
	}
	if p.client.PeerWindow() > 65535>>4 {
		t.Errorf("sender sees peer window %d, want ≤ %d", p.client.PeerWindow(), 65535>>4)
	}
}

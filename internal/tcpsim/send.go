package tcpsim

import (
	"tdat/internal/packet"
)

// This file holds the sender half: segment transmission under the
// congestion and advertised windows (with an optional pacing gate), RFC 6298
// retransmission timeouts, zero-window persist probing, and the
// probe-discard bug. Window arithmetic itself lives behind the
// CongestionControl strategy (cc.go).

// trySend transmits as much buffered data as both windows (and the
// strategy's pacing gate, if any) allow.
func (e *Endpoint) trySend() {
	if e.state != StateEstablished && e.state != StateCloseWait {
		return
	}
	wnd := int64(e.cc.Cwnd())
	if pw := int64(e.peerWnd); pw < wnd {
		wnd = pw
	}
	dataEnd := e.sndUna + int64(len(e.sndBuf))
	for e.sndNxt < dataEnd && e.sndNxt-e.sndUna < wnd {
		seg := int64(e.cfg.MSS)
		if rem := dataEnd - e.sndNxt; rem < seg {
			seg = rem
		}
		if room := wnd - (e.sndNxt - e.sndUna); room < seg {
			seg = room
		}
		if seg <= 0 {
			break
		}
		// Nagle's algorithm: while data is outstanding, hold back sub-MSS
		// segments caused by the application dribbling small writes (BGP
		// updates are ~60–130 bytes); they coalesce into full segments on
		// the next ACK or write.
		if !e.cfg.NoDelay && int(seg) < e.cfg.MSS && rem(dataEnd, e.sndNxt) < int64(e.cfg.MSS) &&
			e.sndNxt > e.sndUna {
			break
		}
		// Rate-paced stacks spread transmissions along the pacing interval
		// instead of bursting the whole window; the strategy accounts for
		// admitted segments, and a denied segment schedules a retry when
		// the gate reopens.
		if wait := e.cc.PacingGate(e.eng.Now(), int(seg)); wait > 0 {
			if !e.paceTimer.Active() {
				e.paceTimer = e.eng.After(wait, e.trySend)
			}
			break
		}
		e.sendSegment(e.sndNxt, int(seg))
		e.sndNxt += seg
	}
	if e.sndNxt > e.sndUna {
		if !e.rtoTimer.Active() {
			e.armRTO()
		}
	}
	// Zero-window deadlock: data pending, nothing in flight, window closed.
	if e.peerWnd == 0 && e.sndNxt == e.sndUna && e.sndNxt < dataEnd {
		e.armPersist()
	}
	// Ground truth: the sender is advertised-window blocked when the peer
	// window (not cwnd) is the binding constraint and the sender has more
	// to move — either buffered data remains unsent, or the send buffer is
	// packed with unacked bytes that only a window release can retire (the
	// application is stalled behind the full buffer). "Binding" means the
	// window, net of in-flight data, has less than a few segments of room:
	// below that the sender either cannot emit a full segment or ends up in
	// the Nagle/silly-window interlock where its sub-MSS tail waits on a
	// window update the receiver is withholding until its buffer drains.
	// Three segments of slack matches the analyzer's window-fill test
	// (series.Config.WindowSlackMSS) — shared as the *definition* of a
	// filled window, while the states compared remain independent (endpoint
	// internals here, flight structure inferred from the wire there).
	if e.probe != nil {
		inflight := e.sndNxt - e.sndUna
		pw := int64(e.peerWnd)
		wantsMore := e.sndNxt < dataEnd || e.SendBufAvailable() < e.cfg.MSS
		slack := int64(3 * e.cfg.MSS)
		blocked := wantsMore && pw <= int64(e.cc.Cwnd()) && pw-inflight < slack
		e.probeSendBlocked(blocked)
	}
}

// sendSegment emits payload [off, off+n) from the send buffer. The
// probe-discard bug, when armed, consumes the transmission silently: the
// stream position advances but no packet reaches the network, so the
// segment can only be repaired by a retransmission timeout — exactly the
// repetitive-retransmission signature of paper §IV-B.
func (e *Endpoint) sendSegment(off int64, n int) {
	start := off - e.sndUna
	payload := e.sndBuf[start : start+int64(n)]
	if e.bugDropArmed {
		e.bugDropArmed = false
		e.stats.BugDrops++
		e.probeBugDrop()
		return
	}
	if !e.timing {
		e.timing = true
		e.timedEnd = off + int64(n)
		e.timedAt = e.eng.Now()
	}
	flags := uint8(packet.FlagACK)
	if off+int64(n) == e.sndUna+int64(len(e.sndBuf)) {
		flags |= packet.FlagPSH
	}
	e.emit(flags, e.wireSeq(off), e.wireAck(), payload, false)
}

// retransmitFirst resends one MSS starting at sndUna, returning the bytes
// retransmitted.
func (e *Endpoint) retransmitFirst() int64 {
	if e.sndNxt == e.sndUna || len(e.sndBuf) == 0 {
		return 0
	}
	n := int64(e.cfg.MSS)
	if fl := e.sndNxt - e.sndUna; fl < n {
		n = fl
	}
	e.timing = false // Karn's algorithm: never time retransmitted data
	e.emit(packet.FlagACK|packet.FlagPSH, e.wireSeq(e.sndUna), e.wireAck(), e.sndBuf[:n], true)
	return n
}

// processAck handles the acknowledgment and window fields of an incoming
// segment.
func (e *Endpoint) processAck(tcp *packet.TCP) {
	ackOff := e.ackToOff(tcp.Ack)
	oldWnd := e.peerWnd
	e.peerWnd = int(tcp.Window)

	// Fold any SACK blocks into the scoreboard before acting on the ACK, so
	// fast-recovery hole selection sees what the receiver already holds.
	if e.sackOK {
		for _, b := range tcp.SACKBlocks() {
			l, r := e.ackToOff(b[0]), e.ackToOff(b[1])
			if l < r && r <= e.sndNxt {
				e.sb.add(l, r)
			}
		}
	}

	// A window reopening cancels the persist probe; under the router bug
	// the race corrupts the next outgoing segment (paper §IV-B).
	if oldWnd == 0 && e.peerWnd > 0 {
		if e.persistTimer.Active() {
			e.persistTimer.Stop()
			if e.cfg.ZeroWindowProbeBug {
				e.bugDropArmed = true
			}
		}
	}

	if e.finSentAt >= 0 && e.state == StateFinWait && ackOff > e.finSentAt {
		// Our FIN is acknowledged: the active close completes (TIME-WAIT is
		// not modeled; captures end with the connection).
		e.state = StateClosed
		e.stopTimers()
		return
	}
	switch {
	case ackOff > e.sndUna && ackOff <= e.sndNxt:
		e.onNewAck(ackOff)
	case ackOff == e.sndUna && e.sndNxt > e.sndUna:
		// Potential duplicate ACK: no data, no window change.
		if e.peerWnd == oldWnd {
			e.onDupAck()
		}
	}
	e.trySend()
}

func (e *Endpoint) onNewAck(ackOff int64) {
	acked := ackOff - e.sndUna
	e.sndBuf = e.sndBuf[acked:]
	e.sndUna = ackOff
	if e.sndNxt < e.sndUna {
		e.sndNxt = e.sndUna
	}
	e.dupAcks = 0
	e.rtoShift = 0
	e.sb.advance(e.sndUna)

	if e.timing && ackOff >= e.timedEnd {
		e.rttSampleRaw(e.eng.Now() - e.timedAt)
		e.timing = false
	}

	wasRecovering := e.cc.InRecovery()
	e.cc.OnAck(AckInfo{
		Now:    e.eng.Now(),
		Acked:  acked,
		Flight: e.sndNxt - e.sndUna,
		MSS:    e.cfg.MSS,
		SRTT:   e.srtt,
	})
	if wasRecovering && !e.cc.InRecovery() {
		e.cc.OnRecoveryExit(e.eng.Now())
		e.sackRexmitNxt = 0
	}

	if e.rtoRecover > 0 {
		if e.sndUna >= e.rtoRecover {
			e.rtoRecover = 0 // hole repaired
		} else {
			e.retransmitHole()
		}
	}

	if e.sndNxt > e.sndUna {
		e.armRTO()
	} else {
		e.rtoTimer.Stop()
	}
	if e.OnSendSpace != nil && acked > 0 {
		e.OnSendSpace()
	}
	e.maybeSendFIN()
}

// retransmitHole continues the post-timeout repair walk: each new ACK below
// the recovery point retransmits the next congestion window's worth of the
// presumed-lost flight, so a flight wiped out by a loss episode is repaired
// at slow-start pace once connectivity returns instead of one segment per
// backed-off timeout. Under RepairSkipSACKed the walk steps over byte
// ranges the receiver has selectively acknowledged.
func (e *Endpoint) retransmitHole() {
	if e.rexmitNxt < e.sndUna {
		e.rexmitNxt = e.sndUna
	}
	for e.rexmitNxt < e.rtoRecover {
		if e.repairMode == RepairSkipSACKed {
			if end, ok := e.sb.coveringEnd(e.rexmitNxt); ok {
				e.rexmitNxt = end // already at the receiver
				continue
			}
		}
		n := int64(e.cfg.MSS)
		if rem := e.rtoRecover - e.rexmitNxt; rem < n {
			n = rem
		}
		if e.repairMode == RepairSkipSACKed {
			// Stop a segment short of the next SACKed range.
			if next, ok := e.sb.nextSackedStart(e.rexmitNxt); ok && next-e.rexmitNxt < n {
				n = next - e.rexmitNxt
			}
		}
		if room := int64(e.cc.Cwnd()) - (e.rexmitNxt - e.sndUna); room < n {
			n = room
		}
		if n <= 0 {
			return
		}
		start := e.rexmitNxt - e.sndUna
		e.timing = false // Karn's algorithm: never time retransmitted data
		e.emit(packet.FlagACK|packet.FlagPSH, e.wireSeq(e.rexmitNxt), e.wireAck(),
			e.sndBuf[start:start+n], true)
		e.rexmitNxt += n
	}
}

func (e *Endpoint) onDupAck() {
	e.dupAcks++
	reaction := e.cc.OnDupAck(AckInfo{
		Now:     e.eng.Now(),
		Flight:  e.sndNxt - e.sndUna,
		DupAcks: e.dupAcks,
		MSS:     e.cfg.MSS,
		SRTT:    e.srtt,
	})
	switch {
	case reaction == ReactFastRetransmit:
		e.stats.FastRetransmits++
		n := e.retransmitFirst()
		if e.sackOK {
			e.sackRexmitNxt = e.sndUna + n
		}
		e.armRTO()
	case e.sackOK && e.cc.InRecovery() && e.dupAcks > 3:
		// SACK fast recovery: each further duplicate ACK clocks out the
		// next un-SACKed hole instead of waiting for the cumulative ACK.
		e.sackRetransmitHole()
	}
}

// currentRTO returns the timeout with backoff applied.
func (e *Endpoint) currentRTO() Micros {
	rto := e.rtoBase
	if rto == 0 {
		rto = 3_000_000 // RFC 6298 initial RTO before any sample
	}
	for i := 0; i < e.rtoShift; i++ {
		rto = Micros(float64(rto) * e.cfg.RTOBackoff)
		if rto >= e.cfg.MaxRTO {
			return e.cfg.MaxRTO
		}
	}
	return clampMicros(rto, e.cfg.MinRTO, e.cfg.MaxRTO)
}

func (e *Endpoint) armRTO() {
	e.rtoTimer.Stop()
	e.rtoTimer = e.eng.After(e.currentRTO(), e.onRTO)
}

func (e *Endpoint) onRTO() {
	switch e.state {
	case StateSynSent, StateSynReceived:
		e.rtoShift++
		e.stats.Timeouts++
		e.probeTimeout()
		e.synRetx = true
		e.sendSyn(e.state == StateSynReceived)
		e.armRTO()
		return
	case StateEstablished, StateCloseWait:
	default:
		return
	}
	if e.sndNxt == e.sndUna {
		return // everything acked in the meantime
	}
	e.stats.Timeouts++
	e.probeTimeout()
	e.repairMode = e.cc.OnRTO(AckInfo{
		Now:    e.eng.Now(),
		Flight: e.sndNxt - e.sndUna,
		MSS:    e.cfg.MSS,
		SRTT:   e.srtt,
	})
	e.dupAcks = 0
	// Everything outstanding is presumed lost: retransmit the first segment
	// now and walk the rest forward as ACKs reopen the congestion window
	// (slow-start repair in the mode the strategy chose), rather than one
	// segment per backed-off timeout.
	e.rtoRecover = e.sndNxt
	e.rexmitNxt = e.sndUna
	e.retransmitFirst()
	e.rtoShift++
	e.armRTO()
}

// armPersist schedules a zero-window probe.
func (e *Endpoint) armPersist() {
	if e.persistTimer.Active() {
		return
	}
	if e.persistBackoff == 0 {
		e.persistBackoff = e.currentRTO()
	}
	e.persistTimer = e.eng.After(e.persistBackoff, e.onPersist)
}

func (e *Endpoint) onPersist() {
	if e.peerWnd > 0 || e.sndNxt > e.sndUna || e.Unsent() == 0 {
		e.persistBackoff = 0
		return
	}
	// Probe with one byte of new data; the receiver cannot accept it while
	// its buffer is full but will answer with its current window.
	e.stats.ProbesSent++
	start := e.sndNxt - e.sndUna
	e.emit(packet.FlagACK, e.wireSeq(e.sndNxt), e.wireAck(), e.sndBuf[start:start+1], false)
	e.persistBackoff = clampMicros(e.persistBackoff*2, e.cfg.MinRTO, e.cfg.MaxRTO)
	e.persistTimer = e.eng.After(e.persistBackoff, e.onPersist)
}

// rttSampleRaw folds a measured round-trip sample into SRTT/RTTVAR and the
// base RTO (RFC 6298 §2).
func (e *Endpoint) rttSampleRaw(sample Micros) {
	if sample < 0 {
		return
	}
	r := float64(sample)
	if e.srtt == 0 {
		e.srtt = r
		e.rttvar = r / 2
	} else {
		diff := e.srtt - r
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = 0.75*e.rttvar + 0.25*diff
		e.srtt = 0.875*e.srtt + 0.125*r
	}
	e.rtoBase = clampMicros(Micros(e.srtt+maxf(1000, 4*e.rttvar)), e.cfg.MinRTO, e.cfg.MaxRTO)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clampMicros(v, lo, hi Micros) Micros {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// rem returns the bytes remaining after position pos.
func rem(dataEnd, pos int64) int64 { return dataEnd - pos }

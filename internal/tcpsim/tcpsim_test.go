package tcpsim

import (
	"bytes"
	"net/netip"
	"testing"

	"tdat/internal/netem"
	"tdat/internal/packet"
	"tdat/internal/sim"
	"tdat/internal/timerange"
)

// pair wires a client and server endpoint over a bidirectional netem path
// and returns both plus the engine and sniffer.
type pair struct {
	eng    *sim.Engine
	client *Endpoint // active opener ("router" / sender)
	server *Endpoint // passive opener ("collector" / receiver)
	path   *netem.Path
}

func newPair(t *testing.T, seed int64, ccfg, scfg Config, pcfg netem.PathConfig) *pair {
	t.Helper()
	eng := sim.New(0, seed)
	if !ccfg.Addr.IsValid() {
		ccfg.Addr = netip.MustParseAddr("10.0.0.1")
		ccfg.Port = 179
	}
	if !scfg.Addr.IsValid() {
		scfg.Addr = netip.MustParseAddr("10.0.0.2")
		scfg.Port = 41000
	}
	p := &pair{eng: eng}
	// Path forwards data packets to the server and ACK-direction packets to
	// the client.
	p.path = netem.NewPath(eng, pcfg,
		func(pk *packet.Packet) { p.server.Deliver(pk) },
		func(pk *packet.Packet) { p.client.Deliver(pk) },
	)
	p.client = NewEndpoint(eng, ccfg, Handler(p.path.DataIn))
	p.server = NewEndpoint(eng, scfg, Handler(p.path.AckIn))
	p.server.Listen()
	return p
}

func defaultPath() netem.PathConfig {
	return netem.PathConfig{UpstreamDelay: 5000, DownstreamDelay: 100} // ~10.2 ms RTT
}

func (p *pair) connect(t *testing.T) {
	t.Helper()
	established := false
	p.client.OnEstablished = func() { established = true }
	p.client.Connect(p.server.cfg.Addr, p.server.cfg.Port)
	p.eng.Run(p.eng.Now() + 2_000_000)
	if !established {
		t.Fatal("handshake did not complete")
	}
}

// drain reads everything the server has whenever data arrives.
func (p *pair) sinkServer(buf *bytes.Buffer) {
	p.server.OnReadable = func() {
		buf.Write(p.server.Read(p.server.ReadableLen()))
	}
}

func TestHandshake(t *testing.T) {
	p := newPair(t, 1, Config{}, Config{}, defaultPath())
	p.connect(t)
	if p.client.State() != StateEstablished || p.server.State() != StateEstablished {
		t.Errorf("states = %v / %v", p.client.State(), p.server.State())
	}
	if p.client.SRTT() < 10_000 || p.client.SRTT() > 12_000 {
		t.Errorf("client SRTT = %d µs, want ≈10200", p.client.SRTT())
	}
}

func TestBulkTransferLossless(t *testing.T) {
	p := newPair(t, 2, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)

	data := make([]byte, 200_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	// Feed through the finite send buffer as space opens.
	sent := 0
	feed := func() {
		for sent < len(data) {
			n := p.client.Write(data[sent:])
			if n == 0 {
				break
			}
			sent += n
		}
	}
	p.client.OnSendSpace = feed
	feed()
	p.eng.RunAll(2_000_000)

	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("received %d bytes, want %d; content match=%v",
			got.Len(), len(data), bytes.Equal(got.Bytes(), data[:min(len(data), got.Len())]))
	}
	if p.client.Stats().Retransmits != 0 {
		t.Errorf("lossless path retransmits = %d", p.client.Stats().Retransmits)
	}
	if p.client.Unacked() != 0 {
		t.Errorf("unacked = %d after drain", p.client.Unacked())
	}
}

func TestSlowStartGrowth(t *testing.T) {
	p := newPair(t, 3, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	before := p.client.Cwnd()
	data := make([]byte, 60_000)
	p.client.Write(data)
	p.eng.RunAll(1_000_000)
	if p.client.Cwnd() <= before {
		t.Errorf("cwnd did not grow: %d -> %d", before, p.client.Cwnd())
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	// Server app never reads: the 65535-byte buffer fills, window hits zero,
	// sender stalls and sends persist probes.
	p := newPair(t, 4, Config{}, Config{}, defaultPath())
	p.connect(t)
	data := make([]byte, 150_000)
	sent := p.client.Write(data) // bounded by 64 KB send buffer
	p.client.OnSendSpace = func() {
		if sent < len(data) {
			sent += p.client.Write(data[sent:])
		}
	}
	p.eng.Run(10_000_000)

	if p.server.ReadableLen() != p.server.cfg.RecvBuf {
		t.Errorf("server buffered %d, want full %d", p.server.ReadableLen(), p.server.cfg.RecvBuf)
	}
	if p.client.PeerWindow() != 0 {
		t.Errorf("peer window = %d, want 0", p.client.PeerWindow())
	}
	if p.client.Stats().ProbesSent == 0 {
		t.Error("no zero-window probes sent")
	}

	// Now read everything and confirm the transfer completes.
	var got bytes.Buffer
	got.Write(p.server.Read(p.server.ReadableLen()))
	p.server.OnReadable = func() { got.Write(p.server.Read(p.server.ReadableLen())) }
	p.eng.RunAll(2_000_000)
	if got.Len() != len(data) {
		t.Errorf("received %d bytes, want %d", got.Len(), len(data))
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	// Drop exactly one data packet mid-stream; dup ACKs must trigger a fast
	// retransmit (not a timeout) and the stream must stay intact.
	dropped := false
	nthData := 0
	pcfg := defaultPath()
	pcfg.UpstreamHook = func(ts sim.Micros, pk *packet.Packet) bool {
		if len(pk.Payload) == 0 {
			return false
		}
		nthData++
		// Drop one mid-stream segment (not the first flight, so dup ACKs
		// can accumulate behind it).
		if !dropped && nthData == 9 {
			dropped = true
			return true
		}
		return false
	}
	p := newPair(t, 5, Config{}, Config{}, pcfg)
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)

	data := make([]byte, 60_000)
	for i := range data {
		data[i] = byte(i)
	}
	p.client.Write(data)
	p.eng.RunAll(2_000_000)

	if !dropped {
		t.Fatal("loss hook never fired")
	}
	st := p.client.Stats()
	if st.FastRetransmits == 0 {
		t.Errorf("expected a fast retransmit; stats=%+v", st)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Errorf("stream corrupted: got %d bytes", got.Len())
	}
}

func TestRTORecoveryAfterBurstLoss(t *testing.T) {
	// Drop everything for a window: the sender must fall back to timeout
	// retransmission with exponential backoff and still complete.
	var episode timerange.Range
	pcfg := defaultPath()
	pcfg.UpstreamHook = func(ts sim.Micros, pk *packet.Packet) bool {
		return episode.Contains(ts)
	}
	p := newPair(t, 6, Config{}, Config{}, pcfg)
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	episode = timerange.R(p.eng.Now()+20_000, p.eng.Now()+550_000)

	data := make([]byte, 40_000)
	for i := range data {
		data[i] = byte(i >> 3)
	}
	p.client.Write(data)
	p.eng.RunAll(5_000_000)

	st := p.client.Stats()
	if st.Timeouts == 0 {
		t.Errorf("expected RTO timeouts; stats=%+v", st)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Errorf("stream corrupted after RTO recovery: got %d bytes", got.Len())
	}
	if p.client.Cwnd() >= 65535 {
		t.Errorf("cwnd = %d, expected reduction after loss", p.client.Cwnd())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	// Deliver segments directly with artificial reordering.
	eng := sim.New(0, 7)
	var outPkts []*packet.Packet
	srv := NewEndpoint(eng, Config{
		Addr: netip.MustParseAddr("10.0.0.2"), Port: 41000,
	}, func(p *packet.Packet) { outPkts = append(outPkts, p) })
	srv.Listen()

	mk := func(seq uint32, flags uint8, payload []byte) *packet.Packet {
		return &packet.Packet{
			IP:      packet.IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")},
			TCP:     packet.TCP{SrcPort: 179, DstPort: 41000, Seq: seq, Ack: srv.iss + 1, Flags: flags, Window: 65535},
			Payload: payload,
		}
	}
	srv.Deliver(mk(1000, packet.FlagSYN, nil))
	srv.Deliver(mk(1001, packet.FlagACK, nil)) // completes handshake
	if srv.State() != StateEstablished {
		t.Fatalf("state = %v", srv.State())
	}
	base := len(outPkts)
	// Send seg2 before seg1.
	srv.Deliver(mk(1006, packet.FlagACK, []byte("world")))
	if got := len(outPkts) - base; got != 1 {
		t.Fatalf("out-of-order segment should trigger immediate dup ACK, got %d packets", got)
	}
	dup := outPkts[len(outPkts)-1]
	if dup.TCP.Ack != 1001 {
		t.Errorf("dup ack = %d, want 1001", dup.TCP.Ack)
	}
	srv.Deliver(mk(1001, packet.FlagACK, []byte("hello")))
	if got := string(srv.Read(10)); got != "helloworld" {
		t.Errorf("reassembled = %q", got)
	}
	// The ACK after filling the gap must cover both segments.
	last := outPkts[len(outPkts)-1]
	if last.TCP.Ack != 1011 {
		t.Errorf("cumulative ack = %d, want 1011", last.TCP.Ack)
	}
}

func TestDelayedAckTimer(t *testing.T) {
	// A single small segment should be acked only after the delayed-ACK
	// timeout (~200 ms), not immediately.
	eng := sim.New(0, 8)
	var ackTimes []sim.Micros
	srv := NewEndpoint(eng, Config{
		Addr: netip.MustParseAddr("10.0.0.2"), Port: 41000,
	}, func(p *packet.Packet) {
		if p.TCP.HasFlag(packet.FlagACK) && len(p.Payload) == 0 {
			ackTimes = append(ackTimes, eng.Now())
		}
	})
	srv.Listen()
	mk := func(seq uint32, flags uint8, payload []byte) *packet.Packet {
		return &packet.Packet{
			IP:      packet.IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")},
			TCP:     packet.TCP{SrcPort: 179, DstPort: 41000, Seq: seq, Ack: srv.iss + 1, Flags: flags, Window: 65535},
			Payload: payload,
		}
	}
	srv.Deliver(mk(1000, packet.FlagSYN, nil))
	srv.Deliver(mk(1001, packet.FlagACK, nil))
	ackTimes = nil
	eng.At(1000, func() { srv.Deliver(mk(1001, packet.FlagACK, []byte("x"))) })
	eng.RunAll(0)
	if len(ackTimes) != 1 {
		t.Fatalf("acks = %v", ackTimes)
	}
	if ackTimes[0] < 200_000 {
		t.Errorf("ack at %d µs, want delayed ≈201000", ackTimes[0])
	}
}

func TestAckEverySecondSegment(t *testing.T) {
	p := newPair(t, 9, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	p.client.Write(make([]byte, 14600)) // 10 MSS
	p.eng.RunAll(1_000_000)
	st := p.server.Stats()
	// 10 data segments → roughly 5 delayed acks (plus handshake traffic).
	if st.SegmentsSent > 9 {
		t.Errorf("server sent %d segments for 10 data segments; delayed ACK broken", st.SegmentsSent)
	}
	if got.Len() != 14600 {
		t.Errorf("received %d", got.Len())
	}
}

func TestZeroWindowProbeBugForcesTimeout(t *testing.T) {
	ccfg := Config{ZeroWindowProbeBug: true}
	p := newPair(t, 10, ccfg, Config{RecvBuf: 8192}, defaultPath())
	p.connect(t)

	data := make([]byte, 60_000)
	sent := p.client.Write(data)
	p.client.OnSendSpace = func() {
		if sent < len(data) {
			sent += p.client.Write(data[sent:])
		}
	}
	// Slow reader: 2 KB every 600 ms — slower than the persist backoff so
	// probes race window reopenings.
	var got bytes.Buffer
	var slurp func()
	slurp = func() {
		got.Write(p.server.Read(2048))
		if got.Len() < len(data) {
			p.eng.After(600_000, slurp)
		}
	}
	p.eng.After(600_000, slurp)
	p.eng.RunAll(2_000_000)

	st := p.client.Stats()
	if st.BugDrops == 0 {
		t.Errorf("bug never triggered: stats=%+v", st)
	}
	if st.Timeouts == 0 {
		t.Errorf("bug drops must be repaired by RTO: stats=%+v", st)
	}
	if got.Len() != len(data) {
		t.Errorf("received %d bytes, want %d", got.Len(), len(data))
	}
}

func TestKillSilencesEndpoint(t *testing.T) {
	p := newPair(t, 11, Config{}, Config{}, defaultPath())
	p.connect(t)
	p.server.Kill()
	p.client.Write(make([]byte, 5000))
	p.eng.Run(30_000_000)
	if p.client.Stats().Timeouts < 3 {
		t.Errorf("client should back off repeatedly against a dead peer; timeouts=%d",
			p.client.Stats().Timeouts)
	}
	if p.client.Unacked() == 0 {
		t.Error("data acked by a dead peer")
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, 12, Config{}, Config{}, defaultPath())
	p.connect(t)
	reset := false
	p.server.OnReset = func() { reset = true }
	p.client.Abort()
	p.eng.RunAll(0)
	if !reset {
		t.Error("server did not observe RST")
	}
	if p.client.State() != StateClosed || p.server.State() != StateClosed {
		t.Errorf("states = %v/%v", p.client.State(), p.server.State())
	}
}

func TestRTOExponentialBackoff(t *testing.T) {
	// Against a black-holed path, retransmissions must spread out
	// exponentially.
	pcfg := defaultPath()
	pcfg.UpstreamHook = func(ts sim.Micros, pk *packet.Packet) bool {
		return len(pk.Payload) > 0 // drop all data after handshake
	}
	p := newPair(t, 13, Config{}, Config{}, pcfg)
	p.connect(t)

	var dataTimes []sim.Micros
	// Tap retransmissions at the sniffer-equivalent: wrap client's out.
	orig := p.client.out
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) > 0 {
			dataTimes = append(dataTimes, p.eng.Now())
		}
		orig(pk)
	}
	p.client.Write(make([]byte, 1000))
	p.eng.Run(20_000_000)

	if len(dataTimes) < 4 {
		t.Fatalf("only %d transmissions", len(dataTimes))
	}
	g1 := dataTimes[2] - dataTimes[1]
	g2 := dataTimes[3] - dataTimes[2]
	if g2 < g1*3/2 {
		t.Errorf("backoff gaps %d then %d, want roughly doubling", g1, g2)
	}
}

func TestWriteBoundedBySendBuf(t *testing.T) {
	p := newPair(t, 14, Config{SendBuf: 1000}, Config{}, defaultPath())
	p.connect(t)
	n := p.client.Write(make([]byte, 5000))
	if n != 1000 {
		t.Errorf("Write accepted %d, want 1000", n)
	}
	if p.client.SendBufAvailable() != 0 {
		t.Errorf("SendBufAvailable = %d", p.client.SendBufAvailable())
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateClosed: "closed", StateListen: "listen", StateSynSent: "syn-sent",
		StateSynReceived: "syn-received", StateEstablished: "established",
		StateFinWait: "fin-wait", StateCloseWait: "close-wait", StateDead: "dead",
		State(99): "unknown",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestDeterministicTransfer(t *testing.T) {
	run := func() (int, int) {
		pcfg := defaultPath()
		pcfg.UpstreamLoss = 0.02
		p := newPair(t, 77, Config{}, Config{}, pcfg)
		var got bytes.Buffer
		p.sinkServer(&got)
		p.connect(t)
		p.client.Write(make([]byte, 50_000))
		p.eng.RunAll(3_000_000)
		return got.Len(), p.client.Stats().Retransmits
	}
	l1, r1 := run()
	l2, r2 := run()
	if l1 != l2 || r1 != r2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", l1, r1, l2, r2)
	}
	if l1 != 50_000 {
		t.Errorf("lossy transfer incomplete: %d", l1)
	}
}

func TestMSSNegotiation(t *testing.T) {
	// Server advertises a smaller MSS; the client must adopt it.
	p := newPair(t, 30, Config{MSS: 1460}, Config{MSS: 536}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	if p.client.Config().MSS != 536 {
		t.Errorf("client MSS = %d, want negotiated 536", p.client.Config().MSS)
	}
	// No emitted data segment may exceed the negotiated MSS.
	orig := p.client.out
	maxSeg := 0
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) > maxSeg {
			maxSeg = len(pk.Payload)
		}
		orig(pk)
	}
	p.client.Write(make([]byte, 5000))
	p.eng.RunAll(0)
	if maxSeg > 536 {
		t.Errorf("segment of %d bytes exceeds negotiated MSS", maxSeg)
	}
	if got.Len() != 5000 {
		t.Errorf("received %d", got.Len())
	}
}

func TestZeroWindowProbeStandardPath(t *testing.T) {
	// WITHOUT the bug: probes keep the connection alive through a long
	// zero-window stall and the transfer completes without timeouts once
	// the reader drains.
	p := newPair(t, 31, Config{}, Config{RecvBuf: 4096}, defaultPath())
	p.connect(t)
	data := make([]byte, 20_000)
	sent := p.client.Write(data)
	p.client.OnSendSpace = func() {
		if sent < len(data) {
			sent += p.client.Write(data[sent:])
		}
	}
	// Stall 10 s, then drain everything.
	p.eng.Run(p.eng.Now() + 10_000_000)
	if p.client.Stats().ProbesSent == 0 {
		t.Fatal("no persist probes during the stall")
	}
	var got bytes.Buffer
	got.Write(p.server.Read(p.server.ReadableLen()))
	p.server.OnReadable = func() { got.Write(p.server.Read(p.server.ReadableLen())) }
	p.eng.RunAll(0)
	if got.Len() != len(data) {
		t.Errorf("received %d of %d", got.Len(), len(data))
	}
	if p.client.Stats().BugDrops != 0 {
		t.Errorf("bug drops without the bug enabled: %d", p.client.Stats().BugDrops)
	}
}

func TestPersistProbeBackoff(t *testing.T) {
	// Probe intervals must grow while the window stays closed.
	p := newPair(t, 32, Config{}, Config{RecvBuf: 2048}, defaultPath())
	p.connect(t)
	var probeTimes []sim.Micros
	orig := p.client.out
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) == 1 {
			probeTimes = append(probeTimes, p.eng.Now())
		}
		orig(pk)
	}
	p.client.Write(make([]byte, 10_000))
	p.eng.Run(p.eng.Now() + 40_000_000)
	if len(probeTimes) < 3 {
		t.Fatalf("probes = %d", len(probeTimes))
	}
	g1 := probeTimes[1] - probeTimes[0]
	g2 := probeTimes[2] - probeTimes[1]
	if g2 < g1*3/2 {
		t.Errorf("probe backoff gaps %d then %d, want growth", g1, g2)
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	// Many small writes while data is outstanding must coalesce into
	// MSS-sized segments rather than a tinygram flood.
	p := newPair(t, 33, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	var segs []int
	orig := p.client.out
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) > 0 {
			segs = append(segs, len(pk.Payload))
		}
		orig(pk)
	}
	total := 0
	for i := 0; i < 100; i++ {
		total += p.client.Write(make([]byte, 130)) // BGP-update-sized writes
	}
	p.eng.RunAll(0)
	if got.Len() != total {
		t.Fatalf("received %d of %d", got.Len(), total)
	}
	small := 0
	for _, s := range segs {
		if s < 1460 {
			small++
		}
	}
	// One leading tinygram (nothing outstanding) plus at most a couple of
	// tails is fine; a hundred of them is the Nagle-off pathology.
	if small > 5 {
		t.Errorf("%d sub-MSS segments of %d total; Nagle not coalescing", small, len(segs))
	}
}

func TestNoDelayDisablesNagle(t *testing.T) {
	p := newPair(t, 34, Config{NoDelay: true}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	var segs int
	orig := p.client.out
	p.client.out = func(pk *packet.Packet) {
		if len(pk.Payload) > 0 {
			segs++
		}
		orig(pk)
	}
	for i := 0; i < 20; i++ {
		p.client.Write(make([]byte, 100))
	}
	p.eng.RunAll(0)
	if segs < 15 {
		t.Errorf("NoDelay sent only %d segments for 20 writes", segs)
	}
}

func TestPartialAckDuringRecovery(t *testing.T) {
	// Drop two separate segments in one window: after the fast retransmit,
	// the partial ACK exits classic-Reno recovery and the stream still
	// completes via a timeout for the second hole.
	dropped := map[int]bool{}
	nth := 0
	pcfg := defaultPath()
	pcfg.UpstreamHook = func(ts sim.Micros, pk *packet.Packet) bool {
		if len(pk.Payload) == 0 {
			return false
		}
		nth++
		if nth == 9 || nth == 11 {
			dropped[nth] = true
			return true
		}
		return false
	}
	p := newPair(t, 35, Config{}, Config{}, pcfg)
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	data := make([]byte, 60_000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	p.client.Write(data)
	p.eng.RunAll(0)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d segments", len(dropped))
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Errorf("stream corrupted after double loss: %d bytes", got.Len())
	}
}

func TestCongestionAvoidanceSlowerThanSlowStart(t *testing.T) {
	// With ssthresh below cwnd growth range, congestion avoidance must grow
	// cwnd far slower than slow start does.
	growth := func(ssthresh int) int {
		p := newPair(t, 36, Config{InitialSsthresh: ssthresh}, Config{}, defaultPath())
		var got bytes.Buffer
		p.sinkServer(&got)
		p.connect(t)
		before := p.client.Cwnd()
		data := make([]byte, 120_000)
		sent := p.client.Write(data)
		p.client.OnSendSpace = func() {
			if sent < len(data) {
				sent += p.client.Write(data[sent:])
			}
		}
		p.eng.Run(p.eng.Now() + 300_000) // ~30 RTTs
		return p.client.Cwnd() - before
	}
	ss := growth(1 << 20) // always slow start
	ca := growth(1)       // always congestion avoidance
	if ca*3 > ss {
		t.Errorf("CA growth %d not clearly slower than SS growth %d", ca, ss)
	}
}

func TestCloseHandshake(t *testing.T) {
	// Active close after a transfer: FIN → ACK+FIN → ACK; both sides end
	// closed and all data is delivered first.
	p := newPair(t, 40, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	data := make([]byte, 20_000)
	p.client.Write(data)
	p.client.Close()
	// Server closes as soon as it sees the client's FIN (CloseWait).
	p.server.OnReset = nil
	p.eng.Run(p.eng.Now() + 2_000_000)
	if got.Len() != len(data) {
		t.Fatalf("received %d of %d before close", got.Len(), len(data))
	}
	if p.client.State() != StateFinWait && p.client.State() != StateClosed {
		t.Errorf("client state = %v", p.client.State())
	}
	if p.server.State() != StateCloseWait {
		t.Fatalf("server state = %v, want close-wait", p.server.State())
	}
	p.server.Close()
	p.eng.RunAll(0)
	if p.server.State() != StateClosed {
		t.Errorf("server state = %v, want closed", p.server.State())
	}
	if p.client.State() != StateClosed {
		t.Errorf("client state = %v, want closed", p.client.State())
	}
}

func TestCloseWaitsForBufferedData(t *testing.T) {
	// Close before the buffer drains: every byte must still arrive before
	// the FIN.
	p := newPair(t, 41, Config{}, Config{}, defaultPath())
	var got bytes.Buffer
	p.sinkServer(&got)
	p.connect(t)
	data := make([]byte, 50_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	p.client.Write(data)
	p.client.Close()
	if n := p.client.Write([]byte("late")); n != 0 {
		t.Errorf("Write after Close accepted %d bytes", n)
	}
	p.eng.RunAll(0)
	if !bytes.Equal(got.Bytes(), data) {
		t.Errorf("received %d bytes, want %d", got.Len(), len(data))
	}
	if p.client.State() != StateFinWait && p.client.State() != StateClosed {
		t.Errorf("client state = %v after drain+close", p.client.State())
	}
}

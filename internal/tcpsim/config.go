// Package tcpsim implements a discrete-event TCP endpoint with pluggable
// congestion control (see CongestionControl in cc.go). The default stack is
// Reno — slow start, congestion avoidance, fast retransmit/recovery,
// RFC 6298 retransmission timeouts with exponential backoff — and CUBIC,
// rate-paced (BBR-like), and SACK-recovery stacks plus buggy receiver
// variants (stretch ACKs, broken window scaling) are selectable through
// Config.Stack / ApplyStack. All stacks share the receiver flow-control
// machinery: delayed ACKs, zero-window probing, and the zero-window
// probe-discard bug the paper found in operational routers (§IV-B
// "ZeroAckBug").
//
// The default model is the one T-DAT assumes: window-based congestion
// control in the Tahoe/Reno/NewReno family; the other stacks exist to
// measure which of the analyzer's inferences are Reno-specific. Endpoints
// exchange packet.Packet values through netem links under a sim.Engine, and
// applications drive them through Write/Read plus callbacks, which is how
// bgpsim layers BGP speakers on top.
package tcpsim

import (
	"net/netip"

	"tdat/internal/sim"
)

// Micros aliases the simulator time unit.
type Micros = sim.Micros

// Config holds per-endpoint TCP parameters. NewEndpoint applies defaults for
// zero fields.
type Config struct {
	// Addr and Port identify the local end.
	Addr netip.Addr
	Port uint16

	// MSS is the maximum segment size in bytes (default 1460).
	MSS int
	// RecvBuf is the receive buffer size, i.e. the maximum advertised
	// window (default 65535). The paper contrasts ISP_A's 65 KB with
	// RouteViews' 16 KB.
	RecvBuf int
	// SendBuf is the send socket buffer capacity (default 65536). A full
	// send buffer back-pressures the application, which is what couples
	// peer-group members together in bgpsim.
	SendBuf int
	// InitialCwnd is the initial congestion window in segments (default 2).
	InitialCwnd int
	// InitialSsthresh is the initial slow-start threshold in bytes
	// (default 65535).
	InitialSsthresh int

	// MinRTO and MaxRTO clamp the retransmission timeout (defaults 1 s per
	// RFC 6298 — anything below the 200 ms delayed-ACK timer provokes
	// spurious retransmissions — and 60 s).
	MinRTO Micros
	MaxRTO Micros
	// RTOBackoff is the timeout multiplier applied per consecutive
	// retransmission (default 2.0). RouteViews-style aggressive backoff is
	// modeled with larger values.
	RTOBackoff float64

	// DelayedAckTimeout is the delayed-ACK timer (default 200 ms;
	// 0 keeps the default, use DisableDelayedAck to ack every segment).
	DelayedAckTimeout Micros
	// DisableDelayedAck forces an ACK for every received segment.
	DisableDelayedAck bool

	// NoDelay disables Nagle coalescing of sub-MSS segments.
	NoDelay bool

	// ZeroWindowProbeBug enables the router bug from paper §IV-B: when an
	// ACK reopens the window before a pending zero-window probe is
	// transmitted, the endpoint discards the outgoing segment, forcing an
	// RTO-driven retransmission (observed as upstream loss during
	// zero-window periods).
	ZeroWindowProbeBug bool

	// Stack selects the congestion-control strategy (see stack.go). The
	// zero value is Reno; ApplyStack is the usual way to set it together
	// with the matching receiver quirks.
	Stack Stack
	// MaxCwnd caps the congestion window in bytes (0 = unbounded).
	MaxCwnd int
	// SACK offers selective acknowledgments on the SYN and, when the peer
	// offers too, generates SACK blocks (receiver) and repairs from a
	// scoreboard (sender, with Stack == StackSACK).
	SACK bool
	// StretchAcks, when ≥ 2, makes the receiver acknowledge only every Nth
	// full segment instead of every second one — the buggy stretch-ACK
	// behavior that starves a window-based sender's ACK clock. 0 keeps the
	// standard delayed-ACK rule.
	StretchAcks int
	// WindowScaleBug right-shifts the advertised receive window by this
	// many bits, modeling a broken window-scaling implementation that
	// advertises the post-scale value to a peer that never scales it back
	// up. 0 disables the bug.
	WindowScaleBug uint8
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = 65535
	}
	if c.SendBuf == 0 {
		c.SendBuf = 65536
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.InitialSsthresh == 0 {
		c.InitialSsthresh = 65535
	}
	if c.MinRTO == 0 {
		c.MinRTO = 1_000_000
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * 1000 * 1000
	}
	if c.RTOBackoff == 0 {
		c.RTOBackoff = 2.0
	}
	if c.DelayedAckTimeout == 0 {
		c.DelayedAckTimeout = 200 * 1000
	}
	return c
}

// State is the connection state (simplified TCP state machine).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait
	StateCloseWait
	StateDead // endpoint crashed: drops all input, emits nothing
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateListen:
		return "listen"
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateCloseWait:
		return "close-wait"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Stats counts endpoint-level events for assertions and scenario debugging.
type Stats struct {
	SegmentsSent     int
	SegmentsReceived int
	BytesSent        int64
	BytesReceived    int64
	Retransmits      int
	FastRetransmits  int
	Timeouts         int
	DupAcksSent      int
	ZeroWindowAcks   int
	ProbesSent       int
	BugDrops         int
}

package tcpsim

import (
	"net/netip"

	"tdat/internal/packet"
	"tdat/internal/sim"
)

// Handler is the transmit function an endpoint uses to inject packets into
// the network (typically a netem link or path input).
type Handler func(p *packet.Packet)

// Endpoint is one end of a simulated TCP connection. All sequence
// bookkeeping is done in absolute stream offsets (int64) and converted to
// 32-bit wire sequence numbers at the edges, so multi-megabyte transfers
// never hit wrap-around corner cases internally.
type Endpoint struct {
	eng *sim.Engine
	cfg Config
	out Handler

	state      State
	remoteAddr netip.Addr
	remotePort uint16

	// Send side.
	iss     uint32 // initial send sequence (SYN consumes iss)
	sndUna  int64  // lowest unacknowledged payload offset
	sndNxt  int64  // next payload offset to transmit
	sndBuf  []byte // payload from offset sndUna onward (unacked + unsent)
	cc      CongestionControl
	dupAcks int
	// Post-timeout repair: rtoRecover marks how far data was outstanding
	// when the timeout fired (0 = no repair in progress), rexmitNxt is the
	// next byte the repair walk will retransmit, and repairMode is how the
	// strategy asked for the walk to run (go-back-N or SACK-aware).
	rtoRecover int64
	rexmitNxt  int64
	repairMode RepairMode
	peerWnd    int

	// SACK state (active only when both sides offered OptSACKPermitted).
	sackOK        bool
	peerSACK      bool       // peer offered SACK on its SYN
	sb            scoreboard // sender: peer-SACKed ranges in stream offsets
	sackRexmitNxt int64      // sender: next hole candidate in fast recovery
	lastOOO       int64      // receiver: most recent out-of-order arrival

	// RTT estimation (RFC 6298), all in microseconds.
	srtt, rttvar float64
	rtoBase      Micros
	rtoShift     int // consecutive backoffs
	timing       bool
	timedEnd     int64
	timedAt      Micros
	synSentAt    Micros
	synRetx      bool // Karn: a retransmitted SYN invalidates the handshake RTT sample

	rtoTimer       *sim.Timer
	persistTimer   *sim.Timer
	paceTimer      *sim.Timer // rate-paced stacks: next admitted transmission
	persistBackoff Micros
	bugDropArmed   bool

	// Receive side.
	irs        uint32
	rcvNxt     int64
	ooo        map[int64][]byte
	oooBytes   int
	readable   []byte
	lastAdvWnd int
	delack     *sim.Timer
	pendingAck int
	finRcvd    bool
	finOffset  int64

	ipID uint16

	// Ground-truth probe state (see probe.go).
	probe             *Probe
	probeZeroState    bool
	probeBlockedState bool

	// Close handshake state.
	appClosed bool
	finSentAt int64 // stream offset our FIN occupies (-1 until sent)

	// OnEstablished fires when the three-way handshake completes.
	OnEstablished func()
	// OnReadable fires when new in-order data becomes available to Read.
	OnReadable func()
	// OnSendSpace fires when acknowledged data frees send-buffer space.
	OnSendSpace func()
	// OnReset fires when the connection is torn down by a received RST.
	OnReset func()

	stats Stats
}

// NewEndpoint creates an endpoint bound to cfg that transmits through out.
func NewEndpoint(eng *sim.Engine, cfg Config, out Handler) *Endpoint {
	cfg = cfg.withDefaults()
	e := &Endpoint{
		eng:     eng,
		cfg:     cfg,
		out:     out,
		state:   StateClosed,
		cc:      newCongestionControl(cfg),
		peerWnd: cfg.MSS, // until the peer's first window advertisement
		ooo:     map[int64][]byte{},
	}
	e.lastAdvWnd = cfg.RecvBuf
	e.finSentAt = -1
	return e
}

// State returns the connection state.
func (e *Endpoint) State() State { return e.state }

// RemoteAddr returns the peer's address (valid once connected or a SYN has
// been accepted).
func (e *Endpoint) RemoteAddr() netip.Addr { return e.remoteAddr }

// RemotePort returns the peer's port.
func (e *Endpoint) RemotePort() uint16 { return e.remotePort }

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Config returns the endpoint's effective configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// SRTT returns the smoothed RTT estimate in microseconds (0 before the
// first sample).
func (e *Endpoint) SRTT() Micros { return Micros(e.srtt) }

// Cwnd returns the congestion window in bytes.
func (e *Endpoint) Cwnd() int { return int(e.cc.Cwnd()) }

// StackName returns the name of the congestion-control strategy in use.
func (e *Endpoint) StackName() string { return e.cc.Name() }

// SACKEnabled reports whether selective acknowledgments were negotiated.
func (e *Endpoint) SACKEnabled() bool { return e.sackOK }

// PeerWindow returns the peer's last advertised receive window.
func (e *Endpoint) PeerWindow() int { return e.peerWnd }

// Listen puts a closed endpoint into passive-open mode.
func (e *Endpoint) Listen() { e.state = StateListen }

// Connect actively opens a connection to the remote address.
func (e *Endpoint) Connect(addr netip.Addr, port uint16) {
	e.remoteAddr = addr
	e.remotePort = port
	e.iss = uint32(e.eng.Rand().Intn(1 << 30))
	e.state = StateSynSent
	e.synSentAt = e.eng.Now()
	e.rtoBase = e.cfg.MinRTO * 5 // conservative pre-estimate for SYN
	if e.rtoBase < 1_000_000 {
		e.rtoBase = 1_000_000
	}
	e.sendSyn(false)
	e.armRTO()
}

// Kill crashes the endpoint: it stops emitting and ignores all input, like
// the failed collector in the paper's Figure 9 that never acknowledges
// again.
func (e *Endpoint) Kill() {
	e.state = StateDead
	e.stopTimers()
}

// Abort sends a RST and closes.
func (e *Endpoint) Abort() {
	if e.state == StateEstablished || e.state == StateSynReceived || e.state == StateCloseWait {
		e.emit(packet.FlagRST|packet.FlagACK, e.wireSeq(e.sndNxt), e.wireAck(), nil, false)
	}
	e.state = StateClosed
	e.stopTimers()
}

func (e *Endpoint) stopTimers() {
	e.rtoTimer.Stop()
	e.persistTimer.Stop()
	e.paceTimer.Stop()
	e.delack.Stop()
}

// Close marks the application side done: once every buffered byte is sent
// and acknowledged, a FIN goes out and the connection winds down through
// FIN-WAIT (active close) or completes a passive close from CLOSE-WAIT.
func (e *Endpoint) Close() {
	if e.appClosed || e.state == StateDead || e.state == StateClosed {
		return
	}
	e.appClosed = true
	e.maybeSendFIN()
}

// maybeSendFIN emits the FIN when the send buffer has drained.
func (e *Endpoint) maybeSendFIN() {
	if !e.appClosed || e.finSentAt >= 0 {
		return
	}
	if e.state != StateEstablished && e.state != StateCloseWait {
		return
	}
	if len(e.sndBuf) != 0 || e.sndNxt != e.sndUna {
		return
	}
	e.finSentAt = e.sndNxt
	e.emit(packet.FlagFIN|packet.FlagACK, e.wireSeq(e.sndNxt), e.wireAck(), nil, false)
	if e.state == StateEstablished {
		e.state = StateFinWait
	} else {
		e.state = StateClosed // passive close completes
		e.stopTimers()
	}
}

// Write appends application data to the send buffer, returning how many
// bytes were accepted (bounded by the free send-buffer space), and starts
// transmission.
func (e *Endpoint) Write(data []byte) int {
	if e.state == StateDead || e.state == StateClosed || e.appClosed {
		return 0
	}
	free := e.cfg.SendBuf - len(e.sndBuf)
	if free <= 0 {
		return 0
	}
	n := min(free, len(data))
	e.sndBuf = append(e.sndBuf, data[:n]...)
	e.trySend()
	return n
}

// SendBufAvailable returns the free space in the send socket buffer.
func (e *Endpoint) SendBufAvailable() int { return e.cfg.SendBuf - len(e.sndBuf) }

// SendBufLen returns the bytes buffered (unacked plus unsent).
func (e *Endpoint) SendBufLen() int { return len(e.sndBuf) }

// Unacked returns the bytes sent but not yet acknowledged.
func (e *Endpoint) Unacked() int { return int(e.sndNxt - e.sndUna) }

// Unsent returns the buffered bytes not yet transmitted.
func (e *Endpoint) Unsent() int { return len(e.sndBuf) - int(e.sndNxt-e.sndUna) }

// ReadableLen returns the in-order bytes available to the application.
func (e *Endpoint) ReadableLen() int { return len(e.readable) }

// Read consumes up to n bytes of in-order received data, sending a window
// update if the read reopens a meaningful share of the receive buffer.
func (e *Endpoint) Read(n int) []byte {
	if n > len(e.readable) {
		n = len(e.readable)
	}
	if n <= 0 {
		return nil
	}
	out := e.readable[:n:n]
	e.readable = e.readable[n:]
	newAdv := e.advWindow()
	// Silly-window avoidance: advertise growth only in chunks of at least
	// 2·MSS or half the buffer, and always announce a reopening from zero.
	thresh := min(2*e.cfg.MSS, e.cfg.RecvBuf/2)
	if (e.lastAdvWnd == 0 && newAdv > 0) || newAdv-e.lastAdvWnd >= thresh {
		e.sendAck()
	}
	return out
}

// AdvertisedWindow returns the receive window the endpoint would advertise
// now.
func (e *Endpoint) AdvertisedWindow() int { return e.advWindow() }

func (e *Endpoint) advWindow() int {
	// RCV.WND covers [RCV.NXT, RCV.NXT+WND): out-of-order segments occupy
	// already-advertised space inside the window and do not shrink it.
	w := e.cfg.RecvBuf - len(e.readable)
	if w < 0 {
		w = 0
	}
	if w > 65535 {
		w = 65535 // no window scaling, as in the paper's traces
	}
	// Broken window scaling: the buggy receiver advertises the post-scale
	// value (buffer >> shift) to a peer that never scales it back up, so
	// the sender sees only a fraction of the real buffer.
	w >>= int(e.cfg.WindowScaleBug)
	return w
}

// wireSeq converts a payload offset to a 32-bit wire sequence number.
func (e *Endpoint) wireSeq(off int64) uint32 { return e.iss + 1 + uint32(off) }

// wireAck returns the acknowledgment number covering everything received.
func (e *Endpoint) wireAck() uint32 {
	ack := e.irs + 1 + uint32(e.rcvNxt)
	if e.finRcvd && e.rcvNxt == e.finOffset {
		ack++ // acknowledge the FIN
	}
	return ack
}

// seqToOff converts a wire sequence number to a payload offset relative to
// the peer's ISS.
func (e *Endpoint) seqToOff(seq uint32) int64 { return int64(int32(seq - (e.irs + 1))) }

// ackToOff converts a wire ack number to an offset in our send stream.
func (e *Endpoint) ackToOff(ack uint32) int64 { return int64(int32(ack - (e.iss + 1))) }

func (e *Endpoint) sendSyn(withAck bool) {
	flags := uint8(packet.FlagSYN)
	ack := uint32(0)
	if withAck {
		flags |= packet.FlagACK
		ack = e.irs + 1
	}
	p := e.newPacket(flags, e.iss, ack, nil)
	p.TCP.SetMSS(uint16(e.cfg.MSS))
	if e.cfg.SACK {
		p.TCP.Options = append(p.TCP.Options, packet.TCPOption{Kind: packet.OptSACKPermitted})
	}
	e.transmit(p)
}

func (e *Endpoint) newPacket(flags uint8, seq, ack uint32, payload []byte) *packet.Packet {
	e.ipID++
	adv := e.advWindow()
	e.lastAdvWnd = adv
	if adv == 0 {
		e.stats.ZeroWindowAcks++
	}
	e.probeZeroWindow(adv)
	p := &packet.Packet{
		IP: packet.IPv4{
			ID:  e.ipID,
			TTL: 64,
			Src: e.cfg.Addr,
			Dst: e.remoteAddr,
		},
		TCP: packet.TCP{
			SrcPort: e.cfg.Port,
			DstPort: e.remotePort,
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  uint16(adv),
		},
		Payload: payload,
	}
	// A SACK-negotiated receiver reports its out-of-order holdings on every
	// non-SYN segment while any exist (RFC 2018 §4).
	if e.sackOK && len(e.ooo) > 0 && flags&(packet.FlagSYN|packet.FlagRST) == 0 {
		p.TCP.SetSACKBlocks(e.sackBlocks())
	}
	return p
}

func (e *Endpoint) emit(flags uint8, seq, ack uint32, payload []byte, isRetx bool) {
	p := e.newPacket(flags, seq, ack, payload)
	if isRetx {
		e.stats.Retransmits++
	}
	e.transmit(p)
}

func (e *Endpoint) transmit(p *packet.Packet) {
	if e.state == StateDead {
		return
	}
	e.stats.SegmentsSent++
	e.stats.BytesSent += int64(len(p.Payload))
	e.out(p)
}

// sendAck emits a pure ACK reflecting the current receive state.
func (e *Endpoint) sendAck() {
	e.pendingAck = 0
	e.delack.Stop()
	e.emit(packet.FlagACK, e.wireSeq(e.sndNxt), e.wireAck(), nil, false)
}

// Deliver injects a packet arriving from the network. It is the Handler to
// wire into the receive side of a netem path.
func (e *Endpoint) Deliver(p *packet.Packet) {
	if e.state == StateDead || e.state == StateClosed {
		return
	}
	e.stats.SegmentsReceived++
	tcp := &p.TCP

	if tcp.HasFlag(packet.FlagRST) {
		e.state = StateClosed
		e.stopTimers()
		if e.OnReset != nil {
			e.OnReset()
		}
		return
	}

	switch e.state {
	case StateListen:
		if tcp.HasFlag(packet.FlagSYN) && !tcp.HasFlag(packet.FlagACK) {
			e.remoteAddr = p.IP.Src
			e.remotePort = tcp.SrcPort
			e.irs = tcp.Seq
			e.iss = uint32(e.eng.Rand().Intn(1 << 30))
			if mss, ok := tcp.MSS(); ok && int(mss) < e.cfg.MSS {
				e.cfg.MSS = int(mss)
			}
			e.peerSACK = tcp.HasOption(packet.OptSACKPermitted)
			e.sackOK = e.cfg.SACK && e.peerSACK
			e.peerWnd = int(tcp.Window)
			e.state = StateSynReceived
			e.synSentAt = e.eng.Now()
			e.sendSyn(true)
		}
		return
	case StateSynSent:
		if tcp.HasFlag(packet.FlagSYN | packet.FlagACK) {
			e.irs = tcp.Seq
			if mss, ok := tcp.MSS(); ok && int(mss) < e.cfg.MSS {
				e.cfg.MSS = int(mss)
			}
			e.peerSACK = tcp.HasOption(packet.OptSACKPermitted)
			e.sackOK = e.cfg.SACK && e.peerSACK
			e.peerWnd = int(tcp.Window)
			if !e.synRetx {
				e.rttSampleRaw(e.eng.Now() - e.synSentAt)
			}
			e.rtoTimer.Stop()
			e.rtoShift = 0
			e.state = StateEstablished
			e.sendAck()
			if e.OnEstablished != nil {
				e.OnEstablished()
			}
		}
		return
	case StateSynReceived:
		if tcp.HasFlag(packet.FlagACK) && e.ackToOff(tcp.Ack) >= 0 {
			if !e.synRetx {
				e.rttSampleRaw(e.eng.Now() - e.synSentAt)
			}
			e.rtoTimer.Stop()
			e.rtoShift = 0
			e.peerWnd = int(tcp.Window)
			e.state = StateEstablished
			if e.OnEstablished != nil {
				e.OnEstablished()
			}
			// Fall through: the handshake ACK may carry data.
		} else {
			return
		}
	}

	if tcp.HasFlag(packet.FlagACK) {
		e.processAck(tcp)
	}
	if len(p.Payload) > 0 || tcp.HasFlag(packet.FlagFIN) {
		e.processData(p)
	}
}

package tcpsim

import "math"

// cubicCC grows the congestion window along the RFC 8312 cubic curve
// W(t) = C·(t−K)³ + W_max: concave recovery toward the window where loss
// last occurred, a plateau around it, then convex probing beyond. A
// Reno-rate estimate (the TCP-friendly region) floors growth so the stack
// converges to Reno behavior when the RTT is tiny. Loss response is the
// gentler β = 0.7 multiplicative decrease instead of Reno's halving.
type cubicCC struct {
	cwnd, ssthresh float64
	maxCwnd        float64
	inRecovery     bool

	wMax       float64 // window before the last reduction
	epochStart Micros  // 0 = no growth epoch in progress
	k          float64 // seconds from epoch start to reach wMax
	wEst       float64 // Reno-friendly window estimate
}

// RFC 8312 constants: C scales the cubic term (segments/s³), beta is the
// multiplicative decrease, and alpha makes the TCP-friendly region match
// long-run Reno throughput under the same loss rate.
const (
	cubicC     = 0.4
	cubicBeta  = 0.7
	cubicAlpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
)

// Name implements CongestionControl.
func (c *cubicCC) Name() string { return "cubic" }

// Init implements CongestionControl.
func (c *cubicCC) Init(cfg Config) {
	c.cwnd = float64(cfg.InitialCwnd * cfg.MSS)
	c.ssthresh = float64(cfg.InitialSsthresh)
	c.maxCwnd = float64(cfg.MaxCwnd)
}

// Cwnd implements CongestionControl.
func (c *cubicCC) Cwnd() float64 { return c.cwnd }

// InRecovery implements CongestionControl.
func (c *cubicCC) InRecovery() bool { return c.inRecovery }

func (c *cubicCC) clamp() {
	if c.maxCwnd > 0 && c.cwnd > c.maxCwnd {
		c.cwnd = c.maxCwnd
	}
}

// OnAck implements CongestionControl.
func (c *cubicCC) OnAck(ev AckInfo) {
	if c.inRecovery {
		c.inRecovery = false
		c.cwnd = c.ssthresh
		return
	}
	mss := float64(ev.MSS)
	credit := float64(ev.Acked)
	if credit > mss {
		credit = mss
	}
	if c.cwnd < c.ssthresh {
		c.cwnd += credit // slow start, same as Reno
		c.clamp()
		return
	}
	if c.epochStart == 0 {
		c.epochStart = ev.Now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd // first epoch: plateau at the current window
		}
		c.k = math.Cbrt((c.wMax - c.cwnd) / mss / cubicC)
		c.wEst = c.cwnd
	}
	t := float64(ev.Now-c.epochStart) / 1e6
	d := t - c.k
	target := c.wMax + cubicC*d*d*d*mss
	if target > c.cwnd {
		// Spread the climb to target over roughly a window of ACKs.
		c.cwnd += (target - c.cwnd) * credit / c.cwnd
	} else {
		c.cwnd += credit * mss / (100 * c.cwnd) // plateau: near-flat probing
	}
	// TCP-friendly region (RFC 8312 §4.2): never grow slower than a Reno
	// flow scaled by alpha under the same ACK stream.
	c.wEst += cubicAlpha * credit * mss / c.wEst
	if c.wEst > c.cwnd {
		c.cwnd = c.wEst
	}
	c.clamp()
}

// OnDupAck implements CongestionControl.
func (c *cubicCC) OnDupAck(ev AckInfo) Reaction {
	mss := float64(ev.MSS)
	switch {
	case ev.DupAcks == 3:
		c.wMax = c.cwnd
		c.ssthresh = maxf(c.cwnd*cubicBeta, 2*mss)
		c.cwnd = c.ssthresh
		c.inRecovery = true
		c.epochStart = 0
		c.clamp()
		return ReactFastRetransmit
	case ev.DupAcks > 3 && c.inRecovery:
		c.cwnd += mss
		c.clamp()
	}
	return ReactNone
}

// OnRTO implements CongestionControl.
func (c *cubicCC) OnRTO(ev AckInfo) RepairMode {
	mss := float64(ev.MSS)
	c.wMax = c.cwnd
	c.ssthresh = maxf(c.cwnd*cubicBeta, 2*mss)
	c.cwnd = mss
	c.inRecovery = false
	c.epochStart = 0
	return RepairGoBackN
}

// OnRecoveryExit implements CongestionControl: growth restarts from a fresh
// epoch measured at the post-recovery window.
func (c *cubicCC) OnRecoveryExit(Micros) { c.epochStart = 0 }

// PacingGate implements CongestionControl: CUBIC is window-clocked.
func (c *cubicCC) PacingGate(Micros, int) Micros { return 0 }

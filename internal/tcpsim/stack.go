package tcpsim

import (
	"fmt"
	"strings"
)

// Stack selects a sender-stack personality: a congestion-control strategy
// for the data sender plus, for the buggy variants, a receiver-side quirk.
// The zero value is classic Reno, the stack every pre-existing scenario and
// golden trace was recorded against.
type Stack int

// Sender stacks.
const (
	// StackReno is the default window-based Reno sender.
	StackReno Stack = iota
	// StackCubic grows the window along the RFC 8312 cubic curve.
	StackCubic
	// StackRatePaced is a BBR-like sender: delivery-rate estimation with
	// transmissions paced off the event loop instead of ACK-clocked bursts.
	StackRatePaced
	// StackSACK is Reno with selective acknowledgments: the receiver
	// generates SACK blocks and the sender repairs from a scoreboard.
	StackSACK
	// StackStretchAck is Reno against a buggy receiver that ACKs only every
	// Nth full segment (violating the delayed-ACK every-second-segment
	// rule), starving the sender's ACK clock.
	StackStretchAck
	// StackWScaleBug is Reno against a receiver that advertises its window
	// pre-shifted as if the peer would scale it up, so the sender sees a
	// fraction of the real buffer.
	StackWScaleBug
)

var stackNames = [...]string{
	StackReno:       "reno",
	StackCubic:      "cubic",
	StackRatePaced:  "rate-paced",
	StackSACK:       "sack",
	StackStretchAck: "stretch-ack",
	StackWScaleBug:  "wscale-bug",
}

// String returns the canonical stack name.
func (s Stack) String() string {
	if s >= 0 && int(s) < len(stackNames) {
		return stackNames[s]
	}
	return fmt.Sprintf("stack(%d)", int(s))
}

// ParseStack resolves a stack name as used by the -stack/-stacks flags.
func ParseStack(name string) (Stack, error) {
	for i, n := range stackNames {
		if strings.EqualFold(name, n) {
			return Stack(i), nil
		}
	}
	return StackReno, fmt.Errorf("unknown sender stack %q (have %s)", name, strings.Join(stackNames[:], ", "))
}

// AllStacks lists every stack in declaration order, Reno first.
func AllStacks() []Stack {
	out := make([]Stack, len(stackNames))
	for i := range out {
		out[i] = Stack(i)
	}
	return out
}

// ApplyStack configures a sender/receiver Config pair for the given stack
// personality. Sender stacks set the data sender's congestion control;
// buggy variants install the corresponding receiver quirk. Reno is a no-op,
// preserving every existing scenario byte-for-byte.
func ApplyStack(s Stack, sender, receiver *Config) {
	switch s {
	case StackCubic, StackRatePaced:
		sender.Stack = s
	case StackSACK:
		sender.Stack = s
		sender.SACK = true
		receiver.SACK = true
	case StackStretchAck:
		receiver.StretchAcks = 8
	case StackWScaleBug:
		receiver.WindowScaleBug = 4
	}
}

package tcpsim

// Probe is a set of optional ground-truth callbacks an observer (the
// trace-generation oracle) attaches to an endpoint. The endpoint reports
// authoritative internal events — things a passive sniffer can only infer —
// at the moment they happen. Probes never alter endpoint behavior: every
// callback fires after the state transition it reports, and a nil Probe (or
// nil callback) costs one pointer test.
type Probe struct {
	// OnTimeout fires when a retransmission timeout expires and actually
	// retransmits data (SYN retransmissions included). The paper's passive
	// analyzer must infer these from duplicate bytes on the wire; here they
	// are exact.
	OnTimeout func(t Micros)
	// OnZeroWindow fires when the advertised receive window transitions to
	// zero (zero=true) or reopens (zero=false), as stamped on an outgoing
	// segment — i.e. at the instant the zero window becomes visible on the
	// wire.
	OnZeroWindow func(t Micros, zero bool)
	// OnSendBlocked fires when the sender transitions into (blocked=true) or
	// out of (blocked=false) a state where buffered data cannot be
	// transmitted because the peer's advertised window is the binding
	// constraint (including full zero-window stalls).
	OnSendBlocked func(t Micros, blocked bool)
	// OnBugDrop fires when the zero-window probe-discard bug consumes an
	// outgoing segment (paper §IV-B): the bytes vanish before reaching the
	// wire, repairable only by a retransmission timeout.
	OnBugDrop func(t Micros)
}

// SetProbe attaches ground-truth callbacks to the endpoint (nil detaches).
func (e *Endpoint) SetProbe(p *Probe) { e.probe = p }

// probeTimeout reports an RTO retransmission.
func (e *Endpoint) probeTimeout() {
	if e.probe != nil && e.probe.OnTimeout != nil {
		e.probe.OnTimeout(e.eng.Now())
	}
}

// probeZeroWindow reports advertised-window zero transitions. Called from
// newPacket with the window just stamped on an outgoing segment.
func (e *Endpoint) probeZeroWindow(adv int) {
	zero := adv == 0
	if zero == e.probeZeroState {
		return
	}
	e.probeZeroState = zero
	if e.probe != nil && e.probe.OnZeroWindow != nil {
		e.probe.OnZeroWindow(e.eng.Now(), zero)
	}
}

// probeSendBlocked reports peer-window stall transitions. Called from
// trySend after the transmission loop has settled.
func (e *Endpoint) probeSendBlocked(blocked bool) {
	if blocked == e.probeBlockedState {
		return
	}
	e.probeBlockedState = blocked
	if e.probe != nil && e.probe.OnSendBlocked != nil {
		e.probe.OnSendBlocked(e.eng.Now(), blocked)
	}
}

// probeBugDrop reports a probe-discard bug casualty.
func (e *Endpoint) probeBugDrop() {
	if e.probe != nil && e.probe.OnBugDrop != nil {
		e.probe.OnBugDrop(e.eng.Now())
	}
}

package tcpsim

import "tdat/internal/packet"

// This file holds the receiver half: in-order delivery, out-of-order
// buffering with duplicate ACKs, delayed acknowledgments, and window
// management.

// processData handles the payload (and FIN) of an incoming segment.
func (e *Endpoint) processData(p *packet.Packet) {
	off := e.seqToOff(p.TCP.Seq)
	payload := p.Payload

	if p.TCP.HasFlag(packet.FlagFIN) {
		e.finRcvd = true
		e.finOffset = off + int64(len(payload))
	}

	// Trim any prefix we already have.
	if off < e.rcvNxt {
		cut := e.rcvNxt - off
		if cut >= int64(len(payload)) {
			// Entirely old data (a retransmission of delivered bytes, or a
			// zero-window probe we cannot accept): re-acknowledge.
			e.stats.DupAcksSent++
			e.sendAck()
			return
		}
		payload = payload[cut:]
		off = e.rcvNxt
	}

	switch {
	case off == e.rcvNxt && len(payload) > 0:
		space := e.cfg.RecvBuf - len(e.readable)
		accept := len(payload)
		partial := false
		if accept > space {
			accept, partial = space, true
		}
		filledGap := false
		if accept > 0 {
			e.readable = append(e.readable, payload[:accept]...)
			e.stats.BytesReceived += int64(accept)
			e.rcvNxt += int64(accept)
			filledGap = len(e.ooo) > 0
			e.integrateOOO()
		}
		if partial || filledGap {
			// Beyond-buffer data (e.g. a persist probe at zero window) or a
			// filled sequence gap (RFC 5681 §4.2) is acknowledged
			// immediately.
			e.sendAck()
		} else {
			e.scheduleAck()
		}
		if accept > 0 && e.OnReadable != nil {
			e.OnReadable()
		}
	case off > e.rcvNxt && len(payload) > 0:
		// Out-of-order: hold the segment if it fits in the advertised
		// window, and send an immediate duplicate ACK (fast-retransmit
		// signal).
		if off+int64(len(payload)) <= e.rcvNxt+int64(e.advWindow()) {
			if _, dup := e.ooo[off]; !dup {
				seg := append([]byte(nil), payload...)
				e.ooo[off] = seg
				e.oooBytes += len(seg)
			}
			e.lastOOO = off // most recent arrival leads the SACK blocks
		}
		e.stats.DupAcksSent++
		e.sendAck()
	default:
		// Pure FIN or empty segment.
		e.sendAck()
	}

	if e.finRcvd && e.rcvNxt == e.finOffset {
		switch e.state {
		case StateEstablished:
			e.state = StateCloseWait
			e.sendAck()
			e.maybeSendFIN() // if the app already closed, finish immediately
		case StateFinWait:
			// Simultaneous/answering FIN: acknowledge and close.
			e.sendAck()
			e.state = StateClosed
			e.stopTimers()
		}
	}
}

// integrateOOO merges buffered out-of-order segments that have become
// contiguous with rcvNxt.
func (e *Endpoint) integrateOOO() {
	for {
		seg, ok := e.ooo[e.rcvNxt]
		if !ok {
			// Also handle segments overlapping rcvNxt from below (stored at
			// an earlier offset before trimming was possible).
			found := false
			for off, s := range e.ooo {
				if off < e.rcvNxt && off+int64(len(s)) > e.rcvNxt {
					delete(e.ooo, off)
					e.oooBytes -= len(s)
					s = s[e.rcvNxt-off:]
					e.ooo[e.rcvNxt] = s
					e.oooBytes += len(s)
					found = true
					break
				}
				if off+int64(len(s)) <= e.rcvNxt {
					delete(e.ooo, off)
					e.oooBytes -= len(s)
					found = true
					break
				}
			}
			if !found {
				return
			}
			continue
		}
		delete(e.ooo, e.rcvNxt)
		e.oooBytes -= len(seg)
		space := e.cfg.RecvBuf - len(e.readable)
		if len(seg) > space {
			seg = seg[:space]
		}
		e.readable = append(e.readable, seg...)
		e.stats.BytesReceived += int64(len(seg))
		e.rcvNxt += int64(len(seg))
	}
}

// scheduleAck implements delayed acknowledgments: every second full segment
// (or the delayed-ACK timer, whichever first) triggers an ACK. A buggy
// stretch-ACK receiver (Config.StretchAcks ≥ 2) raises the segment count,
// acknowledging only every Nth segment and starving the sender's ACK clock
// between the delayed-ACK timer firings.
func (e *Endpoint) scheduleAck() {
	if e.cfg.DisableDelayedAck {
		e.sendAck()
		return
	}
	ackEvery := 2
	if e.cfg.StretchAcks >= 2 {
		ackEvery = e.cfg.StretchAcks
	}
	e.pendingAck++
	if e.pendingAck >= ackEvery || len(e.ooo) > 0 {
		e.sendAck()
		return
	}
	if !e.delack.Active() {
		e.delack = e.eng.After(e.cfg.DelayedAckTimeout, func() {
			if e.pendingAck > 0 {
				e.sendAck()
			}
		})
	}
}

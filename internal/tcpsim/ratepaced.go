package tcpsim

// ratePacedCC is a BBR-flavored sender: it estimates the bottleneck
// bandwidth as the windowed maximum of per-ACK delivery-rate samples and
// the propagation delay as the running minimum SRTT, sets the congestion
// window to twice the bandwidth-delay product, and — unlike every
// window-clocked stack — spreads transmissions along the pacing interval
// through PacingGate, driven by the endpoint's pace timer. Loss barely
// moves it: duplicate-ACK retransmission still happens, but the window is
// model-driven rather than halved, which is exactly the behavior that
// undermines loss-centric delay inference.
type ratePacedCC struct {
	cwnd    float64
	maxCwnd float64

	bw       [8]float64 // delivery-rate samples, bytes/second
	bwIdx    int
	haveRate bool
	rtProp   float64 // minimum SRTT seen, microseconds
	lastAck  Micros
	nextSend Micros
}

// rpGain is the pacing-rate multiplier over the bandwidth estimate: pacing
// slightly above the measured rate probes for more bandwidth while the
// 2×BDP window bounds the queue it can build.
const rpGain = 1.25

// Name implements CongestionControl.
func (p *ratePacedCC) Name() string { return "rate-paced" }

// Init implements CongestionControl.
func (p *ratePacedCC) Init(cfg Config) {
	p.cwnd = float64(cfg.InitialCwnd * cfg.MSS)
	p.maxCwnd = float64(cfg.MaxCwnd)
}

// Cwnd implements CongestionControl.
func (p *ratePacedCC) Cwnd() float64 { return p.cwnd }

// InRecovery implements CongestionControl: the model has no recovery state.
func (p *ratePacedCC) InRecovery() bool { return false }

func (p *ratePacedCC) clamp() {
	if p.maxCwnd > 0 && p.cwnd > p.maxCwnd {
		p.cwnd = p.maxCwnd
	}
}

// btlBw returns the max-filtered bandwidth estimate in bytes/second.
func (p *ratePacedCC) btlBw() float64 {
	best := 0.0
	for _, s := range p.bw {
		if s > best {
			best = s
		}
	}
	return best
}

// OnAck implements CongestionControl.
func (p *ratePacedCC) OnAck(ev AckInfo) {
	if p.lastAck > 0 && ev.Now > p.lastAck && ev.Acked > 0 {
		rate := float64(ev.Acked) * 1e6 / float64(ev.Now-p.lastAck)
		p.bw[p.bwIdx] = rate
		p.bwIdx = (p.bwIdx + 1) % len(p.bw)
		p.haveRate = true
	}
	p.lastAck = ev.Now
	if ev.SRTT > 0 && (p.rtProp == 0 || ev.SRTT < p.rtProp) {
		p.rtProp = ev.SRTT
	}
	mss := float64(ev.MSS)
	if p.haveRate && p.rtProp > 0 {
		bdp := p.btlBw() * p.rtProp / 1e6
		p.cwnd = maxf(2*bdp, 4*mss)
	} else {
		p.cwnd += float64(ev.Acked) // startup: double per RTT like slow start
	}
	p.clamp()
}

// OnDupAck implements CongestionControl: retransmit on the third duplicate
// but apply only a mild window trim — the model, not loss, sets the rate.
func (p *ratePacedCC) OnDupAck(ev AckInfo) Reaction {
	if ev.DupAcks == 3 {
		p.cwnd = maxf(p.cwnd*0.85, 4*float64(ev.MSS))
		return ReactFastRetransmit
	}
	return ReactNone
}

// OnRTO implements CongestionControl.
func (p *ratePacedCC) OnRTO(ev AckInfo) RepairMode {
	p.cwnd = maxf(4*float64(ev.MSS), float64(ev.MSS))
	return RepairGoBackN
}

// OnRecoveryExit implements CongestionControl.
func (p *ratePacedCC) OnRecoveryExit(Micros) {}

// PacingGate implements CongestionControl: admit a segment when the pacing
// clock has caught up, else report how long until it does. The clock runs
// at rpGain times the bandwidth estimate; before any estimate exists the
// gate stays open (window-limited startup).
func (p *ratePacedCC) PacingGate(now Micros, segBytes int) Micros {
	if !p.haveRate {
		return 0
	}
	rate := rpGain * p.btlBw()
	if rate <= 0 {
		return 0
	}
	if now < p.nextSend {
		return p.nextSend - now
	}
	gap := Micros(float64(segBytes) * 1e6 / rate)
	if gap > 100_000 {
		gap = 100_000 // never pace below ten segments per second
	}
	p.nextSend = now + gap
	return 0
}

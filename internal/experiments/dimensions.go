package experiments

import (
	"fmt"
	"io"

	"tdat/internal/core"
	"tdat/internal/oracle"
	"tdat/internal/tcpsim"
	"tdat/internal/tracegen"
)

// DimensionRobustness crosses the two robustness axes the validation sweep
// keeps separate: the adversarial-diversity scenario dimensions
// (oracle.DimensionCases — long-delay paths, time-varying links, bursty
// loss, heavy-tailed and bimodal app traffic, route-server fanout) and the
// sender-stack personalities. The oracle gates dimensions under Reno only;
// this table shows how each dimension's dominant-group attribution holds up
// when the sender is not the stack the model grew up on.
type DimensionRobustnessRow struct {
	Stack   tcpsim.Stack
	Trials  int
	Correct int
	// Cells maps dimension → correct/trials in grid order.
	Cells []DimensionScore
}

// DimensionScore is one (stack, dimension) cell.
type DimensionScore struct {
	Dimension string
	Trials    int
	Correct   int
}

// DimensionRobustness computes the table rows from the quick dimension grid
// (one representative case per axis, plus the long-RTT timer case).
// seedOffset rotates every scenario seed exactly like oracle.Config.Seed;
// 0 is the calibrated grid the validation floors gate.
func DimensionRobustness(seedOffset int64) []DimensionRobustnessRow {
	cfg := oracle.Config{Quick: true, Seed: seedOffset, Routes: 4_000}
	cases := oracle.DimensionCases(cfg)
	analyzer := core.New(core.Config{Workers: 1})

	var rows []DimensionRobustnessRow
	for _, st := range tcpsim.AllStacks() {
		row := DimensionRobustnessRow{Stack: st}
		cells := map[string]*DimensionScore{}
		var order []string
		for _, c := range cases {
			cell := cells[c.Dimension]
			if cell == nil {
				cell = &DimensionScore{Dimension: c.Dimension}
				cells[c.Dimension] = cell
				order = append(order, c.Dimension)
			}
			sc := c.Scenario
			sc.Stack = st
			tr := tracegen.Run(sc)
			rep := analyzer.AnalyzePackets(tr.Packets())
			if len(rep.Transfers) != 1 {
				continue
			}
			cell.Trials++
			if g, _ := rep.Transfers[0].Factors.Dominant(); g == c.Expected {
				cell.Correct++
			}
		}
		for _, dim := range order {
			row.Trials += cells[dim].Trials
			row.Correct += cells[dim].Correct
			row.Cells = append(row.Cells, *cells[dim])
		}
		rows = append(rows, row)
	}
	return rows
}

// DimensionRobustnessTable prints the stack × dimension attribution matrix.
func DimensionRobustnessTable(w io.Writer, seedOffset int64) {
	header(w, "Attribution robustness across adversarial dimensions (correct/trials)")
	rows := DimensionRobustness(seedOffset)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s", "stack")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(w, " %15s", c.Dimension)
	}
	fmt.Fprintf(w, " %9s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Stack)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %11d/%-3d", c.Correct, c.Trials)
		}
		fmt.Fprintf(w, " %5d/%-3d\n", r.Correct, r.Trials)
	}
	fmt.Fprintln(w, "(the oracle floors gate these dimensions under reno; this matrix shows")
	fmt.Fprintln(w, " which axes stay attributable under the other sender personalities)")
}

package experiments

import (
	"fmt"
	"io"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/tracegen"
)

// expectedGroup maps each simulated pathology to the factor group T-DAT
// should blame — the advantage of a simulator substrate is that ground
// truth is known exactly.
func expectedGroup(k tracegen.Kind) factors.Group {
	switch k {
	case tracegen.KindPaced, tracegen.KindClean:
		return factors.GroupSender
	case tracegen.KindSlowReceiver, tracegen.KindSmallWindow,
		tracegen.KindDownstreamLoss, tracegen.KindZeroAckBug:
		return factors.GroupReceiver
	default: // upstream loss, bandwidth
		return factors.GroupNetwork
	}
}

// AccuracyRow is one scenario kind's attribution score.
type AccuracyRow struct {
	Kind     tracegen.Kind
	Expected factors.Group
	Trials   int
	Correct  int
	// MeanRatio is the mean delay ratio the expected group received.
	MeanRatio float64
}

// Accuracy runs `perKind` trials of every scenario kind and scores the
// analyzer's dominant-group verdict against the simulator's ground truth,
// with the ACK shift enabled or not (the DESIGN.md §6 ablation).
func Accuracy(seed int64, perKind int, disableShift bool) []AccuracyRow {
	kinds := []tracegen.Kind{
		tracegen.KindPaced, tracegen.KindSlowReceiver, tracegen.KindSmallWindow,
		tracegen.KindUpstreamLoss, tracegen.KindDownstreamLoss, tracegen.KindBandwidth,
	}
	cfg := core.Config{}
	cfg.Series.DisableShift = disableShift
	analyzer := core.New(cfg)

	var rows []AccuracyRow
	for _, k := range kinds {
		row := AccuracyRow{Kind: k, Expected: expectedGroup(k)}
		for i := 0; i < perKind; i++ {
			sc := tracegen.Scenario{Kind: k, Seed: seed + int64(i)*101, Routes: 10_000 + i*2_000}
			switch k {
			case tracegen.KindPaced:
				sc.PacingTimer = []Micros{100_000, 200_000, 400_000}[i%3]
			case tracegen.KindSmallWindow:
				sc.RTT = 30_000
			case tracegen.KindBandwidth:
				sc.UpstreamRate = 60_000
			}
			tr := tracegen.Run(sc)
			rep := analyzer.AnalyzePackets(tr.Packets())
			if len(rep.Transfers) != 1 {
				continue
			}
			row.Trials++
			f := rep.Transfers[0].Factors
			row.MeanRatio += f.G.At(row.Expected)
			if g, _ := f.Dominant(); g == row.Expected {
				row.Correct++
			}
		}
		if row.Trials > 0 {
			row.MeanRatio /= float64(row.Trials)
		}
		rows = append(rows, row)
	}
	return rows
}

// AccuracyTable prints the ground-truth attribution score with the shift on
// and off.
func AccuracyTable(w io.Writer, seed int64, perKind int) {
	header(w, "Attribution accuracy vs simulator ground truth (shift ablation)")
	fmt.Fprintf(w, "%-16s %-9s %14s %14s\n", "scenario", "expected", "shift ON", "shift OFF")
	on := Accuracy(seed, perKind, false)
	off := Accuracy(seed, perKind, true)
	var totOn, totOff, tot int
	for i := range on {
		fmt.Fprintf(w, "%-16s %-9s %5d/%-3d %.2f  %5d/%-3d %.2f\n",
			on[i].Kind, on[i].Expected,
			on[i].Correct, on[i].Trials, on[i].MeanRatio,
			off[i].Correct, off[i].Trials, off[i].MeanRatio)
		totOn += on[i].Correct
		totOff += off[i].Correct
		tot += on[i].Trials
	}
	fmt.Fprintf(w, "%-16s %-9s %9d/%-3d %14d/%-3d\n", "TOTAL", "", totOn, tot, totOff, tot)
}

// PaperScale runs ONE transfer at the paper's true scale — a ~300k-route
// (≈4.5 MB) full table — for a few representative scenarios, confirming
// that the reproduction's scaled-down durations extrapolate to the paper's
// headline numbers: minutes-long transfers over links that could move the
// bytes in seconds.
func PaperScale(w io.Writer, seed int64) {
	header(w, "Paper-scale spot check (300k-route full table, ≈4.5 MB)")
	cases := []struct {
		name string
		sc   tracegen.Scenario
	}{
		{"paced 200ms/24upd (Houidi timers)", tracegen.Scenario{
			Kind: tracegen.KindPaced, Seed: seed, Routes: 300_000,
			PacingTimer: 200_000, PacingBudget: 24, Horizon: 3_600_000_000,
		}},
		{"unpaced, unconstrained", tracegen.Scenario{
			Kind: tracegen.KindClean, Seed: seed + 1, Routes: 300_000,
			Horizon: 3_600_000_000,
		}},
		{"16KB window, 30ms RTT (RV-style)", tracegen.Scenario{
			Kind: tracegen.KindSmallWindow, Seed: seed + 2, Routes: 300_000,
			RecvBuf: 16384, RTT: 30_000, Horizon: 3_600_000_000,
		}},
	}
	analyzer := core.New(core.Config{})
	for _, c := range cases {
		tr := tracegen.Run(c.sc)
		rep := analyzer.AnalyzePackets(tr.Packets())
		if len(rep.Transfers) != 1 {
			fmt.Fprintf(w, "%-36s analysis failed\n", c.name)
			continue
		}
		t := rep.Transfers[0]
		g, ratio := t.Factors.Dominant()
		fmt.Fprintf(w, "%-36s %8.1f min  %6d pkts  dominant %s (%.0f%%)\n",
			c.name, float64(t.Duration())/6e7, len(tr.Captures), g, ratio*100)
	}
	fmt.Fprintln(w, "(the paper's Fig 3: transfers of this size 'shall finish mostly in a few")
	fmt.Fprintln(w, " seconds' yet commonly take minutes — the pacing timer alone explains it)")
}

package experiments

import (
	"fmt"
	"io"

	"tdat/internal/asciiplot"
	"tdat/internal/core"
	"tdat/internal/detect"
	"tdat/internal/flows"
	"tdat/internal/obs"
	"tdat/internal/series"
	"tdat/internal/tracegen"
)

// exampleScenario runs one scenario and returns its analyzed report.
func exampleScenario(sc tracegen.Scenario) (*tracegen.Trace, *AnalyzedTransfer) {
	tr := tracegen.Run(sc)
	rep := analyzeTrace(tr)
	if rep == nil {
		return tr, nil
	}
	return tr, &AnalyzedTransfer{Kind: tr.Kind, Report: rep, GroundDuration: tr.GroundDuration}
}

// Fig5 shows a timer-paced transfer's time-sequence plot (paper Fig 5:
// gaps in a table transfer).
func Fig5(w io.Writer, seed int64) {
	header(w, "Figure 5: gaps in a table transfer (timer-paced sender)")
	_, at := exampleScenario(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: seed, Routes: 4_000,
		PacingTimer: 200_000, PacingBudget: 24,
	})
	if at == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	_ = asciiplot.TimeSequence(w, at.Report.Conn, 100, 18)
	if at.Report.Timer != nil {
		fmt.Fprintf(w, "detected timer: %.0f ms across %d gaps\n",
			float64(at.Report.Timer.TimerMicros)/1000, at.Report.Timer.Gaps)
	}
}

// Fig6 shows consecutive retransmission episodes (paper Fig 6).
func Fig6(w io.Writer, seed int64) {
	header(w, "Figure 6: consecutive packet retransmissions")
	_, at := exampleScenario(tracegen.Scenario{
		Kind: tracegen.KindDownstreamLoss, Seed: seed, Routes: 20_000, LossRate: 0.12,
	})
	if at == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	_ = asciiplot.TimeSequence(w, at.Report.Conn, 100, 18)
	fmt.Fprintf(w, "retransmissions=%d, loss episodes(≥8)=%d, recovery delay=%.2fs\n",
		at.Report.Conn.Profile.RetransmitCount, at.Report.ConsecLoss.Episodes,
		float64(at.Report.ConsecLoss.InducedDelay)/1e6)
}

// Fig7 shows downstream (receiver-local) losses: the sniffer sees the
// originals AND their retransmissions (paper Fig 7).
func Fig7(w io.Writer, seed int64) {
	header(w, "Figure 7: downstream (receiver-local) consecutive losses")
	_, at := exampleScenario(tracegen.Scenario{
		Kind: tracegen.KindDownstreamLoss, Seed: seed, Routes: 12_000, LossRate: 0.10,
	})
	if at == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	_ = asciiplot.TimeSequence(w, at.Report.Conn, 100, 16)
	p := at.Report.Conn.Profile
	fmt.Fprintf(w, "captured retransmissions (downstream loss) = %d, gap fills (upstream) = %d\n",
		p.RetransmitCount, p.GapFillCount)
}

// Fig8 shows upstream losses: the sniffer never sees the originals, only
// the out-of-sequence repairs (paper Fig 8).
func Fig8(w io.Writer, seed int64) {
	header(w, "Figure 8: upstream consecutive losses")
	_, at := exampleScenario(tracegen.Scenario{
		Kind: tracegen.KindUpstreamLoss, Seed: seed, Routes: 12_000, LossRate: 0.10,
	})
	if at == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	_ = asciiplot.TimeSequence(w, at.Report.Conn, 100, 16)
	p := at.Report.Conn.Profile
	fmt.Fprintf(w, "gap fills (upstream loss) = %d, captured retransmissions (downstream) = %d\n",
		p.GapFillCount, p.RetransmitCount)
}

// Fig9 shows the peer-group blocking timeline (paper Fig 9): the healthy
// session pauses from the member failure (t1) to its hold-timer removal
// (t2).
func Fig9(w io.Writer, seed int64) {
	header(w, "Figure 9: session failure and peer-group blocking")
	pg := tracegen.RunPeerGroup(seed, 20_000, 1_000_000, 180_000_000)
	healthy := analyzeTrace(pg.Healthy)
	faulty := analyzeTrace(pg.Faulty)
	if healthy == nil || faulty == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	fmt.Fprintf(w, "t1 (member failure) = %.1fs, t2 (hold expiry) = %.1fs\n",
		float64(pg.KillAt)/1e6, float64(pg.HoldExpiry)/1e6)
	span := healthy.Conn.Span()
	rows := []asciiplot.Row{
		{Label: "healthy.Transmission", Set: healthy.Catalog.Get(series.Transmission)},
		{Label: "healthy.SendAppLimited", Set: healthy.Catalog.Get(series.SendAppLimited)},
		{Label: "faulty.Outstanding", Set: faulty.Catalog.Get(series.Outstanding)},
		{Label: "faulty.Loss", Set: faulty.Catalog.Get(series.LossRecovery)},
	}
	_ = asciiplot.Series(w, span, rows, 100)
	if det, ok := detect.PeerGroupBlocking(healthy.Catalog, faulty.Catalog, 0); ok {
		fmt.Fprintf(w, "detected blocking: longest pause %.1fs (ground truth %.1fs)\n",
			float64(det.LongestPause)/1e6, float64(pg.HoldExpiry-pg.KillAt)/1e6)
	} else {
		fmt.Fprintln(w, "blocking NOT detected")
	}
}

// Fig11 renders one transfer and its derived event series — the paper's
// showcase of the series representation.
func Fig11(w io.Writer, seed int64) {
	header(w, "Figure 11: example TCP trace and event series")
	_, at := exampleScenario(tracegen.Scenario{
		Kind: tracegen.KindUpstreamLoss, Seed: seed, Routes: 10_000, LossRate: 0.06,
	})
	if at == nil {
		fmt.Fprintln(w, "(analysis failed)")
		return
	}
	_ = asciiplot.TimeSequence(w, at.Report.Conn, 100, 14)
	fmt.Fprintln(w)
	_ = at.Report.WriteText(w, true)
}

// Throughput measures analyzer speed: connections and packets per second of
// wall time, the §V-C comparison against the paper's 26 s/connection Perl
// prototype.
type Throughput struct {
	Connections   int
	Packets       int
	WallSeconds   float64
	PerConnection float64 // seconds per connection
}

// String formats the measurement.
func (t Throughput) String() string {
	return fmt.Sprintf("analyzed %d connections (%d packets) in %.2fs wall = %.4fs/connection",
		t.Connections, t.Packets, t.WallSeconds, t.PerConnection)
}

// MeasureThroughput generates n representative transfers, then times the
// analyzer alone over their captures (trace generation excluded), mirroring
// the paper's per-connection processing-cost report.
func MeasureThroughput(n int, seed int64) Throughput {
	kinds := []tracegen.Kind{
		tracegen.KindClean, tracegen.KindPaced, tracegen.KindSlowReceiver,
		tracegen.KindSmallWindow, tracegen.KindUpstreamLoss,
	}
	var inputs [][]flows.TimedPacket
	packets := 0
	for i := 0; i < n; i++ {
		tr := tracegen.Run(tracegen.Scenario{
			Kind: kinds[i%len(kinds)], Seed: seed + int64(i), Routes: 12_000,
		})
		pkts := tr.Packets()
		packets += len(pkts)
		inputs = append(inputs, pkts)
	}
	analyzer := core.New(core.Config{})
	start := obs.Now()
	conns := 0
	for _, pkts := range inputs {
		rep := analyzer.AnalyzePackets(pkts)
		conns += len(rep.Transfers)
	}
	wall := obs.Since(start).Seconds()
	t := Throughput{Connections: conns, Packets: packets, WallSeconds: wall}
	if conns > 0 {
		t.PerConnection = wall / float64(conns)
	}
	return t
}

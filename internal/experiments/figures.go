package experiments

import (
	"fmt"
	"io"
	"sort"

	"tdat/internal/detect"
	"tdat/internal/factors"
	"tdat/internal/knee"
	"tdat/internal/stats"
	"tdat/internal/tracegen"
)

// Fig3Result holds per-dataset duration CDFs.
type Fig3Result struct {
	Names [3]string
	// P50 and P80 are the paper's headline percentiles (minutes for the
	// Quagga/RV traces: 2.5 and 5 in the paper).
	P50, P80 [3]float64
	CDFs     [3][]stats.CDFPoint
}

// Fig3 prints the transfer-duration CDFs (paper Fig 3).
func Fig3(w io.Writer, s *Suite) *Fig3Result {
	header(w, "Figure 3: CDF of table transfer duration (seconds)")
	res := &Fig3Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		durs := durations(ds)
		res.P50[i] = stats.Percentile(durs, 50)
		res.P80[i] = stats.Percentile(durs, 80)
		res.CDFs[i] = stats.CDF(durs)
		fmt.Fprintf(w, "%-12s n=%-4d", ds.Name, len(durs))
		for _, p := range []float64{10, 25, 50, 75, 80, 90, 99} {
			fmt.Fprintf(w, "  p%.0f=%.1fs", p, stats.Percentile(durs, p))
		}
		fmt.Fprintln(w)
	}
	return res
}

func durations(ds *Dataset) []float64 {
	out := make([]float64, len(ds.Transfers))
	for i := range ds.Transfers {
		out[i] = ds.Transfers[i].Duration()
	}
	return out
}

// Fig4Result holds stretch-ratio CDFs (paper Fig 4).
type Fig4Result struct {
	Names [3]string
	// FracAbove2 is the fraction of router pairs stretched ≥2× (paper: 22%,
	// 59%, 100%).
	FracAbove2 [3]float64
	Ratios     [3][]float64
}

// Fig4 computes per-router stretch ratios: slowest over fastest transfer of
// the same router.
func Fig4(w io.Writer, s *Suite) *Fig4Result {
	header(w, "Figure 4: stretch of table transfers (slowest/fastest per router)")
	res := &Fig4Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		byRouter := map[int][]float64{}
		for _, t := range ds.Transfers {
			byRouter[t.Router.ID] = append(byRouter[t.Router.ID], t.Duration())
		}
		var ratios []float64
		above2 := 0
		for _, durs := range byRouter {
			if len(durs) < 2 {
				continue
			}
			r := stats.StretchRatio(durs)
			if r <= 0 {
				continue
			}
			ratios = append(ratios, r)
			if r >= 2 {
				above2++
			}
		}
		sort.Float64s(ratios)
		res.Ratios[i] = ratios
		if len(ratios) > 0 {
			res.FracAbove2[i] = float64(above2) / float64(len(ratios))
		}
		fmt.Fprintf(w, "%-12s routers=%-3d median=%.1fx p90=%.1fx frac(stretch≥2)=%0.0f%%\n",
			ds.Name, len(ratios), stats.Percentile(ratios, 50),
			stats.Percentile(ratios, 90), res.FracAbove2[i]*100)
	}
	return res
}

// Fig14Result holds the sender/receiver delay-ratio scatter (paper Fig 14).
type Fig14Result struct {
	Names [3]string
	// Points are (Rs, Rr) pairs per dataset.
	Points [3][][2]float64
	// MeanRs/MeanRr summarize the clouds.
	MeanRs, MeanRr [3]float64
}

// Fig14 prints the scatter of sender vs receiver group delay ratios.
func Fig14(w io.Writer, s *Suite) *Fig14Result {
	header(w, "Figure 14: sender-side vs receiver-side delay ratios")
	res := &Fig14Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		var sumS, sumR float64
		for _, t := range ds.Transfers {
			rs := t.Report.Factors.G.At(factors.GroupSender)
			rr := t.Report.Factors.G.At(factors.GroupReceiver)
			res.Points[i] = append(res.Points[i], [2]float64{rs, rr})
			sumS += rs
			sumR += rr
		}
		n := float64(len(ds.Transfers))
		if n > 0 {
			res.MeanRs[i], res.MeanRr[i] = sumS/n, sumR/n
		}
		fmt.Fprintf(w, "%-12s n=%-4d mean(Rs)=%.2f mean(Rr)=%.2f\n",
			ds.Name, len(ds.Transfers), res.MeanRs[i], res.MeanRr[i])
		// A coarse 2-D histogram stands in for the scatter plot.
		var grid [5][5]int
		for _, p := range res.Points[i] {
			x := int(p[0] * 4.999)
			y := int(p[1] * 4.999)
			grid[y][x]++
		}
		for y := 4; y >= 0; y-- {
			fmt.Fprintf(w, "  Rr %.1f |", float64(y)/5)
			for x := 0; x < 5; x++ {
				if grid[y][x] == 0 {
					fmt.Fprintf(w, "   . ")
				} else {
					fmt.Fprintf(w, "%4d ", grid[y][x])
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "         Rs: 0.0  0.2  0.4  0.6  0.8\n")
	}
	return res
}

// Fig15Point is one concurrency level of the incast sweep.
type Fig15Point struct {
	Concurrent int
	// BGPRatio is the mean receiver-app (small/zero window) delay ratio;
	// TCPRatio the mean advertised-window (parameter) ratio.
	BGPRatio, TCPRatio float64
	// LocalLossRatio tracks receiver-local losses (shared queue overflow).
	LocalLossRatio float64
}

// Fig15 sweeps the number of concurrent table transfers toward one
// collector (paper Fig 15): with few transfers the TCP window binds; as
// concurrency grows the BGP receiver process becomes the bottleneck.
func Fig15(w io.Writer, seed int64, levels []int) []Fig15Point {
	header(w, "Figure 15: effect of concurrent table transfers on the receiver")
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8, 16, 24}
	}
	var out []Fig15Point
	for _, n := range levels {
		traces := tracegen.RunIncast(seed, n, 30_000, 600, 3_000_000)
		var pt Fig15Point
		pt.Concurrent = n
		cnt := 0
		for _, tr := range traces {
			rep := analyzeTrace(tr)
			if rep == nil {
				continue
			}
			pt.BGPRatio += rep.Factors.V.At(factors.ReceiverApp)
			pt.TCPRatio += rep.Factors.V.At(factors.ReceiverWindow)
			pt.LocalLossRatio += rep.Factors.V.At(factors.ReceiverLocalLoss)
			cnt++
		}
		if cnt > 0 {
			pt.BGPRatio /= float64(cnt)
			pt.TCPRatio /= float64(cnt)
			pt.LocalLossRatio /= float64(cnt)
		}
		out = append(out, pt)
		fmt.Fprintf(w, "concurrent=%-3d recvBGP=%.2f recvTCPwindow=%.2f recvLocalLoss=%.2f\n",
			pt.Concurrent, pt.BGPRatio, pt.TCPRatio, pt.LocalLossRatio)
	}
	return out
}

// Fig16Result groups duration CDFs by dominant delay factor (paper Fig 16).
type Fig16Result struct {
	// ByFactor maps factor → sorted durations (seconds), pooled across
	// datasets.
	ByFactor map[factors.Factor][]float64
}

// Fig16 prints duration percentiles per dominant factor.
func Fig16(w io.Writer, s *Suite) *Fig16Result {
	header(w, "Figure 16: table transfer duration by dominant delay factor")
	res := &Fig16Result{ByFactor: map[factors.Factor][]float64{}}
	for _, ds := range s.Datasets {
		for _, t := range ds.Transfers {
			rep := t.Report.Factors
			if rep.Unknown() {
				continue
			}
			g := rep.MajorGroups[0]
			f := rep.DominantFactor[g]
			res.ByFactor[f] = append(res.ByFactor[f], t.Duration())
		}
	}
	order := []factors.Factor{
		factors.ReceiverWindow, factors.SenderCwnd, factors.ReceiverApp,
		factors.SenderApp, factors.ReceiverLocalLoss, factors.NetLoss,
		factors.NetBandwidth,
	}
	for _, f := range order {
		durs := res.ByFactor[f]
		if len(durs) == 0 {
			continue
		}
		sort.Float64s(durs)
		fmt.Fprintf(w, "%-24s n=%-4d p50=%.1fs p90=%.1fs max=%.1fs\n",
			f, len(durs), stats.Percentile(durs, 50), stats.Percentile(durs, 90),
			durs[len(durs)-1])
	}
	return res
}

// Fig17Result reports inferred pacing timers per dataset (paper Fig 17).
type Fig17Result struct {
	Names [3]string
	// Timers lists the distinct timer values (ms) seen in each dataset.
	Timers [3][]int
	// Detected counts transfers with a pronounced timer.
	Detected [3]int
}

// Fig17 runs knee detection on every transfer's idle-gap distribution and
// clusters the inferred timers.
func Fig17(w io.Writer, s *Suite) *Fig17Result {
	header(w, "Figure 17: inferred BGP pacing timers from gap distributions")
	res := &Fig17Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		counts := map[int]int{}
		for _, t := range ds.Transfers {
			if t.Report.Timer == nil {
				continue
			}
			res.Detected[i]++
			// Round to the nearest canonical bucket (10 ms grid).
			ms := int((t.Report.Timer.TimerMicros + 5_000) / 10_000 * 10)
			counts[ms]++
		}
		// Keep buckets covering ≥10% of detections: the dataset's timers.
		var timers []int
		for ms, c := range counts {
			if c*10 >= res.Detected[i] {
				timers = append(timers, ms)
			}
		}
		sort.Ints(timers)
		res.Timers[i] = timers
		fmt.Fprintf(w, "%-12s detected=%-4d timers(ms)=%v\n", ds.Name, res.Detected[i], timers)
	}
	return res
}

// Fig17Gaps prints one example sorted-gap curve with its knee, mirroring
// the paper's example plot.
func Fig17Gaps(w io.Writer, s *Suite) {
	header(w, "Figure 17 (example): sorted idle-gap curve with knee")
	for _, ds := range s.Datasets {
		for _, t := range ds.Transfers {
			if t.Report.Timer == nil {
				continue
			}
			gaps := detect.GapLengths(t.Report.Catalog, t.Report.Transfer)
			pts := make([]knee.Point, len(gaps))
			for i, g := range gaps {
				pts[i] = knee.Point{X: float64(i), Y: g}
			}
			idx, _ := knee.Find(pts)
			step := len(gaps)/12 + 1
			for i := 0; i < len(gaps); i += step {
				marker := ""
				if idx >= i && idx < i+step {
					marker = "   <-- knee"
				}
				fmt.Fprintf(w, "  gap[%3d] = %8.1f ms%s\n", i, gaps[i]/1000, marker)
			}
			fmt.Fprintf(w, "  inferred timer: %.0f ms\n", float64(t.Report.Timer.TimerMicros)/1000)
			return
		}
	}
	fmt.Fprintln(w, "(no timer-paced transfer found)")
}

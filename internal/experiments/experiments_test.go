package experiments

import (
	"io"
	"strings"
	"testing"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/tracegen"
)

// quickSuite is shared across the package tests (generation is the
// expensive part).
var quickSuite = RunSuite(QuickScale())

func TestSuiteShapeMatchesScale(t *testing.T) {
	s := QuickScale()
	if got := len(quickSuite.Vendor().Transfers); got != s.VendorTransfers {
		t.Errorf("vendor transfers = %d, want %d", got, s.VendorTransfers)
	}
	if got := len(quickSuite.Quagga().Transfers); got != s.QuaggaTransfers {
		t.Errorf("quagga transfers = %d, want %d", got, s.QuaggaTransfers)
	}
	if got := len(quickSuite.RV().Transfers); got != s.RVTransfers {
		t.Errorf("rv transfers = %d, want %d", got, s.RVTransfers)
	}
	for _, ds := range quickSuite.Datasets {
		for i, tr := range ds.Transfers {
			if tr.Report == nil || tr.Packets == 0 {
				t.Fatalf("%s transfer %d incomplete", ds.Name, i)
			}
		}
	}
}

func TestTable1CountsAddUp(t *testing.T) {
	rows := Table1(io.Discard, quickSuite)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Transfers != len(quickSuite.Datasets[i].Transfers) {
			t.Errorf("row %d transfers = %d", i, r.Transfers)
		}
		if r.Packets == 0 || r.Bytes == 0 || r.Routers == 0 {
			t.Errorf("row %d has zero columns: %+v", i, r)
		}
	}
}

func TestTable4QualitativeShape(t *testing.T) {
	res := Table4(io.Discard, quickSuite)
	// The paper's headline claims, asserted pooled across the three
	// datasets (the quick scale is too small for per-dataset stability; the
	// default-scale benchmark output shows them per dataset):
	// sender-side factors are the most prevalent major group, network the
	// rarest, and within the sender group BGP dominates TCP.
	var snd, rcv, net, sApp, sCwnd int
	for i := 0; i < 3; i++ {
		snd += res.SenderLimited[i]
		rcv += res.ReceiverLimited[i]
		net += res.NetworkLimited[i]
		sApp += res.SenderApp[i]
		sCwnd += res.SenderCwnd[i]
	}
	if snd <= rcv {
		t.Errorf("pooled: sender %d <= receiver %d", snd, rcv)
	}
	if snd <= net {
		t.Errorf("pooled: sender %d <= network %d", snd, net)
	}
	if sApp <= sCwnd {
		t.Errorf("pooled: sender BGP %d <= TCP %d", sApp, sCwnd)
	}
	// RouteViews' receiver side leans TCP (the 16 KB window), unlike ISP_A
	// (paper §IV-A).
	if res.RecvApp[2] > res.RecvWindow[2] {
		t.Errorf("RV receiver: BGP %d > TCP window %d (paper shows the reverse)",
			res.RecvApp[2], res.RecvWindow[2])
	}
}

func TestFig3DurationsPositive(t *testing.T) {
	res := Fig3(io.Discard, quickSuite)
	for i := 0; i < 3; i++ {
		if res.P50[i] <= 0 || res.P80[i] < res.P50[i] {
			t.Errorf("%s: p50=%.2f p80=%.2f", res.Names[i], res.P50[i], res.P80[i])
		}
	}
}

func TestFig4StretchesExist(t *testing.T) {
	res := Fig4(io.Discard, quickSuite)
	any := false
	for i := 0; i < 3; i++ {
		if len(res.Ratios[i]) > 0 {
			any = true
			for _, r := range res.Ratios[i] {
				if r < 1 {
					t.Errorf("stretch ratio %.2f < 1", r)
				}
			}
		}
	}
	if !any {
		t.Error("no stretch ratios computed")
	}
}

func TestFig14RatiosBounded(t *testing.T) {
	res := Fig14(io.Discard, quickSuite)
	for i := 0; i < 3; i++ {
		for _, p := range res.Points[i] {
			if p[0] < 0 || p[0] > 1.001 || p[1] < 0 || p[1] > 1.001 {
				t.Errorf("point out of range: %v", p)
			}
		}
	}
}

func TestFig16GroupsByFactor(t *testing.T) {
	res := Fig16(io.Discard, quickSuite)
	if len(res.ByFactor) == 0 {
		t.Fatal("no factors grouped")
	}
	if len(res.ByFactor[factors.SenderApp]) == 0 {
		t.Error("no sender-app dominated transfers at all")
	}
}

func TestFig17FindsDatasetTimers(t *testing.T) {
	res := Fig17(io.Discard, quickSuite)
	// Vendor profile paces at 200/400 ms: 200 must be among its timers.
	found := false
	for _, ms := range res.Timers[0] {
		if ms == 200 {
			found = true
		}
	}
	if !found {
		t.Errorf("vendor timers = %v, want 200ms present", res.Timers[0])
	}
	if res.Detected[0] == 0 {
		t.Error("no timers detected in the vendor dataset")
	}
}

func TestTable2SlowSample(t *testing.T) {
	rows := Table2(io.Discard, quickSuite, 2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Num == 0 {
		t.Error("no timer-gap transfers in the slow sample")
	}
	if rows[2].Num != 2 {
		t.Errorf("peer-group passthrough = %d", rows[2].Num)
	}
}

func TestTable3ShowsEscalatingDelays(t *testing.T) {
	rows := Table3(io.Discard, 4242)
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].DelaySec <= 0 {
		t.Errorf("first delay = %v", rows[0].DelaySec)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DelaySec < rows[i-1].DelaySec {
			t.Errorf("delays not monotone: %v", rows)
		}
	}
}

func TestTable5CountsProblems(t *testing.T) {
	res := Table5(io.Discard, quickSuite, 1)
	if res.GapTransfers[0] == 0 {
		t.Error("no gap transfers in the vendor dataset")
	}
	for i := 0; i < 3; i++ {
		if res.PGCases[i] != 1 {
			t.Errorf("%s peer-group cases = %d, want 1", res.Names[i], res.PGCases[i])
		}
		if res.PGAvgSec[i] < 10 {
			t.Errorf("%s peer-group delay = %.1fs, implausibly small", res.Names[i], res.PGAvgSec[i])
		}
	}
}

func TestFig15MonotoneBGPPressure(t *testing.T) {
	pts := Fig15(io.Discard, 4242, []int{2, 12})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].BGPRatio <= pts[0].BGPRatio {
		t.Errorf("BGP receiver pressure did not grow with concurrency: %.2f -> %.2f",
			pts[0].BGPRatio, pts[1].BGPRatio)
	}
}

func TestExampleFiguresRender(t *testing.T) {
	var sb strings.Builder
	Fig5(&sb, 4243)
	Fig6(&sb, 4244)
	Fig7(&sb, 4245)
	Fig8(&sb, 4246)
	Fig11(&sb, 4247)
	out := sb.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 11", "marks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in example figures", want)
		}
	}
	if strings.Contains(out, "analysis failed") {
		t.Error("an example figure failed to analyze")
	}
}

func TestFig9DetectsBlocking(t *testing.T) {
	var sb strings.Builder
	Fig9(&sb, 4248)
	out := sb.String()
	if !strings.Contains(out, "detected blocking") {
		t.Errorf("Fig9 did not detect blocking:\n%s", out)
	}
}

func TestMeasureThroughputFasterThanPaper(t *testing.T) {
	res := MeasureThroughput(5, 4250)
	if res.Connections != 5 {
		t.Fatalf("connections = %d", res.Connections)
	}
	// The paper's Perl prototype took 26 s/connection; anything below one
	// second comfortably beats it on comparable trace sizes.
	if res.PerConnection > 1.0 {
		t.Errorf("analyzer took %.2fs per connection", res.PerConnection)
	}
}

func TestAccuracyAgainstGroundTruth(t *testing.T) {
	rows := Accuracy(9000, 2, false)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	total, correct := 0, 0
	for _, r := range rows {
		total += r.Trials
		correct += r.Correct
		if r.Trials == 0 {
			t.Errorf("%v: no trials completed", r.Kind)
		}
	}
	// The analyzer must attribute the vast majority of scenarios to the
	// ground-truth group.
	if correct*10 < total*9 {
		t.Errorf("accuracy %d/%d below 90%%", correct, total)
	}
}

func TestPaperScaleTransferTakesMinutes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale table in -short mode")
	}
	// The paper's headline: a full table (≈300k routes / 4.5 MB) that the
	// link could move in seconds takes ~10 minutes under the 200 ms vendor
	// pacing timer.
	tr := tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 5042, Routes: 300_000,
		PacingTimer: 200_000, PacingBudget: 24, Horizon: 3_600_000_000,
	})
	rep := core.New(core.Config{}).AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 1 {
		t.Fatal("want one transfer")
	}
	d := rep.Transfers[0].Duration()
	if d < 8*60_000_000 || d > 15*60_000_000 {
		t.Errorf("paper-scale paced transfer took %.1f min, want ≈10", float64(d)/6e7)
	}
	if rep.Transfers[0].Timer == nil {
		t.Error("timer not detected at paper scale")
	}
	g, ratio := rep.Transfers[0].Factors.Dominant()
	if g.String() != "sender" || ratio < 0.9 {
		t.Errorf("dominant = %v %.2f", g, ratio)
	}
}

// TestDimensionRobustnessCalibrated: at seed offset 0 (the grid the
// validation floors gate) the Reno row must attribute every adversarial
// dimension correctly, every stack must sweep the same six dimensions in
// grid order, and the table must render.
func TestDimensionRobustnessCalibrated(t *testing.T) {
	rows := DimensionRobustness(0)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	wantDims := []string{
		"long-rtt", "varying-rate", "burst-loss",
		"heavy-tail-app", "bimodal-app", "fanout",
	}
	for _, r := range rows {
		if len(r.Cells) != len(wantDims) {
			t.Fatalf("stack %s swept %d dimensions, want %d", r.Stack, len(r.Cells), len(wantDims))
		}
		for i, c := range r.Cells {
			if c.Dimension != wantDims[i] {
				t.Errorf("stack %s cell[%d] = %s, want %s", r.Stack, i, c.Dimension, wantDims[i])
			}
			if c.Trials == 0 {
				t.Errorf("stack %s dimension %s: no trials", r.Stack, c.Dimension)
			}
		}
	}
	reno := rows[0]
	if reno.Stack.String() != "reno" {
		t.Fatalf("first row is %s, want reno", reno.Stack)
	}
	if reno.Trials == 0 || reno.Correct != reno.Trials {
		t.Errorf("reno attribution %d/%d, want perfect on the calibrated grid",
			reno.Correct, reno.Trials)
	}

	var buf strings.Builder
	DimensionRobustnessTable(&buf, 0)
	for _, want := range []string{"adversarial dimensions", "reno", "fanout"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"

	"tdat/internal/core"
	"tdat/internal/detect"
	"tdat/internal/factors"
	"tdat/internal/series"
	"tdat/internal/stats"
	"tdat/internal/tracegen"
)

// Table1Row summarizes one dataset (paper Table I).
type Table1Row struct {
	Name      string
	Type      string
	Collector string
	Packets   int
	Bytes     int64
	Routers   int
	Transfers int
}

// Table1 prints the dataset summary.
func Table1(w io.Writer, s *Suite) []Table1Row {
	header(w, "Table I: summary of BGP/TCP datasets and identified table transfers")
	rows := []Table1Row{
		{Name: "ISPA-1", Type: "iBGP", Collector: "Vendor"},
		{Name: "ISPA-2", Type: "iBGP", Collector: "Quagga"},
		{Name: "RV", Type: "eBGP", Collector: "Vendor"},
	}
	for i, ds := range s.Datasets {
		routers := map[int]bool{}
		for _, t := range ds.Transfers {
			rows[i].Packets += t.Packets
			rows[i].Bytes += t.Bytes
			routers[t.Router.ID] = true
		}
		rows[i].Routers = len(routers)
		rows[i].Transfers = len(ds.Transfers)
	}
	fmt.Fprintf(w, "%-8s %-5s %-9s %12s %12s %7s %10s\n",
		"Trace", "Type", "Collector", "Packets", "Bytes", "Rtrs", "Transfers")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-5s %-9s %12d %12d %7d %10d\n",
			r.Name, r.Type, r.Collector, r.Packets, r.Bytes, r.Routers, r.Transfers)
	}
	return rows
}

// Table2Row counts one observed transport problem on the slow sample.
type Table2Row struct {
	Observation string
	Cause       string
	Num         int
}

// Table2 inspects the slow-transfer sample (µ+3σ per router, paper §II-B)
// and counts the transport problems found there. Peer-group cases come from
// the dedicated scenario runs (they need two coupled connections).
func Table2(w io.Writer, s *Suite, peerGroupCases int) []Table2Row {
	header(w, "Table II: observed transport problems (slow-transfer sample)")
	sample := slowSample(s)
	gaps, consec := 0, 0
	for _, t := range sample {
		if t.Report.Timer != nil {
			gaps++
		}
		if t.Report.ConsecLoss.Episodes > 0 {
			consec++
		}
	}
	rows := []Table2Row{
		{"Gaps in table transfers", "Timer implementation [15]", gaps},
		{"Consecutive retransmission", "Bursty BGP dynamics [22]", consec},
		{"BGP peer-group blocking", "BGP scaling feature [37]", peerGroupCases},
	}
	fmt.Fprintf(w, "(sample: %d slow transfers)\n", len(sample))
	fmt.Fprintf(w, "%-28s %-28s %5s\n", "Observation", "Potential Cause", "Num")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-28s %5d\n", r.Observation, r.Cause, r.Num)
	}
	return rows
}

// slowSample picks, per router, transfers slower than mean+3σ (or the
// slowest when none qualify) across all datasets — the paper's sampling
// rule.
func slowSample(s *Suite) []*AnalyzedTransfer {
	var out []*AnalyzedTransfer
	for _, ds := range s.Datasets {
		byRouter := map[int][]int{}
		for i, t := range ds.Transfers {
			byRouter[t.Router.ID] = append(byRouter[t.Router.ID], i)
		}
		// Visit routers in ID order, not map order, so the sampled-transfer
		// table is deterministic.
		routers := make([]int, 0, len(byRouter))
		for id := range byRouter {
			routers = append(routers, id)
		}
		sort.Ints(routers)
		for _, id := range routers {
			idxs := byRouter[id]
			durs := make([]float64, len(idxs))
			for j, i := range idxs {
				durs[j] = ds.Transfers[i].Duration()
			}
			for _, j := range stats.SlowOutliers(durs, 3) {
				out = append(out, &ds.Transfers[idxs[j]])
			}
		}
	}
	return out
}

// Table3Row is one delayed BGP update of the retransmission example.
type Table3Row struct {
	TimestampSec float64
	DelaySec     float64
	Prefixes     int
}

// Table3 reproduces the retransmission-delay example (paper Table III): a
// lossy transfer where updates written simultaneously by the router arrive
// seconds apart at the receiving BGP.
func Table3(w io.Writer, seed int64) []Table3Row {
	header(w, "Table III: retransmission delay of BGP updates (example transfer)")
	tr := tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindDownstreamLoss, Seed: seed, Routes: 20_000, LossRate: 0.12,
	})
	if len(tr.Archive) == 0 {
		fmt.Fprintln(w, "(no archive)")
		return nil
	}
	// Find the largest stall in update arrivals, then list arrivals after it
	// with their delay relative to the stall start (the router had already
	// queued them when the loss hit).
	var stallIdx int
	var stallLen Micros
	for i := 1; i < len(tr.Archive); i++ {
		if g := tr.Archive[i].Time - tr.Archive[i-1].Time; g > stallLen {
			stallLen, stallIdx = g, i
		}
	}
	base := tr.Archive[stallIdx-1].Time
	var rows []Table3Row
	var lastT Micros = -1
	for i := stallIdx; i < len(tr.Archive) && len(rows) < 8; i++ {
		e := tr.Archive[i]
		if e.Time == lastT {
			continue
		}
		lastT = e.Time
		rows = append(rows, Table3Row{
			TimestampSec: float64(e.Time) / 1e6,
			DelaySec:     float64(e.Time-base) / 1e6,
		})
	}
	fmt.Fprintf(w, "%-14s %-10s\n", "Timestamp(s)", "Delay(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14.3f %-10.3f\n", r.TimestampSec, r.DelaySec)
	}
	return rows
}

// Table4Result is the major-factor distribution (paper Table IV).
type Table4Result struct {
	Names     [3]string
	Transfers [3]int
	// Major counts per group.
	SenderLimited   [3]int
	ReceiverLimited [3]int
	NetworkLimited  [3]int
	Unknown         [3]int
	// Breakdown: dominant member factor among transfers where the group is
	// major.
	SenderApp  [3]int
	SenderCwnd [3]int
	RecvApp    [3]int
	RecvWindow [3]int
	RecvLoss   [3]int
	NetBw      [3]int
	NetLoss    [3]int
}

// Table4 classifies every transfer with the paper's 30% major-factor rule.
func Table4(w io.Writer, s *Suite) *Table4Result {
	header(w, "Table IV: distribution of major delay factors (threshold 30%)")
	res := &Table4Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		res.Transfers[i] = len(ds.Transfers)
		for _, t := range ds.Transfers {
			rep := t.Report.Factors
			if rep.Unknown() {
				res.Unknown[i]++
				continue
			}
			for _, g := range rep.MajorGroups {
				switch g {
				case factors.GroupSender:
					res.SenderLimited[i]++
					switch rep.DominantFactor[g] {
					case factors.SenderApp:
						res.SenderApp[i]++
					case factors.SenderCwnd:
						res.SenderCwnd[i]++
					}
				case factors.GroupReceiver:
					res.ReceiverLimited[i]++
					switch rep.DominantFactor[g] {
					case factors.ReceiverApp:
						res.RecvApp[i]++
					case factors.ReceiverWindow:
						res.RecvWindow[i]++
					case factors.ReceiverLocalLoss:
						res.RecvLoss[i]++
					}
				case factors.GroupNetwork:
					res.NetworkLimited[i]++
					switch rep.DominantFactor[g] {
					case factors.NetBandwidth:
						res.NetBw[i]++
					case factors.NetLoss:
						res.NetLoss[i]++
					}
				}
			}
		}
	}
	row := func(label string, v [3]int) {
		fmt.Fprintf(w, "%-26s %10d %10d %10d\n", label, v[0], v[1], v[2])
	}
	fmt.Fprintf(w, "%-26s %10s %10s %10s\n", "", res.Names[0], res.Names[1], res.Names[2])
	row("Table Transfers", res.Transfers)
	row("Sender-side limited", res.SenderLimited)
	row("Receiver-side limited", res.ReceiverLimited)
	row("Network limited", res.NetworkLimited)
	row("Unknown", res.Unknown)
	fmt.Fprintln(w, "Breakdown of Sender-side factor group")
	row("  BGP sender app", res.SenderApp)
	row("  TCP congestion window", res.SenderCwnd)
	fmt.Fprintln(w, "Breakdown of Receiver-side factor group")
	row("  BGP receiver app", res.RecvApp)
	row("  TCP advertised window", res.RecvWindow)
	row("  Local packet loss", res.RecvLoss)
	fmt.Fprintln(w, "Breakdown of Network factor group")
	row("  Bandwidth limited", res.NetBw)
	row("  Network packet loss", res.NetLoss)
	return res
}

// Table5Result counts the identified problems and their average induced
// delay per dataset (paper Table V).
type Table5Result struct {
	Names [3]string
	// Counts and average seconds.
	GapTransfers  [3]int
	GapAvgSec     [3]float64
	ConsTransfers [3]int
	ConsAvgSec    [3]float64
	PGCases       [3]int
	PGAvgSec      [3]float64
}

// Table5 quantifies the §II problems across all transfers, plus the
// peer-group blocking runs (pgPerDataset scenarios each).
func Table5(w io.Writer, s *Suite, pgPerDataset int) *Table5Result {
	header(w, "Table V: identified problems and average induced delays")
	res := &Table5Result{}
	for i, ds := range s.Datasets {
		res.Names[i] = ds.Name
		var gapDelay, consDelay float64
		for _, t := range ds.Transfers {
			if t.Report.Timer != nil {
				res.GapTransfers[i]++
				gapDelay += float64(t.Report.Timer.InducedDelay) / 1e6
			}
			if t.Report.ConsecLoss.Episodes > 0 {
				res.ConsTransfers[i]++
				consDelay += float64(t.Report.ConsecLoss.InducedDelay) / 1e6
			}
		}
		if res.GapTransfers[i] > 0 {
			res.GapAvgSec[i] = gapDelay / float64(res.GapTransfers[i])
		}
		if res.ConsTransfers[i] > 0 {
			res.ConsAvgSec[i] = consDelay / float64(res.ConsTransfers[i])
		}
		// Peer-group blocking: dedicated coupled-connection scenarios. Hold
		// times follow the deployments (ISP_A 180 s, RouteViews 120 s).
		hold := Micros(180_000_000)
		if i == 2 {
			hold = 120_000_000
		}
		var pgDelay float64
		for k := 0; k < pgPerDataset; k++ {
			pg := tracegen.RunPeerGroup(s.Scale.Seed+int64(i*100+k), 20_000,
				Micros(1+k)*1_000_000, hold)
			healthy := analyzeTrace(pg.Healthy)
			faulty := analyzeTrace(pg.Faulty)
			if healthy == nil || faulty == nil {
				continue
			}
			if det, ok := detect.PeerGroupBlocking(healthy.Catalog, faulty.Catalog, 0); ok {
				res.PGCases[i]++
				pgDelay += float64(det.LongestPause) / 1e6
			}
		}
		if res.PGCases[i] > 0 {
			res.PGAvgSec[i] = pgDelay / float64(res.PGCases[i])
		}
	}
	fmt.Fprintf(w, "%-36s %18s %18s %18s\n", "", res.Names[0], res.Names[1], res.Names[2])
	fmt.Fprintf(w, "%-36s", "Gaps in table transfers")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, " %6d %6.2f(sec)", res.GapTransfers[i], res.GapAvgSec[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s", "Consecutive losses")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, " %6d %6.2f(sec)", res.ConsTransfers[i], res.ConsAvgSec[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s", "BGP peer-group blocking (upon resets)")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, " %6d %6.2f(sec)", res.PGCases[i], res.PGAvgSec[i])
	}
	fmt.Fprintln(w)
	return res
}

// analyzeTrace runs the analyzer over one trace's capture, returning the
// single transfer report or nil.
func analyzeTrace(tr *tracegen.Trace) *core.TransferReport {
	rep := core.New(core.Config{}).AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 1 {
		return nil
	}
	return rep.Transfers[0]
}

// seriesSizeSeconds is a helper used by the ZeroAckBug audit.
func seriesSizeSeconds(t *AnalyzedTransfer, n series.Name) float64 {
	return float64(t.Report.Catalog.Get(n).Size()) / 1e6
}

package experiments

import (
	"fmt"
	"io"

	"tdat/internal/core"
	"tdat/internal/tcpsim"
	"tdat/internal/tracegen"
)

// StackRobustness runs every pathology kind under every sender stack and
// scores the dominant-group verdict against ground truth. The analyzer's
// delay-factor model was built against the paper's Reno-era traces; this
// table measures how much of the attribution survives senders the model
// never assumed — CUBIC growth, rate pacing, SACK recovery, and the two
// deliberately buggy receivers.
type StackRobustnessRow struct {
	Stack   tcpsim.Stack
	Trials  int
	Correct int
	// PerKind maps kind → "correct/trials" for the detailed table.
	Correctness []StackKindScore
}

// StackKindScore is one (stack, kind) cell.
type StackKindScore struct {
	Kind    tracegen.Kind
	Trials  int
	Correct int
}

// StackRobustness computes the table rows.
func StackRobustness(seed int64, perKind int) []StackRobustnessRow {
	kinds := []tracegen.Kind{
		tracegen.KindPaced, tracegen.KindSlowReceiver, tracegen.KindSmallWindow,
		tracegen.KindUpstreamLoss, tracegen.KindDownstreamLoss, tracegen.KindBandwidth,
	}
	analyzer := core.New(core.Config{})

	var rows []StackRobustnessRow
	for _, st := range tcpsim.AllStacks() {
		row := StackRobustnessRow{Stack: st}
		for _, k := range kinds {
			cell := StackKindScore{Kind: k}
			for i := 0; i < perKind; i++ {
				sc := tracegen.Scenario{
					Kind: k, Seed: seed + int64(i)*101, Routes: 8_000 + i*2_000,
					Stack: st,
				}
				switch k {
				case tracegen.KindPaced:
					sc.PacingTimer = []Micros{100_000, 200_000, 400_000}[i%3]
				case tracegen.KindSmallWindow:
					sc.RTT = 30_000
				case tracegen.KindBandwidth:
					sc.UpstreamRate = 60_000
				}
				tr := tracegen.Run(sc)
				rep := analyzer.AnalyzePackets(tr.Packets())
				if len(rep.Transfers) != 1 {
					continue
				}
				cell.Trials++
				if g, _ := rep.Transfers[0].Factors.Dominant(); g == expectedGroup(k) {
					cell.Correct++
				}
			}
			row.Trials += cell.Trials
			row.Correct += cell.Correct
			row.Correctness = append(row.Correctness, cell)
		}
		rows = append(rows, row)
	}
	return rows
}

// StackRobustnessTable prints the per-stack attribution matrix: one row per
// sender stack, one column per pathology kind, each cell correct/trials.
func StackRobustnessTable(w io.Writer, seed int64, perKind int) {
	header(w, "Attribution robustness across sender stacks (correct/trials)")
	rows := StackRobustness(seed, perKind)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s", "stack")
	for _, c := range rows[0].Correctness {
		fmt.Fprintf(w, " %15s", c.Kind)
	}
	fmt.Fprintf(w, " %9s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Stack)
		for _, c := range r.Correctness {
			fmt.Fprintf(w, " %11d/%-3d", c.Correct, c.Trials)
		}
		fmt.Fprintf(w, " %5d/%-3d\n", r.Correct, r.Trials)
	}
	fmt.Fprintln(w, "(reno is the model's home turf; drops below it mark Reno-specific")
	fmt.Fprintln(w, " inferences — see DESIGN.md §16 and scripts/validatefloor.txt)")
}

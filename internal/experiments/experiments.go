// Package experiments regenerates every table and figure of the paper's
// evaluation from synthetic datasets: it runs the tracegen dataset profiles
// through the full T-DAT pipeline and prints the same rows and series the
// paper reports (Tables I–V, Figures 3–17). Absolute numbers reflect the
// reproduction scale documented in EXPERIMENTS.md; the qualitative shape —
// which factors dominate where — is the claim under test.
package experiments

import (
	"fmt"
	"io"

	"tdat/internal/bgp"
	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/timerange"
	"tdat/internal/tracegen"
)

// archiveUpdates converts a trace's collector archive to MCT updates.
func archiveUpdates(tr *tracegen.Trace) []mct.Update {
	var out []mct.Update
	for _, e := range tr.Archive {
		m, err := bgp.Parse(e.Raw)
		if err != nil {
			continue
		}
		if u, ok := m.(*bgp.Update); ok && len(u.NLRI) > 0 {
			out = append(out, mct.Update{Time: e.Time, Prefixes: u.NLRI})
		}
	}
	return out
}

// Micros aliases the simulator time unit.
type Micros = timerange.Micros

// Scale sets the reproduction size. The paper's datasets have 10396/436/94
// transfers; the default scale keeps the same ordering at laptop runtimes.
type Scale struct {
	VendorTransfers int
	QuaggaTransfers int
	RVTransfers     int
	VendorRouters   int
	QuaggaRouters   int
	RVRouters       int
	Seed            int64
	// Workers sizes the per-transfer generate+analyze pool (0 means
	// GOMAXPROCS, 1 strictly sequential). Every worker count yields the
	// same suite: scenario draws are sequential (tracegen.Picks) and each
	// simulation is seeded per transfer.
	Workers int
}

// DefaultScale is used by cmd/experiments and the benchmarks.
func DefaultScale() Scale {
	return Scale{
		VendorTransfers: 240, VendorRouters: 24,
		QuaggaTransfers: 120, QuaggaRouters: 27,
		RVTransfers: 94, RVRouters: 40, // RV transfer count is paper-exact
		Seed: 42,
	}
}

// FullScale is the paper-exact dataset size (Table I: 10396/436/94
// transfers). The suite takes ~10 minutes and a few GB on one core;
// RunDataset strips packet payloads after analysis to keep that bounded.
func FullScale() Scale {
	return Scale{
		VendorTransfers: 10396, VendorRouters: 24,
		QuaggaTransfers: 436, QuaggaRouters: 27,
		RVTransfers: 94, RVRouters: 59,
		Seed: 42,
	}
}

// QuickScale is a fast smoke-test scale for unit tests.
func QuickScale() Scale {
	return Scale{
		VendorTransfers: 14, VendorRouters: 5,
		QuaggaTransfers: 10, QuaggaRouters: 4,
		RVTransfers: 8, RVRouters: 4,
		Seed: 7,
	}
}

// AnalyzedTransfer pairs a generated transfer with its analyzer verdict.
type AnalyzedTransfer struct {
	Router tracegen.Router
	Kind   tracegen.Kind
	Report *core.TransferReport
	// GroundDuration is the simulator's true transfer time.
	GroundDuration Micros
	// Packets and Bytes describe the capture volume.
	Packets int
	Bytes   int64
}

// Duration returns the analyzer-estimated transfer duration in seconds.
func (a *AnalyzedTransfer) Duration() float64 {
	return float64(a.Report.Duration()) / 1e6
}

// Dataset is one fully generated and analyzed dataset.
type Dataset struct {
	Name      string
	Profile   tracegen.DatasetProfile
	Transfers []AnalyzedTransfer
}

// RunDataset generates and analyzes one dataset profile on a GOMAXPROCS-
// wide worker pool. Quagga-style profiles (UseArchive) pin the transfer
// end from the collector's BGP archive, vendor-style ones recover it from
// the packet payload via reassembly — the two pipelines of paper §II-A.
func RunDataset(p tracegen.DatasetProfile) *Dataset {
	return RunDatasetWorkers(p, 0)
}

// RunDatasetWorkers is RunDataset with an explicit worker count (0 means
// GOMAXPROCS). Transfers are drawn sequentially (tracegen.Picks), then
// each pick's simulate+analyze runs on the pool; results merge in pick
// order, so the dataset is identical for every worker count.
func RunDatasetWorkers(p tracegen.DatasetProfile, workers int) *Dataset {
	ds := &Dataset{Name: p.Name, Profile: p}
	// Transfers parallelize across the pool; each transfer is a single
	// connection, so its own analysis stays sequential.
	analyzer := core.New(core.Config{Workers: 1})
	results := core.MapOrdered(workers, p.Picks(), func(pk tracegen.Pick) *AnalyzedTransfer {
		tr := tracegen.RunWithProfile(pk.Scenario, p)
		pkts := tr.Packets()
		var rep *core.Report
		if p.UseArchive {
			conns := flows.Extract(pkts)
			rep = &core.Report{}
			for _, c := range conns {
				rep.Transfers = append(rep.Transfers,
					analyzer.AnalyzeConnectionWithUpdates(c, archiveUpdates(tr)))
			}
		} else {
			rep = analyzer.AnalyzePackets(pkts)
		}
		if len(rep.Transfers) != 1 {
			return nil // malformed capture; skip (counted as tcpdump artifact)
		}
		at := &AnalyzedTransfer{
			Router:         pk.Router,
			Kind:           tr.Kind,
			Report:         rep.Transfers[0],
			GroundDuration: tr.GroundDuration,
			Packets:        len(pkts),
		}
		for _, c := range tr.Captures {
			at.Bytes += int64(c.Pkt.WireLen())
		}
		// Analysis is done; drop payload bytes so retaining thousands of
		// analyzed transfers (the full paper scale) stays within memory.
		for _, rt := range rep.Transfers {
			for i := range rt.Conn.Data {
				rt.Conn.Data[i].Payload = nil
			}
		}
		return at
	})
	for _, at := range results {
		if at != nil {
			ds.Transfers = append(ds.Transfers, *at)
		}
	}
	return ds
}

// Suite is the full three-dataset reproduction, shared across experiments.
type Suite struct {
	Scale    Scale
	Datasets []*Dataset // Vendor, Quagga, RV
}

// RunSuite generates and analyzes all three datasets, spreading transfers
// over s.Workers goroutines.
func RunSuite(s Scale) *Suite {
	return &Suite{
		Scale: s,
		Datasets: []*Dataset{
			RunDatasetWorkers(tracegen.ISPAVendor(s.VendorTransfers, s.VendorRouters, s.Seed), s.Workers),
			RunDatasetWorkers(tracegen.ISPAQuagga(s.QuaggaTransfers, s.QuaggaRouters, s.Seed+1), s.Workers),
			RunDatasetWorkers(tracegen.RouteViews(s.RVTransfers, s.RVRouters, s.Seed+2), s.Workers),
		},
	}
}

// Vendor, Quagga, RV return the respective datasets.
func (s *Suite) Vendor() *Dataset { return s.Datasets[0] }

// Quagga returns the ISP_A Quagga dataset.
func (s *Suite) Quagga() *Dataset { return s.Datasets[1] }

// RV returns the RouteViews dataset.
func (s *Suite) RV() *Dataset { return s.Datasets[2] }

// header prints a boxed experiment title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// dominantGroup returns the transfer's dominant factor group.
func dominantGroup(a *AnalyzedTransfer) factors.Group {
	g, _ := a.Report.Factors.Dominant()
	return g
}

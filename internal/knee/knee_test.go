package knee

import (
	"math/rand"
	"testing"
)

func TestFindOnSharpElbow(t *testing.T) {
	// y = 0 for x < 50, then y rises steeply: knee near 50.
	var pts []Point
	for i := 0; i < 100; i++ {
		y := 0.0
		if i >= 50 {
			y = float64(i-50) * 10
		}
		pts = append(pts, Point{X: float64(i), Y: y})
	}
	idx, ok := Find(pts)
	if !ok {
		t.Fatal("no knee found")
	}
	if idx < 40 || idx > 60 {
		t.Errorf("knee index = %d, want ≈50", idx)
	}
}

func TestFindTooShort(t *testing.T) {
	if _, ok := Find([]Point{{0, 0}, {1, 1}, {2, 2}}); ok {
		t.Error("found knee in 3 points")
	}
}

func TestKneeValue(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 100}, {5, 200}, {6, 300}}
	v, ok := KneeValue(pts)
	if !ok {
		t.Fatal("no knee")
	}
	if v < 2 || v > 4 {
		t.Errorf("knee X = %v, want ≈3", v)
	}
}

func TestGapKneeDetectsTimer(t *testing.T) {
	// Paced sender: ~50% sub-millisecond intra-burst gaps, ~50% gaps at the
	// 200 ms timer with jitter.
	rnd := rand.New(rand.NewSource(1))
	var gaps []float64
	for i := 0; i < 60; i++ {
		gaps = append(gaps, rnd.Float64()*800)               // 0–0.8 ms
		gaps = append(gaps, 200_000+rnd.Float64()*8000-4000) // ≈200 ms ±4 ms
	}
	timer, ok := GapKnee(gaps, 3)
	if !ok {
		t.Fatal("timer not detected")
	}
	if timer < 180_000 || timer > 220_000 {
		t.Errorf("timer = %v µs, want ≈200000", timer)
	}
}

func TestGapKneeRejectsSmoothDistribution(t *testing.T) {
	// RTT-dominated gaps around 10 ms with mild noise: no timer step.
	rnd := rand.New(rand.NewSource(2))
	var gaps []float64
	for i := 0; i < 100; i++ {
		gaps = append(gaps, 9_000+rnd.Float64()*2_000)
	}
	if timer, ok := GapKnee(gaps, 3); ok {
		t.Errorf("false timer %v detected in smooth distribution", timer)
	}
}

func TestGapKneeRejectsTinyInput(t *testing.T) {
	if _, ok := GapKnee([]float64{1, 2, 3}, 3); ok {
		t.Error("detected timer in 3 gaps")
	}
}

func TestGapKneeMinorityTimer(t *testing.T) {
	// Even when timer gaps are only ~30% of the distribution, the step
	// should be found.
	rnd := rand.New(rand.NewSource(3))
	var gaps []float64
	for i := 0; i < 70; i++ {
		gaps = append(gaps, rnd.Float64()*1000)
	}
	for i := 0; i < 30; i++ {
		gaps = append(gaps, 100_000+rnd.Float64()*4000)
	}
	timer, ok := GapKnee(gaps, 3)
	if !ok {
		t.Fatal("timer not detected")
	}
	if timer < 90_000 || timer > 110_000 {
		t.Errorf("timer = %v, want ≈100000", timer)
	}
}

func TestFitRMSEPerfectLine(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	if got := fitRMSE(pts); got > 1e-9 {
		t.Errorf("RMSE of perfect line = %v", got)
	}
	if got := fitRMSE(pts[:1]); got != 0 {
		t.Errorf("RMSE of single point = %v", got)
	}
	// Vertical degenerate input must not divide by zero.
	if got := fitRMSE([]Point{{1, 0}, {1, 10}}); got < 0 {
		t.Errorf("degenerate RMSE = %v", got)
	}
}

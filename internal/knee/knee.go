// Package knee implements the L-method of Salvador & Chan ("Determining the
// number of clusters/segments in hierarchical clustering/segmentation
// algorithms", ICTAI 2004), which T-DAT uses to find the knee of a
// sorted-gap-length curve and thereby infer BGP pacing-timer values
// (paper §IV-B, Fig 17).
//
// The L-method fits two straight lines to the left and right portions of an
// evaluation curve and picks the split point minimizing the total weighted
// RMSE; the split is the knee.
package knee

import (
	"math"
	"sort"
)

// Point is one sample of the evaluation graph.
type Point struct {
	X float64
	Y float64
}

// fitRMSE returns the root-mean-square error of the least-squares line
// through pts.
func fitRMSE(pts []Point) float64 {
	n := float64(len(pts))
	if len(pts) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	var slope, icept float64
	if den != 0 {
		slope = (n*sxy - sx*sy) / den
		icept = (sy - slope*sx) / n
	} else {
		icept = sy / n
	}
	var se float64
	for _, p := range pts {
		d := p.Y - (slope*p.X + icept)
		se += d * d
	}
	return math.Sqrt(se / n)
}

// Find locates the knee of the curve and returns its index; ok is false when
// the curve is too short (< 4 points) to split.
func Find(pts []Point) (idx int, ok bool) {
	n := len(pts)
	if n < 4 {
		return 0, false
	}
	best := math.Inf(1)
	bestIdx := -1
	// Split c is the last index of the left segment; both segments need at
	// least two points.
	for c := 1; c < n-2; c++ {
		left := pts[:c+1]
		right := pts[c+1:]
		lw := float64(len(left)) / float64(n)
		rw := float64(len(right)) / float64(n)
		total := lw*fitRMSE(left) + rw*fitRMSE(right)
		if total < best {
			best = total
			bestIdx = c
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	return bestIdx, true
}

// KneeValue runs Find and returns the X value at the knee.
func KneeValue(pts []Point) (float64, bool) {
	idx, ok := Find(pts)
	if !ok {
		return 0, false
	}
	return pts[idx].X, true
}

// GapKnee sorts gap lengths ascending, builds the evaluation curve
// (rank → gap length), and returns the knee gap value — the inferred timer.
// It reports ok=false when there are too few gaps or the curve has no
// meaningful bend (the knee explains < minJump× the median gap).
func GapKnee(gaps []float64, minJump float64) (float64, bool) {
	if len(gaps) < 8 {
		return 0, false
	}
	s := append([]float64(nil), gaps...)
	sort.Float64s(s)
	pts := make([]Point, len(s))
	for i, g := range s {
		pts[i] = Point{X: float64(i), Y: g}
	}
	idx, ok := Find(pts)
	if !ok {
		return 0, false
	}
	// Report the characteristic plateau value: the median of the gaps above
	// the knee, which is more robust than the exact knee sample.
	tail := s[idx+1:]
	if len(tail) == 0 {
		return 0, false
	}
	tailMed := tail[len(tail)/2]
	below := s[:idx+1]
	belowMed := below[len(below)/2]
	// A real pacing timer produces a sharp step: the plateau must stand well
	// clear of the gaps below the knee. A smooth (RTT-dominated)
	// distribution has tailMed ≈ belowMed and is rejected. The floor keeps
	// sub-100 µs transmission jitter from faking a step.
	if belowMed < 100 {
		belowMed = 100
	}
	if tailMed < minJump*belowMed {
		return 0, false
	}
	return tailMed, true
}

// Package explain records the structured evidence behind every detection
// and factor attribution the analyzer makes. The paper's contribution is
// *explaining* slow transfers; this package makes the analyzer explain
// itself: each rule that fires (or is vetoed) leaves an Evidence record —
// the rule identifier, the measurements it compared, the thresholds it
// applied, and the timerange intervals that contributed — so a verdict like
// "bgp-sender-app 0.82" can be traced back to the exact idle gaps that
// produced it without re-deriving the analysis by hand.
//
// Evidence capture is optional and nil-safe in the same style as
// internal/obs: a nil *Recorder makes every method a no-op, so the
// explain-off hot path costs one pointer test and zero allocations
// (regression-gated by the benchfloor allocs/op ceilings). Recording is a
// pure function of the connection — no clocks, no map iteration into
// output — so the rendered evidence is byte-identical at any worker×shard
// count and with observability on or off.
package explain

import (
	"fmt"
	"io"
	"strconv"

	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// KV is one named scalar measurement or threshold. Values render with
// strconv.FormatFloat 'g' precision, which is deterministic.
type KV struct {
	K string  `json:"k"`
	V float64 `json:"v"`
}

// Span is one contributing time range (µs since capture epoch).
type Span struct {
	Start Micros `json:"start_us"`
	End   Micros `json:"end_us"`
}

// MaxRanges caps how many ranges one IntervalSet carries verbatim; the
// Count and SizeMicros fields always describe the full set, so capping
// loses locality detail but never totals.
const MaxRanges = 8

// IntervalSet is a named set of contributing intervals — a series, a
// numerator, an exclusion — with its full size and count even when the
// enumerated ranges are capped at MaxRanges.
type IntervalSet struct {
	Name       string `json:"name"`
	SizeMicros Micros `json:"size_us"`
	Count      int    `json:"count"`
	Ranges     []Span `json:"ranges,omitempty"`
}

// Capture snapshots a timerange set as an IntervalSet, keeping at most
// MaxRanges enumerated ranges.
func Capture(name string, s *timerange.Set) IntervalSet {
	out := IntervalSet{Name: name}
	if s == nil {
		return out
	}
	ranges := s.Ranges()
	out.Count = len(ranges)
	out.SizeMicros = s.Size()
	n := len(ranges)
	if n > MaxRanges {
		n = MaxRanges
	}
	if n > 0 {
		out.Ranges = make([]Span, n)
		for i := 0; i < n; i++ {
			out.Ranges[i] = Span{Start: ranges[i].Start, End: ranges[i].End}
		}
	}
	return out
}

// Rule outcomes. "fired" means the rule detected what it hunts; "scored"
// means it produced a ratio or measurement; "rejected" means its inputs
// failed a qualification threshold; "vetoed" means a counter-signal
// suppressed an otherwise-matching detection.
const (
	OutcomeFired    = "fired"
	OutcomeScored   = "scored"
	OutcomeRejected = "rejected"
	OutcomeVetoed   = "vetoed"
)

// Evidence is the structured record behind one rule evaluation.
type Evidence struct {
	// Rule identifies the rule, namespaced by package:
	// "series.bandwidth-limited", "factors.ratio/bgp-sender-app",
	// "detect.timer-gaps", ...
	Rule string `json:"rule"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Score is the rule's scalar result (a ratio, a timer period in µs, an
	// episode count — the rule documents its unit in Detail).
	Score float64 `json:"score"`
	// Inputs are the measurements the rule compared.
	Inputs []KV `json:"inputs,omitempty"`
	// Thresholds are the cutoffs it compared them against.
	Thresholds []KV `json:"thresholds,omitempty"`
	// Intervals are the time ranges that contributed (numerators,
	// exclusions, matched gaps).
	Intervals []IntervalSet `json:"intervals,omitempty"`
	// Detail is a one-line human rendering of the decision.
	Detail string `json:"detail,omitempty"`
}

// Recorder accumulates Evidence for one connection's analysis. The nil
// Recorder is the disabled fast path: Enabled reports false and every
// method is a no-op, so instrumented code guards evidence construction with
// one pointer test.
type Recorder struct {
	ev []Evidence
}

// New creates an enabled Recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether evidence is being captured; callers use it to
// skip building Evidence values nobody will read.
func (r *Recorder) Enabled() bool { return r != nil }

// Add appends one evidence record. No-op on a nil Recorder.
func (r *Recorder) Add(e Evidence) {
	if r == nil {
		return
	}
	r.ev = append(r.ev, e)
}

// Evidence returns the records in the order they were added (nil on a nil
// Recorder).
func (r *Recorder) Evidence() []Evidence {
	if r == nil {
		return nil
	}
	return r.ev
}

// fmtF renders a float deterministically and compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// fmtSec renders a µs quantity in seconds with ms resolution.
func fmtSec(m Micros) string { return strconv.FormatFloat(float64(m)/1e6, 'f', 3, 64) + "s" }

// WriteText renders evidence records human-readably and deterministically:
// one block per record, fields in fixed order, indented under prefix.
func WriteText(w io.Writer, prefix string, evs []Evidence) error {
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%s[%s] %s score=%s", prefix, e.Rule, e.Outcome, fmtF(e.Score)); err != nil {
			return err
		}
		if e.Detail != "" {
			if _, err := fmt.Fprintf(w, " — %s", e.Detail); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		if len(e.Inputs) > 0 {
			fmt.Fprintf(w, "%s  inputs:", prefix)
			for _, kv := range e.Inputs {
				fmt.Fprintf(w, " %s=%s", kv.K, fmtF(kv.V))
			}
			fmt.Fprintln(w)
		}
		if len(e.Thresholds) > 0 {
			fmt.Fprintf(w, "%s  thresholds:", prefix)
			for _, kv := range e.Thresholds {
				fmt.Fprintf(w, " %s=%s", kv.K, fmtF(kv.V))
			}
			fmt.Fprintln(w)
		}
		for _, is := range e.Intervals {
			fmt.Fprintf(w, "%s  intervals %s: n=%d size=%s", prefix, is.Name, is.Count, fmtSec(is.SizeMicros))
			if len(is.Ranges) > 0 {
				fmt.Fprint(w, " [")
				for i, r := range is.Ranges {
					if i > 0 {
						fmt.Fprint(w, " ")
					}
					fmt.Fprintf(w, "%s-%s", fmtSec(r.Start), fmtSec(r.End))
				}
				if is.Count > len(is.Ranges) {
					fmt.Fprintf(w, " +%d more", is.Count-len(is.Ranges))
				}
				fmt.Fprint(w, "]")
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

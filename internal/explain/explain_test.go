package explain

import (
	"strings"
	"testing"

	"tdat/internal/timerange"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil Recorder reports enabled")
	}
	r.Add(Evidence{Rule: "x"})
	if ev := r.Evidence(); ev != nil {
		t.Fatalf("nil Recorder returned evidence: %v", ev)
	}
}

func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			r.Add(Evidence{Rule: "never"})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f/op, want 0", allocs)
	}
}

func TestRecorderOrder(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("New Recorder not enabled")
	}
	r.Add(Evidence{Rule: "a"})
	r.Add(Evidence{Rule: "b"})
	r.Add(Evidence{Rule: "c"})
	ev := r.Evidence()
	if len(ev) != 3 || ev[0].Rule != "a" || ev[1].Rule != "b" || ev[2].Rule != "c" {
		t.Fatalf("evidence out of order: %v", ev)
	}
}

func TestCapture(t *testing.T) {
	if got := Capture("nil", nil); got.Count != 0 || got.SizeMicros != 0 || got.Ranges != nil {
		t.Fatalf("nil set capture: %+v", got)
	}
	s := timerange.NewSet()
	for i := 0; i < 2*MaxRanges; i++ {
		start := timerange.Micros(i * 100)
		s.Add(timerange.R(start, start+10))
	}
	got := Capture("many", s)
	if got.Count != 2*MaxRanges {
		t.Fatalf("Count = %d, want %d", got.Count, 2*MaxRanges)
	}
	if got.SizeMicros != timerange.Micros(2*MaxRanges*10) {
		t.Fatalf("SizeMicros = %d, want %d", got.SizeMicros, 2*MaxRanges*10)
	}
	if len(got.Ranges) != MaxRanges {
		t.Fatalf("len(Ranges) = %d, want cap %d", len(got.Ranges), MaxRanges)
	}
	if got.Ranges[0] != (Span{Start: 0, End: 10}) {
		t.Fatalf("first range = %+v", got.Ranges[0])
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	evs := []Evidence{
		{
			Rule: "series.bandwidth-limited", Outcome: OutcomeVetoed, Score: 0,
			Inputs:     []KV{{K: "ser_mss_us", V: 130000}, {K: "rtt_us", V: 30000}},
			Thresholds: []KV{{K: "max_ser_rtt", V: 4}},
			Detail:     "pacing veto",
		},
		{
			Rule: "factors.ratio/bgp-sender-app", Outcome: OutcomeScored, Score: 0.8125,
			Intervals: []IntervalSet{Capture("SendAppLimited",
				timerange.NewSet(timerange.R(1_000_000, 2_500_000)))},
		},
	}
	var a, b strings.Builder
	if err := WriteText(&a, "  ", evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&b, "  ", evs); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteText not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"[series.bandwidth-limited] vetoed score=0 — pacing veto",
		"inputs: ser_mss_us=130000 rtt_us=30000",
		"thresholds: max_ser_rtt=4",
		"[factors.ratio/bgp-sender-app] scored score=0.8125",
		"intervals SendAppLimited: n=1 size=1.500s [1.000s-2.500s]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

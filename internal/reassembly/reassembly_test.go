package reassembly

import (
	"net/netip"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/packet"
)

var (
	sndEP = flows.Endpoint{Addr: netip.MustParseAddr("10.0.0.1"), Port: 179}
	rcvEP = flows.Endpoint{Addr: netip.MustParseAddr("10.0.0.2"), Port: 41000}
)

// bgpStream builds a serialized stream of n updates plus a leading OPEN and
// KEEPALIVE, returning the bytes and the message count.
func bgpStream(t *testing.T, n int) []byte {
	t.Helper()
	var stream []byte
	open := &bgp.Open{AS: 7018, HoldTime: 180, Identifier: netip.MustParseAddr("10.0.0.1")}
	raw, err := open.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, raw...)
	raw, _ = (&bgp.Keepalive{}).Marshal()
	stream = append(stream, raw...)
	attrs := &bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: []uint16{7018}, NextHop: netip.MustParseAddr("10.0.0.9")}
	for i := 0; i < n; i++ {
		u := &bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{
			netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24),
		}}
		raw, err := u.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, raw...)
	}
	return stream
}

// segment turns stream bytes into TimedPackets of fixed size, returning
// them in the given order permutation.
func packetsFor(stream []byte, segSize int, times func(i int) flows.Micros) []flows.TimedPacket {
	var pkts []flows.TimedPacket
	isn := uint32(1000)
	for i, off := 0, 0; off < len(stream); i, off = i+1, off+segSize {
		end := off + segSize
		if end > len(stream) {
			end = len(stream)
		}
		p := &packet.Packet{
			IP: packet.IPv4{ID: uint16(i + 1), Src: sndEP.Addr, Dst: rcvEP.Addr},
			TCP: packet.TCP{
				SrcPort: sndEP.Port, DstPort: rcvEP.Port,
				Seq: isn + 1 + uint32(off), Ack: 1, Flags: packet.FlagACK, Window: 65535,
			},
			Payload: append([]byte(nil), stream[off:end]...),
		}
		pkts = append(pkts, flows.TimedPacket{Time: times(i), Pkt: p})
	}
	return pkts
}

func extractOne(t *testing.T, pkts []flows.TimedPacket) *flows.Connection {
	t.Helper()
	conns := flows.Extract(pkts)
	if len(conns) != 1 {
		t.Fatalf("extracted %d connections", len(conns))
	}
	return conns[0]
}

func TestReassembleInOrder(t *testing.T) {
	stream := bgpStream(t, 20)
	pkts := packetsFor(stream, 700, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	res, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamBytes != int64(len(stream)) {
		t.Errorf("stream bytes = %d, want %d", res.StreamBytes, len(stream))
	}
	if len(res.Messages) != 22 { // OPEN + KEEPALIVE + 20 updates
		t.Fatalf("messages = %d, want 22", len(res.Messages))
	}
	if _, ok := res.Messages[0].Msg.(*bgp.Open); !ok {
		t.Errorf("first message = %T", res.Messages[0].Msg)
	}
	updates := 0
	for _, m := range res.Messages {
		if _, ok := m.Msg.(*bgp.Update); ok {
			updates++
		}
	}
	if updates != 20 {
		t.Errorf("updates = %d", updates)
	}
	if len(res.MissingRanges) != 0 {
		t.Errorf("missing ranges = %v", res.MissingRanges)
	}
	// Timestamps non-decreasing for in-order arrival.
	for i := 1; i < len(res.Messages); i++ {
		if res.Messages[i].Time < res.Messages[i-1].Time {
			t.Fatalf("message %d time regressed", i)
		}
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	stream := bgpStream(t, 30)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	// Swap two adjacent packets' arrival order (times swapped too).
	if len(pkts) < 4 {
		t.Fatal("not enough packets for the swap")
	}
	pkts[1].Time, pkts[2].Time = pkts[2].Time, pkts[1].Time
	res, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamBytes != int64(len(stream)) {
		t.Errorf("stream bytes = %d, want %d", res.StreamBytes, len(stream))
	}
	if len(res.Messages) != 32 {
		t.Errorf("messages = %d, want 32", len(res.Messages))
	}
}

func TestReassembleWithRetransmissions(t *testing.T) {
	stream := bgpStream(t, 30)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	// Duplicate packet 3 later in time (a retransmission the receiver also
	// saw).
	dup := *pkts[3].Pkt
	pkts = append(pkts, flows.TimedPacket{Time: 900_000, Pkt: &dup})
	res, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamBytes != int64(len(stream)) {
		t.Errorf("stream bytes = %d", res.StreamBytes)
	}
	if len(res.Messages) != 32 {
		t.Errorf("messages = %d, want 32", len(res.Messages))
	}
}

func TestReassembleReportsHoles(t *testing.T) {
	stream := bgpStream(t, 30)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	// Remove a middle packet entirely (sniffer drop, never retransmitted in
	// the capture).
	missingStart := int64(2 * 200)
	pkts = append(pkts[:2], pkts[3:]...)
	res, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if res.StreamBytes != missingStart {
		t.Errorf("contiguous bytes = %d, want %d", res.StreamBytes, missingStart)
	}
	if len(res.MissingRanges) != 1 || res.MissingRanges[0].Start != missingStart {
		t.Errorf("missing = %v", res.MissingRanges)
	}
	// Only messages wholly inside the contiguous prefix decode.
	for _, m := range res.Messages {
		if m.Raw == nil {
			t.Error("nil raw message")
		}
	}
}

func TestReassembleEmptyConnection(t *testing.T) {
	c := &flows.Connection{}
	res, err := Reassemble(c)
	if err != nil || len(res.Messages) != 0 || res.StreamBytes != 0 {
		t.Errorf("empty reassembly: %+v err=%v", res, err)
	}
}

func TestReassembleGarbageStream(t *testing.T) {
	// Payload bytes that are not BGP: framing error reported, no panic.
	junk := make([]byte, 100)
	for i := range junk {
		junk[i] = byte(i)
	}
	pkts := packetsFor(junk, 50, func(i int) flows.Micros { return flows.Micros(i) })
	_, err := Reassemble(extractOne(t, pkts))
	if err == nil {
		t.Error("garbage stream reassembled without error")
	}
}

func TestReassembleLimitedTruncates(t *testing.T) {
	// A byte cap below the stream size: decoding covers only the capped
	// prefix and the excess is reported, not silently dropped.
	stream := bgpStream(t, 20)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) })
	c := extractOne(t, pkts)
	full, err := Reassemble(c)
	if err != nil {
		t.Fatal(err)
	}
	cap := full.StreamBytes / 2
	res, err := ReassembleLimited(c, cap)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruncatedBytes != full.StreamBytes-cap {
		t.Errorf("TruncatedBytes = %d, want %d", res.TruncatedBytes, full.StreamBytes-cap)
	}
	if len(res.Messages) == 0 || len(res.Messages) >= len(full.Messages) {
		t.Errorf("capped decode recovered %d of %d messages", len(res.Messages), len(full.Messages))
	}
	if !res.LooksLikeBGP {
		t.Error("BGP stream not recognized as BGP")
	}
}

func TestReassembleNonBGPNotFlagged(t *testing.T) {
	// A connection carrying something other than BGP: the framing error is
	// expected, and LooksLikeBGP must stay false so callers can tell
	// "damaged BGP" from "not BGP at all".
	payload := make([]byte, 64) // zeros: no marker, framing fails
	pkts := packetsFor(payload, 64, func(i int) flows.Micros { return flows.Micros(i) })
	res, err := ReassembleLimited(extractOne(t, pkts), 0)
	if err == nil {
		t.Fatal("zero-filled stream framed as BGP")
	}
	if res.LooksLikeBGP {
		t.Error("zero-filled stream flagged as BGP")
	}
}

// Package reassembly reconstructs the sender→receiver TCP byte stream of an
// extracted connection, tolerating out-of-order delivery and
// retransmissions, and extracts the BGP messages it carries. This is the
// core of the paper's pcap2bgp side tool (§II-A): for vendor collectors
// that keep no MRT archive, it recovers the BGP message stream (with
// arrival timestamps) straight from the packet trace.
package reassembly

import (
	"bytes"
	"fmt"
	"sort"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// Message is one BGP message recovered from the stream, stamped with the
// arrival time of the packet that completed it.
type Message struct {
	Time timerange.Micros
	Msg  bgp.Message
	Raw  []byte
}

// Result is the reassembly outcome for one connection.
type Result struct {
	Messages []Message
	// StreamBytes is the number of contiguous stream bytes recovered from
	// offset zero.
	StreamBytes int64
	// MissingRanges lists sequence ranges never captured (tcpdump drops or
	// pre-capture history); decoding stops at the first persistent hole so
	// framing is never guessed.
	MissingRanges []timerange.Range
	// TruncatedBytes counts recovered contiguous bytes beyond the caller's
	// byte cap that were left undecoded — the lenient resource cap a
	// corrupt-sequence capture cannot blow past.
	TruncatedBytes int64
	// LooksLikeBGP reports that the recovered stream opens with the BGP
	// synchronization marker (or decoded at least one message): a framing
	// error then means a damaged BGP transfer, not some other protocol on
	// the wire.
	LooksLikeBGP bool
}

// span records when the stream bytes up to end first became available.
type span struct {
	end  int64
	time timerange.Micros
}

// Reassemble rebuilds the byte stream of c and splits it into BGP messages.
func Reassemble(c *flows.Connection) (*Result, error) {
	return ReassembleLimited(c, 0)
}

// ReassembleLimited is Reassemble with a cap on the linearized stream:
// at most maxBytes of the contiguous prefix are materialized and decoded
// (0 means unlimited). A hostile capture whose sequence numbers claim a
// multi-gigabyte contiguous stream then costs at most maxBytes of memory;
// what the cap cut off is reported in Result.TruncatedBytes.
func ReassembleLimited(c *flows.Connection, maxBytes int64) (*Result, error) {
	type seg struct {
		data []byte
		time timerange.Micros
	}
	segs := map[int64]seg{} // start offset → first-arrival segment
	covered := timerange.NewSet()
	var limit int64
	for _, d := range c.Data {
		if d.Len == 0 {
			continue
		}
		// First arrival wins: retransmissions carry identical bytes.
		if _, ok := segs[d.Seq]; !ok {
			payload := d.Payload
			if payload == nil {
				payload = make([]byte, d.Len) // length-only traces
			}
			segs[d.Seq] = seg{data: payload, time: d.Time}
		}
		covered.Add(timerange.R(d.Seq, d.SeqEnd))
		if d.SeqEnd > limit {
			limit = d.SeqEnd
		}
	}

	res := &Result{}
	if limit == 0 {
		return res, nil
	}
	contig := int64(0)
	if covered.Len() > 0 && covered.At(0).Start == 0 {
		contig = covered.At(0).End
	}
	res.StreamBytes = contig
	res.MissingRanges = covered.Complement(timerange.R(0, limit)).Ranges()
	if maxBytes > 0 && contig > maxBytes {
		res.TruncatedBytes = contig - maxBytes
		contig = maxBytes
	}

	// Linearize the contiguous prefix, remembering per-segment arrival
	// boundaries for message timestamping.
	stream := make([]byte, contig)
	spans := make([]span, 0, len(segs))
	for off, s := range segs {
		if off >= contig {
			continue
		}
		end := off + int64(len(s.data))
		if end > contig {
			end = contig
		}
		copy(stream[off:end], s.data[:end-off])
		spans = append(spans, span{end: end, time: s.time})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].end < spans[j].end })

	res.LooksLikeBGP = len(stream) >= len(bgpMarker) && bytes.Equal(stream[:len(bgpMarker)], bgpMarker)

	// Split into BGP messages.
	msgs, consumed, err := bgp.SplitStream(stream)
	if err != nil {
		return res, fmt.Errorf("reassembly: BGP framing at offset %d: %w", consumed, err)
	}
	off := int64(0)
	for _, m := range msgs {
		length := int64(uint16(stream[off+16])<<8 | uint16(stream[off+17]))
		raw := append([]byte(nil), stream[off:off+length]...)
		res.Messages = append(res.Messages, Message{
			Time: timeAt(spans, off+length),
			Msg:  m,
			Raw:  raw,
		})
		off += length
	}
	return res, nil
}

// timeAt returns the arrival time of the segment containing stream position
// pos-1, i.e. when the message ending at pos became complete.
func timeAt(spans []span, pos int64) timerange.Micros {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end >= pos })
	if i < len(spans) {
		return spans[i].time
	}
	if len(spans) > 0 {
		return spans[len(spans)-1].time
	}
	return 0
}

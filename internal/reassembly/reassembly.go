// Package reassembly reconstructs the sender→receiver TCP byte stream of an
// extracted connection, tolerating out-of-order delivery and
// retransmissions, and extracts the BGP messages it carries. This is the
// core of the paper's pcap2bgp side tool (§II-A): for vendor collectors
// that keep no MRT archive, it recovers the BGP message stream (with
// arrival timestamps) straight from the packet trace.
package reassembly

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// Message is one BGP message recovered from the stream, stamped with the
// arrival time of the packet that completed it.
type Message struct {
	Time timerange.Micros
	Msg  bgp.Message
	Raw  []byte
}

// Result is the reassembly outcome for one connection.
type Result struct {
	Messages []Message
	// StreamBytes is the number of contiguous stream bytes recovered from
	// offset zero.
	StreamBytes int64
	// MissingRanges lists sequence ranges never captured (tcpdump drops or
	// pre-capture history); decoding stops at the first persistent hole so
	// framing is never guessed.
	MissingRanges []timerange.Range
	// TruncatedBytes counts recovered contiguous bytes beyond the caller's
	// byte cap that were left undecoded — the lenient resource cap a
	// corrupt-sequence capture cannot blow past.
	TruncatedBytes int64
	// LooksLikeBGP reports that the recovered stream opens with the BGP
	// synchronization marker (or decoded at least one message): a framing
	// error then means a damaged BGP transfer, not some other protocol on
	// the wire.
	LooksLikeBGP bool
}

// span records when the stream bytes up to end first became available.
type span struct {
	end  int64
	time timerange.Micros
}

// Options tunes batch reassembly; the zero value matches Reassemble.
type Options struct {
	// MaxBytes caps the linearized contiguous prefix (0 means unlimited);
	// the overflow is reported in Result.TruncatedBytes.
	MaxBytes int64
	// KeepRaw populates Message.Raw with a private copy of each message's
	// wire bytes. The analyzer's MCT path only reads the parsed messages,
	// so it leaves this off and skips one stream-sized set of copies per
	// connection; tools that re-emit wire bytes (pcap2bgp, MRT conversion)
	// turn it on.
	KeepRaw bool
}

// Reassemble rebuilds the byte stream of c and splits it into BGP messages.
func Reassemble(c *flows.Connection) (*Result, error) {
	return ReassembleOpts(c, Options{KeepRaw: true})
}

// ReassembleLimited is Reassemble with a cap on the linearized stream:
// at most maxBytes of the contiguous prefix are materialized and decoded
// (0 means unlimited). A hostile capture whose sequence numbers claim a
// multi-gigabyte contiguous stream then costs at most maxBytes of memory;
// what the cap cut off is reported in Result.TruncatedBytes.
func ReassembleLimited(c *flows.Connection, maxBytes int64) (*Result, error) {
	return ReassembleOpts(c, Options{MaxBytes: maxBytes, KeepRaw: true})
}

// seg is one first-arrival payload at a stream offset.
type seg struct {
	off  int64
	data []byte
	time timerange.Micros
}

// streamPool recycles the linearization buffer across connections: the
// parsed messages never alias it (bgp.Parse copies what it keeps, Raw is an
// explicit copy), so each buffer can be handed to the next connection once
// its result is built.
var streamPool = sync.Pool{New: func() any { return new([]byte) }}

// getStream returns a buffer of length n, zeroed unless the caller promises
// to overwrite every byte. Zeroing matters when coverage has holes: a longer
// duplicate of a segment start may have been deduplicated away, and bytes
// only the duplicate covered must read as zero — the same bytes a freshly
// allocated buffer would have shown.
func getStream(n int64, fullyCovered bool) *[]byte {
	bp := streamPool.Get().(*[]byte)
	if int64(cap(*bp)) < n {
		*bp = make([]byte, n)
		return bp
	}
	*bp = (*bp)[:n]
	if !fullyCovered {
		clear(*bp)
	}
	return bp
}

// ReassembleOpts is Reassemble with explicit options.
func ReassembleOpts(c *flows.Connection, opts Options) (*Result, error) {
	firstAt := make(map[int64]struct{}, len(c.Data))
	segs := make([]seg, 0, len(c.Data))
	covered := timerange.NewSet()
	var limit int64
	for i := range c.Data {
		d := &c.Data[i]
		if d.Len == 0 {
			continue
		}
		// First arrival wins: retransmissions carry identical bytes.
		if _, ok := firstAt[d.Seq]; !ok {
			firstAt[d.Seq] = struct{}{}
			payload := d.Payload
			if payload == nil {
				payload = make([]byte, d.Len) // length-only traces
			}
			segs = append(segs, seg{off: d.Seq, data: payload, time: d.Time})
		}
		covered.Add(timerange.R(d.Seq, d.SeqEnd))
		if d.SeqEnd > limit {
			limit = d.SeqEnd
		}
	}

	res := &Result{}
	if limit == 0 {
		return res, nil
	}
	contig := int64(0)
	if covered.Len() > 0 && covered.At(0).Start == 0 {
		contig = covered.At(0).End
	}
	res.StreamBytes = contig
	res.MissingRanges = covered.Complement(timerange.R(0, limit)).Ranges()
	if opts.MaxBytes > 0 && contig > opts.MaxBytes {
		res.TruncatedBytes = contig - opts.MaxBytes
		contig = opts.MaxBytes
	}

	// Linearize the contiguous prefix, remembering per-segment arrival
	// boundaries for message timestamping. Segments are copied in ascending
	// offset order (they usually already are — capture order), not map
	// order, so overlapping segments with inconsistent payloads in an
	// adversarial trace still linearize deterministically.
	sorted := true
	for i := 1; i < len(segs); i++ {
		if segs[i].off < segs[i-1].off {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.SliceStable(segs, func(i, j int) bool { return segs[i].off < segs[j].off })
	}
	// The copy loop below overwrites every byte of [0, contig) iff the kept
	// first-arrival segments leave no hole — the usual case, which lets
	// getStream skip zeroing a recycled buffer.
	var keptTo int64
	for _, s := range segs {
		if s.off > keptTo {
			break
		}
		if end := s.off + int64(len(s.data)); end > keptTo {
			keptTo = end
		}
	}
	streamBuf := getStream(contig, keptTo >= contig)
	stream := *streamBuf
	spans := make([]span, 0, len(segs))
	for _, s := range segs {
		if s.off >= contig {
			continue
		}
		end := s.off + int64(len(s.data))
		if end > contig {
			end = contig
		}
		copy(stream[s.off:end], s.data[:end-s.off])
		spans = append(spans, span{end: end, time: s.time})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].end < spans[j].end })

	res.LooksLikeBGP = len(stream) >= len(bgpMarker) && bytes.Equal(stream[:len(bgpMarker)], bgpMarker)

	// Split into BGP messages.
	msgs, consumed, err := bgp.SplitStream(stream)
	if err != nil {
		streamPool.Put(streamBuf)
		return res, fmt.Errorf("reassembly: BGP framing at offset %d: %w", consumed, err)
	}
	res.Messages = make([]Message, 0, len(msgs))
	off := int64(0)
	for _, m := range msgs {
		length := int64(uint16(stream[off+16])<<8 | uint16(stream[off+17]))
		var raw []byte
		if opts.KeepRaw {
			raw = append([]byte(nil), stream[off:off+length]...)
		}
		res.Messages = append(res.Messages, Message{
			Time: timeAt(spans, off+length),
			Msg:  m,
			Raw:  raw,
		})
		off += length
	}
	streamPool.Put(streamBuf)
	return res, nil
}

// timeAt returns the arrival time of the segment containing stream position
// pos-1, i.e. when the message ending at pos became complete.
func timeAt(spans []span, pos int64) timerange.Micros {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end >= pos })
	if i < len(spans) {
		return spans[i].time
	}
	if len(spans) > 0 {
		return spans[len(spans)-1].time
	}
	return 0
}

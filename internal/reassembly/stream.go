package reassembly

import (
	"errors"
	"fmt"

	"tdat/internal/bgp"
	"tdat/internal/packet"
	"tdat/internal/timerange"
)

// ErrBufferLimit reports that a stream buffered too much out-of-order or
// undecoded data (a capture hole that never fills).
var ErrBufferLimit = errors.New("reassembly: buffer limit exceeded")

// DefaultStreamLimit bounds per-stream buffering (out-of-order plus
// undecoded contiguous bytes).
const DefaultStreamLimit = 4 << 20

// Stream is the online (single-pass) reassembler behind pcap2bgp's live
// mode: feed it one direction's packets in capture order and it emits each
// BGP message as soon as the bytes completing it arrive, tolerating
// out-of-order delivery and retransmissions.
type Stream struct {
	emit func(Message)
	// Limit bounds buffered bytes (0 selects DefaultStreamLimit).
	Limit int

	haveISN bool
	isn     uint32
	next    int64            // next expected payload offset
	ooo     map[int64][]byte // out-of-order segments by offset
	oooLen  int
	buf     []byte // contiguous bytes not yet framed
}

// NewStream creates a Stream delivering completed messages to emit.
func NewStream(emit func(Message)) *Stream {
	return &Stream{emit: emit, ooo: map[int64][]byte{}}
}

// Packet feeds one sender-direction packet captured at time t. A SYN pins
// the initial sequence number; without one, the first payload packet
// anchors the stream (mid-capture start).
func (s *Stream) Packet(t timerange.Micros, p *packet.Packet) error {
	if p.TCP.HasFlag(packet.FlagSYN) {
		s.haveISN = true
		s.isn = p.TCP.Seq
		return nil
	}
	if len(p.Payload) == 0 {
		return nil
	}
	if !s.haveISN {
		s.haveISN = true
		s.isn = p.TCP.Seq - 1
	}
	off := int64(int32(p.TCP.Seq - s.isn - 1))
	return s.segment(t, off, p.Payload)
}

// segment integrates payload at stream offset off.
func (s *Stream) segment(t timerange.Micros, off int64, payload []byte) error {
	end := off + int64(len(payload))
	if end <= s.next {
		return nil // pure retransmission of delivered bytes
	}
	if off > s.next {
		// Hold out of order (first copy wins).
		if _, dup := s.ooo[off]; !dup {
			cp := append([]byte(nil), payload...)
			s.ooo[off] = cp
			s.oooLen += len(cp)
			if s.oooLen+len(s.buf) > s.limit() {
				return fmt.Errorf("%w: %d bytes held at a hole before offset %d",
					ErrBufferLimit, s.oooLen, s.next)
			}
		}
		return nil
	}
	// Overlapping or contiguous: append the new part.
	s.buf = append(s.buf, payload[s.next-off:]...)
	s.next = end
	// Drain any now-contiguous held segments.
	for {
		found := false
		for o, seg := range s.ooo {
			segEnd := o + int64(len(seg))
			if segEnd <= s.next {
				delete(s.ooo, o)
				s.oooLen -= len(seg)
				found = true
				break
			}
			if o <= s.next {
				s.buf = append(s.buf, seg[s.next-o:]...)
				s.next = segEnd
				delete(s.ooo, o)
				s.oooLen -= len(seg)
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	return s.frame(t)
}

// frame splits completed BGP messages out of the contiguous buffer.
func (s *Stream) frame(t timerange.Micros) error {
	msgs, consumed, err := bgp.SplitStream(s.buf)
	if err != nil {
		return fmt.Errorf("reassembly: online framing: %w", err)
	}
	off := 0
	for _, m := range msgs {
		length := int(uint16(s.buf[off+16])<<8 | uint16(s.buf[off+17]))
		raw := append([]byte(nil), s.buf[off:off+length]...)
		off += length
		s.emit(Message{Time: t, Msg: m, Raw: raw})
	}
	s.buf = append(s.buf[:0], s.buf[consumed:]...)
	if len(s.buf)+s.oooLen > s.limit() {
		return fmt.Errorf("%w: %d undecodable bytes buffered", ErrBufferLimit, len(s.buf))
	}
	return nil
}

// PendingHole reports whether the stream is stalled behind a sequence hole
// and how many bytes wait beyond it.
func (s *Stream) PendingHole() (bool, int) { return s.oooLen > 0, s.oooLen }

func (s *Stream) limit() int {
	if s.Limit > 0 {
		return s.Limit
	}
	return DefaultStreamLimit
}

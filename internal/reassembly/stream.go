package reassembly

import (
	"bytes"
	"errors"
	"fmt"

	"tdat/internal/bgp"
	"tdat/internal/packet"
	"tdat/internal/timerange"
)

// ErrBufferLimit reports that a stream buffered too much out-of-order or
// undecoded data (a capture hole that never fills).
var ErrBufferLimit = errors.New("reassembly: buffer limit exceeded")

// DefaultStreamLimit bounds per-stream buffering (out-of-order plus
// undecoded contiguous bytes).
const DefaultStreamLimit = 4 << 20

// Stream is the online (single-pass) reassembler behind pcap2bgp's live
// mode: feed it one direction's packets in capture order and it emits each
// BGP message as soon as the bytes completing it arrive, tolerating
// out-of-order delivery and retransmissions.
type Stream struct {
	emit func(Message)
	// Limit bounds buffered bytes (0 selects DefaultStreamLimit).
	Limit int
	// Evict selects the lenient over-limit policy: instead of failing with
	// ErrBufferLimit, the stream abandons its oldest hole — the partial
	// message stalled in front of it and the skipped sequence range are
	// discarded, decoding resynchronizes at the next BGP marker, and the
	// damage is tallied in Evicted. Framing errors (a message header lying
	// about its length) resynchronize the same way. Off by default, so
	// existing fail-fast callers are unchanged.
	Evict bool

	haveISN bool
	isn     uint32
	next    int64            // next expected payload offset
	ooo     map[int64][]byte // out-of-order segments by offset
	oooLen  int
	buf     []byte // contiguous bytes not yet framed

	evictions    int
	evictedBytes int64
}

// Evicted reports the lenient-mode damage tally: how many times the stream
// abandoned a hole or resynchronized past corrupt framing, and how many
// stream bytes were discarded doing so. Both stay zero unless Evict is set.
func (s *Stream) Evicted() (events int, streamBytes int64) {
	return s.evictions, s.evictedBytes
}

// NewStream creates a Stream delivering completed messages to emit.
func NewStream(emit func(Message)) *Stream {
	return &Stream{emit: emit, ooo: map[int64][]byte{}}
}

// Packet feeds one sender-direction packet captured at time t. A SYN pins
// the initial sequence number; without one, the first payload packet
// anchors the stream (mid-capture start).
func (s *Stream) Packet(t timerange.Micros, p *packet.Packet) error {
	if p.TCP.HasFlag(packet.FlagSYN) {
		s.haveISN = true
		s.isn = p.TCP.Seq
		return nil
	}
	if len(p.Payload) == 0 {
		return nil
	}
	if !s.haveISN {
		s.haveISN = true
		s.isn = p.TCP.Seq - 1
	}
	off := int64(int32(p.TCP.Seq - s.isn - 1))
	return s.segment(t, off, p.Payload)
}

// segment integrates payload at stream offset off.
func (s *Stream) segment(t timerange.Micros, off int64, payload []byte) error {
	end := off + int64(len(payload))
	if end <= s.next {
		return nil // pure retransmission of delivered bytes
	}
	if off > s.next {
		// Hold out of order (first copy wins).
		if _, dup := s.ooo[off]; !dup {
			cp := append([]byte(nil), payload...)
			s.ooo[off] = cp
			s.oooLen += len(cp)
			if s.oooLen+len(s.buf) > s.limit() {
				if !s.Evict {
					return fmt.Errorf("%w: %d bytes held at a hole before offset %d",
						ErrBufferLimit, s.oooLen, s.next)
				}
				// Abandon holes oldest-first until buffering fits again;
				// each round frees the skipped range plus whatever frames
				// out of the segments the skip made contiguous.
				for s.oooLen+len(s.buf) > s.limit() && s.oooLen > 0 {
					s.evictOldestHole()
					s.drain()
					if err := s.frame(t); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	// Overlapping or contiguous: append the new part.
	s.buf = append(s.buf, payload[s.next-off:]...)
	s.next = end
	s.drain()
	return s.frame(t)
}

// drain splices any held segments the contiguous frontier has reached.
// Candidates are consumed in ascending offset order — not map order — so
// that when an adversarial trace retransmits overlapping segments with
// inconsistent payloads, the reassembled bytes (and therefore the report)
// are still deterministic.
func (s *Stream) drain() {
	for {
		best := int64(-1)
		for o := range s.ooo {
			if o <= s.next && (best < 0 || o < best) {
				best = o
			}
		}
		if best < 0 {
			return
		}
		seg := s.ooo[best]
		if segEnd := best + int64(len(seg)); segEnd > s.next {
			s.buf = append(s.buf, seg[s.next-best:]...)
			s.next = segEnd
		}
		delete(s.ooo, best)
		s.oooLen -= len(seg)
	}
}

// evictOldestHole abandons the stream in front of the oldest held segment:
// the un-framed partial message in buf can never complete (its missing
// bytes are exactly the hole being given up on), so it is discarded along
// with the skipped sequence range, and the stream resumes at the earliest
// held offset.
func (s *Stream) evictOldestHole() {
	min := int64(-1)
	for o := range s.ooo {
		if min < 0 || o < min {
			min = o
		}
	}
	if min < s.next {
		return
	}
	s.evictions++
	s.evictedBytes += (min - s.next) + int64(len(s.buf))
	s.buf = s.buf[:0]
	s.next = min
}

// bgpMarker is the all-ones synchronization marker opening every BGP
// message header — the resync point lenient framing hunts for.
var bgpMarker = bytes.Repeat([]byte{0xFF}, 16)

// frame splits completed BGP messages out of the contiguous buffer. With
// Evict set, corrupt framing (a header lying about its length, or a buffer
// that resumed mid-message after a hole eviction) resynchronizes at the
// next marker instead of failing.
func (s *Stream) frame(t timerange.Micros) error {
	for {
		msgs, consumed, err := bgp.SplitStream(s.buf)
		off := 0
		for _, m := range msgs {
			length := int(uint16(s.buf[off+16])<<8 | uint16(s.buf[off+17]))
			raw := append([]byte(nil), s.buf[off:off+length]...)
			off += length
			s.emit(Message{Time: t, Msg: m, Raw: raw})
		}
		s.buf = append(s.buf[:0], s.buf[consumed:]...)
		if err == nil {
			break
		}
		if !s.Evict {
			return fmt.Errorf("reassembly: online framing: %w", err)
		}
		s.resync()
	}
	if !s.Evict && len(s.buf)+s.oooLen > s.limit() {
		return fmt.Errorf("%w: %d undecodable bytes buffered", ErrBufferLimit, len(s.buf))
	}
	return nil
}

// resync discards buffered bytes up to the next plausible message boundary,
// counting them as evicted: the message they belonged to can no longer be
// trusted. The damaged message's own (valid) marker is skipped before
// hunting, and a trailing partial run of marker bytes is kept in case the
// next boundary is split across packets.
func (s *Stream) resync() {
	s.evictions++
	search := s.buf
	if len(search) >= len(bgpMarker) && bytes.Equal(search[:len(bgpMarker)], bgpMarker) {
		search = search[len(bgpMarker):]
	}
	drop := len(s.buf)
	if i := bytes.Index(search, bgpMarker); i >= 0 {
		drop = len(s.buf) - len(search) + i
	} else {
		run := 0
		for run < len(bgpMarker)-1 && run < len(s.buf) && s.buf[len(s.buf)-1-run] == 0xFF {
			run++
		}
		drop = len(s.buf) - run
	}
	s.evictedBytes += int64(drop)
	s.buf = append(s.buf[:0], s.buf[drop:]...)
}

// PendingHole reports whether the stream is stalled behind a sequence hole
// and how many bytes wait beyond it.
func (s *Stream) PendingHole() (bool, int) { return s.oooLen > 0, s.oooLen }

func (s *Stream) limit() int {
	if s.Limit > 0 {
		return s.Limit
	}
	return DefaultStreamLimit
}

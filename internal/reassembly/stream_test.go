package reassembly

import (
	"errors"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/packet"
)

// feedStream pushes the builder's sender-direction packets through a Stream
// in slice order and returns the emitted messages.
func feedStream(t *testing.T, pkts []flows.TimedPacket) ([]Message, error) {
	t.Helper()
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	for _, tp := range pkts {
		if tp.Pkt.IP.Src != sndEP.Addr {
			continue
		}
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			return msgs, err
		}
	}
	return msgs, nil
}

func TestStreamInOrderEmitsIncrementally(t *testing.T) {
	stream := bgpStream(t, 20)
	pkts := packetsFor(stream, 300, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	emittedAfterHalf := 0
	for i, tp := range pkts {
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			t.Fatal(err)
		}
		if i == len(pkts)/2 {
			emittedAfterHalf = len(msgs)
		}
	}
	if len(msgs) != 22 {
		t.Fatalf("messages = %d, want 22", len(msgs))
	}
	if emittedAfterHalf == 0 || emittedAfterHalf == len(msgs) {
		t.Errorf("no incremental emission: %d after half, %d total", emittedAfterHalf, len(msgs))
	}
	// Message completion times must be non-decreasing.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Time < msgs[i-1].Time {
			t.Fatal("emission times regressed")
		}
	}
}

func TestStreamOutOfOrderAndRetransmission(t *testing.T) {
	stream := bgpStream(t, 30)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	// Swap two packets and duplicate another.
	pkts[2], pkts[3] = pkts[3], pkts[2]
	dup := *pkts[5].Pkt
	var reordered []flows.TimedPacket
	reordered = append(reordered, pkts...)
	reordered = append(reordered, flows.TimedPacket{Time: 999_000, Pkt: &dup})

	msgs, err := feedStream(t, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 32 {
		t.Errorf("messages = %d, want 32", len(msgs))
	}
	updates := 0
	for _, m := range msgs {
		if _, ok := m.Msg.(*bgp.Update); ok {
			updates++
		}
	}
	if updates != 30 {
		t.Errorf("updates = %d", updates)
	}
}

func TestStreamReportsPendingHole(t *testing.T) {
	stream := bgpStream(t, 10)
	pkts := packetsFor(stream, 100, func(i int) flows.Micros { return flows.Micros(i) })
	s := NewStream(func(Message) {})
	// Skip packet 1: a permanent hole.
	for i, tp := range pkts {
		if i == 1 {
			continue
		}
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	stalled, held := s.PendingHole()
	if !stalled || held == 0 {
		t.Errorf("stalled=%v held=%d", stalled, held)
	}
}

func TestStreamBufferLimit(t *testing.T) {
	stream := bgpStream(t, 60)
	pkts := packetsFor(stream, 100, func(i int) flows.Micros { return flows.Micros(i) })
	s := NewStream(func(Message) {})
	s.Limit = 512
	// Pin the ISN with a SYN so the skipped first segment leaves a real
	// hole that everything else queues behind.
	syn := &packet.Packet{
		IP:  packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP: packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 1000, Flags: packet.FlagSYN},
	}
	if err := s.Packet(0, syn); err != nil {
		t.Fatal(err)
	}
	var err error
	for i, tp := range pkts {
		if i == 0 {
			continue // hole at the very front: everything buffers
		}
		if err = s.Packet(tp.Time, tp.Pkt); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBufferLimit) {
		t.Errorf("err = %v, want ErrBufferLimit", err)
	}
}

func TestStreamMidCaptureAnchor(t *testing.T) {
	// No SYN: the first data packet anchors the stream.
	stream := bgpStream(t, 5)
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	p := &packet.Packet{
		IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP:     packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 5001, Flags: packet.FlagACK},
		Payload: stream,
	}
	if err := s.Packet(10, p); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 7 {
		t.Errorf("messages = %d, want 7", len(msgs))
	}
}

func TestStreamGarbageReportsFramingError(t *testing.T) {
	s := NewStream(func(Message) {})
	p := &packet.Packet{
		IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP:     packet.TCP{Seq: 1001, Flags: packet.FlagACK},
		Payload: make([]byte, 64),
	}
	if err := s.Packet(1, p); err == nil {
		t.Error("garbage stream framed without error")
	}
}

func TestStreamMatchesOfflineReassembly(t *testing.T) {
	// Property: online and offline reassembly recover the same messages.
	stream := bgpStream(t, 25)
	pkts := packetsFor(stream, 150, func(i int) flows.Micros { return flows.Micros(i) * 500 })
	pkts[4], pkts[5] = pkts[5], pkts[4]

	online, err := feedStream(t, pkts)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if len(online) != len(offline.Messages) {
		t.Fatalf("online %d vs offline %d messages", len(online), len(offline.Messages))
	}
	for i := range online {
		if string(online[i].Raw) != string(offline.Messages[i].Raw) {
			t.Fatalf("message %d differs between online and offline", i)
		}
	}
}

func TestStreamEvictAbandonsOldestHole(t *testing.T) {
	// Same permanent-hole flood as TestStreamBufferLimit, but with the
	// lenient policy: rather than failing, the stream abandons the hole,
	// resynchronizes at the next BGP marker, and keeps emitting.
	stream := bgpStream(t, 60)
	pkts := packetsFor(stream, 100, func(i int) flows.Micros { return flows.Micros(i) })
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	s.Limit = 512
	s.Evict = true
	syn := &packet.Packet{
		IP:  packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP: packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 1000, Flags: packet.FlagSYN},
	}
	if err := s.Packet(0, syn); err != nil {
		t.Fatal(err)
	}
	for i, tp := range pkts {
		if i == 0 {
			continue // hole at the very front: everything queues behind it
		}
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			t.Fatalf("lenient stream failed: %v", err)
		}
	}
	if len(msgs) == 0 {
		t.Error("no messages recovered past the abandoned hole")
	}
	events, lost := s.Evicted()
	if events == 0 || lost == 0 {
		t.Errorf("eviction not tallied: events=%d bytes=%d", events, lost)
	}
	if held, n := s.PendingHole(); held && n+len(stream) > 512+100 {
		t.Errorf("buffering still unbounded after eviction: %d held", n)
	}
}

func TestStreamEvictResyncsPastCorruptLength(t *testing.T) {
	// A message header lying about its length mid-stream: lenient framing
	// must skip to the next marker and recover the messages after it.
	stream := bgpStream(t, 10)
	stream[16] = 0xFF // first message now claims length 0xFF.. (> 4096)
	stream[17] = 0xF0
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	s.Evict = true
	p := &packet.Packet{
		IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP:     packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 1001, Flags: packet.FlagACK},
		Payload: stream,
	}
	if err := s.Packet(1, p); err != nil {
		t.Fatalf("lenient stream failed: %v", err)
	}
	if len(msgs) == 0 {
		t.Error("no messages recovered after the corrupt header")
	}
	events, lost := s.Evicted()
	if events == 0 || lost == 0 {
		t.Errorf("resync not tallied: events=%d bytes=%d", events, lost)
	}
}

func TestStreamEvictGarbageNeverFails(t *testing.T) {
	// Pure garbage under the lenient policy: nothing decodes, nothing
	// panics, nothing errors, and buffering stays bounded.
	s := NewStream(func(Message) {})
	s.Limit = 256
	s.Evict = true
	for i := 0; i < 64; i++ {
		payload := make([]byte, 64)
		for j := range payload {
			payload[j] = byte(i*7 + j)
		}
		p := &packet.Packet{
			IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
			TCP:     packet.TCP{Seq: uint32(1001 + i*64), Flags: packet.FlagACK},
			Payload: payload,
		}
		if err := s.Packet(flows.Micros(i), p); err != nil {
			t.Fatalf("lenient stream failed on garbage: %v", err)
		}
	}
	if events, _ := s.Evicted(); events == 0 {
		t.Error("garbage stream produced no resync events")
	}
}

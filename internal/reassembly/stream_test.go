package reassembly

import (
	"errors"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/flows"
	"tdat/internal/packet"
)

// feedStream pushes the builder's sender-direction packets through a Stream
// in slice order and returns the emitted messages.
func feedStream(t *testing.T, pkts []flows.TimedPacket) ([]Message, error) {
	t.Helper()
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	for _, tp := range pkts {
		if tp.Pkt.IP.Src != sndEP.Addr {
			continue
		}
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			return msgs, err
		}
	}
	return msgs, nil
}

func TestStreamInOrderEmitsIncrementally(t *testing.T) {
	stream := bgpStream(t, 20)
	pkts := packetsFor(stream, 300, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	emittedAfterHalf := 0
	for i, tp := range pkts {
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			t.Fatal(err)
		}
		if i == len(pkts)/2 {
			emittedAfterHalf = len(msgs)
		}
	}
	if len(msgs) != 22 {
		t.Fatalf("messages = %d, want 22", len(msgs))
	}
	if emittedAfterHalf == 0 || emittedAfterHalf == len(msgs) {
		t.Errorf("no incremental emission: %d after half, %d total", emittedAfterHalf, len(msgs))
	}
	// Message completion times must be non-decreasing.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Time < msgs[i-1].Time {
			t.Fatal("emission times regressed")
		}
	}
}

func TestStreamOutOfOrderAndRetransmission(t *testing.T) {
	stream := bgpStream(t, 30)
	pkts := packetsFor(stream, 200, func(i int) flows.Micros { return flows.Micros(i) * 1000 })
	// Swap two packets and duplicate another.
	pkts[2], pkts[3] = pkts[3], pkts[2]
	dup := *pkts[5].Pkt
	var reordered []flows.TimedPacket
	reordered = append(reordered, pkts...)
	reordered = append(reordered, flows.TimedPacket{Time: 999_000, Pkt: &dup})

	msgs, err := feedStream(t, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 32 {
		t.Errorf("messages = %d, want 32", len(msgs))
	}
	updates := 0
	for _, m := range msgs {
		if _, ok := m.Msg.(*bgp.Update); ok {
			updates++
		}
	}
	if updates != 30 {
		t.Errorf("updates = %d", updates)
	}
}

func TestStreamReportsPendingHole(t *testing.T) {
	stream := bgpStream(t, 10)
	pkts := packetsFor(stream, 100, func(i int) flows.Micros { return flows.Micros(i) })
	s := NewStream(func(Message) {})
	// Skip packet 1: a permanent hole.
	for i, tp := range pkts {
		if i == 1 {
			continue
		}
		if err := s.Packet(tp.Time, tp.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	stalled, held := s.PendingHole()
	if !stalled || held == 0 {
		t.Errorf("stalled=%v held=%d", stalled, held)
	}
}

func TestStreamBufferLimit(t *testing.T) {
	stream := bgpStream(t, 60)
	pkts := packetsFor(stream, 100, func(i int) flows.Micros { return flows.Micros(i) })
	s := NewStream(func(Message) {})
	s.Limit = 512
	// Pin the ISN with a SYN so the skipped first segment leaves a real
	// hole that everything else queues behind.
	syn := &packet.Packet{
		IP:  packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP: packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 1000, Flags: packet.FlagSYN},
	}
	if err := s.Packet(0, syn); err != nil {
		t.Fatal(err)
	}
	var err error
	for i, tp := range pkts {
		if i == 0 {
			continue // hole at the very front: everything buffers
		}
		if err = s.Packet(tp.Time, tp.Pkt); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBufferLimit) {
		t.Errorf("err = %v, want ErrBufferLimit", err)
	}
}

func TestStreamMidCaptureAnchor(t *testing.T) {
	// No SYN: the first data packet anchors the stream.
	stream := bgpStream(t, 5)
	var msgs []Message
	s := NewStream(func(m Message) { msgs = append(msgs, m) })
	p := &packet.Packet{
		IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP:     packet.TCP{SrcPort: sndEP.Port, DstPort: rcvEP.Port, Seq: 5001, Flags: packet.FlagACK},
		Payload: stream,
	}
	if err := s.Packet(10, p); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 7 {
		t.Errorf("messages = %d, want 7", len(msgs))
	}
}

func TestStreamGarbageReportsFramingError(t *testing.T) {
	s := NewStream(func(Message) {})
	p := &packet.Packet{
		IP:      packet.IPv4{Src: sndEP.Addr, Dst: rcvEP.Addr},
		TCP:     packet.TCP{Seq: 1001, Flags: packet.FlagACK},
		Payload: make([]byte, 64),
	}
	if err := s.Packet(1, p); err == nil {
		t.Error("garbage stream framed without error")
	}
}

func TestStreamMatchesOfflineReassembly(t *testing.T) {
	// Property: online and offline reassembly recover the same messages.
	stream := bgpStream(t, 25)
	pkts := packetsFor(stream, 150, func(i int) flows.Micros { return flows.Micros(i) * 500 })
	pkts[4], pkts[5] = pkts[5], pkts[4]

	online, err := feedStream(t, pkts)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Reassemble(extractOne(t, pkts))
	if err != nil {
		t.Fatal(err)
	}
	if len(online) != len(offline.Messages) {
		t.Fatalf("online %d vs offline %d messages", len(online), len(offline.Messages))
	}
	for i := range online {
		if string(online[i].Raw) != string(offline.Messages[i].Raw) {
			t.Fatalf("message %d differs between online and offline", i)
		}
	}
}

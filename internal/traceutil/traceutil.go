// Package traceutil builds synthetic packet captures for tests and
// examples: a tiny DSL over flows.TimedPacket that hand-crafts handshakes,
// data flights, ACKs, and pathologies with exact timing, without running
// the full simulator.
package traceutil

import (
	"fmt"
	"net/netip"

	"tdat/internal/flows"
	"tdat/internal/packet"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// Default endpoints used by the builder.
var (
	SenderEP   = flows.Endpoint{Addr: netip.MustParseAddr("10.0.0.1"), Port: 179}
	ReceiverEP = flows.Endpoint{Addr: netip.MustParseAddr("10.0.0.2"), Port: 41000}
)

// Builder accumulates packets for one or more connections.
type Builder struct {
	Pkts []flows.TimedPacket
	ipid uint16
	// MSS is used by convenience data helpers (default 1460).
	MSS int
}

// New creates a Builder.
func New() *Builder { return &Builder{MSS: 1460} }

// Add appends one packet with explicit fields and an auto-incremented IP ID.
func (b *Builder) Add(t Micros, from, to flows.Endpoint, seq, ack uint32, flags uint8, win uint16, payload int) *packet.Packet {
	b.ipid++
	p := &packet.Packet{
		IP: packet.IPv4{ID: b.ipid, Src: from.Addr, Dst: to.Addr},
		TCP: packet.TCP{
			SrcPort: from.Port, DstPort: to.Port,
			Seq: seq, Ack: ack, Flags: flags, Window: win,
		},
		Payload: make([]byte, payload),
	}
	b.Pkts = append(b.Pkts, flows.TimedPacket{Time: t, Pkt: p})
	return p
}

// Handshake emits SYN/SYNACK/ACK for a receiver-side sniffer: the SYNACK
// follows the SYN by d1 (sniffer→receiver hop, tiny) and the final ACK one
// RTT later, so flows estimates RTT ≈ rtt.
func (b *Builder) Handshake(t, rtt Micros, mss uint16) {
	syn := b.Add(t, SenderEP, ReceiverEP, 0, 0, packet.FlagSYN, 65535, 0)
	syn.TCP.SetMSS(mss)
	synack := b.Add(t+50, ReceiverEP, SenderEP, 0, 1, packet.FlagSYN|packet.FlagACK, 65535, 0)
	synack.TCP.SetMSS(mss)
	b.Add(t+50+rtt, SenderEP, ReceiverEP, 1, 1, packet.FlagACK, 65535, 0)
}

// Data emits one sender data packet whose payload starts at stream offset
// off (0-based; wire seq = off+1 with ISN 0).
func (b *Builder) Data(t Micros, off int64, n int) *packet.Packet {
	return b.Add(t, SenderEP, ReceiverEP, uint32(off)+1, 1, packet.FlagACK, 65535, n)
}

// Ack emits one receiver ACK covering the first acked stream bytes with the
// given advertised window.
func (b *Builder) Ack(t Micros, acked int64, win uint16) *packet.Packet {
	return b.Add(t, ReceiverEP, SenderEP, 1, uint32(acked)+1, packet.FlagACK, win, 0)
}

// Extract runs the flows pipeline and returns the single connection.
func (b *Builder) Extract() *flows.Connection {
	conns := flows.Extract(b.Pkts)
	if len(conns) != 1 {
		panic("traceutil: builder produced more than one connection")
	}
	return conns[0]
}

// SteadyTransfer appends a well-behaved ACK-clocked transfer: flights of
// `perFlight` MSS segments every rtt, each flight acked rtt after it is
// sent, for `flights` rounds starting at t0. It returns the time after the
// last ack.
func (b *Builder) SteadyTransfer(t0, rtt Micros, flights, perFlight int, win uint16) Micros {
	off := int64(0)
	t := t0
	for f := 0; f < flights; f++ {
		for p := 0; p < perFlight; p++ {
			b.Data(t+Micros(p)*100, off, b.MSS)
			off += int64(b.MSS)
		}
		b.Ack(t+rtt, off, win)
		t += rtt
	}
	return t
}

// Violation describes one TCP-sanity violation found in a capture.
type Violation struct {
	Time Micros
	Desc string
}

// CheckInvariants scans one connection's capture (both directions, time
// order) for protocol invariants every window-based TCP must uphold on the
// wire. It validates the simulator's output the way a skeptical reviewer
// would read a tcpdump: cumulative ACKs never regress, the sender never
// overruns the advertised window by more than one segment (the zero-window
// probe), and nothing is acknowledged before it was sent.
func CheckInvariants(pkts []flows.TimedPacket) []Violation {
	var out []Violation
	report := func(t Micros, format string, args ...any) {
		out = append(out, Violation{Time: t, Desc: fmt.Sprintf(format, args...)})
	}
	type dirState struct {
		haveISN  bool
		isn      uint32
		maxSent  int64 // highest payload offset sent
		maxAcked int64 // highest cumulative ack received (for this sender)
		mss      int64
	}
	states := map[[2]netip.AddrPort]*dirState{}
	key := func(src, dst netip.AddrPort) [2]netip.AddrPort { return [2]netip.AddrPort{src, dst} }
	get := func(k [2]netip.AddrPort) *dirState {
		st, ok := states[k]
		if !ok {
			st = &dirState{mss: 1460}
			states[k] = st
		}
		return st
	}
	rel := func(st *dirState, seq uint32) int64 { return int64(int32(seq - st.isn - 1)) }

	// peerWindow tracks the latest advertised limit (ack+win) per sender.
	peerLimit := map[[2]netip.AddrPort]int64{}

	for _, tp := range pkts {
		tcp := &tp.Pkt.TCP
		src := netip.AddrPortFrom(tp.Pkt.IP.Src, tcp.SrcPort)
		dst := netip.AddrPortFrom(tp.Pkt.IP.Dst, tcp.DstPort)
		fwd := get(key(src, dst)) // state of this packet's sender
		rev := get(key(dst, src)) // state of the opposite sender

		if tcp.HasFlag(packet.FlagSYN) {
			fwd.haveISN = true
			fwd.isn = tcp.Seq
			fwd.maxSent, fwd.maxAcked = 0, 0
			if m, ok := tcp.MSS(); ok {
				fwd.mss = int64(m)
			}
			peerLimit[key(dst, src)] = 0 // reset opposite sender's view
			continue
		}
		if tcp.HasFlag(packet.FlagRST) {
			continue
		}
		if !fwd.haveISN {
			fwd.haveISN = true
			fwd.isn = tcp.Seq - 1
		}
		if n := len(tp.Pkt.Payload); n > 0 {
			end := rel(fwd, tcp.Seq) + int64(n)
			if end > fwd.maxSent {
				fwd.maxSent = end
			}
			// Window overrun check against the last limit the peer granted
			// (one segment of slack for in-flight window updates plus the
			// 1-byte persist probe).
			if lim, ok := peerLimit[key(src, dst)]; ok && lim > 0 {
				if end > lim+fwd.mss {
					report(tp.Time, "sender %v overran advertised window: end=%d limit=%d", src, end, lim)
				}
			}
		}
		if tcp.HasFlag(packet.FlagACK) && rev.haveISN {
			ack := rel(rev, tcp.Ack)
			if ack < rev.maxAcked {
				report(tp.Time, "cumulative ack regressed for %v: %d < %d", dst, ack, rev.maxAcked)
			}
			if ack > rev.maxAcked {
				rev.maxAcked = ack
			}
			if ack > rev.maxSent+1 { // +1 for a FIN
				report(tp.Time, "%v acknowledged unsent data: ack=%d sent=%d", src, ack, rev.maxSent)
			}
			peerLimit[key(dst, src)] = ack + int64(tcp.Window)
		}
	}
	return out
}

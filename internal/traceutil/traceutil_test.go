package traceutil

import (
	"testing"

	"tdat/internal/tracegen"
)

func TestBuilderProducesOneConnection(t *testing.T) {
	b := New()
	b.Handshake(0, 10_000, 1460)
	end := b.SteadyTransfer(20_000, 10_000, 3, 2, 65535)
	if end <= 20_000 {
		t.Errorf("steady transfer end = %d", end)
	}
	c := b.Extract()
	if c.Profile.RTT != 10_000 || len(c.Data) != 6 {
		t.Errorf("profile=%+v data=%d", c.Profile, len(c.Data))
	}
}

func TestCheckInvariantsCleanTrace(t *testing.T) {
	b := New()
	b.Handshake(0, 10_000, 1460)
	b.SteadyTransfer(20_000, 10_000, 5, 2, 65535)
	if v := CheckInvariants(b.Pkts); len(v) != 0 {
		t.Errorf("violations on a clean trace: %+v", v)
	}
}

func TestCheckInvariantsCatchesAckRegression(t *testing.T) {
	b := New()
	b.Handshake(0, 10_000, 1460)
	b.Data(20_000, 0, 1460)
	b.Data(20_100, 1460, 1460)
	b.Ack(30_000, 2920, 65535)
	b.Ack(31_000, 1460, 65535) // regressed cumulative ack
	v := CheckInvariants(b.Pkts)
	if len(v) == 0 {
		t.Fatal("ack regression not caught")
	}
}

func TestCheckInvariantsCatchesAckOfUnsent(t *testing.T) {
	b := New()
	b.Handshake(0, 10_000, 1460)
	b.Data(20_000, 0, 1460)
	b.Ack(30_000, 99_999, 65535) // acks bytes never sent
	if v := CheckInvariants(b.Pkts); len(v) == 0 {
		t.Fatal("ack-of-unsent not caught")
	}
}

// TestSimulatorUpholdsTCPInvariants is the systematic check: every scenario
// kind's capture must be a sane TCP trace.
func TestSimulatorUpholdsTCPInvariants(t *testing.T) {
	kinds := []tracegen.Kind{
		tracegen.KindClean, tracegen.KindPaced, tracegen.KindSlowReceiver,
		tracegen.KindSmallWindow, tracegen.KindUpstreamLoss,
		tracegen.KindDownstreamLoss, tracegen.KindBandwidth, tracegen.KindZeroAckBug,
	}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			tr := tracegen.Run(tracegen.Scenario{Kind: k, Seed: 99, Routes: 6_000})
			v := CheckInvariants(tr.Packets())
			for i, viol := range v {
				if i >= 3 {
					t.Errorf("... and %d more", len(v)-i)
					break
				}
				t.Errorf("t=%dµs: %s", viol.Time, viol.Desc)
			}
		})
	}
}

package detect

import "tdat/internal/obs"

// Observe tallies detector outcomes for one transfer in the metrics
// registry: pacing-timer detections, consecutive-loss episodes (and runs
// past the threshold), and zero-ACK-bug conflicts. No-op on a nil
// registry, so callers can pass their Obs hook through unconditionally.
func Observe(reg *obs.Registry, timerDetected bool, cl ConsecutiveLossResult, zeroAckBug bool) {
	if reg == nil {
		return
	}
	if timerDetected {
		reg.Counter("tdat_detect_pacing_timer_total").Inc()
	}
	if cl.Episodes > 0 {
		reg.Counter("tdat_detect_consec_loss_transfers_total").Inc()
		reg.Counter("tdat_detect_consec_loss_episodes_total").Add(int64(cl.Episodes))
	}
	if zeroAckBug {
		reg.Counter("tdat_detect_zero_ack_bug_total").Inc()
	}
}

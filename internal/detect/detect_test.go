package detect

import (
	"testing"

	"tdat/internal/series"
	"tdat/internal/timerange"
	"tdat/internal/traceutil"
)

const mss = 1460

func genCat(b *traceutil.Builder) *series.Catalog {
	return series.Generate(b.Extract(), series.Config{DisableShift: true})
}

// pacedBuilder emits n one-segment bursts separated by the timer.
func pacedBuilder(n int, timer traceutil.Micros) *traceutil.Builder {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	t0 := traceutil.Micros(20_000)
	off := int64(0)
	for i := 0; i < n; i++ {
		b.Data(t0, off, mss)
		off += mss
		b.Ack(t0+10_000, off, 65535)
		t0 += timer
	}
	return b
}

func TestTimerGapsDetects200ms(t *testing.T) {
	cat := genCat(pacedBuilder(40, 200_000))
	res, ok := TimerGaps(cat, timerange.Range{}, 0)
	if !ok {
		t.Fatal("timer not detected")
	}
	if res.TimerMicros < 170_000 || res.TimerMicros > 210_000 {
		t.Errorf("timer = %d µs, want ≈190-200ms", res.TimerMicros)
	}
	if res.Gaps < 30 {
		t.Errorf("matched gaps = %d", res.Gaps)
	}
	if res.InducedDelay < 5_000_000 {
		t.Errorf("induced delay = %d µs, want several seconds", res.InducedDelay)
	}
}

func TestTimerGapsRejectsSteadyTransfer(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.SteadyTransfer(20_000, 10_000, 40, 4, 65535)
	cat := genCat(b)
	if res, ok := TimerGaps(cat, timerange.Range{}, 0); ok {
		t.Errorf("false timer %d µs on an ACK-clocked transfer", res.TimerMicros)
	}
}

func TestTimerGapsNeedsRepetition(t *testing.T) {
	// Only two long gaps: not a timer.
	cat := genCat(pacedBuilder(3, 200_000))
	if _, ok := TimerGaps(cat, timerange.Range{}, 0); ok {
		t.Error("timer detected from two gaps")
	}
}

func TestConsecutiveLossesCountsEpisode(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Ten successive retransmissions of the same segment (RTO backoff),
	// each captured (downstream loss).
	b.Data(20_000, 0, mss)
	tt := traceutil.Micros(220_000)
	for i := 0; i < 10; i++ {
		b.Data(tt, 0, mss)
		tt += 400_000
	}
	b.Ack(tt, mss, 65535)
	cat := genCat(b)
	res := ConsecutiveLosses(cat, timerange.Range{}, 0)
	if res.Episodes != 1 {
		t.Fatalf("episodes = %d (maxRun=%d)", res.Episodes, res.MaxRun)
	}
	if res.MaxRun < 8 {
		t.Errorf("max run = %d", res.MaxRun)
	}
	if res.InducedDelay < 3_000_000 {
		t.Errorf("induced delay = %d", res.InducedDelay)
	}
}

func TestConsecutiveLossesBelowThreshold(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	b.Data(240_000, 0, mss) // one retransmission
	b.Ack(250_000, mss, 65535)
	cat := genCat(b)
	res := ConsecutiveLosses(cat, timerange.Range{}, 0)
	if res.Episodes != 0 {
		t.Errorf("episodes = %d, want 0", res.Episodes)
	}
	if res.MaxRun == 0 {
		t.Error("max run should still count the single loss")
	}
}

func TestConsecutiveLossesCustomThreshold(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	for i := 0; i < 4; i++ {
		b.Data(220_000+traceutil.Micros(i)*400_000, 0, mss)
	}
	b.Ack(2_000_000, mss, 65535)
	cat := genCat(b)
	if res := ConsecutiveLosses(cat, timerange.Range{}, 3); res.Episodes != 1 {
		t.Errorf("episodes at threshold 3 = %d", res.Episodes)
	}
	if res := ConsecutiveLosses(cat, timerange.Range{}, 0); res.Episodes != 0 {
		t.Errorf("episodes at default threshold = %d", res.Episodes)
	}
}

func TestPeerGroupBlocking(t *testing.T) {
	// Healthy session: transfers, then a 150 s pause (only keepalives),
	// then resumes.
	healthy := traceutil.New()
	healthy.Handshake(0, 10_000, mss)
	end := healthy.SteadyTransfer(20_000, 10_000, 5, 2, 65535)
	// Pause with one keepalive exchange in the middle.
	off := int64(5 * 2 * mss)
	healthy.Data(end+60_000_000, off, 19)
	healthy.Ack(end+60_010_000, off+19, 65535)
	resume := end + 150_000_000
	healthy.Data(resume, off+19, mss)
	healthy.Ack(resume+10_000, off+19+mss, 65535)

	// Faulty sibling: a segment retransmitted unacknowledged through the
	// same period.
	faulty := traceutil.New()
	faulty.Handshake(0, 10_000, mss)
	faulty.Data(20_000, 0, mss)
	tt := end + 1_000_000
	for i := 0; i < 8; i++ {
		faulty.Data(tt, 0, mss)
		tt += 15_000_000
	}

	hc, fc := genCat(healthy), genCat(faulty)
	res, ok := PeerGroupBlocking(hc, fc, 0)
	if !ok {
		t.Fatal("blocking not detected")
	}
	if res.LongestPause < 30_000_000 {
		t.Errorf("longest pause = %d µs", res.LongestPause)
	}
}

func TestPeerGroupBlockingNegative(t *testing.T) {
	// Both sessions healthy: no long pause, no detection.
	a := traceutil.New()
	a.Handshake(0, 10_000, mss)
	a.SteadyTransfer(20_000, 10_000, 10, 2, 65535)
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.SteadyTransfer(20_000, 10_000, 10, 2, 65535)
	if _, ok := PeerGroupBlocking(genCat(a), genCat(b), 0); ok {
		t.Error("false peer-group blocking on healthy sessions")
	}
}

func TestZeroAckBugDetector(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	b.Ack(30_000, mss, 0)
	b.Data(100_000, 2*mss, mss) // gap opens during zero window
	b.Data(700_000, mss, mss)   // repaired
	b.Ack(710_000, 3*mss, 0)
	b.Ack(900_000, 3*mss, 65535)
	cat := genCat(b)
	res, ok := ZeroAckBug(cat)
	if !ok || res.Conflict.Empty() {
		t.Fatal("zero-ack bug not detected")
	}

	clean := traceutil.New()
	clean.Handshake(0, 10_000, mss)
	clean.SteadyTransfer(20_000, 10_000, 5, 2, 65535)
	if _, ok := ZeroAckBug(genCat(clean)); ok {
		t.Error("false zero-ack bug on a clean transfer")
	}
}

func TestGapLengthsSorted(t *testing.T) {
	cat := genCat(pacedBuilder(10, 200_000))
	gaps := GapLengths(cat, timerange.Range{})
	if len(gaps) < 9 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatal("gap lengths not sorted")
		}
	}
}

func TestPeerGroupBlockingAny(t *testing.T) {
	healthy := traceutil.New()
	healthy.Handshake(0, 10_000, mss)
	end := healthy.SteadyTransfer(20_000, 10_000, 5, 2, 65535)
	off := int64(5 * 2 * mss)
	resume := end + 150_000_000
	healthy.Data(resume, off, mss)
	healthy.Ack(resume+10_000, off+mss, 65535)

	// Two siblings: one clean, one in retransmission agony during the pause.
	clean := traceutil.New()
	clean.Handshake(0, 10_000, mss)
	clean.SteadyTransfer(20_000, 10_000, 10, 2, 65535)

	faulty := traceutil.New()
	faulty.Handshake(0, 10_000, mss)
	faulty.Data(20_000, 0, mss)
	tt := end + 1_000_000
	for i := 0; i < 8; i++ {
		faulty.Data(tt, 0, mss)
		tt += 15_000_000
	}

	hc := genCat(healthy)
	sibs := []*series.Catalog{genCat(clean), genCat(faulty)}
	res, idx, ok := PeerGroupBlockingAny(hc, sibs, 0)
	if !ok {
		t.Fatal("multi-member blocking not detected")
	}
	if idx != 1 {
		t.Errorf("blamed sibling %d, want 1 (the faulty one)", idx)
	}
	if res.LongestPause < 30_000_000 {
		t.Errorf("longest pause = %d", res.LongestPause)
	}
	if _, _, ok := PeerGroupBlockingAny(hc, sibs[:1], 0); ok {
		t.Error("clean sibling alone should not explain the pause")
	}
}

// Package detect implements T-DAT's known-problem detectors (paper §IV-B):
// BGP pacing-timer gaps (knee-point inference on the idle-gap
// distribution), consecutive packet losses, pathological peer-group
// blocking (a cross-connection set intersection), and the ZeroAckBug
// conflict series.
package detect

import (
	"sort"

	"tdat/internal/explain"
	"tdat/internal/knee"
	"tdat/internal/series"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// TimerGapResult reports a detected BGP pacing timer.
type TimerGapResult struct {
	// TimerMicros is the inferred timer period.
	TimerMicros Micros
	// Gaps is how many idle gaps matched the timer plateau.
	Gaps int
	// InducedDelay is the total idle time attributable to the timer.
	InducedDelay Micros
}

// TimerGaps infers a repetitive pacing timer from the SendAppLimited gap
// length distribution (paper Fig 17) within window (empty = whole capture,
// but callers should clip to the table-transfer period so post-transfer
// keepalive silences do not masquerade as timers). minJump is the
// knee-detection sharpness guard (≤0 selects 3×).
func TimerGaps(cat *series.Catalog, window timerange.Range, minJump float64) (TimerGapResult, bool) {
	return TimerGapsEv(cat, window, minJump, nil)
}

// TimerGapsEv is TimerGaps with evidence capture: each exit — no knee,
// sub-50 ms periodicity, too few repeats, or a detected timer — records the
// rule's inputs, thresholds, and (on detection) the matched idle gaps. A
// nil Recorder keeps the uninstrumented fast path.
func TimerGapsEv(cat *series.Catalog, window timerange.Range, minJump float64, rec *explain.Recorder) (TimerGapResult, bool) {
	if minJump <= 0 {
		minJump = 3
	}
	app := clip(cat.Get(series.SendAppLimited), window)
	ranges := app.Ranges()
	// Each idle range ends when the pacing timer releases the next burst,
	// so the burst-to-burst period is the spacing of consecutive range
	// ends. (The range LENGTH under-estimates the timer by the ACK round
	// trip, because the idle charge starts at the completing ACK.)
	periods := make([]float64, 0, len(ranges))
	for i := 1; i < len(ranges); i++ {
		periods = append(periods, float64(ranges[i].End-ranges[i-1].End))
	}
	timer, ok := knee.GapKnee(periods, minJump)
	if !ok {
		// Degenerate plateau: when (nearly) every period sits at the same
		// value, the sorted curve has no knee, yet the pacing timer is
		// plainly there — e.g. one burst released per tick. Accept a
		// tightly concentrated distribution as the timer itself.
		timer, ok = flatPlateau(periods)
		if !ok {
			if rec.Enabled() {
				rec.Add(explain.Evidence{
					Rule: "detect.timer-gaps", Outcome: explain.OutcomeRejected,
					Inputs: []explain.KV{{K: "idle_periods", V: float64(len(periods))}},
					Detail: "no knee or flat plateau in the idle-gap period distribution",
				})
			}
			return TimerGapResult{}, false
		}
	}
	if timer < 50_000 {
		// Sub-50 ms periodicity is OS/scheduler granularity, not the
		// 80–400 ms BGP pacing timers the paper's Fig 17 hunts.
		if rec.Enabled() {
			rec.Add(explain.Evidence{
				Rule: "detect.timer-gaps", Outcome: explain.OutcomeRejected,
				Score:      timer,
				Inputs:     []explain.KV{{K: "knee_period_us", V: timer}},
				Thresholds: []explain.KV{{K: "min_timer_us", V: 50_000}},
				Detail:     "sub-50 ms periodicity is scheduler granularity, not a BGP pacing timer",
			})
		}
		return TimerGapResult{}, false
	}
	res := TimerGapResult{TimerMicros: Micros(timer)}
	// Count the idle gaps the timer explains and the delay they induced:
	// gap lengths run from the completing ACK to the next tick, so they
	// fall at or just below the timer period.
	lo, hi := timer*0.4, timer*1.1
	var matched *timerange.Set
	if rec.Enabled() {
		matched = timerange.NewSet()
	}
	for _, r := range ranges {
		if g := float64(r.Len()); g >= lo && g <= hi {
			res.Gaps++
			res.InducedDelay += Micros(g)
			if matched != nil {
				matched.Add(r)
			}
		}
	}
	if res.Gaps < 3 {
		if rec.Enabled() {
			rec.Add(explain.Evidence{
				Rule: "detect.timer-gaps", Outcome: explain.OutcomeRejected,
				Score:      timer,
				Inputs:     []explain.KV{{K: "knee_period_us", V: timer}, {K: "matched_gaps", V: float64(res.Gaps)}},
				Thresholds: []explain.KV{{K: "min_gaps", V: 3}},
				Detail:     "a real timer repeats; too few idle gaps match the period",
			})
		}
		return TimerGapResult{}, false // a real timer repeats
	}
	if rec.Enabled() {
		rec.Add(explain.Evidence{
			Rule: "detect.timer-gaps", Outcome: explain.OutcomeFired,
			Score: timer,
			Inputs: []explain.KV{
				{K: "matched_gaps", V: float64(res.Gaps)},
				{K: "induced_delay_us", V: float64(res.InducedDelay)},
			},
			Thresholds: []explain.KV{
				{K: "gap_lo_us", V: lo}, {K: "gap_hi_us", V: hi},
				{K: "min_timer_us", V: 50_000}, {K: "min_gaps", V: 3},
			},
			Intervals: []explain.IntervalSet{explain.Capture("matched-idle-gaps", matched)},
			Detail:    "repetitive pacing timer inferred from the idle-gap knee",
		})
	}
	return res, true
}

// flatPlateau accepts a gap distribution whose 10th and 90th percentiles
// agree within 15% — a pure single-valued pacing timer — and returns its
// median.
func flatPlateau(gaps []float64) (float64, bool) {
	if len(gaps) < 8 {
		return 0, false
	}
	s := append([]float64(nil), gaps...)
	sort.Float64s(s)
	p10 := s[len(s)/10]
	p90 := s[len(s)*9/10]
	if p10 <= 0 || p90 > 1.15*p10 {
		return 0, false
	}
	return s[len(s)/2], true
}

// ConsecutiveLossResult reports a burst-loss episode count.
type ConsecutiveLossResult struct {
	// Episodes is the number of runs of ≥ Threshold loss events.
	Episodes int
	// MaxRun is the longest run of consecutive loss events.
	MaxRun int
	// InducedDelay is the total recovery time of qualifying episodes.
	InducedDelay Micros
}

// DefaultConsecutiveLossThreshold is the paper's conservative 8: enough
// consecutive losses to collapse cwnd and ssthresh to the minimum.
const DefaultConsecutiveLossThreshold = 8

// ConsecutiveLosses unions all loss series and counts episodes of at least
// threshold (≤0 selects 8) loss events in close succession. Loss events
// within one merged recovery range — or in ranges chained at RTO scale
// (timeout-driven recovery repairs one hole per backoff, seconds apart) —
// belong to one episode.
func ConsecutiveLosses(cat *series.Catalog, window timerange.Range, threshold int) ConsecutiveLossResult {
	return ConsecutiveLossesEv(cat, window, threshold, nil)
}

// ConsecutiveLossesEv is ConsecutiveLosses with evidence capture: the
// qualifying episode time ranges, the run/chain thresholds, and the max
// run are recorded. A nil Recorder keeps the uninstrumented fast path.
func ConsecutiveLossesEv(cat *series.Catalog, window timerange.Range, threshold int, rec *explain.Recorder) ConsecutiveLossResult {
	if threshold <= 0 {
		threshold = DefaultConsecutiveLossThreshold
	}
	all := clip(timerange.UnionAll(
		cat.Get(series.SendLocalLoss),
		cat.Get(series.RecvLocalLoss),
		cat.Get(series.NetworkLoss),
	), window)
	// Count loss events per merged range: retransmission + out-of-sequence
	// arrivals inside it.
	events := cat.Get(series.Retransmission).Union(cat.Get(series.OutOfSequence))
	rtt := cat.Conn().Profile.RTT
	if rtt <= 0 {
		rtt = 1_000
	}
	chainGap := maxMicros(3*rtt, 3_000_000)

	var episodes *timerange.Set
	if rec.Enabled() {
		episodes = timerange.NewSet()
	}
	var res ConsecutiveLossResult
	run := 0
	var runDelay Micros
	var prevEnd, runStart Micros = -1, -1
	flush := func() {
		if run > res.MaxRun {
			res.MaxRun = run
		}
		if run >= threshold {
			res.Episodes++
			res.InducedDelay += runDelay
			if episodes != nil && runStart >= 0 {
				episodes.Add(timerange.R(runStart, prevEnd))
			}
		}
		run, runDelay, runStart = 0, 0, -1
	}
	for _, r := range all.Ranges() {
		if prevEnd >= 0 && r.Start-prevEnd > chainGap {
			flush()
		}
		if runStart < 0 {
			runStart = r.Start
		}
		n := len(events.Query(r))
		if n == 0 {
			n = 1
		}
		run += n
		runDelay += r.Len()
		prevEnd = r.End
	}
	flush()
	if rec.Enabled() {
		outcome := explain.OutcomeFired
		detail := "burst-loss episodes with enough chained loss events to collapse cwnd"
		if res.Episodes == 0 {
			outcome = explain.OutcomeRejected
			detail = "no loss run reached the episode threshold"
		}
		rec.Add(explain.Evidence{
			Rule: "detect.consecutive-losses", Outcome: outcome,
			Score: float64(res.Episodes),
			Inputs: []explain.KV{
				{K: "loss_ranges", V: float64(all.Len())},
				{K: "max_run", V: float64(res.MaxRun)},
				{K: "induced_delay_us", V: float64(res.InducedDelay)},
			},
			Thresholds: []explain.KV{
				{K: "run_threshold", V: float64(threshold)},
				{K: "chain_gap_us", V: float64(chainGap)},
			},
			Intervals: []explain.IntervalSet{explain.Capture("loss-episodes", episodes)},
			Detail:    detail,
		})
	}
	return res
}

// PeerGroupResult reports a pathological peer-group blocking episode.
type PeerGroupResult struct {
	// Blocked is the intersection of the healthy session's idle time with
	// the faulty session's loss-recovery time.
	Blocked *timerange.Set
	// LongestPause is the longest single blocked period.
	LongestPause Micros
}

// PeerGroupBlocking checks whether the healthy connection's long
// application-limited pauses coincide with a sibling connection's
// loss/retransmission agony — the paper's cross-connection intersection
//
//	healthy.SendAppLimited ∩ faulty.Loss
//
// restricted to pauses of at least minPause (≤0 selects 10 s) during which
// the healthy connection exchanged at most keepalives.
func PeerGroupBlocking(healthy, faulty *series.Catalog, minPause Micros) (PeerGroupResult, bool) {
	if minPause <= 0 {
		minPause = 10 * 1_000_000
	}
	// Long pauses only.
	longIdle := timerange.NewSet()
	for _, r := range healthy.Get(series.SendAppLimited).Ranges() {
		if r.Len() >= minPause {
			longIdle.Add(r)
		}
	}
	if longIdle.Empty() {
		return PeerGroupResult{}, false
	}
	faultyAgony := timerange.UnionAll(
		faulty.Get(series.UpstreamLoss),
		faulty.Get(series.DownstreamLoss),
		faulty.Get(series.Outstanding), // unacked forever against a dead peer
	)
	blocked := longIdle.Intersect(faultyAgony)
	if blocked.Empty() {
		return PeerGroupResult{}, false
	}
	res := PeerGroupResult{Blocked: blocked}
	for _, r := range blocked.Ranges() {
		if r.Len() > res.LongestPause {
			res.LongestPause = r.Len()
		}
	}
	// A sliver of coincidental overlap (the sibling's healthy transfer
	// brushing the pause's edge) is not blocking: the sibling's agony must
	// explain a substantial share of a pause.
	if res.LongestPause < minPause/2 {
		return PeerGroupResult{}, false
	}
	return res, true
}

// PeerGroupBlockingAny checks healthy against every sibling in the group
// and returns the sibling index whose agony best explains the pauses — the
// paper notes groups range "from several to tens of members" and any one
// failure drags down the rest.
func PeerGroupBlockingAny(healthy *series.Catalog, siblings []*series.Catalog, minPause Micros) (PeerGroupResult, int, bool) {
	best := -1
	var bestRes PeerGroupResult
	for i, sib := range siblings {
		res, ok := PeerGroupBlocking(healthy, sib, minPause)
		if !ok {
			continue
		}
		if best < 0 || res.Blocked.Size() > bestRes.Blocked.Size() {
			best, bestRes = i, res
		}
	}
	if best < 0 {
		return PeerGroupResult{}, -1, false
	}
	return bestRes, best, true
}

// ZeroAckBugResult quantifies the zero-window probe-discard bug signature.
type ZeroAckBugResult struct {
	// Conflict is ZeroAdvBndOut ∩ UpstreamLoss: retransmission agony while
	// the receiver window is closed.
	Conflict *timerange.Set
}

// ZeroAckBug returns the conflict series (paper §IV-B) when non-empty.
func ZeroAckBug(cat *series.Catalog) (ZeroAckBugResult, bool) {
	return ZeroAckBugEv(cat, nil)
}

// ZeroAckBugEv is ZeroAckBug with evidence capture: the conflict intervals
// (zero-window periods overlapping upstream-loss recovery) are recorded
// whether or not the detector fires. A nil Recorder keeps the
// uninstrumented fast path.
func ZeroAckBugEv(cat *series.Catalog, rec *explain.Recorder) (ZeroAckBugResult, bool) {
	s := cat.Get(series.ZeroAckBug)
	if s.Empty() {
		if rec.Enabled() {
			rec.Add(explain.Evidence{
				Rule: "detect.zero-ack-bug", Outcome: explain.OutcomeRejected,
				Detail: "zero-window and upstream-loss recovery never overlap",
			})
		}
		return ZeroAckBugResult{}, false
	}
	if rec.Enabled() {
		rec.Add(explain.Evidence{
			Rule: "detect.zero-ack-bug", Outcome: explain.OutcomeFired,
			Score:     float64(s.Size()),
			Intervals: []explain.IntervalSet{explain.Capture("conflict", s)},
			Detail:    "retransmission agony while the receiver window is closed (probe-discard bug signature)",
		})
	}
	return ZeroAckBugResult{Conflict: s.Clone()}, true
}

func maxMicros(a, b Micros) Micros {
	if a > b {
		return a
	}
	return b
}

// clip restricts s to window; an empty window means no restriction.
func clip(s *timerange.Set, window timerange.Range) *timerange.Set {
	if window.Empty() {
		return s
	}
	return s.Intersect(timerange.NewSet(window))
}

// GapLengths returns the sorted SendAppLimited gap lengths within window —
// the Fig 17 evaluation curve input, exposed for plotting. An empty window
// means the whole capture.
func GapLengths(cat *series.Catalog, window timerange.Range) []float64 {
	app := clip(cat.Get(series.SendAppLimited), window)
	out := make([]float64, 0, app.Len())
	for _, r := range app.Ranges() {
		out = append(out, float64(r.Len()))
	}
	sort.Float64s(out)
	return out
}

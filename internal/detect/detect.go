// Package detect implements T-DAT's known-problem detectors (paper §IV-B):
// BGP pacing-timer gaps (knee-point inference on the idle-gap
// distribution), consecutive packet losses, pathological peer-group
// blocking (a cross-connection set intersection), and the ZeroAckBug
// conflict series.
package detect

import (
	"sort"

	"tdat/internal/knee"
	"tdat/internal/series"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// TimerGapResult reports a detected BGP pacing timer.
type TimerGapResult struct {
	// TimerMicros is the inferred timer period.
	TimerMicros Micros
	// Gaps is how many idle gaps matched the timer plateau.
	Gaps int
	// InducedDelay is the total idle time attributable to the timer.
	InducedDelay Micros
}

// TimerGaps infers a repetitive pacing timer from the SendAppLimited gap
// length distribution (paper Fig 17) within window (empty = whole capture,
// but callers should clip to the table-transfer period so post-transfer
// keepalive silences do not masquerade as timers). minJump is the
// knee-detection sharpness guard (≤0 selects 3×).
func TimerGaps(cat *series.Catalog, window timerange.Range, minJump float64) (TimerGapResult, bool) {
	if minJump <= 0 {
		minJump = 3
	}
	app := clip(cat.Get(series.SendAppLimited), window)
	ranges := app.Ranges()
	// Each idle range ends when the pacing timer releases the next burst,
	// so the burst-to-burst period is the spacing of consecutive range
	// ends. (The range LENGTH under-estimates the timer by the ACK round
	// trip, because the idle charge starts at the completing ACK.)
	periods := make([]float64, 0, len(ranges))
	for i := 1; i < len(ranges); i++ {
		periods = append(periods, float64(ranges[i].End-ranges[i-1].End))
	}
	timer, ok := knee.GapKnee(periods, minJump)
	if !ok {
		// Degenerate plateau: when (nearly) every period sits at the same
		// value, the sorted curve has no knee, yet the pacing timer is
		// plainly there — e.g. one burst released per tick. Accept a
		// tightly concentrated distribution as the timer itself.
		timer, ok = flatPlateau(periods)
		if !ok {
			return TimerGapResult{}, false
		}
	}
	if timer < 50_000 {
		// Sub-50 ms periodicity is OS/scheduler granularity, not the
		// 80–400 ms BGP pacing timers the paper's Fig 17 hunts.
		return TimerGapResult{}, false
	}
	res := TimerGapResult{TimerMicros: Micros(timer)}
	// Count the idle gaps the timer explains and the delay they induced:
	// gap lengths run from the completing ACK to the next tick, so they
	// fall at or just below the timer period.
	lo, hi := timer*0.4, timer*1.1
	for _, r := range ranges {
		if g := float64(r.Len()); g >= lo && g <= hi {
			res.Gaps++
			res.InducedDelay += Micros(g)
		}
	}
	if res.Gaps < 3 {
		return TimerGapResult{}, false // a real timer repeats
	}
	return res, true
}

// flatPlateau accepts a gap distribution whose 10th and 90th percentiles
// agree within 15% — a pure single-valued pacing timer — and returns its
// median.
func flatPlateau(gaps []float64) (float64, bool) {
	if len(gaps) < 8 {
		return 0, false
	}
	s := append([]float64(nil), gaps...)
	sort.Float64s(s)
	p10 := s[len(s)/10]
	p90 := s[len(s)*9/10]
	if p10 <= 0 || p90 > 1.15*p10 {
		return 0, false
	}
	return s[len(s)/2], true
}

// ConsecutiveLossResult reports a burst-loss episode count.
type ConsecutiveLossResult struct {
	// Episodes is the number of runs of ≥ Threshold loss events.
	Episodes int
	// MaxRun is the longest run of consecutive loss events.
	MaxRun int
	// InducedDelay is the total recovery time of qualifying episodes.
	InducedDelay Micros
}

// DefaultConsecutiveLossThreshold is the paper's conservative 8: enough
// consecutive losses to collapse cwnd and ssthresh to the minimum.
const DefaultConsecutiveLossThreshold = 8

// ConsecutiveLosses unions all loss series and counts episodes of at least
// threshold (≤0 selects 8) loss events in close succession. Loss events
// within one merged recovery range — or in ranges chained at RTO scale
// (timeout-driven recovery repairs one hole per backoff, seconds apart) —
// belong to one episode.
func ConsecutiveLosses(cat *series.Catalog, window timerange.Range, threshold int) ConsecutiveLossResult {
	if threshold <= 0 {
		threshold = DefaultConsecutiveLossThreshold
	}
	all := clip(timerange.UnionAll(
		cat.Get(series.SendLocalLoss),
		cat.Get(series.RecvLocalLoss),
		cat.Get(series.NetworkLoss),
	), window)
	// Count loss events per merged range: retransmission + out-of-sequence
	// arrivals inside it.
	events := cat.Get(series.Retransmission).Union(cat.Get(series.OutOfSequence))
	rtt := cat.Conn().Profile.RTT
	if rtt <= 0 {
		rtt = 1_000
	}
	chainGap := maxMicros(3*rtt, 3_000_000)

	var res ConsecutiveLossResult
	run := 0
	var runDelay Micros
	var prevEnd Micros = -1
	flush := func() {
		if run > res.MaxRun {
			res.MaxRun = run
		}
		if run >= threshold {
			res.Episodes++
			res.InducedDelay += runDelay
		}
		run, runDelay = 0, 0
	}
	for _, r := range all.Ranges() {
		if prevEnd >= 0 && r.Start-prevEnd > chainGap {
			flush()
		}
		n := len(events.Query(r))
		if n == 0 {
			n = 1
		}
		run += n
		runDelay += r.Len()
		prevEnd = r.End
	}
	flush()
	return res
}

// PeerGroupResult reports a pathological peer-group blocking episode.
type PeerGroupResult struct {
	// Blocked is the intersection of the healthy session's idle time with
	// the faulty session's loss-recovery time.
	Blocked *timerange.Set
	// LongestPause is the longest single blocked period.
	LongestPause Micros
}

// PeerGroupBlocking checks whether the healthy connection's long
// application-limited pauses coincide with a sibling connection's
// loss/retransmission agony — the paper's cross-connection intersection
//
//	healthy.SendAppLimited ∩ faulty.Loss
//
// restricted to pauses of at least minPause (≤0 selects 10 s) during which
// the healthy connection exchanged at most keepalives.
func PeerGroupBlocking(healthy, faulty *series.Catalog, minPause Micros) (PeerGroupResult, bool) {
	if minPause <= 0 {
		minPause = 10 * 1_000_000
	}
	// Long pauses only.
	longIdle := timerange.NewSet()
	for _, r := range healthy.Get(series.SendAppLimited).Ranges() {
		if r.Len() >= minPause {
			longIdle.Add(r)
		}
	}
	if longIdle.Empty() {
		return PeerGroupResult{}, false
	}
	faultyAgony := timerange.UnionAll(
		faulty.Get(series.UpstreamLoss),
		faulty.Get(series.DownstreamLoss),
		faulty.Get(series.Outstanding), // unacked forever against a dead peer
	)
	blocked := longIdle.Intersect(faultyAgony)
	if blocked.Empty() {
		return PeerGroupResult{}, false
	}
	res := PeerGroupResult{Blocked: blocked}
	for _, r := range blocked.Ranges() {
		if r.Len() > res.LongestPause {
			res.LongestPause = r.Len()
		}
	}
	// A sliver of coincidental overlap (the sibling's healthy transfer
	// brushing the pause's edge) is not blocking: the sibling's agony must
	// explain a substantial share of a pause.
	if res.LongestPause < minPause/2 {
		return PeerGroupResult{}, false
	}
	return res, true
}

// PeerGroupBlockingAny checks healthy against every sibling in the group
// and returns the sibling index whose agony best explains the pauses — the
// paper notes groups range "from several to tens of members" and any one
// failure drags down the rest.
func PeerGroupBlockingAny(healthy *series.Catalog, siblings []*series.Catalog, minPause Micros) (PeerGroupResult, int, bool) {
	best := -1
	var bestRes PeerGroupResult
	for i, sib := range siblings {
		res, ok := PeerGroupBlocking(healthy, sib, minPause)
		if !ok {
			continue
		}
		if best < 0 || res.Blocked.Size() > bestRes.Blocked.Size() {
			best, bestRes = i, res
		}
	}
	if best < 0 {
		return PeerGroupResult{}, -1, false
	}
	return bestRes, best, true
}

// ZeroAckBugResult quantifies the zero-window probe-discard bug signature.
type ZeroAckBugResult struct {
	// Conflict is ZeroAdvBndOut ∩ UpstreamLoss: retransmission agony while
	// the receiver window is closed.
	Conflict *timerange.Set
}

// ZeroAckBug returns the conflict series (paper §IV-B) when non-empty.
func ZeroAckBug(cat *series.Catalog) (ZeroAckBugResult, bool) {
	s := cat.Get(series.ZeroAckBug)
	if s.Empty() {
		return ZeroAckBugResult{}, false
	}
	return ZeroAckBugResult{Conflict: s.Clone()}, true
}

func maxMicros(a, b Micros) Micros {
	if a > b {
		return a
	}
	return b
}

// clip restricts s to window; an empty window means no restriction.
func clip(s *timerange.Set, window timerange.Range) *timerange.Set {
	if window.Empty() {
		return s
	}
	return s.Intersect(timerange.NewSet(window))
}

// GapLengths returns the sorted SendAppLimited gap lengths within window —
// the Fig 17 evaluation curve input, exposed for plotting. An empty window
// means the whole capture.
func GapLengths(cat *series.Catalog, window timerange.Range) []float64 {
	app := clip(cat.Get(series.SendAppLimited), window)
	out := make([]float64, 0, app.Len())
	for _, r := range app.Ranges() {
		out = append(out, float64(r.Len()))
	}
	sort.Float64s(out)
	return out
}

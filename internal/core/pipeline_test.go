package core

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"testing"

	"tdat/internal/flows"
	"tdat/internal/obs"
	"tdat/internal/pcapio"
	"tdat/internal/tracegen"
)

// multiConnPackets merges n independent table transfers (distinct router
// addresses, mixed pathologies) into one capture, interleaved in time
// order — the shape of a real collector-side trace, where many routers'
// sessions overlap.
func multiConnPackets(tb testing.TB, n int) []flows.TimedPacket {
	tb.Helper()
	var all []flows.TimedPacket
	for i := 0; i < n; i++ {
		sc := tracegen.Scenario{Seed: int64(9000 + i), Routes: 1_500 + 200*(i%4)}
		switch i % 4 {
		case 0:
			sc.Kind = tracegen.KindPaced
			sc.PacingTimer = 200_000
			sc.PacingBudget = 24
		case 1:
			sc.Kind = tracegen.KindSlowReceiver
			sc.CollectorRate = 20_000
		case 2:
			sc.Kind = tracegen.KindClean
		default:
			sc.Kind = tracegen.KindBandwidth
			sc.UpstreamRate = 120_000
		}
		tr := tracegen.Run(sc)
		if tr.RoutesDelivered == 0 {
			tb.Fatalf("scenario %d delivered no routes", i)
		}
		// Every scenario simulates the same address pair; give each
		// transfer its own router address so the flows layer sees n
		// distinct connections.
		addr := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i&0xff) + 1})
		for _, tp := range tr.Packets() {
			if tp.Pkt.TCP.SrcPort == 179 {
				tp.Pkt.IP.Src = addr
			} else {
				tp.Pkt.IP.Dst = addr
			}
			all = append(all, tp)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all
}

// serializeReport renders every transfer's text and JSON form — the full
// externally visible output of an analysis.
func serializeReport(tb testing.TB, rep *Report) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "skipped=%d transfers=%d\n", rep.SkippedPackets, len(rep.Transfers))
	for _, t := range rep.Transfers {
		if err := t.WriteText(&buf, false); err != nil {
			tb.Fatal(err)
		}
		if err := t.WriteJSON(&buf); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestParallelAnalysisByteIdentical(t *testing.T) {
	const conns = 8
	pkts := multiConnPackets(t, conns)
	var baseline []byte
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), 8} {
		rep := New(Config{Workers: w}).AnalyzePackets(pkts)
		if len(rep.Transfers) != conns {
			t.Fatalf("workers=%d: transfers = %d, want %d", w, len(rep.Transfers), conns)
		}
		out := serializeReport(t, rep)
		if baseline == nil {
			baseline = out
			continue
		}
		if !bytes.Equal(out, baseline) {
			t.Errorf("workers=%d: report differs from workers=1 baseline", w)
		}
	}
}

func TestObservabilityNeverChangesOutput(t *testing.T) {
	// The same capture, with obs off and on (span log included), at several
	// worker counts — eight reports, one byte-identical output. This guards
	// the tentpole invariant: observability is read-only on the analysis.
	pkts := multiConnPackets(t, 6)
	data, _ := writePcap(t, pkts, 0)
	var baseline []byte
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, withObs := range []bool{false, true} {
			cfg := Config{Workers: w}
			var o *obs.Obs
			if withObs {
				o = obs.New()
				o.SetSpanLog(io.Discard)
				cfg.Obs = o
			}
			rep, err := New(cfg).AnalyzePcap(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("workers=%d obs=%v: %v", w, withObs, err)
			}
			out := serializeReport(t, rep)
			if baseline == nil {
				baseline = out
				continue
			}
			if !bytes.Equal(out, baseline) {
				t.Errorf("workers=%d obs=%v: report differs from baseline", w, withObs)
			}
			if withObs {
				if got := o.Reg.Counter("tdat_conns_analyzed_total").Value(); got != int64(len(rep.Transfers)) {
					t.Errorf("workers=%d: conns_analyzed = %d, want %d", w, got, len(rep.Transfers))
				}
				if o.Reg.Gauge("tdat_conns_in_flight").Value() != 0 {
					t.Errorf("workers=%d: conns_in_flight gauge not drained", w)
				}
			}
		}
	}
}

func TestPanicRecoveredIntoReport(t *testing.T) {
	// One connection's analysis panicking must cost exactly that connection:
	// the rest of the run completes, the failure lands on the report with
	// the 4-tuple, and the panic counter ticks — at any worker count.
	const conns = 6
	pkts := multiConnPackets(t, conns)
	data, _ := writePcap(t, pkts, 0)
	for _, w := range []int{1, 3} {
		o := obs.New()
		a := New(Config{Workers: w, Obs: o})
		var victim string
		rep, err := a.AnalyzePcapWith(bytes.NewReader(data), func(c *flows.Connection) *TransferReport {
			// Deterministic victim: the lowest sender address.
			if c.Sender.Addr == netip.AddrFrom4([4]byte{10, 1, 0, 1}) {
				victim = c.Sender.String() + "->" + c.Receiver.String()
				panic("synthetic analysis bug")
			}
			return a.AnalyzeConnection(c)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(rep.Transfers) != conns-1 {
			t.Errorf("workers=%d: transfers = %d, want %d", w, len(rep.Transfers), conns-1)
		}
		if len(rep.Failures) != 1 {
			t.Fatalf("workers=%d: failures = %d, want 1", w, len(rep.Failures))
		}
		f := rep.Failures[0]
		if f.Conn != victim {
			t.Errorf("workers=%d: failure conn = %q, want %q", w, f.Conn, victim)
		}
		if !strings.Contains(f.Panic, "synthetic analysis bug") {
			t.Errorf("workers=%d: failure panic = %q", w, f.Panic)
		}
		if got := o.Reg.Counter("tdat_analysis_panics_total").Value(); got != 1 {
			t.Errorf("workers=%d: panics counter = %d, want 1", w, got)
		}
		if o.Reg.Gauge("tdat_conns_in_flight").Value() != 0 {
			t.Errorf("workers=%d: conns_in_flight gauge not drained after panic", w)
		}
	}
}

// writePcap serializes packets as a pcap stream, injecting an undecodable
// garbage record after every interval good records when interval > 0.
func writePcap(tb testing.TB, pkts []flows.TimedPacket, interval int) ([]byte, int) {
	tb.Helper()
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	corrupt := 0
	for i, tp := range pkts {
		frame, err := tp.Pkt.Marshal()
		if err != nil {
			tb.Fatal(err)
		}
		if err := w.WritePacket(tp.Time, frame); err != nil {
			tb.Fatal(err)
		}
		if interval > 0 && i%interval == interval-1 {
			if err := w.WritePacket(tp.Time, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
				tb.Fatal(err)
			}
			corrupt++
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), corrupt
}

func TestStreamingPcapMatchesSlicePath(t *testing.T) {
	pkts := multiConnPackets(t, 4)
	data, _ := writePcap(t, pkts, 0)
	want := serializeReport(t, New(Config{Workers: 1}).AnalyzePackets(pkts))
	for _, w := range []int{1, 4} {
		rep, err := New(Config{Workers: w}).AnalyzePcap(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := serializeReport(t, rep); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: streaming report differs from slice path", w)
		}
	}
}

func TestShardedAnalysisByteIdentical(t *testing.T) {
	// The demux shard count must never change output: connections hash to
	// shards whole, packets are numbered globally, and the merge re-orders
	// by first-packet arrival. Swept against worker counts, over a clean
	// capture and one with timestamp regressions (where per-shard disorder
	// detection and reader-side regression counting must agree with the
	// single-demuxer path).
	const conns = 8
	pkts := multiConnPackets(t, conns)
	clean, _ := writePcap(t, pkts, 0)

	// Disordered variant: at a coarse stride, swap a packet with the first
	// strictly-later one so the capture clock genuinely regresses (the
	// merged trace has many timestamp ties, which adjacent swaps wouldn't
	// disturb).
	shuffled := append([]flows.TimedPacket(nil), pkts...)
	for i := 5; i < len(shuffled); i += 29 {
		for j := i + 1; j < len(shuffled) && j < i+8; j++ {
			if shuffled[j].Time > shuffled[i].Time {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				break
			}
		}
	}
	disordered, _ := writePcap(t, shuffled, 0)

	for name, data := range map[string][]byte{"clean": clean, "disordered": disordered} {
		var baseline []byte
		var baseRegress int64
		for _, w := range []int{1, 4} {
			for _, s := range []int{0, 1, 2, 3, 16} {
				rep, err := New(Config{Workers: w, Shards: s}).AnalyzePcap(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("%s workers=%d shards=%d: %v", name, w, s, err)
				}
				if len(rep.Transfers) != conns {
					t.Fatalf("%s workers=%d shards=%d: transfers = %d, want %d",
						name, w, s, len(rep.Transfers), conns)
				}
				out := serializeReport(t, rep)
				if baseline == nil {
					baseline = out
					baseRegress = rep.Degradation.TimestampRegressions
					continue
				}
				if !bytes.Equal(out, baseline) {
					t.Errorf("%s workers=%d shards=%d: report differs from single-demuxer baseline", name, w, s)
				}
				if rep.Degradation.TimestampRegressions != baseRegress {
					t.Errorf("%s workers=%d shards=%d: regressions = %d, want %d",
						name, w, s, rep.Degradation.TimestampRegressions, baseRegress)
				}
			}
		}
		if name == "disordered" && baseRegress == 0 {
			t.Error("disordered capture produced no timestamp regressions; test is vacuous")
		}
	}
}

func TestDecodeErrorsDropNoConnections(t *testing.T) {
	// Undecodable records mid-trace (tcpdump corruption) must be counted
	// and skipped without losing any other connection's analysis, at any
	// worker count.
	const conns = 4
	pkts := multiConnPackets(t, conns)
	data, corrupt := writePcap(t, pkts, 100)
	if corrupt == 0 {
		t.Fatal("no corrupt records injected")
	}
	var baseline []byte
	for _, w := range []int{1, 3} {
		rep, err := New(Config{Workers: w}).AnalyzePcap(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if rep.SkippedPackets != corrupt {
			t.Errorf("workers=%d: skipped = %d, want %d", w, rep.SkippedPackets, corrupt)
		}
		if len(rep.Transfers) != conns {
			t.Errorf("workers=%d: transfers = %d, want %d", w, len(rep.Transfers), conns)
		}
		for _, tr := range rep.Transfers {
			if tr.Conn.Profile.TotalDataPackets == 0 {
				t.Errorf("workers=%d: transfer %s lost its data packets", w, tr.Conn.Sender)
			}
		}
		out := serializeReport(t, rep)
		if baseline == nil {
			baseline = out
		} else if !bytes.Equal(out, baseline) {
			t.Errorf("workers=%d: report differs across worker counts", w)
		}
	}
}

func TestDemuxerEmitsCompletedConnectionsEarly(t *testing.T) {
	// A reset-split capture (tuple reuse) must surface the first
	// incarnation before Finish, so analysis overlaps ingest.
	tr := tracegen.RunWithReset(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 70, Routes: 8_000,
		PacingTimer: 200_000, PacingBudget: 24,
		Horizon: 120_000_000,
	}, 700_000)
	pkts := tr.Packets()

	early := 0
	var got []*flows.Connection
	d := flows.NewDemuxer(flows.DefaultOptions(), func(idx int, c *flows.Connection) {
		got = append(got, c)
	})
	for _, tp := range pkts {
		d.Add(tp)
	}
	early = len(got)
	total := d.Finish()
	if early == 0 {
		t.Error("no connection emitted before Finish (reset split should complete the first incarnation early)")
	}
	if total != 2 || len(got) != 2 {
		t.Fatalf("total = %d, emitted = %d, want 2 raw connections", total, len(got))
	}
	// The demuxer path must agree with the batch extractor.
	want := flows.Extract(pkts)
	if len(want) != len(got) {
		t.Fatalf("extract found %d connections, demuxer %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Profile != got[i].Profile {
			t.Errorf("connection %d profile differs between demuxer and Extract", i)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	square := func(v int) int { return v * v }
	want := MapOrdered(1, in, square)
	for _, w := range []int{0, 2, 7, 200} {
		got := MapOrdered(w, in, square)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len = %d", w, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	if MapOrdered(4, nil, square) != nil {
		t.Error("empty input should return nil")
	}
}

package core

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"
	"testing"

	"tdat/internal/flows"
	"tdat/internal/pcapio"
	"tdat/internal/tracegen"
)

// multiConnPackets merges n independent table transfers (distinct router
// addresses, mixed pathologies) into one capture, interleaved in time
// order — the shape of a real collector-side trace, where many routers'
// sessions overlap.
func multiConnPackets(tb testing.TB, n int) []flows.TimedPacket {
	tb.Helper()
	var all []flows.TimedPacket
	for i := 0; i < n; i++ {
		sc := tracegen.Scenario{Seed: int64(9000 + i), Routes: 1_500 + 200*(i%4)}
		switch i % 4 {
		case 0:
			sc.Kind = tracegen.KindPaced
			sc.PacingTimer = 200_000
			sc.PacingBudget = 24
		case 1:
			sc.Kind = tracegen.KindSlowReceiver
			sc.CollectorRate = 20_000
		case 2:
			sc.Kind = tracegen.KindClean
		default:
			sc.Kind = tracegen.KindBandwidth
			sc.UpstreamRate = 120_000
		}
		tr := tracegen.Run(sc)
		if tr.RoutesDelivered == 0 {
			tb.Fatalf("scenario %d delivered no routes", i)
		}
		// Every scenario simulates the same address pair; give each
		// transfer its own router address so the flows layer sees n
		// distinct connections.
		addr := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i&0xff) + 1})
		for _, tp := range tr.Packets() {
			if tp.Pkt.TCP.SrcPort == 179 {
				tp.Pkt.IP.Src = addr
			} else {
				tp.Pkt.IP.Dst = addr
			}
			all = append(all, tp)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Time < all[j].Time })
	return all
}

// serializeReport renders every transfer's text and JSON form — the full
// externally visible output of an analysis.
func serializeReport(tb testing.TB, rep *Report) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "skipped=%d transfers=%d\n", rep.SkippedPackets, len(rep.Transfers))
	for _, t := range rep.Transfers {
		if err := t.WriteText(&buf, false); err != nil {
			tb.Fatal(err)
		}
		if err := t.WriteJSON(&buf); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestParallelAnalysisByteIdentical(t *testing.T) {
	const conns = 8
	pkts := multiConnPackets(t, conns)
	var baseline []byte
	for _, w := range []int{1, 2, 8} {
		rep := New(Config{Workers: w}).AnalyzePackets(pkts)
		if len(rep.Transfers) != conns {
			t.Fatalf("workers=%d: transfers = %d, want %d", w, len(rep.Transfers), conns)
		}
		out := serializeReport(t, rep)
		if baseline == nil {
			baseline = out
			continue
		}
		if !bytes.Equal(out, baseline) {
			t.Errorf("workers=%d: report differs from workers=1 baseline", w)
		}
	}
}

// writePcap serializes packets as a pcap stream, injecting an undecodable
// garbage record after every interval good records when interval > 0.
func writePcap(tb testing.TB, pkts []flows.TimedPacket, interval int) ([]byte, int) {
	tb.Helper()
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	corrupt := 0
	for i, tp := range pkts {
		frame, err := tp.Pkt.Marshal()
		if err != nil {
			tb.Fatal(err)
		}
		if err := w.WritePacket(tp.Time, frame); err != nil {
			tb.Fatal(err)
		}
		if interval > 0 && i%interval == interval-1 {
			if err := w.WritePacket(tp.Time, []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
				tb.Fatal(err)
			}
			corrupt++
		}
	}
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), corrupt
}

func TestStreamingPcapMatchesSlicePath(t *testing.T) {
	pkts := multiConnPackets(t, 4)
	data, _ := writePcap(t, pkts, 0)
	want := serializeReport(t, New(Config{Workers: 1}).AnalyzePackets(pkts))
	for _, w := range []int{1, 4} {
		rep, err := New(Config{Workers: w}).AnalyzePcap(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := serializeReport(t, rep); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: streaming report differs from slice path", w)
		}
	}
}

func TestDecodeErrorsDropNoConnections(t *testing.T) {
	// Undecodable records mid-trace (tcpdump corruption) must be counted
	// and skipped without losing any other connection's analysis, at any
	// worker count.
	const conns = 4
	pkts := multiConnPackets(t, conns)
	data, corrupt := writePcap(t, pkts, 100)
	if corrupt == 0 {
		t.Fatal("no corrupt records injected")
	}
	var baseline []byte
	for _, w := range []int{1, 3} {
		rep, err := New(Config{Workers: w}).AnalyzePcap(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if rep.SkippedPackets != corrupt {
			t.Errorf("workers=%d: skipped = %d, want %d", w, rep.SkippedPackets, corrupt)
		}
		if len(rep.Transfers) != conns {
			t.Errorf("workers=%d: transfers = %d, want %d", w, len(rep.Transfers), conns)
		}
		for _, tr := range rep.Transfers {
			if tr.Conn.Profile.TotalDataPackets == 0 {
				t.Errorf("workers=%d: transfer %s lost its data packets", w, tr.Conn.Sender)
			}
		}
		out := serializeReport(t, rep)
		if baseline == nil {
			baseline = out
		} else if !bytes.Equal(out, baseline) {
			t.Errorf("workers=%d: report differs across worker counts", w)
		}
	}
}

func TestDemuxerEmitsCompletedConnectionsEarly(t *testing.T) {
	// A reset-split capture (tuple reuse) must surface the first
	// incarnation before Finish, so analysis overlaps ingest.
	tr := tracegen.RunWithReset(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 70, Routes: 8_000,
		PacingTimer: 200_000, PacingBudget: 24,
		Horizon: 120_000_000,
	}, 700_000)
	pkts := tr.Packets()

	early := 0
	var got []*flows.Connection
	d := flows.NewDemuxer(flows.DefaultOptions(), func(idx int, c *flows.Connection) {
		got = append(got, c)
	})
	for _, tp := range pkts {
		d.Add(tp)
	}
	early = len(got)
	total := d.Finish()
	if early == 0 {
		t.Error("no connection emitted before Finish (reset split should complete the first incarnation early)")
	}
	if total != 2 || len(got) != 2 {
		t.Fatalf("total = %d, emitted = %d, want 2 raw connections", total, len(got))
	}
	// The demuxer path must agree with the batch extractor.
	want := flows.Extract(pkts)
	if len(want) != len(got) {
		t.Fatalf("extract found %d connections, demuxer %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Profile != got[i].Profile {
			t.Errorf("connection %d profile differs between demuxer and Extract", i)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	square := func(v int) int { return v * v }
	want := MapOrdered(1, in, square)
	for _, w := range []int{0, 2, 7, 200} {
		got := MapOrdered(w, in, square)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len = %d", w, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	if MapOrdered(4, nil, square) != nil {
		t.Error("empty input should return nil")
	}
}

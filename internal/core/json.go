package core

import (
	"encoding/json"
	"io"

	"tdat/internal/factors"
	"tdat/internal/series"
)

// JSONReport is the machine-readable form of a TransferReport — what a
// collector-side deployment would ship to a monitoring pipeline.
type JSONReport struct {
	Sender    string  `json:"sender"`
	Receiver  string  `json:"receiver"`
	StartSec  float64 `json:"start_sec"`
	EndSec    float64 `json:"end_sec"`
	Duration  float64 `json:"duration_sec"`
	RTTMillis float64 `json:"rtt_ms"`
	MSS       int     `json:"mss"`
	MaxWindow int     `json:"max_adv_window"`

	DataBytes   int64 `json:"data_bytes"`
	DataPackets int   `json:"data_packets"`
	Retransmits int   `json:"retransmits"`
	GapFills    int   `json:"gap_fills"`
	Reordered   int   `json:"reordered"`

	// Factors holds the 8-factor ratio vector keyed by factor name.
	Factors map[string]float64 `json:"factors"`
	// Groups holds the 3-group ratios.
	Groups map[string]float64 `json:"groups"`
	// MajorGroups lists groups over the threshold, most limiting first.
	MajorGroups []string `json:"major_groups"`
	Threshold   float64  `json:"threshold"`

	TimerMillis       float64 `json:"timer_ms,omitempty"`
	TimerGaps         int     `json:"timer_gaps,omitempty"`
	TimerDelaySec     float64 `json:"timer_delay_sec,omitempty"`
	ConsecEpisodes    int     `json:"consecutive_loss_episodes,omitempty"`
	ConsecMaxRun      int     `json:"consecutive_loss_max_run,omitempty"`
	ConsecDelaySec    float64 `json:"consecutive_loss_delay_sec,omitempty"`
	ZeroAckBug        bool    `json:"zero_ack_bug,omitempty"`
	RecoveredMessages int     `json:"bgp_messages,omitempty"`

	// Series maps every catalog series to its total covered seconds within
	// the transfer window.
	Series map[string]float64 `json:"series_sec"`
}

// JSON converts the report for serialization.
func (t *TransferReport) JSON() *JSONReport {
	p := t.Conn.Profile
	out := &JSONReport{
		Sender:      t.Conn.Sender.String(),
		Receiver:    t.Conn.Receiver.String(),
		StartSec:    float64(t.Transfer.Start) / 1e6,
		EndSec:      float64(t.Transfer.End) / 1e6,
		Duration:    float64(t.Duration()) / 1e6,
		RTTMillis:   float64(p.RTT) / 1e3,
		MSS:         p.MSS,
		MaxWindow:   p.MaxAdvWindow,
		DataBytes:   p.TotalDataBytes,
		DataPackets: p.TotalDataPackets,
		Retransmits: p.RetransmitCount,
		GapFills:    p.GapFillCount,
		Reordered:   p.ReorderCount,
		Factors:     map[string]float64{},
		Groups:      map[string]float64{},
		Threshold:   t.Factors.Threshold,
		ZeroAckBug:  t.ZeroAckBug,
		Series:      map[string]float64{},
	}
	for f := factors.Factor(0); f <= factors.NetLoss; f++ {
		out.Factors[f.String()] = t.Factors.V.At(f)
	}
	for g := factors.GroupSender; g <= factors.GroupNetwork; g++ {
		out.Groups[g.String()] = t.Factors.G.At(g)
	}
	for _, g := range t.Factors.MajorGroups {
		out.MajorGroups = append(out.MajorGroups, g.String())
	}
	if t.Timer != nil {
		out.TimerMillis = float64(t.Timer.TimerMicros) / 1e3
		out.TimerGaps = t.Timer.Gaps
		out.TimerDelaySec = float64(t.Timer.InducedDelay) / 1e6
	}
	out.ConsecEpisodes = t.ConsecLoss.Episodes
	out.ConsecMaxRun = t.ConsecLoss.MaxRun
	out.ConsecDelaySec = float64(t.ConsecLoss.InducedDelay) / 1e6
	out.RecoveredMessages = t.Messages
	window := t.Transfer
	for _, n := range series.All {
		clipped := t.Catalog.Get(n).Query(window)
		var total float64
		for _, r := range clipped {
			total += float64(r.Len())
		}
		out.Series[string(n)] = total / 1e6
	}
	return out
}

// WriteJSON serializes the report (indented) to w.
func (t *TransferReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.JSON())
}

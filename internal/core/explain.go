package core

import (
	"encoding/json"
	"fmt"
	"io"

	"tdat/internal/explain"
)

// TransferExplain is one transfer's evidence record in the explain report.
type TransferExplain struct {
	// Conn is the connection 4-tuple ("sender->receiver").
	Conn string `json:"conn"`
	// TransferStartSec/TransferEndSec anchor the evidence intervals on the
	// capture timeline.
	TransferStartSec float64 `json:"transfer_start_sec"`
	TransferEndSec   float64 `json:"transfer_end_sec"`
	// Evidence lists every rule evaluation in pipeline order.
	Evidence []explain.Evidence `json:"evidence"`
}

// ExplainReport collects per-transfer evidence for a whole run, in the
// report's (deterministic) transfer order.
type ExplainReport struct {
	Transfers []TransferExplain `json:"transfers"`
}

// Explain assembles the evidence report. Transfers analyzed without
// Config.Explain contribute empty evidence lists, so the report shape is
// stable either way.
func (r *Report) Explain() *ExplainReport {
	out := &ExplainReport{Transfers: make([]TransferExplain, 0, len(r.Transfers))}
	for _, t := range r.Transfers {
		out.Transfers = append(out.Transfers, TransferExplain{
			Conn:             connLabel(t.Conn),
			TransferStartSec: float64(t.Transfer.Start) / 1e6,
			TransferEndSec:   float64(t.Transfer.End) / 1e6,
			Evidence:         t.Evidence,
		})
	}
	return out
}

// WriteText renders the evidence report deterministically: one block per
// transfer, evidence lines in recording order.
func (e *ExplainReport) WriteText(w io.Writer) error {
	for i, t := range e.Transfers {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "evidence %s (transfer %.3fs-%.3fs, %d rule evaluations)\n",
			t.Conn, t.TransferStartSec, t.TransferEndSec, len(t.Evidence))
		if err := explain.WriteText(w, "  ", t.Evidence); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the evidence report as indented JSON. Field order is
// fixed by the struct tags and slices preserve recording order, so the
// output is byte-deterministic.
func (e *ExplainReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// Degradation reporting: real sniffer captures arrive damaged — truncated
// mid-record by a full disk, snapped, bit-flipped, clock-stepped,
// half-captured. The lenient analysis path (the default) survives all of it
// and accounts for every concession here, per record and per connection, so
// an operator can judge whether the remaining analysis is trustworthy.
// Config.Strict turns each of these concessions into a fatal error instead.

package core

import (
	"errors"
	"fmt"
	"io"

	"tdat/internal/flows"
	"tdat/internal/obs"
)

// ErrStrict reports that strict mode refused degraded input. Use errors.Is
// to distinguish a strict refusal (the capture was damaged but analyzable)
// from a hard failure (not a pcap at all).
var ErrStrict = errors.New("core: strict mode: damaged capture")

// RecordIssue locates one pcap-level read failure (a truncated or corrupt
// record) in the input file.
type RecordIssue struct {
	// Index is the 0-based record index where reading failed.
	Index int64
	// Offset is the file byte offset of the damage.
	Offset int64
	// Err describes the failure.
	Err string
}

// ConnIssue records one per-connection concession of the lenient path.
type ConnIssue struct {
	// Conn is the connection 4-tuple ("sender->receiver").
	Conn string
	// Kind classifies the concession: "bgp-framing" (the recovered payload
	// stopped decoding as BGP) or "reassembly-cap" (the stream exceeded
	// Config.MaxReassemblyBytes and was truncated).
	Kind string
	// Detail is the human-readable specifics.
	Detail string
}

// Degradation is the structured account of everything the lenient analysis
// path skipped, evicted, or truncated while surviving a damaged capture.
// The zero value means the input was clean.
type Degradation struct {
	// UndecodableRecords counts records whose frames failed to decode as
	// Ethernet/IPv4/TCP (equal to Report.SkippedPackets).
	UndecodableRecords int
	// RecordErrors lists pcap-level read failures. Classic pcap has no
	// per-record resync point, so at most one is possible per file: the
	// record where reading stopped.
	RecordErrors []RecordIssue
	// TimestampRegressions counts packets whose capture timestamp went
	// backwards within a connection (stepped sniffer clock); analysis
	// re-sorts, but inter-arrival artifacts may remain.
	TimestampRegressions int64
	// EvictedConnections counts connections force-completed by the
	// Config.MaxConnections cap before their traffic ended.
	EvictedConnections int
	// ResumedConnections counts connections whose later packets arrived
	// after an eviction and were analyzed as a separate partial connection.
	ResumedConnections int
	// ConnIssues lists per-connection reassembly concessions in connection
	// creation order.
	ConnIssues []ConnIssue
}

// Count totals the degradation events.
func (d *Degradation) Count() int {
	return d.UndecodableRecords + len(d.RecordErrors) + len(d.ConnIssues) +
		d.EvictedConnections + d.ResumedConnections + int(d.TimestampRegressions)
}

// Empty reports a clean run: nothing was skipped, evicted, or truncated.
func (d *Degradation) Empty() bool { return d.Count() == 0 }

// fromDemux folds the demuxer's tallies in.
func (d *Degradation) fromDemux(s flows.DemuxStats) {
	d.TimestampRegressions = s.TimestampRegressions
	d.EvictedConnections = s.Evicted
	d.ResumedConnections = s.Resumed
}

// addTransfer folds one analyzed connection's concessions in. Called from
// the ordered merge, so ConnIssues is deterministic at any worker count.
func (d *Degradation) addTransfer(t *TransferReport) {
	if t.ReassemblyError != "" {
		d.ConnIssues = append(d.ConnIssues, ConnIssue{
			Conn: connLabel(t.Conn), Kind: "bgp-framing", Detail: t.ReassemblyError,
		})
	}
	if t.ReassemblyTruncated > 0 {
		d.ConnIssues = append(d.ConnIssues, ConnIssue{
			Conn: connLabel(t.Conn), Kind: "reassembly-cap",
			Detail: fmt.Sprintf("%d recovered stream bytes beyond the byte cap left undecoded", t.ReassemblyTruncated),
		})
	}
}

// observe exports the tallies as metrics.
func (d *Degradation) observe(reg *obs.Registry) {
	reg.Counter("tdat_ingest_record_errors_total").Add(int64(len(d.RecordErrors)))
	framing, capped := 0, 0
	for _, ci := range d.ConnIssues {
		switch ci.Kind {
		case "bgp-framing":
			framing++
		case "reassembly-cap":
			capped++
		}
	}
	reg.Counter("tdat_reassembly_framing_errors_total").Add(int64(framing))
	reg.Counter("tdat_reassembly_capped_conns_total").Add(int64(capped))
}

// strictErr returns the ErrStrict-wrapped refusal for the first degradation
// event, or nil when the run was clean.
func (d *Degradation) strictErr() error {
	switch {
	case len(d.RecordErrors) > 0:
		r := d.RecordErrors[0]
		return fmt.Errorf("%w: record %d at byte %d: %s", ErrStrict, r.Index, r.Offset, r.Err)
	case d.UndecodableRecords > 0:
		return fmt.Errorf("%w: %d undecodable record(s)", ErrStrict, d.UndecodableRecords)
	case d.TimestampRegressions > 0:
		return fmt.Errorf("%w: capture timestamps regress (%d packet(s))", ErrStrict, d.TimestampRegressions)
	case d.EvictedConnections > 0:
		return fmt.Errorf("%w: connection cap evicted %d connection(s)", ErrStrict, d.EvictedConnections)
	case len(d.ConnIssues) > 0:
		ci := d.ConnIssues[0]
		return fmt.Errorf("%w: %s: %s: %s", ErrStrict, ci.Conn, ci.Kind, ci.Detail)
	}
	return nil
}

// WriteText renders the degradation report. Callers print it only when
// Empty is false, so clean-trace output stays byte-identical.
func (d *Degradation) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "degraded input: %d concession(s)\n", d.Count()); err != nil {
		return err
	}
	if d.UndecodableRecords > 0 {
		fmt.Fprintf(w, "  undecodable records skipped: %d\n", d.UndecodableRecords)
	}
	for _, r := range d.RecordErrors {
		fmt.Fprintf(w, "  pcap damage at record %d (byte %d): %s\n", r.Index, r.Offset, r.Err)
	}
	if d.TimestampRegressions > 0 {
		fmt.Fprintf(w, "  capture timestamps regressed on %d packet(s)\n", d.TimestampRegressions)
	}
	if d.EvictedConnections > 0 {
		fmt.Fprintf(w, "  connections force-completed by the connection cap: %d\n", d.EvictedConnections)
	}
	if d.ResumedConnections > 0 {
		fmt.Fprintf(w, "  connections resumed as partial after eviction: %d\n", d.ResumedConnections)
	}
	for _, ci := range d.ConnIssues {
		fmt.Fprintf(w, "  %s: %s: %s\n", ci.Conn, ci.Kind, ci.Detail)
	}
	return nil
}

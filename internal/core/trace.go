package core

import (
	"tdat/internal/factors"
	"tdat/internal/obs"
	"tdat/internal/series"
	"tdat/internal/timerange"
)

// Trace lane layout: every analyzed connection becomes one trace process
// with a fixed set of lanes, so transfers line up vertically in Perfetto.
const (
	laneTransfer   = 0 // the transfer window itself
	laneZeroWindow = 1 // receiver zero-window stalls
	laneAdvBnd     = 2 // advertised-window-bounded sending
	laneAppIdle    = 3 // sender-application idle
	laneLoss       = 4 // loss recovery + retransmit instants
	laneFactors    = 5 // factor attributions (async spans)
)

// maxLaneEvents caps the per-lane event count so a pathological capture
// (tens of thousands of loss waves) cannot render the trace unloadable.
const maxLaneEvents = 500

// traceEpoch returns the earliest transfer start across the report — the
// trace's time origin, so timestamps stay small and viewer-friendly.
func (r *Report) traceEpoch() timerange.Micros {
	var epoch timerange.Micros
	for i, t := range r.Transfers {
		if i == 0 || t.Transfer.Start < epoch {
			epoch = t.Transfer.Start
		}
	}
	return epoch
}

// TraceEvents renders the report's per-connection transfer timelines as
// Chrome trace_event records: one process per connection (pids starting at
// basePid), with lanes for the transfer window, the blocking-interval
// series, loss recovery (plus retransmit instants), and the factor
// attributions as async spans. Timestamps are µs since the earliest
// transfer start. The output depends only on the report, so it is
// byte-deterministic at any worker×shard count.
func (r *Report) TraceEvents(basePid int64) []obs.TraceEvent {
	epoch := r.traceEpoch()
	var out []obs.TraceEvent
	for i, t := range r.Transfers {
		pid := basePid + int64(i)
		out = append(out, t.traceEvents(pid, epoch)...)
	}
	return out
}

// laneRanges renders a series' ranges (clipped to the transfer window) as
// complete events on one lane.
func laneRanges(out []obs.TraceEvent, s *timerange.Set, window timerange.Range,
	epoch timerange.Micros, name string, pid, tid int64) []obs.TraceEvent {
	n := 0
	for _, rg := range s.Query(window) {
		if n >= maxLaneEvents {
			break
		}
		n++
		rg = rg.Intersect(window)
		dur := int64(rg.Len())
		if dur < 1 {
			dur = 1
		}
		out = append(out, obs.TraceEvent{
			Name: name, Cat: "series", Ph: "X",
			Ts: int64(rg.Start - epoch), Dur: dur, Pid: pid, Tid: tid,
		})
	}
	return out
}

// traceEvents renders one transfer's timeline.
func (t *TransferReport) traceEvents(pid int64, epoch timerange.Micros) []obs.TraceEvent {
	window := t.Transfer
	conn := connLabel(t.Conn)
	lanes := []struct {
		tid  int64
		name string
	}{
		{laneTransfer, "transfer"},
		{laneZeroWindow, "zero-window"},
		{laneAdvBnd, "adv-blocked"},
		{laneAppIdle, "app-idle"},
		{laneLoss, "loss"},
		{laneFactors, "factors"},
	}
	out := make([]obs.TraceEvent, 0, 8+len(lanes))
	out = append(out, obs.MetaEvent("process_name", pid, 0, conn))
	for _, l := range lanes {
		out = append(out, obs.MetaEvent("thread_name", pid, l.tid, l.name))
	}

	// The transfer window itself, annotated with the classification.
	transferArgs := map[string]any{
		"conn":   conn,
		"groups": t.Factors.G.String(),
	}
	if !t.Factors.Unknown() {
		g := t.Factors.MajorGroups[0]
		transferArgs["dominant_group"] = g.String()
		transferArgs["dominant_factor"] = t.Factors.DominantFactor[g].String()
	}
	dur := int64(window.Len())
	if dur < 1 {
		dur = 1
	}
	out = append(out, obs.TraceEvent{
		Name: "transfer", Cat: "transfer", Ph: "X",
		Ts: int64(window.Start - epoch), Dur: dur, Pid: pid, Tid: laneTransfer,
		Args: transferArgs,
	})

	// Blocking-interval lanes.
	out = laneRanges(out, t.Catalog.Get(series.ZeroAdvWindow), window, epoch,
		"zero-window", pid, laneZeroWindow)
	out = laneRanges(out, t.Catalog.Get(series.AdvBndOut), window, epoch,
		"adv-blocked", pid, laneAdvBnd)
	out = laneRanges(out, t.Catalog.Get(series.SendAppLimited), window, epoch,
		"app-idle", pid, laneAppIdle)

	// Loss recovery as spans, retransmits as instant events on the same lane.
	out = laneRanges(out, t.Catalog.Get(series.LossRecovery), window, epoch,
		"loss-recovery", pid, laneLoss)
	n := 0
	for _, rg := range t.Catalog.Get(series.Retransmission).Query(window) {
		if n >= maxLaneEvents {
			break
		}
		n++
		out = append(out, obs.TraceEvent{
			Name: "retransmit", Cat: "loss", Ph: "i",
			Ts: int64(rg.Intersect(window).Start - epoch), Pid: pid, Tid: laneLoss,
		})
	}

	// Factor attributions as async spans: one b/e pair per contributing
	// interval, ID-spaced per factor so pairs never collide.
	for f := factors.SenderApp; f <= factors.NetLoss; f++ {
		if t.Factors.V.At(f) <= 0 {
			continue
		}
		name := f.String()
		set := t.Catalog.Get(factorSeries(f))
		ri := int64(0)
		for _, rg := range set.Query(window) {
			if ri >= maxLaneEvents {
				break
			}
			rg = rg.Intersect(window)
			id := int64(f)<<20 | ri
			ri++
			end := rg.End
			if end <= rg.Start {
				end = rg.Start + 1
			}
			out = append(out,
				obs.TraceEvent{
					Name: name, Cat: "attribution", Ph: "b",
					Ts: int64(rg.Start - epoch), Pid: pid, Tid: laneFactors, ID: id,
				},
				obs.TraceEvent{
					Name: name, Cat: "attribution", Ph: "e",
					Ts: int64(end - epoch), Pid: pid, Tid: laneFactors, ID: id,
				})
		}
	}
	return out
}

// factorSeries mirrors the factors package's factor→series mapping for
// timeline rendering.
func factorSeries(f factors.Factor) series.Name {
	switch f {
	case factors.SenderApp:
		return series.SendAppLimited
	case factors.SenderCwnd:
		return series.CwndBndOut
	case factors.SenderLocalLoss:
		return series.SendLocalLoss
	case factors.ReceiverApp:
		return series.SmallAdvBndOut
	case factors.ReceiverWindow:
		return series.LargeAdvBndOut
	case factors.ReceiverLocalLoss:
		return series.RecvLocalLoss
	case factors.NetBandwidth:
		return series.BandwidthLimited
	default:
		return series.NetworkLoss
	}
}

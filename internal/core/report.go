package core

import (
	"fmt"
	"io"

	"tdat/internal/asciiplot"
	"tdat/internal/factors"
	"tdat/internal/series"
)

// WriteText renders a human-readable analysis of one transfer, including
// the factor vectors and (optionally) the series lanes.
func (t *TransferReport) WriteText(w io.Writer, plotSeries bool) error {
	p := t.Conn.Profile
	fmt.Fprintf(w, "connection %s -> %s\n", t.Conn.Sender, t.Conn.Receiver)
	fmt.Fprintf(w, "  transfer: %.3fs - %.3fs (duration %.3fs)\n",
		float64(t.Transfer.Start)/1e6, float64(t.Transfer.End)/1e6, float64(t.Duration())/1e6)
	fmt.Fprintf(w, "  profile: rtt=%.2fms mss=%d maxwin=%d data=%dB/%dpkts retx=%d oos=%d reord=%d\n",
		float64(p.RTT)/1e3, p.MSS, p.MaxAdvWindow,
		p.TotalDataBytes, p.TotalDataPackets, p.RetransmitCount, p.GapFillCount, p.ReorderCount)
	if t.MCT != nil {
		fmt.Fprintf(w, "  mct: %d updates, %d unique prefixes\n", t.MCT.Updates, t.MCT.UniquePrefixes)
	}
	fmt.Fprintf(w, "  group ratios G=(sender, receiver, network) = %s\n", t.Factors.G)
	fmt.Fprintf(w, "  factor ratios V = %s\n", t.Factors.V)
	if t.Factors.Unknown() {
		fmt.Fprintf(w, "  major: (none above %.0f%%)\n", t.Factors.Threshold*100)
	} else {
		fmt.Fprintf(w, "  major:")
		for _, g := range t.Factors.MajorGroups {
			fmt.Fprintf(w, " %s(%.0f%%, dominant=%s)",
				g, t.Factors.G.At(g)*100, t.Factors.DominantFactor[g])
		}
		fmt.Fprintln(w)
	}
	if t.Timer != nil {
		fmt.Fprintf(w, "  detected pacing timer: %.0fms over %d gaps (+%.2fs delay)\n",
			float64(t.Timer.TimerMicros)/1e3, t.Timer.Gaps, float64(t.Timer.InducedDelay)/1e6)
	}
	if t.ConsecLoss.Episodes > 0 {
		fmt.Fprintf(w, "  consecutive losses: %d episode(s), max run %d (+%.2fs delay)\n",
			t.ConsecLoss.Episodes, t.ConsecLoss.MaxRun, float64(t.ConsecLoss.InducedDelay)/1e6)
	}
	if t.ZeroAckBug {
		fmt.Fprintf(w, "  ZeroAckBug conflict detected (zero window ∩ upstream loss)\n")
	}
	// Per-wave loss annotations (paper §III-A: each wave records its
	// packets and bytes), capped to keep the report readable.
	for _, name := range []series.Name{series.DownstreamLoss, series.UpstreamLoss} {
		stats := t.Catalog.RangeStats(name)
		for i, s := range stats {
			if i >= 4 {
				fmt.Fprintf(w, "  %s: … %d more waves\n", name, len(stats)-i)
				break
			}
			fmt.Fprintf(w, "  %s wave %.3fs-%.3fs: %d pkts / %dB (%d retx)\n",
				name, float64(s.Range.Start)/1e6, float64(s.Range.End)/1e6,
				s.DataPackets, s.DataBytes, s.Retransmits)
		}
	}
	if !plotSeries {
		return nil
	}
	rows := []asciiplot.Row{
		{Label: "Transmission", Set: t.Catalog.Get(series.Transmission)},
		{Label: "Outstanding", Set: t.Catalog.Get(series.Outstanding)},
		{Label: "SendAppLimited", Set: t.Catalog.Get(series.SendAppLimited)},
		{Label: "AdvBndOut", Set: t.Catalog.Get(series.AdvBndOut)},
		{Label: "CwndBndOut", Set: t.Catalog.Get(series.CwndBndOut)},
		{Label: "UpstreamLoss", Set: t.Catalog.Get(series.UpstreamLoss)},
		{Label: "DownstreamLoss", Set: t.Catalog.Get(series.DownstreamLoss)},
		{Label: "ZeroAdvWindow", Set: t.Catalog.Get(series.ZeroAdvWindow)},
	}
	return asciiplot.Series(w, t.Transfer, rows, 100)
}

// Summary returns a one-line classification of the transfer.
func (t *TransferReport) Summary() string {
	g, ratio := t.Factors.Dominant()
	dom := factors.Factor(-1)
	if f, ok := t.Factors.DominantFactor[g]; ok {
		dom = f
	}
	return fmt.Sprintf("%s -> %s dur=%.2fs dominant=%s/%s (%.0f%%)",
		t.Conn.Sender, t.Conn.Receiver, float64(t.Duration())/1e6, g, dom, ratio*100)
}

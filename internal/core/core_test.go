package core

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"strings"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/factors"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/netem"
	"tdat/internal/pcapio"
	"tdat/internal/timerange"
	"tdat/internal/tracegen"
)

// analyzeScenario runs one simulator scenario and the full analyzer over
// its sniffer capture, returning the single transfer report.
func analyzeScenario(t *testing.T, sc tracegen.Scenario) *TransferReport {
	t.Helper()
	tr := tracegen.Run(sc)
	if tr.RoutesDelivered == 0 {
		t.Fatalf("scenario %v delivered no routes", sc.Kind)
	}
	a := New(Config{})
	rep := a.AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 1 {
		t.Fatalf("analyzer found %d transfers, want 1", len(rep.Transfers))
	}
	return rep.Transfers[0]
}

func TestEndToEndPacedIsSenderAppLimited(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 1, Routes: 6_000,
		PacingTimer: 200_000, PacingBudget: 24,
	})
	g, ratio := rep.Factors.Dominant()
	if g != factors.GroupSender {
		t.Errorf("dominant group = %v (G=%v)", g, rep.Factors.G)
	}
	if ratio < 0.5 {
		t.Errorf("sender ratio = %.2f, want > 0.5", ratio)
	}
	if rep.Factors.DominantFactor[factors.GroupSender] != factors.SenderApp {
		t.Errorf("dominant factor = %v, want bgp-sender-app",
			rep.Factors.DominantFactor[factors.GroupSender])
	}
	if rep.Timer == nil {
		t.Fatal("pacing timer not detected")
	}
	if rep.Timer.TimerMicros < 150_000 || rep.Timer.TimerMicros > 250_000 {
		t.Errorf("timer = %d µs, want ≈200ms", rep.Timer.TimerMicros)
	}
}

func TestEndToEndSlowReceiverIsReceiverLimited(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindSlowReceiver, Seed: 2, Routes: 15_000,
		CollectorRate: 20_000,
	})
	if rep.Factors.G.At(factors.GroupReceiver) < 0.3 {
		t.Errorf("receiver ratio = %.2f (G=%v V=%v)",
			rep.Factors.G.At(factors.GroupReceiver), rep.Factors.G, rep.Factors.V)
	}
	g, _ := rep.Factors.Dominant()
	if g != factors.GroupReceiver {
		t.Errorf("dominant group = %v (G=%v)", g, rep.Factors.G)
	}
	if rep.Factors.DominantFactor[factors.GroupReceiver] != factors.ReceiverApp {
		t.Errorf("dominant receiver factor = %v, want bgp-receiver-app",
			rep.Factors.DominantFactor[factors.GroupReceiver])
	}
}

func TestEndToEndSmallWindowIsWindowLimited(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindSmallWindow, Seed: 3, Routes: 20_000,
		RecvBuf: 16384, RTT: 30_000,
	})
	if rep.Factors.G.At(factors.GroupReceiver) < 0.3 {
		t.Errorf("receiver ratio = %.2f (G=%v V=%v)",
			rep.Factors.G.At(factors.GroupReceiver), rep.Factors.G, rep.Factors.V)
	}
	// A fully open (but small) max window bounding the transfer is the
	// "TCP advertised window" parameter factor.
	if rep.Factors.V.At(factors.ReceiverWindow) < rep.Factors.V.At(factors.ReceiverApp) {
		t.Errorf("window factor %.2f below receiver-app %.2f",
			rep.Factors.V.At(factors.ReceiverWindow), rep.Factors.V.At(factors.ReceiverApp))
	}
}

func TestEndToEndUpstreamLossIsNetworkLimited(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindUpstreamLoss, Seed: 4, Routes: 12_000, LossRate: 0.05,
	})
	if rep.Factors.V.At(factors.NetLoss) < 0.1 {
		t.Errorf("network loss ratio = %.2f (V=%v)", rep.Factors.V.At(factors.NetLoss), rep.Factors.V)
	}
	if rep.Conn.Profile.GapFillCount == 0 {
		t.Error("no gap fills recorded for an upstream-lossy path")
	}
	if rep.Conn.Profile.RetransmitCount > rep.Conn.Profile.GapFillCount {
		t.Errorf("upstream loss should show as gap fills: retx=%d gapfill=%d",
			rep.Conn.Profile.RetransmitCount, rep.Conn.Profile.GapFillCount)
	}
}

func TestEndToEndDownstreamLossIsReceiverLocal(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindDownstreamLoss, Seed: 5, Routes: 12_000, LossRate: 0.05,
	})
	if rep.Factors.V.At(factors.ReceiverLocalLoss) < 0.05 {
		t.Errorf("receiver-local loss ratio = %.2f (V=%v)",
			rep.Factors.V.At(factors.ReceiverLocalLoss), rep.Factors.V)
	}
	if rep.Conn.Profile.RetransmitCount == 0 {
		t.Error("no captured retransmissions for a downstream-lossy path")
	}
}

func TestEndToEndBandwidthLimited(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindBandwidth, Seed: 6, Routes: 12_000, UpstreamRate: 60_000,
	})
	if rep.Factors.V.At(factors.NetBandwidth) < 0.3 {
		t.Errorf("bandwidth ratio = %.2f (V=%v)", rep.Factors.V.At(factors.NetBandwidth), rep.Factors.V)
	}
}

func TestEndToEndZeroAckBugDetected(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindZeroAckBug, Seed: 7, Routes: 12_000,
	})
	if !rep.ZeroAckBug {
		t.Errorf("ZeroAckBug not flagged (V=%v)", rep.Factors.V)
	}
}

func TestEndToEndMCTMatchesGroundTruth(t *testing.T) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 8, Routes: 8_000})
	a := New(Config{})
	rep := a.AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 1 {
		t.Fatal("want one transfer")
	}
	got := rep.Transfers[0]
	if got.MCT == nil {
		t.Fatal("MCT did not produce a transfer end")
	}
	// The analyzer's duration must agree with the simulator's ground truth
	// within 20% (MCT sees arrival times; ground truth is app processing).
	gd := float64(tr.GroundDuration)
	ad := float64(got.Duration())
	if ad < gd*0.7 || ad > gd*1.3 {
		t.Errorf("analyzer duration %.2fs vs ground %.2fs", ad/1e6, gd/1e6)
	}
	if got.Messages == 0 {
		t.Error("no BGP messages recovered")
	}
}

func TestAnalyzePcapRoundTrip(t *testing.T) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 9, Routes: 4_000})
	// Serialize the capture to pcap bytes the way the sniffer box would.
	var buf bytes.Buffer
	w := pcapio.NewWriter(&buf)
	for _, c := range tr.Captures {
		frame, err := c.Pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(c.Time, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	a := New(Config{})
	rep, err := a.AnalyzePcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transfers) != 1 || rep.SkippedPackets != 0 {
		t.Fatalf("transfers=%d skipped=%d", len(rep.Transfers), rep.SkippedPackets)
	}
	if rep.Transfers[0].Conn.Profile.TotalDataBytes == 0 {
		t.Error("pcap round trip lost payload")
	}
}

func TestWriteTextReport(t *testing.T) {
	rep := analyzeScenario(t, tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 10, Routes: 3_000, PacingTimer: 200_000, PacingBudget: 24,
	})
	var sb strings.Builder
	if err := rep.WriteText(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"group ratios", "major:", "Transmission", "SendAppLimited"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestAnalyzeConnectionWithEnd(t *testing.T) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 11, Routes: 4_000})
	a := New(Config{})
	rep := a.AnalyzePackets(tr.Packets())
	c := rep.Transfers[0].Conn
	forced := a.AnalyzeConnectionWithEnd(c, c.Profile.Start+1_000_000)
	if forced.Duration() != 1_000_000 {
		t.Errorf("forced duration = %d", forced.Duration())
	}
	// Window clamping: ratios stay within [0,1].
	for f := 0; f < 8; f++ {
		if r := forced.Factors.V[f]; r < 0 || r > 1.0001 {
			t.Errorf("factor %d ratio %v out of range", f, r)
		}
	}
}

func TestSnifferDirectionConsistency(t *testing.T) {
	// The flows orientation must agree with the simulator's: data flows
	// router → collector.
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 12, Routes: 3_000})
	a := New(Config{})
	rep := a.AnalyzePackets(tr.Packets())
	c := rep.Transfers[0].Conn
	if c.Sender.Port != 179 {
		t.Errorf("sender = %v, want the router (port 179)", c.Sender)
	}
	var dataDir int
	for _, cap := range tr.Captures {
		if cap.Dir == netem.DirData && len(cap.Pkt.Payload) > 0 {
			dataDir++
		}
	}
	if dataDir == 0 {
		t.Error("no data-direction captures")
	}
}

func TestAnalyzeConnectionWithUpdatesPinsEnd(t *testing.T) {
	tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 20, Routes: 4_000})
	a := New(Config{})
	conns := flows.Extract(tr.Packets())
	if len(conns) != 1 {
		t.Fatal("want one connection")
	}
	// Build MCT updates from the collector's archive (the Quagga pipeline).
	var ups []mct.Update
	for _, e := range tr.Archive {
		m, err := bgp.Parse(e.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if u, ok := m.(*bgp.Update); ok && len(u.NLRI) > 0 {
			ups = append(ups, mct.Update{Time: e.Time, Prefixes: u.NLRI})
		}
	}
	rep := a.AnalyzeConnectionWithUpdates(conns[0], ups)
	if rep.MCT == nil {
		t.Fatal("archive-driven analysis produced no MCT result")
	}
	// Archive timestamps ARE the ground truth end.
	if rep.Transfer.End != tr.GroundDuration {
		t.Errorf("end = %d, ground = %d", rep.Transfer.End, tr.GroundDuration)
	}
	// Empty archive falls back to the last data packet.
	rep2 := a.AnalyzeConnectionWithUpdates(conns[0], nil)
	if rep2.MCT != nil || rep2.Duration() <= 0 {
		t.Errorf("fallback: mct=%v dur=%d", rep2.MCT, rep2.Duration())
	}
}

func TestAnalyzerRobustToSnifferDrops(t *testing.T) {
	// tcpdump drops leave void periods in the trace (paper §II-A); the
	// analyzer must survive a decimated capture and still classify.
	tr := tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 21, Routes: 6_000,
		PacingTimer: 200_000, PacingBudget: 24,
	})
	pkts := tr.Packets()
	var thinned []flows.TimedPacket
	for i, p := range pkts {
		if i%11 == 3 {
			continue // drop ~9% of captured packets
		}
		thinned = append(thinned, p)
	}
	a := New(Config{})
	rep := a.AnalyzePackets(thinned)
	if len(rep.Transfers) != 1 {
		t.Fatalf("transfers = %d", len(rep.Transfers))
	}
	got := rep.Transfers[0]
	g, ratio := got.Factors.Dominant()
	if g != factors.GroupSender || ratio < 0.4 {
		t.Errorf("decimated capture misclassified: %v %.2f (V=%v)", g, ratio, got.Factors.V)
	}
}

func TestAnalyzerDeterministic(t *testing.T) {
	run := func() string {
		tr := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindUpstreamLoss, Seed: 22, Routes: 6_000})
		rep := New(Config{}).AnalyzePackets(tr.Packets())
		return rep.Transfers[0].Factors.V.String() + rep.Transfers[0].Factors.G.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic analysis: %s vs %s", a, b)
	}
}

func TestMultiConnectionCapture(t *testing.T) {
	// Two transfers in one capture file (different routers): the analyzer
	// must separate and classify both.
	tr1 := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindPaced, Seed: 23, Routes: 4_000, PacingBudget: 24})
	tr2 := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindSmallWindow, Seed: 24, Routes: 8_000, RecvBuf: 16384, RTT: 30_000})
	merged := append(tr1.Packets(), tr2.Packets()...)
	// Disambiguate the second connection's addresses.
	for _, p := range tr2.Packets() {
		_ = p
	}
	// tr2 shares IPs with tr1; rewrite its router address so the flows layer
	// sees two connections.
	for _, tp := range merged[len(tr1.Packets()):] {
		if tp.Pkt.TCP.SrcPort == 179 {
			tp.Pkt.IP.Src = netip.MustParseAddr("10.0.0.9")
		} else {
			tp.Pkt.IP.Dst = netip.MustParseAddr("10.0.0.9")
		}
	}
	rep := New(Config{}).AnalyzePackets(merged)
	if len(rep.Transfers) != 2 {
		t.Fatalf("transfers = %d, want 2", len(rep.Transfers))
	}
	for _, t2 := range rep.Transfers {
		if t2.Factors.Unknown() {
			t.Errorf("transfer %s unclassified", t2.Conn.Sender)
		}
	}
}

func TestAnalyzeChurnWindow(t *testing.T) {
	// Paper §VII future work: analyze the failure-triggered burst on an
	// established session, not just the initial transfer. The paced sender
	// must be classified sender-app limited within the churn window alone.
	ct := tracegen.RunChurn(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 51, Routes: 6_000,
		PacingTimer: 200_000, PacingBudget: 24,
	}, 5_000_000, 0.5)
	a := New(Config{})
	conns := flows.Extract(ct.Packets())
	if len(conns) != 1 {
		t.Fatal("want one connection")
	}
	rep := a.AnalyzeConnectionWindow(conns[0], timerange.R(ct.ChurnStart, ct.ChurnEnd))
	g, ratio := rep.Factors.Dominant()
	if g != factors.GroupSender || ratio < 0.5 {
		t.Errorf("churn window: %v %.2f (V=%v)", g, ratio, rep.Factors.V)
	}
	if rep.Timer == nil {
		t.Error("pacing timer not detected within the churn window")
	} else if rep.Timer.TimerMicros < 150_000 || rep.Timer.TimerMicros > 250_000 {
		t.Errorf("churn timer = %d µs", rep.Timer.TimerMicros)
	}
	// An empty window falls back to the whole connection.
	whole := a.AnalyzeConnectionWindow(conns[0], timerange.Range{})
	if whole.Duration() <= rep.Duration() {
		t.Errorf("whole-connection window %d not larger than churn %d",
			whole.Duration(), rep.Duration())
	}
}

func TestJSONReport(t *testing.T) {
	tr := tracegen.Run(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 60, Routes: 4_000,
		PacingTimer: 200_000, PacingBudget: 24,
	})
	rep := New(Config{}).AnalyzePackets(tr.Packets())
	j := rep.Transfers[0].JSON()
	if j.Sender == "" || j.Duration <= 0 {
		t.Errorf("json basics: %+v", j)
	}
	if len(j.Factors) != 8 || len(j.Groups) != 3 || len(j.Series) != 34 {
		t.Errorf("factor/group/series counts: %d/%d/%d",
			len(j.Factors), len(j.Groups), len(j.Series))
	}
	if j.TimerMillis < 150 || j.TimerMillis > 250 {
		t.Errorf("timer_ms = %v", j.TimerMillis)
	}
	if len(j.MajorGroups) == 0 || j.MajorGroups[0] != "sender" {
		t.Errorf("major groups = %v", j.MajorGroups)
	}
	var buf bytes.Buffer
	if err := rep.Transfers[0].WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back["sender"] != j.Sender {
		t.Errorf("round trip sender = %v", back["sender"])
	}
}

func TestResetRestartSplitsIntoTwoTransfers(t *testing.T) {
	// One capture, one 4-tuple, two table transfers separated by a RST —
	// the ISP_A-1 pattern. The analyzer must report two transfers, each
	// with its own clean sequence space.
	tr := tracegen.RunWithReset(tracegen.Scenario{
		Kind: tracegen.KindPaced, Seed: 70, Routes: 8_000,
		PacingTimer: 200_000, PacingBudget: 24,
		Horizon: 120_000_000,
	}, 700_000)
	a := New(Config{})
	rep := a.AnalyzePackets(tr.Packets())
	if len(rep.Transfers) != 2 {
		t.Fatalf("transfers = %d, want 2 (reset split)", len(rep.Transfers))
	}
	first, second := rep.Transfers[0], rep.Transfers[1]
	if first.Conn.Profile.Start >= second.Conn.Profile.Start {
		t.Error("transfers out of order")
	}
	// The second (complete) transfer must classify cleanly.
	if second.Factors.Unknown() {
		t.Errorf("second transfer unclassified: V=%v", second.Factors.V)
	}
	if second.Messages == 0 {
		t.Error("second transfer recovered no BGP messages")
	}
	// The second transfer delivered the full table.
	if tr.RoutesDelivered < 8_000 {
		t.Errorf("routes delivered = %d, want ≥ one full table", tr.RoutesDelivered)
	}
}

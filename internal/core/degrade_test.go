package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdat/internal/flows"
	"tdat/internal/packet"
	"tdat/internal/traceutil"
)

// corpusTrace loads one committed adversarial pcap from the shared corpus.
func corpusTrace(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "pcapio", "testdata", "adversarial", name))
	if err != nil {
		t.Fatalf("reading corpus trace: %v", err)
	}
	return data
}

var corpusNames = []string{
	"truncated_header.pcap",
	"truncated_record.pcap",
	"zero_snaplen.pcap",
	"corrupt_bgp_length.pcap",
	"clock_regression.pcap",
}

// TestCorpusDegradesGracefully runs the full lenient pipeline over every
// damage class of the adversarial corpus, at one worker and at several: each
// trace must complete without panicking and account for its damage in a
// non-empty degradation report.
func TestCorpusDegradesGracefully(t *testing.T) {
	for _, name := range corpusNames {
		for _, workers := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				data := corpusTrace(t, name)
				a := New(Config{Workers: workers})
				rep, err := a.AnalyzePcap(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("lenient analysis failed: %v", err)
				}
				if rep.Degradation.Empty() {
					t.Fatal("damaged trace produced an empty degradation report")
				}
				var buf bytes.Buffer
				if err := rep.Degradation.WriteText(&buf); err != nil {
					t.Fatalf("WriteText: %v", err)
				}
				if !strings.HasPrefix(buf.String(), "degraded input:") {
					t.Errorf("unexpected report rendering:\n%s", buf.String())
				}
			})
		}
	}
}

// TestCorpusDegradationKinds pins each damage class to the degradation
// dimension it must show up under.
func TestCorpusDegradationKinds(t *testing.T) {
	check := map[string]func(t *testing.T, d *Degradation){
		"truncated_header.pcap": func(t *testing.T, d *Degradation) {
			if len(d.RecordErrors) == 0 {
				t.Error("no RecordErrors for a truncated file header")
			}
		},
		"truncated_record.pcap": func(t *testing.T, d *Degradation) {
			if len(d.RecordErrors) != 1 {
				t.Fatalf("RecordErrors = %v, want exactly one", d.RecordErrors)
			}
			if d.RecordErrors[0].Index <= 0 || d.RecordErrors[0].Offset <= 24 {
				t.Errorf("damage not located: %+v", d.RecordErrors[0])
			}
		},
		"zero_snaplen.pcap": func(t *testing.T, d *Degradation) {
			if d.UndecodableRecords == 0 {
				t.Error("zero-snaplen records decoded despite empty frames")
			}
		},
		"corrupt_bgp_length.pcap": func(t *testing.T, d *Degradation) {
			for _, ci := range d.ConnIssues {
				if ci.Kind == "bgp-framing" {
					return
				}
			}
			t.Errorf("no bgp-framing issue recorded: %+v", d.ConnIssues)
		},
		"clock_regression.pcap": func(t *testing.T, d *Degradation) {
			if d.TimestampRegressions == 0 {
				t.Error("clock regressions not counted")
			}
		},
	}
	for _, name := range corpusNames {
		t.Run(name, func(t *testing.T) {
			rep, err := New(Config{Workers: 1}).AnalyzePcap(bytes.NewReader(corpusTrace(t, name)))
			if err != nil {
				t.Fatalf("lenient analysis failed: %v", err)
			}
			check[name](t, &rep.Degradation)
		})
	}
}

// TestStrictRefusesCorpus checks -strict semantics: every damaged trace is
// refused with an ErrStrict-wrapped error instead of a degraded report.
func TestStrictRefusesCorpus(t *testing.T) {
	for _, name := range corpusNames {
		t.Run(name, func(t *testing.T) {
			_, err := New(Config{Strict: true}).AnalyzePcap(bytes.NewReader(corpusTrace(t, name)))
			if !errors.Is(err, ErrStrict) {
				t.Fatalf("err = %v, want ErrStrict", err)
			}
		})
	}
}

// TestStrictAcceptsCleanTrace checks strict mode is transparent on a
// healthy capture — same transfers, empty degradation.
func TestStrictAcceptsCleanTrace(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 8_000, 1460)
	b.SteadyTransfer(20_000, 8_000, 4, 4, 65535)
	lenient := New(Config{Workers: 1}).AnalyzePackets(b.Pkts)
	strict := New(Config{Workers: 1, Strict: true}).AnalyzePackets(b.Pkts)
	if len(lenient.Transfers) != len(strict.Transfers) || len(strict.Transfers) == 0 {
		t.Fatalf("transfers: lenient=%d strict=%d", len(lenient.Transfers), len(strict.Transfers))
	}
	if !strict.Degradation.Empty() {
		t.Errorf("clean trace reported degradation: %+v", strict.Degradation)
	}
}

// TestConnectionCapDegrades checks the MaxConnections cap: a flood of
// distinct tuples stays bounded, evictions are counted, and strict mode
// refuses the concession.
func TestConnectionCapDegrades(t *testing.T) {
	b := traceutil.New()
	// 8 concurrent connections on distinct ports, none of which ever
	// finishes — the demuxer must evict to stay under the cap.
	for i := 0; i < 8; i++ {
		ep := flows.Endpoint{Addr: traceutil.SenderEP.Addr, Port: uint16(5000 + i)}
		b.Add(Micros(i)*1_000, ep, traceutil.ReceiverEP, 0, 0, packet.FlagSYN, 65535, 0)
		b.Add(Micros(i)*1_000+500, ep, traceutil.ReceiverEP, 1, 1, packet.FlagACK, 65535, 100)
	}
	cfg := Config{Workers: 1, MaxConnections: 3}
	rep := New(cfg).AnalyzePackets(b.Pkts)
	if rep.Degradation.EvictedConnections == 0 {
		t.Fatal("no evictions under a cap smaller than the live connection count")
	}
	if got := len(rep.Transfers); got != 8 {
		t.Errorf("transfers = %d, want all 8 (evicted ones still analyzed)", got)
	}
}

// TestReassemblyCapTruncates checks MaxReassemblyBytes: a transfer larger
// than the cap is decoded up to the cap and the excess is accounted as a
// reassembly-cap concession.
func TestReassemblyCapTruncates(t *testing.T) {
	data := corpusTrace(t, "clock_regression.pcap") // intact payload bytes
	rep, err := New(Config{Workers: 1, MaxReassemblyBytes: 64}).AnalyzePcap(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ci := range rep.Degradation.ConnIssues {
		if ci.Kind == "reassembly-cap" {
			found = true
		}
	}
	if !found {
		t.Errorf("no reassembly-cap issue under a 64-byte cap: %+v", rep.Degradation.ConnIssues)
	}
}

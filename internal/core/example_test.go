package core_test

import (
	"fmt"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/series"
	"tdat/internal/tracegen"
)

// The whole pipeline in a dozen lines: simulate a pathological transfer,
// analyze its capture, read off the verdict.
func ExampleAnalyzer() {
	trace := tracegen.Run(tracegen.Scenario{
		Kind:         tracegen.KindPaced, // a 200 ms update pacing timer
		Seed:         1,
		Routes:       6_000,
		PacingTimer:  200_000,
		PacingBudget: 24,
	})

	analyzer := core.New(core.Config{})
	report := analyzer.AnalyzePackets(trace.Packets())
	t := report.Transfers[0]

	group, _ := t.Factors.Dominant()
	fmt.Println("dominant group:", group)
	fmt.Println("dominant factor:", t.Factors.DominantFactor[factors.GroupSender])
	fmt.Printf("timer: %d ms\n", t.Timer.TimerMicros/1000)
	fmt.Println("app-limited ranges non-empty:",
		t.Catalog.Get(series.SendAppLimited).Len() > 0)
	// Output:
	// dominant group: sender
	// dominant factor: bgp-sender-app
	// timer: 200 ms
	// app-limited ranges non-empty: true
}

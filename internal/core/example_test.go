package core_test

import (
	"fmt"
	"os"

	"tdat/internal/core"
	"tdat/internal/factors"
	"tdat/internal/series"
	"tdat/internal/tracegen"
)

// The whole pipeline in a dozen lines: simulate a pathological transfer,
// analyze its capture, read off the verdict.
func ExampleAnalyzer() {
	trace := tracegen.Run(tracegen.Scenario{
		Kind:         tracegen.KindPaced, // a 200 ms update pacing timer
		Seed:         1,
		Routes:       6_000,
		PacingTimer:  200_000,
		PacingBudget: 24,
	})

	analyzer := core.New(core.Config{})
	report := analyzer.AnalyzePackets(trace.Packets())
	t := report.Transfers[0]

	group, _ := t.Factors.Dominant()
	fmt.Println("dominant group:", group)
	fmt.Println("dominant factor:", t.Factors.DominantFactor[factors.GroupSender])
	fmt.Printf("timer: %d ms\n", t.Timer.TimerMicros/1000)
	fmt.Println("app-limited ranges non-empty:",
		t.Catalog.Get(series.SendAppLimited).Len() > 0)
	// Output:
	// dominant group: sender
	// dominant factor: bgp-sender-app
	// timer: 200 ms
	// app-limited ranges non-empty: true
}

// What a damaged capture looks like in the degradation report: every
// concession the lenient path made is accounted per record and per
// connection. Analyze with Config.Strict to refuse such input instead.
func ExampleDegradation_WriteText() {
	d := core.Degradation{
		UndecodableRecords: 3,
		RecordErrors: []core.RecordIssue{
			{Index: 412, Offset: 193_572, Err: "pcapio: truncated file: record data: 201 of 512 bytes"},
		},
		TimestampRegressions: 2,
		EvictedConnections:   1,
		ConnIssues: []core.ConnIssue{
			{
				Conn: "10.0.0.1:179->10.0.0.2:41000", Kind: "bgp-framing",
				Detail: "reassembly: BGP framing at offset 6651: bgp: bad length: 65520",
			},
		},
	}
	d.WriteText(os.Stdout)
	// Output:
	// degraded input: 8 concession(s)
	//   undecodable records skipped: 3
	//   pcap damage at record 412 (byte 193572): pcapio: truncated file: record data: 201 of 512 bytes
	//   capture timestamps regressed on 2 packet(s)
	//   connections force-completed by the connection cap: 1
	//   10.0.0.1:179->10.0.0.2:41000: bgp-framing: reassembly: BGP framing at offset 6651: bgp: bad length: 65520
}

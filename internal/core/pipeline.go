// Concurrent analysis pipeline: ingest (read+decode) → demux (connection
// grouping and profiling) → analyze (series, factors, detectors) → ordered
// merge. Per-connection analysis is embarrassingly parallel — each
// connection's 34 event series and 8-factor delay-ratio vector are computed
// independently (paper §III-C/§III-D) — so connections fan out to a worker
// pool and results merge back in creation order, making reports
// byte-identical regardless of worker count.
package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"tdat/internal/flows"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
)

// workers returns the effective worker-pool size.
func (a *Analyzer) workers() int {
	if a.cfg.Workers > 0 {
		return a.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MapOrdered applies fn to every element of in on a pool of workers
// goroutines (0 means GOMAXPROCS) and returns the results in input order.
// With one worker — or one element — fn runs inline on the caller's
// goroutine, preserving strictly sequential behavior.
func MapOrdered[T, R any](workers int, in []T, fn func(T) R) []R {
	if len(in) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	if workers == 1 {
		for i, v := range in {
			out[i] = fn(v)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(in[i])
			}
		}()
	}
	for i := range in {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// AnalyzeEach applies analyze to every connection on the configured worker
// pool, returning reports in input order. It is the fan-out primitive for
// callers that bring their own per-connection analysis — e.g. the MRT/
// Quagga path, which pins each transfer end from a collector archive.
func (a *Analyzer) AnalyzeEach(conns []*flows.Connection, analyze func(*flows.Connection) *TransferReport) []*TransferReport {
	return MapOrdered(a.workers(), conns, analyze)
}

// AnalyzePcapWith streams a pcap capture through the full pipeline,
// applying analyze to each extracted connection. Connections completed
// early — a fresh SYN reusing the 4-tuple across session resets — are
// dispatched to the worker pool while the tail of the trace is still being
// read; the rest dispatch at EOF. Reports come back in connection creation
// order. Undecodable records are counted and skipped (tcpdump drop
// artifacts); a truncated tail is tolerated like the paper treats sniffer
// drop gaps, unless nothing at all was readable.
func (a *Analyzer) AnalyzePcapWith(r io.Reader, analyze func(*flows.Connection) *TransferReport) (*Report, error) {
	pr, err := pcapio.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading pcap: %w", err)
	}

	nw := a.workers()
	var (
		mu      sync.Mutex
		results = map[int]*TransferReport{}
	)
	analyzeOne := func(idx int, c *flows.Connection) {
		rep := analyze(c)
		mu.Lock()
		results[idx] = rep
		mu.Unlock()
	}

	type connJob struct {
		idx  int
		conn *flows.Connection
	}
	var (
		jobs chan connJob
		wg   sync.WaitGroup
	)
	parallel := nw > 1
	if parallel {
		jobs = make(chan connJob)
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					analyzeOne(j.idx, j.conn)
				}
			}()
		}
	}

	d := flows.NewDemuxer(a.cfg.Flows, func(idx int, c *flows.Connection) {
		if parallel {
			jobs <- connJob{idx: idx, conn: c}
		} else {
			analyzeOne(idx, c)
		}
	})
	records, skipped := 0, 0
	readErr := pr.Each(func(rec pcapio.Record) error {
		records++
		p, err := packet.Decode(rec.Data)
		if err != nil {
			skipped++
			return nil
		}
		d.Add(flows.TimedPacket{Time: rec.TimeMicros, Pkt: p})
		return nil
	})
	total := d.Finish()
	if parallel {
		close(jobs)
		wg.Wait()
	}
	if readErr != nil && records == 0 {
		return nil, fmt.Errorf("core: reading pcap: %w", readErr)
	}

	rep := &Report{SkippedPackets: skipped}
	for i := 0; i < total; i++ {
		if t := results[i]; t != nil {
			rep.Transfers = append(rep.Transfers, t)
		}
	}
	return rep, nil
}

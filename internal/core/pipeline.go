// Concurrent analysis pipeline: ingest (read+decode) → demux (connection
// grouping and profiling) → analyze (series, factors, detectors) → ordered
// merge. Per-connection analysis is embarrassingly parallel — each
// connection's 34 event series and 8-factor delay-ratio vector are computed
// independently (paper §III-C/§III-D) — so connections fan out to a worker
// pool and results merge back in creation order, making reports
// byte-identical regardless of worker count.
//
// Every stage is instrumented through Config.Obs (per-stage duration
// histograms, worker-pool queue depth and queue wait, progress counters);
// with Obs nil each site costs one pointer test. A per-connection panic is
// recovered into Report.Failures instead of taking down the run.
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"tdat/internal/flows"
	"tdat/internal/obs"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
)

// workers returns the effective worker-pool size.
func (a *Analyzer) workers() int {
	if a.cfg.Workers > 0 {
		return a.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MapOrdered applies fn to every element of in on a pool of workers
// goroutines (0 means GOMAXPROCS) and returns the results in input order.
// With one worker — or one element — fn runs inline on the caller's
// goroutine, preserving strictly sequential behavior.
func MapOrdered[T, R any](workers int, in []T, fn func(T) R) []R {
	if len(in) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	if workers == 1 {
		for i, v := range in {
			out[i] = fn(v)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(in[i])
			}
		}()
	}
	for i := range in {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// AnalyzeEach applies analyze to every connection on the configured worker
// pool, returning reports in input order. It is the fan-out primitive for
// callers that bring their own per-connection analysis — e.g. the MRT/
// Quagga path, which pins each transfer end from a collector archive.
// Panics propagate; the Report-producing entry points (AnalyzePackets,
// AnalyzePcapWith) wrap analyze in a recovery guard instead.
func (a *Analyzer) AnalyzeEach(conns []*flows.Connection, analyze func(*flows.Connection) *TransferReport) []*TransferReport {
	return MapOrdered(a.workers(), conns, analyze)
}

// guard wraps per-connection analysis so one connection's panic becomes an
// AnalysisFailure on the report (and a metrics counter tick) instead of a
// crashed run. Failures collect under a mutex and are sorted by connection
// tuple, so reports stay deterministic at any worker count.
type guard struct {
	a        *Analyzer
	mu       sync.Mutex
	failures []AnalysisFailure
}

// analyze runs fn(c), recovering a panic into a recorded failure (the
// returned report is then nil and the merge skips the connection).
func (g *guard) analyze(fn func(*flows.Connection) *TransferReport, c *flows.Connection) (tr *TransferReport) {
	defer func() {
		if r := recover(); r != nil {
			if o := g.a.cfg.Obs; o != nil {
				o.Reg.Counter("tdat_analysis_panics_total").Inc()
			}
			g.mu.Lock()
			g.failures = append(g.failures, AnalysisFailure{Conn: connLabel(c), Panic: fmt.Sprint(r)})
			g.mu.Unlock()
			tr = nil
		}
	}()
	return fn(c)
}

// finish sorts and attaches the collected failures.
func (g *guard) finish(rep *Report) {
	sort.Slice(g.failures, func(i, j int) bool {
		if g.failures[i].Conn != g.failures[j].Conn {
			return g.failures[i].Conn < g.failures[j].Conn
		}
		return g.failures[i].Panic < g.failures[j].Panic
	})
	rep.Failures = g.failures
}

// AnalyzePackets analyzes pre-decoded packets, fanning connections out to
// the configured worker pool and merging reports in extraction order.
// A connection whose analysis panics is dropped into Report.Failures.
func (a *Analyzer) AnalyzePackets(pkts []flows.TimedPacket) *Report {
	o := a.cfg.Obs
	conns, ds := flows.ExtractOptsStats(pkts, a.cfg.Flows)
	if o != nil {
		o.Reg.Gauge("tdat_pool_workers").Set(int64(a.workers()))
	}
	g := &guard{a: a}
	results := a.AnalyzeEach(conns, func(c *flows.Connection) *TransferReport {
		if o != nil {
			o.Progress.ConnStart()
		}
		tr := g.analyze(a.AnalyzeConnection, c)
		if o != nil {
			o.Progress.ConnDone()
			o.Reg.Counter("tdat_conns_analyzed_total").Inc()
		}
		return tr
	})
	rep := &Report{}
	rep.Degradation.fromDemux(ds)
	sp := a.span(obs.StageMerge)
	for _, t := range results {
		if t != nil {
			rep.Transfers = append(rep.Transfers, t)
			rep.Degradation.addTransfer(t)
		}
	}
	sp.End()
	g.finish(rep)
	if o != nil {
		rep.Degradation.observe(o.Reg)
	}
	return rep
}

// span opens an unlabeled span (whole-run stages like merge).
func (a *Analyzer) span(stage obs.Stage) obs.Span {
	return a.cfg.Obs.StartSpan(stage, "")
}

// AnalyzePcapWith streams a pcap capture through the full pipeline,
// applying analyze to each extracted connection. Connections completed
// early — a fresh SYN reusing the 4-tuple across session resets — are
// dispatched to the worker pool while the tail of the trace is still being
// read; the rest dispatch at EOF. Reports come back in connection creation
// order. Undecodable records are counted and skipped (tcpdump drop
// artifacts); a truncated tail is tolerated like the paper treats sniffer
// drop gaps, unless nothing at all was readable. A connection whose
// analysis panics lands in Report.Failures; the rest of the run completes.
func (a *Analyzer) AnalyzePcapWith(r io.Reader, analyze func(*flows.Connection) *TransferReport) (*Report, error) {
	pr, err := pcapio.NewReader(r)
	if err != nil {
		// A truncated-but-genuine pcap header is damage, not the wrong
		// file: the lenient path degrades to an empty capture and says so;
		// strict mode refuses it. Bad magic stays a hard error either way.
		if !errors.Is(err, pcapio.ErrTruncated) {
			return nil, fmt.Errorf("core: reading pcap: %w", err)
		}
		if a.cfg.Strict {
			return nil, fmt.Errorf("%w: %v", ErrStrict, err)
		}
		rep := &Report{}
		rep.Degradation.RecordErrors = []RecordIssue{{Err: err.Error()}}
		if o := a.cfg.Obs; o != nil {
			rep.Degradation.observe(o.Reg)
		}
		return rep, nil
	}

	o := a.cfg.Obs
	nw := a.workers()
	var (
		recordsC  *obs.Counter
		skippedC  *obs.Counter
		analyzedC *obs.Counter
		depthG    *obs.Gauge
		inFlightG *obs.Gauge
		queueWait *obs.Histogram
	)
	if o != nil {
		recordsC = o.Reg.Counter("tdat_records_read_total")
		skippedC = o.Reg.Counter("tdat_packets_skipped_total")
		analyzedC = o.Reg.Counter("tdat_conns_analyzed_total")
		depthG = o.Reg.Gauge("tdat_pool_queue_depth")
		inFlightG = o.Reg.Gauge("tdat_conns_in_flight")
		queueWait = o.Reg.Histogram("tdat_pool_queue_wait_micros", obs.DurationBuckets)
		o.Reg.Gauge("tdat_pool_workers").Set(int64(nw))
	}

	g := &guard{a: a}
	var (
		mu      sync.Mutex
		results = map[int]*TransferReport{}
	)
	analyzeOne := func(idx int, c *flows.Connection) {
		if o != nil {
			inFlightG.Add(1)
			o.Progress.ConnStart()
		}
		rep := g.analyze(analyze, c)
		if o != nil {
			inFlightG.Add(-1)
			o.Progress.ConnDone()
			analyzedC.Inc()
		}
		mu.Lock()
		results[idx] = rep
		mu.Unlock()
	}

	type connJob struct {
		idx  int
		conn *flows.Connection
		enq  time.Time
	}
	var (
		jobs chan connJob
		wg   sync.WaitGroup
	)
	// With observability on, even a 1-worker run routes through the pool so
	// demux timing isn't polluted by inline analysis of early-emitted
	// connections (reports are merged by creation index either way, so
	// output is identical).
	parallel := nw > 1 || o != nil
	if parallel {
		// A small buffer decouples demux from the pool so the queue-depth
		// gauge reflects genuine backlog rather than channel handoff.
		jobs = make(chan connJob, 2*nw)
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					if o != nil {
						depthG.Add(-1)
						queueWait.Observe(obs.Since(j.enq).Microseconds())
					}
					analyzeOne(j.idx, j.conn)
				}
			}()
		}
	}

	// Demux shards: connections partition across independent demuxers by a
	// deterministic 4-tuple hash. Packets are numbered globally before
	// routing and merged reports are keyed by each connection's global
	// first-packet arrival sequence (which, with one shard, increases
	// exactly in creation order), so the shard count never changes output.
	shards := a.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	fopts := a.cfg.Flows
	var regressC *obs.Counter
	if shards > 1 {
		// The global stream's timestamp regressions are counted here at the
		// reader — each shard sees only a substream and must not count.
		fopts.ExternalClock = true
		if o != nil {
			regressC = o.Reg.Counter("tdat_demux_ts_regressions_total")
		}
	}
	emit := func(idx int, c *flows.Connection) {
		if parallel {
			j := connJob{idx: idx, conn: c}
			if o != nil {
				depthG.Add(1)
				j.enq = obs.Now()
			}
			jobs <- j
		} else {
			analyzeOne(idx, c)
		}
	}
	ds := make([]*flows.Demuxer, shards)
	for i := range ds {
		ds[i] = flows.NewDemuxer(fopts, func(_ int, c *flows.Connection) {
			// The merge is keyed by global arrival sequence, not the
			// shard-local creation index.
			emit(int(c.ArrivalSeq()), c)
		})
	}

	// Zero-copy ingest: one reused record buffer (pcapio.ReadInto) and one
	// reused packet struct (packet.DecodeInto). The demuxer copies what it
	// keeps into per-connection columnar storage before Add returns, so
	// nothing downstream aliases either buffer.
	var pkt packet.Packet
	var (
		seq      int64 // global arrival sequence of decoded packets
		lastTime Micros
		regress  int64 // reader-counted regressions (sharded mode)
	)
	addPacket := func(tm Micros) {
		if shards > 1 {
			if tm < lastTime {
				regress++
				if regressC != nil {
					regressC.Inc()
				}
			}
			lastTime = tm
		}
		ds[flows.ShardOf(&pkt, shards)].AddSeq(seq, tm, &pkt)
		seq++
	}
	records, skipped := 0, 0
	var readErr error
	if o == nil {
		readErr = pr.EachInto(func(rec pcapio.Record) error {
			records++
			if err := packet.DecodeInto(rec.Data, &pkt); err != nil {
				if a.cfg.Strict {
					return fmt.Errorf("%w: record %d undecodable: %v", ErrStrict, records-1, err)
				}
				skipped++
				return nil
			}
			addPacket(rec.TimeMicros)
			return nil
		})
	} else {
		// Instrumented ingest: three clock reads per record split the time
		// between the decode and demux stages.
		readErr = pr.EachInto(func(rec pcapio.Record) error {
			records++
			recordsC.Inc()
			o.Progress.AddRecords(1)
			o.Progress.SetBytesRead(pr.BytesRead())
			t0 := obs.Now()
			err := packet.DecodeInto(rec.Data, &pkt)
			t1 := obs.Now()
			o.StageObserve(obs.StageDecode, t1.Sub(t0).Microseconds())
			if err != nil {
				if a.cfg.Strict {
					return fmt.Errorf("%w: record %d undecodable: %v", ErrStrict, records-1, err)
				}
				skipped++
				skippedC.Inc()
				return nil
			}
			addPacket(rec.TimeMicros)
			o.StageObserve(obs.StageDemux, obs.Since(t1).Microseconds())
			return nil
		})
	}
	for _, d := range ds {
		d.Finish()
	}
	if parallel {
		close(jobs)
		wg.Wait()
	}
	if readErr != nil {
		if a.cfg.Strict {
			if errors.Is(readErr, ErrStrict) {
				return nil, readErr
			}
			return nil, fmt.Errorf("%w: %v", ErrStrict, readErr)
		}
		if records == 0 {
			return nil, fmt.Errorf("core: reading pcap: %w", readErr)
		}
	}

	var stats flows.DemuxStats
	for _, d := range ds {
		s := d.Stats()
		stats.Packets += s.Packets
		stats.Opened += s.Opened
		stats.EarlyEmits += s.EarlyEmits
		stats.Evicted += s.Evicted
		stats.Resumed += s.Resumed
		stats.TimestampRegressions += s.TimestampRegressions
	}
	stats.TimestampRegressions += regress // reader-counted (sharded mode only)

	rep := &Report{SkippedPackets: skipped}
	rep.Degradation.UndecodableRecords = skipped
	rep.Degradation.fromDemux(stats)
	if readErr != nil {
		// Lenient path with a readable prefix: the file damage is a
		// degradation event, located exactly when the pcap layer can.
		issue := RecordIssue{Index: int64(records), Err: readErr.Error()}
		var re *pcapio.RecordError
		if errors.As(readErr, &re) {
			issue = RecordIssue{Index: re.Index, Offset: re.Offset, Err: re.Err.Error()}
		}
		rep.Degradation.RecordErrors = append(rep.Degradation.RecordErrors, issue)
	}
	sp := a.span(obs.StageMerge)
	// Merge in global arrival order: the map keys are each connection's
	// first-packet arrival sequence, unique across shards.
	order := make([]int, 0, len(results))
	for k := range results {
		order = append(order, k)
	}
	sort.Ints(order)
	for _, k := range order {
		if t := results[k]; t != nil {
			rep.Transfers = append(rep.Transfers, t)
			rep.Degradation.addTransfer(t)
		}
	}
	sp.End()
	g.finish(rep)
	if a.cfg.Strict {
		if err := rep.Degradation.strictErr(); err != nil {
			return nil, err
		}
	}
	if o != nil {
		rep.Degradation.observe(o.Reg)
	}
	return rep, nil
}

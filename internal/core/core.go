// Package core is the T-DAT facade: it wires the full analysis pipeline —
// pcap decoding, connection extraction (flows), sniffer-location ACK
// shifting, event-series generation, delay-factor classification, and the
// known-problem detectors — behind one Analyzer type (paper Fig 10).
package core

import (
	"fmt"
	"io"

	"tdat/internal/bgp"
	"tdat/internal/detect"
	"tdat/internal/explain"
	"tdat/internal/factors"
	"tdat/internal/flows"
	"tdat/internal/mct"
	"tdat/internal/obs"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/reassembly"
	"tdat/internal/series"
	"tdat/internal/timerange"
)

// Micros aliases the analyzer time unit.
type Micros = timerange.Micros

// Config collects the tunables of every pipeline stage. The zero value
// selects the paper's defaults.
type Config struct {
	// Flows tunes connection extraction and loss classification.
	Flows flows.Options
	// Series tunes event-series generation (including sniffer location and
	// ACK shifting).
	Series series.Config
	// MCT tunes transfer-end estimation.
	MCT mct.Config
	// MajorThreshold is the major-factor-group cutoff (default 0.3).
	MajorThreshold float64
	// TimerMinJump is the knee sharpness guard for timer inference
	// (default 3).
	TimerMinJump float64
	// ConsecutiveLossThreshold is the burst-loss rule (default 8).
	ConsecutiveLossThreshold int
	// Workers sizes the per-connection analysis pool. 0 means
	// runtime.GOMAXPROCS(0); 1 preserves strictly sequential analysis.
	// Reports are byte-identical for every value — only wall-clock time
	// changes (regression-tested by TestParallelAnalysisByteIdentical).
	Workers int
	// Shards partitions the streamed pcap path's connection tracking across
	// N independent demuxers by a deterministic hash of the canonical
	// 4-tuple (0 or 1 selects a single demuxer). Every packet of a
	// connection lands in the same shard, packets are numbered globally
	// before routing, and merged reports are ordered by each connection's
	// global first-packet arrival sequence — so output is byte-identical at
	// any worker×shard count (regression-tested alongside Workers). Sharding
	// bounds per-demuxer index size on captures with very large connection
	// counts; note that MaxConnections then caps each shard independently.
	Shards int
	// Strict refuses damaged captures: the first degradation event —
	// undecodable record, pcap-level truncation or corruption, timestamp
	// regression, resource-cap eviction, BGP framing failure — aborts the
	// run with an ErrStrict-wrapped error instead of degrading. The lenient
	// default completes the analysis and accounts for every concession in
	// Report.Degradation. Enforced by the ingest entry points (AnalyzePcap,
	// AnalyzePcapWith, AnalyzeRecords).
	Strict bool
	// MaxConnections caps simultaneously tracked (un-emitted) connections
	// in the demuxer; when full, the oldest open connection is
	// force-completed (see flows.Options.MaxTracked). 0 means unlimited —
	// the default, which keeps clean-trace output byte-identical.
	MaxConnections int
	// MaxReassemblyBytes caps the per-connection reassembled stream
	// materialized for transfer-end estimation, so a corrupt-sequence
	// capture cannot demand gigabytes. 0 means unlimited.
	MaxReassemblyBytes int64
	// Obs receives the run's metrics, tracing spans, and progress when
	// non-nil. Nil keeps every pipeline stage on a zero-overhead fast
	// path (the benchmarks hold it to <2% vs. uninstrumented code).
	// Observability never changes analysis output.
	Obs *obs.Obs
	// Explain enables per-connection evidence capture: every detection and
	// factor attribution records the rule that fired, the measurements it
	// compared, and the contributing intervals (TransferReport.Evidence,
	// rendered by Report.Explain). Evidence is a pure function of the
	// connection — byte-identical at any worker×shard count — and never
	// changes analysis output; off keeps the zero-allocation fast path.
	Explain bool
}

// Analyzer runs the T-DAT pipeline.
type Analyzer struct {
	cfg Config
}

// New creates an Analyzer. The Obs hook (when set) is threaded through to
// every stage, including the flows demuxer and series generation.
func New(cfg Config) *Analyzer {
	cfg.Flows.Obs = cfg.Obs
	cfg.Series.Obs = cfg.Obs
	if cfg.MaxConnections > 0 {
		cfg.Flows.MaxTracked = cfg.MaxConnections
	}
	return &Analyzer{cfg: cfg}
}

// TransferReport is the full analysis of one table transfer (one TCP
// connection).
type TransferReport struct {
	Conn    *flows.Connection
	Catalog *series.Catalog
	// Transfer is the analysis window: TCP connection start to the MCT end
	// (or the last data packet when no BGP stream could be recovered).
	Transfer timerange.Range
	// MCT is the transfer-end estimate, when the BGP stream was decodable.
	MCT *mct.Result
	// Factors is the delay-ratio report over the transfer window.
	Factors *factors.Report

	// Timer is the inferred BGP pacing timer, if any.
	Timer *detect.TimerGapResult
	// ConsecLoss summarizes burst-loss episodes.
	ConsecLoss detect.ConsecutiveLossResult
	// ZeroAckBug is set when the zero-window/upstream-loss conflict series
	// is non-empty.
	ZeroAckBug bool

	// Messages counts BGP messages recovered by reassembly (0 when the
	// payload was not decodable as BGP).
	Messages int

	// ReassemblyError records a lenient-path BGP framing failure ("" when
	// clean); the transfer end then falls back to the last data packet,
	// exactly as for a non-BGP payload. Collected into Report.Degradation.
	ReassemblyError string
	// ReassemblyTruncated counts recovered stream bytes beyond
	// Config.MaxReassemblyBytes that were left undecoded.
	ReassemblyTruncated int64

	// Evidence is the provenance record behind this transfer's verdicts —
	// one entry per rule evaluation, in pipeline order. Populated only when
	// Config.Explain is set.
	Evidence []explain.Evidence
}

// Duration returns the transfer duration.
func (t *TransferReport) Duration() Micros { return t.Transfer.Len() }

// AnalysisFailure records a per-connection analysis panic that the worker
// pool recovered from: the run keeps every other connection's report and
// surfaces the casualty here instead of crashing.
type AnalysisFailure struct {
	// Conn is the connection 4-tuple ("sender->receiver").
	Conn string
	// Panic is the recovered panic value, rendered as text.
	Panic string
}

// Report is the analysis of a whole capture.
type Report struct {
	Transfers []*TransferReport
	// SkippedPackets counts records that failed to decode.
	SkippedPackets int
	// Failures lists connections whose analysis panicked (sorted by
	// connection tuple; also counted as tdat_analysis_panics_total).
	Failures []AnalysisFailure
	// Degradation accounts for everything the lenient path skipped,
	// evicted, or truncated to survive a damaged capture; its zero value
	// means the input was clean.
	Degradation Degradation
}

// AnalyzePcap reads a pcap stream and analyzes every connection in it.
// Ingest is streamed: connection analysis starts on the worker pool while
// the trace is still being read (see AnalyzePcapWith).
func (a *Analyzer) AnalyzePcap(r io.Reader) (*Report, error) {
	return a.AnalyzePcapWith(r, a.AnalyzeConnection)
}

// AnalyzeRecords analyzes decoded pcap records. In strict mode the first
// undecodable record (or any downstream degradation) aborts the run.
func (a *Analyzer) AnalyzeRecords(recs []pcapio.Record) (*Report, error) {
	var pkts []flows.TimedPacket
	skipped := 0
	for i, rec := range recs {
		p, err := decodeRecord(rec)
		if err != nil {
			if a.cfg.Strict {
				return nil, fmt.Errorf("%w: record %d undecodable: %v", ErrStrict, i, err)
			}
			skipped++
			continue
		}
		pkts = append(pkts, p)
	}
	rep := a.AnalyzePackets(pkts)
	rep.SkippedPackets = skipped
	rep.Degradation.UndecodableRecords = skipped
	if a.cfg.Strict {
		if err := rep.Degradation.strictErr(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// connLabel renders the connection 4-tuple for span logs and failure
// reports.
func connLabel(c *flows.Connection) string {
	return c.Sender.String() + "->" + c.Receiver.String()
}

// connSpan opens a span for one per-connection stage; the label is only
// built when the span log will record it.
func (a *Analyzer) connSpan(stage obs.Stage, c *flows.Connection) obs.Span {
	o := a.cfg.Obs
	if o == nil {
		return obs.Span{}
	}
	label := ""
	if o.SpanLogEnabled() {
		label = connLabel(c)
	}
	return o.StartSpan(stage, label)
}

// recorder returns a fresh per-connection evidence recorder, or nil (the
// zero-allocation fast path) when Config.Explain is off.
func (a *Analyzer) recorder() *explain.Recorder {
	if a.cfg.Explain {
		return explain.New()
	}
	return nil
}

// generateSeries runs the series stage under a span, wiring the
// per-connection evidence recorder into the series heuristics.
func (a *Analyzer) generateSeries(tr *TransferReport, rec *explain.Recorder) {
	c := tr.Conn
	sp := a.connSpan(obs.StageSeries, c)
	scfg := a.cfg.Series
	scfg.Explain = rec
	tr.Catalog = series.Generate(c, scfg)
	sp.EndN(c.Profile.TotalDataBytes, int64(c.Profile.TotalDataPackets))
}

// finish runs the factor classification and the detectors — the shared
// tail of every per-connection analysis path — under their spans, records
// the outcomes in the metrics registry, and seals the evidence record.
func (a *Analyzer) finish(tr *TransferReport, rec *explain.Recorder) {
	o := a.cfg.Obs
	sp := a.connSpan(obs.StageFactors, tr.Conn)
	tr.Factors = factors.AnalyzeEv(tr.Catalog, tr.Transfer, a.cfg.MajorThreshold, rec)
	sp.End()
	if o != nil {
		tr.Factors.Observe(o.Reg)
	}

	sp = a.connSpan(obs.StageDetect, tr.Conn)
	if res, ok := detect.TimerGapsEv(tr.Catalog, tr.Transfer, a.cfg.TimerMinJump, rec); ok {
		tr.Timer = &res
	}
	tr.ConsecLoss = detect.ConsecutiveLossesEv(tr.Catalog, tr.Transfer, a.cfg.ConsecutiveLossThreshold, rec)
	_, tr.ZeroAckBug = detect.ZeroAckBugEv(tr.Catalog, rec)
	sp.End()
	if o != nil {
		detect.Observe(o.Reg, tr.Timer != nil, tr.ConsecLoss, tr.ZeroAckBug)
	}
	tr.Evidence = rec.Evidence()
}

// AnalyzeConnection runs series generation, transfer-window estimation,
// factor classification, and the detectors for one connection.
func (a *Analyzer) AnalyzeConnection(c *flows.Connection) *TransferReport {
	tr := &TransferReport{Conn: c}
	rec := a.recorder()
	a.generateSeries(tr, rec)

	// Transfer window: TCP start → MCT end (paper §II-A steps ii & iii).
	sp := a.connSpan(obs.StageMCT, c)
	start := c.Profile.Start
	end := c.Profile.End
	if res, ok := a.reassembleEnd(c, tr); ok {
		tr.MCT = &res
		end = res.End
	} else if len(c.Data) > 0 {
		end = c.Data[len(c.Data)-1].Time
	}
	if end <= start {
		end = start + 1
	}
	tr.Transfer = timerange.R(start, end)
	sp.EndN(c.Profile.TotalDataBytes, int64(tr.Messages))

	a.finish(tr, rec)
	return tr
}

// AnalyzeConnectionWithEnd is AnalyzeConnection with an externally known
// transfer end (e.g. from a collector's MRT archive via mct.FindEnd),
// skipping payload reassembly.
func (a *Analyzer) AnalyzeConnectionWithEnd(c *flows.Connection, end Micros) *TransferReport {
	tr := &TransferReport{Conn: c}
	rec := a.recorder()
	a.generateSeries(tr, rec)
	start := c.Profile.Start
	if end <= start {
		end = start + 1
	}
	tr.Transfer = timerange.R(start, end)
	a.finish(tr, rec)
	return tr
}

// AnalyzeConnectionWindow analyzes c over an explicit window — e.g. a churn
// burst on an established session rather than the initial table transfer.
func (a *Analyzer) AnalyzeConnectionWindow(c *flows.Connection, window timerange.Range) *TransferReport {
	tr := &TransferReport{Conn: c}
	rec := a.recorder()
	a.generateSeries(tr, rec)
	if window.Empty() {
		window = timerange.R(c.Profile.Start, c.Profile.End+1)
	}
	tr.Transfer = window
	a.finish(tr, rec)
	return tr
}

// AnalyzeConnectionWithUpdates is AnalyzeConnection with the transfer end
// estimated from an externally archived update stream (e.g. a Quagga
// collector's MRT file via mct.FromMRT) instead of payload reassembly —
// the paper's §II-A step (ii) pipeline.
func (a *Analyzer) AnalyzeConnectionWithUpdates(c *flows.Connection, updates []mct.Update) *TransferReport {
	sp := a.connSpan(obs.StageMCT, c)
	end := c.Profile.End
	var res *mct.Result
	if r, ok := mct.FindEnd(updates, a.cfg.MCT); ok {
		res = &r
		end = r.End
	} else if len(c.Data) > 0 {
		end = c.Data[len(c.Data)-1].Time
	}
	sp.EndN(0, int64(len(updates)))
	tr := a.AnalyzeConnectionWithEnd(c, end)
	tr.MCT = res
	return tr
}

// reassembleEnd recovers the BGP stream and estimates the transfer end,
// noting reassembly concessions (framing failure, byte-cap truncation) on
// the report.
func (a *Analyzer) reassembleEnd(c *flows.Connection, tr *TransferReport) (mct.Result, bool) {
	// KeepRaw off: MCT only reads the parsed messages, so the per-message
	// wire-byte copies are skipped.
	res, err := reassembly.ReassembleOpts(c, reassembly.Options{MaxBytes: a.cfg.MaxReassemblyBytes})
	if err != nil && (res.LooksLikeBGP || len(res.Messages) > 0) {
		// Only a stream that demonstrably carried BGP counts as damaged; a
		// payload of some other protocol is a supported input (Messages
		// stays 0 and the transfer end falls back), not a concession.
		tr.ReassemblyError = err.Error()
	}
	tr.ReassemblyTruncated = res.TruncatedBytes
	if err != nil || len(res.Messages) == 0 {
		return mct.Result{}, false
	}
	tr.Messages = len(res.Messages)
	times := make([]Micros, len(res.Messages))
	msgs := make([]bgp.Message, len(res.Messages))
	for i, m := range res.Messages {
		times[i] = m.Time
		msgs[i] = m.Msg
	}
	ups := mct.FromMessages(times, msgs)
	if len(ups) == 0 {
		return mct.Result{}, false
	}
	return mct.FindEnd(ups, a.cfg.MCT)
}

// decodeRecord converts one pcap record to a timed packet.
func decodeRecord(rec pcapio.Record) (flows.TimedPacket, error) {
	p, err := packet.Decode(rec.Data)
	if err != nil {
		return flows.TimedPacket{}, err
	}
	return flows.TimedPacket{Time: rec.TimeMicros, Pkt: p}, nil
}

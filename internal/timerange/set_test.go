package timerange

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	tests := []struct {
		name     string
		r        Range
		empty    bool
		len      Micros
		contains map[Micros]bool
	}{
		{
			name:     "normal",
			r:        R(10, 20),
			empty:    false,
			len:      10,
			contains: map[Micros]bool{9: false, 10: true, 19: true, 20: false},
		},
		{
			name:     "empty equal endpoints",
			r:        R(5, 5),
			empty:    true,
			len:      0,
			contains: map[Micros]bool{5: false},
		},
		{
			name:     "inverted is empty",
			r:        R(8, 3),
			empty:    true,
			len:      0,
			contains: map[Micros]bool{5: false},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Empty(); got != tt.empty {
				t.Errorf("Empty() = %v, want %v", got, tt.empty)
			}
			if got := tt.r.Len(); got != tt.len {
				t.Errorf("Len() = %d, want %d", got, tt.len)
			}
			for pt, want := range tt.contains {
				if got := tt.r.Contains(pt); got != want {
					t.Errorf("Contains(%d) = %v, want %v", pt, got, want)
				}
			}
		})
	}
}

func TestRangeOverlapsAdjacent(t *testing.T) {
	tests := []struct {
		name     string
		a, b     Range
		overlaps bool
		adjacent bool
	}{
		{"disjoint", R(0, 5), R(10, 15), false, false},
		{"abutting", R(0, 5), R(5, 10), false, true},
		{"overlapping", R(0, 6), R(5, 10), true, false},
		{"nested", R(0, 10), R(3, 4), true, false},
		{"identical", R(2, 4), R(2, 4), true, false},
		{"empty never overlaps", R(3, 3), R(0, 10), false, false},
		{"empty never adjacent", R(5, 5), R(5, 10), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.overlaps {
				t.Errorf("Overlaps = %v, want %v", got, tt.overlaps)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.overlaps {
				t.Errorf("Overlaps (reversed) = %v, want %v", got, tt.overlaps)
			}
			if got := tt.a.Adjacent(tt.b); got != tt.adjacent {
				t.Errorf("Adjacent = %v, want %v", got, tt.adjacent)
			}
		})
	}
}

func TestRangeIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Range
		want Range
	}{
		{"overlap", R(0, 10), R(5, 15), R(5, 10)},
		{"disjoint yields empty", R(0, 5), R(10, 20), R(10, 10)},
		{"nested", R(0, 100), R(30, 40), R(30, 40)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersect(tt.b)
			if got.Len() != tt.want.Len() || (!got.Empty() && got != tt.want) {
				t.Errorf("Intersect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetAddCoalesces(t *testing.T) {
	tests := []struct {
		name string
		add  []Range
		want []Range
	}{
		{"disjoint", []Range{R(0, 5), R(10, 15)}, []Range{R(0, 5), R(10, 15)}},
		{"out of order", []Range{R(10, 15), R(0, 5)}, []Range{R(0, 5), R(10, 15)}},
		{"adjacent coalesce", []Range{R(0, 5), R(5, 10)}, []Range{R(0, 10)}},
		{"overlap coalesce", []Range{R(0, 7), R(5, 10)}, []Range{R(0, 10)}},
		{"bridge three", []Range{R(0, 5), R(10, 15), R(4, 11)}, []Range{R(0, 15)}},
		{"empty ignored", []Range{R(5, 5), R(9, 3)}, nil},
		{"duplicate", []Range{R(1, 2), R(1, 2)}, []Range{R(1, 2)}},
		{"nested absorbed", []Range{R(0, 100), R(10, 20)}, []Range{R(0, 100)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSet(tt.add...)
			got := s.Ranges()
			if len(got) != len(tt.want) {
				t.Fatalf("Ranges() = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("range %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestSetSize(t *testing.T) {
	s := NewSet(R(0, 5), R(10, 15), R(12, 20))
	if got, want := s.Size(), Micros(15); got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
	if got := (&Set{}).Size(); got != 0 {
		t.Errorf("empty Size() = %d, want 0", got)
	}
}

func TestSetContainsQuery(t *testing.T) {
	s := NewSet(R(0, 5), R(10, 20))
	for pt, want := range map[Micros]bool{0: true, 4: true, 5: false, 9: false, 10: true, 19: true, 20: false} {
		if got := s.Contains(pt); got != want {
			t.Errorf("Contains(%d) = %v, want %v", pt, got, want)
		}
	}
	got := s.Query(R(3, 12))
	want := []Range{R(3, 5), R(10, 12)}
	if len(got) != len(want) {
		t.Fatalf("Query = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Query[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if q := s.Query(R(5, 10)); len(q) != 0 {
		t.Errorf("Query of gap = %v, want empty", q)
	}
	r, ok := s.CoveringRange(12)
	if !ok || r != R(10, 20) {
		t.Errorf("CoveringRange(12) = %v,%v want [10,20),true", r, ok)
	}
	if _, ok := s.CoveringRange(7); ok {
		t.Error("CoveringRange(7) found a range in a gap")
	}
}

func TestSetUnion(t *testing.T) {
	tests := []struct {
		name string
		a, b *Set
		want *Set
	}{
		{"disjoint", NewSet(R(0, 5)), NewSet(R(10, 15)), NewSet(R(0, 5), R(10, 15))},
		{"interleaved", NewSet(R(0, 5), R(20, 25)), NewSet(R(3, 22)), NewSet(R(0, 25))},
		{"empty right", NewSet(R(0, 5)), NewSet(), NewSet(R(0, 5))},
		{"empty both", NewSet(), NewSet(), NewSet()},
		{"adjacent across sets", NewSet(R(0, 5)), NewSet(R(5, 9)), NewSet(R(0, 9))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Union(tt.b); !got.Equal(tt.want) {
				t.Errorf("Union = %v, want %v", got, tt.want)
			}
			if got := tt.b.Union(tt.a); !got.Equal(tt.want) {
				t.Errorf("Union (commuted) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b *Set
		want *Set
	}{
		{"disjoint", NewSet(R(0, 5)), NewSet(R(10, 15)), NewSet()},
		{"partial", NewSet(R(0, 10)), NewSet(R(5, 15)), NewSet(R(5, 10))},
		{"multi", NewSet(R(0, 10), R(20, 30)), NewSet(R(5, 25)), NewSet(R(5, 10), R(20, 25))},
		{"adjacent is empty", NewSet(R(0, 5)), NewSet(R(5, 10)), NewSet()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersect(tt.b); !got.Equal(tt.want) {
				t.Errorf("Intersect = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersect(tt.a); !got.Equal(tt.want) {
				t.Errorf("Intersect (commuted) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetSubtract(t *testing.T) {
	tests := []struct {
		name string
		a, b *Set
		want *Set
	}{
		{"carve middle", NewSet(R(0, 10)), NewSet(R(3, 6)), NewSet(R(0, 3), R(6, 10))},
		{"carve ends", NewSet(R(0, 10)), NewSet(R(0, 2), R(8, 10)), NewSet(R(2, 8))},
		{"no overlap", NewSet(R(0, 5)), NewSet(R(10, 15)), NewSet(R(0, 5))},
		{"total removal", NewSet(R(3, 6)), NewSet(R(0, 10)), NewSet()},
		{"multi over multi", NewSet(R(0, 4), R(6, 10)), NewSet(R(2, 8)), NewSet(R(0, 2), R(8, 10))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Subtract(tt.b); !got.Equal(tt.want) {
				t.Errorf("Subtract = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSetComplementAndGaps(t *testing.T) {
	s := NewSet(R(2, 4), R(6, 8))
	comp := s.Complement(R(0, 10))
	if want := NewSet(R(0, 2), R(4, 6), R(8, 10)); !comp.Equal(want) {
		t.Errorf("Complement = %v, want %v", comp, want)
	}
	gaps := s.Gaps()
	if len(gaps) != 1 || gaps[0] != R(4, 6) {
		t.Errorf("Gaps = %v, want [[4,6)]", gaps)
	}
	if g := NewSet(R(1, 2)).Gaps(); g != nil {
		t.Errorf("single-range Gaps = %v, want nil", g)
	}
}

func TestSetBounds(t *testing.T) {
	if _, ok := NewSet().Bounds(); ok {
		t.Error("empty set reported bounds")
	}
	b, ok := NewSet(R(3, 5), R(9, 12)).Bounds()
	if !ok || b != R(3, 12) {
		t.Errorf("Bounds = %v,%v want [3,12),true", b, ok)
	}
}

func TestFromSorted(t *testing.T) {
	// Valid pre-sorted input is preserved as-is.
	s := FromSorted([]Range{R(0, 2), R(5, 9)})
	if !s.Equal(NewSet(R(0, 2), R(5, 9))) {
		t.Errorf("FromSorted valid = %v", s)
	}
	// Invalid input (overlap) is normalized instead of corrupting the set.
	s = FromSorted([]Range{R(0, 6), R(5, 9)})
	if !s.Equal(NewSet(R(0, 9))) {
		t.Errorf("FromSorted overlapping = %v, want {[0,9)}", s)
	}
	// Adjacent input coalesces.
	s = FromSorted([]Range{R(0, 5), R(5, 9)})
	if !s.Equal(NewSet(R(0, 9))) {
		t.Errorf("FromSorted adjacent = %v, want {[0,9)}", s)
	}
}

// randomSet builds a set from up to n random small ranges.
func randomSet(rnd *rand.Rand, n int) *Set {
	s := &Set{}
	for i := 0; i < n; i++ {
		start := Micros(rnd.Intn(200))
		s.Add(R(start, start+Micros(rnd.Intn(20))))
	}
	return s
}

// coverage returns a boolean picture of which instants in [0,240) a set covers.
func coverage(s *Set) [240]bool {
	var c [240]bool
	for i := range c {
		c[i] = s.Contains(Micros(i))
	}
	return c
}

func TestSetInvariantNormalized(t *testing.T) {
	// Property: after arbitrary Adds, ranges are sorted, disjoint,
	// non-adjacent, non-empty.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		s := randomSet(rnd, 30)
		for i, r := range s.ranges {
			if r.Empty() {
				return false
			}
			if i > 0 && s.ranges[i-1].End >= r.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetAlgebraProperties(t *testing.T) {
	// Property: pointwise semantics of union/intersect/subtract match
	// boolean algebra on membership.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randomSet(rnd, 12)
		b := randomSet(rnd, 12)
		u, x, d := a.Union(b), a.Intersect(b), a.Subtract(b)
		ca, cb := coverage(a), coverage(b)
		cu, cx, cd := coverage(u), coverage(x), coverage(d)
		for i := range ca {
			if cu[i] != (ca[i] || cb[i]) {
				return false
			}
			if cx[i] != (ca[i] && cb[i]) {
				return false
			}
			if cd[i] != (ca[i] && !cb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSetDeMorganProperty(t *testing.T) {
	// Property: complement(A ∪ B) == complement(A) ∩ complement(B) within a
	// window.
	w := R(0, 240)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randomSet(rnd, 10)
		b := randomSet(rnd, 10)
		left := a.Union(b).Complement(w)
		right := a.Complement(w).Intersect(b.Complement(w))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSetSizePartitionProperty(t *testing.T) {
	// Property: |A| = |A∩B| + |A\B| (intersection and difference partition A).
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randomSet(rnd, 15)
		b := randomSet(rnd, 15)
		return a.Size() == a.Intersect(b).Size()+a.Subtract(b).Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetUnionAllMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	sets := make([]*Set, 5)
	for i := range sets {
		sets[i] = randomSet(rnd, 8)
	}
	got := UnionAll(sets...)
	want := &Set{}
	for _, s := range sets {
		want = want.Union(s)
	}
	if !got.Equal(want) {
		t.Errorf("UnionAll = %v, want %v", got, want)
	}
	if !UnionAll(nil, NewSet(R(1, 2)), nil).Equal(NewSet(R(1, 2))) {
		t.Error("UnionAll should skip nil sets")
	}
}

func TestSetCloneIsIndependent(t *testing.T) {
	a := NewSet(R(0, 5))
	b := a.Clone()
	b.Add(R(10, 20))
	if a.Len() != 1 || b.Len() != 2 {
		t.Errorf("Clone not independent: a=%v b=%v", a, b)
	}
}

func TestSetString(t *testing.T) {
	if got, want := NewSet(R(0, 5), R(7, 9)).String(), "{[0,5) [7,9)}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSetEdgeCases(t *testing.T) {
	// Degenerate inputs a damaged capture feeds the interval algebra:
	// empty, zero-width, and inverted ranges must be inert, and adjacency
	// must coalesce without double-counting. The reassembly layer builds
	// MissingRanges out of hostile sequence numbers, so "garbage in,
	// normalized set out" is a hard requirement, not a nicety.
	cases := []struct {
		name string
		add  []Range
		want []Range
		size Micros
	}{
		{name: "no ranges", add: nil, want: nil, size: 0},
		{name: "single empty range", add: []Range{R(5, 5)}, want: nil, size: 0},
		{name: "inverted range", add: []Range{R(9, 3)}, want: nil, size: 0},
		{name: "empty among real", add: []Range{R(0, 4), R(6, 6), R(8, 10)},
			want: []Range{R(0, 4), R(8, 10)}, size: 6},
		{name: "exactly adjacent coalesce", add: []Range{R(0, 5), R(5, 9)},
			want: []Range{R(0, 9)}, size: 9},
		{name: "adjacent chain out of order", add: []Range{R(6, 9), R(0, 3), R(3, 6)},
			want: []Range{R(0, 9)}, size: 9},
		{name: "duplicate range", add: []Range{R(2, 7), R(2, 7)},
			want: []Range{R(2, 7)}, size: 5},
		{name: "contained range", add: []Range{R(0, 10), R(3, 5)},
			want: []Range{R(0, 10)}, size: 10},
		{name: "negative times", add: []Range{R(-10, -5), R(-5, 0)},
			want: []Range{R(-10, 0)}, size: 10},
		{name: "one-micro ranges", add: []Range{R(0, 1), R(2, 3), R(1, 2)},
			want: []Range{R(0, 3)}, size: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSet(tc.add...)
			got := s.Ranges()
			if len(got) != len(tc.want) {
				t.Fatalf("Ranges() = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Ranges() = %v, want %v", got, tc.want)
				}
			}
			if s.Size() != tc.size {
				t.Errorf("Size() = %d, want %d", s.Size(), tc.size)
			}
			if s.Empty() != (len(tc.want) == 0) {
				t.Errorf("Empty() = %v with %d ranges", s.Empty(), len(tc.want))
			}
		})
	}
}

func TestSetOpsOnEmptySets(t *testing.T) {
	// Every binary operation must treat the empty set as a unit or a zero,
	// never panic on it.
	empty := NewSet()
	some := NewSet(R(2, 8))
	if got := empty.Union(some); !got.Equal(some) {
		t.Errorf("∅ ∪ s = %v", got)
	}
	if got := some.Intersect(empty); !got.Empty() {
		t.Errorf("s ∩ ∅ = %v", got)
	}
	if got := some.Subtract(empty); !got.Equal(some) {
		t.Errorf("s − ∅ = %v", got)
	}
	if got := empty.Subtract(some); !got.Empty() {
		t.Errorf("∅ − s = %v", got)
	}
	if got := empty.Complement(R(0, 10)); got.Size() != 10 {
		t.Errorf("complement of ∅ over [0,10) = %v", got)
	}
	if got := empty.Complement(R(5, 5)); !got.Empty() {
		t.Errorf("complement over an empty window = %v", got)
	}
	if gaps := empty.Gaps(); len(gaps) != 0 {
		t.Errorf("Gaps() on ∅ = %v", gaps)
	}
	if _, ok := empty.Bounds(); ok {
		t.Error("Bounds() on ∅ reported a range")
	}
	if empty.Contains(0) {
		t.Error("∅ contains 0")
	}
}

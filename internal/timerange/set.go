package timerange

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an ordered set of disjoint, non-adjacent, non-empty time ranges —
// the paper's "event series" container. The zero value is an empty set ready
// to use. Set is not safe for concurrent mutation.
type Set struct {
	ranges []Range
}

// NewSet builds a normalized set from arbitrary ranges: empties are dropped,
// overlapping and adjacent ranges are coalesced.
func NewSet(ranges ...Range) *Set {
	s := &Set{}
	for _, r := range ranges {
		s.Add(r)
	}
	return s
}

// FromSorted builds a Set from ranges already known to be sorted, disjoint,
// non-adjacent, and non-empty. It validates in debug fashion: invalid input
// falls back to the normalizing path.
func FromSorted(ranges []Range) *Set {
	for i, r := range ranges {
		if r.Empty() || (i > 0 && ranges[i-1].End >= r.Start) {
			return NewSet(ranges...)
		}
	}
	s := &Set{ranges: make([]Range, len(ranges))}
	copy(s.ranges, ranges)
	return s
}

// Len returns the number of disjoint ranges in the set.
func (s *Set) Len() int { return len(s.ranges) }

// Empty reports whether the set covers no time.
func (s *Set) Empty() bool { return len(s.ranges) == 0 }

// Size returns the total covered duration — the paper's series "set size",
// the numerator of every delay ratio.
func (s *Set) Size() Micros {
	var total Micros
	for _, r := range s.ranges {
		total += r.Len()
	}
	return total
}

// Ranges returns a copy of the underlying ranges in ascending order.
func (s *Set) Ranges() []Range {
	out := make([]Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// At returns the i-th range in ascending order.
func (s *Set) At(i int) Range { return s.ranges[i] }

// Bounds returns the smallest range covering the whole set, and false if the
// set is empty.
func (s *Set) Bounds() (Range, bool) {
	if len(s.ranges) == 0 {
		return Range{}, false
	}
	return Range{Start: s.ranges[0].Start, End: s.ranges[len(s.ranges)-1].End}, true
}

// Add inserts r, coalescing with any overlapping or adjacent ranges.
func (s *Set) Add(r Range) {
	if r.Empty() {
		return
	}
	// Find the first range whose End >= r.Start (merge candidates begin here,
	// counting adjacency).
	lo := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End >= r.Start })
	// Find the first range strictly after r (Start > r.End, not adjacent).
	hi := lo
	for hi < len(s.ranges) && s.ranges[hi].Start <= r.End {
		hi++
	}
	if lo == hi {
		// No overlap/adjacency: pure insert at lo.
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[lo+1:], s.ranges[lo:])
		s.ranges[lo] = r
		return
	}
	merged := Range{Start: min(r.Start, s.ranges[lo].Start), End: max(r.End, s.ranges[hi-1].End)}
	s.ranges[lo] = merged
	s.ranges = append(s.ranges[:lo+1], s.ranges[hi:]...)
}

// Contains reports whether instant t is covered.
func (s *Set) Contains(t Micros) bool {
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > t })
	return i < len(s.ranges) && s.ranges[i].Contains(t)
}

// CoveringRange returns the range containing t, if any.
func (s *Set) CoveringRange(t Micros) (Range, bool) {
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > t })
	if i < len(s.ranges) && s.ranges[i].Contains(t) {
		return s.ranges[i], true
	}
	return Range{}, false
}

// Query returns the ranges overlapping window w, clipped to w.
func (s *Set) Query(w Range) []Range {
	if w.Empty() {
		return nil
	}
	lo := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > w.Start })
	var out []Range
	for i := lo; i < len(s.ranges) && s.ranges[i].Start < w.End; i++ {
		out = append(out, s.ranges[i].Clamp(w))
	}
	return out
}

// OverlapLen returns the total covered length inside window w — the sum of
// Query's clipped range lengths without materializing them, for callers
// (like the per-packet loss classifier) that only need the measure.
func (s *Set) OverlapLen(w Range) Micros {
	if w.Empty() {
		return 0
	}
	lo := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > w.Start })
	var total Micros
	for i := lo; i < len(s.ranges) && s.ranges[i].Start < w.End; i++ {
		total += s.ranges[i].Clamp(w).Len()
	}
	return total
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	return &Set{ranges: append([]Range(nil), s.ranges...)}
}

// Union returns a new set covering every instant in s or o.
func (s *Set) Union(o *Set) *Set {
	out := &Set{ranges: make([]Range, 0, len(s.ranges)+len(o.ranges))}
	i, j := 0, 0
	var cur Range
	haveCur := false
	push := func(r Range) {
		if !haveCur {
			cur, haveCur = r, true
			return
		}
		if r.Start <= cur.End { // overlap or adjacency
			if r.End > cur.End {
				cur.End = r.End
			}
			return
		}
		out.ranges = append(out.ranges, cur)
		cur = r
	}
	for i < len(s.ranges) || j < len(o.ranges) {
		switch {
		case j >= len(o.ranges) || (i < len(s.ranges) && s.ranges[i].Start <= o.ranges[j].Start):
			push(s.ranges[i])
			i++
		default:
			push(o.ranges[j])
			j++
		}
	}
	if haveCur {
		out.ranges = append(out.ranges, cur)
	}
	return out
}

// UnionAll unions any number of sets. Nil sets are treated as empty.
func UnionAll(sets ...*Set) *Set {
	out := &Set{}
	for _, s := range sets {
		if s == nil {
			continue
		}
		out = out.Union(s)
	}
	return out
}

// Intersect returns a new set covering every instant in both s and o.
func (s *Set) Intersect(o *Set) *Set {
	out := &Set{}
	i, j := 0, 0
	for i < len(s.ranges) && j < len(o.ranges) {
		iv := s.ranges[i].Intersect(o.ranges[j])
		if !iv.Empty() {
			out.ranges = append(out.ranges, iv)
		}
		if s.ranges[i].End < o.ranges[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns a new set covering instants in s but not in o.
func (s *Set) Subtract(o *Set) *Set {
	out := &Set{}
	j := 0
	for _, r := range s.ranges {
		start := r.Start
		for j < len(o.ranges) && o.ranges[j].End <= start {
			j++
		}
		k := j
		for k < len(o.ranges) && o.ranges[k].Start < r.End {
			cut := o.ranges[k]
			if cut.Start > start {
				out.ranges = append(out.ranges, Range{Start: start, End: cut.Start})
			}
			if cut.End > start {
				start = cut.End
			}
			if cut.End >= r.End {
				break
			}
			k++
		}
		if start < r.End {
			out.ranges = append(out.ranges, Range{Start: start, End: r.End})
		}
	}
	return out
}

// Complement returns the gaps of s within window w — every instant of w not
// covered by s. This is the paper's set complement restricted to the
// analysis period.
func (s *Set) Complement(w Range) *Set {
	return NewSet(w).Subtract(s)
}

// Gaps returns the uncovered intervals strictly between consecutive ranges
// of s (no leading/trailing gap). Used for inter-transmission gap analysis.
func (s *Set) Gaps() []Range {
	if len(s.ranges) < 2 {
		return nil
	}
	out := make([]Range, 0, len(s.ranges)-1)
	for i := 1; i < len(s.ranges); i++ {
		out = append(out, Range{Start: s.ranges[i-1].End, End: s.ranges[i].Start})
	}
	return out
}

// Equal reports whether two sets cover exactly the same instants.
func (s *Set) Equal(o *Set) bool {
	if len(s.ranges) != len(o.ranges) {
		return false
	}
	for i := range s.ranges {
		if s.ranges[i] != o.ranges[i] {
			return false
		}
	}
	return true
}

// String renders the set compactly, e.g. "{[0,5) [7,9)}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.ranges {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s", r)
	}
	b.WriteByte('}')
	return b.String()
}

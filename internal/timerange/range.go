// Package timerange implements the time-range ordered-set data structure at
// the heart of T-DAT (paper §III-A).
//
// Every analyzer event — a retransmission episode, an idle period, a window
// change — is represented as a half-open time range [Start, End) in
// microseconds. Events of the same kind are collected into a Set: an ordered
// collection of non-overlapping, non-adjacent ranges supporting union,
// intersection, subtraction, complement, range queries, and a Size (total
// covered duration) used to compute delay ratios.
package timerange

import (
	"fmt"
	"math"
)

// Micros is a timestamp or duration in microseconds. The paper converts
// tcpdump second-based timestamps to microseconds and stores them as big
// integers; an int64 covers ±292k years and needs no big-int machinery.
type Micros = int64

const (
	// Millisecond is one millisecond expressed in Micros.
	Millisecond Micros = 1_000
	// Second is one second expressed in Micros.
	Second Micros = 1_000_000

	// MaxTime is the largest representable instant, used as the upper bound
	// for complements over an unbounded horizon.
	MaxTime Micros = math.MaxInt64
	// MinTime is the smallest representable instant.
	MinTime Micros = math.MinInt64
)

// Range is a half-open interval [Start, End) in microseconds.
// A Range with End <= Start is empty.
type Range struct {
	Start Micros
	End   Micros
}

// R constructs a Range. It is a convenience for literals in tests and rules.
func R(start, end Micros) Range { return Range{Start: start, End: end} }

// Empty reports whether the range covers no time.
func (r Range) Empty() bool { return r.End <= r.Start }

// Len returns the covered duration (zero for empty ranges).
func (r Range) Len() Micros {
	if r.Empty() {
		return 0
	}
	return r.End - r.Start
}

// Contains reports whether instant t lies within [Start, End).
func (r Range) Contains(t Micros) bool { return t >= r.Start && t < r.End }

// Overlaps reports whether r and o share any instant.
func (r Range) Overlaps(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.Start < o.End && o.Start < r.End
}

// Adjacent reports whether r and o abut exactly (share an endpoint but no
// instant). Adjacent ranges coalesce under union.
func (r Range) Adjacent(o Range) bool {
	if r.Empty() || o.Empty() {
		return false
	}
	return r.End == o.Start || o.End == r.Start
}

// Intersect returns the overlap of r and o (possibly empty).
func (r Range) Intersect(o Range) Range {
	s := max(r.Start, o.Start)
	e := min(r.End, o.End)
	if e < s {
		e = s
	}
	return Range{Start: s, End: e}
}

// Clamp restricts r to the window w.
func (r Range) Clamp(w Range) Range { return r.Intersect(w) }

// String renders the range as "[start,end)" in microseconds.
func (r Range) String() string {
	return fmt.Sprintf("[%d,%d)", r.Start, r.End)
}

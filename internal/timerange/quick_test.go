package timerange

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genSet draws a small random set: up to 8 ranges over a compact domain so
// overlaps, adjacency, and containment all occur often.
type genSet struct{ S *Set }

func (genSet) Generate(r *rand.Rand, _ int) reflect.Value {
	s := NewSet()
	for n := r.Intn(8); n > 0; n-- {
		start := Micros(r.Intn(200))
		s.Add(R(start, start+Micros(1+r.Intn(40))))
	}
	return reflect.ValueOf(genSet{s})
}

// wellFormed checks the Set's structural invariant: sorted, non-empty,
// non-overlapping, non-adjacent ranges.
func wellFormed(s *Set) bool {
	rs := s.Ranges()
	for i, r := range rs {
		if r.Empty() {
			return false
		}
		if i > 0 && rs[i-1].End >= r.Start {
			return false
		}
	}
	return true
}

func quickCheck(t *testing.T, name string, f any) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestSetAlgebraLaws(t *testing.T) {
	quickCheck(t, "results well-formed", func(a, b genSet) bool {
		return wellFormed(a.S.Union(b.S)) &&
			wellFormed(a.S.Intersect(b.S)) &&
			wellFormed(a.S.Subtract(b.S))
	})
	quickCheck(t, "union commutative", func(a, b genSet) bool {
		return a.S.Union(b.S).Equal(b.S.Union(a.S))
	})
	quickCheck(t, "intersect commutative", func(a, b genSet) bool {
		return a.S.Intersect(b.S).Equal(b.S.Intersect(a.S))
	})
	quickCheck(t, "union associative", func(a, b, c genSet) bool {
		return a.S.Union(b.S).Union(c.S).Equal(a.S.Union(b.S.Union(c.S)))
	})
	quickCheck(t, "intersect associative", func(a, b, c genSet) bool {
		return a.S.Intersect(b.S).Intersect(c.S).Equal(a.S.Intersect(b.S.Intersect(c.S)))
	})
	quickCheck(t, "union idempotent", func(a genSet) bool {
		return a.S.Union(a.S).Equal(a.S)
	})
	quickCheck(t, "intersect idempotent", func(a genSet) bool {
		return a.S.Intersect(a.S).Equal(a.S)
	})
	quickCheck(t, "subtract self empty", func(a genSet) bool {
		return a.S.Subtract(a.S).Empty()
	})
	quickCheck(t, "subtract disjoint from subtrahend", func(a, b genSet) bool {
		return a.S.Subtract(b.S).Intersect(b.S).Empty()
	})
	quickCheck(t, "distributivity a∩(b∪c)", func(a, b, c genSet) bool {
		left := a.S.Intersect(b.S.Union(c.S))
		right := a.S.Intersect(b.S).Union(a.S.Intersect(c.S))
		return left.Equal(right)
	})
	quickCheck(t, "De Morgan a∖(b∪c)", func(a, b, c genSet) bool {
		left := a.S.Subtract(b.S.Union(c.S))
		right := a.S.Subtract(b.S).Subtract(c.S)
		return left.Equal(right)
	})
}

func TestSetDurationConservation(t *testing.T) {
	// |a| + |b| = |a∪b| + |a∩b| — inclusion-exclusion on total covered time.
	quickCheck(t, "inclusion-exclusion", func(a, b genSet) bool {
		return a.S.Size()+b.S.Size() == a.S.Union(b.S).Size()+a.S.Intersect(b.S).Size()
	})
	// Subtraction partitions a: |a| = |a∖b| + |a∩b|.
	quickCheck(t, "subtract partitions", func(a, b genSet) bool {
		return a.S.Size() == a.S.Subtract(b.S).Size()+a.S.Intersect(b.S).Size()
	})
	// Complement within a window partitions the window.
	quickCheck(t, "complement partitions window", func(a genSet) bool {
		w := R(0, 300)
		clipped := a.S.Intersect(NewSet(w))
		return clipped.Size()+a.S.Complement(w).Size() == w.Len()
	})
}

func TestSetPointMembership(t *testing.T) {
	// Contains agrees with the set operations at every point of the domain.
	quickCheck(t, "membership algebra", func(a, b genSet) bool {
		u, x, d := a.S.Union(b.S), a.S.Intersect(b.S), a.S.Subtract(b.S)
		for t := Micros(0); t < 250; t++ {
			ia, ib := a.S.Contains(t), b.S.Contains(t)
			if u.Contains(t) != (ia || ib) {
				return false
			}
			if x.Contains(t) != (ia && ib) {
				return false
			}
			if d.Contains(t) != (ia && !ib) {
				return false
			}
		}
		return true
	})
	// Add is order-independent: a set equals the same ranges added shuffled.
	quickCheck(t, "add order-independent", func(a genSet, seed int64) bool {
		rs := a.S.Ranges()
		shuffled := append([]Range(nil), rs...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return NewSet(shuffled...).Equal(a.S)
	})
}

package timerange_test

import (
	"fmt"

	"tdat/internal/timerange"
)

// The paper's central trick: every TCP behaviour is a set of time ranges,
// so cross-behaviour questions become set algebra.
func ExampleSet() {
	// When was the sender idle?
	idle := timerange.NewSet(
		timerange.R(100, 300),
		timerange.R(500, 900),
	)
	// When was the receiver's window closed?
	zeroWindow := timerange.NewSet(timerange.R(250, 600))

	// Idle that the zero window explains vs. idle that needs another story.
	explained := idle.Intersect(zeroWindow)
	unexplained := idle.Subtract(zeroWindow)

	fmt.Println("idle:       ", idle, "size", idle.Size())
	fmt.Println("explained:  ", explained, "size", explained.Size())
	fmt.Println("unexplained:", unexplained, "size", unexplained.Size())
	// Output:
	// idle:        {[100,300) [500,900)} size 600
	// explained:   {[250,300) [500,600)} size 150
	// unexplained: {[100,250) [600,900)} size 450
}

func ExampleSet_Complement() {
	transmitting := timerange.NewSet(timerange.R(0, 10), timerange.R(40, 50))
	gaps := transmitting.Complement(timerange.R(0, 100))
	fmt.Println(gaps)
	// Output:
	// {[10,40) [50,100)}
}

// This file documents the full 34-series catalog (paper §III-C). Rule
// classes: E = extraction (straight from packet information), I =
// interpretation (deployment-specific renaming), O = operation (heuristics
// and set algebra over other series). The eight series marked F back the
// conclusive delay factors (§III-D / internal/factors).
//
//	#  Series            Class  Definition
//	-- ----------------- -----  ------------------------------------------
//	 1 Transmission        E    data packets on the wire (per-packet ranges
//	                            scaled by the bottleneck serialization unit)
//	 2 AckArrival          E    ACK arrival instants (after the sniffer-
//	                            location shift)
//	 3 DupAck              E    duplicate-ACK instants
//	 4 Retransmission      E    retransmitted data packets (bytes the
//	                            sniffer had already captured)
//	 5 OutOfSequence       E    gap-filling packets (bytes never captured)
//	 6 Reordering          E    gap fills explained by in-network
//	                            reordering (IP-ID / arrival-lag filter)
//	 7 UpstreamLoss        E    recovery periods of losses before the
//	                            sniffer (gap open → repair arrival)
//	 8 DownstreamLoss      E    recovery periods of losses after the
//	                            sniffer (original capture → retransmission)
//	 9 Outstanding         E    ≥1 byte sent and unacknowledged
//	10 AdvWindow           E    the advertised-window timeline
//	11 ZeroAdvWindow       E    advertised window == 0
//	12 SmallAdvWindow      E    advertised window < 3·MSS (includes zero)
//	13 LargeAdvWindow      E    advertised window ≥ max − 3·MSS
//	14 MidAdvWindow        E    neither small nor large
//	15 SynHandshake        E    SYN → handshake-completing ACK
//	16 Idle                E    transmission gaps longer than the RTT
//	17 Quiet               E    no packets in either direction for > RTT
//	18 KeepaliveOnly       E    runs of keepalive-sized (≤100 B) data only
//	19 ActiveTransfer      E    first data packet → last packet
//	20 SendLocalLoss      I,F   = UpstreamLoss when the sniffer is at the
//	                            sender; empty at a receiver-side sniffer
//	21 RecvLocalLoss      I,F   = DownstreamLoss at a receiver-side sniffer
//	22 NetworkLoss        I,F   the loss direction not attributable to the
//	                            local end (= UpstreamLoss at the receiver)
//	23 SendAppLimited     O,F   sender idle between flights though windows
//	                            were open: per flight pair, the gap minus
//	                            ACK-clocked, window-bound, loss, zero-
//	                            window, and wire-busy time
//	24 AdvBndOut           O    flights whose peak outstanding reached the
//	                            tightest advertised window (within 3·MSS),
//	                            extended over the wait for the next release
//	25 CwndBndOut         O,F   full-segment flights launched immediately
//	                            on their predecessor's completion ACK
//	26 SmallAdvBndOut     O,F   AdvBndOut below the maximum window, plus
//	                            zero-window stalls — the receiver app
//	27 LargeAdvBndOut     O,F   AdvBndOut at the fully open window — the
//	                            TCP parameter
//	28 ZeroAdvBndOut       O    zero windows while the transfer is active
//	29 BandwidthLimited   O,F   arrival gaps proportional to packet wire
//	                            size over ≥5-packet runs spanning ≥ RTT
//	                            (cadences ≈RTT or >4·RTT excluded)
//	30 LossRecovery        O    UpstreamLoss ∪ DownstreamLoss
//	31 ZeroAckBug          O    dilate(ZeroAdvBndOut, 2·RTT) ∩ UpstreamLoss
//	                            — the router probe-discard bug conflict
//	32 SenderLimited       O    SendAppLimited ∪ CwndBndOut ∪ SendLocalLoss
//	33 ReceiverLimited     O    SmallAdvBndOut ∪ LargeAdvBndOut ∪
//	                            RecvLocalLoss
//	34 NetworkLimited      O    BandwidthLimited ∪ NetworkLoss

package series

package series

import (
	"testing"

	"tdat/internal/timerange"
	"tdat/internal/traceutil"
)

const mss = 1460

// gen builds a catalog with the shift disabled (hand-crafted traces already
// express sender-side timing) unless a config is supplied.
func gen(t *testing.T, b *traceutil.Builder, cfgs ...Config) *Catalog {
	t.Helper()
	cfg := Config{DisableShift: true}
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	return Generate(b.Extract(), cfg)
}

func TestCatalogHas34Series(t *testing.T) {
	if len(All) != 34 {
		t.Fatalf("catalog lists %d series, the paper's analyzer has 34", len(All))
	}
	seen := map[Name]bool{}
	for _, n := range All {
		if seen[n] {
			t.Errorf("duplicate series name %q", n)
		}
		seen[n] = true
	}
	// Every listed series must be materialized (possibly empty) after
	// generation.
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.SteadyTransfer(20_000, 10_000, 3, 2, 65535)
	cat := gen(t, b)
	for _, n := range All {
		if cat.Get(n) == nil {
			t.Errorf("series %q is nil", n)
		}
	}
	if cat.Get(Name("NoSuchSeries")).Len() != 0 {
		t.Error("unknown series should be empty")
	}
}

func TestTransmissionAndIdle(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Two bursts separated by a 300 ms silence.
	b.Data(20_000, 0, mss)
	b.Data(20_100, mss, mss)
	b.Ack(30_000, 2*mss, 65535)
	b.Data(330_000, 2*mss, mss)
	b.Ack(340_000, 3*mss, 65535)
	cat := gen(t, b)

	trans := cat.Get(Transmission)
	if trans.Empty() {
		t.Fatal("no transmission series")
	}
	idle := cat.Get(Idle)
	if idle.Len() != 1 {
		t.Fatalf("idle = %v, want one gap", idle)
	}
	g := idle.At(0)
	if g.Len() < 250_000 {
		t.Errorf("idle gap = %v, want ≈310ms", g)
	}
}

func TestSendAppLimitedDetectsPacingGaps(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Sender sends one segment, gets acked promptly, then waits ~200 ms
	// before the next — four times (timer-paced application).
	t0 := traceutil.Micros(20_000)
	off := int64(0)
	for i := 0; i < 4; i++ {
		b.Data(t0, off, mss)
		off += mss
		b.Ack(t0+10_000, off, 65535)
		t0 += 200_000
	}
	cat := gen(t, b)
	app := cat.Get(SendAppLimited)
	// Three pacing gaps plus the pre-first-data (OPEN processing) idle —
	// which the paper also charges to the sender application.
	if app.Len() != 4 {
		t.Fatalf("app-limited ranges = %v, want 4", app)
	}
	for _, r := range app.Ranges()[1:] {
		if r.Len() < 150_000 || r.Len() > 210_000 {
			t.Errorf("gap %v outside the ≈190ms expectation", r)
		}
	}
}

func TestZeroWindowSeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	b.Ack(30_000, mss, 0)      // window slams shut
	b.Ack(530_000, mss, 4*mss) // reopens 500 ms later
	b.Data(531_000, mss, mss)  // transfer continues
	b.Ack(541_000, 2*mss, 65535)
	cat := gen(t, b)

	zero := cat.Get(ZeroAdvWindow)
	if zero.Size() < 490_000 {
		t.Errorf("zero-window size = %d, want ≈500ms", zero.Size())
	}
	if cat.Get(SmallAdvWindow).Size() < zero.Size() {
		t.Error("small window must include zero window")
	}
	zb := cat.Get(ZeroAdvBndOut)
	if zb.Size() < 490_000 {
		t.Errorf("ZeroAdvBndOut size = %d", zb.Size())
	}
	// The zero-window stall must NOT count as sender-app-limited.
	app := cat.Get(SendAppLimited)
	if app.Intersect(zero).Size() > 1_000 {
		t.Errorf("app-limited overlaps zero window: %v", app.Intersect(zero))
	}
}

func TestAdvBoundedFlights(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Window is 4 MSS; sender fills it each round and continues the moment
	// the ACK arrives: receiver-window bounded.
	win := uint16(4 * mss)
	off := int64(0)
	t0 := traceutil.Micros(20_000)
	for f := 0; f < 5; f++ {
		for p := 0; p < 4; p++ {
			b.Data(t0+traceutil.Micros(p)*100, off, mss)
			off += mss
		}
		b.Ack(t0+10_000, off, win)
		t0 += 10_000
	}
	cat := gen(t, b)
	if len(cat.Flights) < 4 {
		t.Fatalf("flights = %d", len(cat.Flights))
	}
	bounded := 0
	for _, f := range cat.Flights {
		if f.AdvBounded {
			bounded++
		}
	}
	if bounded < 4 {
		t.Errorf("adv-bounded flights = %d of %d", bounded, len(cat.Flights))
	}
	if cat.Get(AdvBndOut).Empty() {
		t.Error("AdvBndOut series empty")
	}
	// Window 4·MSS is neither small (<3·MSS) nor near 65535: mid bucket.
	if !cat.Get(LargeAdvBndOut).Empty() {
		t.Errorf("LargeAdvBndOut = %v, want empty", cat.Get(LargeAdvBndOut))
	}
}

func TestCwndBoundedFlights(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Huge advertised window (65535) but sender only has 2 MSS in flight,
	// sending the next flight immediately on each ACK: cwnd-bounded.
	off := int64(0)
	t0 := traceutil.Micros(20_000)
	for f := 0; f < 6; f++ {
		b.Data(t0, off, mss)
		b.Data(t0+100, off+mss, mss)
		off += 2 * mss
		b.Ack(t0+10_000, off, 65535)
		t0 += 10_100 // next flight 100 µs after the ack: ACK-clocked
	}
	cat := gen(t, b)
	cwnd := 0
	for _, f := range cat.Flights {
		if f.CwndBounded {
			cwnd++
		}
	}
	if cwnd < 4 {
		t.Errorf("cwnd-bounded flights = %d (flights %d)", cwnd, len(cat.Flights))
	}
	if cat.Get(CwndBndOut).Empty() {
		t.Error("CwndBndOut series empty")
	}
	if !cat.Get(AdvBndOut).Empty() {
		t.Errorf("AdvBndOut should be empty for a 64k window: %v", cat.Get(AdvBndOut))
	}
}

func TestLossSeriesInterpretationAtReceiver(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// Downstream loss: same bytes captured twice.
	b.Data(20_000, 0, mss)
	b.Data(250_000, 0, mss)
	b.Ack(260_000, mss, 65535)
	// Upstream loss: gap filled much later.
	b.Data(270_000, 2*mss, mss)
	b.Data(600_000, mss, mss)
	b.Ack(610_000, 3*mss, 65535)
	cat := gen(t, b)

	if cat.Get(RecvLocalLoss).Empty() {
		t.Error("receiver-local loss empty")
	}
	if !cat.Get(RecvLocalLoss).Equal(cat.Get(DownstreamLoss)) {
		t.Error("RecvLocalLoss must mirror DownstreamLoss at a receiver-side sniffer")
	}
	if !cat.Get(NetworkLoss).Equal(cat.Get(UpstreamLoss)) {
		t.Error("NetworkLoss must mirror UpstreamLoss at a receiver-side sniffer")
	}
	if !cat.Get(SendLocalLoss).Empty() {
		t.Error("SendLocalLoss must be empty at a receiver-side sniffer")
	}
	lr := cat.Get(LossRecovery)
	if !lr.Equal(cat.Get(UpstreamLoss).Union(cat.Get(DownstreamLoss))) {
		t.Error("LossRecovery must be the union of both loss series")
	}
}

func TestLossInterpretationAtSender(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, mss, mss) // opens a gap
	b.Data(400_000, 0, mss)  // fills it (upstream loss)
	b.Ack(410_000, 2*mss, 65535)
	cat := gen(t, b, Config{DisableShift: true, Sniffer: AtSender})
	if cat.Get(SendLocalLoss).Empty() {
		t.Error("sender-side sniffer: upstream loss is sender-local")
	}
	if !cat.Get(RecvLocalLoss).Empty() {
		t.Error("sender-side sniffer: no receiver-local attribution")
	}
}

func TestZeroAckBugSeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	b.Ack(30_000, mss, 0) // zero window begins
	// While the window is still closed, an out-of-order arrival shows bytes
	// were lost upstream (the discarded probe bug signature).
	b.Data(100_000, 2*mss, mss)
	b.Data(700_000, mss, mss) // repair
	b.Ack(710_000, 3*mss, 0)
	b.Ack(900_000, 3*mss, 65535)
	cat := gen(t, b)
	if cat.Get(ZeroAckBug).Empty() {
		t.Errorf("ZeroAckBug empty; zero=%v uploss=%v",
			cat.Get(ZeroAdvBndOut), cat.Get(UpstreamLoss))
	}
}

func TestKeepaliveOnlySeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss) // real data
	b.Ack(30_000, mss, 65535)
	// Keepalive exchange: three 19-byte messages a minute apart.
	off := int64(mss)
	for i := 0; i < 3; i++ {
		b.Data(1_000_000+traceutil.Micros(i)*60_000_000, off, 19)
		off += 19
		b.Ack(1_010_000+traceutil.Micros(i)*60_000_000, off, 65535)
	}
	cat := gen(t, b)
	ka := cat.Get(KeepaliveOnly)
	if ka.Len() != 1 {
		t.Fatalf("keepalive-only = %v", ka)
	}
	if ka.At(0).Len() < 100_000_000 {
		t.Errorf("keepalive period = %v, want ≈120s", ka.At(0))
	}
}

func TestBandwidthLimitedSeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// 40 MSS packets back-to-back at 500 µs spacing (bottleneck-clocked),
	// spanning 20 ms ≥ RTT.
	for i := 0; i < 40; i++ {
		b.Data(20_000+traceutil.Micros(i)*500, int64(i)*mss, mss)
	}
	b.Ack(45_000, 40*mss, 65535)
	cat := gen(t, b)
	if cat.Get(BandwidthLimited).Empty() {
		t.Error("bandwidth-limited series empty for a saturated link")
	}
}

func TestGroupUnions(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.SteadyTransfer(20_000, 10_000, 4, 2, 65535)
	cat := gen(t, b)
	snd := cat.Get(SenderLimited)
	want := timerange.UnionAll(cat.Get(SendAppLimited), cat.Get(CwndBndOut), cat.Get(SendLocalLoss))
	if !snd.Equal(want) {
		t.Error("SenderLimited is not the union of its member factors")
	}
	rcv := cat.Get(ReceiverLimited)
	wantR := timerange.UnionAll(cat.Get(SmallAdvBndOut), cat.Get(LargeAdvBndOut), cat.Get(RecvLocalLoss))
	if !rcv.Equal(wantR) {
		t.Error("ReceiverLimited is not the union of its member factors")
	}
}

func TestOutstandingSeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.Data(20_000, 0, mss)
	b.Ack(30_000, mss, 65535)
	b.Data(50_000, mss, mss)
	b.Ack(60_000, 2*mss, 65535)
	cat := gen(t, b)
	out := cat.Get(Outstanding)
	if out.Len() != 2 {
		t.Fatalf("outstanding = %v, want 2 ranges", out)
	}
	if out.At(0) != timerange.R(20_000, 30_000) {
		t.Errorf("first outstanding = %v", out.At(0))
	}
	if out.At(1) != timerange.R(50_000, 60_000) {
		t.Errorf("second outstanding = %v", out.At(1))
	}
}

func TestEmptyConnectionSafe(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	cat := gen(t, b)
	for _, n := range All {
		_ = cat.Get(n).Size() // no panics on a handshake-only connection
	}
	if !cat.Get(Transmission).Empty() {
		t.Error("transmission series should be empty with no data")
	}
}

func TestShiftIntegration(t *testing.T) {
	// With the shift enabled, ACKs captured at the receiver move forward to
	// just before the data they release, collapsing phantom app-limited
	// gaps that are really RTT.
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	off := int64(0)
	t0 := traceutil.Micros(20_000)
	for f := 0; f < 5; f++ {
		b.Data(t0, off, mss)
		off += mss
		// ACK leaves the receiver ~50 µs after data arrival; the next data
		// appears a full RTT later.
		b.Ack(t0+50, off, 65535)
		t0 += 10_000
	}
	raw := Generate(b.Extract(), Config{DisableShift: true})
	shifted := Generate(b.Extract(), Config{})
	rawApp := raw.Get(SendAppLimited).Size()
	shiftApp := shifted.Get(SendAppLimited).Size()
	if shiftApp >= rawApp {
		t.Errorf("shift did not reduce phantom app-limited time: raw=%d shifted=%d",
			rawApp, shiftApp)
	}
}

func TestRangeStatsAnnotateLossWaves(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	// One downstream-loss episode: original + two RTO retransmissions.
	b.Data(20_000, 0, mss)
	b.Data(250_000, 0, mss)
	b.Data(650_000, 0, mss)
	b.Ack(660_000, mss, 65535)
	cat := gen(t, b)

	stats := cat.RangeStats(DownstreamLoss)
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	// The recovery wave contains the original and both retransmissions.
	if s.DataPackets != 3 || s.DataBytes != 3*mss {
		t.Errorf("packets=%d bytes=%d", s.DataPackets, s.DataBytes)
	}
	if s.Retransmits != 2 {
		t.Errorf("retransmits = %d, want 2", s.Retransmits)
	}
}

func TestRangeStatsCountAcks(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	b.SteadyTransfer(20_000, 10_000, 4, 2, 65535)
	cat := gen(t, b)
	stats := cat.RangeStats(ActiveTransfer)
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Acks < 4 {
		t.Errorf("acks = %d, want ≥4", stats[0].Acks)
	}
	if stats[0].DataPackets != 8 {
		t.Errorf("data packets = %d, want 8", stats[0].DataPackets)
	}
}

func TestRangeStatsEmptySeries(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, mss)
	cat := gen(t, b)
	if got := cat.RangeStats(UpstreamLoss); len(got) != 0 {
		t.Errorf("stats = %+v", got)
	}
}

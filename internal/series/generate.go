package series

import (
	"sort"

	"tdat/internal/explain"
	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// rtt returns the connection RTT with a floor so thresholds stay sane on
// handshake-less captures.
func (c *Catalog) rtt() Micros {
	if r := c.conn.Profile.RTT; r > 0 {
		return r
	}
	return 1_000
}

func (c *Catalog) mss() int {
	if m := c.conn.Profile.MSS; m > 0 {
		return m
	}
	return 1460
}

// serUnit estimates per-packet serialization time from the tightest spacing
// of full-size back-to-back segments (the bottleneck clock).
func (c *Catalog) serUnit() Micros {
	mss := c.mss()
	best := Micros(0)
	data := c.conn.Data
	for i := 1; i < len(data); i++ {
		if data[i-1].Len != mss || data[i].Len != mss {
			continue
		}
		if d := data[i].Time - data[i-1].Time; d > 0 && (best == 0 || d < best) {
			best = d
		}
	}
	if best == 0 || best > c.rtt() {
		return 1
	}
	return best
}

// extract builds the base series straight from packet information
// (rule class 1, §III-C1).
func (c *Catalog) extract() {
	data := c.conn.Data
	acks := c.acks
	ser := c.serUnit()
	mss := c.mss()
	rtt := c.rtt()

	trans := timerange.NewSet()
	retx := timerange.NewSet()
	oos := timerange.NewSet()
	reord := timerange.NewSet()
	ackArr := timerange.NewSet()
	dup := timerange.NewSet()

	serFor := func(l int) Micros {
		s := ser * Micros(l) / Micros(mss)
		if s <= 0 {
			s = 1
		}
		return s
	}
	for _, d := range data {
		r := timerange.R(d.Time, d.Time+serFor(d.Len))
		trans.Add(r)
		switch d.Kind {
		case flows.DataRetransmit:
			retx.Add(r)
		case flows.DataGapFill:
			oos.Add(r)
		case flows.DataReordered:
			reord.Add(r)
		}
	}
	for _, a := range acks {
		ackArr.Add(timerange.R(a.Time, a.Time+1))
		if a.Dup {
			dup.Add(timerange.R(a.Time, a.Time+1))
		}
	}
	c.set(Transmission, trans)
	c.set(Retransmission, retx)
	c.set(OutOfSequence, oos)
	c.set(Reordering, reord)
	c.set(AckArrival, ackArr)
	c.set(DupAck, dup)
	c.set(UpstreamLoss, c.conn.UpstreamLoss.Clone())
	c.set(DownstreamLoss, c.conn.DownstreamLoss.Clone())

	// Active transfer window.
	active := timerange.NewSet()
	if len(data) > 0 {
		end := data[len(data)-1].Time
		if n := len(acks); n > 0 && acks[n-1].Time > end {
			end = acks[n-1].Time
		}
		active.Add(timerange.R(data[0].Time, end+1))
	}
	c.set(ActiveTransfer, active)

	// Handshake.
	hs := timerange.NewSet()
	if p := c.conn.Profile; p.SynTime > 0 && p.HandshakeAckTime > p.SynTime {
		hs.Add(timerange.R(p.SynTime, p.HandshakeAckTime))
	}
	c.set(SynHandshake, hs)

	// Advertised-window timeline, bucketed into zero/small/large/mid. The
	// window between two ACKs is the earlier ACK's advertisement.
	advAll := timerange.NewSet()
	zero := timerange.NewSet()
	small := timerange.NewSet()
	large := timerange.NewSet()
	mid := timerange.NewSet()
	smallCut := c.cfg.SmallWindowMSS * mss
	largeCut := c.conn.Profile.MaxAdvWindow - c.cfg.LargeWindowMarginMSS*mss
	if largeCut < smallCut {
		largeCut = smallCut
	}
	horizon := Micros(0)
	if b, ok := active.Bounds(); ok {
		horizon = b.End
	}
	for i, a := range acks {
		end := horizon
		if i+1 < len(acks) {
			end = acks[i+1].Time
		}
		if end <= a.Time {
			continue
		}
		r := timerange.R(a.Time, end)
		advAll.Add(r)
		switch {
		case a.Window == 0:
			zero.Add(r)
		case a.Window < smallCut:
			small.Add(r)
		case a.Window >= largeCut:
			large.Add(r)
		default:
			mid.Add(r)
		}
	}
	// Zero windows are also "small" (the receiver app is the bottleneck in
	// both); keep the buckets unioned the way the factor mapping uses them.
	small = small.Union(zero)
	c.set(AdvWindow, advAll)
	c.set(ZeroAdvWindow, zero)
	c.set(SmallAdvWindow, small)
	c.set(LargeAdvWindow, large)
	c.set(MidAdvWindow, mid)

	// Outstanding periods: from the data packet that makes sequence space
	// unacknowledged until the (shifted) ACK that clears it. The per-packet
	// outstanding level feeds the bandwidth detector.
	out := timerange.NewSet()
	c.outLevels = make([]int, len(data))
	var maxEnd, lastAck int64
	var openStart Micros = -1
	di, ai := 0, 0
	for di < len(data) || ai < len(acks) {
		if ai >= len(acks) || (di < len(data) && data[di].Time <= acks[ai].Time) {
			d := data[di]
			if d.SeqEnd > maxEnd {
				maxEnd = d.SeqEnd
			}
			c.outLevels[di] = int(maxEnd - lastAck)
			di++
			if maxEnd > lastAck && openStart < 0 {
				openStart = d.Time
			}
		} else {
			a := acks[ai]
			ai++
			if a.Ack > lastAck {
				lastAck = a.Ack
			}
			if lastAck >= maxEnd && openStart >= 0 {
				out.Add(timerange.R(openStart, a.Time))
				openStart = -1
			}
		}
	}
	if openStart >= 0 && horizon > openStart {
		out.Add(timerange.R(openStart, horizon))
	}
	c.set(Outstanding, out)

	// Idle: transmission gaps longer than the RTT. Quiet: gaps with no
	// packets in either direction.
	idle := timerange.NewSet()
	for _, g := range trans.Gaps() {
		if g.Len() > rtt {
			idle.Add(g)
		}
	}
	c.set(Idle, idle)
	quiet := timerange.NewSet()
	everything := trans.Union(ackArr)
	for _, g := range everything.Gaps() {
		if g.Len() > rtt {
			quiet.Add(g)
		}
	}
	c.set(Quiet, quiet)

	// KeepaliveOnly: maximal runs of small-payload data packets.
	ka := timerange.NewSet()
	runStart := -1
	for i := range data {
		if data[i].Len <= c.cfg.KeepalivePayloadMax {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if runStart >= 0 && i-runStart >= 2 {
			ka.Add(timerange.R(data[runStart].Time, data[i-1].Time+1))
		}
		runStart = -1
	}
	if runStart >= 0 && len(data)-runStart >= 2 {
		ka.Add(timerange.R(data[runStart].Time, data[len(data)-1].Time+1))
	}
	c.set(KeepaliveOnly, ka)

	c.buildFlights()
	c.set(BandwidthLimited, c.detectBandwidth())
}

// detectBandwidth finds periods where arrivals are clocked by the
// bottleneck link. The signature that separates a saturated wire from an
// application pacing itself at a fixed period is that inter-arrival gaps
// track each packet's wire size: draining a bottleneck queue at R bytes/sec
// spaces a packet wirelen/R behind its predecessor, small packets close
// behind big ones — an application timer releases on the clock regardless
// of size. Runs of ≥ BandwidthRunLen packets matching that proportionality
// and spanning at least one RTT are bandwidth-limited. The proportionality
// anchor is local (each gap against the drain rate the previous gap
// implied), so a bottleneck whose rate varies over the transfer — a policer
// stepping through a schedule — still reads as one drain; runs slower than
// the tightest spacing the wire ever demonstrated additionally need a
// size-tracking small packet as evidence they are not a timer.
func (c *Catalog) detectBandwidth() *timerange.Set {
	data := c.conn.Data
	mss := c.mss()
	rtt := c.rtt()
	bw := timerange.NewSet()
	// Serialization time of one full segment, from the tightest MSS-MSS
	// spacing observed (the bottleneck clock).
	serMSS := Micros(0)
	for i := 1; i < len(data); i++ {
		if data[i].Len != mss || data[i-1].Len != mss {
			continue
		}
		if g := data[i].Time - data[i-1].Time; g > 0 && (serMSS == 0 || g < serMSS) {
			serMSS = g
		}
	}
	rec := c.cfg.Explain
	bwInputs := func() []explain.KV {
		return []explain.KV{
			{K: "ser_mss_us", V: float64(serMSS)},
			{K: "rtt_us", V: float64(rtt)},
			{K: "mss", V: float64(mss)},
		}
	}
	if serMSS < 100 {
		// The wire moves a full segment in under 100 µs: whatever limits
		// this connection, it is not the bottleneck bandwidth.
		if rec.Enabled() {
			rec.Add(explain.Evidence{
				Rule: "series.bandwidth-limited", Outcome: explain.OutcomeRejected,
				Inputs:     bwInputs(),
				Thresholds: []explain.KV{{K: "min_ser_mss_us", V: 100}},
				Detail:     "fast-wire rejection: a full segment serializes in under 100 µs, so bandwidth is not the bottleneck",
			})
		}
		return bw
	}
	if serMSS > 4*rtt {
		// The tightest observed spacing already exceeds several RTTs per
		// segment. A wire that slow is indistinguishable from application
		// pacing (the same cutoff the run filter applies below) — and when
		// an application emits one segment per timer tick, the pacing
		// period itself masquerades as the serialization time. Bail before
		// it anchors the slow-run guard below.
		if rec.Enabled() {
			rec.Add(explain.Evidence{
				Rule: "series.bandwidth-limited", Outcome: explain.OutcomeVetoed,
				Inputs:     bwInputs(),
				Thresholds: []explain.KV{{K: "max_ser_mss_rtts", V: 4}},
				Detail:     "pacing veto: tightest full-segment spacing exceeds 4×RTT, indistinguishable from application pacing",
			})
		}
		return bw
	}
	const hdrLen = 54 // Ethernet + IP + TCP
	wireMSS := Micros(mss + hdrLen)

	runStart := -1
	runSmall := false    // run carries a sub-half-MSS packet on a tracking gap
	runWire := Micros(0) // wire bytes carried across the run's gaps
	runDry := 0          // packets with nothing outstanding beyond themselves
	flush := func(end int) {
		defer func() { runStart = -1; runSmall = false; runWire = 0; runDry = 0 }()
		if runStart < 0 || end-runStart+1 < c.cfg.BandwidthRunLen {
			return
		}
		r := timerange.R(data[runStart].Time, data[end].Time+1)
		if r.Len() < rtt {
			return
		}
		// A saturated bottleneck keeps a standing queue: every packet in
		// the drain leaves earlier bytes still unacknowledged behind it. An
		// application timer runs the pipe dry between ticks — each release
		// is the only thing outstanding — even when its cadence happens to
		// be size-consistent (all ticks near-MSS). Reject runs that are dry
		// more often than not.
		if runDry*2 > end-runStart {
			return
		}
		// The run's own implied full-segment serialization. A "run" whose
		// bytes move faster than 100 µs per segment is a line-rate burst
		// (self-consistent, but not a drain), mirroring the global
		// fast-wire rejection at run granularity.
		if runWire > 0 && (r.Len()-1)*wireMSS/runWire < 100 {
			return
		}
		// Uniform gaps alone are ambiguous. Two cadences are excluded:
		// ≈RTT (one-window-per-round ACK clocking) and anything beyond a
		// few RTTs (a wire that slow is indistinguishable from — and in
		// BGP practice almost always is — application pacing).
		//
		// The ≈RTT exclusion has a counter-signal: a queue draining at R
		// bytes/sec releases a small packet a few ms behind a full one,
		// while ACK clocking spaces packets a whole RTT apart regardless
		// of size. A sub-half-MSS packet closing well inside the RTT is
		// evidence the cadence is serialization, not the ACK clock, even
		// when the full-segment spacing happens to coincide with the RTT.
		avgGap := r.Len() / Micros(end-runStart)
		if avgGap >= rtt*3/5 && avgGap <= rtt*8/5 {
			sized := false
			for i := runStart + 1; i <= end; i++ {
				if data[i].Len <= mss/2 && data[i].Time-data[i-1].Time <= rtt/3 {
					sized = true
					break
				}
			}
			if !sized {
				return
			}
		}
		if avgGap > 4*rtt {
			return
		}
		// A run draining slower than the tightest spacing the wire has
		// demonstrated claims the bottleneck itself slowed down. That is
		// real on a time-varying link, but it is also exactly what an
		// application timer looks like — so demand the one signature a
		// timer cannot fake: a small packet whose gap shrank with it.
		// (Equal-size packets pass the relative proportionality test for
		// free; only a size change makes it informative.)
		if avgGap > serMSS*17/10 && !runSmall {
			return
		}
		bw.Add(r)
	}
	// The proportionality test is anchored locally — each gap is compared
	// to the per-byte drain time the previous gap implied — so the run
	// survives a bottleneck whose rate drifts (a policer stepping through
	// a schedule moves the clock slowly; an application burst jumps it).
	for i := 2; i < len(data); i++ {
		gap := data[i].Time - data[i-1].Time
		wl := Micros(data[i].Len + hdrLen)
		pgap := data[i-1].Time - data[i-2].Time
		pwl := Micros(data[i-1].Len + hdrLen)
		ok := gap > 0 && pgap > 0 &&
			gap*pwl*5 >= pgap*wl*3 && gap*pwl*10 <= pgap*wl*17
		if ok {
			if runStart < 0 {
				runStart = i - 2
				runWire += pwl
				if data[i-1].Len <= mss/2 {
					runSmall = true
				}
				if c.outLevels[i-1] <= data[i-1].Len {
					runDry++
				}
			}
			if data[i].Len <= mss/2 {
				runSmall = true
			}
			if c.outLevels[i] <= data[i].Len {
				runDry++
			}
			runWire += wl
			continue
		}
		flush(i - 1)
	}
	flush(len(data) - 1)
	if rec.Enabled() {
		outcome := explain.OutcomeFired
		detail := "inter-arrival gaps track wire size at the bottleneck clock"
		if bw.Empty() {
			outcome = explain.OutcomeRejected
			detail = "no size-proportional run long enough to qualify"
		}
		rec.Add(explain.Evidence{
			Rule: "series.bandwidth-limited", Outcome: outcome,
			Score:  float64(bw.Size()),
			Inputs: bwInputs(),
			Thresholds: []explain.KV{
				{K: "min_run_packets", V: float64(c.cfg.BandwidthRunLen)},
				{K: "min_run_rtts", V: 1},
			},
			Intervals: []explain.IntervalSet{explain.Capture("BandwidthLimited", bw)},
			Detail:    detail,
		})
	}
	return bw
}

// interpret applies the deployment mapping (rule class 2, §III-C2).
func (c *Catalog) interpret() {
	up := c.Get(UpstreamLoss)
	down := c.Get(DownstreamLoss)
	switch c.cfg.Sniffer {
	case AtReceiver:
		c.set(RecvLocalLoss, down.Clone())
		c.set(SendLocalLoss, timerange.NewSet())
		c.set(NetworkLoss, up.Clone())
	case AtSender:
		c.set(SendLocalLoss, up.Clone())
		c.set(RecvLocalLoss, timerange.NewSet())
		c.set(NetworkLoss, down.Clone())
	}
}

// windowBound reports whether flight f was limited by the receiver's
// advertised window. Two signatures qualify. The direct one: peak
// outstanding bytes came within slack of the tightest advertised window.
// The rate one, for long-delay paths: outstanding bytes are measured where
// the sniffer sits, and with the compensation shift only covering ACKs
// that release data, a window-filling sender half a second away shows only
// part of its true flight size — but its throughput cannot exceed the
// advertised window per round trip. A sustained flight (several packets
// spanning at least two round trips) whose average rate reaches that
// ceiling is window-clocked regardless of what the outstanding counter
// caught.
func windowBound(f *Flight, slackB int, rtt Micros) bool {
	if f.MaxOut > 0 && f.WinMin-f.MaxOut < slackB {
		return true
	}
	span := f.Last - f.First
	if f.Packets < 5 || span < 2*rtt || f.WinMin <= slackB {
		return false
	}
	if f.WinMin+slackB < f.WindowAtStart {
		// The tightest window was a transient dip, not the prevailing
		// ceiling — a flight average against it says nothing.
		return false
	}
	return int64(f.Bytes)*int64(rtt) >= int64(f.WinMin-slackB)*int64(span)
}

// operate derives the behavioural series (rule class 3, §III-C3).
func (c *Catalog) operate() {
	data := c.conn.Data
	mss := c.mss()
	immediate := c.cfg.ImmediateACK
	if immediate == 0 {
		immediate = maxMicros(2_000, c.rtt()/8)
	}

	// Send-application-limited (paper: "the idle period between the moment
	// the sender receives the ACKs and sends the following data packets").
	// Evaluated per flight pair (f, g): the inter-flight gap is the app's
	// fault unless f filled the receiver window (window-bound wait), g
	// followed f's completion ACK immediately (ACK clocking), or the gap is
	// loss recovery.
	appLim := timerange.NewSet()
	slackB := c.cfg.WindowSlackMSS * mss
	if len(data) > 0 {
		// Pre-first-data idle: OPEN/route-generation processing after the
		// TCP handshake is sender-application time.
		pre := c.conn.Profile.HandshakeAckTime
		if pre == 0 {
			pre = c.conn.Profile.Start
		}
		if data[0].Time-pre > c.cfg.AppIdleThreshold {
			appLim.Add(timerange.R(pre, data[0].Time))
		}
	}
	// ACK arrival times, sorted: flight shifting can leave the shifted
	// stream slightly out of order, and the launched-by-an-ACK exclusion
	// below needs binary search.
	ackTimes := make([]Micros, len(c.acks))
	for i, a := range c.acks {
		ackTimes[i] = a.Time
	}
	sort.Slice(ackTimes, func(i, j int) bool { return ackTimes[i] < ackTimes[j] })
	ackJustBefore := func(t Micros) bool {
		// Any ACK inside (t-immediate, t]: the sender moved the moment the
		// transport let it, so the preceding silence was not the app's.
		i := sort.Search(len(ackTimes), func(i int) bool { return ackTimes[i] > t })
		return i > 0 && t-ackTimes[i-1] < immediate
	}
	// Cursors for the recovery-stall exclusion: visEnd is the highest
	// sequence the sniffer has seen by each gap's start, ackMax the highest
	// cumulative acknowledgment to cross by the gap's end. ACKs are read at
	// their original arrival times — the receiver's state is measured next
	// to the receiver, so no sender-viewpoint shift applies.
	origAcks := c.conn.Acks
	vi, oi := 0, 0
	var visEnd, ackMax int64
	for i := 1; i < len(c.Flights); i++ {
		f, g := &c.Flights[i-1], &c.Flights[i]
		for vi < len(data) && data[vi].Time <= f.Last {
			if data[vi].SeqEnd > visEnd {
				visEnd = data[vi].SeqEnd
			}
			vi++
		}
		for oi < len(origAcks) && origAcks[oi].Time <= g.First {
			if origAcks[oi].Ack > ackMax {
				ackMax = origAcks[oi].Ack
			}
			oi++
		}
		if g.First-f.Last <= c.cfg.AppIdleThreshold {
			continue
		}
		if windowBound(f, slackB, c.rtt()) {
			continue // the sender was blocked on the receiver window
		}
		if visEnd-ackMax >= int64(2*mss) {
			// Two or more full segments the sniffer saw before the gap were
			// still unacknowledged when sending resumed: the transport spent
			// the silence in loss recovery (an RTO backoff whose
			// retransmissions were dropped before the sniffer leaves no
			// other trace). An idle application has nothing comparable
			// outstanding — a delayed ACK withholds at most one full
			// segment, never two.
			continue
		}
		if f.AckTime > 0 && g.First >= f.AckTime && g.First-f.AckTime <= immediate {
			continue // ACK-clocked: congestion-window bound, not the app
		}
		if g.FirstKind == flows.DataGapFill || g.FirstKind == flows.DataRetransmit {
			// The flight opens with a repair: the silence before it was the
			// transport waiting out loss detection (dup-ACK count or RTO),
			// not the application. The recovery sets only start where the
			// sniffer could first see the loss, so at long RTTs they do not
			// reach back across this wait — exclude it here.
			continue
		}
		if ackJustBefore(g.First) {
			// The flight launched right behind an ACK arrival (in shifted,
			// sender-viewpoint time): partial-ACK-clocked recovery or
			// window-release clocking. f's completion ACK — checked above —
			// is the wrong anchor whenever f itself is still unacknowledged.
			continue
		}
		start := f.Last + 1
		// The paper charges idle "from the moment the sender receives the
		// ACKs" — but only a window-constrained sender was actually waiting
		// for them. A flight that left room for another full segment could
		// have kept sending at once, so its idle starts at its last packet
		// (otherwise a delayed ACK on an odd-sized tail would eat the
		// application's idle time).
		if f.MaxOut+mss > f.WinMin && f.AckTime > start && f.AckTime < g.First {
			start = f.AckTime
		}
		if g.First-start > c.cfg.AppIdleThreshold {
			appLim.Add(timerange.R(start, g.First))
		}
	}
	// Loss-recovery periods are the transport's fault, zero-window periods
	// the receiver's, and bottleneck-drain periods the wire's — none counts
	// as application idle.
	loss := c.Get(UpstreamLoss).Union(c.Get(DownstreamLoss))
	c.set(LossRecovery, loss)
	appFinal := appLim.
		Subtract(loss).
		Subtract(c.Get(ZeroAdvWindow)).
		Subtract(c.Get(BandwidthLimited))
	c.set(SendAppLimited, appFinal)
	if rec := c.cfg.Explain; rec.Enabled() {
		// Record the exclusion chain: how much raw idle was charged away to
		// loss recovery, closed windows, and the bottleneck drain before the
		// remainder became the sender application's fault.
		rec.Add(explain.Evidence{
			Rule: "series.send-app-limited", Outcome: explain.OutcomeScored,
			Score: float64(appFinal.Size()),
			Inputs: []explain.KV{
				{K: "raw_idle_us", V: float64(appLim.Size())},
				{K: "excluded_loss_us", V: float64(appLim.Intersect(loss).Size())},
				{K: "excluded_zero_window_us", V: float64(appLim.Intersect(c.Get(ZeroAdvWindow)).Size())},
				{K: "excluded_bandwidth_us", V: float64(appLim.Intersect(c.Get(BandwidthLimited)).Size())},
			},
			Thresholds: []explain.KV{{K: "app_idle_threshold_us", V: float64(c.cfg.AppIdleThreshold)}},
			Intervals:  []explain.IntervalSet{explain.Capture("SendAppLimited", appFinal)},
			Detail:     "inter-flight idle minus loss-recovery, zero-window, and bandwidth-drain exclusions",
		})
	}

	// Flight-level window boundedness. Only flights that contain at least
	// one full segment qualify: a window-bound sender stops at full
	// segments, while an application-limited one flushes a sub-MSS tail.
	adv := timerange.NewSet()
	cwnd := timerange.NewSet()
	slack := c.cfg.WindowSlackMSS * mss
	rtt := c.rtt()
	// Loss-depressed congestion windows are the loss's cost, not the
	// sender's choice: after a drop Reno halves (or, on RTO, restarts) the
	// window and crawls back one segment per round trip, so on long-delay
	// lossy paths most wall-clock time is ACK-clocked at a window the loss
	// set — blaming the sender for it inverts the paper's causality. A
	// cwnd-bounded flight is charged to the epoch of its most recent loss
	// while its peak outstanding sits below ¾ of the pre-loss peak and the
	// loss is recent enough for regrowth to still be underway (32 round
	// trips covers slow-start restart plus the linear climb back to ¾).
	upR := c.Get(UpstreamLoss).Ranges()
	downR := c.Get(DownstreamLoss).Ranges()
	epochUp := timerange.NewSet()
	epochDown := timerange.NewSet()
	const regrowRTTs = 32
	var peakOut int
	ui, di := 0, 0
	var lastUp, lastDown Micros
	for i := range c.Flights {
		f := &c.Flights[i]
		for ui < len(upR) && upR[ui].Start <= f.First {
			lastUp = upR[ui].Start
			ui++
		}
		for di < len(downR) && downR[di].Start <= f.First {
			lastDown = downR[di].Start
			di++
		}
		if f.MaxOut > peakOut {
			peakOut = f.MaxOut
		}
		end := f.AckTime
		if end == 0 {
			end = f.Last + 2*rtt
		}
		if windowBound(f, slack, rtt) {
			// A window-filling flight is receiver-bound for its whole wait:
			// until the receiver's next release lets the following flight
			// go, however long that takes. This applies to sub-MSS flights
			// too — a receiver dribbling sub-segment window updates is
			// silly-window territory, squarely the receiver's fault.
			f.AdvBounded = true
			if i+1 < len(c.Flights) && c.Flights[i+1].First > end {
				end = c.Flights[i+1].First
			}
			adv.Add(timerange.R(f.First, end))
			continue
		}
		// Only flights with at least one full segment can be congestion-
		// window clocked: an application-limited sender flushes a sub-MSS
		// Nagle tail instead.
		if f.MaxLen < mss {
			continue
		}
		// For congestion-window clocking the completion ACK is due within
		// about an RTT; waiting longer (a delayed ACK on an odd segment) is
		// not the congestion window's doing — cap the charged period.
		if end > f.Last+2*rtt {
			end = f.Last + 2*rtt
		}
		r := timerange.R(f.First, end)
		// Cwnd-bounded: the flight followed its predecessor's completion
		// immediately (ACK clocking) without being receiver-window bound.
		// Flights launched before that completion (delayed ACKs in flight)
		// are not ACK-clocked.
		if i > 0 {
			prev := c.Flights[i-1]
			if prev.AckTime > 0 && f.First >= prev.AckTime && f.First-prev.AckTime <= immediate {
				f.CwndBounded = true
				lastLoss, epoch := lastUp, epochUp
				if lastDown > lastLoss {
					lastLoss, epoch = lastDown, epochDown
				}
				if lastLoss > 0 && f.First-lastLoss <= regrowRTTs*rtt &&
					4*f.MaxOut < 3*peakOut {
					epoch.Add(r)
				} else {
					cwnd.Add(r)
				}
			}
		}
	}
	c.set(AdvBndOut, adv)
	// A bottleneck queue clocks ACKs at the drain rate, so every flight
	// follows its predecessor's completion "immediately" and the cwnd rule
	// fires across the whole drain — but there the congestion window merely
	// tracks the bandwidth-delay product. The wire is the binding
	// constraint; charge it, not the window (same precedence SendAppLimited
	// applies above).
	cwndFinal := cwnd.Subtract(c.Get(BandwidthLimited))
	c.set(CwndBndOut, cwndFinal)
	// Loss-depressed ACK clocking joins the interpreted series of the loss
	// that depressed it (same sniffer-location mapping interpret applies to
	// the recovery periods themselves); the bandwidth drain keeps precedence
	// here exactly as it does over CwndBndOut.
	epochUpF := epochUp.Subtract(c.Get(BandwidthLimited))
	epochDownF := epochDown.Subtract(c.Get(BandwidthLimited))
	switch c.cfg.Sniffer {
	case AtReceiver:
		c.set(NetworkLoss, c.Get(NetworkLoss).Union(epochUpF))
		c.set(RecvLocalLoss, c.Get(RecvLocalLoss).Union(epochDownF))
	case AtSender:
		c.set(SendLocalLoss, c.Get(SendLocalLoss).Union(epochUpF))
		c.set(NetworkLoss, c.Get(NetworkLoss).Union(epochDownF))
	}
	if rec := c.cfg.Explain; rec.Enabled() {
		rec.Add(explain.Evidence{
			Rule: "series.cwnd-bnd-out", Outcome: explain.OutcomeScored,
			Score: float64(cwndFinal.Size()),
			Inputs: []explain.KV{
				{K: "raw_ack_clocked_us", V: float64(cwnd.Size())},
				{K: "excluded_bandwidth_us", V: float64(cwnd.Intersect(c.Get(BandwidthLimited)).Size())},
				{K: "loss_depressed_us", V: float64(epochUpF.Size() + epochDownF.Size())},
			},
			Intervals: []explain.IntervalSet{explain.Capture("CwndBndOut", cwndFinal)},
			Detail:    "ACK-clocked flights minus bandwidth-drain precedence; loss-depressed windows charged to their loss epoch",
		})
	}

	// Set algebra (rule 4).
	active := c.Get(ActiveTransfer)
	zeroBnd := c.Get(ZeroAdvWindow).Intersect(active)
	c.set(ZeroAdvBndOut, zeroBnd)
	// Bounding at the fully open (maximum) window is the TCP parameter's
	// doing; bounding at anything less — small or mid — means the receiver
	// application is not draining its buffer (paper Table IV's "BGP
	// receiver app" vs "TCP advertised window" split).
	largeBnd := c.Get(AdvBndOut).Intersect(c.Get(LargeAdvWindow))
	c.set(LargeAdvBndOut, largeBnd)
	smallBnd := c.Get(AdvBndOut).Subtract(largeBnd).Union(zeroBnd)
	c.set(SmallAdvBndOut, smallBnd)
	// The probe-discard bug's loss recovery begins moments after the zero
	// window reopens (the race happens at the reopening), so the conflict
	// check dilates each zero-window range by a couple of RTTs before
	// intersecting with the upstream-loss recovery periods.
	guard := 2 * c.rtt()
	dilated := timerange.NewSet()
	for _, r := range zeroBnd.Ranges() {
		dilated.Add(timerange.R(r.Start, r.End+guard))
	}
	c.set(ZeroAckBug, dilated.Intersect(c.Get(UpstreamLoss)))

	// Factor-group unions (§III-D).
	c.set(SenderLimited, timerange.UnionAll(
		c.Get(SendAppLimited), c.Get(CwndBndOut), c.Get(SendLocalLoss)))
	c.set(ReceiverLimited, timerange.UnionAll(
		c.Get(SmallAdvBndOut), c.Get(LargeAdvBndOut), c.Get(RecvLocalLoss)))
	c.set(NetworkLimited, timerange.UnionAll(
		c.Get(BandwidthLimited), c.Get(NetworkLoss)))
}

// buildFlights groups data packets into flights and records their window
// context and acknowledgment completion.
func (c *Catalog) buildFlights() {
	data := c.conn.Data
	acks := c.acks
	if len(data) == 0 {
		return
	}
	gap := maxMicros(c.rtt()/2, 1_000)

	var flights []Flight
	var cur *Flight
	var maxEnd, lastAck int64
	ai := 0
	for _, d := range data {
		// Advance ack state to this packet's time.
		for ai < len(acks) && acks[ai].Time <= d.Time {
			if acks[ai].Ack > lastAck {
				lastAck = acks[ai].Ack
			}
			ai++
		}
		window := c.conn.Profile.MaxAdvWindow
		if ai > 0 {
			window = acks[ai-1].Window
		}
		if cur == nil || d.Time-cur.Last > gap {
			flights = append(flights, Flight{
				First:         d.Time,
				Last:          d.Time,
				WindowAtStart: window,
				WinMin:        window,
				FirstKind:     d.Kind,
			})
			cur = &flights[len(flights)-1]
		}
		cur.Last = d.Time
		cur.Packets++
		cur.Bytes += d.Len
		if d.Len > cur.MaxLen {
			cur.MaxLen = d.Len
		}
		if d.SeqEnd > maxEnd {
			maxEnd = d.SeqEnd
		}
		cur.MaxEnd = maxEnd
		if out := int(maxEnd - lastAck); out > cur.MaxOut {
			cur.MaxOut = out
		}
	}
	// Completion ACK per flight.
	ai = 0
	for i := range flights {
		f := &flights[i]
		for ai < len(acks) && (acks[ai].Time < f.Last || acks[ai].Ack < f.MaxEnd) {
			ai++
		}
		if ai < len(acks) {
			f.AckTime = acks[ai].Time
		}
	}
	// Tightest window seen while each flight ran (until the next flight
	// starts): a receiver that briefly advertises a small window is the
	// real bound even if a later update reopened it.
	ai = 0
	for i := range flights {
		f := &flights[i]
		horizon := timerange.MaxTime
		if i+1 < len(flights) {
			horizon = flights[i+1].First
		}
		for ai < len(acks) && acks[ai].Time < horizon {
			if acks[ai].Time >= f.First && acks[ai].Window < f.WinMin {
				f.WinMin = acks[ai].Window
			}
			ai++
		}
	}
	c.Flights = flights
}

func maxMicros(a, b Micros) Micros {
	if a > b {
		return a
	}
	return b
}

package series

import (
	"sort"

	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// RangeStat annotates one range of a series with the traffic it contains —
// the paper's per-wave bookkeeping ("each wave records the actual number of
// retransmitted packets and bytes within itself", §III-A), which turns a
// high-level observation into a pointer back at the raw trace.
type RangeStat struct {
	Range timerange.Range
	// DataPackets and DataBytes count sender data packets captured inside
	// the range.
	DataPackets int
	DataBytes   int
	// Retransmits counts how many of those were retransmissions or
	// out-of-sequence repairs.
	Retransmits int
	// Acks counts receiver ACK arrivals inside the range (shifted times).
	Acks int
}

// RangeStats computes annotations for every range of the named series.
func (c *Catalog) RangeStats(n Name) []RangeStat {
	ranges := c.Get(n).Ranges()
	out := make([]RangeStat, len(ranges))
	for i, r := range ranges {
		out[i].Range = r
	}
	if len(out) == 0 {
		return out
	}
	// Data events are time-sorted; locate each event's covering range with
	// a forward cursor.
	locate := func(t Micros, from int) int {
		i := from
		for i < len(out) && out[i].Range.End <= t {
			i++
		}
		if i < len(out) && out[i].Range.Contains(t) {
			return i
		}
		return -1
	}
	cursor := 0
	for _, d := range c.conn.Data {
		for cursor < len(out) && out[cursor].Range.End <= d.Time {
			cursor++
		}
		if i := locate(d.Time, cursor); i >= 0 {
			out[i].DataPackets++
			out[i].DataBytes += d.Len
			if d.Kind == flows.DataRetransmit || d.Kind == flows.DataGapFill {
				out[i].Retransmits++
			}
		}
	}
	// Shifted acks may be slightly out of order after flight shifting; sort
	// a copy of the arrival times.
	times := make([]Micros, len(c.acks))
	for i, a := range c.acks {
		times[i] = a.Time
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	cursor = 0
	for _, t := range times {
		for cursor < len(out) && out[cursor].Range.End <= t {
			cursor++
		}
		if i := locate(t, cursor); i >= 0 {
			out[i].Acks++
		}
	}
	return out
}

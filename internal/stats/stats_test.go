package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almost(got, tt.want) {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("single-sample StdDev = %v", got)
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, 2) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50}, {12.5, 15},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almost(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty Percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range pts {
		if !almost(pts[i].X, want[i].X) || !almost(pts[i].P, want[i].P) {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	pts := CDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := CDFAt(pts, tt.x); !almost(got, tt.want) {
			t.Errorf("CDFAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rnd.Intn(50))
		for i := range xs {
			xs[i] = rnd.Float64() * 100
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P <= pts[i-1].P {
				return false
			}
		}
		return len(pts) > 0 && almost(pts[len(pts)-1].P, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStretchRatio(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"basic", []float64{10, 50, 20}, 5},
		{"equal", []float64{7, 7}, 1},
		{"single", []float64{3}, 0},
		{"zero floor", []float64{0, 10}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StretchRatio(tt.in); !almost(got, tt.want) {
				t.Errorf("StretchRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSlowOutliers(t *testing.T) {
	// One extreme outlier among uniform values.
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 100}
	got := SlowOutliers(xs, 2)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("SlowOutliers = %v, want [7]", got)
	}
	// No outliers: fall back to the maximum.
	uniform := []float64{10, 20, 15}
	got = SlowOutliers(uniform, 3)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("fallback SlowOutliers = %v, want [1]", got)
	}
	if got := SlowOutliers(nil, 3); got != nil {
		t.Errorf("empty SlowOutliers = %v", got)
	}
	// A single sample selects itself.
	if got := SlowOutliers([]float64{4}, 3); len(got) != 1 || got[0] != 0 {
		t.Errorf("single SlowOutliers = %v", got)
	}
}

// Package stats provides the small statistical helpers the experiments use:
// empirical CDFs, percentiles, means/standard deviations, and the paper's
// stretch ratio (§II-B: slowest over fastest transfer for a router pair).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between order statistics. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0,1]
}

// CDF returns the empirical CDF of xs as sorted step points.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i, x := range s {
		// Collapse duplicate values into the highest cumulative step.
		if i+1 < len(s) && s[i+1] == x {
			continue
		}
		out = append(out, CDFPoint{X: x, P: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF at value x (fraction of samples ≤ x).
func CDFAt(points []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range points {
		if pt.X <= x {
			p = pt.P
		} else {
			break
		}
	}
	return p
}

// StretchRatio returns the longest duration divided by the shortest
// (paper §II-B). It returns 0 when fewer than two samples exist or the
// shortest is non-positive.
func StretchRatio(durations []float64) float64 {
	if len(durations) < 2 {
		return 0
	}
	lo, hi := durations[0], durations[0]
	for _, d := range durations[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// SlowOutliers returns the indices of samples exceeding mean + k·stddev —
// the paper's rule for picking slow transfers to inspect (µ+3σ). If none
// qualify, the single largest sample's index is returned (the paper falls
// back to the router's slowest transfer).
func SlowOutliers(xs []float64, k float64) []int {
	if len(xs) == 0 {
		return nil
	}
	cut := Mean(xs) + k*StdDev(xs)
	var out []int
	maxIdx := 0
	for i, x := range xs {
		if x > cut && len(xs) > 1 {
			out = append(out, i)
		}
		if x > xs[maxIdx] {
			maxIdx = i
		}
	}
	if len(out) == 0 {
		out = []int{maxIdx}
	}
	return out
}

package bgpsim

import (
	"io"
	"sort"

	"tdat/internal/bgp"
	"tdat/internal/mrt"
	"tdat/internal/sim"
)

// CollectorKind distinguishes the two collector deployments in the paper's
// Table I.
type CollectorKind int

// Collector kinds.
const (
	// KindQuagga archives MRT (the PC-based Quagga monitor).
	KindQuagga CollectorKind = iota
	// KindVendor is the looking-glass router: no MRT archive, so transfer
	// boundaries must be recovered from the packet trace via pcap2bgp.
	KindVendor
)

// CollectorConfig parameterizes a collector host.
type CollectorConfig struct {
	Kind CollectorKind
	// ProcessInterval is how often the BGP process is scheduled to drain
	// its TCP sockets (default 20 ms).
	ProcessInterval Micros
	// TotalRate is the host's aggregate processing rate in bytes/sec shared
	// by all sessions; 0 means unlimited (reads keep up with the network).
	// This is the "BGP receiver app" bottleneck: a slow rate closes the
	// advertised windows of every connection feeding the host.
	TotalRate int64
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.ProcessInterval == 0 {
		c.ProcessInterval = 20_000
	}
	return c
}

// ArchiveEntry is one BGP message as the collector application saw it: the
// timestamp is the processing time (what lands in MRT), not the wire
// arrival.
type ArchiveEntry struct {
	Time   Micros
	PeerAS uint16
	Raw    []byte
}

// CollectorHost models one collector box running sessions to many routers
// under a shared processing budget.
type CollectorHost struct {
	eng      *sim.Engine
	cfg      CollectorConfig
	sessions []*CollectorSession
	ticking  bool
	rr       int // round-robin cursor over sessions
}

// NewCollectorHost creates a collector host.
func NewCollectorHost(eng *sim.Engine, cfg CollectorConfig) *CollectorHost {
	return &CollectorHost{eng: eng, cfg: cfg.withDefaults()}
}

// Kind returns the collector flavor.
func (h *CollectorHost) Kind() CollectorKind { return h.cfg.Kind }

// CollectorSession is one router-facing session on the host.
type CollectorSession struct {
	host    *CollectorHost
	peer    *Peer
	archive []ArchiveEntry
	peerAS  uint16

	// OnUpdate fires for each archived UPDATE.
	OnUpdate func(e ArchiveEntry)
}

// Peer exposes the session state machine.
func (s *CollectorSession) Peer() *Peer { return s.peer }

// Archive returns the messages processed so far.
func (s *CollectorSession) Archive() []ArchiveEntry { return s.archive }

// AddSession attaches a session over peer. peerAS is used for MRT metadata.
func (h *CollectorHost) AddSession(peer *Peer, peerAS uint16) *CollectorSession {
	s := &CollectorSession{host: h, peer: peer, peerAS: peerAS}
	h.sessions = append(h.sessions, s)
	peer.OnMessage = func(m bgp.Message, raw []byte) {
		if _, ok := m.(*bgp.Update); !ok {
			return
		}
		e := ArchiveEntry{Time: h.eng.Now(), PeerAS: peerAS, Raw: append([]byte(nil), raw...)}
		s.archive = append(s.archive, e)
		if s.OnUpdate != nil {
			s.OnUpdate(e)
		}
	}
	if h.cfg.TotalRate == 0 {
		// Unlimited processing: drain the socket as data lands.
		peer.Endpoint().OnReadable = func() {
			peer.Feed(peer.Endpoint().Read(peer.Endpoint().ReadableLen()))
		}
	} else {
		h.startTicking()
	}
	return s
}

// startTicking begins the shared processing schedule.
func (h *CollectorHost) startTicking() {
	if h.ticking {
		return
	}
	h.ticking = true
	var tick func()
	tick = func() {
		h.processBudget()
		h.eng.After(h.cfg.ProcessInterval, tick)
	}
	h.eng.After(h.cfg.ProcessInterval, tick)
}

// processBudget distributes one interval's worth of read budget round-robin
// across sessions with pending data.
func (h *CollectorHost) processBudget() {
	budget := int(h.cfg.TotalRate * int64(h.cfg.ProcessInterval) / 1_000_000)
	if budget <= 0 {
		budget = 1
	}
	n := len(h.sessions)
	if n == 0 {
		return
	}
	// Two sweeps: give each live session an equal share, then spend any
	// leftover on whoever still has data.
	share := budget / n
	if share == 0 {
		share = 1
	}
	remaining := budget
	for i := 0; i < n && remaining > 0; i++ {
		s := h.sessions[(h.rr+i)%n]
		remaining -= s.consume(min(share, remaining))
	}
	for i := 0; i < n && remaining > 0; i++ {
		s := h.sessions[(h.rr+i)%n]
		remaining -= s.consume(remaining)
	}
	h.rr = (h.rr + 1) % n
}

// consume reads up to n bytes from the session's socket into the BGP
// process and returns how many were actually consumed.
func (s *CollectorSession) consume(n int) int {
	ep := s.peer.Endpoint()
	if n <= 0 || ep.ReadableLen() == 0 {
		return 0
	}
	data := ep.Read(n)
	s.peer.Feed(data)
	return len(data)
}

// WriteMRT serializes the archive of all sessions (merged in time order) to
// an MRT stream, as the Quagga collector would.
func (h *CollectorHost) WriteMRT(w io.Writer) error {
	type keyed struct {
		e *ArchiveEntry
		s *CollectorSession
	}
	var all []keyed
	for _, s := range h.sessions {
		for i := range s.archive {
			all = append(all, keyed{&s.archive[i], s})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].e.Time < all[j].e.Time })
	mw := mrt.NewWriter(w)
	for _, k := range all {
		rec := mrt.Record{
			TimeMicros: k.e.Time,
			PeerAS:     k.e.PeerAS,
			LocalAS:    65000,
			PeerIP:     k.s.peer.Endpoint().RemoteAddr(),
			LocalIP:    k.s.peer.Endpoint().Config().Addr,
			Raw:        k.e.Raw,
		}
		if err := mw.Write(rec); err != nil {
			return err
		}
	}
	return mw.Flush()
}

package bgpsim

import (
	"bytes"
	"net/netip"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/mrt"
	"tdat/internal/netem"
	"tdat/internal/sim"
)

// makeTable builds a routing table with one attribute group per four
// routes, so a table of n routes packs into roughly n/4 UPDATE messages —
// the granularity real tables show rather than a handful of giant updates.
func makeTable(n int) []bgp.Route {
	routes := make([]bgp.Route, 0, n)
	for i := 0; i < n; i++ {
		group := i / 4
		attrs := &bgp.PathAttrs{
			Origin:  uint8(group % 3),
			ASPath:  []uint16{7018, uint16(1000 + group%5000)},
			NextHop: netip.MustParseAddr("10.9.0.1"),
		}
		addr := netip.AddrFrom4([4]byte{byte(20 + i>>16), byte(i >> 8), byte(i), 0})
		routes = append(routes, bgp.Route{
			Prefix: netip.PrefixFrom(addr, 24),
			Attrs:  attrs,
		})
	}
	return routes
}

func spec() ConnSpec {
	return ConnSpec{
		RouterAddr:    netip.MustParseAddr("10.0.0.1"),
		CollectorAddr: netip.MustParseAddr("10.0.0.2"),
		Path:          netem.PathConfig{UpstreamDelay: 2000, DownstreamDelay: 100},
	}
}

// runTransfer wires one router+collector, runs until quiet, and returns the
// collector session plus helpers.
func runTransfer(t *testing.T, seed int64, table []bgp.Route, scfg SpeakerConfig, ccfg CollectorConfig, cs ConnSpec, horizon Micros) (*CollectorSession, *Session, *sim.Engine) {
	t.Helper()
	eng := sim.New(0, seed)
	conn := Dial(eng, cs, 7018)
	speaker := NewSpeaker(eng, scfg)
	speaker.Table = table
	sess := speaker.AddSession(conn.RouterPeer, nil)
	host := NewCollectorHost(eng, ccfg)
	csess := host.AddSession(conn.CollectorPeer, 7018)
	eng.Run(horizon)
	return csess, sess, eng
}

func countPrefixes(t *testing.T, entries []ArchiveEntry) int {
	t.Helper()
	n := 0
	for _, e := range entries {
		m, err := bgp.Parse(e.Raw)
		if err != nil {
			t.Fatalf("archived message does not parse: %v", err)
		}
		if u, ok := m.(*bgp.Update); ok {
			n += len(u.NLRI)
		}
	}
	return n
}

func TestTableTransferCompletes(t *testing.T) {
	table := makeTable(500)
	csess, sess, _ := runTransfer(t, 1, table, SpeakerConfig{AS: 7018}, CollectorConfig{}, spec(), 60_000_000)
	if csess.Peer().State() != PeerEstablished {
		t.Fatalf("collector peer state = %v", csess.Peer().State())
	}
	if got := countPrefixes(t, csess.Archive()); got != len(table) {
		t.Errorf("collector received %d prefixes, want %d", got, len(table))
	}
	if sess.SentUpdates() == 0 {
		t.Error("no updates recorded as sent")
	}
}

func TestTransferQueuedCallback(t *testing.T) {
	eng := sim.New(0, 2)
	conn := Dial(eng, spec(), 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018})
	speaker.Table = makeTable(300)
	sess := speaker.AddSession(conn.RouterPeer, nil)
	var gotUpdates, gotBytes int
	sess.OnTransferQueued = func(n, b int) { gotUpdates, gotBytes = n, b }
	host := NewCollectorHost(eng, CollectorConfig{})
	host.AddSession(conn.CollectorPeer, 7018)
	eng.Run(60_000_000)
	if gotUpdates == 0 || gotBytes == 0 {
		t.Errorf("transfer queued callback: updates=%d bytes=%d", gotUpdates, gotBytes)
	}
}

func TestPacingCreatesGaps(t *testing.T) {
	// With 200 ms pacing and a 2-message budget, update arrivals must show
	// repetitive ~200 ms gaps (paper §II-B1 / Fig 5).
	table := makeTable(400)
	scfg := SpeakerConfig{AS: 7018, PacingInterval: 200_000, PacingBudget: 2}
	csess, _, _ := runTransfer(t, 3, table, scfg, CollectorConfig{}, spec(), 120_000_000)
	if got := countPrefixes(t, csess.Archive()); got != len(table) {
		t.Fatalf("received %d prefixes, want %d", got, len(table))
	}
	// Measure inter-update gaps at the collector.
	var gaps []Micros
	arch := csess.Archive()
	for i := 1; i < len(arch); i++ {
		gaps = append(gaps, arch[i].Time-arch[i-1].Time)
	}
	big := 0
	for _, g := range gaps {
		if g > 150_000 && g < 250_000 {
			big++
		}
	}
	if big < 2 {
		t.Errorf("expected repetitive ~200ms pacing gaps, found %d in %d gaps", big, len(gaps))
	}
}

func TestUnpacedIsFasterThanPaced(t *testing.T) {
	table := makeTable(400)
	duration := func(scfg SpeakerConfig) Micros {
		csess, _, _ := runTransfer(t, 4, table, scfg, CollectorConfig{}, spec(), 200_000_000)
		arch := csess.Archive()
		if countPrefixes(t, arch) != len(table) {
			t.Fatal("incomplete transfer")
		}
		return arch[len(arch)-1].Time - arch[0].Time
	}
	fast := duration(SpeakerConfig{AS: 7018})
	slow := duration(SpeakerConfig{AS: 7018, PacingInterval: 200_000, PacingBudget: 2})
	if slow < fast*3 {
		t.Errorf("paced transfer (%d µs) should be much slower than unpaced (%d µs)", slow, fast)
	}
}

func TestSlowCollectorClosesWindow(t *testing.T) {
	// A 20 KB/s collector against a fast sender must exhibit zero-window
	// stalls (receiver app limited).
	table := makeTable(6000)
	// A coarse scheduling interval makes the BGP process read in bursts, so
	// the buffer sits full between wake-ups — the zero-window pattern.
	ccfg := CollectorConfig{TotalRate: 20_000, ProcessInterval: 500_000}
	cs := spec()
	cs.CollectorTCP.RecvBuf = 8192
	csess, sess, _ := runTransfer(t, 5, table, SpeakerConfig{AS: 7018}, ccfg, cs, 300_000_000)
	if got := countPrefixes(t, csess.Archive()); got != len(table) {
		t.Fatalf("received %d prefixes, want %d", got, len(table))
	}
	routerStats := sess.Peer().Endpoint().Stats()
	if routerStats.ZeroWindowAcks == 0 && csess.Peer().Endpoint().Stats().ZeroWindowAcks == 0 {
		t.Error("slow collector never advertised a zero window")
	}
}

func TestKeepalivesDuringIdleSession(t *testing.T) {
	// Empty table: after establishment the session idles; keepalives must
	// flow both ways and the session must stay up past several intervals.
	csess, sess, eng := runTransfer(t, 6, nil,
		SpeakerConfig{AS: 7018, HoldTime: 9_000_000, KeepaliveInterval: 3_000_000},
		CollectorConfig{}, spec(), 60_000_000)
	_ = eng
	if sess.Peer().State() != PeerEstablished {
		t.Errorf("router session state = %v, want established", sess.Peer().State())
	}
	if csess.Peer().State() != PeerEstablished {
		t.Errorf("collector session state = %v, want established", csess.Peer().State())
	}
}

func TestHoldTimerFiresAgainstDeadPeer(t *testing.T) {
	eng := sim.New(0, 7)
	conn := Dial(eng, spec(), 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018})
	speaker.Table = makeTable(50)
	speaker.AddSession(conn.RouterPeer, nil)
	host := NewCollectorHost(eng, CollectorConfig{})
	host.AddSession(conn.CollectorPeer, 7018)

	var downReason string
	var downAt Micros
	prev := conn.RouterPeer.OnDown
	conn.RouterPeer.OnDown = func(r string) {
		downReason, downAt = r, eng.Now()
		if prev != nil {
			prev(r)
		}
	}
	// Kill the collector host 5 s in.
	eng.At(5_000_000, func() { conn.CollectorPeer.Endpoint().Kill() })
	eng.Run(400_000_000)

	if downReason != "hold timer expired" {
		t.Fatalf("router session down reason = %q", downReason)
	}
	// Hold expiry should land roughly holdTime after the last received
	// message (within a couple of keepalive intervals of the kill).
	if downAt < 180_000_000 || downAt > 250_000_000 {
		t.Errorf("hold expiry at %d µs", downAt)
	}
}

func TestPeerGroupLockstep(t *testing.T) {
	// Two collectors in one group; one is killed mid-transfer. The healthy
	// session must stall until the dead session's hold timer removes it,
	// then resume and complete (paper Fig 9).
	eng := sim.New(0, 8)
	table := makeTable(3000)

	specA := spec()
	specA.RouterTCP.SendBuf = 8192 // small socket buffers make the dead
	specB := spec()                // member's cursor stall quickly
	specB.RouterTCP.SendBuf = 8192
	specB.CollectorAddr = netip.MustParseAddr("10.0.0.3")
	connA := Dial(eng, specA, 7018) // healthy (Quagga)
	connB := Dial(eng, specB, 7018) // will fail (Vendor)

	speaker := NewSpeaker(eng, SpeakerConfig{
		AS: 7018, GroupQueueSlack: 8,
		// Short hold time to keep the test fast.
		HoldTime: 30_000_000, KeepaliveInterval: 10_000_000,
		PacingInterval: 50_000, PacingBudget: 4,
	})
	speaker.Table = table
	group := speaker.NewPeerGroup()
	sessA := speaker.AddSession(connA.RouterPeer, group)
	sessB := speaker.AddSession(connB.RouterPeer, group)

	hostA := NewCollectorHost(eng, CollectorConfig{})
	csessA := hostA.AddSession(connA.CollectorPeer, 7018)
	hostB := NewCollectorHost(eng, CollectorConfig{Kind: KindVendor})
	hostB.AddSession(connB.CollectorPeer, 7018)

	// Kill collector B one second into the transfer.
	killAt := Micros(1_000_000)
	eng.At(killAt, func() { connB.CollectorPeer.Endpoint().Kill() })
	eng.Run(600_000_000)

	if got := countPrefixes(t, csessA.Archive()); got != len(table) {
		t.Fatalf("healthy collector got %d prefixes, want %d", got, len(table))
	}
	// Find the largest inter-update gap at the healthy collector: it must be
	// roughly the hold time (the blocking period).
	arch := csessA.Archive()
	var maxGap Micros
	for i := 1; i < len(arch); i++ {
		if g := arch[i].Time - arch[i-1].Time; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 20_000_000 {
		t.Errorf("expected a blocking gap near the 30 s hold time, max gap = %d µs", maxGap)
	}
	if sessB.Peer().State() != PeerDown {
		t.Errorf("failed session state = %v, want down", sessB.Peer().State())
	}
	_ = sessA
}

func TestPeerGroupNoBlockingWhenHealthy(t *testing.T) {
	// Two healthy members: lockstep slack must not add substantial delay.
	eng := sim.New(0, 9)
	table := makeTable(600)
	specA := spec()
	specB := spec()
	specB.CollectorAddr = netip.MustParseAddr("10.0.0.3")
	connA := Dial(eng, specA, 7018)
	connB := Dial(eng, specB, 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018, GroupQueueSlack: 8})
	speaker.Table = table
	group := speaker.NewPeerGroup()
	speaker.AddSession(connA.RouterPeer, group)
	speaker.AddSession(connB.RouterPeer, group)
	hostA := NewCollectorHost(eng, CollectorConfig{})
	csA := hostA.AddSession(connA.CollectorPeer, 7018)
	hostB := NewCollectorHost(eng, CollectorConfig{})
	csB := hostB.AddSession(connB.CollectorPeer, 7018)
	eng.Run(120_000_000)
	if countPrefixes(t, csA.Archive()) != len(table) || countPrefixes(t, csB.Archive()) != len(table) {
		t.Error("group transfer incomplete for a healthy pair")
	}
}

func TestWriteMRTArchive(t *testing.T) {
	table := makeTable(100)
	eng := sim.New(0, 10)
	conn := Dial(eng, spec(), 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018})
	speaker.Table = table
	speaker.AddSession(conn.RouterPeer, nil)
	host := NewCollectorHost(eng, CollectorConfig{})
	host.AddSession(conn.CollectorPeer, 7018)
	eng.Run(60_000_000)

	var buf bytes.Buffer
	if err := host.WriteMRT(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := mrt.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty MRT archive")
	}
	prefixes := 0
	for _, r := range recs {
		m, err := r.Message()
		if err != nil {
			t.Fatalf("MRT message: %v", err)
		}
		if u, ok := m.(*bgp.Update); ok {
			prefixes += len(u.NLRI)
		}
		if r.PeerIP != netip.MustParseAddr("10.0.0.1") {
			t.Errorf("peer IP = %v", r.PeerIP)
		}
	}
	if prefixes != len(table) {
		t.Errorf("MRT prefixes = %d, want %d", prefixes, len(table))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeMicros < recs[i-1].TimeMicros {
			t.Fatal("MRT records out of time order")
		}
	}
}

func TestSnifferSeesTransfer(t *testing.T) {
	eng := sim.New(0, 11)
	conn := Dial(eng, spec(), 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018})
	speaker.Table = makeTable(4000)
	speaker.AddSession(conn.RouterPeer, nil)
	host := NewCollectorHost(eng, CollectorConfig{})
	host.AddSession(conn.CollectorPeer, 7018)
	eng.Run(60_000_000)

	caps := conn.Sniffer().Captures()
	if len(caps) < 20 {
		t.Fatalf("sniffer captured only %d packets", len(caps))
	}
	data, acks := 0, 0
	for _, c := range caps {
		switch c.Dir {
		case netem.DirData:
			data++
		case netem.DirAck:
			acks++
		}
	}
	if data == 0 || acks == 0 {
		t.Errorf("capture dirs: data=%d acks=%d", data, acks)
	}
}

func TestLossyTransferStillCompletes(t *testing.T) {
	cs := spec()
	cs.Path.UpstreamLoss = 0.03
	table := makeTable(400)
	csess, _, _ := runTransfer(t, 12, table, SpeakerConfig{AS: 7018}, CollectorConfig{}, cs, 600_000_000)
	if got := countPrefixes(t, csess.Archive()); got != len(table) {
		t.Errorf("lossy transfer delivered %d prefixes, want %d", got, len(table))
	}
}

func TestLossEpisodeForcesConsecutiveRetransmissions(t *testing.T) {
	cs := spec()
	// Sustained 10% receiver-side loss guarantees several drops per
	// congestion window and therefore repeated retransmission rounds.
	cs.Path.DownstreamLoss = 0.10
	table := makeTable(30_000)
	csess, sess, _ := runTransfer(t, 13, table, SpeakerConfig{AS: 7018}, CollectorConfig{}, cs, 600_000_000)
	if got := countPrefixes(t, csess.Archive()); got != len(table) {
		t.Fatalf("delivered %d prefixes, want %d", got, len(table))
	}
	if sess.Peer().Endpoint().Stats().Retransmits < 3 {
		t.Errorf("expected consecutive retransmissions, got %d",
			sess.Peer().Endpoint().Stats().Retransmits)
	}
}

func TestPeerStateString(t *testing.T) {
	for st, want := range map[PeerState]string{
		PeerIdle: "idle", PeerOpenSent: "open-sent", PeerOpenConfirm: "open-confirm",
		PeerEstablished: "established", PeerDown: "down", PeerState(42): "unknown",
	} {
		if st.String() != want {
			t.Errorf("PeerState(%d) = %q, want %q", st, st.String(), want)
		}
	}
}

func TestEnqueueWithdrawalsReachCollector(t *testing.T) {
	table := makeTable(400)
	eng := sim.New(0, 44)
	conn := Dial(eng, spec(), 7018)
	speaker := NewSpeaker(eng, SpeakerConfig{AS: 7018})
	speaker.Table = table
	sess := speaker.AddSession(conn.RouterPeer, nil)
	host := NewCollectorHost(eng, CollectorConfig{})
	csess := host.AddSession(conn.CollectorPeer, 7018)
	eng.Run(30_000_000)

	// Withdraw the first 100 prefixes mid-session.
	var prefixes []bgp.Prefix
	for _, r := range table[:100] {
		prefixes = append(prefixes, r.Prefix)
	}
	if err := sess.EnqueueWithdrawals(prefixes); err != nil {
		t.Fatal(err)
	}
	eng.Run(60_000_000)

	withdrawn := 0
	for _, e := range csess.Archive() {
		m, err := bgp.Parse(e.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if u, ok := m.(*bgp.Update); ok {
			withdrawn += len(u.Withdrawn)
		}
	}
	if withdrawn != 100 {
		t.Errorf("collector saw %d withdrawals, want 100", withdrawn)
	}
}

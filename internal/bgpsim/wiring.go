package bgpsim

import (
	"net/netip"

	"tdat/internal/netem"
	"tdat/internal/packet"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
)

// ConnSpec describes one router↔collector connection: the TCP parameters of
// both ends and the path between them (the sniffer sits at the collector
// side, per the paper's Figure 2).
type ConnSpec struct {
	RouterAddr    netip.Addr
	RouterPort    uint16
	CollectorAddr netip.Addr
	CollectorPort uint16

	RouterTCP    tcpsim.Config // Addr/Port fields are filled in
	CollectorTCP tcpsim.Config
	Path         netem.PathConfig
}

// Conn is a wired router↔collector connection with its sniffer.
type Conn struct {
	RouterPeer    *Peer
	CollectorPeer *Peer
	Path          *netem.Path
}

// Sniffer returns the tap between the path segments.
func (c *Conn) Sniffer() *netem.Sniffer { return c.Path.Sniffer }

// Dial builds the endpoints, path, and BGP peers for one connection and
// initiates the TCP handshake from the router side (routers re-establish
// sessions toward collectors after resets, per paper §IV-A). The returned
// peers are not yet attached to a Speaker or CollectorHost; attach them
// before running the engine.
func Dial(eng *sim.Engine, spec ConnSpec, routerAS uint16) *Conn {
	rcfg := spec.RouterTCP
	rcfg.Addr, rcfg.Port = spec.RouterAddr, spec.RouterPort
	if rcfg.Port == 0 {
		rcfg.Port = 179
	}
	ccfg := spec.CollectorTCP
	ccfg.Addr, ccfg.Port = spec.CollectorAddr, spec.CollectorPort
	if ccfg.Port == 0 {
		ccfg.Port = 41000
	}

	var routerEP, collectorEP *tcpsim.Endpoint
	path := netem.NewPath(eng, spec.Path,
		func(p *packet.Packet) { collectorEP.Deliver(p) },
		func(p *packet.Packet) { routerEP.Deliver(p) },
	)
	routerEP = tcpsim.NewEndpoint(eng, rcfg, tcpsim.Handler(path.DataIn))
	collectorEP = tcpsim.NewEndpoint(eng, ccfg, tcpsim.Handler(path.AckIn))
	collectorEP.Listen()

	routerPeer := NewPeer(eng, routerEP, "router", routerAS, true)
	collectorPeer := NewPeer(eng, collectorEP, "collector", 65000, false)

	routerEP.Connect(ccfg.Addr, ccfg.Port)
	return &Conn{RouterPeer: routerPeer, CollectorPeer: collectorPeer, Path: path}
}

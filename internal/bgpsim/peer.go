// Package bgpsim layers BGP speakers over tcpsim endpoints: an operational
// router (Speaker) that streams routing-table transfers with the
// timer-driven update pacing and peer-group replication semantics the paper
// diagnoses, and a passive Collector (Quagga- or vendor-style) that
// rate-limits its reads — the BGP receiver-processing bottleneck — and
// archives received updates in MRT form.
package bgpsim

import (
	"fmt"

	"tdat/internal/bgp"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
)

// Micros aliases the simulator time unit.
type Micros = sim.Micros

// Default protocol timers (RFC 4271 suggested values, as in ISP_A).
const (
	DefaultHoldTime          = 180 * 1_000_000
	DefaultKeepaliveInterval = 60 * 1_000_000
)

// PeerState is the BGP session state (condensed from the RFC 4271 FSM).
type PeerState int

// Session states.
const (
	PeerIdle PeerState = iota
	PeerOpenSent
	PeerOpenConfirm
	PeerEstablished
	PeerDown
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerIdle:
		return "idle"
	case PeerOpenSent:
		return "open-sent"
	case PeerOpenConfirm:
		return "open-confirm"
	case PeerEstablished:
		return "established"
	case PeerDown:
		return "down"
	default:
		return "unknown"
	}
}

// Peer runs the BGP session state machine over a TCP endpoint: OPEN
// exchange, keepalive generation, hold-timer supervision, and inbound
// message framing.
type Peer struct {
	eng  *sim.Engine
	ep   *tcpsim.Endpoint
	name string

	localAS   uint16
	holdTime  Micros
	keepalive Micros
	// autoRead drains the TCP receive buffer immediately (router side). The
	// collector leaves it false and pulls at its processing rate.
	autoRead bool

	state    PeerState
	lastRecv Micros
	lastSent Micros
	inbuf    []byte

	holdTimer      *sim.Timer
	keepaliveTimer *sim.Timer

	// OnEstablished fires when the BGP session reaches Established.
	OnEstablished func()
	// OnMessage fires for every inbound BGP message (raw bytes included for
	// archiving).
	OnMessage func(m bgp.Message, raw []byte)
	// OnDown fires when the session leaves Established (hold expiry, RST,
	// or notification).
	OnDown func(reason string)
}

// NewPeer wraps ep in a BGP session. Call Start once the TCP connection is
// being opened; the OPEN is sent when TCP establishes.
func NewPeer(eng *sim.Engine, ep *tcpsim.Endpoint, name string, localAS uint16, autoRead bool) *Peer {
	p := &Peer{
		eng:       eng,
		ep:        ep,
		name:      name,
		localAS:   localAS,
		holdTime:  DefaultHoldTime,
		keepalive: DefaultKeepaliveInterval,
		autoRead:  autoRead,
		state:     PeerIdle,
	}
	ep.OnEstablished = p.onTCPEstablished
	ep.OnReset = func() { p.down("tcp reset") }
	if autoRead {
		ep.OnReadable = func() { p.Feed(ep.Read(ep.ReadableLen())) }
	}
	return p
}

// SetTimers overrides the hold and keepalive intervals.
func (p *Peer) SetTimers(hold, keepalive Micros) {
	p.holdTime = hold
	p.keepalive = keepalive
}

// State returns the session state.
func (p *Peer) State() PeerState { return p.state }

// Endpoint returns the underlying TCP endpoint.
func (p *Peer) Endpoint() *tcpsim.Endpoint { return p.ep }

// Name returns the peer label.
func (p *Peer) Name() string { return p.name }

func (p *Peer) onTCPEstablished() {
	open := &bgp.Open{
		AS:         p.localAS,
		HoldTime:   uint16(p.holdTime / 1_000_000),
		Identifier: p.ep.Config().Addr,
	}
	raw, err := open.Marshal()
	if err != nil {
		p.down(fmt.Sprintf("marshal OPEN: %v", err))
		return
	}
	p.send(raw)
	p.state = PeerOpenSent
	p.lastRecv = p.eng.Now()
	p.armHoldTimer()
}

// send writes a whole BGP message to the TCP stream, bypassing any update
// queue (OPEN, KEEPALIVE, NOTIFICATION are never paced).
func (p *Peer) send(raw []byte) bool {
	n := p.ep.Write(raw)
	if n < len(raw) {
		// Partial protocol-message writes would desynchronize framing; this
		// only happens against a peer that stopped acking with a full
		// buffer, where the session is about to die via hold timer anyway.
		return false
	}
	p.lastSent = p.eng.Now()
	return true
}

// SendKeepalive emits a KEEPALIVE immediately.
func (p *Peer) SendKeepalive() {
	raw, _ := (&bgp.Keepalive{}).Marshal()
	p.send(raw)
}

// Feed hands inbound TCP bytes to the session framer.
func (p *Peer) Feed(data []byte) {
	if len(data) == 0 || p.state == PeerDown {
		return
	}
	p.inbuf = append(p.inbuf, data...)
	msgs, consumed, err := bgp.SplitStream(p.inbuf)
	if err != nil {
		p.down(fmt.Sprintf("framing error: %v", err))
		return
	}
	rawStream := p.inbuf[:consumed]
	p.inbuf = append([]byte(nil), p.inbuf[consumed:]...)
	off := 0
	for _, m := range msgs {
		// Re-derive each message's length from the stream framing.
		length := int(uint16(rawStream[off+16])<<8 | uint16(rawStream[off+17]))
		raw := rawStream[off : off+length]
		off += length
		p.handleMessage(m, raw)
		if p.state == PeerDown {
			return
		}
	}
}

func (p *Peer) handleMessage(m bgp.Message, raw []byte) {
	p.lastRecv = p.eng.Now()
	switch msg := m.(type) {
	case *bgp.Open:
		// RFC 4271 §4.2: the session hold time is the minimum of both
		// proposals; the keepalive interval is one third of it.
		peerHold := Micros(msg.HoldTime) * 1_000_000
		if peerHold < p.holdTime {
			p.holdTime = peerHold
		}
		if p.holdTime > 0 {
			p.keepalive = p.holdTime / 3
			p.armHoldTimer()
		} else {
			p.holdTimer.Stop()
		}
		// Complete our side of the exchange with a KEEPALIVE ack.
		p.SendKeepalive()
		if p.state == PeerOpenSent {
			p.state = PeerOpenConfirm
		}
	case *bgp.Keepalive:
		if p.state == PeerOpenConfirm || p.state == PeerOpenSent {
			p.state = PeerEstablished
			p.armKeepaliveTimer()
			if p.OnEstablished != nil {
				p.OnEstablished()
			}
		}
	case *bgp.Notification:
		p.down("notification received")
		return
	}
	if p.OnMessage != nil {
		p.OnMessage(m, raw)
	}
}

func (p *Peer) armHoldTimer() {
	p.holdTimer.Stop()
	if p.holdTime <= 0 {
		return
	}
	p.holdTimer = p.eng.After(p.holdTime, p.checkHold)
}

func (p *Peer) checkHold() {
	if p.state == PeerDown {
		return
	}
	idle := p.eng.Now() - p.lastRecv
	if idle >= p.holdTime {
		raw, _ := (&bgp.Notification{Code: 4}).Marshal() // hold timer expired
		p.send(raw)
		p.down("hold timer expired")
		return
	}
	p.holdTimer = p.eng.After(p.holdTime-idle, p.checkHold)
}

func (p *Peer) armKeepaliveTimer() {
	p.keepaliveTimer.Stop()
	if p.keepalive <= 0 {
		return
	}
	p.keepaliveTimer = p.eng.After(p.keepalive, p.keepaliveTick)
}

func (p *Peer) keepaliveTick() {
	if p.state != PeerEstablished {
		return
	}
	if p.eng.Now()-p.lastSent >= p.keepalive {
		p.SendKeepalive()
	}
	p.keepaliveTimer = p.eng.After(p.keepalive, p.keepaliveTick)
}

// Down tears the session down locally (used by owners for resets).
func (p *Peer) Down(reason string) { p.down(reason) }

func (p *Peer) down(reason string) {
	if p.state == PeerDown {
		return
	}
	p.state = PeerDown
	p.holdTimer.Stop()
	p.keepaliveTimer.Stop()
	p.ep.Abort()
	if p.OnDown != nil {
		p.OnDown(reason)
	}
}

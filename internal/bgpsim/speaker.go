package bgpsim

import (
	"math/rand"
	"net/netip"

	"tdat/internal/bgp"
	"tdat/internal/dist"
	"tdat/internal/sim"
)

// AppProfile drives distribution-shaped update generation in place of the
// fixed-interval pacing timer: the application alternates idle gaps drawn
// from IdleGap (microseconds) with bursts of Burst updates. Heavy-tailed
// or bimodal draws reproduce the irregular send patterns of real routers
// (route refresh batches, policy churn) that a fixed timer cannot; the
// waiting periods still surface through OnPacingBlocked, so the ground
// truth labels them application idle exactly like timer pacing.
type AppProfile struct {
	// Seed seeds the profile's private RNG; draws never touch the
	// engine's stream, so adding a profile does not perturb anything else
	// the scenario randomizes.
	Seed int64
	// IdleGap draws the idle time before each burst, in microseconds
	// (values below 1 µs are raised to 1).
	IdleGap dist.Dist
	// Burst draws the number of updates released per burst (values below
	// 1 are raised to 1).
	Burst dist.Dist
}

// SpeakerConfig parameterizes an operational router.
type SpeakerConfig struct {
	AS uint16
	ID netip.Addr

	// HoldTime and KeepaliveInterval are the BGP session timers
	// (defaults 180 s / 60 s).
	HoldTime          Micros
	KeepaliveInterval Micros

	// PacingInterval and PacingBudget model the undocumented timer-driven
	// update generation of Houidi et al. [15]: every PacingInterval the
	// router releases up to PacingBudget UPDATE messages per session.
	// PacingInterval == 0 disables pacing (send as fast as TCP accepts).
	PacingInterval Micros
	PacingBudget   int

	// AppProfile, if set, replaces the fixed-interval pacing timer with
	// distribution-driven idle/burst generation (see AppProfile). It uses
	// the same token machinery, so PacingInterval/PacingBudget are ignored
	// while a profile is active.
	AppProfile *AppProfile

	// GroupQueueSlack is the number of updates a peer-group member may run
	// ahead of the slowest member before it is blocked (paper §II-B3).
	// Zero means no peer-group coupling even when sessions share a group.
	GroupQueueSlack int
}

func (c SpeakerConfig) withDefaults() SpeakerConfig {
	if c.HoldTime == 0 {
		c.HoldTime = DefaultHoldTime
	}
	if c.KeepaliveInterval == 0 {
		c.KeepaliveInterval = DefaultKeepaliveInterval
	}
	if c.PacingBudget == 0 {
		c.PacingBudget = 16
	}
	return c
}

// member is one peer-group member's replication cursor.
type member struct {
	session *Session
	next    int // index into the group queue of the next update to replicate
	removed bool
}

// PeerGroup replicates one shared queue of serialized updates to all member
// sessions, clearing entries only when every live member has consumed them —
// the vendor scaling feature whose blocking behaviour the paper captures.
type PeerGroup struct {
	speaker *Speaker
	queue   [][]byte
	members []*member
	slack   int
}

// minNext returns the smallest replication cursor among live members.
func (g *PeerGroup) minNext() int {
	m := len(g.queue)
	for _, mb := range g.members {
		if !mb.removed && mb.next < m {
			m = mb.next
		}
	}
	return m
}

// Enqueue appends serialized updates to the group's shared queue and pumps.
func (g *PeerGroup) Enqueue(updates [][]byte) {
	g.queue = append(g.queue, updates...)
	g.pump()
}

// pump advances every member as far as pacing, TCP buffer space, and the
// slack bound allow.
func (g *PeerGroup) pump() {
	floor := g.minNext()
	for _, mb := range g.members {
		if mb.removed {
			continue
		}
		g.pumpMember(mb, floor)
	}
}

func (g *PeerGroup) pumpMember(mb *member, floor int) {
	s := mb.session
	if s.peer.State() != PeerEstablished {
		return
	}
	for mb.next < len(g.queue) {
		if g.slack > 0 && mb.next-floor >= g.slack {
			s.blockedByGroup = true
			s.noteGroupBlocked(true)
			s.notePacingBlocked(false)
			return
		}
		msg := g.queue[mb.next]
		if !s.takeToken() {
			s.notePacingBlocked(true)
			return
		}
		if s.peer.Endpoint().SendBufAvailable() < len(msg) {
			s.returnToken()
			s.notePacingBlocked(false)
			return
		}
		s.peer.send(msg)
		s.sentUpdates++
		mb.next++
	}
	s.blockedByGroup = false
	s.noteGroupBlocked(false)
	s.notePacingBlocked(false)
}

// remove drops a member (session died) and unblocks the rest.
func (g *PeerGroup) remove(target *member) {
	target.removed = true
	g.pump()
}

// Session is one router→collector BGP session managed by a Speaker.
type Session struct {
	speaker *Speaker
	peer    *Peer
	group   *PeerGroup
	mb      *member

	// Private queue for sessions outside any group.
	queue     [][]byte
	queueNext int

	tokens         int
	pacingTimer    *sim.Timer
	sentUpdates    int
	blockedByGroup bool

	pacingBlockedState bool
	groupBlockedState  bool

	// OnTransferQueued fires when a table transfer has been serialized and
	// enqueued for this session.
	OnTransferQueued func(nUpdates int, nBytes int)
	// OnPacingBlocked fires when the session transitions into (blocked=true)
	// or out of (blocked=false) a state where pending updates wait solely on
	// the pacing timer — the application-level idle gaps of paper §IV-A. A
	// stall on TCP send-buffer space is backpressure, not app idle, and
	// clears this state. Ground-truth hook; never alters pump behavior.
	OnPacingBlocked func(t sim.Micros, blocked bool)
	// OnGroupBlocked fires on peer-group slack-bound stall transitions
	// (paper §II-B3). Ground-truth hook; never alters pump behavior.
	OnGroupBlocked func(t sim.Micros, blocked bool)
}

// notePacingBlocked reports pacing-stall transitions to the truth hook.
func (s *Session) notePacingBlocked(blocked bool) {
	if blocked == s.pacingBlockedState {
		return
	}
	s.pacingBlockedState = blocked
	if s.OnPacingBlocked != nil {
		s.OnPacingBlocked(s.speaker.eng.Now(), blocked)
	}
}

// noteGroupBlocked reports group-stall transitions to the truth hook.
func (s *Session) noteGroupBlocked(blocked bool) {
	if blocked == s.groupBlockedState {
		return
	}
	s.groupBlockedState = blocked
	if s.OnGroupBlocked != nil {
		s.OnGroupBlocked(s.speaker.eng.Now(), blocked)
	}
}

// Peer exposes the session's BGP state machine.
func (s *Session) Peer() *Peer { return s.peer }

// EnqueueTable serializes extra routes onto the session's update stream —
// the massive re-announcements a routing failure triggers on an
// established session (the churn case of paper §VII). Group members share
// their group's queue.
func (s *Session) EnqueueTable(routes []bgp.Route) error {
	updates, err := bgp.PackTable(routes)
	if err != nil {
		return err
	}
	raws := make([][]byte, 0, len(updates))
	for _, u := range updates {
		raw, err := u.Marshal()
		if err != nil {
			return err
		}
		raws = append(raws, raw)
	}
	if s.group != nil {
		s.group.Enqueue(raws)
		return nil
	}
	s.queue = append(s.queue, raws...)
	s.pump()
	return nil
}

// EnqueueWithdrawals serializes withdrawal-only updates onto the session's
// stream — the first thing a failure produces, before any re-announcement.
func (s *Session) EnqueueWithdrawals(prefixes []bgp.Prefix) error {
	updates, err := bgp.PackWithdrawals(prefixes)
	if err != nil {
		return err
	}
	raws := make([][]byte, 0, len(updates))
	for _, u := range updates {
		raw, err := u.Marshal()
		if err != nil {
			return err
		}
		raws = append(raws, raw)
	}
	if s.group != nil {
		s.group.Enqueue(raws)
		return nil
	}
	s.queue = append(s.queue, raws...)
	s.pump()
	return nil
}

// SentUpdates returns how many updates have been written to TCP.
func (s *Session) SentUpdates() int { return s.sentUpdates }

// BlockedByGroup reports whether the last pump stalled on the group slack
// bound.
func (s *Session) BlockedByGroup() bool { return s.blockedByGroup }

// pacingEnabled reports whether update release is token-gated — by the
// fixed-interval timer or by an application profile.
func (s *Session) pacingEnabled() bool {
	return s.speaker.cfg.PacingInterval != 0 || s.speaker.cfg.AppProfile != nil
}

// takeToken consumes one pacing token; with pacing disabled it always
// succeeds.
func (s *Session) takeToken() bool {
	if !s.pacingEnabled() {
		return true
	}
	if s.tokens <= 0 {
		return false
	}
	s.tokens--
	return true
}

func (s *Session) returnToken() {
	if s.pacingEnabled() {
		s.tokens++
	}
}

func (s *Session) startPacing() {
	if ap := s.speaker.cfg.AppProfile; ap != nil {
		s.startAppProfile(ap)
		return
	}
	if s.speaker.cfg.PacingInterval == 0 {
		return
	}
	s.tokens = s.speaker.cfg.PacingBudget
	var tick func()
	tick = func() {
		if s.peer.State() != PeerEstablished {
			return
		}
		s.tokens = s.speaker.cfg.PacingBudget
		s.pump()
		s.pacingTimer = s.speaker.eng.After(s.speaker.cfg.PacingInterval, tick)
	}
	s.pacingTimer = s.speaker.eng.After(s.speaker.cfg.PacingInterval, tick)
}

// startAppProfile runs the idle/burst loop: sleep a drawn gap, grant a
// drawn burst of tokens, pump, repeat. Tokens are replaced (not
// accumulated) per burst, matching the fixed-interval refill semantics.
func (s *Session) startAppProfile(ap *AppProfile) {
	rnd := rand.New(rand.NewSource(ap.Seed))
	gap := func() Micros {
		g := Micros(ap.IdleGap.Sample(rnd))
		if g < 1 {
			g = 1
		}
		return g
	}
	var tick func()
	tick = func() {
		if s.peer.State() != PeerEstablished {
			return
		}
		n := int(ap.Burst.Sample(rnd))
		if n < 1 {
			n = 1
		}
		s.tokens = n
		s.pump()
		s.pacingTimer = s.speaker.eng.After(gap(), tick)
	}
	s.tokens = 0
	s.pacingTimer = s.speaker.eng.After(gap(), tick)
}

// pump advances this session's update stream.
func (s *Session) pump() {
	if s.group != nil {
		s.group.pump()
		return
	}
	if s.peer.State() != PeerEstablished {
		return
	}
	for s.queueNext < len(s.queue) {
		msg := s.queue[s.queueNext]
		if !s.takeToken() {
			s.notePacingBlocked(true)
			return
		}
		if s.peer.Endpoint().SendBufAvailable() < len(msg) {
			s.returnToken()
			s.notePacingBlocked(false)
			return
		}
		s.peer.send(msg)
		s.sentUpdates++
		s.queueNext++
	}
	s.notePacingBlocked(false)
}

// Speaker is an operational BGP router serving table transfers to one or
// more collectors, optionally coupling sessions through a peer group.
type Speaker struct {
	eng      *sim.Engine
	cfg      SpeakerConfig
	sessions []*Session
	groups   []*PeerGroup

	// Table is the routing table streamed on session establishment.
	Table []bgp.Route
}

// NewSpeaker creates a router.
func NewSpeaker(eng *sim.Engine, cfg SpeakerConfig) *Speaker {
	return &Speaker{eng: eng, cfg: cfg.withDefaults()}
}

// NewPeerGroup creates a peer group on this speaker.
func (r *Speaker) NewPeerGroup() *PeerGroup {
	g := &PeerGroup{speaker: r, slack: r.cfg.GroupQueueSlack}
	r.groups = append(r.groups, g)
	return g
}

// AddSession attaches a BGP session running over peer, optionally inside
// group (nil for a standalone session). The session begins its table
// transfer when BGP establishes.
func (r *Speaker) AddSession(peer *Peer, group *PeerGroup) *Session {
	s := &Session{speaker: r, peer: peer, group: group}
	peer.SetTimers(r.cfg.HoldTime, r.cfg.KeepaliveInterval)
	if group != nil {
		s.mb = &member{session: s}
		group.members = append(group.members, s.mb)
	}
	r.sessions = append(r.sessions, s)

	peer.OnEstablished = func() {
		r.startTransfer(s)
		s.startPacing()
	}
	peer.Endpoint().OnSendSpace = func() { s.pump() }
	prevDown := peer.OnDown
	peer.OnDown = func(reason string) {
		s.pacingTimer.Stop()
		if s.group != nil && s.mb != nil {
			s.group.remove(s.mb)
		}
		if prevDown != nil {
			prevDown(reason)
		}
	}
	return s
}

// startTransfer serializes the table and enqueues it for s.
func (r *Speaker) startTransfer(s *Session) {
	updates, err := bgp.PackTable(r.Table)
	if err != nil {
		s.peer.Down("table serialization failed")
		return
	}
	raws := make([][]byte, 0, len(updates))
	total := 0
	for _, u := range updates {
		raw, err := u.Marshal()
		if err != nil {
			s.peer.Down("update serialization failed")
			return
		}
		raws = append(raws, raw)
		total += len(raw)
	}
	if s.OnTransferQueued != nil {
		s.OnTransferQueued(len(raws), total)
	}
	if s.group != nil {
		// The group queue is shared; members joining later replay from their
		// own cursor, so enqueue only once per group transfer generation.
		if s.mb.next == 0 && len(s.group.queue) == 0 {
			s.group.Enqueue(raws)
		} else {
			s.group.pump()
		}
		return
	}
	s.queue = append(s.queue, raws...)
	s.pump()
}

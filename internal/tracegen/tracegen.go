// Package tracegen synthesizes the datasets the experiments run on. It
// stands in for the paper's proprietary inputs (ISP_A and RouteViews
// tcpdump + MRT archives): each Scenario wires a bgpsim router and
// collector over a netem path with one pathology dialed in, runs the
// discrete-event simulation, and returns the sniffer capture, the
// collector archive, and the scenario ground truth. Dataset profiles mix
// scenarios with weights chosen to mirror the paper's three traces.
package tracegen

import (
	"math/rand"
	"net/netip"

	"tdat/internal/bgp"
	"tdat/internal/bgpsim"
	"tdat/internal/flows"
	"tdat/internal/netem"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
	"tdat/internal/timerange"
)

// Micros aliases the simulator time unit.
type Micros = sim.Micros

// Table synthesizes a routing table of n routes with one shared attribute
// set per routesPerGroup consecutive routes; AS-path lengths follow the
// short-tailed distribution of real tables (2–7 hops).
func Table(rnd *rand.Rand, n, routesPerGroup int) []bgp.Route {
	if routesPerGroup <= 0 {
		routesPerGroup = 4
	}
	routes := make([]bgp.Route, 0, n)
	var attrs *bgp.PathAttrs
	for i := 0; i < n; i++ {
		if i%routesPerGroup == 0 || attrs == nil {
			pathLen := 2 + rnd.Intn(6)
			path := make([]uint16, pathLen)
			for j := range path {
				path[j] = uint16(rnd.Intn(64000) + 1)
			}
			attrs = &bgp.PathAttrs{
				Origin:  uint8(rnd.Intn(3)),
				ASPath:  path,
				NextHop: netip.AddrFrom4([4]byte{10, 9, byte(rnd.Intn(250)), byte(rnd.Intn(250) + 1)}),
			}
			if rnd.Intn(3) == 0 {
				attrs.HasMED, attrs.MED = true, uint32(rnd.Intn(500))
			}
		}
		bits := 24
		switch rnd.Intn(6) {
		case 0:
			bits = 16
		case 1:
			bits = 22
		case 2:
			bits = 20
		}
		addr := netip.AddrFrom4([4]byte{byte(20 + i>>16), byte(i >> 8), byte(i), 0})
		routes = append(routes, bgp.Route{
			Prefix: netip.PrefixFrom(addr, bits).Masked(),
			Attrs:  attrs,
		})
	}
	return routes
}

// Kind labels the dialed-in pathology of a scenario — the simulator's
// ground truth against which the analyzer's verdict is scored.
type Kind int

// Scenario kinds.
const (
	// KindClean is a healthy fast transfer (mildly cwnd/app limited).
	KindClean Kind = iota
	// KindPaced throttles the sender with an update pacing timer.
	KindPaced
	// KindSlowReceiver throttles the collector's processing rate.
	KindSlowReceiver
	// KindSmallWindow caps the collector's receive buffer (RouteViews'
	// 16 KB vs ISP_A's 64 KB).
	KindSmallWindow
	// KindUpstreamLoss drops packets on the sender side of the sniffer.
	KindUpstreamLoss
	// KindDownstreamLoss drops packets between sniffer and collector
	// (receiver-local).
	KindDownstreamLoss
	// KindBandwidth squeezes the upstream link rate.
	KindBandwidth
	// KindZeroAckBug enables the router's zero-window probe-discard bug
	// against a slow reader.
	KindZeroAckBug
	// KindHeavyTailApp drives the sender with Pareto-distributed idle gaps
	// and burst sizes (heavy-tailed application traffic).
	KindHeavyTailApp
	// KindBimodalApp drives the sender with a two-mode idle/burst mix
	// (steady trickle alternating with bulk batches).
	KindBimodalApp
	// KindVaryingRate runs the upstream link on a time-varying capacity
	// profile (step or sawtooth) instead of a fixed rate.
	KindVaryingRate
	// KindFanout replicates the transfer to a route-server-scale peer
	// group; the observed member stalls on the slack bound behind the
	// group's slowest collectors.
	KindFanout
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindClean:
		return "clean"
	case KindPaced:
		return "paced"
	case KindSlowReceiver:
		return "slow-receiver"
	case KindSmallWindow:
		return "small-window"
	case KindUpstreamLoss:
		return "upstream-loss"
	case KindDownstreamLoss:
		return "downstream-loss"
	case KindBandwidth:
		return "bandwidth"
	case KindZeroAckBug:
		return "zero-ack-bug"
	case KindHeavyTailApp:
		return "heavy-tail-app"
	case KindBimodalApp:
		return "bimodal-app"
	case KindVaryingRate:
		return "varying-rate"
	case KindFanout:
		return "fanout"
	default:
		return "unknown"
	}
}

// Scenario is one table-transfer run.
type Scenario struct {
	Kind   Kind
	Seed   int64
	Routes int
	// RoutesPerGroup controls update packing granularity (default 4).
	RoutesPerGroup int
	// PacingTimer/PacingBudget configure KindPaced (default 200 ms / 24).
	PacingTimer  Micros
	PacingBudget int
	// CollectorRate configures KindSlowReceiver in bytes/sec (default 25k).
	CollectorRate int64
	// RecvBuf configures KindSmallWindow (default 16384).
	RecvBuf int
	// LossRate configures the loss kinds (default 0.05).
	LossRate float64
	// LossEpisode optionally scripts a loss window instead of i.i.d. loss.
	LossEpisode timerange.Range
	// LossEpisodes adds further scripted loss windows (a flapping link);
	// combined with LossEpisode when both are set.
	LossEpisodes []timerange.Range
	// UpstreamRate configures KindBandwidth in bytes/sec (default 40k).
	UpstreamRate int64
	// RTT is the round-trip propagation (default 8 ms).
	RTT Micros
	// Horizon bounds the simulation (default 1200 s).
	Horizon Micros
	// Stack selects the sender-stack personality (tcpsim.ApplyStack): the
	// router's congestion control plus any receiver quirk. The zero value
	// is Reno, preserving every existing trace byte-for-byte.
	Stack tcpsim.Stack

	// RateProfile selects the KindVaryingRate capacity shape: "step"
	// (square wave, the default) or "sawtooth". The profile swings between
	// UpstreamRate and RateLow with period RatePeriod.
	RateProfile string
	// RateLow is the trough capacity of KindVaryingRate in bytes/sec
	// (default UpstreamRate/4).
	RateLow int64
	// RatePeriod is the capacity-profile period (default 1.5 s).
	RatePeriod Micros
	// BurstLoss replaces the loss kinds' i.i.d. drops with a seeded
	// Gilbert–Elliott burst-loss process (nil keeps i.i.d. / episodes).
	BurstLoss *netem.GEParams
	// GroupMembers sizes the KindFanout peer group (default 120).
	GroupMembers int
	// GroupSlack is the fanout peer-group slack bound in updates
	// (default 64).
	GroupSlack int
	// SlowMembers is how many unobserved fanout members run throttled
	// collectors (rate CollectorRate each), making the slack bound bind
	// (default max(1, GroupMembers/32)).
	SlowMembers int
}

// lossWindows collects every scripted loss window of the scenario.
func (s Scenario) lossWindows() []timerange.Range {
	var out []timerange.Range
	if !s.LossEpisode.Empty() {
		out = append(out, s.LossEpisode)
	}
	return append(out, s.LossEpisodes...)
}

func (s Scenario) withDefaults() Scenario {
	if s.Routes == 0 {
		s.Routes = 12_000
	}
	if s.RoutesPerGroup == 0 {
		s.RoutesPerGroup = 4
	}
	if s.PacingTimer == 0 {
		s.PacingTimer = 200_000
	}
	if s.PacingBudget == 0 {
		s.PacingBudget = 24
	}
	if s.CollectorRate == 0 {
		s.CollectorRate = 25_000
	}
	if s.RecvBuf == 0 {
		s.RecvBuf = 16384
	}
	if s.LossRate == 0 {
		s.LossRate = 0.05
	}
	if s.UpstreamRate == 0 {
		s.UpstreamRate = 40_000
	}
	if s.RTT == 0 {
		s.RTT = 8_000
	}
	if s.Horizon == 0 {
		s.Horizon = 1_200_000_000
	}
	if s.RateLow == 0 {
		s.RateLow = s.UpstreamRate / 4
	}
	if s.RatePeriod == 0 {
		s.RatePeriod = 1_500_000
	}
	if s.GroupMembers == 0 {
		s.GroupMembers = 120
	}
	if s.GroupSlack == 0 {
		s.GroupSlack = 64
	}
	if s.SlowMembers == 0 {
		s.SlowMembers = s.GroupMembers / 32
		if s.SlowMembers < 1 {
			s.SlowMembers = 1
		}
	}
	return s
}

// Trace is one scenario's output.
type Trace struct {
	Kind Kind
	// Captures is the sniffer's view of the connection.
	Captures []netem.Capture
	// Archive is the collector-side BGP message log (MRT content).
	Archive []bgpsim.ArchiveEntry
	// GroundDuration is the true transfer time: TCP connect to the last
	// archived update.
	GroundDuration Micros
	// RoutesDelivered counts prefixes that reached the collector app.
	RoutesDelivered int
	// RouterStats snapshots the sender TCP endpoint counters.
	RouterStats tcpsim.Stats
	// Truth is the simulator's authoritative event record (see Truth); the
	// oracle scores the analyzer's inferences against it.
	Truth *Truth
}

// Packets converts the capture for the flows layer.
func (t *Trace) Packets() []flows.TimedPacket {
	out := make([]flows.TimedPacket, len(t.Captures))
	for i, c := range t.Captures {
		out[i] = flows.TimedPacket{Time: c.Time, Pkt: c.Pkt}
	}
	return out
}

// WithDefaults returns the scenario with every zero field replaced by its
// documented default — the effective parameters Run will use. Validation
// harnesses need it to know, e.g., the pacing timer a detector must find.
func (s Scenario) WithDefaults() Scenario { return s.withDefaults() }

// Run executes one scenario.
func Run(sc Scenario) *Trace { return runScenario(sc, 0, 0) }

// runScenario is Run with dataset-profile overrides: an RTO backoff factor
// for both endpoints and a default collector receive buffer for kinds that
// do not pick their own.
func runScenario(sc Scenario, rtoBackoff float64, collectorBuf int) *Trace {
	sc = sc.withDefaults()
	if sc.Kind == KindFanout {
		return runFanout(sc)
	}
	eng := sim.New(0, sc.Seed)
	table := Table(eng.Rand(), sc.Routes, sc.RoutesPerGroup)

	spec := bgpsim.ConnSpec{
		RouterAddr:    netip.MustParseAddr("10.0.0.1"),
		CollectorAddr: netip.MustParseAddr("10.0.0.2"),
		Path: netem.PathConfig{
			UpstreamDelay:   sc.RTT / 2,
			DownstreamDelay: sc.RTT / 16,
		},
	}
	scfg := bgpsim.SpeakerConfig{AS: 7018}
	ccfg := bgpsim.CollectorConfig{}

	switch sc.Kind {
	case KindClean:
		// Mild pacing keeps even the clean case realistic (routers never
		// blast at line rate) without dominating the transfer.
		scfg.PacingInterval = 20_000
		scfg.PacingBudget = 32
	case KindPaced:
		scfg.PacingInterval = sc.PacingTimer
		scfg.PacingBudget = sc.PacingBudget
	case KindSlowReceiver:
		ccfg.TotalRate = sc.CollectorRate
	case KindSmallWindow:
		spec.CollectorTCP.RecvBuf = sc.RecvBuf
	case KindUpstreamLoss:
		switch {
		case sc.BurstLoss != nil:
			spec.Path.UpstreamHook = netem.GilbertElliott(sc.Seed+7, *sc.BurstLoss)
		case len(sc.lossWindows()) > 0:
			spec.Path.UpstreamHook = netem.LossEpisodes(sc.lossWindows()...)
		default:
			spec.Path.UpstreamLoss = sc.LossRate
		}
	case KindDownstreamLoss:
		switch {
		case sc.BurstLoss != nil:
			spec.Path.DownstreamHook = netem.GilbertElliott(sc.Seed+9, *sc.BurstLoss)
		case len(sc.lossWindows()) > 0:
			spec.Path.DownstreamHook = netem.LossEpisodes(sc.lossWindows()...)
		default:
			spec.Path.DownstreamLoss = sc.LossRate
		}
	case KindBandwidth:
		spec.Path.UpstreamRate = sc.UpstreamRate
	case KindHeavyTailApp:
		scfg.AppProfile = heavyTailProfile(sc.Seed)
	case KindBimodalApp:
		scfg.AppProfile = bimodalProfile(sc.Seed)
	case KindVaryingRate:
		if sc.RateProfile == "sawtooth" {
			spec.Path.UpstreamSchedule = netem.Sawtooth(sc.UpstreamRate, sc.RateLow, sc.RatePeriod, 8)
		} else {
			spec.Path.UpstreamSchedule = netem.Square(sc.UpstreamRate, sc.RateLow, sc.RatePeriod)
		}
	case KindZeroAckBug:
		spec.RouterTCP.ZeroWindowProbeBug = true
		spec.CollectorTCP.RecvBuf = 8192
		ccfg.TotalRate = sc.CollectorRate
		ccfg.ProcessInterval = 400_000 // coarse scheduling: bursty reads
	}

	if collectorBuf != 0 && spec.CollectorTCP.RecvBuf == 0 {
		spec.CollectorTCP.RecvBuf = collectorBuf
	}
	if rtoBackoff > 0 {
		spec.RouterTCP.RTOBackoff = rtoBackoff
		spec.CollectorTCP.RTOBackoff = rtoBackoff
	}
	// The router is the data sender, so its config takes the congestion
	// control; receiver quirks land on the collector.
	tcpsim.ApplyStack(sc.Stack, &spec.RouterTCP, &spec.CollectorTCP)
	conn := bgpsim.Dial(eng, spec, 7018)
	speaker := bgpsim.NewSpeaker(eng, scfg)
	speaker.Table = table
	sess := speaker.AddSession(conn.RouterPeer, nil)
	queued := -1
	sess.OnTransferQueued = func(n, _ int) { queued = n }
	host := bgpsim.NewCollectorHost(eng, ccfg)
	csess := host.AddSession(conn.CollectorPeer, 7018)
	rec := newTruthRecorder()
	rec.attach(conn, sess)

	// Run in chunks and stop shortly after the collector has processed the
	// whole table — keepalive timers keep the event queue alive forever, so
	// the horizon alone never terminates the run, and a long keepalive tail
	// would pollute the capture.
	const chunk = 5_000_000
	for eng.Now() < sc.Horizon {
		until := eng.Now() + chunk
		if until > sc.Horizon {
			until = sc.Horizon
		}
		eng.Run(until)
		if queued >= 0 && len(csess.Archive()) >= queued {
			eng.Run(eng.Now() + 1_000_000) // drain trailing ACKs
			break
		}
	}

	tr := &Trace{
		Kind:        sc.Kind,
		Captures:    conn.Sniffer().Captures(),
		Archive:     csess.Archive(),
		RouterStats: conn.RouterPeer.Endpoint().Stats(),
		Truth:       rec.finish(eng.Now()),
	}
	for _, e := range tr.Archive {
		if m, err := bgp.Parse(e.Raw); err == nil {
			if u, ok := m.(*bgp.Update); ok {
				tr.RoutesDelivered += len(u.NLRI)
			}
		}
	}
	if n := len(tr.Archive); n > 0 {
		tr.GroundDuration = tr.Archive[n-1].Time
	}
	return tr
}

// ChurnTrace is the output of a churn scenario: an initial table transfer,
// an idle period, then a failure-triggered burst of re-announcements on the
// established session (paper §VII's "massive updates triggered upon
// inter-domain routing failures").
type ChurnTrace struct {
	*Trace
	// ChurnStart is when the burst was enqueued; ChurnEnd when its last
	// update reached the collector application.
	ChurnStart, ChurnEnd Micros
}

// RunChurn runs the table transfer of sc, waits until idleAfter past its
// completion, then re-announces churnFrac of the table with fresh
// attributes and captures the burst.
func RunChurn(sc Scenario, idleAfter Micros, churnFrac float64) *ChurnTrace {
	sc = sc.withDefaults()
	eng := sim.New(0, sc.Seed)
	table := Table(eng.Rand(), sc.Routes, sc.RoutesPerGroup)

	spec := bgpsim.ConnSpec{
		RouterAddr:    netip.MustParseAddr("10.0.0.1"),
		CollectorAddr: netip.MustParseAddr("10.0.0.2"),
		Path: netem.PathConfig{
			UpstreamDelay:   sc.RTT / 2,
			DownstreamDelay: sc.RTT / 16,
		},
	}
	scfg := bgpsim.SpeakerConfig{AS: 7018}
	if sc.Kind == KindPaced {
		scfg.PacingInterval = sc.PacingTimer
		scfg.PacingBudget = sc.PacingBudget
	}
	tcpsim.ApplyStack(sc.Stack, &spec.RouterTCP, &spec.CollectorTCP)
	conn := bgpsim.Dial(eng, spec, 7018)
	speaker := bgpsim.NewSpeaker(eng, scfg)
	speaker.Table = table
	sess := speaker.AddSession(conn.RouterPeer, nil)
	queued := -1
	sess.OnTransferQueued = func(n, _ int) { queued = n }
	host := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{TotalRate: sc.CollectorRate})
	csess := host.AddSession(conn.CollectorPeer, 7018)
	rec := newTruthRecorder()
	rec.attach(conn, sess)

	// Run the initial transfer to completion.
	const chunk = 5_000_000
	for eng.Now() < sc.Horizon {
		eng.Run(eng.Now() + chunk)
		if queued >= 0 && len(csess.Archive()) >= queued {
			break
		}
	}
	eng.Run(eng.Now() + idleAfter)

	// The failure: re-announce a slice of the table with changed paths.
	n := int(float64(len(table)) * churnFrac)
	if n < 1 {
		n = 1
	}
	churn := make([]bgp.Route, n)
	copy(churn, table[:n])
	for i := range churn {
		attrs := *churn[i].Attrs
		attrs.ASPath = append([]uint16{65333}, attrs.ASPath...)
		churn[i].Attrs = &attrs
	}
	ct := &ChurnTrace{ChurnStart: eng.Now()}
	before := len(csess.Archive())
	churnUpdates := 0
	// The failure first withdraws the affected prefixes, then re-announces
	// them with the post-failure paths.
	withdrawn := make([]bgp.Prefix, len(churn))
	for i, r := range churn {
		withdrawn[i] = r.Prefix
	}
	if err := sess.EnqueueWithdrawals(withdrawn); err == nil {
		if ups, err := bgp.PackWithdrawals(withdrawn); err == nil {
			churnUpdates += len(ups)
		}
	}
	if err := sess.EnqueueTable(churn); err == nil {
		// Count how many updates the churn packs into.
		if ups, err := bgp.PackTable(churn); err == nil {
			churnUpdates += len(ups)
		}
	}
	for eng.Now() < sc.Horizon {
		eng.Run(eng.Now() + chunk)
		if len(csess.Archive()) >= before+churnUpdates {
			eng.Run(eng.Now() + 1_000_000)
			break
		}
	}

	tr := &Trace{
		Kind:        sc.Kind,
		Captures:    conn.Sniffer().Captures(),
		Archive:     csess.Archive(),
		RouterStats: conn.RouterPeer.Endpoint().Stats(),
		Truth:       rec.finish(eng.Now()),
	}
	for _, e := range tr.Archive {
		if m, err := bgp.Parse(e.Raw); err == nil {
			if u, ok := m.(*bgp.Update); ok {
				tr.RoutesDelivered += len(u.NLRI)
			}
		}
	}
	if len(tr.Archive) > 0 {
		tr.GroundDuration = tr.Archive[len(tr.Archive)-1].Time
		ct.ChurnEnd = tr.GroundDuration
	}
	ct.Trace = tr
	return ct
}

package tracegen

import (
	"net/netip"

	"tdat/internal/bgp"
	"tdat/internal/bgpsim"
	"tdat/internal/dist"
	"tdat/internal/netem"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
)

// heavyTailProfile is the KindHeavyTailApp send pattern: Pareto idle gaps
// (40 ms scale, tail index 1.5 — infinite variance, so a few giant pauses
// dominate) and Pareto burst sizes, both clamped to keep a single draw
// from stalling or flooding the whole transfer.
func heavyTailProfile(seed int64) *bgpsim.AppProfile {
	return &bgpsim.AppProfile{
		Seed:    seed + 101,
		IdleGap: dist.Clamp{D: dist.Pareto{Alpha: 1.5, Xm: 40_000}, Lo: 1_000, Hi: 8_000_000},
		Burst:   dist.Clamp{D: dist.Pareto{Alpha: 1.3, Xm: 6}, Lo: 1, Hi: 512},
	}
}

// bimodalProfile is the KindBimodalApp send pattern: a steady trickle mode
// (30 ms gaps, ~8-update bursts) mixed with a bulk-batch mode (400 ms
// gaps, ~64-update bursts) — the two-regime behavior of routers that
// alternate incremental updates with periodic batch refreshes.
func bimodalProfile(seed int64) *bgpsim.AppProfile {
	return &bgpsim.AppProfile{
		Seed: seed + 103,
		IdleGap: dist.Clamp{
			D:  dist.Bimodal{Mean1: 30_000, Std1: 8_000, Weight1: 0.7, Mean2: 400_000, Std2: 60_000},
			Lo: 1_000, Hi: 2_000_000,
		},
		Burst: dist.Clamp{
			D:  dist.Bimodal{Mean1: 8, Std1: 2, Weight1: 0.8, Mean2: 64, Std2: 12},
			Lo: 1, Hi: 256,
		},
	}
}

// runFanout executes KindFanout: one speaker replicates the table through
// a single peer group to GroupMembers collectors. Member 0 is the observed
// connection (sniffer + ground truth, wired exactly like runScenario); the
// rest are unobserved, and SlowMembers of them run rate-limited collector
// apps, so the observed member repeatedly exhausts the group slack bound
// and stalls — the route-server-scale amplification of paper §II-B3.
func runFanout(sc Scenario) *Trace {
	eng := sim.New(0, sc.Seed)
	table := Table(eng.Rand(), sc.Routes, sc.RoutesPerGroup)

	speaker := bgpsim.NewSpeaker(eng, bgpsim.SpeakerConfig{
		AS:              7018,
		GroupQueueSlack: sc.GroupSlack,
		// Mild pacing, like KindClean: routers never blast at line rate.
		PacingInterval: 20_000,
		PacingBudget:   32,
	})
	speaker.Table = table
	group := speaker.NewPeerGroup()

	// Member 0: the observed connection.
	spec := bgpsim.ConnSpec{
		RouterAddr:    netip.MustParseAddr("10.0.0.1"),
		CollectorAddr: netip.MustParseAddr("10.0.0.2"),
		Path: netem.PathConfig{
			UpstreamDelay:   sc.RTT / 2,
			DownstreamDelay: sc.RTT / 16,
		},
	}
	tcpsim.ApplyStack(sc.Stack, &spec.RouterTCP, &spec.CollectorTCP)
	conn := bgpsim.Dial(eng, spec, 7018)
	sess := speaker.AddSession(conn.RouterPeer, group)
	queued := -1
	sess.OnTransferQueued = func(n, _ int) { queued = n }
	host := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{})
	csess := host.AddSession(conn.CollectorPeer, 7018)
	rec := newTruthRecorder()
	rec.attach(conn, sess)

	// Members 1..N-1: unobserved replicas. The first SlowMembers of them
	// read at CollectorRate and drag the group floor; the rest share one
	// unthrottled host.
	fastHost := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{})
	for i := 1; i < sc.GroupMembers; i++ {
		mspec := bgpsim.ConnSpec{
			RouterAddr:    netip.MustParseAddr("10.0.0.1"),
			CollectorAddr: netip.AddrFrom4([4]byte{10, 0, byte(2 + i>>8), byte(i)}),
			Path: netem.PathConfig{
				UpstreamDelay:   sc.RTT / 2,
				DownstreamDelay: sc.RTT / 16,
			},
		}
		h := fastHost
		if i <= sc.SlowMembers {
			// Slow members pair a throttled reader with tight socket buffers:
			// a member's cursor only stalls once it has written
			// SendBuf+RecvBuf plus whatever the app drained, so with default
			// 64 KB buffers a small table fits entirely in flight and the
			// slack bound never binds. Tight buffers push the app bottleneck
			// back to the speaker, the way RunPeerGroup pins SendBuf.
			mspec.RouterTCP.SendBuf = 4096
			mspec.CollectorTCP.RecvBuf = 4096
			h = bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{TotalRate: sc.CollectorRate})
		}
		mconn := bgpsim.Dial(eng, mspec, 7018)
		speaker.AddSession(mconn.RouterPeer, group)
		h.AddSession(mconn.CollectorPeer, 7018)
	}

	// Run until the observed member's archive is complete (which, through
	// the slack bound, implies the whole group is within slack of done).
	const chunk = 5_000_000
	for eng.Now() < sc.Horizon {
		until := eng.Now() + chunk
		if until > sc.Horizon {
			until = sc.Horizon
		}
		eng.Run(until)
		if queued >= 0 && len(csess.Archive()) >= queued {
			eng.Run(eng.Now() + 1_000_000) // drain trailing ACKs
			break
		}
	}

	tr := &Trace{
		Kind:        sc.Kind,
		Captures:    conn.Sniffer().Captures(),
		Archive:     csess.Archive(),
		RouterStats: conn.RouterPeer.Endpoint().Stats(),
		Truth:       rec.finish(eng.Now()),
	}
	for _, e := range tr.Archive {
		if m, err := bgp.Parse(e.Raw); err == nil {
			if u, ok := m.(*bgp.Update); ok {
				tr.RoutesDelivered += len(u.NLRI)
			}
		}
	}
	if n := len(tr.Archive); n > 0 {
		tr.GroundDuration = tr.Archive[n-1].Time
	}
	return tr
}

package tracegen

import "testing"

// TestTruthCapture checks that each scenario kind populates the ground-truth
// fields its pathology should produce.
func TestTruthCapture(t *testing.T) {
	t.Parallel()
	small := func(k Kind) Scenario { return Scenario{Kind: k, Seed: 7, Routes: 3000} }

	t.Run("paced records app idle", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindPaced))
		if tr.Truth == nil {
			t.Fatal("Truth not recorded")
		}
		if tr.Truth.AppIdle.Size() == 0 {
			t.Error("paced scenario recorded no AppIdle truth")
		}
		if frac := float64(tr.Truth.AppIdle.Size()) / float64(tr.GroundDuration); frac < 0.5 {
			t.Errorf("paced AppIdle covers %.2f of transfer, want > 0.5", frac)
		}
	})

	t.Run("upstream loss records upstream drops", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindUpstreamLoss))
		if len(tr.Truth.UpstreamDrops) == 0 {
			t.Error("upstream-loss scenario recorded no upstream drops")
		}
		if len(tr.Truth.DownstreamDrops) != 0 {
			t.Errorf("upstream-loss scenario recorded %d downstream drops, want 0",
				len(tr.Truth.DownstreamDrops))
		}
		if len(tr.Truth.Timeouts) == 0 && tr.RouterStats.Timeouts > 0 {
			t.Error("router stats count timeouts but truth recorded none")
		}
	})

	t.Run("downstream loss records downstream drops", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindDownstreamLoss))
		if len(tr.Truth.DownstreamDrops) == 0 {
			t.Error("downstream-loss scenario recorded no downstream drops")
		}
		if len(tr.Truth.UpstreamDrops) != 0 {
			t.Errorf("downstream-loss scenario recorded %d upstream drops, want 0",
				len(tr.Truth.UpstreamDrops))
		}
	})

	t.Run("small window records adv blocking", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindSmallWindow))
		if tr.Truth.AdvBlocked.Size() == 0 {
			t.Error("small-window scenario recorded no AdvBlocked truth")
		}
	})

	t.Run("zero-ack bug records bug drops and zero windows", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindZeroAckBug))
		if len(tr.Truth.BugDrops) == 0 {
			t.Error("zero-ack-bug scenario recorded no bug drops")
		}
		if tr.Truth.ZeroWindow.Size() == 0 {
			t.Error("zero-ack-bug scenario recorded no zero-window truth")
		}
		if got, want := len(tr.Truth.BugDrops), tr.RouterStats.BugDrops; got != want {
			t.Errorf("truth recorded %d bug drops, endpoint stats say %d", got, want)
		}
	})

	t.Run("clean trace stays mostly quiet", func(t *testing.T) {
		t.Parallel()
		tr := Run(small(KindClean))
		if n := len(tr.Truth.UpstreamDrops) + len(tr.Truth.DownstreamDrops); n != 0 {
			t.Errorf("clean scenario recorded %d drops, want 0", n)
		}
		if n := len(tr.Truth.Timeouts); n != 0 {
			t.Errorf("clean scenario recorded %d timeouts, want 0", n)
		}
		if tr.Truth.ZeroWindow.Size() != 0 {
			t.Error("clean scenario recorded zero-window truth")
		}
	})
}

package tracegen

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tdat/internal/timerange"
)

var update = flag.Bool("update", false, "rewrite the golden trace hashes from current simulator output")

// goldenGrid is the committed seed grid whose Reno traces are pinned by
// testdata/trace_hashes.txt. It covers every scenario kind (including a
// scripted loss episode) at two seeds, so a sender-side refactor that
// changes any emitted packet — content, order, or timing — flips a hash.
func goldenGrid() map[string]Scenario {
	grid := map[string]Scenario{}
	kinds := []Kind{
		KindClean, KindPaced, KindSlowReceiver, KindSmallWindow,
		KindUpstreamLoss, KindDownstreamLoss, KindBandwidth, KindZeroAckBug,
	}
	for _, k := range kinds {
		for _, seed := range []int64{1, 2} {
			name := fmt.Sprintf("%s-seed%d", k, seed)
			grid[name] = Scenario{Kind: k, Seed: seed, Routes: 2_000}
		}
	}
	// A flapping downstream link exercises the RTO go-back-N repair path.
	grid["loss-episode-seed1"] = Scenario{
		Kind:   KindDownstreamLoss,
		Seed:   1,
		Routes: 4_000,
		LossEpisodes: []timerange.Range{
			timerange.R(250_000, 600_000),
			timerange.R(1_650_000, 2_000_000),
		},
	}
	return grid
}

// hashTrace digests everything the simulator emitted: every sniffed packet
// (time, direction, full wire bytes) and every archived BGP message (time,
// raw payload), plus the ground duration. Two traces hash equal iff the
// simulator produced byte-identical output on an identical schedule.
func hashTrace(t *testing.T, tr *Trace) string {
	t.Helper()
	h := sha256.New()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	u64(uint64(len(tr.Captures)))
	for _, c := range tr.Captures {
		u64(uint64(c.Time))
		u64(uint64(c.Dir))
		wire, err := c.Pkt.Marshal()
		if err != nil {
			t.Fatalf("marshal captured packet: %v", err)
		}
		u64(uint64(len(wire)))
		h.Write(wire)
	}
	u64(uint64(len(tr.Archive)))
	for _, e := range tr.Archive {
		u64(uint64(e.Time))
		u64(uint64(len(e.Raw)))
		h.Write(e.Raw)
	}
	u64(uint64(tr.GroundDuration))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenTraceHashes is the refactor invariant for the sender stack: the
// default (Reno) simulator output over the committed seed grid must stay
// byte-identical to the hashes recorded before the CongestionControl
// extraction. Rerun with -update only for a deliberate behavior change.
func TestGoldenTraceHashes(t *testing.T) {
	golden := filepath.Join("testdata", "trace_hashes.txt")
	grid := goldenGrid()

	names := make([]string, 0, len(grid))
	for n := range grid {
		names = append(names, n)
	}
	sort.Strings(names)

	got := map[string]string{}
	for _, n := range names {
		got[n] = hashTrace(t, Run(grid[n]))
	}

	if *update {
		var b strings.Builder
		b.WriteString("# SHA-256 trace hashes for the golden Reno seed grid (see golden_test.go).\n")
		b.WriteString("# Regenerate with: go test ./internal/tracegen -run TestGoldenTraceHashes -update\n")
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s\n", n, got[n])
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d scenarios)", golden, len(names))
		return
	}

	f, err := os.Open(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/tracegen -run TestGoldenTraceHashes -update` to seed it)", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for _, n := range names {
		w, ok := want[n]
		if !ok {
			t.Errorf("scenario %s missing from %s (rerun with -update)", n, golden)
			continue
		}
		if got[n] != w {
			t.Errorf("scenario %s: trace hash changed\n  got  %s\n  want %s\n(the Reno wire schedule is a refactor invariant; rerun with -update only for a deliberate behavior change)",
				n, got[n], w)
		}
	}
	for n := range want {
		if _, ok := got[n]; !ok {
			t.Errorf("golden file pins unknown scenario %s (rerun with -update)", n)
		}
	}
}

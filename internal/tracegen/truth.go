package tracegen

import (
	"tdat/internal/bgpsim"
	"tdat/internal/packet"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
	"tdat/internal/timerange"
)

// Truth is the simulator's authoritative record of what happened during a
// run — the events a passive analyzer can only infer from the capture. It is
// assembled from the ground-truth hooks threaded through tcpsim (endpoint
// probes), netem (link drop hooks), and bgpsim (pacing/group stall hooks),
// and carried alongside the Trace so a differential validator can score the
// analyzer's inferences against it.
type Truth struct {
	// UpstreamDrops are the instants payload-bearing data packets were lost
	// between the sender and the sniffer (invisible to the capture except
	// through the retransmission that follows). BugDrops are counted here
	// too: the probe-discard bug consumes the segment before it reaches the
	// wire, which is upstream of the sniffer by construction.
	UpstreamDrops []Micros
	// DownstreamDrops are losses between the sniffer and the collector: the
	// sniffer sees the original and the retransmission.
	DownstreamDrops []Micros
	// AckDrops are losses on the reverse (collector→sender) path.
	AckDrops []Micros
	// Timeouts are the instants the sender's retransmission timer fired and
	// retransmitted (RFC 6298 backoff included).
	Timeouts []Micros
	// BugDrops are the instants the zero-window probe-discard bug consumed a
	// segment (paper §IV-B).
	BugDrops []Micros

	// ZeroWindow covers periods where the collector advertised a zero
	// receive window (from the zero advertisement to the reopening).
	ZeroWindow *timerange.Set
	// AdvBlocked covers periods where the sender had data buffered but the
	// peer's advertised window was the binding constraint (zero-window
	// stalls included).
	AdvBlocked *timerange.Set
	// AppIdle covers periods where pending updates waited solely on the
	// sender's pacing timer — application-level idle, not TCP backpressure.
	AppIdle *timerange.Set
	// GroupBlocked covers periods where the session stalled on the
	// peer-group slack bound (paper §II-B3).
	GroupBlocked *timerange.Set
}

// newTruth allocates an empty record.
func newTruth() *Truth {
	return &Truth{
		ZeroWindow:   timerange.NewSet(),
		AdvBlocked:   timerange.NewSet(),
		AppIdle:      timerange.NewSet(),
		GroupBlocked: timerange.NewSet(),
	}
}

// truthRecorder accumulates hook events into a Truth, tracking the open
// interval of each binary state until finish closes it.
type truthRecorder struct {
	truth *Truth

	zeroOpen    Micros
	zeroActive  bool
	advOpen     Micros
	advActive   bool
	idleOpen    Micros
	idleActive  bool
	groupOpen   Micros
	groupActive bool
}

func newTruthRecorder() *truthRecorder {
	return &truthRecorder{truth: newTruth()}
}

// open/close helpers add [start, t) on the falling edge of a state.
func (r *truthRecorder) edge(set *timerange.Set, open *Micros, active *bool, t Micros, on bool) {
	if on == *active {
		return
	}
	if on {
		*open = t
	} else if t > *open {
		set.Add(timerange.Range{Start: *open, End: t})
	}
	*active = on
}

// attach wires the recorder into every truth hook of one wired connection
// and its sender session. It must run before the engine does.
func (r *truthRecorder) attach(conn *bgpsim.Conn, sess *bgpsim.Session) {
	t := r.truth

	conn.RouterPeer.Endpoint().SetProbe(&tcpsim.Probe{
		OnTimeout: func(at tcpsim.Micros) { t.Timeouts = append(t.Timeouts, at) },
		OnBugDrop: func(at tcpsim.Micros) {
			t.BugDrops = append(t.BugDrops, at)
			t.UpstreamDrops = append(t.UpstreamDrops, at)
		},
		OnSendBlocked: func(at tcpsim.Micros, blocked bool) {
			r.edge(t.AdvBlocked, &r.advOpen, &r.advActive, at, blocked)
		},
	})
	conn.CollectorPeer.Endpoint().SetProbe(&tcpsim.Probe{
		OnZeroWindow: func(at tcpsim.Micros, zero bool) {
			r.edge(t.ZeroWindow, &r.zeroOpen, &r.zeroActive, at, zero)
		},
	})

	// Only payload-bearing drops matter on the data path: a lost pure ACK or
	// control segment does not create the retransmission signature the
	// analyzer attributes to data loss.
	conn.Path.UpstreamData.DropHook = func(at sim.Micros, p *packet.Packet, _ bool) {
		if p.PayloadLen() > 0 {
			t.UpstreamDrops = append(t.UpstreamDrops, at)
		}
	}
	conn.Path.DownstreamData.DropHook = func(at sim.Micros, p *packet.Packet, _ bool) {
		if p.PayloadLen() > 0 {
			t.DownstreamDrops = append(t.DownstreamDrops, at)
		}
	}
	conn.Path.AckPath.DropHook = func(at sim.Micros, _ *packet.Packet, _ bool) {
		t.AckDrops = append(t.AckDrops, at)
	}

	sess.OnPacingBlocked = func(at sim.Micros, blocked bool) {
		r.edge(t.AppIdle, &r.idleOpen, &r.idleActive, at, blocked)
	}
	sess.OnGroupBlocked = func(at sim.Micros, blocked bool) {
		r.edge(t.GroupBlocked, &r.groupOpen, &r.groupActive, at, blocked)
	}
}

// finish closes any interval still open at simulation end and returns the
// completed record.
func (r *truthRecorder) finish(end Micros) *Truth {
	t := r.truth
	r.edge(t.ZeroWindow, &r.zeroOpen, &r.zeroActive, end, false)
	r.edge(t.AdvBlocked, &r.advOpen, &r.advActive, end, false)
	r.edge(t.AppIdle, &r.idleOpen, &r.idleActive, end, false)
	r.edge(t.GroupBlocked, &r.groupOpen, &r.groupActive, end, false)
	return t
}

package tracegen

import (
	"testing"

	"tdat/internal/netem"
)

// runTwice runs the scenario twice and asserts byte-identical traces — the
// per-seed determinism every diversity dimension must preserve.
func runTwice(t *testing.T, sc Scenario) *Trace {
	t.Helper()
	tr := Run(sc)
	if h1, h2 := hashTrace(t, tr), hashTrace(t, Run(sc)); h1 != h2 {
		t.Fatalf("%s seed %d: double run diverged (%s vs %s)", sc.Kind, sc.Seed, h1, h2)
	}
	return tr
}

// TestHeavyTailAppScenario: the Pareto profile completes the transfer,
// marks application-idle truth, and reproduces per seed.
func TestHeavyTailAppScenario(t *testing.T) {
	tr := runTwice(t, Scenario{Kind: KindHeavyTailApp, Seed: 3, Routes: 1500})
	if tr.RoutesDelivered != 1500 {
		t.Fatalf("delivered %d of 1500 routes", tr.RoutesDelivered)
	}
	if tr.Truth.AppIdle.Empty() {
		t.Error("heavy-tail profile produced no AppIdle truth")
	}
	// A heavy-tailed gap draw must actually shape the transfer: idle time
	// should be a large share of the ground duration.
	if idle := tr.Truth.AppIdle.Size(); idle < tr.GroundDuration/4 {
		t.Errorf("AppIdle %dµs over %dµs transfer — profile not binding", idle, tr.GroundDuration)
	}
}

// TestBimodalAppScenario: both modes of the bimodal profile appear as
// wire-visible inter-burst gaps and the transfer completes. (The AppIdle
// truth set merges back-to-back gaps — bursts take zero virtual time — so
// the two regimes are asserted on the capture, where they actually show.)
func TestBimodalAppScenario(t *testing.T) {
	tr := runTwice(t, Scenario{Kind: KindBimodalApp, Seed: 4, Routes: 1500})
	if tr.RoutesDelivered != 1500 {
		t.Fatalf("delivered %d of 1500 routes", tr.RoutesDelivered)
	}
	// Gap-dominated transfer: idle time must dwarf wire time.
	if idle := tr.Truth.AppIdle.Size(); idle < tr.GroundDuration/2 {
		t.Errorf("AppIdle %dµs over %dµs transfer — profile not binding", idle, tr.GroundDuration)
	}
	var prev Micros
	seen := false
	short, long := 0, 0
	for _, c := range tr.Captures {
		if c.Dir != netem.DirData || c.Pkt.PayloadLen() == 0 {
			continue
		}
		if seen {
			switch gap := c.Time - prev; {
			case gap > 250_000:
				long++
			case gap > 5_000 && gap < 150_000:
				short++
			}
		}
		seen = true
		prev = c.Time
	}
	if short < 3 || long < 1 {
		t.Errorf("inter-burst gaps span one regime only (%d short, %d long)", short, long)
	}
}

// TestVaryingRateScenario: step and sawtooth profiles complete and stay
// deterministic; the time-varying link stretches the transfer relative to
// the fixed high rate.
func TestVaryingRateScenario(t *testing.T) {
	for _, profile := range []string{"step", "sawtooth"} {
		sc := Scenario{Kind: KindVaryingRate, Seed: 5, Routes: 1500, RateProfile: profile}
		tr := runTwice(t, sc)
		if tr.RoutesDelivered != 1500 {
			t.Fatalf("%s: delivered %d of 1500 routes", profile, tr.RoutesDelivered)
		}
		fixed := Run(Scenario{Kind: KindBandwidth, Seed: 5, Routes: 1500})
		if tr.GroundDuration <= fixed.GroundDuration {
			t.Errorf("%s profile (%dµs) not slower than fixed high rate (%dµs)",
				profile, tr.GroundDuration, fixed.GroundDuration)
		}
	}
}

// TestBurstLossScenario: Gilbert–Elliott loss layers onto both loss kinds,
// records authoritative drops, and clusters them (bursts, not i.i.d.).
func TestBurstLossScenario(t *testing.T) {
	ge := &netem.GEParams{PGoodBad: 0.05, PBadGood: 0.25, DropBad: 0.9}
	for _, kind := range []Kind{KindUpstreamLoss, KindDownstreamLoss} {
		tr := runTwice(t, Scenario{Kind: kind, Seed: 6, Routes: 4000, BurstLoss: ge})
		drops := tr.Truth.UpstreamDrops
		if kind == KindDownstreamLoss {
			drops = tr.Truth.DownstreamDrops
		}
		if len(drops) < 4 {
			t.Fatalf("%s: only %d GE drops", kind, len(drops))
		}
		// Bursts: at least one pair of consecutive drops within 10 ms.
		clustered := false
		for i := 1; i < len(drops); i++ {
			if drops[i]-drops[i-1] < 10_000 {
				clustered = true
				break
			}
		}
		if !clustered {
			t.Errorf("%s: %d drops with no clustering — process not bursty", kind, len(drops))
		}
	}
}

// TestFanoutScenario: a peer group with slow unobserved members blocks the
// observed member on the slack bound, the transfer still completes, and
// the run reproduces per seed.
func TestFanoutScenario(t *testing.T) {
	sc := Scenario{Kind: KindFanout, Seed: 7, Routes: 1200, GroupMembers: 24, SlowMembers: 2}
	tr := runTwice(t, sc)
	if tr.RoutesDelivered != 1200 {
		t.Fatalf("delivered %d of 1200 routes", tr.RoutesDelivered)
	}
	if tr.Truth.GroupBlocked.Empty() {
		t.Fatal("fanout run never hit the group slack bound")
	}
	if blocked := tr.Truth.GroupBlocked.Size(); blocked < tr.GroundDuration/4 {
		t.Errorf("GroupBlocked %dµs over %dµs — slack bound barely binding", blocked, tr.GroundDuration)
	}
}

// TestFanoutScalesToHundreds: the group machinery holds at route-server
// scale (hundreds of members). Kept small-table so the test stays fast.
func TestFanoutScalesToHundreds(t *testing.T) {
	if testing.Short() {
		t.Skip("route-server-scale fanout is slow")
	}
	tr := Run(Scenario{Kind: KindFanout, Seed: 8, Routes: 800, GroupMembers: 200})
	if tr.RoutesDelivered != 800 {
		t.Fatalf("delivered %d of 800 routes", tr.RoutesDelivered)
	}
	if tr.Truth.GroupBlocked.Empty() {
		t.Error("200-member fanout never hit the slack bound")
	}
}

package tracegen

import (
	"fmt"
	"math/rand"
	"net/netip"

	"tdat/internal/timerange"

	"tdat/internal/bgp"
	"tdat/internal/bgpsim"
	"tdat/internal/netem"
	"tdat/internal/packet"
	"tdat/internal/sim"
	"tdat/internal/tcpsim"
)

// WeightedKind is one entry in a dataset's scenario mix.
type WeightedKind struct {
	Weight   float64
	Scenario Scenario
}

// Router models one operational router's stable characteristics across its
// repeated table transfers (distance to the collector, table size).
type Router struct {
	ID     int
	RTT    Micros
	Routes int
}

// DatasetProfile describes one of the paper's traces at reproduction scale.
type DatasetProfile struct {
	Name      string
	Transfers int
	Routers   int
	BaseSeed  int64
	// Mix is normalized internally.
	Mix []WeightedKind
	// CollectorRecvBuf overrides the collector's receive buffer for every
	// scenario that doesn't set its own (ISP_A 65535 vs RouteViews 16384).
	CollectorRecvBuf int
	// RTOBackoff lets a profile model aggressive RTO growth (RouteViews).
	RTOBackoff float64
	// UseArchive marks Quagga-style collectors whose MRT archive pins the
	// transfer end; vendor-style collectors need payload reassembly.
	UseArchive bool
}

// Transfer is one generated transfer with its provenance.
type Transfer struct {
	Index  int
	Router Router
	Trace  *Trace
}

// Pick is one transfer's pre-drawn scenario: all the profile's random
// choices (router, scenario kind, per-transfer seed) made ahead of the
// simulation. Drawing every pick up front keeps the RNG strictly
// sequential, so the simulations themselves — each seeded only by its
// pick — can run on any number of workers with identical results.
type Pick struct {
	Index    int
	Router   Router
	Scenario Scenario
}

// Picks draws every transfer's scenario in order. Running pick i via
// RunWithProfile reproduces exactly what Generate produces for index i.
func (p DatasetProfile) Picks() []Pick {
	rnd := rand.New(rand.NewSource(p.BaseSeed))
	routers := make([]Router, p.Routers)
	for i := range routers {
		routers[i] = Router{
			ID:     i,
			RTT:    Micros(2_000 + rnd.Intn(28_000)), // 2–30 ms
			Routes: 8_000 + rnd.Intn(16_000),         // table size per router
		}
	}
	total := 0.0
	for _, m := range p.Mix {
		total += m.Weight
	}
	picks := make([]Pick, 0, p.Transfers)
	for i := 0; i < p.Transfers; i++ {
		r := routers[rnd.Intn(len(routers))]
		// Weighted scenario pick.
		x := rnd.Float64() * total
		sc := p.Mix[len(p.Mix)-1].Scenario
		for _, m := range p.Mix {
			if x < m.Weight {
				sc = m.Scenario
				break
			}
			x -= m.Weight
		}
		sc.Seed = p.BaseSeed + int64(i)*7919
		sc.RTT = r.RTT
		sc.Routes = r.Routes
		picks = append(picks, Pick{Index: i, Router: r, Scenario: sc})
	}
	return picks
}

// Generate synthesizes the dataset, invoking cb per transfer (streaming, so
// memory stays bounded at large scales).
func (p DatasetProfile) Generate(cb func(t Transfer)) {
	for _, pk := range p.Picks() {
		cb(Transfer{Index: pk.Index, Router: pk.Router, Trace: RunWithProfile(pk.Scenario, p)})
	}
}

// RunWithProfile is Run with the profile-wide TCP overrides (RTO backoff,
// default collector buffer) applied.
func RunWithProfile(sc Scenario, p DatasetProfile) *Trace {
	return runScenario(sc, p.RTOBackoff, p.CollectorRecvBuf)
}

// Paper-profile constructors. Transfer counts are scaled from the paper's
// (10396 / 436 / 94) so the whole suite runs in minutes on one core;
// pass the scale knobs the experiments use.

// ISPAVendor models the ISP_A vendor-collector trace: frequent resets
// (vendor bug), 65 KB windows, sender-side pathologies dominant.
func ISPAVendor(transfers, routers int, seed int64) DatasetProfile {
	return DatasetProfile{
		Name: "ISPA-Vendor", Transfers: transfers, Routers: routers, BaseSeed: seed,
		CollectorRecvBuf: 65535,
		Mix: []WeightedKind{
			{0.38, Scenario{Kind: KindPaced, PacingTimer: 200_000, PacingBudget: 24}},
			{0.10, Scenario{Kind: KindPaced, PacingTimer: 400_000, PacingBudget: 48}},
			{0.17, Scenario{Kind: KindClean}},
			{0.22, Scenario{Kind: KindSlowReceiver, CollectorRate: 30_000}},
			{0.06, Scenario{Kind: KindSmallWindow, RecvBuf: 65535}},
			{0.03, Scenario{Kind: KindUpstreamLoss, LossRate: 0.04}},
			{0.015, Scenario{Kind: KindDownstreamLoss, LossRate: 0.04}},
			{0.015, Scenario{Kind: KindDownstreamLoss, LossEpisode: timerange.R(300_000, 1_500_000)}},
			{0.008, Scenario{Kind: KindZeroAckBug}},
			{0.002, Scenario{Kind: KindBandwidth}},
		},
	}
}

// ISPAQuagga models the ISP_A Quagga-collector trace: fewer transfers,
// sender- or receiver-bound, 100/200 ms timers.
func ISPAQuagga(transfers, routers int, seed int64) DatasetProfile {
	return DatasetProfile{
		Name: "ISPA-Quagga", Transfers: transfers, Routers: routers, BaseSeed: seed,
		CollectorRecvBuf: 65535,
		UseArchive:       true,
		Mix: []WeightedKind{
			{0.25, Scenario{Kind: KindPaced, PacingTimer: 100_000, PacingBudget: 32}},
			{0.15, Scenario{Kind: KindPaced, PacingTimer: 200_000, PacingBudget: 24}},
			{0.12, Scenario{Kind: KindClean}},
			{0.34, Scenario{Kind: KindSlowReceiver, CollectorRate: 20_000}},
			{0.08, Scenario{Kind: KindSmallWindow, RecvBuf: 65535}},
			{0.02, Scenario{Kind: KindUpstreamLoss, LossRate: 0.04}},
			{0.015, Scenario{Kind: KindDownstreamLoss, LossRate: 0.03}},
			{0.015, Scenario{Kind: KindUpstreamLoss, LossEpisode: timerange.R(300_000, 1_500_000)}},
			{0.01, Scenario{Kind: KindBandwidth}},
		},
	}
}

// RouteViews models the RV trace: eBGP distances, a 16 KB advertised
// window, aggressive RTO backoff, and more network loss.
func RouteViews(transfers, routers int, seed int64) DatasetProfile {
	return DatasetProfile{
		Name: "RouteViews", Transfers: transfers, Routers: routers, BaseSeed: seed,
		CollectorRecvBuf: 16384,
		RTOBackoff:       3.0,
		Mix: []WeightedKind{
			{0.18, Scenario{Kind: KindPaced, PacingTimer: 80_000, PacingBudget: 24}},
			{0.10, Scenario{Kind: KindPaced, PacingTimer: 400_000, PacingBudget: 48}},
			{0.26, Scenario{Kind: KindClean}},
			{0.26, Scenario{Kind: KindSmallWindow, RecvBuf: 16384}},
			{0.10, Scenario{Kind: KindUpstreamLoss, LossRate: 0.06}},
			{0.04, Scenario{Kind: KindUpstreamLoss, LossEpisode: timerange.R(300_000, 2_000_000)}},
			{0.06, Scenario{Kind: KindDownstreamLoss, LossRate: 0.05}},
		},
	}
}

// PeerGroupResult carries the two coupled traces of a blocking scenario.
type PeerGroupResult struct {
	Healthy *Trace // the surviving (Quagga) session
	Faulty  *Trace // the killed (vendor) session
	// KillAt and HoldExpiry are the ground-truth t1 and t2 of paper Fig 9.
	KillAt     Micros
	HoldExpiry Micros
}

// RunPeerGroup reproduces paper Fig 9: two collectors in one peer group;
// the vendor collector dies mid-transfer and blocks the healthy session
// until the hold timer removes it.
func RunPeerGroup(seed int64, routes int, killAt, hold Micros) *PeerGroupResult {
	eng := sim.New(0, seed)
	table := Table(eng.Rand(), routes, 4)

	mk := func(collAddr string) bgpsim.ConnSpec {
		return bgpsim.ConnSpec{
			RouterAddr:    netip.MustParseAddr("10.0.0.1"),
			CollectorAddr: netip.MustParseAddr(collAddr),
			RouterTCP:     tcpsim.Config{SendBuf: 16384},
			Path: netem.PathConfig{
				UpstreamDelay:   4_000,
				DownstreamDelay: 200,
			},
		}
	}
	connA := bgpsim.Dial(eng, mk("10.0.0.2"), 7018)
	connB := bgpsim.Dial(eng, mk("10.0.0.3"), 7018)

	speaker := bgpsim.NewSpeaker(eng, bgpsim.SpeakerConfig{
		AS:                7018,
		HoldTime:          hold,
		KeepaliveInterval: hold / 3,
		GroupQueueSlack:   8,
		PacingInterval:    50_000,
		PacingBudget:      6,
	})
	speaker.Table = table
	group := speaker.NewPeerGroup()
	speaker.AddSession(connA.RouterPeer, group)
	speaker.AddSession(connB.RouterPeer, group)

	hostA := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{})
	csA := hostA.AddSession(connA.CollectorPeer, 7018)
	hostB := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{Kind: bgpsim.KindVendor})
	csB := hostB.AddSession(connB.CollectorPeer, 7018)

	var holdExpiry Micros
	prev := connB.RouterPeer.OnDown
	connB.RouterPeer.OnDown = func(r string) {
		holdExpiry = eng.Now()
		if prev != nil {
			prev(r)
		}
	}
	eng.At(killAt, func() { connB.CollectorPeer.Endpoint().Kill() })
	eng.Run(hold*3 + 600_000_000)

	collect := func(conn *bgpsim.Conn, cs *bgpsim.CollectorSession) *Trace {
		tr := &Trace{Captures: conn.Sniffer().Captures(), Archive: cs.Archive()}
		for _, e := range tr.Archive {
			if m, err := bgp.Parse(e.Raw); err == nil {
				if u, ok := m.(*bgp.Update); ok {
					tr.RoutesDelivered += len(u.NLRI)
				}
			}
		}
		if n := len(tr.Archive); n > 0 {
			tr.GroundDuration = tr.Archive[n-1].Time
		}
		return tr
	}
	return &PeerGroupResult{
		Healthy:    collect(connA, csA),
		Faulty:     collect(connB, csB),
		KillAt:     killAt,
		HoldExpiry: holdExpiry,
	}
}

// RunPeerGroupN is RunPeerGroup with n members: members 1..n-1 stay
// healthy, member 0 ("the vendor box") is killed at killAt and blocks the
// entire group until its hold timer evicts it — the amplification the
// paper warns about ("the effect of this problem would be amplified by the
// number of routers in the group").
func RunPeerGroupN(seed int64, n, routes int, killAt, hold Micros) []*Trace {
	if n < 2 {
		n = 2
	}
	eng := sim.New(0, seed)
	table := Table(eng.Rand(), routes, 4)

	speaker := bgpsim.NewSpeaker(eng, bgpsim.SpeakerConfig{
		AS:                7018,
		HoldTime:          hold,
		KeepaliveInterval: hold / 3,
		GroupQueueSlack:   8,
		PacingInterval:    50_000,
		PacingBudget:      6,
	})
	speaker.Table = table
	group := speaker.NewPeerGroup()

	type memberConn struct {
		conn *bgpsim.Conn
		cs   *bgpsim.CollectorSession
	}
	members := make([]memberConn, n)
	for i := 0; i < n; i++ {
		spec := bgpsim.ConnSpec{
			RouterAddr:    netip.MustParseAddr("10.0.0.1"),
			CollectorAddr: netip.AddrFrom4([4]byte{10, 0, 2, byte(i + 1)}),
			RouterTCP:     tcpsim.Config{SendBuf: 16384},
			Path: netem.PathConfig{
				UpstreamDelay:   4_000,
				DownstreamDelay: 200,
			},
		}
		conn := bgpsim.Dial(eng, spec, 7018)
		speaker.AddSession(conn.RouterPeer, group)
		kind := bgpsim.CollectorConfig{}
		if i == 0 {
			kind.Kind = bgpsim.KindVendor
		}
		host := bgpsim.NewCollectorHost(eng, kind)
		members[i] = memberConn{conn: conn, cs: host.AddSession(conn.CollectorPeer, 7018)}
	}
	eng.At(killAt, func() { members[0].conn.CollectorPeer.Endpoint().Kill() })
	eng.Run(hold*3 + 600_000_000)

	out := make([]*Trace, n)
	for i, m := range members {
		tr := &Trace{Captures: m.conn.Sniffer().Captures(), Archive: m.cs.Archive()}
		for _, e := range tr.Archive {
			if msg, err := bgp.Parse(e.Raw); err == nil {
				if u, ok := msg.(*bgp.Update); ok {
					tr.RoutesDelivered += len(u.NLRI)
				}
			}
		}
		if len(tr.Archive) > 0 {
			tr.GroundDuration = tr.Archive[len(tr.Archive)-1].Time
		}
		out[i] = tr
	}
	return out
}

// RunIncast reproduces the concurrent-transfer scenarios (paper Fig 7 and
// Fig 15): n routers start table transfers to one collector host at the
// same time; their data funnels through one shared drop-tail queue in front
// of the collector (the receiver interface), and the collector's processing
// budget is shared. It returns one trace per connection.
func RunIncast(seed int64, n, routes int, sharedQueue int, collectorRate int64) []*Trace {
	eng := sim.New(0, seed)
	collAddr := netip.MustParseAddr("10.0.0.200")

	// Collector endpoints, demuxed by destination port.
	eps := map[uint16]*tcpsim.Endpoint{}
	demux := func(p *packet.Packet) {
		if ep, ok := eps[p.TCP.DstPort]; ok {
			ep.Deliver(p)
		}
	}
	shared := netem.NewLink(eng, demux)
	shared.Rate = 10_000_000 // 10 MB/s receiver interface
	shared.Delay = 100
	shared.QueueCap = sharedQueue

	host := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{TotalRate: collectorRate})

	type wire struct {
		conn  *connParts
		csess *bgpsim.CollectorSession
	}
	wires := make([]wire, 0, n)
	for i := 0; i < n; i++ {
		w := buildIncastConn(eng, i, collAddr, shared, eps)
		table := Table(eng.Rand(), routes, 4)
		speaker := bgpsim.NewSpeaker(eng, bgpsim.SpeakerConfig{AS: uint16(100 + i)})
		speaker.Table = table
		speaker.AddSession(w.routerPeer, nil)
		cs := host.AddSession(w.collectorPeer, uint16(100+i))
		wires = append(wires, wire{conn: w, csess: cs})
	}
	eng.Run(1_800_000_000)

	out := make([]*Trace, 0, n)
	for _, w := range wires {
		tr := &Trace{
			Captures:    w.conn.sniffer.Captures(),
			Archive:     w.csess.Archive(),
			RouterStats: w.conn.routerPeer.Endpoint().Stats(),
		}
		for _, e := range tr.Archive {
			if m, err := bgp.Parse(e.Raw); err == nil {
				if u, ok := m.(*bgp.Update); ok {
					tr.RoutesDelivered += len(u.NLRI)
				}
			}
		}
		if n := len(tr.Archive); n > 0 {
			tr.GroundDuration = tr.Archive[n-1].Time
		}
		out = append(out, tr)
	}
	return out
}

// connParts is the hand-wired topology of one incast connection.
type connParts struct {
	routerPeer    *bgpsim.Peer
	collectorPeer *bgpsim.Peer
	sniffer       *netem.Sniffer
}

// buildIncastConn wires router i → own upstream link → own sniffer tap →
// the shared downstream link; ACKs return over a private reverse path.
func buildIncastConn(eng *sim.Engine, i int, collAddr netip.Addr, shared *netem.Link, eps map[uint16]*tcpsim.Endpoint) *connParts {
	routerAddr := netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)})
	collPort := uint16(41000 + i)

	var routerEP, collectorEP *tcpsim.Endpoint
	sniffer := netem.NewSniffer(eng)

	up := netem.NewLink(eng, sniffer.Tap(netem.DirData, shared.Send))
	up.Delay = Micros(15_000 + i%7*1_000)

	ack := netem.NewLink(eng, func(p *packet.Packet) { routerEP.Deliver(p) })
	ack.Delay = up.Delay + 100

	routerEP = tcpsim.NewEndpoint(eng, tcpsim.Config{Addr: routerAddr, Port: 179},
		func(p *packet.Packet) { up.Send(p) })
	collectorEP = tcpsim.NewEndpoint(eng, tcpsim.Config{Addr: collAddr, Port: collPort},
		tcpsim.Handler(sniffer.Tap(netem.DirAck, ack.Send)))
	collectorEP.Listen()
	eps[collPort] = collectorEP

	routerPeer := bgpsim.NewPeer(eng, routerEP, fmt.Sprintf("router-%d", i), uint16(100+i), true)
	collectorPeer := bgpsim.NewPeer(eng, collectorEP, "collector", 65000, false)
	routerEP.Connect(collAddr, collPort)
	return &connParts{routerPeer: routerPeer, collectorPeer: collectorPeer, sniffer: sniffer}
}

// RunWithReset reproduces the ISP_A-1 vendor bug (paper §II-B: "frequent
// BGP session resets"): the transfer is killed by a RST mid-flight and the
// router immediately redials on the SAME 4-tuple, so one capture carries
// two table transfers back to back.
func RunWithReset(sc Scenario, resetAt Micros) *Trace {
	sc = sc.withDefaults()
	eng := sim.New(0, sc.Seed)
	table := Table(eng.Rand(), sc.Routes, sc.RoutesPerGroup)
	routerAddr := netip.MustParseAddr("10.0.0.1")
	collAddr := netip.MustParseAddr("10.0.0.2")

	// Rebindable endpoints behind stable handlers, so both connection
	// generations share one path and one sniffer.
	var routerEP, collectorEP *tcpsim.Endpoint
	path := netem.NewPath(eng, netem.PathConfig{
		UpstreamDelay:   sc.RTT / 2,
		DownstreamDelay: sc.RTT / 16,
	},
		func(p *packet.Packet) { collectorEP.Deliver(p) },
		func(p *packet.Packet) { routerEP.Deliver(p) },
	)

	scfg := bgpsim.SpeakerConfig{AS: 7018}
	if sc.Kind == KindPaced {
		scfg.PacingInterval = sc.PacingTimer
		scfg.PacingBudget = sc.PacingBudget
	}
	speaker := bgpsim.NewSpeaker(eng, scfg)
	speaker.Table = table
	host := bgpsim.NewCollectorHost(eng, bgpsim.CollectorConfig{})

	var csessions []*bgpsim.CollectorSession
	dial := func() {
		routerEP = tcpsim.NewEndpoint(eng, tcpsim.Config{Addr: routerAddr, Port: 179},
			tcpsim.Handler(path.DataIn))
		collectorEP = tcpsim.NewEndpoint(eng, tcpsim.Config{Addr: collAddr, Port: 41000},
			tcpsim.Handler(path.AckIn))
		collectorEP.Listen()
		routerPeer := bgpsim.NewPeer(eng, routerEP, "router", 7018, true)
		collectorPeer := bgpsim.NewPeer(eng, collectorEP, "collector", 65000, false)
		speaker.AddSession(routerPeer, nil)
		csessions = append(csessions, host.AddSession(collectorPeer, 7018))
		routerEP.Connect(collAddr, 41000)
	}
	dial()
	eng.At(resetAt, func() {
		routerEP.Abort()
		collectorEP.Kill() // the old listener must not swallow the new SYN
		eng.After(200_000, dial)
	})
	eng.Run(sc.Horizon)

	tr := &Trace{Kind: sc.Kind, Captures: path.Sniffer.Captures()}
	for _, cs := range csessions {
		tr.Archive = append(tr.Archive, cs.Archive()...)
		for _, e := range cs.Archive() {
			if m, err := bgp.Parse(e.Raw); err == nil {
				if u, ok := m.(*bgp.Update); ok {
					tr.RoutesDelivered += len(u.NLRI)
				}
			}
		}
	}
	if len(tr.Archive) > 0 {
		tr.GroundDuration = tr.Archive[len(tr.Archive)-1].Time
	}
	return tr
}

package tracegen

import (
	"math/rand"
	"testing"

	"tdat/internal/bgp"
)

func TestTableProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	table := Table(rnd, 1000, 4)
	if len(table) != 1000 {
		t.Fatalf("table size = %d", len(table))
	}
	groups := map[string]bool{}
	for _, r := range table {
		if r.Attrs == nil {
			t.Fatal("route without attributes")
		}
		if len(r.Attrs.ASPath) < 2 || len(r.Attrs.ASPath) > 7 {
			t.Errorf("AS path length %d outside 2..7", len(r.Attrs.ASPath))
		}
		groups[r.Attrs.Key()] = true
	}
	// Roughly one attribute group per 4 routes.
	if len(groups) < 200 || len(groups) > 300 {
		t.Errorf("attribute groups = %d, want ≈250", len(groups))
	}
	// The table must serialize into many reasonable-size updates.
	updates, err := bgp.PackTable(table)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) < 100 {
		t.Errorf("packed into %d updates", len(updates))
	}
}

func TestTableDeterministic(t *testing.T) {
	a := Table(rand.New(rand.NewSource(5)), 100, 4)
	b := Table(rand.New(rand.NewSource(5)), 100, 4)
	for i := range a {
		if a[i].Prefix != b[i].Prefix || a[i].Attrs.Key() != b[i].Attrs.Key() {
			t.Fatal("same seed produced different tables")
		}
	}
}

func TestRunCompletesEveryKind(t *testing.T) {
	kinds := []Kind{
		KindClean, KindPaced, KindSlowReceiver, KindSmallWindow,
		KindUpstreamLoss, KindDownstreamLoss, KindBandwidth, KindZeroAckBug,
	}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			tr := Run(Scenario{Kind: k, Seed: 11, Routes: 4_000})
			if tr.RoutesDelivered != 4_000 {
				t.Errorf("delivered %d of 4000 routes", tr.RoutesDelivered)
			}
			if len(tr.Captures) == 0 {
				t.Error("no captures")
			}
			if tr.GroundDuration <= 0 {
				t.Error("no ground duration")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Scenario{Kind: KindUpstreamLoss, Seed: 21, Routes: 4_000})
	b := Run(Scenario{Kind: KindUpstreamLoss, Seed: 21, Routes: 4_000})
	if len(a.Captures) != len(b.Captures) || a.GroundDuration != b.GroundDuration {
		t.Errorf("same seed diverged: %d/%d captures, %d/%d µs",
			len(a.Captures), len(b.Captures), a.GroundDuration, b.GroundDuration)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClean: "clean", KindPaced: "paced", KindSlowReceiver: "slow-receiver",
		KindSmallWindow: "small-window", KindUpstreamLoss: "upstream-loss",
		KindDownstreamLoss: "downstream-loss", KindBandwidth: "bandwidth",
		KindZeroAckBug: "zero-ack-bug", Kind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

func TestDatasetProfileGenerate(t *testing.T) {
	p := ISPAQuagga(6, 3, 77)
	var transfers []Transfer
	p.Generate(func(tr Transfer) { transfers = append(transfers, tr) })
	if len(transfers) != 6 {
		t.Fatalf("generated %d transfers", len(transfers))
	}
	for _, tr := range transfers {
		if tr.Trace.RoutesDelivered == 0 {
			t.Errorf("transfer %d delivered nothing", tr.Index)
		}
		if tr.Router.RTT < 2_000 || tr.Router.RTT > 30_000 {
			t.Errorf("router RTT %d outside profile range", tr.Router.RTT)
		}
	}
}

func TestRunPeerGroupGroundTruth(t *testing.T) {
	pg := RunPeerGroup(3, 8_000, 1_000_000, 30_000_000)
	if pg.Healthy.RoutesDelivered != 8_000 {
		t.Errorf("healthy delivered %d", pg.Healthy.RoutesDelivered)
	}
	if pg.HoldExpiry < 30_000_000 || pg.HoldExpiry > 70_000_000 {
		t.Errorf("hold expiry at %d µs with a 30s hold", pg.HoldExpiry)
	}
	// The healthy transfer must have stalled roughly the blocking period.
	if pg.Healthy.GroundDuration < 25_000_000 {
		t.Errorf("healthy ground duration %d µs shows no blocking", pg.Healthy.GroundDuration)
	}
}

func TestRunIncastSharedBottleneck(t *testing.T) {
	traces := RunIncast(9, 4, 4_000, 100, 100_000)
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	for i, tr := range traces {
		if tr.RoutesDelivered != 4_000 {
			t.Errorf("conn %d delivered %d of 4000", i, tr.RoutesDelivered)
		}
	}
}

func TestRunChurnDeliversBurst(t *testing.T) {
	ct := RunChurn(Scenario{Kind: KindPaced, Seed: 50, Routes: 4_000,
		PacingTimer: 100_000, PacingBudget: 32}, 5_000_000, 0.25)
	if ct.ChurnStart == 0 || ct.ChurnEnd <= ct.ChurnStart {
		t.Fatalf("churn window [%d, %d]", ct.ChurnStart, ct.ChurnEnd)
	}
	// The burst re-announces 25% of the table on top of the initial 100%.
	if ct.RoutesDelivered < 4_000+900 {
		t.Errorf("delivered %d routes, want initial 4000 + ~1000 churn", ct.RoutesDelivered)
	}
	// There must be a quiet idle period between transfer end and churn.
	var lastBefore Micros
	for _, e := range ct.Archive {
		if e.Time < ct.ChurnStart {
			lastBefore = e.Time
		}
	}
	if ct.ChurnStart-lastBefore < 4_000_000 {
		t.Errorf("idle before churn only %d µs", ct.ChurnStart-lastBefore)
	}
}

func TestRunPeerGroupNAllMembersBlocked(t *testing.T) {
	traces := RunPeerGroupN(60, 4, 8_000, 1_000_000, 30_000_000)
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	// Every healthy member (1..3) delivers the full table but only after
	// the dead member's hold expiry (~31 s).
	for i := 1; i < 4; i++ {
		if traces[i].RoutesDelivered != 8_000 {
			t.Errorf("member %d delivered %d", i, traces[i].RoutesDelivered)
		}
		if traces[i].GroundDuration < 25_000_000 {
			t.Errorf("member %d finished at %.1fs without blocking",
				i, float64(traces[i].GroundDuration)/1e6)
		}
	}
	// The dead member received only the pre-kill prefix (if any).
	if traces[0].RoutesDelivered >= 8_000 {
		t.Errorf("dead member delivered %d", traces[0].RoutesDelivered)
	}
}

// Package flows extracts TCP connections from timestamped packet captures
// and derives the per-connection information T-DAT needs — the role
// tcptrace plays in the paper's pipeline (§III-B): connection profiles
// (start/end, RTT, MSS, maximum advertised window) and per-packet labels
// (retransmission, out-of-sequence gap fill, reordering), plus the
// upstream/downstream loss classification of §II-B2.
package flows

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"tdat/internal/obs"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// TimedPacket is one captured packet with its sniffer timestamp.
type TimedPacket struct {
	Time Micros
	Pkt  *packet.Packet
}

// Endpoint identifies one side of a connection.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Key identifies a connection by its two endpoints in a canonical order.
type Key struct {
	A, B Endpoint
}

// canonicalKey orders the endpoints deterministically.
func canonicalKey(src, dst Endpoint) Key {
	if src.Addr.Compare(dst.Addr) < 0 ||
		(src.Addr == dst.Addr && src.Port < dst.Port) {
		return Key{A: src, B: dst}
	}
	return Key{A: dst, B: src}
}

// DataKind labels a data-direction packet.
type DataKind int

// Data packet classifications.
const (
	// DataNew advances the stream with bytes never captured before.
	DataNew DataKind = iota
	// DataRetransmit carries bytes the sniffer already saw: the original
	// reached the sniffer, so the loss (or its ACK's loss) happened
	// downstream of it (paper Fig 7).
	DataRetransmit
	// DataGapFill carries bytes never captured that sit below the highest
	// sequence seen: the original was lost upstream of the sniffer
	// (paper Fig 8).
	DataGapFill
	// DataReordered is a gap fill attributable to in-network reordering
	// rather than loss (filtered per Jaiswal et al. [17]).
	DataReordered
)

// String implements fmt.Stringer.
func (k DataKind) String() string {
	switch k {
	case DataNew:
		return "new"
	case DataRetransmit:
		return "retransmit"
	case DataGapFill:
		return "gap-fill"
	case DataReordered:
		return "reordered"
	default:
		return "unknown"
	}
}

// DataEvent is one sender→receiver payload (or SYN/FIN) packet.
type DataEvent struct {
	Time Micros
	// Seq and SeqEnd are payload offsets relative to the sender's ISN+1.
	Seq, SeqEnd int64
	Len         int
	IPID        uint16
	Kind        DataKind
	// Ack and Window echo the piggybacked acknowledgment state.
	Ack    int64
	Window int
	// Payload references the captured bytes (nil for length-only traces);
	// reassembly uses it to reconstruct the BGP stream.
	Payload []byte
}

// SenderPureAck records a payloadless sender→receiver packet: invisible to
// the byte stream, but a consumer of the sender's IP ID sequence.
type SenderPureAck struct {
	Time Micros
	IPID uint16
}

// AckEvent is one receiver→sender packet (pure ACK or receiver data).
type AckEvent struct {
	Time Micros
	// Ack is the cumulative acknowledgment as a sender-stream offset.
	Ack    int64
	Window int
	// Dup marks a duplicate ACK (same ack, no payload, no window change).
	Dup bool
	// PayloadLen is the receiver's own payload (keepalives etc.).
	PayloadLen int
}

// Profile summarizes connection-level parameters (the tcptrace output the
// analyzer consumes).
type Profile struct {
	Start Micros // first packet (SYN) time
	End   Micros // last packet time
	// RTT is the estimated sender-perceived round-trip time.
	RTT Micros
	// MSS is from the SYN options, or the largest observed segment.
	MSS int
	// MaxAdvWindow is the receiver's largest advertised window.
	MaxAdvWindow int
	// SynTime/SynAckTime/AckTime record the handshake at the sniffer.
	SynTime, SynAckTime, HandshakeAckTime Micros
	// Initiator reports whether the data sender also sent the first SYN.
	InitiatorIsSender bool

	TotalDataBytes   int64
	TotalDataPackets int
	RetransmitCount  int
	// SpuriousRetxCount counts retransmissions of bytes the receiver had
	// already acknowledged — copies that prove no downstream loss.
	SpuriousRetxCount int
	// SilentLossRanges counts long silences whose bracketing IP IDs show
	// the sender transmitting into an upstream black hole (see
	// scanSilentLoss).
	SilentLossRanges int
	GapFillCount     int
	ReorderCount     int
}

// Connection is one extracted TCP connection oriented so that Sender is the
// side contributing the bulk of the payload (the operational router in the
// paper's setting).
type Connection struct {
	Sender   Endpoint
	Receiver Endpoint
	Profile  Profile

	// Data are the Sender→Receiver packets in time order.
	Data []DataEvent
	// Acks are the Receiver→Sender packets in time order.
	Acks []AckEvent
	// SenderPureAcks are the sender's payloadless packets (acknowledgments
	// of receiver keepalives, window probes answered without data). They
	// carry no bytes but consume sender IP IDs, so the silent-loss scan
	// needs them to tell "idle sender" from "sender whose packets all died
	// upstream of the sniffer".
	SenderPureAcks []SenderPureAck

	// UpstreamLoss and DownstreamLoss are the recovery periods attributed
	// to losses before and after the sniffer respectively (§II-B2).
	UpstreamLoss   *timerange.Set
	DownstreamLoss *timerange.Set

	// senderISN anchors relative sequence numbers.
	senderISN   uint32
	receiverISN uint32
	// arrival is the global arrival sequence number of the connection's
	// first packet (see ArrivalSeq).
	arrival int64
}

// Span returns the connection's observation window.
func (c *Connection) Span() timerange.Range {
	return timerange.Range{Start: c.Profile.Start, End: c.Profile.End + 1}
}

// ArrivalSeq returns the global arrival sequence number of the connection's
// first packet — the position of that packet in the full capture stream.
// Sharded ingest (core.Config.Shards) splits connections across independent
// demuxers and restores the single-demuxer output order by sorting merged
// connections on this value: with one shard it increases exactly in
// creation-index order, so the merge is byte-identical at any shard count.
func (c *Connection) ArrivalSeq() int64 { return c.arrival }

// pktTable is the columnar (struct-of-arrays) per-connection packet store.
// One column per field the analyzer reads keeps the accumulation hot path
// free of per-packet allocations and pointer chasing: appending a packet
// touches a handful of flat arrays instead of allocating a packet struct,
// and analysis scans run down dense columns. Payload bytes are copied into
// a single per-connection arena, so the demuxer retains nothing from the
// caller's (reused) decode buffer — the ownership boundary that makes
// zero-copy ingest (pcapio.ReadInto + packet.DecodeInto) safe upstream.
type pktTable struct {
	times   []Micros
	seqs    []uint32 // TCP sequence numbers (wire values)
	acks    []uint32 // TCP acknowledgment numbers (wire values)
	ipids   []uint16
	windows []uint16
	flags   []uint8
	dirs    []uint8 // 1 when the packet's source is the canonical key's A side
	payOff  []int32 // payload start in arena
	payLen  []int32
	mss     []uint32 // SYN MSS option, 1<<16|value when present, 0 otherwise
	arena   []byte   // payload bytes, owned by the table (and later the events)
}

func (t *pktTable) n() int { return len(t.times) }

// add appends one packet, copying its payload into the arena.
func (t *pktTable) add(tm Micros, p *packet.Packet, fromA bool) {
	t.times = append(t.times, tm)
	t.seqs = append(t.seqs, p.TCP.Seq)
	t.acks = append(t.acks, p.TCP.Ack)
	t.ipids = append(t.ipids, p.IP.ID)
	t.windows = append(t.windows, p.TCP.Window)
	t.flags = append(t.flags, p.TCP.Flags)
	var dir uint8
	if fromA {
		dir = 1
	}
	t.dirs = append(t.dirs, dir)
	t.payOff = append(t.payOff, int32(len(t.arena)))
	t.payLen = append(t.payLen, int32(len(p.Payload)))
	t.arena = append(t.arena, p.Payload...)
	var m uint32
	if p.TCP.HasFlag(packet.FlagSYN) {
		if v, ok := p.TCP.MSS(); ok {
			m = 1<<16 | uint32(v)
		}
	}
	t.mss = append(t.mss, m)
}

// payload returns the i-th packet's payload as a capped view into the arena
// (stable for the lifetime of the emitted events; nil when empty).
func (t *pktTable) payload(i int) []byte {
	if t.payLen[i] == 0 {
		return nil
	}
	off, end := t.payOff[i], t.payOff[i]+t.payLen[i]
	return t.arena[off:end:end]
}

// sortByTime stably reorders every column by timestamp — the rare
// disordered-capture path. The arena is untouched: payOff/payLen move with
// their rows, so payload views stay valid.
func (t *pktTable) sortByTime() {
	perm := make([]int, t.n())
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return t.times[perm[i]] < t.times[perm[j]] })
	permute(perm, t.times)
	permute(perm, t.seqs)
	permute(perm, t.acks)
	permute(perm, t.ipids)
	permute(perm, t.windows)
	permute(perm, t.flags)
	permute(perm, t.dirs)
	permute(perm, t.payOff)
	permute(perm, t.payLen)
	permute(perm, t.mss)
}

// permute rearranges s so that s[i] = old s[perm[i]].
func permute[T any](perm []int, s []T) {
	tmp := make([]T, len(s))
	for i, p := range perm {
		tmp[i] = s[p]
	}
	copy(s, tmp)
}

// tablePool recycles pktTable column storage between connections. The arena
// is NOT recycled — emitted DataEvents alias it — so release detaches it
// before pooling the numeric columns.
var tablePool = sync.Pool{New: func() any { return new(pktTable) }}

// newTable returns an empty table with whatever column capacity a previous
// connection grew.
func newTable() *pktTable {
	t := tablePool.Get().(*pktTable)
	t.times = t.times[:0]
	t.seqs = t.seqs[:0]
	t.acks = t.acks[:0]
	t.ipids = t.ipids[:0]
	t.windows = t.windows[:0]
	t.flags = t.flags[:0]
	t.dirs = t.dirs[:0]
	t.payOff = t.payOff[:0]
	t.payLen = t.payLen[:0]
	t.mss = t.mss[:0]
	t.arena = nil // previous arena belongs to the emitted events
	return t
}

// release returns a table's column storage to the pool.
func release(t *pktTable) {
	t.arena = nil
	tablePool.Put(t)
}

// rawConn accumulates packets per canonical key before orientation.
type rawConn struct {
	key Key
	tbl *pktTable
	// payload bytes seen from each endpoint
	bytesFromA, bytesFromB int64
	// synTimeA/B record each endpoint's first SYN time; synISNA/B remember
	// the SYN sequence numbers so a fresh SYN (new ISN) on a reused tuple
	// can be told apart from a retransmitted one.
	synTimeA, synTimeB Micros
	hasSynA, hasSynB   bool
	synISNA, synISNB   uint32
	hasISNA, hasISNB   bool
	sawPayload         bool
	// established marks that a non-SYN packet was captured: the tuple is
	// past connection initiation, so a later fresh SYN is a reused tuple
	// even when the incarnation's own handshake (and any payload) was
	// never captured — the truncated/no-FIN predecessor case.
	established bool
	// idx is the creation index (order of first packet); arrival is the
	// global arrival sequence of that packet; done marks a connection the
	// demuxer has already emitted.
	idx     int
	arrival int64
	done    bool
}

// Extract groups packets into connections and analyzes each with default
// options. Connections are returned in order of first packet.
func Extract(pkts []TimedPacket) []*Connection {
	return ExtractOpts(pkts, DefaultOptions())
}

// ExtractOpts is Extract with explicit classification options.
func ExtractOpts(pkts []TimedPacket, opts Options) []*Connection {
	conns, _ := ExtractOptsStats(pkts, opts)
	return conns
}

// ExtractOptsStats is ExtractOpts exposing the demuxer's degradation
// statistics (evictions, resumed connections, timestamp regressions)
// alongside the connections.
func ExtractOptsStats(pkts []TimedPacket, opts Options) ([]*Connection, DemuxStats) {
	sorted := pkts
	if !timeSorted(pkts) {
		sorted = append([]TimedPacket(nil), pkts...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	}

	byIdx := map[int]*Connection{}
	d := NewDemuxer(opts, func(idx int, c *Connection) { byIdx[idx] = c })
	for _, tp := range sorted {
		d.Add(tp)
	}
	total := d.Finish()
	out := make([]*Connection, 0, len(byIdx))
	for i := 0; i < total; i++ {
		if c := byIdx[i]; c != nil {
			out = append(out, c)
		}
	}
	return out, d.Stats()
}

// ShardOf maps a packet to one of n demux shards by a deterministic FNV-1a
// hash of its canonical connection key, so both directions of a connection
// (and every analysis run) land on the same shard. n <= 1 always returns 0.
func ShardOf(pkt *packet.Packet, n int) int {
	if n <= 1 {
		return 0
	}
	src := Endpoint{Addr: pkt.IP.Src, Port: pkt.TCP.SrcPort}
	dst := Endpoint{Addr: pkt.IP.Dst, Port: pkt.TCP.DstPort}
	k := canonicalKey(src, dst)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(e Endpoint) {
		a16 := e.Addr.As16()
		for _, b := range a16 {
			h = (h ^ uint64(b)) * prime64
		}
		h = (h ^ uint64(e.Port&0xFF)) * prime64
		h = (h ^ uint64(e.Port>>8)) * prime64
	}
	mix(k.A)
	mix(k.B)
	// FNV-1a's low-order bits avalanche poorly, so structured keys
	// (consecutive router addresses or ports) collapse onto one residue for
	// small n. Fold the high bits in before reducing.
	h ^= h >> 32
	h ^= h >> 16
	return int(h % uint64(n))
}

// timeSorted reports whether pkts is already in non-decreasing time order —
// the common case for real captures, where ExtractOptsStats skips the
// defensive copy-and-sort entirely.
func timeSorted(pkts []TimedPacket) bool {
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Time < pkts[i-1].Time {
			return false
		}
	}
	return true
}

// Demuxer incrementally groups a packet stream into TCP connections and
// emits each connection as soon as it is known to be complete, so that
// downstream analysis can overlap ingest of the rest of the trace. A
// connection completes early when a fresh SYN (new ISN) reuses its 4-tuple
// — the ISP_A-1 reset-storm pattern, where one capture holds a sequence of
// table-transfer attempts on the same port pair; everything still open
// completes at Finish.
//
// Packets should be fed in capture order (time order, as a sniffer writes
// them). Input that turns out to be time-disordered is tolerated: each
// connection's packets are re-sorted before analysis, though connection
// grouping then follows arrival order rather than time order —
// ExtractOpts pre-sorts, so the slice path is unaffected.
//
// emit runs in the caller's goroutine (inside Add or Finish) and receives
// the connection's creation index — the order of its first packet — which
// callers use to restore deterministic output order after parallel
// analysis. Finish returns the total creation count.
type Demuxer struct {
	opts     Options
	emit     func(index int, c *Connection)
	index    map[Key]*rawConn
	order    []*rawConn
	lastTime Micros
	disorder bool
	finished bool

	// stats feeds the degradation report (see Stats).
	stats DemuxStats
	// open counts tracked (un-emitted) connections for the MaxTracked cap;
	// evictScan remembers where the oldest-open scan left off so repeated
	// evictions stay amortized O(1).
	open      int
	evictScan int

	// metrics (nil handles when opts.Obs is nil — every update is a no-op)
	packetsC *obs.Counter
	openedC  *obs.Counter
	earlyC   *obs.Counter
	evictedC *obs.Counter
	resumedC *obs.Counter
	regressC *obs.Counter
}

// DemuxStats summarizes one demux run for the degradation report. On a
// clean capture everything except Packets, Opened, and EarlyEmits is zero.
type DemuxStats struct {
	// Packets is the number of packets routed.
	Packets int64
	// Opened is the number of raw connections created.
	Opened int
	// EarlyEmits counts connections completed before Finish (tuple reuse).
	EarlyEmits int
	// Evicted counts connections force-completed by the MaxTracked cap.
	Evicted int
	// Resumed counts connections restarted because packets kept arriving
	// for an already-evicted tuple; their reports cover only the tail.
	Resumed int
	// TimestampRegressions counts packets timestamped before their
	// predecessor — sniffer clock step-backs.
	TimestampRegressions int64
}

// Degraded reports whether the run saw any damage worth surfacing.
func (s DemuxStats) Degraded() bool {
	return s.Evicted > 0 || s.Resumed > 0 || s.TimestampRegressions > 0
}

// NewDemuxer creates a Demuxer that emits completed connections via emit.
func NewDemuxer(opts Options, emit func(index int, c *Connection)) *Demuxer {
	d := &Demuxer{
		opts:  opts.withDefaults(),
		emit:  emit,
		index: map[Key]*rawConn{},
	}
	if o := opts.Obs; o != nil {
		d.packetsC = o.Reg.Counter("tdat_demux_packets_total")
		d.openedC = o.Reg.Counter("tdat_demux_conns_opened_total")
		d.earlyC = o.Reg.Counter("tdat_demux_conns_early_total")
		d.evictedC = o.Reg.Counter("tdat_demux_conns_evicted_total")
		d.resumedC = o.Reg.Counter("tdat_demux_conns_resumed_total")
		d.regressC = o.Reg.Counter("tdat_demux_ts_regressions_total")
	}
	return d
}

// Stats returns the run's demux statistics (valid any time; final after
// Finish).
func (d *Demuxer) Stats() DemuxStats { return d.stats }

// newRawConn registers a fresh raw connection under key k, evicting the
// oldest tracked connection first when the MaxTracked cap is reached.
func (d *Demuxer) newRawConn(k Key, arrival int64) *rawConn {
	if max := d.opts.MaxTracked; max > 0 && d.open >= max {
		d.evictOldest()
	}
	rc := &rawConn{key: k, tbl: newTable(), idx: len(d.order), arrival: arrival}
	d.index[k] = rc
	d.order = append(d.order, rc)
	d.open++
	d.stats.Opened++
	d.openedC.Inc()
	if o := d.opts.Obs; o != nil {
		o.Progress.ConnSeen()
	}
	return rc
}

// evictOldest force-completes the oldest still-open connection so tracked
// state stays bounded on adversarial traces (a SYN flood of distinct
// tuples must not OOM the analyzer). The evicted connection's report
// covers what was captured so far; packets arriving later for its tuple
// start a fresh partial connection (counted as Resumed).
func (d *Demuxer) evictOldest() {
	for d.evictScan < len(d.order) {
		rc := d.order[d.evictScan]
		if !rc.done {
			d.stats.Evicted++
			d.evictedC.Inc()
			d.complete(rc)
			return
		}
		d.evictScan++
	}
}

// Add routes one packet to its connection, emitting any connection the
// packet proves complete. The packet (and its payload view) is fully copied
// into per-connection columnar storage before Add returns, so callers may
// reuse tp.Pkt and the buffers it aliases — the contract the zero-copy
// ingest path (pcapio.ReadInto + packet.DecodeInto) relies on.
func (d *Demuxer) Add(tp TimedPacket) {
	d.AddSeq(d.stats.Packets, tp.Time, tp.Pkt)
}

// AddSeq is Add with an explicit global arrival sequence number for the
// packet. Sharded ingest routes each packet to one of several demuxers but
// numbers packets globally at the reader, so every connection's ArrivalSeq
// reflects its position in the whole capture rather than one shard's
// substream; the unsharded path passes the demuxer's own packet count,
// which is the same thing.
func (d *Demuxer) AddSeq(seq int64, tm Micros, pkt *packet.Packet) {
	if tm < d.lastTime {
		d.disorder = true
		if !d.opts.ExternalClock {
			d.stats.TimestampRegressions++
			d.regressC.Inc()
		}
	}
	d.lastTime = tm
	d.packetsC.Inc()
	d.stats.Packets++

	src := Endpoint{Addr: pkt.IP.Src, Port: pkt.TCP.SrcPort}
	dst := Endpoint{Addr: pkt.IP.Dst, Port: pkt.TCP.DstPort}
	k := canonicalKey(src, dst)
	fromA := src == k.A
	rc, ok := d.index[k]
	if !ok {
		rc = d.newRawConn(k, seq)
	} else if rc.done {
		// The tuple's tracked connection was evicted under the MaxTracked
		// cap but traffic keeps coming: start a fresh partial connection
		// rather than silently dropping the tail.
		rc = d.newRawConn(k, seq)
		d.stats.Resumed++
		d.resumedC.Inc()
	}
	isSyn := pkt.TCP.HasFlag(packet.FlagSYN)
	freshSyn := isSyn && !pkt.TCP.HasFlag(packet.FlagACK)
	// Port reuse across session resets (the ISP_A-1 reset storm): a
	// fresh SYN with a NEW initial sequence number on a tuple that
	// already carried traffic starts a new connection; a SYN repeating
	// the same ISN is just a retransmission of the old handshake. The
	// old incarnation needs no FIN/RST boundary: payload, a recorded
	// SYN, or any established (non-SYN) traffic proves it was a distinct
	// connection — the last case covers a predecessor whose capture was
	// truncated before (or after) its handshake.
	if freshSyn && rc.tbl.n() > 0 {
		isn, seen := rc.synISN(fromA)
		if !seen || isn != pkt.TCP.Seq {
			if seen || rc.sawPayload || rc.established {
				d.complete(rc) // the old incarnation can get no more packets
				rc = d.newRawConn(k, seq)
			}
		}
	}
	if !isSyn {
		rc.established = true
	}
	if freshSyn {
		if fromA {
			if !rc.hasISNA {
				rc.synISNA, rc.hasISNA = pkt.TCP.Seq, true
			}
			if !rc.hasSynA {
				rc.synTimeA, rc.hasSynA = tm, true
			}
		} else {
			if !rc.hasISNB {
				rc.synISNB, rc.hasISNB = pkt.TCP.Seq, true
			}
			if !rc.hasSynB {
				rc.synTimeB, rc.hasSynB = tm, true
			}
		}
	}
	rc.tbl.add(tm, pkt, fromA)
	if n := int64(len(pkt.Payload)); n > 0 {
		rc.sawPayload = true
		if fromA {
			rc.bytesFromA += n
		} else {
			rc.bytesFromB += n
		}
	}
}

// synISN returns the recorded SYN sequence number for the given side.
func (rc *rawConn) synISN(fromA bool) (uint32, bool) {
	if fromA {
		return rc.synISNA, rc.hasISNA
	}
	return rc.synISNB, rc.hasISNB
}

// complete analyzes one raw connection and emits the result.
func (d *Demuxer) complete(rc *rawConn) {
	if rc.done {
		return
	}
	rc.done = true
	d.open--
	if !d.finished {
		d.stats.EarlyEmits++
		d.earlyC.Inc()
	}
	if d.disorder {
		rc.tbl.sortByTime()
	}
	if c := analyze(rc, d.opts); c != nil {
		d.emit(rc.idx, c)
	}
	release(rc.tbl) // events alias only the arena; recycle the columns
	rc.tbl = nil
}

// Finish completes every still-open connection in creation order and
// returns the total number of raw connections created. The Demuxer must
// not be used afterwards.
func (d *Demuxer) Finish() int {
	d.finished = true
	for _, rc := range d.order {
		d.complete(rc)
	}
	return len(d.order)
}

// FromPcap decodes pcap records and extracts connections. Undecodable
// records are counted and skipped (tcpdump drop artifacts).
func FromPcap(records []pcapio.Record) ([]*Connection, int) {
	var pkts []TimedPacket
	skipped := 0
	for _, r := range records {
		p, err := packet.Decode(r.Data)
		if err != nil {
			skipped++
			continue
		}
		pkts = append(pkts, TimedPacket{Time: r.TimeMicros, Pkt: p})
	}
	return Extract(pkts), skipped
}

// analyze orients a raw connection and derives events, labels, and profile.
func analyze(rc *rawConn, opts Options) *Connection {
	t := rc.tbl
	if t.n() == 0 {
		return nil
	}
	// Sender = side with most payload; tie broken toward the SYN initiator
	// (the earlier SYN when both sides sent one, A on an exact tie), then
	// endpoint order.
	sender := rc.key.A
	switch {
	case rc.bytesFromB > rc.bytesFromA:
		sender = rc.key.B
	case rc.bytesFromB == rc.bytesFromA:
		if rc.hasSynB && (!rc.hasSynA || rc.synTimeB < rc.synTimeA) {
			sender = rc.key.B
		}
	}
	senderIsA := sender == rc.key.A
	receiver := rc.key.A
	if senderIsA {
		receiver = rc.key.B
	}

	c := &Connection{Sender: sender, Receiver: receiver, arrival: rc.arrival}
	c.Profile.Start = t.times[0]
	c.Profile.End = t.times[t.n()-1]
	switch {
	case senderIsA && rc.hasSynA:
		c.Profile.InitiatorIsSender = true
		c.Profile.SynTime = rc.synTimeA
	case !senderIsA && rc.hasSynB:
		c.Profile.InitiatorIsSender = true
		c.Profile.SynTime = rc.synTimeB
	case rc.hasSynA:
		c.Profile.SynTime = rc.synTimeA
	case rc.hasSynB:
		c.Profile.SynTime = rc.synTimeB
	}

	extractISNs(c, t, senderIsA)
	buildEvents(c, t, senderIsA)
	classifyLosses(c, opts)
	estimateRTT(c)
	return c
}

// extractISNs finds initial sequence numbers and handshake timestamps.
func extractISNs(c *Connection, t *pktTable, senderIsA bool) {
	var haveSenderISN, haveReceiverISN bool
	for i := 0; i < t.n(); i++ {
		fromSender := (t.dirs[i] == 1) == senderIsA
		isSyn := t.flags[i]&packet.FlagSYN != 0
		switch {
		case isSyn && fromSender && !haveSenderISN:
			c.senderISN = t.seqs[i]
			haveSenderISN = true
			if m := t.mss[i]; m != 0 {
				c.Profile.MSS = int(m & 0xFFFF)
			}
		case isSyn && !fromSender && !haveReceiverISN:
			c.receiverISN = t.seqs[i]
			haveReceiverISN = true
			if t.flags[i]&packet.FlagACK != 0 {
				c.Profile.SynAckTime = t.times[i]
			}
			if m := t.mss[i]; m != 0 && (c.Profile.MSS == 0 || int(m&0xFFFF) < c.Profile.MSS) {
				c.Profile.MSS = int(m & 0xFFFF)
			}
		case !isSyn && haveSenderISN && haveReceiverISN && c.Profile.HandshakeAckTime == 0 &&
			fromSender && t.flags[i]&packet.FlagACK != 0 && t.payLen[i] == 0:
			c.Profile.HandshakeAckTime = t.times[i]
		}
	}
	if !haveSenderISN {
		// Mid-stream capture: anchor on the first data packet.
		for i := 0; i < t.n(); i++ {
			if (t.dirs[i] == 1) == senderIsA {
				c.senderISN = t.seqs[i] - 1
				break
			}
		}
	}
	if !haveReceiverISN {
		for i := 0; i < t.n(); i++ {
			if (t.dirs[i] == 1) != senderIsA {
				c.receiverISN = t.seqs[i] - 1
				break
			}
		}
	}
}

// relSeq converts a wire sequence number to a payload offset past isn+1.
func relSeq(seq, isn uint32) int64 { return int64(int32(seq - isn - 1)) }

// buildEvents splits packets into Data and Ack event streams. Event counts
// are known exactly from the direction/payload columns, so both slices are
// allocated once at final size.
func buildEvents(c *Connection, t *pktTable, senderIsA bool) {
	nData, nAcks := 0, 0
	for i := 0; i < t.n(); i++ {
		if (t.dirs[i] == 1) == senderIsA {
			if t.payLen[i] > 0 {
				nData++
			}
		} else {
			nAcks++
		}
	}
	if nData > 0 {
		c.Data = make([]DataEvent, 0, nData)
	}
	if nAcks > 0 {
		c.Acks = make([]AckEvent, 0, nAcks)
	}
	for i := 0; i < t.n(); i++ {
		if (t.dirs[i] == 1) == senderIsA {
			if t.payLen[i] == 0 {
				// Pure ACKs from the sender are not data events, but their
				// IP IDs anchor the silent-loss continuity scan.
				c.SenderPureAcks = append(c.SenderPureAcks,
					SenderPureAck{Time: t.times[i], IPID: t.ipids[i]})
				continue
			}
			off := relSeq(t.seqs[i], c.senderISN)
			ev := DataEvent{
				Time:    t.times[i],
				Seq:     off,
				SeqEnd:  off + int64(t.payLen[i]),
				Len:     int(t.payLen[i]),
				IPID:    t.ipids[i],
				Ack:     relSeq(t.acks[i], c.receiverISN),
				Window:  int(t.windows[i]),
				Payload: t.payload(i),
			}
			c.Data = append(c.Data, ev)
			c.Profile.TotalDataPackets++
			c.Profile.TotalDataBytes += int64(ev.Len)
		} else {
			ack := relSeq(t.acks[i], c.senderISN)
			ev := AckEvent{
				Time:       t.times[i],
				Ack:        ack,
				Window:     int(t.windows[i]),
				PayloadLen: int(t.payLen[i]),
			}
			if n := len(c.Acks); n > 0 {
				prev := c.Acks[n-1]
				ev.Dup = ev.PayloadLen == 0 && prev.Ack == ack && prev.Window == ev.Window &&
					t.flags[i]&(packet.FlagSYN|packet.FlagFIN) == 0
			}
			c.Acks = append(c.Acks, ev)
			if ev.Window > c.Profile.MaxAdvWindow {
				c.Profile.MaxAdvWindow = ev.Window
			}
		}
	}
	if c.Profile.MSS == 0 {
		for _, d := range c.Data {
			if d.Len > c.Profile.MSS {
				c.Profile.MSS = d.Len
			}
		}
	}
}

// estimateRTT derives the sender-perceived RTT. At a receiver-side sniffer
// the SYNACK→handshake-ACK spacing covers one full round trip; when the
// handshake is missing we fall back to the median delay between an ACK and
// the next new data it released.
func estimateRTT(c *Connection) {
	if c.Profile.SynAckTime > 0 && c.Profile.HandshakeAckTime > c.Profile.SynAckTime {
		c.Profile.RTT = c.Profile.HandshakeAckTime - c.Profile.SynAckTime
		return
	}
	// Fallback: ack → next new-data arrival.
	var samples []Micros
	di := 0
	for _, a := range c.Acks {
		if a.Dup {
			continue
		}
		for di < len(c.Data) && c.Data[di].Time <= a.Time {
			di++
		}
		for j := di; j < len(c.Data) && j < di+4; j++ {
			if c.Data[j].Kind == DataNew && c.Data[j].Seq >= a.Ack {
				samples = append(samples, c.Data[j].Time-a.Time)
				break
			}
		}
	}
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	c.Profile.RTT = samples[len(samples)/2]
}

// Package flows extracts TCP connections from timestamped packet captures
// and derives the per-connection information T-DAT needs — the role
// tcptrace plays in the paper's pipeline (§III-B): connection profiles
// (start/end, RTT, MSS, maximum advertised window) and per-packet labels
// (retransmission, out-of-sequence gap fill, reordering), plus the
// upstream/downstream loss classification of §II-B2.
package flows

import (
	"fmt"
	"net/netip"
	"sort"

	"tdat/internal/obs"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// TimedPacket is one captured packet with its sniffer timestamp.
type TimedPacket struct {
	Time Micros
	Pkt  *packet.Packet
}

// Endpoint identifies one side of a connection.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

// String implements fmt.Stringer.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Key identifies a connection by its two endpoints in a canonical order.
type Key struct {
	A, B Endpoint
}

// canonicalKey orders the endpoints deterministically.
func canonicalKey(src, dst Endpoint) Key {
	if src.Addr.Compare(dst.Addr) < 0 ||
		(src.Addr == dst.Addr && src.Port < dst.Port) {
		return Key{A: src, B: dst}
	}
	return Key{A: dst, B: src}
}

// DataKind labels a data-direction packet.
type DataKind int

// Data packet classifications.
const (
	// DataNew advances the stream with bytes never captured before.
	DataNew DataKind = iota
	// DataRetransmit carries bytes the sniffer already saw: the original
	// reached the sniffer, so the loss (or its ACK's loss) happened
	// downstream of it (paper Fig 7).
	DataRetransmit
	// DataGapFill carries bytes never captured that sit below the highest
	// sequence seen: the original was lost upstream of the sniffer
	// (paper Fig 8).
	DataGapFill
	// DataReordered is a gap fill attributable to in-network reordering
	// rather than loss (filtered per Jaiswal et al. [17]).
	DataReordered
)

// String implements fmt.Stringer.
func (k DataKind) String() string {
	switch k {
	case DataNew:
		return "new"
	case DataRetransmit:
		return "retransmit"
	case DataGapFill:
		return "gap-fill"
	case DataReordered:
		return "reordered"
	default:
		return "unknown"
	}
}

// DataEvent is one sender→receiver payload (or SYN/FIN) packet.
type DataEvent struct {
	Time Micros
	// Seq and SeqEnd are payload offsets relative to the sender's ISN+1.
	Seq, SeqEnd int64
	Len         int
	IPID        uint16
	Kind        DataKind
	// Ack and Window echo the piggybacked acknowledgment state.
	Ack    int64
	Window int
	// Payload references the captured bytes (nil for length-only traces);
	// reassembly uses it to reconstruct the BGP stream.
	Payload []byte
}

// AckEvent is one receiver→sender packet (pure ACK or receiver data).
type AckEvent struct {
	Time Micros
	// Ack is the cumulative acknowledgment as a sender-stream offset.
	Ack    int64
	Window int
	// Dup marks a duplicate ACK (same ack, no payload, no window change).
	Dup bool
	// PayloadLen is the receiver's own payload (keepalives etc.).
	PayloadLen int
}

// Profile summarizes connection-level parameters (the tcptrace output the
// analyzer consumes).
type Profile struct {
	Start Micros // first packet (SYN) time
	End   Micros // last packet time
	// RTT is the estimated sender-perceived round-trip time.
	RTT Micros
	// MSS is from the SYN options, or the largest observed segment.
	MSS int
	// MaxAdvWindow is the receiver's largest advertised window.
	MaxAdvWindow int
	// SynTime/SynAckTime/AckTime record the handshake at the sniffer.
	SynTime, SynAckTime, HandshakeAckTime Micros
	// Initiator reports whether the data sender also sent the first SYN.
	InitiatorIsSender bool

	TotalDataBytes   int64
	TotalDataPackets int
	RetransmitCount  int
	GapFillCount     int
	ReorderCount     int
}

// Connection is one extracted TCP connection oriented so that Sender is the
// side contributing the bulk of the payload (the operational router in the
// paper's setting).
type Connection struct {
	Sender   Endpoint
	Receiver Endpoint
	Profile  Profile

	// Data are the Sender→Receiver packets in time order.
	Data []DataEvent
	// Acks are the Receiver→Sender packets in time order.
	Acks []AckEvent

	// UpstreamLoss and DownstreamLoss are the recovery periods attributed
	// to losses before and after the sniffer respectively (§II-B2).
	UpstreamLoss   *timerange.Set
	DownstreamLoss *timerange.Set

	// senderISN anchors relative sequence numbers.
	senderISN   uint32
	receiverISN uint32
}

// Span returns the connection's observation window.
func (c *Connection) Span() timerange.Range {
	return timerange.Range{Start: c.Profile.Start, End: c.Profile.End + 1}
}

// rawConn accumulates packets per canonical key before orientation.
type rawConn struct {
	key     Key
	packets []TimedPacket
	// payload bytes seen from each endpoint
	bytesFromA, bytesFromB int64
	synFrom                map[Endpoint]Micros
	// synISN remembers each endpoint's SYN sequence number so a fresh SYN
	// (new ISN) on a reused tuple can be told apart from a retransmitted
	// one.
	synISN     map[Endpoint]uint32
	sawPayload bool
	// established marks that a non-SYN packet was captured: the tuple is
	// past connection initiation, so a later fresh SYN is a reused tuple
	// even when the incarnation's own handshake (and any payload) was
	// never captured — the truncated/no-FIN predecessor case.
	established bool
	// idx is the creation index (order of first packet); done marks a
	// connection the demuxer has already emitted.
	idx  int
	done bool
}

// Extract groups packets into connections and analyzes each with default
// options. Connections are returned in order of first packet.
func Extract(pkts []TimedPacket) []*Connection {
	return ExtractOpts(pkts, DefaultOptions())
}

// ExtractOpts is Extract with explicit classification options.
func ExtractOpts(pkts []TimedPacket, opts Options) []*Connection {
	conns, _ := ExtractOptsStats(pkts, opts)
	return conns
}

// ExtractOptsStats is ExtractOpts exposing the demuxer's degradation
// statistics (evictions, resumed connections, timestamp regressions)
// alongside the connections.
func ExtractOptsStats(pkts []TimedPacket, opts Options) ([]*Connection, DemuxStats) {
	sorted := append([]TimedPacket(nil), pkts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	byIdx := map[int]*Connection{}
	d := NewDemuxer(opts, func(idx int, c *Connection) { byIdx[idx] = c })
	for _, tp := range sorted {
		d.Add(tp)
	}
	total := d.Finish()
	out := make([]*Connection, 0, len(byIdx))
	for i := 0; i < total; i++ {
		if c := byIdx[i]; c != nil {
			out = append(out, c)
		}
	}
	return out, d.Stats()
}

// Demuxer incrementally groups a packet stream into TCP connections and
// emits each connection as soon as it is known to be complete, so that
// downstream analysis can overlap ingest of the rest of the trace. A
// connection completes early when a fresh SYN (new ISN) reuses its 4-tuple
// — the ISP_A-1 reset-storm pattern, where one capture holds a sequence of
// table-transfer attempts on the same port pair; everything still open
// completes at Finish.
//
// Packets should be fed in capture order (time order, as a sniffer writes
// them). Input that turns out to be time-disordered is tolerated: each
// connection's packets are re-sorted before analysis, though connection
// grouping then follows arrival order rather than time order —
// ExtractOpts pre-sorts, so the slice path is unaffected.
//
// emit runs in the caller's goroutine (inside Add or Finish) and receives
// the connection's creation index — the order of its first packet — which
// callers use to restore deterministic output order after parallel
// analysis. Finish returns the total creation count.
type Demuxer struct {
	opts     Options
	emit     func(index int, c *Connection)
	index    map[Key]*rawConn
	order    []*rawConn
	lastTime Micros
	disorder bool
	finished bool

	// stats feeds the degradation report (see Stats).
	stats DemuxStats
	// open counts tracked (un-emitted) connections for the MaxTracked cap;
	// evictScan remembers where the oldest-open scan left off so repeated
	// evictions stay amortized O(1).
	open      int
	evictScan int

	// metrics (nil handles when opts.Obs is nil — every update is a no-op)
	packetsC *obs.Counter
	openedC  *obs.Counter
	earlyC   *obs.Counter
	evictedC *obs.Counter
	resumedC *obs.Counter
	regressC *obs.Counter
}

// DemuxStats summarizes one demux run for the degradation report. On a
// clean capture everything except Packets, Opened, and EarlyEmits is zero.
type DemuxStats struct {
	// Packets is the number of packets routed.
	Packets int64
	// Opened is the number of raw connections created.
	Opened int
	// EarlyEmits counts connections completed before Finish (tuple reuse).
	EarlyEmits int
	// Evicted counts connections force-completed by the MaxTracked cap.
	Evicted int
	// Resumed counts connections restarted because packets kept arriving
	// for an already-evicted tuple; their reports cover only the tail.
	Resumed int
	// TimestampRegressions counts packets timestamped before their
	// predecessor — sniffer clock step-backs.
	TimestampRegressions int64
}

// Degraded reports whether the run saw any damage worth surfacing.
func (s DemuxStats) Degraded() bool {
	return s.Evicted > 0 || s.Resumed > 0 || s.TimestampRegressions > 0
}

// NewDemuxer creates a Demuxer that emits completed connections via emit.
func NewDemuxer(opts Options, emit func(index int, c *Connection)) *Demuxer {
	d := &Demuxer{
		opts:  opts.withDefaults(),
		emit:  emit,
		index: map[Key]*rawConn{},
	}
	if o := opts.Obs; o != nil {
		d.packetsC = o.Reg.Counter("tdat_demux_packets_total")
		d.openedC = o.Reg.Counter("tdat_demux_conns_opened_total")
		d.earlyC = o.Reg.Counter("tdat_demux_conns_early_total")
		d.evictedC = o.Reg.Counter("tdat_demux_conns_evicted_total")
		d.resumedC = o.Reg.Counter("tdat_demux_conns_resumed_total")
		d.regressC = o.Reg.Counter("tdat_demux_ts_regressions_total")
	}
	return d
}

// Stats returns the run's demux statistics (valid any time; final after
// Finish).
func (d *Demuxer) Stats() DemuxStats { return d.stats }

// newRawConn registers a fresh raw connection under key k, evicting the
// oldest tracked connection first when the MaxTracked cap is reached.
func (d *Demuxer) newRawConn(k Key) *rawConn {
	if max := d.opts.MaxTracked; max > 0 && d.open >= max {
		d.evictOldest()
	}
	rc := &rawConn{key: k, synFrom: map[Endpoint]Micros{}, idx: len(d.order)}
	d.index[k] = rc
	d.order = append(d.order, rc)
	d.open++
	d.stats.Opened++
	d.openedC.Inc()
	if o := d.opts.Obs; o != nil {
		o.Progress.ConnSeen()
	}
	return rc
}

// evictOldest force-completes the oldest still-open connection so tracked
// state stays bounded on adversarial traces (a SYN flood of distinct
// tuples must not OOM the analyzer). The evicted connection's report
// covers what was captured so far; packets arriving later for its tuple
// start a fresh partial connection (counted as Resumed).
func (d *Demuxer) evictOldest() {
	for d.evictScan < len(d.order) {
		rc := d.order[d.evictScan]
		if !rc.done {
			d.stats.Evicted++
			d.evictedC.Inc()
			d.complete(rc)
			return
		}
		d.evictScan++
	}
}

// Add routes one packet to its connection, emitting any connection the
// packet proves complete.
func (d *Demuxer) Add(tp TimedPacket) {
	if tp.Time < d.lastTime {
		d.disorder = true
		d.stats.TimestampRegressions++
		d.regressC.Inc()
	}
	d.lastTime = tp.Time
	d.packetsC.Inc()
	d.stats.Packets++

	src := Endpoint{Addr: tp.Pkt.IP.Src, Port: tp.Pkt.TCP.SrcPort}
	dst := Endpoint{Addr: tp.Pkt.IP.Dst, Port: tp.Pkt.TCP.DstPort}
	k := canonicalKey(src, dst)
	rc, ok := d.index[k]
	if !ok {
		rc = d.newRawConn(k)
	} else if rc.done {
		// The tuple's tracked connection was evicted under the MaxTracked
		// cap but traffic keeps coming: start a fresh partial connection
		// rather than silently dropping the tail.
		rc = d.newRawConn(k)
		d.stats.Resumed++
		d.resumedC.Inc()
	}
	// Port reuse across session resets (the ISP_A-1 reset storm): a
	// fresh SYN with a NEW initial sequence number on a tuple that
	// already carried traffic starts a new connection; a SYN repeating
	// the same ISN is just a retransmission of the old handshake. The
	// old incarnation needs no FIN/RST boundary: payload, a recorded
	// SYN, or any established (non-SYN) traffic proves it was a distinct
	// connection — the last case covers a predecessor whose capture was
	// truncated before (or after) its handshake.
	if tp.Pkt.TCP.HasFlag(packet.FlagSYN) && !tp.Pkt.TCP.HasFlag(packet.FlagACK) &&
		len(rc.packets) > 0 {
		if isn, seen := rc.synISN[src]; !seen || isn != tp.Pkt.TCP.Seq {
			if seen || rc.sawPayload || rc.established {
				d.complete(rc) // the old incarnation can get no more packets
				rc = d.newRawConn(k)
			}
		}
	}
	if !tp.Pkt.TCP.HasFlag(packet.FlagSYN) {
		rc.established = true
	}
	if tp.Pkt.TCP.HasFlag(packet.FlagSYN) && !tp.Pkt.TCP.HasFlag(packet.FlagACK) {
		if rc.synISN == nil {
			rc.synISN = map[Endpoint]uint32{}
		}
		if _, seen := rc.synISN[src]; !seen {
			rc.synISN[src] = tp.Pkt.TCP.Seq
		}
	}
	rc.packets = append(rc.packets, tp)
	if n := int64(len(tp.Pkt.Payload)); n > 0 {
		rc.sawPayload = true
		if src == k.A {
			rc.bytesFromA += n
		} else {
			rc.bytesFromB += n
		}
	}
	if tp.Pkt.TCP.HasFlag(packet.FlagSYN) && !tp.Pkt.TCP.HasFlag(packet.FlagACK) {
		if _, seen := rc.synFrom[src]; !seen {
			rc.synFrom[src] = tp.Time
		}
	}
}

// complete analyzes one raw connection and emits the result.
func (d *Demuxer) complete(rc *rawConn) {
	if rc.done {
		return
	}
	rc.done = true
	d.open--
	if !d.finished {
		d.stats.EarlyEmits++
		d.earlyC.Inc()
	}
	if d.disorder {
		sort.SliceStable(rc.packets, func(i, j int) bool {
			return rc.packets[i].Time < rc.packets[j].Time
		})
	}
	if c := analyze(rc, d.opts); c != nil {
		d.emit(rc.idx, c)
	}
	rc.packets = nil // analysis holds what it needs; free the raw buffer
}

// Finish completes every still-open connection in creation order and
// returns the total number of raw connections created. The Demuxer must
// not be used afterwards.
func (d *Demuxer) Finish() int {
	d.finished = true
	for _, rc := range d.order {
		d.complete(rc)
	}
	return len(d.order)
}

// FromPcap decodes pcap records and extracts connections. Undecodable
// records are counted and skipped (tcpdump drop artifacts).
func FromPcap(records []pcapio.Record) ([]*Connection, int) {
	var pkts []TimedPacket
	skipped := 0
	for _, r := range records {
		p, err := packet.Decode(r.Data)
		if err != nil {
			skipped++
			continue
		}
		pkts = append(pkts, TimedPacket{Time: r.TimeMicros, Pkt: p})
	}
	return Extract(pkts), skipped
}

// analyze orients a raw connection and derives events, labels, and profile.
func analyze(rc *rawConn, opts Options) *Connection {
	if len(rc.packets) == 0 {
		return nil
	}
	// Sender = side with most payload; tie broken toward the SYN initiator,
	// then endpoint order.
	sender := rc.key.A
	switch {
	case rc.bytesFromB > rc.bytesFromA:
		sender = rc.key.B
	case rc.bytesFromB == rc.bytesFromA:
		for ep := range rc.synFrom {
			sender = ep
			break
		}
		if len(rc.synFrom) > 1 {
			// Both sent SYNs (normal): the earlier SYN wins.
			var first Endpoint
			var firstT Micros = timerange.MaxTime
			for ep, t := range rc.synFrom {
				if t < firstT {
					first, firstT = ep, t
				}
			}
			sender = first
		}
	}
	receiver := rc.key.A
	if sender == rc.key.A {
		receiver = rc.key.B
	}

	c := &Connection{Sender: sender, Receiver: receiver}
	c.Profile.Start = rc.packets[0].Time
	c.Profile.End = rc.packets[len(rc.packets)-1].Time
	if t, ok := rc.synFrom[sender]; ok {
		c.Profile.InitiatorIsSender = true
		c.Profile.SynTime = t
	} else if len(rc.synFrom) > 0 {
		for _, t := range rc.synFrom {
			c.Profile.SynTime = t
		}
	}

	extractISNs(c, rc.packets)
	buildEvents(c, rc.packets)
	classifyLosses(c, opts)
	estimateRTT(c, rc.packets)
	return c
}

// extractISNs finds initial sequence numbers and handshake timestamps.
func extractISNs(c *Connection, pkts []TimedPacket) {
	var haveSenderISN, haveReceiverISN bool
	for _, tp := range pkts {
		tcp := &tp.Pkt.TCP
		src := Endpoint{Addr: tp.Pkt.IP.Src, Port: tcp.SrcPort}
		isSyn := tcp.HasFlag(packet.FlagSYN)
		switch {
		case isSyn && src == c.Sender && !haveSenderISN:
			c.senderISN = tcp.Seq
			haveSenderISN = true
			if mss, ok := tcp.MSS(); ok {
				c.Profile.MSS = int(mss)
			}
		case isSyn && src == c.Receiver && !haveReceiverISN:
			c.receiverISN = tcp.Seq
			haveReceiverISN = true
			if tcp.HasFlag(packet.FlagACK) {
				c.Profile.SynAckTime = tp.Time
			}
			if mss, ok := tcp.MSS(); ok && (c.Profile.MSS == 0 || int(mss) < c.Profile.MSS) {
				c.Profile.MSS = int(mss)
			}
		case !isSyn && haveSenderISN && haveReceiverISN && c.Profile.HandshakeAckTime == 0 &&
			src == c.Sender && tcp.HasFlag(packet.FlagACK) && len(tp.Pkt.Payload) == 0:
			c.Profile.HandshakeAckTime = tp.Time
		}
	}
	if !haveSenderISN {
		// Mid-stream capture: anchor on the first data packet.
		for _, tp := range pkts {
			if (Endpoint{Addr: tp.Pkt.IP.Src, Port: tp.Pkt.TCP.SrcPort}) == c.Sender {
				c.senderISN = tp.Pkt.TCP.Seq - 1
				break
			}
		}
	}
	if !haveReceiverISN {
		for _, tp := range pkts {
			if (Endpoint{Addr: tp.Pkt.IP.Src, Port: tp.Pkt.TCP.SrcPort}) == c.Receiver {
				c.receiverISN = tp.Pkt.TCP.Seq - 1
				break
			}
		}
	}
}

// relSeq converts a wire sequence number to a payload offset past isn+1.
func relSeq(seq, isn uint32) int64 { return int64(int32(seq - isn - 1)) }

// buildEvents splits packets into Data and Ack event streams.
func buildEvents(c *Connection, pkts []TimedPacket) {
	for _, tp := range pkts {
		tcp := &tp.Pkt.TCP
		src := Endpoint{Addr: tp.Pkt.IP.Src, Port: tcp.SrcPort}
		if src == c.Sender {
			if len(tp.Pkt.Payload) == 0 {
				continue // pure ACKs from the sender are not data events
			}
			off := relSeq(tcp.Seq, c.senderISN)
			ev := DataEvent{
				Time:    tp.Time,
				Seq:     off,
				SeqEnd:  off + int64(len(tp.Pkt.Payload)),
				Len:     len(tp.Pkt.Payload),
				IPID:    tp.Pkt.IP.ID,
				Ack:     relSeq(tcp.Ack, c.receiverISN),
				Window:  int(tcp.Window),
				Payload: tp.Pkt.Payload,
			}
			c.Data = append(c.Data, ev)
			c.Profile.TotalDataPackets++
			c.Profile.TotalDataBytes += int64(ev.Len)
		} else {
			ack := relSeq(tcp.Ack, c.senderISN)
			ev := AckEvent{
				Time:       tp.Time,
				Ack:        ack,
				Window:     int(tcp.Window),
				PayloadLen: len(tp.Pkt.Payload),
			}
			if n := len(c.Acks); n > 0 {
				prev := c.Acks[n-1]
				ev.Dup = ev.PayloadLen == 0 && prev.Ack == ack && prev.Window == ev.Window &&
					!tcp.HasFlag(packet.FlagSYN) && !tcp.HasFlag(packet.FlagFIN)
			}
			c.Acks = append(c.Acks, ev)
			if ev.Window > c.Profile.MaxAdvWindow {
				c.Profile.MaxAdvWindow = ev.Window
			}
		}
	}
	if c.Profile.MSS == 0 {
		for _, d := range c.Data {
			if d.Len > c.Profile.MSS {
				c.Profile.MSS = d.Len
			}
		}
	}
}

// estimateRTT derives the sender-perceived RTT. At a receiver-side sniffer
// the SYNACK→handshake-ACK spacing covers one full round trip; when the
// handshake is missing we fall back to the median delay between an ACK and
// the next new data it released.
func estimateRTT(c *Connection, pkts []TimedPacket) {
	if c.Profile.SynAckTime > 0 && c.Profile.HandshakeAckTime > c.Profile.SynAckTime {
		c.Profile.RTT = c.Profile.HandshakeAckTime - c.Profile.SynAckTime
		return
	}
	// Fallback: ack → next new-data arrival.
	var samples []Micros
	di := 0
	for _, a := range c.Acks {
		if a.Dup {
			continue
		}
		for di < len(c.Data) && c.Data[di].Time <= a.Time {
			di++
		}
		for j := di; j < len(c.Data) && j < di+4; j++ {
			if c.Data[j].Kind == DataNew && c.Data[j].Seq >= a.Ack {
				samples = append(samples, c.Data[j].Time-a.Time)
				break
			}
		}
	}
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	c.Profile.RTT = samples[len(samples)/2]
}

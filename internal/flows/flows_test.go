package flows

import (
	"net/netip"
	"testing"

	"tdat/internal/packet"
)

var (
	senderEP   = Endpoint{Addr: netip.MustParseAddr("10.0.0.1"), Port: 179}
	receiverEP = Endpoint{Addr: netip.MustParseAddr("10.0.0.2"), Port: 41000}
)

// builder assembles a synthetic capture of one connection.
type builder struct {
	pkts []TimedPacket
	ipid uint16
}

func (b *builder) add(t Micros, from, to Endpoint, seq, ack uint32, flags uint8, win uint16, payload int) *packet.Packet {
	b.ipid++
	p := &packet.Packet{
		IP: packet.IPv4{ID: b.ipid, Src: from.Addr, Dst: to.Addr},
		TCP: packet.TCP{
			SrcPort: from.Port, DstPort: to.Port,
			Seq: seq, Ack: ack, Flags: flags, Window: win,
		},
		Payload: make([]byte, payload),
	}
	b.pkts = append(b.pkts, TimedPacket{Time: t, Pkt: p})
	return p
}

// handshake emits SYN / SYNACK / ACK with the given ISNs and RTT pattern for
// a receiver-side sniffer: SYN at t, SYNACK at t+d1, final ACK at
// t+d1+rtt.
func (b *builder) handshake(t Micros, rtt Micros, sISN, rISN uint32, mss uint16) {
	syn := b.add(t, senderEP, receiverEP, sISN, 0, packet.FlagSYN, 65535, 0)
	syn.TCP.SetMSS(mss)
	synack := b.add(t+100, receiverEP, senderEP, rISN, sISN+1, packet.FlagSYN|packet.FlagACK, 65535, 0)
	synack.TCP.SetMSS(mss)
	b.add(t+100+rtt, senderEP, receiverEP, sISN+1, rISN+1, packet.FlagACK, 65535, 0)
}

func TestExtractSingleConnectionProfile(t *testing.T) {
	b := &builder{}
	b.handshake(1000, 10_000, 5000, 9000, 1460)
	// Two data segments, acked.
	b.add(20_000, senderEP, receiverEP, 5001, 9001, packet.FlagACK, 65535, 1460)
	b.add(20_100, senderEP, receiverEP, 6461, 9001, packet.FlagACK, 65535, 1000)
	b.add(20_500, receiverEP, senderEP, 9001, 7461, packet.FlagACK, 60000, 0)

	conns := Extract(b.pkts)
	if len(conns) != 1 {
		t.Fatalf("extracted %d connections", len(conns))
	}
	c := conns[0]
	if c.Sender != senderEP || c.Receiver != receiverEP {
		t.Errorf("orientation: sender=%v receiver=%v", c.Sender, c.Receiver)
	}
	if c.Profile.RTT != 10_000 {
		t.Errorf("RTT = %d, want 10000", c.Profile.RTT)
	}
	if c.Profile.MSS != 1460 {
		t.Errorf("MSS = %d", c.Profile.MSS)
	}
	if c.Profile.MaxAdvWindow != 65535 {
		t.Errorf("MaxAdvWindow = %d", c.Profile.MaxAdvWindow)
	}
	if !c.Profile.InitiatorIsSender {
		t.Error("initiator should be the sender")
	}
	if len(c.Data) != 2 {
		t.Fatalf("data events = %d", len(c.Data))
	}
	if c.Data[0].Seq != 0 || c.Data[0].SeqEnd != 1460 {
		t.Errorf("first data offsets = [%d,%d)", c.Data[0].Seq, c.Data[0].SeqEnd)
	}
	if c.Data[1].Seq != 1460 || c.Data[1].SeqEnd != 2460 {
		t.Errorf("second data offsets = [%d,%d)", c.Data[1].Seq, c.Data[1].SeqEnd)
	}
	if len(c.Acks) != 2 { // SYNACK + the data ack (sender-side packets are not ack events)
		t.Fatalf("ack events = %d: %+v", len(c.Acks), c.Acks)
	}
	last := c.Acks[len(c.Acks)-1]
	if last.Ack != 2460 || last.Window != 60000 {
		t.Errorf("last ack = %+v", last)
	}
	if c.Profile.TotalDataBytes != 2460 || c.Profile.TotalDataPackets != 2 {
		t.Errorf("profile totals = %+v", c.Profile)
	}
}

func TestExtractSeparatesConnections(t *testing.T) {
	b := &builder{}
	b.handshake(0, 5_000, 100, 200, 1460)
	other := Endpoint{Addr: netip.MustParseAddr("10.0.0.3"), Port: 179}
	b.add(50, other, receiverEP, 1, 0, packet.FlagSYN, 65535, 0)
	b.add(60, receiverEP, other, 1, 2, packet.FlagSYN|packet.FlagACK, 65535, 0)
	conns := Extract(b.pkts)
	if len(conns) != 2 {
		t.Fatalf("extracted %d connections, want 2", len(conns))
	}
}

func TestRetransmissionDownstreamLoss(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	// Original captured at 20ms, retransmission of same bytes at 250ms.
	b.add(20_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	b.add(250_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	c := Extract(b.pkts)[0]
	if c.Data[0].Kind != DataNew || c.Data[1].Kind != DataRetransmit {
		t.Errorf("kinds = %v, %v", c.Data[0].Kind, c.Data[1].Kind)
	}
	if c.Profile.RetransmitCount != 1 {
		t.Errorf("RetransmitCount = %d", c.Profile.RetransmitCount)
	}
	if c.DownstreamLoss.Empty() {
		t.Fatal("no downstream loss recorded")
	}
	r := c.DownstreamLoss.At(0)
	if r.Start != 20_000 || r.End < 250_000 {
		t.Errorf("downstream recovery range = %v", r)
	}
	if !c.UpstreamLoss.Empty() {
		t.Errorf("unexpected upstream loss %v", c.UpstreamLoss)
	}
}

func TestGapFillUpstreamLoss(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	// Segment 2 arrives (opening a gap for segment 1), repair much later
	// with a HIGHER IP ID (true retransmission).
	b.add(20_000, senderEP, receiverEP, 1461, 1, packet.FlagACK, 65535, 1460)
	b.add(250_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	c := Extract(b.pkts)[0]
	if c.Data[1].Kind != DataGapFill {
		t.Errorf("repair kind = %v, want gap-fill", c.Data[1].Kind)
	}
	if c.UpstreamLoss.Empty() {
		t.Fatal("no upstream loss recorded")
	}
	r := c.UpstreamLoss.At(0)
	if r.Start != 20_000 || r.End < 250_000 {
		t.Errorf("upstream recovery range = %v", r)
	}
	if !c.DownstreamLoss.Empty() {
		t.Errorf("unexpected downstream loss %v", c.DownstreamLoss)
	}
}

func TestReorderingFilteredByIPID(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	// Build the late packet FIRST so it carries the lower IP ID, then swap
	// arrival order: seg1 (low ID) arrives after seg2 (high ID) — classic
	// reordering.
	seg1 := b.add(20_500, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	seg2 := b.add(20_000, senderEP, receiverEP, 1461, 1, packet.FlagACK, 65535, 1460)
	_ = seg1
	_ = seg2
	c := Extract(b.pkts)[0]
	var fill *DataEvent
	for i := range c.Data {
		if c.Data[i].Seq == 0 {
			fill = &c.Data[i]
		}
	}
	if fill == nil || fill.Kind != DataReordered {
		t.Errorf("reordered packet classified as %v", fill.Kind)
	}
	if !c.UpstreamLoss.Empty() {
		t.Errorf("reordering should not create loss ranges: %v", c.UpstreamLoss)
	}
	if c.Profile.ReorderCount != 1 {
		t.Errorf("ReorderCount = %d", c.Profile.ReorderCount)
	}
}

func TestDisableReorderFilterAblation(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	b.add(20_500, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	b.add(20_000, senderEP, receiverEP, 1461, 1, packet.FlagACK, 65535, 1460)
	conns := ExtractOpts(b.pkts, Options{DisableReorderFilter: true})
	if conns[0].UpstreamLoss.Empty() {
		t.Error("with the filter disabled, reordering must count as upstream loss")
	}
}

func TestDupAckDetection(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	b.add(20_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	b.add(21_000, receiverEP, senderEP, 1, 1461, packet.FlagACK, 64000, 0)
	b.add(22_000, receiverEP, senderEP, 1, 1461, packet.FlagACK, 64000, 0) // dup
	b.add(23_000, receiverEP, senderEP, 1, 1461, packet.FlagACK, 60000, 0) // window update, not dup
	c := Extract(b.pkts)[0]
	var dups int
	for _, a := range c.Acks {
		if a.Dup {
			dups++
		}
	}
	if dups != 1 {
		t.Errorf("dup acks = %d, want 1", dups)
	}
}

func TestOrientationByVolumeWithoutSyn(t *testing.T) {
	// Mid-stream capture, no handshake: the payload-heavy side is Sender.
	b := &builder{}
	b.add(0, receiverEP, senderEP, 900, 5001, packet.FlagACK, 65535, 0)
	b.add(100, senderEP, receiverEP, 5001, 901, packet.FlagACK, 65535, 1000)
	b.add(200, senderEP, receiverEP, 6001, 901, packet.FlagACK, 65535, 1000)
	c := Extract(b.pkts)[0]
	if c.Sender != senderEP {
		t.Errorf("sender = %v", c.Sender)
	}
	if len(c.Data) != 2 {
		t.Errorf("data events = %d", len(c.Data))
	}
	// Relative offsets anchored at first data packet.
	if c.Data[0].Seq != 0 {
		t.Errorf("first data seq = %d", c.Data[0].Seq)
	}
	if c.Profile.RTT == 0 {
		// RTT fallback may or may not produce a sample here; just ensure no
		// panic. Nothing to assert strictly.
		t.Log("no RTT estimate for handshake-less capture (acceptable)")
	}
}

func TestMSSFallbackFromSegments(t *testing.T) {
	b := &builder{}
	// No SYN options: MSS inferred from the largest segment.
	b.add(0, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 536)
	b.add(100, senderEP, receiverEP, 537, 1, packet.FlagACK, 65535, 512)
	c := Extract(b.pkts)[0]
	if c.Profile.MSS != 536 {
		t.Errorf("MSS = %d, want 536", c.Profile.MSS)
	}
}

func TestConsecutiveRetransmissionsMergeRanges(t *testing.T) {
	b := &builder{}
	b.handshake(0, 10_000, 0, 0, 1460)
	b.add(20_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	// Three RTO-spaced retransmissions of the same segment.
	b.add(220_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	b.add(620_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	b.add(1_420_000, senderEP, receiverEP, 1, 1, packet.FlagACK, 65535, 1460)
	c := Extract(b.pkts)[0]
	if c.Profile.RetransmitCount != 3 {
		t.Errorf("retransmits = %d", c.Profile.RetransmitCount)
	}
	if c.DownstreamLoss.Len() != 1 {
		t.Fatalf("expected one merged recovery range, got %v", c.DownstreamLoss)
	}
	r := c.DownstreamLoss.At(0)
	if r.Start != 20_000 || r.End < 1_420_000 {
		t.Errorf("merged range = %v", r)
	}
}

func TestSpanAndEndpointString(t *testing.T) {
	b := &builder{}
	b.handshake(5_000, 10_000, 0, 0, 1460)
	c := Extract(b.pkts)[0]
	sp := c.Span()
	if sp.Start != 5_000 || sp.End <= sp.Start {
		t.Errorf("span = %v", sp)
	}
	if senderEP.String() != "10.0.0.1:179" {
		t.Errorf("endpoint string = %q", senderEP.String())
	}
}

func TestDataKindString(t *testing.T) {
	for k, want := range map[DataKind]string{
		DataNew: "new", DataRetransmit: "retransmit", DataGapFill: "gap-fill",
		DataReordered: "reordered", DataKind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("DataKind(%d) = %q", k, k.String())
		}
	}
}

func TestPortReuseSplitsConnections(t *testing.T) {
	// The ISP_A-1 reset storm: a session dies by RST and the router redials
	// with the SAME 4-tuple. A fresh SYN (new ISN) must start a second
	// connection instead of corrupting the first one's sequence space.
	b := &builder{}
	b.handshake(0, 10_000, 1000, 2000, 1460)
	b.add(20_000, senderEP, receiverEP, 1001, 2001, packet.FlagACK, 65535, 1460)
	b.add(30_000, receiverEP, senderEP, 2001, 2461, packet.FlagACK, 65535, 0)
	b.add(40_000, senderEP, receiverEP, 2461, 2001, packet.FlagRST|packet.FlagACK, 0, 0)
	// Redial: same tuple, brand-new ISNs.
	b.handshake(1_000_000, 10_000, 777000, 888000, 1460)
	b.add(1_020_000, senderEP, receiverEP, 777001, 888001, packet.FlagACK, 65535, 1460)
	b.add(1_030_000, receiverEP, senderEP, 888001, 778461, packet.FlagACK, 65535, 0)

	conns := Extract(b.pkts)
	if len(conns) != 2 {
		t.Fatalf("extracted %d connections, want 2 (port reuse split)", len(conns))
	}
	for i, c := range conns {
		if c.Profile.RTT != 10_000 {
			t.Errorf("conn %d RTT = %d", i, c.Profile.RTT)
		}
		if len(c.Data) != 1 || c.Data[0].Seq != 0 {
			t.Errorf("conn %d data = %+v", i, c.Data)
		}
		if c.Profile.RetransmitCount+c.Profile.GapFillCount != 0 {
			t.Errorf("conn %d phantom loss labels: %+v", i, c.Profile)
		}
	}
	if conns[0].Profile.Start >= conns[1].Profile.Start {
		t.Error("connections out of order")
	}
}

func TestRetransmittedSYNDoesNotSplit(t *testing.T) {
	// A SYN retransmission (same ISN) is one connection, not two.
	b := &builder{}
	b.add(0, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	b.add(1_000_000, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0) // retx
	b.add(1_000_100, receiverEP, senderEP, 2000, 1001, packet.FlagSYN|packet.FlagACK, 65535, 0)
	b.add(1_010_000, senderEP, receiverEP, 1001, 2001, packet.FlagACK, 65535, 0)
	b.add(1_020_000, senderEP, receiverEP, 1001, 2001, packet.FlagACK, 65535, 500)
	conns := Extract(b.pkts)
	if len(conns) != 1 {
		t.Fatalf("extracted %d connections, want 1 (SYN retransmission)", len(conns))
	}
}

func TestPortReuseAfterTruncatedConnection(t *testing.T) {
	// Tuple reuse after a TRUNCATED predecessor: the capture caught only the
	// tail of the first incarnation — pure ACKs, no SYN, no payload, and no
	// FIN/RST boundary (the sniffer started late and the teardown was
	// dropped). The redial's fresh SYN must still start a new connection:
	// the old incarnation was demonstrably past initiation (non-SYN traffic
	// on the tuple), so a new SYN can only be a reused port pair.
	b := &builder{}
	b.add(0, senderEP, receiverEP, 50_000, 90_000, packet.FlagACK, 65535, 0)
	b.add(10_000, receiverEP, senderEP, 90_000, 50_000, packet.FlagACK, 65535, 0)
	// Redial with fresh ISNs, full handshake, one data segment.
	b.handshake(1_000_000, 10_000, 7000, 9000, 1460)
	b.add(1_020_000, senderEP, receiverEP, 7001, 9001, packet.FlagACK, 65535, 1460)
	b.add(1_030_000, receiverEP, senderEP, 9001, 8461, packet.FlagACK, 65535, 0)

	conns := Extract(b.pkts)
	if len(conns) != 2 {
		t.Fatalf("extracted %d connections, want 2 (reuse after truncated predecessor)", len(conns))
	}
	// The second incarnation must anchor at its own ISN: exactly one clean
	// data segment at stream offset 0, not a wild offset against the
	// truncated predecessor's inferred ISN.
	c := conns[1]
	if len(c.Data) != 1 || c.Data[0].Seq != 0 || c.Data[0].Len != 1460 {
		t.Errorf("redial data events = %+v", c.Data)
	}
	if c.Profile.RetransmitCount+c.Profile.GapFillCount != 0 {
		t.Errorf("redial has phantom loss labels: %+v", c.Profile)
	}
}

func TestSimultaneousOpenStillMerges(t *testing.T) {
	// Two SYNs (one per direction) are a simultaneous open, not tuple
	// reuse: the established flag must not split a connection whose second
	// captured packet is the peer's SYN.
	b := &builder{}
	b.add(0, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	b.add(100, receiverEP, senderEP, 2000, 1001, packet.FlagSYN|packet.FlagACK, 65535, 0)
	b.add(10_000, senderEP, receiverEP, 1001, 2001, packet.FlagACK, 65535, 900)
	if conns := Extract(b.pkts); len(conns) != 1 {
		t.Fatalf("extracted %d connections, want 1 (simultaneous open)", len(conns))
	}
}

func TestMaxTrackedEvictsOldest(t *testing.T) {
	// A flood of concurrent never-ending connections on distinct ports:
	// with MaxTracked, the demuxer force-completes the oldest open
	// connection instead of growing without bound, and still emits every
	// connection exactly once.
	b := &builder{}
	for i := 0; i < 6; i++ {
		ep := Endpoint{Addr: senderEP.Addr, Port: uint16(10_000 + i)}
		b.add(Micros(i)*1_000, ep, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
		b.add(Micros(i)*1_000+100, ep, receiverEP, 1001, 1, packet.FlagACK, 65535, 200)
	}
	opts := DefaultOptions()
	opts.MaxTracked = 2
	conns, stats := ExtractOptsStats(b.pkts, opts)
	if len(conns) != 6 {
		t.Fatalf("extracted %d connections, want 6", len(conns))
	}
	if stats.Evicted < 4 {
		t.Errorf("Evicted = %d, want >= 4 (cap 2, 6 concurrent)", stats.Evicted)
	}
	if !stats.Degraded() {
		t.Error("stats not marked degraded despite evictions")
	}
}

func TestEvictedConnectionResumesAsPartial(t *testing.T) {
	// Packets arriving for a tuple AFTER its connection was evicted must
	// open a fresh partial connection (and be counted as resumed), not be
	// appended to the already-emitted one.
	var emitted []*Connection
	opts := DefaultOptions()
	opts.MaxTracked = 1
	d := NewDemuxer(opts, func(_ int, c *Connection) { emitted = append(emitted, c) })
	b := &builder{}
	b.add(0, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	b.add(100, senderEP, receiverEP, 1001, 1, packet.FlagACK, 65535, 300)
	// A second tuple forces the first out of the tracker…
	other := Endpoint{Addr: senderEP.Addr, Port: 10_500}
	b.add(200, other, receiverEP, 5000, 0, packet.FlagSYN, 65535, 0)
	// …and the first tuple keeps talking after its eviction.
	b.add(300, senderEP, receiverEP, 1301, 1, packet.FlagACK, 65535, 300)
	for _, tp := range b.pkts {
		d.Add(tp)
	}
	total := d.Finish()
	if total != 3 {
		t.Fatalf("demuxer created %d connections, want 3 (original, other, resumed partial)", total)
	}
	// Two evictions: the original made way for "other", then the resumed
	// partial made way for itself by evicting "other".
	if s := d.Stats(); s.Resumed != 1 || s.Evicted != 2 {
		t.Errorf("stats = %+v, want Resumed=1 Evicted=2", s)
	}
	if len(emitted) != 3 {
		t.Errorf("emitted %d connections, want 3", len(emitted))
	}
}

func TestTimestampRegressionCounted(t *testing.T) {
	// A stepped sniffer clock: packet time going backwards within a
	// connection is tolerated (analysis re-sorts) but tallied.
	d := NewDemuxer(DefaultOptions(), func(int, *Connection) {})
	b := &builder{}
	b.add(1_000_000, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	b.add(500_000, senderEP, receiverEP, 1001, 1, packet.FlagACK, 65535, 100) // clock stepped back
	b.add(600_000, senderEP, receiverEP, 1101, 1, packet.FlagACK, 65535, 100)
	for _, tp := range b.pkts {
		d.Add(tp)
	}
	d.Finish()
	if s := d.Stats(); s.TimestampRegressions != 1 || !s.Degraded() {
		t.Errorf("stats = %+v, want exactly one timestamp regression", s)
	}
}

func TestShardOfDirectionInvariant(t *testing.T) {
	// Both directions of a connection must hash to the same shard, or a
	// sharded demux would split the conversation.
	b := &builder{}
	fwd := b.add(1_000_000, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	rev := b.add(1_000_100, receiverEP, senderEP, 2000, 1001, packet.FlagSYN|packet.FlagACK, 65535, 0)
	for _, n := range []int{1, 2, 3, 7, 16} {
		sf, sr := ShardOf(fwd, n), ShardOf(rev, n)
		if sf != sr {
			t.Errorf("n=%d: ShardOf(fwd)=%d ShardOf(rev)=%d, want equal", n, sf, sr)
		}
		if sf < 0 || sf >= n {
			t.Errorf("n=%d: ShardOf out of range: %d", n, sf)
		}
	}
}

func TestShardOfSpreadsConnections(t *testing.T) {
	// Distinct 4-tuples should not all collapse onto one shard.
	const n = 4
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		ep := Endpoint{Addr: netip.AddrFrom4([4]byte{10, 2, 0, byte(i + 1)}), Port: 40000 + uint16(i)}
		b := &builder{}
		p := b.add(1_000_000, ep, receiverEP, 1, 0, packet.FlagSYN, 65535, 0)
		seen[ShardOf(p, n)] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 distinct connections landed on %d of %d shards", len(seen), n)
	}
}

func TestExternalClockSkipsRegressionCount(t *testing.T) {
	// With ExternalClock the reader owns regression accounting: a shard's
	// substream has gaps, so its local comparisons would overcount. The
	// demuxer must still flag per-connection disorder so analysis re-sorts.
	opts := DefaultOptions()
	opts.ExternalClock = true
	var got *Connection
	d := NewDemuxer(opts, func(_ int, c *Connection) { got = c })
	b := &builder{}
	b.handshake(1_000_000, 20_000, 1000, 5000, 1460)
	b.add(1_200_000, senderEP, receiverEP, 1001, 5001, packet.FlagACK, 65535, 100)
	b.add(1_100_000, senderEP, receiverEP, 1101, 5001, packet.FlagACK, 65535, 100) // regresses
	for i, tp := range b.pkts {
		d.AddSeq(int64(i), tp.Time, tp.Pkt)
	}
	d.Finish()
	if s := d.Stats(); s.TimestampRegressions != 0 {
		t.Errorf("TimestampRegressions = %d, want 0 under ExternalClock", s.TimestampRegressions)
	}
	if got == nil {
		t.Fatal("connection not completed")
	}
	// Despite the regression the analysis must see time-sorted packets.
	for i := 1; i < len(got.Data); i++ {
		if got.Data[i].Time < got.Data[i-1].Time {
			t.Fatalf("data events not time-sorted at %d", i)
		}
	}
}

func TestArrivalSeqReflectsFirstPacket(t *testing.T) {
	// ArrivalSeq carries the global sequence number of a connection's first
	// packet — the key the sharded merge sorts on.
	other := Endpoint{Addr: netip.MustParseAddr("10.9.9.9"), Port: 33000}
	var conns []*Connection
	d := NewDemuxer(DefaultOptions(), func(_ int, c *Connection) { conns = append(conns, c) })
	b := &builder{}
	b.add(1_000_000, senderEP, receiverEP, 1000, 0, packet.FlagSYN, 65535, 0)
	b.add(1_000_500, other, receiverEP, 7000, 0, packet.FlagSYN, 65535, 0)
	b.add(1_001_000, senderEP, receiverEP, 1001, 1, packet.FlagACK, 65535, 100)
	// Hand out sparse sequence numbers, as a shard substream would see.
	seqs := []int64{10, 25, 11}
	for i, tp := range b.pkts {
		d.AddSeq(seqs[i], tp.Time, tp.Pkt)
	}
	d.Finish()
	if len(conns) != 2 {
		t.Fatalf("got %d connections, want 2", len(conns))
	}
	got := map[int64]bool{conns[0].ArrivalSeq(): true, conns[1].ArrivalSeq(): true}
	if !got[10] || !got[25] {
		t.Errorf("ArrivalSeqs = %v, want {10, 25}", got)
	}
}

package flows

import (
	"tdat/internal/obs"
	"tdat/internal/timerange"
)

// classifyLosses labels each data event and builds the upstream/downstream
// loss recovery sets (paper §II-B2):
//
//   - A packet whose bytes were already captured is a retransmission whose
//     original crossed the sniffer — the drop (or its ACK's drop) happened
//     downstream, i.e. receiver-local in the paper's deployment.
//   - A packet filling a sequence gap the sniffer never saw is the repair of
//     an upstream loss — unless reordering explains it (the packet's IP ID
//     shows it was emitted before packets that arrived earlier, or it
//     arrives within the reordering window of the gap opening).
//
// Each loss contributes its whole recovery period: from the moment the
// sniffer could first know about the lost bytes (original capture time for
// downstream; gap appearance for upstream) to the repair arrival.
func classifyLosses(c *Connection, opts Options) {
	c.UpstreamLoss = timerange.NewSet()
	c.DownstreamLoss = timerange.NewSet()

	covered := timerange.NewSet() // sequence space captured so far
	firstSeen := make(map[int64]Micros, len(c.Data))

	// Receiver's cumulative acknowledgment, advanced alongside the data
	// walk: a retransmission of bytes the receiver has already acked is
	// spurious (go-back-N after a burst loss, or a needless timeout) — the
	// receiver provably has the data, so no downstream loss happened.
	ai := 0
	var maxAck int64
	var lastAckTime Micros

	// Time of the last gap repair: between a repair and the receiver's next
	// acknowledgment the sniffer's ack state is stale (the cumulative ack
	// that the repair unblocked is still in flight), so full-overlap copies
	// in that window cannot be judged.
	var lastRepair Micros

	type gap struct {
		r      timerange.Range // sequence range never captured
		opened Micros
	}
	var gaps []gap
	var maxEnd int64
	var maxIPID uint16
	haveIPID := false

	for i := range c.Data {
		d := &c.Data[i]
		for ai < len(c.Acks) && c.Acks[ai].Time <= d.Time {
			if c.Acks[ai].Ack > maxAck {
				maxAck = c.Acks[ai].Ack
			}
			lastAckTime = c.Acks[ai].Time
			ai++
		}
		segRange := timerange.R(d.Seq, d.SeqEnd)
		overlapLen := int64(covered.OverlapLen(segRange))

		switch {
		case overlapLen >= int64(d.Len):
			// Entire payload previously captured.
			d.Kind = DataRetransmit
			c.Profile.RetransmitCount++
			if d.SeqEnd <= maxAck {
				// Spurious: the sniffer saw the receiver ack these bytes
				// before the copy went by. Nothing was lost downstream —
				// count it, charge nothing.
				c.Profile.SpuriousRetxCount++
				break
			}
			gapBelow := false
			for _, g := range gaps {
				if g.r.Start < d.Seq {
					gapBelow = true
					break
				}
			}
			if gapBelow {
				// A sequence hole the sniffer never saw filled sits below
				// this copy: the cumulative ack is pinned under that hole,
				// so the retransmission proves nothing about these bytes'
				// own delivery — go-back-N rewinding over an upstream loss,
				// whose recovery is charged when the hole's repair arrives.
				break
			}
			if lastRepair > 0 && lastAckTime <= lastRepair {
				// The hole below was just repaired but the receiver has not
				// spoken since: the cumulative-ack jump the repair unblocked
				// is still crossing the path, and the go-back-N burst keeps
				// rewinding right behind the repair. These copies would look
				// spurious one ack later — charge nothing now.
				break
			}
			start := d.Time
			if t, ok := firstSeen[d.Seq]; ok {
				start = t
			}
			c.DownstreamLoss.Add(timerange.R(start, d.Time+1))
		case d.Seq >= maxEnd:
			// Advancing the stream; any skipped bytes open a gap.
			d.Kind = DataNew
			if d.Seq > maxEnd {
				gaps = append(gaps, gap{r: timerange.R(maxEnd, d.Seq), opened: d.Time})
			}
		default:
			// Filling sequence space below the frontier that was never
			// captured (possibly with partial overlap).
			opened := d.Time
			for gi := range gaps {
				if gaps[gi].r.Overlaps(segRange) {
					if gaps[gi].opened < opened {
						opened = gaps[gi].opened
					}
				}
			}
			reordered := false
			if !opts.DisableReorderFilter {
				if haveIPID {
					// A lower IP ID than packets that already arrived means
					// this packet left the sender earlier: in-network
					// reordering, not a retransmitted copy.
					reordered = int16(d.IPID-maxIPID) < 0
				} else {
					// Without IP ID continuity, fall back to arrival lag:
					// reordering shows up within milliseconds, repairs take
					// at least an RTO.
					reordered = d.Time-opened <= opts.ReorderWindow
				}
			}
			if reordered {
				d.Kind = DataReordered
				c.Profile.ReorderCount++
			} else {
				d.Kind = DataGapFill
				c.Profile.GapFillCount++
				c.UpstreamLoss.Add(timerange.R(opened, d.Time+1))
				lastRepair = d.Time
			}
			// Shrink gaps the segment fills.
			var remaining []gap
			for _, g := range gaps {
				if !g.r.Overlaps(segRange) {
					remaining = append(remaining, g)
					continue
				}
				if g.r.Start < segRange.Start {
					remaining = append(remaining, gap{r: timerange.R(g.r.Start, segRange.Start), opened: g.opened})
				}
				if g.r.End > segRange.End {
					remaining = append(remaining, gap{r: timerange.R(segRange.End, g.r.End), opened: g.opened})
				}
			}
			gaps = remaining
		}

		if _, ok := firstSeen[d.Seq]; !ok {
			firstSeen[d.Seq] = d.Time
		}
		covered.Add(segRange)
		if d.SeqEnd > maxEnd {
			maxEnd = d.SeqEnd
		}
		if !haveIPID || int16(d.IPID-maxIPID) > 0 {
			maxIPID = d.IPID
			haveIPID = true
		}
	}

	scanSilentLoss(c)
}

// Silence this long with missing IP IDs is attributed to upstream loss;
// shorter pauses can hide a single dropped keepalive or probe inside a
// genuine application pause, so the scan stays out of them.
const silentLossMinGap Micros = 500_000

// scanSilentLoss charges long sender silences whose bracketing IP IDs jump
// by more packets than the sniffer captured. The sender stamps a fresh IP
// ID on every emitted packet, dropped or not, so the jump counts emissions
// that died upstream of the sniffer — an RTO backoff whose every retry was
// swallowed (a tail-of-window drop repeated through the burst) leaves no
// other trace at all. Pure sender ACKs captured inside the gap are merged
// into the walk so an idle sender acknowledging the receiver's keepalives
// is not mistaken for one transmitting into a black hole.
func scanSilentLoss(c *Connection) {
	type emit struct {
		t  Micros
		id uint16
	}
	seq := make([]emit, 0, len(c.Data)+len(c.SenderPureAcks))
	di, pi := 0, 0
	for di < len(c.Data) || pi < len(c.SenderPureAcks) {
		takeData := pi >= len(c.SenderPureAcks)
		if !takeData && di < len(c.Data) {
			d, p := &c.Data[di], &c.SenderPureAcks[pi]
			// Equal capture timestamps (an ACK emitted back-to-back with a
			// data burst) lose their relative order when the trace splits
			// into the two event slices; the IP ID sequence restores the
			// emission order, keeping the walk's jumps honest.
			takeData = d.Time < p.Time ||
				(d.Time == p.Time && int16(d.IPID-p.IPID) < 0)
		}
		if takeData {
			seq = append(seq, emit{c.Data[di].Time, c.Data[di].IPID})
			di++
		} else {
			seq = append(seq, emit{c.SenderPureAcks[pi].Time, c.SenderPureAcks[pi].IPID})
			pi++
		}
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].t-seq[i-1].t <= silentLossMinGap {
			continue
		}
		// Unseen emissions between the bracketing packets. Consecutive IDs
		// give zero; two or more missing means repeated sends into the
		// silence (one alone could be a keepalive lost inside a real pause).
		unseen := int(int16(seq[i].id-seq[i-1].id)) - 1
		if unseen < 2 {
			continue
		}
		c.UpstreamLoss.Add(timerange.R(seq[i-1].t, seq[i].t+1))
		c.Profile.SilentLossRanges++
	}
}

// Options tunes the classification heuristics; the zero value is usable and
// DefaultOptions documents the defaults.
type Options struct {
	// ReorderWindow is the arrival slack within which a gap fill without IP
	// ID evidence is attributed to in-network reordering rather than loss
	// (Jaiswal et al. observe reordering lags of a few milliseconds;
	// repairs take at least an RTO). Zero selects the 2 ms default.
	ReorderWindow Micros
	// DisableReorderFilter labels every gap fill as an upstream loss — the
	// ablation the benchmarks sweep.
	DisableReorderFilter bool
	// MaxTracked caps simultaneously tracked (un-emitted) connections in
	// the Demuxer; when full, the oldest open connection is force-completed
	// so adversarial captures (a SYN flood of distinct tuples) cannot grow
	// demux state without bound. 0 means unlimited — the default, which
	// keeps extraction on clean traces byte-identical.
	MaxTracked int
	// Obs receives demux metrics (connections opened, early emissions,
	// packets routed) and progress updates when non-nil. It never affects
	// extraction output.
	Obs *obs.Obs
	// ExternalClock tells the Demuxer that its input is one shard's
	// substream of a globally ordered capture: timestamp regressions are
	// counted once by the owner of the full stream (core's sharded reader),
	// so this demuxer must not count them again. Disorder detection for
	// per-connection re-sorting is unaffected — a regression inside any
	// connection is always visible within its own shard's substream.
	ExternalClock bool
}

// DefaultOptions returns the documented defaults.
func DefaultOptions() Options { return Options{ReorderWindow: 2_000} }

func (o Options) withDefaults() Options {
	if o.ReorderWindow == 0 {
		o.ReorderWindow = 2_000
	}
	return o
}

package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestPerSeedDeterminism: the same seed must reproduce the same variate
// sequence exactly — the property every scenario generator leans on.
func TestPerSeedDeterminism(t *testing.T) {
	dists := map[string]Dist{
		"pareto":   Pareto{Alpha: 1.5, Xm: 10},
		"bimodal":  Bimodal{Mean1: 5, Std1: 1, Weight1: 0.7, Mean2: 50, Std2: 8},
		"uniform":  Uniform{Lo: 2, Hi: 9},
		"constant": Constant{V: 42},
		"clamp":    Clamp{D: Pareto{Alpha: 1.2, Xm: 3}, Lo: 3, Hi: 100},
	}
	for name, d := range dists {
		draw := func(seed int64) []float64 {
			rnd := rand.New(rand.NewSource(seed))
			out := make([]float64, 1000)
			for i := range out {
				out[i] = d.Sample(rnd)
			}
			return out
		}
		a, b := draw(7), draw(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across identical seeds: %v vs %v", name, i, a[i], b[i])
			}
		}
		c := draw(8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && name != "constant" {
			t.Errorf("%s: different seeds produced identical sequences", name)
		}
	}
}

// TestParetoTailIndex: the Hill estimator over a large sample must recover
// the configured tail index — the heavy-tail shape is real, not just noise
// above a minimum.
func TestParetoTailIndex(t *testing.T) {
	for _, alpha := range []float64{1.2, 1.5, 2.5} {
		p := Pareto{Alpha: alpha, Xm: 4}
		rnd := rand.New(rand.NewSource(11))
		n := 200_000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = p.Sample(rnd)
			if xs[i] < p.Xm {
				t.Fatalf("alpha %.1f: sample %v below scale %v", alpha, xs[i], p.Xm)
			}
		}
		sort.Float64s(xs)
		// Hill estimator over the top k order statistics.
		k := n / 10
		thresh := xs[n-k-1]
		sum := 0.0
		for _, x := range xs[n-k:] {
			sum += math.Log(x / thresh)
		}
		hill := float64(k) / sum
		if math.Abs(hill-alpha) > 0.1*alpha {
			t.Errorf("alpha %.1f: Hill estimate %.3f off by more than 10%%", alpha, hill)
		}
	}
}

// TestBimodalModeWeights: samples must split between the two modes in the
// configured proportion, and both modes must actually be visited.
func TestBimodalModeWeights(t *testing.T) {
	b := Bimodal{Mean1: 10, Std1: 2, Weight1: 0.7, Mean2: 100, Std2: 10}
	rnd := rand.New(rand.NewSource(13))
	n := 100_000
	near1 := 0
	mid := (b.Mean1 + b.Mean2) / 2
	for i := 0; i < n; i++ {
		if b.Sample(rnd) < mid {
			near1++
		}
	}
	frac := float64(near1) / float64(n)
	// The modes sit 9σ/9σ from the midpoint, so misclassification is
	// negligible; the fraction is the mixture weight up to sampling noise.
	if math.Abs(frac-b.Weight1) > 0.01 {
		t.Errorf("mode-1 fraction %.4f, want %.2f ±0.01", frac, b.Weight1)
	}
	if near1 == 0 || near1 == n {
		t.Errorf("one mode never sampled (near1 = %d of %d)", near1, n)
	}
}

// TestClampBounds: clamped draws never escape [Lo, Hi], and the underlying
// heavy tail piles mass onto the upper bound instead of vanishing.
func TestClampBounds(t *testing.T) {
	c := Clamp{D: Pareto{Alpha: 1.1, Xm: 5}, Lo: 5, Hi: 50}
	rnd := rand.New(rand.NewSource(17))
	atHi := 0
	for i := 0; i < 50_000; i++ {
		v := c.Sample(rnd)
		if v < c.Lo || v > c.Hi {
			t.Fatalf("sample %v outside [%v, %v]", v, c.Lo, c.Hi)
		}
		if v == c.Hi {
			atHi++
		}
	}
	if atHi == 0 {
		t.Error("alpha 1.1 tail never reached the clamp ceiling")
	}
}

// TestUniformRange: uniform draws stay inside [Lo, Hi) and cover it.
func TestUniformRange(t *testing.T) {
	u := Uniform{Lo: 3, Hi: 7}
	rnd := rand.New(rand.NewSource(19))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10_000; i++ {
		v := u.Sample(rnd)
		if v < u.Lo || v >= u.Hi {
			t.Fatalf("sample %v outside [%v, %v)", v, u.Lo, u.Hi)
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > 3.1 || hi < 6.9 {
		t.Errorf("10k draws span only [%v, %v]", lo, hi)
	}
}

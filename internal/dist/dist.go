// Package dist provides seeded, deterministic random-variate generators
// for scenario synthesis: heavy-tailed (Pareto) and bimodal distributions
// of application send sizes and idle gaps, plus the uniform/constant/clamp
// combinators the scenario library composes them from.
//
// Every distribution draws from a caller-owned *rand.Rand — never the
// global math/rand source, which tdatlint's globalrand analyzer forbids —
// so a scenario seeded the same way reproduces the same traffic byte for
// byte on any machine and at any worker count.
package dist

import (
	"math"
	"math/rand"
)

// Dist draws float64 variates from a caller-owned seeded source.
type Dist interface {
	Sample(rnd *rand.Rand) float64
}

// Pareto is a type-I Pareto distribution: scale Xm (the minimum value) and
// tail index Alpha. Smaller Alpha means heavier tail; Alpha ≤ 2 has
// infinite variance, the regime where a handful of giant idle gaps or
// bursts dominate the traffic (the heavy-tailed application profiles of
// SNIPPETS.md snippet 1, reimplemented seeded).
type Pareto struct {
	Alpha float64 // tail index (> 0)
	Xm    float64 // scale: minimum value (> 0)
}

// Sample draws via inversion: Xm / U^(1/Alpha) with U uniform on (0,1].
func (p Pareto) Sample(rnd *rand.Rand) float64 {
	u := 1 - rnd.Float64() // Float64 is [0,1); 1-U is (0,1], avoiding ÷0
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Bimodal mixes two normal modes: with probability Weight1 a draw comes
// from N(Mean1, Std1²), otherwise from N(Mean2, Std2²) — the two-regime
// send pattern of routers that alternate steady trickle and bulk batches.
type Bimodal struct {
	Mean1, Std1 float64
	Weight1     float64 // probability of mode 1, in [0,1]
	Mean2, Std2 float64
}

// Sample draws the mode first, then the variate, so one draw consumes a
// fixed number of RNG values regardless of outcome.
func (b Bimodal) Sample(rnd *rand.Rand) float64 {
	mode1 := rnd.Float64() < b.Weight1
	z := rnd.NormFloat64()
	if mode1 {
		return b.Mean1 + b.Std1*z
	}
	return b.Mean2 + b.Std2*z
}

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Dist.
func (u Uniform) Sample(rnd *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rnd.Float64()
}

// Constant always returns V (a degenerate distribution, useful to pin one
// axis of a profile while sweeping the other).
type Constant struct {
	V float64
}

// Sample implements Dist.
func (c Constant) Sample(*rand.Rand) float64 { return c.V }

// Clamp restricts another distribution to [Lo, Hi]. The tail mass piles up
// at the bounds rather than being redrawn, so one Sample still consumes a
// deterministic number of RNG draws.
type Clamp struct {
	D      Dist
	Lo, Hi float64
}

// Sample implements Dist.
func (c Clamp) Sample(rnd *rand.Rand) float64 {
	v := c.D.Sample(rnd)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

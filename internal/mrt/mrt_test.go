package mrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"

	"tdat/internal/bgp"
)

func sampleRecord(t *testing.T, micros int64) Record {
	t.Helper()
	u := &bgp.Update{
		Attrs: &bgp.PathAttrs{
			Origin:  bgp.OriginIGP,
			ASPath:  []uint16{7018, 16910},
			NextHop: netip.MustParseAddr("10.0.0.1"),
		},
		NLRI: []bgp.Prefix{netip.MustParsePrefix("206.209.232.0/21")},
	}
	raw, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return Record{
		TimeMicros: micros,
		PeerAS:     7018,
		LocalAS:    65000,
		PeerIP:     netip.MustParseAddr("192.0.2.1"),
		LocalIP:    netip.MustParseAddr("192.0.2.2"),
		Raw:        raw,
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		sampleRecord(t, 1_235_728_588_000_123),
		sampleRecord(t, 1_235_728_592_500_000),
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range got {
		if got[i].TimeMicros != recs[i].TimeMicros {
			t.Errorf("record %d time = %d, want %d", i, got[i].TimeMicros, recs[i].TimeMicros)
		}
		if got[i].PeerAS != 7018 || got[i].PeerIP != recs[i].PeerIP || got[i].LocalIP != recs[i].LocalIP {
			t.Errorf("record %d metadata = %+v", i, got[i])
		}
		if !bytes.Equal(got[i].Raw, recs[i].Raw) {
			t.Errorf("record %d raw bytes differ", i)
		}
	}
}

func TestRecordMessage(t *testing.T) {
	rec := sampleRecord(t, 1_000_000)
	m, err := rec.Message()
	if err != nil {
		t.Fatal(err)
	}
	u, ok := m.(*bgp.Update)
	if !ok || len(u.NLRI) != 1 {
		t.Errorf("message = %T %+v", m, m)
	}
}

func TestReaderSkipsUnknownTypes(t *testing.T) {
	var buf bytes.Buffer
	// Unknown record: type 99, 4-byte body.
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], 1)
	binary.BigEndian.PutUint16(hdr[4:6], 99)
	binary.BigEndian.PutUint16(hdr[6:8], 1)
	binary.BigEndian.PutUint32(hdr[8:12], 4)
	buf.Write(hdr[:])
	buf.Write([]byte{0, 0, 0, 0})
	// Then a real record.
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(t, 42_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 || got[0].TimeMicros != 42_000_000 {
		t.Errorf("got %d records err=%v", len(got), err)
	}
}

func TestReaderClassicBGP4MPSecondResolution(t *testing.T) {
	// Hand-build a classic (non-ET) BGP4MP record; microseconds are lost.
	rec := sampleRecord(t, 0)
	body := make([]byte, 16+len(rec.Raw))
	binary.BigEndian.PutUint16(body[0:2], rec.PeerAS)
	binary.BigEndian.PutUint16(body[2:4], rec.LocalAS)
	binary.BigEndian.PutUint16(body[6:8], 1)
	peer := rec.PeerIP.As4()
	local := rec.LocalIP.As4()
	copy(body[8:12], peer[:])
	copy(body[12:16], local[:])
	copy(body[16:], rec.Raw)
	var buf bytes.Buffer
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], 77)
	binary.BigEndian.PutUint16(hdr[4:6], TypeBGP4MP)
	binary.BigEndian.PutUint16(hdr[6:8], SubtypeMessage)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d err=%v", len(got), err)
	}
	if got[0].TimeMicros != 77_000_000 {
		t.Errorf("time = %d, want 77000000", got[0].TimeMicros)
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, err := ReadAll(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestWriterRejectsIPv6(t *testing.T) {
	rec := sampleRecord(t, 1)
	rec.PeerIP = netip.MustParseAddr("2001:db8::1")
	var buf bytes.Buffer
	if err := NewWriter(&buf).Write(rec); !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

// Package mrt implements the subset of the MRT export format (RFC 6396)
// that BGP collectors such as Quagga use to archive received updates:
// BGP4MP/BGP4MP_MESSAGE records wrapping raw BGP messages, with one-second
// timestamps (the classic format the paper's MRT archives use) plus the
// microsecond BGP4MP_ET extension for lossless round-trips of simulator
// output.
package mrt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"tdat/internal/bgp"
)

// MRT type and subtype codes (RFC 6396).
const (
	TypeBGP4MP   = 16
	TypeBGP4MPET = 17 // extended timestamp (adds microseconds)

	SubtypeMessage = 1 // BGP4MP_MESSAGE, 2-byte AS numbers
)

// Errors returned by the codec.
var (
	ErrTruncated = errors.New("mrt: truncated record")
	ErrBadRecord = errors.New("mrt: malformed record")
)

// Record is one archived BGP message with collection metadata.
type Record struct {
	// TimeMicros is the collection timestamp in microseconds. Classic
	// BGP4MP records carry second resolution only; reading one yields a
	// timestamp rounded down to the second.
	TimeMicros int64
	PeerAS     uint16
	LocalAS    uint16
	PeerIP     netip.Addr
	LocalIP    netip.Addr
	// Raw is the full BGP message bytes (header included).
	Raw []byte
}

// Message parses the wrapped BGP message.
func (r *Record) Message() (bgp.Message, error) { return bgp.Parse(r.Raw) }

// Writer appends MRT records to a stream using BGP4MP_ET (microsecond)
// framing.
type Writer struct {
	w *bufio.Writer
}

// NewWriter creates a Writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if !rec.PeerIP.Is4() || !rec.LocalIP.Is4() {
		return fmt.Errorf("%w: non-IPv4 peer addresses", ErrBadRecord)
	}
	// BGP4MP_MESSAGE body: peer AS(2) local AS(2) ifindex(2) AFI(2)
	// peer IP(4) local IP(4) message.
	body := make([]byte, 16+len(rec.Raw))
	binary.BigEndian.PutUint16(body[0:2], rec.PeerAS)
	binary.BigEndian.PutUint16(body[2:4], rec.LocalAS)
	binary.BigEndian.PutUint16(body[4:6], 0) // ifindex
	binary.BigEndian.PutUint16(body[6:8], 1) // AFI IPv4
	peer := rec.PeerIP.As4()
	local := rec.LocalIP.As4()
	copy(body[8:12], peer[:])
	copy(body[12:16], local[:])
	copy(body[16:], rec.Raw)

	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(rec.TimeMicros/1_000_000))
	binary.BigEndian.PutUint16(hdr[4:6], TypeBGP4MPET)
	binary.BigEndian.PutUint16(hdr[6:8], SubtypeMessage)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(4+len(body))) // + usec field
	binary.BigEndian.PutUint32(hdr[12:16], uint32(rec.TimeMicros%1_000_000))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("mrt: writing header: %w", err)
	}
	if _, err := w.w.Write(body); err != nil {
		return fmt.Errorf("mrt: writing body: %w", err)
	}
	return nil
}

// Flush writes buffered records through to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads MRT records. Records of types other than
// BGP4MP/BGP4MP_ET + BGP4MP_MESSAGE are skipped.
type Reader struct {
	r *bufio.Reader
}

// NewReader creates a Reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next BGP4MP_MESSAGE record, or io.EOF at a clean end.
func (r *Reader) Next() (Record, error) {
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
		}
		sec := int64(binary.BigEndian.Uint32(hdr[0:4]))
		typ := binary.BigEndian.Uint16(hdr[4:6])
		sub := binary.BigEndian.Uint16(hdr[6:8])
		length := binary.BigEndian.Uint32(hdr[8:12])
		if length > 1<<20 {
			return Record{}, fmt.Errorf("%w: implausible length %d", ErrBadRecord, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r.r, body); err != nil {
			return Record{}, fmt.Errorf("%w: body: %v", ErrTruncated, err)
		}
		isET := typ == TypeBGP4MPET
		if (typ != TypeBGP4MP && !isET) || sub != SubtypeMessage {
			continue // skip unknown record types
		}
		micros := sec * 1_000_000
		if isET {
			if len(body) < 4 {
				return Record{}, fmt.Errorf("%w: ET timestamp", ErrTruncated)
			}
			micros += int64(binary.BigEndian.Uint32(body[0:4]))
			body = body[4:]
		}
		if len(body) < 16 {
			return Record{}, fmt.Errorf("%w: BGP4MP body %d bytes", ErrTruncated, len(body))
		}
		afi := binary.BigEndian.Uint16(body[6:8])
		if afi != 1 {
			continue // IPv4 only
		}
		rec := Record{
			TimeMicros: micros,
			PeerAS:     binary.BigEndian.Uint16(body[0:2]),
			LocalAS:    binary.BigEndian.Uint16(body[2:4]),
			PeerIP:     netip.AddrFrom4([4]byte(body[8:12])),
			LocalIP:    netip.AddrFrom4([4]byte(body[12:16])),
			Raw:        append([]byte(nil), body[16:]...),
		}
		return rec, nil
	}
}

// ReadAll drains the reader.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

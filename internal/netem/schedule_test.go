package netem

import (
	"math/rand"
	"testing"

	"tdat/internal/packet"
	"tdat/internal/sim"
)

// TestScheduleSerializationMath: serialization time is exact within one
// segment and integrates across a step boundary.
func TestScheduleSerializationMath(t *testing.T) {
	// 1 MB/s until t=10ms, then 100 kB/s.
	s := NewRateSchedule(
		RateStep{At: 0, Rate: 1_000_000},
		RateStep{At: 10_000, Rate: 100_000},
	)
	// Entirely in the fast segment: 1000 bytes at 1 µs/byte.
	if got := s.serTime(0, 1000); got != 1000 {
		t.Errorf("fast-segment serTime = %d, want 1000", got)
	}
	// Entirely in the slow segment: 1000 bytes at 10 µs/byte.
	if got := s.serTime(20_000, 1000); got != 10_000 {
		t.Errorf("slow-segment serTime = %d, want 10000", got)
	}
	// Spanning the step: 500 bytes fit in [9.5ms, 10ms) at the fast rate,
	// the remaining 500 take 5 ms at the slow rate.
	if got := s.serTime(9_500, 1000); got != 5_500 {
		t.Errorf("step-spanning serTime = %d, want 5500", got)
	}
	// RateAt reports the segment in force.
	if r := s.RateAt(5_000); r != 1_000_000 {
		t.Errorf("RateAt(5ms) = %d", r)
	}
	if r := s.RateAt(10_000); r != 100_000 {
		t.Errorf("RateAt(10ms) = %d", r)
	}
}

// TestSchedulePeriodicWraps: a periodic schedule repeats every period and
// serialization integrates across the wrap.
func TestSchedulePeriodicWraps(t *testing.T) {
	s := Square(1_000_000, 100_000, 20_000) // 10ms fast, 10ms slow, repeat
	if r := s.RateAt(5_000); r != 1_000_000 {
		t.Errorf("RateAt(5ms) = %d", r)
	}
	if r := s.RateAt(15_000); r != 100_000 {
		t.Errorf("RateAt(15ms) = %d", r)
	}
	if r := s.RateAt(25_000); r != 1_000_000 {
		t.Errorf("RateAt(25ms, next period) = %d", r)
	}
	// Starting 1 ms before the period wraps back to fast: 100 bytes at the
	// slow rate take exactly the remaining 1 ms, then 900 fast bytes 900 µs.
	if got := s.serTime(19_000, 1000); got != 1_900 {
		t.Errorf("wrap-spanning serTime = %d, want 1900", got)
	}
}

// TestScheduleZeroRateSegmentIsInfinite: a zero-rate segment passes bytes
// instantly, mirroring Link.Rate == 0.
func TestScheduleZeroRateSegmentIsInfinite(t *testing.T) {
	s := NewRateSchedule(
		RateStep{At: 0, Rate: 100_000},
		RateStep{At: 10_000, Rate: 0},
	)
	// 2000 bytes from t=5ms: 500 bytes fit before the infinite segment
	// (5 ms at 10 µs/byte), the rest is free.
	if got := s.serTime(5_000, 2000); got != 5_000 {
		t.Errorf("serTime into infinite segment = %d, want 5000", got)
	}
	if got := s.serTime(15_000, 1_000_000); got != 1 {
		t.Errorf("serTime fully inside infinite segment = %d, want 1", got)
	}
}

// TestScheduleNoReorderAcrossRateChange: packets offered in order leave in
// order even when the rate collapses mid-queue — the FIFO invariant the
// oracle's passive inference relies on.
func TestScheduleNoReorderAcrossRateChange(t *testing.T) {
	eng := sim.New(0, 1)
	var order []int
	var times []sim.Micros
	l := NewLink(eng, func(p *packet.Packet) {
		order = append(order, int(p.TCP.Seq))
		times = append(times, eng.Now())
	})
	l.Schedule = Sawtooth(1_000_000, 50_000, 40_000, 8)
	rnd := rand.New(rand.NewSource(3))
	n := 60
	for i := 0; i < n; i++ {
		at := sim.Micros(i * 1_700)
		seq := uint32(i)
		eng.At(at, func() {
			p := testPacket(200 + rnd.Intn(1200))
			p.TCP.Seq = seq
			l.Send(p)
		})
	}
	eng.RunAll(0)
	if len(order) != n {
		t.Fatalf("delivered %d of %d packets", len(order), n)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("delivery order %v: packet %d out of place", order[:i+1], order[i])
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatalf("delivery times not monotone: %v", times[:i+1])
		}
	}
}

// TestScheduleStatsConservation: offered = delivered + dropped under a
// sawtooth profile with a finite queue.
func TestScheduleStatsConservation(t *testing.T) {
	eng := sim.New(0, 7)
	delivered := 0
	l := NewLink(eng, func(*packet.Packet) { delivered++ })
	l.Schedule = Sawtooth(400_000, 20_000, 50_000, 10)
	l.QueueCap = 4
	n := 300
	for i := 0; i < n; i++ {
		at := sim.Micros(i * 900)
		eng.At(at, func() { l.Send(testPacket(946)) })
	}
	eng.RunAll(0)
	st := l.Stats()
	if st.Offered != n {
		t.Fatalf("offered %d, want %d", st.Offered, n)
	}
	if st.Delivered != delivered {
		t.Errorf("stats delivered %d, handler saw %d", st.Delivered, delivered)
	}
	if st.Delivered+st.DroppedTail+st.DroppedLoss != st.Offered {
		t.Errorf("conservation broken: %d delivered + %d tail + %d loss != %d offered",
			st.Delivered, st.DroppedTail, st.DroppedLoss, st.Offered)
	}
	if st.DroppedTail == 0 {
		t.Error("sawtooth trough never overflowed the queue (test too weak)")
	}
}

// TestGilbertElliottBurstsAndDeterminism: the GE process is deterministic
// per seed, produces burstier loss than i.i.d. at the same mean rate, and
// layers on LossHook without touching the engine RNG.
func TestGilbertElliottBurstsAndDeterminism(t *testing.T) {
	prm := GEParams{PGoodBad: 0.02, PBadGood: 0.25, DropBad: 0.9}
	draw := func(seed int64) []bool {
		f := GilbertElliott(seed, prm)
		out := make([]bool, 5000)
		p := testPacket(100)
		for i := range out {
			out[i] = f(sim.Micros(i), p)
		}
		return out
	}
	a, b := draw(5), draw(5)
	drops, bursts, run, maxRun := 0, 0, 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs across identical seeds", i)
		}
		if a[i] {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
			if run == 1 {
				bursts++
			}
		} else {
			run = 0
		}
	}
	if drops == 0 {
		t.Fatal("GE process never dropped")
	}
	// Mean burst length must exceed i.i.d.'s: with loss rate p, i.i.d. runs
	// average 1/(1-p) ≈ 1.07 at these parameters; GE with DropBad 0.9 and
	// mean bad dwell of 4 packets averages ≈ 2.8.
	meanBurst := float64(drops) / float64(bursts)
	if meanBurst < 1.5 {
		t.Errorf("mean loss burst %.2f packets — not bursty (maxRun %d)", meanBurst, maxRun)
	}
	if maxRun < 3 {
		t.Errorf("max loss run %d, want ≥3 for a bursty process", maxRun)
	}
}

// TestGilbertElliottOnLink: wired as a LossHook, the GE drops land in
// DroppedLoss and reach the DropHook ground-truth observer.
func TestGilbertElliottOnLink(t *testing.T) {
	eng := sim.New(0, 9)
	delivered := 0
	l := NewLink(eng, func(*packet.Packet) { delivered++ })
	l.LossHook = GilbertElliott(21, GEParams{PGoodBad: 0.05, PBadGood: 0.2, DropBad: 1.0})
	hookDrops := 0
	l.DropHook = func(sim.Micros, *packet.Packet, bool) { hookDrops++ }
	n := 1000
	for i := 0; i < n; i++ {
		l.Send(testPacket(100))
	}
	eng.RunAll(0)
	st := l.Stats()
	if st.DroppedLoss == 0 {
		t.Fatal("no GE drops on the link")
	}
	if st.DroppedLoss != hookDrops {
		t.Errorf("DropHook saw %d drops, stats %d", hookDrops, st.DroppedLoss)
	}
	if delivered+st.DroppedLoss != n {
		t.Errorf("conservation: %d delivered + %d dropped != %d", delivered, st.DroppedLoss, n)
	}
}

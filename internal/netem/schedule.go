package netem

import (
	"math/rand"
	"sort"

	"tdat/internal/packet"
	"tdat/internal/sim"
)

// RateStep is one segment of a piecewise-constant capacity profile: the
// link runs at Rate bytes/sec from At until the next step (0 = infinite).
type RateStep struct {
	At   sim.Micros
	Rate int64
}

// RateSchedule is a time-varying link capacity profile: piecewise-constant
// rate segments, optionally repeating with period Period. It models the
// time-varying service processes of Lübben/Fidler's closed-loop
// flow-control benchmark: cross-traffic, shapers, and radio links whose
// capacity steps or ramps while a transfer is in flight.
type RateSchedule struct {
	steps  []RateStep
	period sim.Micros // 0 = aperiodic (last segment extends forever)
}

// NewRateSchedule builds an aperiodic schedule from explicit steps. Steps
// are sorted by start time; the first segment is extended back to t=0 and
// the last extends forever.
func NewRateSchedule(steps ...RateStep) *RateSchedule {
	s := &RateSchedule{steps: append([]RateStep(nil), steps...)}
	sort.Slice(s.steps, func(i, j int) bool { return s.steps[i].At < s.steps[j].At })
	return s
}

// Periodic builds a schedule that repeats the given steps every period;
// step offsets are taken modulo the period.
func Periodic(period sim.Micros, steps ...RateStep) *RateSchedule {
	s := NewRateSchedule(steps...)
	s.period = period
	return s
}

// Square builds a square-wave capacity profile: high for the first half of
// each period, low for the second — the step profile of a link whose
// cross-traffic switches on and off.
func Square(high, low int64, period sim.Micros) *RateSchedule {
	return Periodic(period,
		RateStep{At: 0, Rate: high},
		RateStep{At: period / 2, Rate: low},
	)
}

// Sawtooth builds a sawtooth capacity profile: each period the rate ramps
// linearly from high down to low in the given number of slices, then jumps
// back to high — a discretized take on a congesting neighbor slowly eating
// the capacity before backing off.
func Sawtooth(high, low int64, period sim.Micros, slices int) *RateSchedule {
	if slices < 2 {
		slices = 2
	}
	steps := make([]RateStep, slices)
	for i := range steps {
		frac := float64(i) / float64(slices-1)
		steps[i] = RateStep{
			At:   period * sim.Micros(i) / sim.Micros(slices),
			Rate: high - int64(frac*float64(high-low)),
		}
	}
	return Periodic(period, steps...)
}

// segmentAt returns the rate in force at t and the absolute end of that
// segment (end < 0 means the segment extends forever).
func (s *RateSchedule) segmentAt(t sim.Micros) (rate int64, end sim.Micros) {
	if len(s.steps) == 0 {
		return 0, -1
	}
	at := t
	var base sim.Micros
	if s.period > 0 {
		base = t - t%s.period
		at = t - base
	}
	// Last step whose At ≤ at; before the first step the first rate holds.
	i := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].At > at }) - 1
	if i < 0 {
		i = 0
	}
	rate = s.steps[i].Rate
	switch {
	case i+1 < len(s.steps):
		end = base + s.steps[i+1].At
	case s.period > 0:
		end = base + s.period
	default:
		end = -1
	}
	if end >= 0 && end <= t {
		// at coincided with the start of the first step of a period while
		// i clamped to 0 — advance to keep the walk strictly progressing.
		end = t + 1
	}
	return rate, end
}

// RateAt returns the capacity in force at t (0 = infinite).
func (s *RateSchedule) RateAt(t sim.Micros) int64 {
	r, _ := s.segmentAt(t)
	return r
}

// maxSerTime caps a single packet's serialization walk: beyond this the
// schedule is effectively a dead link and the transfer has failed anyway.
const maxSerTime = sim.Micros(3_600_000_000) // one simulated hour

// serTime integrates the transmission of n wire bytes starting at t across
// the rate segments it spans, returning the serialization time. A zero-rate
// segment passes the remaining bytes instantly (consistent with Link.Rate
// 0 = infinite bandwidth).
func (s *RateSchedule) serTime(start sim.Micros, bytes int) sim.Micros {
	remaining := int64(bytes)
	cur := start
	for remaining > 0 && cur-start < maxSerTime {
		rate, end := s.segmentAt(cur)
		if rate <= 0 {
			break // infinite capacity: the rest of the packet is free
		}
		if end < 0 {
			cur += remaining * 1_000_000 / rate
			remaining = 0
			break
		}
		avail := end - cur
		can := rate * int64(avail) / 1_000_000
		if can >= remaining {
			cur += remaining * 1_000_000 / rate
			remaining = 0
			break
		}
		remaining -= can
		cur = end
	}
	ser := cur - start
	if ser == 0 {
		ser = 1
	}
	return ser
}

// GEParams parameterizes the two-state Gilbert–Elliott loss process: a
// Markov chain over {good, bad} stepped once per offered packet, with a
// per-state drop probability. Mean burst length is 1/PBadGood packets and
// mean gap between bursts 1/PGoodBad — the long-range-correlated loss of
// interdomain routing memory (Kitsak et al.), as opposed to the i.i.d.
// LossRate model.
type GEParams struct {
	PGoodBad float64 // per-packet transition probability good→bad
	PBadGood float64 // per-packet transition probability bad→good
	DropGood float64 // drop probability while good (usually 0)
	DropBad  float64 // drop probability while bad (near 1)
}

// GilbertElliott returns a LossFunc driving the two-state process from its
// own seeded RNG, so layering it on a link never perturbs the engine's
// random stream (and the same seed reproduces the same burst pattern
// regardless of what else the scenario draws).
func GilbertElliott(seed int64, prm GEParams) LossFunc {
	rnd := rand.New(rand.NewSource(seed))
	bad := false
	return func(_ sim.Micros, _ *packet.Packet) bool {
		if bad {
			if rnd.Float64() < prm.PBadGood {
				bad = false
			}
		} else if rnd.Float64() < prm.PGoodBad {
			bad = true
		}
		drop := prm.DropGood
		if bad {
			drop = prm.DropBad
		}
		return rnd.Float64() < drop
	}
}

// Package netem models the network path between a BGP sender and a
// collector: unidirectional links with finite bandwidth, propagation delay,
// drop-tail queues, and configurable loss (i.i.d. or scripted episodes),
// plus a passive Sniffer tap that records pass-through traffic exactly like
// the tcpdump box in the paper's Figure 2.
package netem

import (
	"fmt"
	"io"

	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/sim"
	"tdat/internal/timerange"
)

// Handler consumes packets at the far end of a link or tap.
type Handler func(p *packet.Packet)

// LossFunc decides whether to drop a packet offered at time t. It allows
// scripting loss episodes (e.g. a faulty interface between t1 and t2) on
// top of the link's i.i.d. LossRate.
type LossFunc func(t sim.Micros, p *packet.Packet) bool

// LinkStats counts what happened on a link.
type LinkStats struct {
	Offered     int // packets offered to the link
	Delivered   int // packets handed to the far end
	DroppedTail int // drop-tail queue overflows
	DroppedLoss int // random or scripted losses
	BytesOut    int64
}

// Link is a unidirectional link: serialization at Rate bytes/sec, a
// drop-tail queue of QueueCap packets awaiting transmission, Delay of
// propagation, and optional loss. A zero Rate means infinite bandwidth.
type Link struct {
	eng *sim.Engine
	dst Handler

	// Rate is the bandwidth in bytes per second (0 = infinite).
	Rate int64
	// Schedule, if set, overrides Rate with a time-varying capacity
	// profile: each packet's serialization time is integrated across the
	// rate segments its transmission spans. FIFO ordering is preserved
	// across rate changes because transmissions still start at
	// max(now, busyUntil) and busyUntil only moves forward.
	Schedule *RateSchedule
	// Delay is the one-way propagation delay.
	Delay sim.Micros
	// QueueCap bounds packets waiting behind the one in transmission
	// (0 = unlimited). This is the "interface buffer" whose overflow causes
	// the paper's receiver-local losses.
	QueueCap int
	// LossRate drops packets i.i.d. with this probability.
	LossRate float64
	// LossHook, if set, is consulted first and can drop deterministically.
	LossHook LossFunc
	// DropHook, if set, observes every packet the link drops — scripted,
	// random, and tail drops alike — at the drop instant. tail reports a
	// queue overflow. This is the simulator's authoritative loss record (the
	// ground truth a passive analyzer must infer); it never affects link
	// behavior.
	DropHook func(t sim.Micros, p *packet.Packet, tail bool)

	stats     LinkStats
	busyUntil sim.Micros
	waiting   int
}

// NewLink builds a link delivering to dst.
func NewLink(eng *sim.Engine, dst Handler) *Link {
	return &Link{eng: eng, dst: dst}
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueLen returns the packets currently waiting behind the transmitter.
func (l *Link) QueueLen() int { return l.waiting }

// Send offers a packet to the link at the current virtual time.
func (l *Link) Send(p *packet.Packet) {
	l.stats.Offered++
	now := l.eng.Now()
	if l.LossHook != nil && l.LossHook(now, p) {
		l.stats.DroppedLoss++
		l.recordDrop(now, p, false)
		return
	}
	if l.LossRate > 0 && l.eng.Rand().Float64() < l.LossRate {
		l.stats.DroppedLoss++
		l.recordDrop(now, p, false)
		return
	}
	transmitting := l.busyUntil > now
	if transmitting && l.QueueCap > 0 && l.waiting >= l.QueueCap {
		l.stats.DroppedTail++
		l.recordDrop(now, p, true)
		return
	}

	start := now
	if transmitting {
		start = l.busyUntil
		l.waiting++
	}
	var ser sim.Micros
	switch {
	case l.Schedule != nil:
		ser = l.Schedule.serTime(start, p.WireLen())
	case l.Rate > 0:
		ser = sim.Micros(int64(p.WireLen()) * 1_000_000 / l.Rate)
		if ser == 0 {
			ser = 1
		}
	}
	done := start + ser
	l.busyUntil = done
	l.eng.At(done, func() {
		if start > now {
			l.waiting--
		}
		l.stats.Delivered++
		l.stats.BytesOut += int64(p.WireLen())
	})
	l.eng.At(done+l.Delay, func() { l.dst(p) })
}

// recordDrop reports a dropped packet to the ground-truth hook.
func (l *Link) recordDrop(t sim.Micros, p *packet.Packet, tail bool) {
	if l.DropHook != nil {
		l.DropHook(t, p, tail)
	}
}

// Direction labels which way a captured packet was heading relative to the
// BGP data flow (paper §II-A: Sender→Receiver is "data", the reverse "ACK").
type Direction int

// Directions of captured traffic.
const (
	DirData Direction = iota // Sender → Receiver
	DirAck                   // Receiver → Sender
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == DirData {
		return "data"
	}
	return "ack"
}

// Capture is one sniffed packet.
type Capture struct {
	Time sim.Micros
	Dir  Direction
	Pkt  *packet.Packet
}

// Sniffer passively records pass-through traffic in both directions and
// forwards it unchanged, like the paper's tcpdump box in front of the
// collector.
type Sniffer struct {
	eng      *sim.Engine
	captures []Capture
	// DropRate simulates tcpdump losing packets (void periods); dropped
	// packets are still forwarded (the sniffer is passive) but not recorded.
	DropRate float64
}

// NewSniffer creates an empty sniffer.
func NewSniffer(eng *sim.Engine) *Sniffer { return &Sniffer{eng: eng} }

// Tap returns a Handler that records packets traveling in dir and forwards
// them to next.
func (s *Sniffer) Tap(dir Direction, next Handler) Handler {
	return func(p *packet.Packet) {
		if s.DropRate == 0 || s.eng.Rand().Float64() >= s.DropRate {
			s.captures = append(s.captures, Capture{Time: s.eng.Now(), Dir: dir, Pkt: p})
		}
		next(p)
	}
}

// Captures returns the recorded packets in capture order.
func (s *Sniffer) Captures() []Capture { return s.captures }

// Reset discards recorded captures.
func (s *Sniffer) Reset() { s.captures = nil }

// WritePcap serializes the capture to a pcap stream.
func (s *Sniffer) WritePcap(w io.Writer) error {
	pw := pcapio.NewWriter(w)
	for i, c := range s.captures {
		frame, err := c.Pkt.Marshal()
		if err != nil {
			return fmt.Errorf("netem: marshaling capture %d: %w", i, err)
		}
		if err := pw.WritePacket(c.Time, frame); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// Span returns the time range covered by the capture.
func (s *Sniffer) Span() (timerange.Range, bool) {
	if len(s.captures) == 0 {
		return timerange.Range{}, false
	}
	return timerange.Range{
		Start: s.captures[0].Time,
		End:   s.captures[len(s.captures)-1].Time + 1,
	}, true
}

// LossEpisodes builds a LossFunc that drops every packet inside any of the
// given windows — the scripted "consecutive loss" and interface-failure
// scenarios of paper §II-B.
func LossEpisodes(windows ...timerange.Range) LossFunc {
	set := timerange.NewSet(windows...)
	return func(t sim.Micros, _ *packet.Packet) bool { return set.Contains(t) }
}

// PathConfig describes one direction of a sender→sniffer→receiver path.
type PathConfig struct {
	// Upstream is the Sender→Sniffer segment (most of the network path).
	UpstreamRate  int64
	UpstreamDelay sim.Micros
	UpstreamQueue int
	UpstreamLoss  float64
	UpstreamHook  LossFunc
	// UpstreamSchedule overrides UpstreamRate with a time-varying
	// capacity profile (see RateSchedule).
	UpstreamSchedule *RateSchedule
	// Downstream is the Sniffer→Receiver segment (local link / receiver
	// interface).
	DownstreamRate  int64
	DownstreamDelay sim.Micros
	DownstreamQueue int
	DownstreamLoss  float64
	DownstreamHook  LossFunc
	// AckLoss applies to the reverse (receiver→sender) path. It is NOT
	// coupled to the data-direction loss: ACKs are small and in practice
	// survive congestion that drops data packets.
	AckLoss float64
}

// Path wires a bidirectional sender↔receiver path with a sniffer co-located
// at the receiver side, per the paper's collection setup: data packets cross
// upstream (sender→sniffer) then downstream (sniffer→receiver); ACKs travel
// the reverse without being re-recorded twice.
type Path struct {
	// DataIn accepts packets from the sender toward the receiver.
	DataIn Handler
	// AckIn accepts packets from the receiver toward the sender.
	AckIn Handler
	// Sniffer records both directions between the path segments.
	Sniffer *Sniffer

	// UpstreamData and DownstreamData expose the data-direction links for
	// stats and scenario tweaks; AckPath likewise for the reverse direction.
	UpstreamData   *Link
	DownstreamData *Link
	AckPath        *Link
}

// NewPath constructs a path delivering data packets to recvIn and ACKs to
// sendIn. The ACK direction shares the upstream characteristics (reverse
// path) with no downstream segment of its own: the sniffer sits on the
// receiver's LAN, so receiver→sniffer delay is negligible by construction.
func NewPath(eng *sim.Engine, cfg PathConfig, recvIn, sendIn Handler) *Path {
	sn := NewSniffer(eng)
	down := NewLink(eng, recvIn)
	down.Rate = cfg.DownstreamRate
	down.Delay = cfg.DownstreamDelay
	down.QueueCap = cfg.DownstreamQueue
	down.LossRate = cfg.DownstreamLoss
	down.LossHook = cfg.DownstreamHook

	up := NewLink(eng, sn.Tap(DirData, down.Send))
	up.Rate = cfg.UpstreamRate
	up.Schedule = cfg.UpstreamSchedule
	up.Delay = cfg.UpstreamDelay
	up.QueueCap = cfg.UpstreamQueue
	up.LossRate = cfg.UpstreamLoss
	up.LossHook = cfg.UpstreamHook

	ack := NewLink(eng, sendIn)
	ack.Rate = cfg.UpstreamRate
	ack.Delay = cfg.UpstreamDelay + cfg.DownstreamDelay
	ack.LossRate = cfg.AckLoss

	return &Path{
		DataIn:         up.Send,
		AckIn:          sn.Tap(DirAck, ack.Send),
		Sniffer:        sn,
		UpstreamData:   up,
		DownstreamData: down,
		AckPath:        ack,
	}
}

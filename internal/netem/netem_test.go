package netem

import (
	"bytes"
	"net/netip"
	"testing"

	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/sim"
	"tdat/internal/timerange"
)

func testPacket(payload int) *packet.Packet {
	return &packet.Packet{
		IP: packet.IPv4{
			Src: netip.MustParseAddr("10.0.0.1"),
			Dst: netip.MustParseAddr("10.0.0.2"),
		},
		TCP:     packet.TCP{SrcPort: 179, DstPort: 40000, Flags: packet.FlagACK},
		Payload: make([]byte, payload),
	}
}

func TestLinkPropagationDelay(t *testing.T) {
	eng := sim.New(0, 1)
	var arrived []sim.Micros
	l := NewLink(eng, func(*packet.Packet) { arrived = append(arrived, eng.Now()) })
	l.Delay = 5000
	l.Send(testPacket(100))
	eng.RunAll(0)
	if len(arrived) != 1 || arrived[0] != 5000 {
		t.Errorf("arrived = %v, want [5000]", arrived)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.New(0, 1)
	var arrived []sim.Micros
	l := NewLink(eng, func(*packet.Packet) { arrived = append(arrived, eng.Now()) })
	l.Rate = 1_000_000   // 1 MB/s → 1 µs per byte
	p := testPacket(946) // wire length 54 + 946 = 1000 bytes → 1000 µs
	l.Send(p)
	l.Send(p) // queued behind the first
	eng.RunAll(0)
	if len(arrived) != 2 || arrived[0] != 1000 || arrived[1] != 2000 {
		t.Errorf("arrived = %v, want [1000 2000]", arrived)
	}
	st := l.Stats()
	if st.Offered != 2 || st.Delivered != 2 || st.BytesOut != 2000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkDropTail(t *testing.T) {
	eng := sim.New(0, 1)
	delivered := 0
	l := NewLink(eng, func(*packet.Packet) { delivered++ })
	l.Rate = 1_000_000
	l.QueueCap = 2
	p := testPacket(946)
	// First transmits, next two queue, rest drop.
	for i := 0; i < 6; i++ {
		l.Send(p)
	}
	eng.RunAll(0)
	st := l.Stats()
	if delivered != 3 || st.DroppedTail != 3 {
		t.Errorf("delivered=%d droppedTail=%d, want 3/3", delivered, st.DroppedTail)
	}
}

func TestLinkQueueDrainsAllowingLaterTraffic(t *testing.T) {
	eng := sim.New(0, 1)
	delivered := 0
	l := NewLink(eng, func(*packet.Packet) { delivered++ })
	l.Rate = 1_000_000
	l.QueueCap = 1
	p := testPacket(946)
	l.Send(p) // transmits until 1000
	l.Send(p) // queued
	l.Send(p) // dropped
	eng.Run(2500)
	l.Send(p) // queue drained; transmits
	eng.RunAll(0)
	if delivered != 3 || l.Stats().DroppedTail != 1 {
		t.Errorf("delivered=%d dropped=%d", delivered, l.Stats().DroppedTail)
	}
}

func TestLinkRandomLossDeterministic(t *testing.T) {
	run := func(seed int64) int {
		eng := sim.New(0, seed)
		delivered := 0
		l := NewLink(eng, func(*packet.Packet) { delivered++ })
		l.LossRate = 0.5
		for i := 0; i < 100; i++ {
			l.Send(testPacket(10))
		}
		eng.RunAll(0)
		return delivered
	}
	a, b := run(7), run(7)
	if a != b {
		t.Errorf("same seed delivered %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Errorf("loss rate 0.5 delivered %d of 100", a)
	}
}

func TestLossEpisodes(t *testing.T) {
	eng := sim.New(0, 1)
	delivered := 0
	l := NewLink(eng, func(*packet.Packet) { delivered++ })
	l.LossHook = LossEpisodes(timerange.R(100, 200))
	send := func(at sim.Micros) { eng.At(at, func() { l.Send(testPacket(1)) }) }
	send(50)
	send(150) // inside the episode: dropped
	send(250)
	eng.RunAll(0)
	if delivered != 2 || l.Stats().DroppedLoss != 1 {
		t.Errorf("delivered=%d droppedLoss=%d", delivered, l.Stats().DroppedLoss)
	}
}

func TestSnifferRecordsAndForwards(t *testing.T) {
	eng := sim.New(0, 1)
	sn := NewSniffer(eng)
	forwarded := 0
	h := sn.Tap(DirData, func(*packet.Packet) { forwarded++ })
	eng.At(10, func() { h(testPacket(5)) })
	eng.At(20, func() { h(testPacket(6)) })
	eng.RunAll(0)
	if forwarded != 2 {
		t.Errorf("forwarded = %d", forwarded)
	}
	caps := sn.Captures()
	if len(caps) != 2 || caps[0].Time != 10 || caps[1].Time != 20 {
		t.Errorf("captures = %+v", caps)
	}
	if caps[0].Dir != DirData {
		t.Errorf("dir = %v", caps[0].Dir)
	}
	span, ok := sn.Span()
	if !ok || span.Start != 10 || span.End != 21 {
		t.Errorf("span = %v,%v", span, ok)
	}
}

func TestSnifferWritePcap(t *testing.T) {
	eng := sim.New(0, 1)
	sn := NewSniffer(eng)
	h := sn.Tap(DirData, func(*packet.Packet) {})
	eng.At(1234, func() { h(testPacket(99)) })
	eng.RunAll(0)
	var buf bytes.Buffer
	if err := sn.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := pcapio.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].TimeMicros != 1234 {
		t.Errorf("time = %d", recs[0].TimeMicros)
	}
	p, err := packet.Decode(recs[0].Data)
	if err != nil || len(p.Payload) != 99 {
		t.Errorf("decode: %v payload=%d", err, len(p.Payload))
	}
}

func TestSnifferDropRate(t *testing.T) {
	eng := sim.New(0, 3)
	sn := NewSniffer(eng)
	sn.DropRate = 0.5
	forwarded := 0
	h := sn.Tap(DirData, func(*packet.Packet) { forwarded++ })
	for i := 0; i < 200; i++ {
		h(testPacket(1))
	}
	if forwarded != 200 {
		t.Errorf("sniffer must forward everything; forwarded=%d", forwarded)
	}
	if got := len(sn.Captures()); got == 0 || got == 200 {
		t.Errorf("captures = %d, want partial", got)
	}
	sn.Reset()
	if len(sn.Captures()) != 0 {
		t.Error("Reset did not clear captures")
	}
}

func TestPathEndToEnd(t *testing.T) {
	eng := sim.New(0, 1)
	var recvTimes, sendTimes []sim.Micros
	p := NewPath(eng, PathConfig{
		UpstreamDelay:   10_000,
		DownstreamDelay: 100,
	},
		func(*packet.Packet) { recvTimes = append(recvTimes, eng.Now()) },
		func(*packet.Packet) { sendTimes = append(sendTimes, eng.Now()) },
	)
	eng.At(0, func() { p.DataIn(testPacket(100)) })
	eng.At(0, func() { p.AckIn(testPacket(0)) })
	eng.RunAll(0)
	if len(recvTimes) != 1 || recvTimes[0] != 10_100 {
		t.Errorf("data arrival = %v, want [10100]", recvTimes)
	}
	if len(sendTimes) != 1 || sendTimes[0] != 10_100 {
		t.Errorf("ack arrival = %v, want [10100]", sendTimes)
	}
	caps := p.Sniffer.Captures()
	if len(caps) != 2 {
		t.Fatalf("captures = %d, want 2", len(caps))
	}
	// Data is captured after the upstream link; the ACK immediately.
	var dataCap, ackCap *Capture
	for i := range caps {
		if caps[i].Dir == DirData {
			dataCap = &caps[i]
		} else {
			ackCap = &caps[i]
		}
	}
	if dataCap == nil || dataCap.Time != 10_000 {
		t.Errorf("data capture = %+v", dataCap)
	}
	if ackCap == nil || ackCap.Time != 0 {
		t.Errorf("ack capture = %+v", ackCap)
	}
}

func TestDirectionString(t *testing.T) {
	if DirData.String() != "data" || DirAck.String() != "ack" {
		t.Error("Direction.String mismatch")
	}
}

func TestAckLossIndependentOfDataLoss(t *testing.T) {
	// Data-direction loss must not drop ACKs (paper footnote 5 would
	// otherwise misclassify upstream-loss scenarios).
	eng := sim.New(0, 21)
	dataGot, ackGot := 0, 0
	p := NewPath(eng, PathConfig{UpstreamLoss: 1.0}, // every data packet dies
		func(*packet.Packet) { dataGot++ },
		func(*packet.Packet) { ackGot++ },
	)
	for i := 0; i < 20; i++ {
		p.DataIn(testPacket(100))
		p.AckIn(testPacket(0))
	}
	eng.RunAll(0)
	if dataGot != 0 {
		t.Errorf("data delivered %d with 100%% upstream loss", dataGot)
	}
	if ackGot != 20 {
		t.Errorf("acks delivered %d of 20 (AckLoss should default to 0)", ackGot)
	}

	// And the explicit AckLoss knob drops in the reverse direction only.
	eng2 := sim.New(0, 22)
	dataGot2, ackGot2 := 0, 0
	p2 := NewPath(eng2, PathConfig{AckLoss: 1.0},
		func(*packet.Packet) { dataGot2++ },
		func(*packet.Packet) { ackGot2++ },
	)
	for i := 0; i < 20; i++ {
		p2.DataIn(testPacket(100))
		p2.AckIn(testPacket(0))
	}
	eng2.RunAll(0)
	if dataGot2 != 20 || ackGot2 != 0 {
		t.Errorf("AckLoss=1: data=%d acks=%d, want 20/0", dataGot2, ackGot2)
	}
}

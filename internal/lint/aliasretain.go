package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "aliasretain",
		Doc: "enforces the zero-copy buffer-ownership contract (DESIGN.md §14): a view " +
			"derived from a caller-owned record buffer — pcapio.ReadInto/EachInto records " +
			"and everything packet.DecodeInto flows out of them — is overwritten by the " +
			"next read, so it must not be stored in a container, sent on a channel, " +
			"returned, or passed to a function whose summary says it retains its argument; " +
			"keeping bytes requires an explicit copy",
		Run: runAliasretain,
	})
}

// pcapioRelPath is the module-relative package whose ReadInto/EachInto calls
// introduce borrowed record buffers. Matching by RelPath rather than import
// path lets the fixture module exercise the same rule as the real tree.
const pcapioRelPath = "internal/pcapio"

func runAliasretain(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBorrows(p, fd)
		}
	}
}

// checkBorrows analyzes one function: it finds every borrow scope (the
// function body for ReadInto calls, each EachInto callback literal for its
// record parameter), propagates the borrow through local bindings, and
// reports sinks that let a view outlive the buffer's validity window.
func checkBorrows(p *Pass, fd *ast.FuncDecl) {
	// Function-body scope: every ReadInto target is borrowed for the rest of
	// the function (the next ReadInto overwrites it, so accumulating sinks
	// are unsafe no matter where they sit).
	fnScope := &borrowScope{pass: p, region: fd.Body, borrowed: map[types.Object]string{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(p.Info, call)
		if callee == nil || p.Prog.RelPathOf(callee) != pcapioRelPath {
			return true
		}
		switch callee.Name() {
		case "ReadInto":
			args := callArgs(p.Info, call)
			if len(args) >= 2 {
				if root := rootIdent(stripAddr(args[1])); root != nil {
					if obj := objOf(p.Info, root); obj != nil {
						fnScope.borrowed[obj] = obj.Name() + " (ReadInto record)"
					}
				}
			}
		case "EachInto":
			args := call.Args
			if len(args) != 1 {
				return true
			}
			switch cb := unparen(args[0]).(type) {
			case *ast.FuncLit:
				// The callback's record parameter is borrowed for the
				// callback's dynamic extent only; a fresh scope keeps the
				// enclosing function's own locals classified as "outside".
				cbScope := &borrowScope{pass: p, region: cb.Body, borrowed: map[types.Object]string{}}
				if cb.Type.Params != nil {
					for _, field := range cb.Type.Params.List {
						for _, name := range field.Names {
							if obj := p.Info.Defs[name]; obj != nil && refBearing(obj.Type()) {
								cbScope.borrowed[obj] = name.Name + " (EachInto record)"
							}
						}
					}
				}
				cbScope.check()
			case *ast.Ident:
				// Named callback: its summary must show the record parameter
				// neither escaping nor returned.
				if fn, ok := objOf(p.Info, cb).(*types.Func); ok {
					if sum := p.Prog.SummaryOf(fn); sum != nil {
						if fl := sum.flow(0); fl.Escapes || fl.ToResult {
							p.Reportf(call.Pos(),
								"EachInto callback %s retains the record buffer (its summary lets the record escape); copy the bytes it keeps",
								fn.Name())
						}
					}
				}
			}
		}
		return true
	})
	fnScope.check()
}

// borrowScope is one dynamic extent inside which a set of objects hold
// borrowed views of a caller-owned buffer.
type borrowScope struct {
	pass *Pass
	// region is the body whose statements are scanned; locals declared
	// outside it (captured variables, enclosing-function params) are
	// overwrite-only relay targets.
	region *ast.BlockStmt
	// borrowed maps object → witness description of the borrow it carries.
	borrowed map[types.Object]string
}

func (bs *borrowScope) check() {
	if len(bs.borrowed) == 0 {
		return
	}
	bs.propagate()
	bs.sinks()
}

// propagate grows the borrowed set to a fixpoint: plain overwrites and
// callee ToParams flows relay the borrow (the sanctioned DecodeInto-into-a-
// reused-struct pattern); derived expressions (slices, field views, results
// of callees that return their argument) carry it too.
func (bs *borrowScope) propagate() {
	info := bs.pass.Info
	for round := 0; round < 32; round++ {
		changed := false
		mark := func(obj types.Object, why string) {
			if obj == nil || obj.Name() == "_" {
				return
			}
			if _, ok := bs.borrowed[obj]; !ok {
				bs.borrowed[obj] = why
				changed = true
			}
		}
		ast.Inspect(bs.region, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					var rhs ast.Expr
					if len(s.Rhs) == len(s.Lhs) {
						rhs = s.Rhs[i]
					} else if len(s.Rhs) == 1 {
						rhs = s.Rhs[0]
					}
					if rhs == nil {
						continue
					}
					why, ok := bs.derives(rhs)
					if !ok {
						continue
					}
					if id, plain := lhs.(*ast.Ident); plain {
						mark(objOf(info, id), why)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						if why, ok := bs.derives(s.Values[i]); ok {
							mark(info.Defs[name], why)
						}
					}
				}
			case *ast.RangeStmt:
				if why, ok := bs.derives(s.X); ok {
					for _, e := range []ast.Expr{s.Key, s.Value} {
						if id, isID := e.(*ast.Ident); isID {
							if t := info.TypeOf(id); t != nil && refBearing(t) {
								mark(objOf(info, id), why)
							}
						}
					}
				}
			case *ast.CallExpr:
				bs.propagateCall(s, mark)
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// propagateCall applies callee ToParams flows: DecodeInto(rec.Data, &pkt)
// makes pkt borrowed.
func (bs *borrowScope) propagateCall(call *ast.CallExpr, mark func(types.Object, string)) {
	info := bs.pass.Info
	callee := staticCallee(info, call)
	sum := bs.pass.Prog.SummaryOf(callee)
	if sum == nil {
		return
	}
	args := callArgs(info, call)
	for i, arg := range args {
		why, ok := bs.derives(arg)
		if !ok {
			continue
		}
		fl := sum.flow(argIndex(callee, i))
		if fl.ToParams == 0 {
			continue
		}
		for j, target := range args {
			if fl.ToParams&(1<<uint(argIndex(callee, j)%64)) == 0 {
				continue
			}
			if root := rootIdent(stripAddr(target)); root != nil {
				mark(objOf(info, root), why)
			}
		}
	}
}

// derives reports whether e's value is a view of a borrowed buffer, and the
// witness description of the borrow it derives from. The cases mirror the
// summary engine's taint evaluator: field/index/slice views carry the alias,
// scalars and copying conversions do not, append copies scalar elements when
// spread, and module callees pass aliases through per their ToResult flows.
func (bs *borrowScope) derives(e ast.Expr) (string, bool) {
	info := bs.pass.Info
	switch x := e.(type) {
	case *ast.Ident:
		why, ok := bs.borrowed[objOf(info, x)]
		return why, ok
	case *ast.ParenExpr:
		return bs.derives(x.X)
	case *ast.SelectorExpr:
		if t := info.TypeOf(x); t != nil && !refBearing(t) {
			return "", false
		}
		if sel := info.Selections[x]; sel != nil && sel.Kind() != types.FieldVal {
			return "", false
		}
		return bs.derives(x.X)
	case *ast.IndexExpr:
		if t := info.TypeOf(x); t != nil && !refBearing(t) {
			return "", false
		}
		return bs.derives(x.X)
	case *ast.SliceExpr:
		return bs.derives(x.X)
	case *ast.StarExpr:
		return bs.derives(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return bs.derives(x.X)
		}
		return "", false
	case *ast.TypeAssertExpr:
		return bs.derives(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if why, ok := bs.derives(el); ok {
				return why, true
			}
		}
		return "", false
	case *ast.CallExpr:
		return bs.callDerives(x)
	}
	return "", false
}

func (bs *borrowScope) callDerives(call *ast.CallExpr) (string, bool) {
	info := bs.pass.Info
	// Conversions: string↔[]byte copy; reference-shaped conversions alias.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src := info.TypeOf(call.Args[0])
		if refBearing(tv.Type) && src != nil && refBearing(src) && !isString(src) && !isString(tv.Type) {
			return bs.derives(call.Args[0])
		}
		return "", false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				return bs.appendDerives(call)
			}
			return "", false
		}
	}
	callee := staticCallee(info, call)
	sum := bs.pass.Prog.SummaryOf(callee)
	if sum == nil {
		return "", false
	}
	args := callArgs(info, call)
	for i, arg := range args {
		if sum.flow(argIndex(callee, i)).ToResult {
			if why, ok := bs.derives(arg); ok {
				return why, true
			}
		}
	}
	return "", false
}

// appendDerives: append(dst, view...) with scalar elements copies the bytes
// (the sanctioned ownership transfer); appending a reference-bearing element
// keeps the alias alive in dst.
func (bs *borrowScope) appendDerives(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	if why, ok := bs.derives(call.Args[0]); ok {
		return why, true
	}
	elemScalar := false
	if t := bs.pass.Info.TypeOf(call.Args[0]); t != nil {
		if sl, ok := t.Underlying().(*types.Slice); ok {
			elemScalar = !refBearing(sl.Elem())
		}
	}
	for _, arg := range call.Args[1:] {
		if call.Ellipsis.IsValid() && elemScalar {
			continue
		}
		if why, ok := bs.derives(arg); ok {
			return why, true
		}
	}
	return "", false
}

// sinks walks the scope once and reports every construct that lets a
// borrowed view outlive its validity window.
func (bs *borrowScope) sinks() {
	ast.Inspect(bs.region, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			bs.sinkStores(s)
		case *ast.SendStmt:
			if why, ok := bs.derives(s.Value); ok {
				bs.pass.Reportf(s.Pos(),
					"view of caller-owned buffer %s sent on a channel: the receiver reads it after the next read overwrites it; send a copy",
					why)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if why, ok := bs.derives(res); ok {
					bs.pass.Reportf(res.Pos(),
						"view of caller-owned buffer %s returned past its validity window; return a copy",
						why)
				}
			}
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				if why, ok := bs.derives(arg); ok {
					bs.pass.Reportf(arg.Pos(),
						"view of caller-owned buffer %s passed to a goroutine that may outlive it; pass a copy",
						why)
				}
			}
		case *ast.CallExpr:
			bs.sinkCall(s)
		}
		return true
	})
}

// sinkStores flags accumulation stores of borrowed views: container writes
// (index/map element, non-spread append) survive the iteration that wrote
// them, so the view inside them goes stale on the next read. Plain
// overwrites — including field stores that reset every iteration — relay the
// borrow instead and were handled by propagate.
func (bs *borrowScope) sinkStores(s *ast.AssignStmt) {
	info := bs.pass.Info
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// Non-spread append of a borrowed ref-bearing element accumulates.
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			for _, arg := range call.Args[1:] {
				if call.Ellipsis.IsValid() {
					if t := info.TypeOf(call.Args[0]); t != nil {
						if sl, ok := t.Underlying().(*types.Slice); ok && !refBearing(sl.Elem()) {
							continue // spread copy of scalar bytes
						}
					}
				}
				if why, ok := bs.derives(arg); ok {
					bs.pass.Reportf(arg.Pos(),
						"view of caller-owned buffer %s appended to %s: the element outlives the next read; append a copy",
						why, describeTarget(lhs))
				}
			}
			continue
		}
		why, ok := bs.derives(rhs)
		if !ok {
			continue
		}
		switch target := unparen(lhs).(type) {
		case *ast.IndexExpr:
			bs.pass.Reportf(s.Pos(),
				"view of caller-owned buffer %s stored into element of %s: the entry outlives the next read; store a copy",
				why, describeTarget(target.X))
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
			// Overwrite-style store: allowed as a relay unless the root is a
			// package-level variable, which outlives every read.
			if root := rootIdent(lhs); root != nil {
				if obj := objOf(info, root); obj != nil {
					if v, isVar := obj.(*types.Var); isVar && v.Parent() == bs.pass.Pkg.Scope() {
						bs.pass.Reportf(s.Pos(),
							"view of caller-owned buffer %s stored in package variable %s: it goes stale at the next read; store a copy",
							why, root.Name)
					}
				}
			}
		}
	}
}

// sinkCall flags passing a borrowed view to a callee whose summary retains
// it (stores it to the heap or a global).
func (bs *borrowScope) sinkCall(call *ast.CallExpr) {
	info := bs.pass.Info
	callee := staticCallee(info, call)
	sum := bs.pass.Prog.SummaryOf(callee)
	if sum == nil {
		return
	}
	args := callArgs(info, call)
	for i, arg := range args {
		why, ok := bs.derives(arg)
		if !ok {
			continue
		}
		if sum.flow(argIndex(callee, i)).Escapes {
			bs.pass.Reportf(arg.Pos(),
				"view of caller-owned buffer %s passed to %s, which retains its argument (summary: escapes); pass a copy",
				why, callee.Name())
		}
	}
}

// describeTarget renders an assignment target for diagnostics.
func describeTarget(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "a container"
}

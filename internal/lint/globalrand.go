package lint

import (
	"go/ast"
)

// globalrandAllowed are the math/rand package-level names that construct an
// explicitly seeded generator rather than drawing from the shared global
// source.
var globalrandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func init() {
	Register(&Analyzer{
		Name: "globalrand",
		Doc: "forbids the math/rand global-source functions (rand.Intn, rand.Float64, ...) " +
			"and wall-clock-seeded generators outside tests: tracegen/tcpsim/netem runs must " +
			"be reproducible from a seed for the ground-truth oracle to score them",
		Run: runGlobalrand,
	})
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncCall(p.Info, call)
			if !ok || pkg != "math/rand" {
				return true
			}
			if !globalrandAllowed[name] {
				p.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; thread a seeded *rand.Rand instead (simulator reproducibility)",
					name)
				return true
			}
			if (name == "New" || name == "NewSource") && containsWallclockSeed(p, call) {
				p.Reportf(call.Pos(),
					"rand.%s seeded from the wall clock defeats reproducibility; take the seed from a flag or config", name)
			}
			return true
		})
	}
}

// containsWallclockSeed reports whether any argument of call reaches into
// time.Now (the classic rand.NewSource(time.Now().UnixNano()) anti-pattern).
func containsWallclockSeed(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := pkgFuncCall(p.Info, inner); ok && pkg == "time" && name == "Now" {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

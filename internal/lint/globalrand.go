package lint

import (
	"go/ast"
)

// globalrandAllowed are the math/rand package-level names that construct an
// explicitly seeded generator rather than drawing from the shared global
// source.
var globalrandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func init() {
	Register(&Analyzer{
		Name: "globalrand",
		Doc: "forbids the math/rand global-source functions (rand.Intn, rand.Float64, ...) " +
			"and wall-clock-seeded generators — directly or through any chain of helper calls " +
			"(interprocedural summaries): tracegen/tcpsim/netem runs must be reproducible " +
			"from a seed for the ground-truth oracle to score them",
		Run: runGlobalrand,
	})
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncCall(p.Info, call)
			if ok && (pkg == "math/rand" || pkg == "math/rand/v2") {
				if !globalrandAllowed[name] {
					p.Reportf(call.Pos(),
						"rand.%s draws from the process-global source; thread a seeded *rand.Rand instead (simulator reproducibility)",
						name)
					return true
				}
				if (name == "New" || name == "NewSource") && containsWallclockSeed(p, call) {
					p.Reportf(call.Pos(),
						"rand.%s seeded from the wall clock defeats reproducibility; take the seed from a flag or config", name)
				}
				return true
			}
			if callee := staticCallee(p.Info, call); callee != nil {
				if sum := p.Prog.SummaryOf(callee); sum != nil && sum.GlobalrandVia != "" {
					p.Reportf(call.Pos(),
						"call to %s reaches the process-global rand source (%s); thread a seeded *rand.Rand instead",
						callee.Name(), chainWitness(callee.Name(), sum.GlobalrandVia))
				}
			}
			return true
		})
	}
}

// containsWallclockSeed reports whether any argument of call reaches into
// time.Now — the classic rand.NewSource(time.Now().UnixNano()) anti-pattern —
// either directly or through a module helper whose summary reads the clock.
func containsWallclockSeed(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := pkgFuncCall(p.Info, inner); ok && pkg == "time" && name == "Now" {
				found = true
				return false
			}
			if callee := staticCallee(p.Info, inner); callee != nil {
				if sum := p.Prog.SummaryOf(callee); sum != nil && sum.WallclockVia != "" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

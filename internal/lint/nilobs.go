package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "nilobs",
		Doc: "requires every exported pointer-receiver method in internal/obs to begin " +
			"with a nil-receiver guard (or delegate to one that does): the disabled " +
			"observability fast path hands nil handles to the hot pipeline, so a missing " +
			"guard is a latent crash exactly when metrics are off",
		Run: runNilobs,
	})
}

func runNilobs(p *Pass) {
	if p.RelPath != "internal/obs" {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, ok := pointerRecvName(p, fd)
			if !ok {
				continue
			}
			if recvName == "" || recvName == "_" {
				continue // body cannot dereference an unnamed receiver
			}
			if len(fd.Body.List) == 0 || isNilGuard(fd.Body.List[0], recvName) || isDelegation(fd.Body, recvName) {
				continue
			}
			p.Reportf(fd.Name.Pos(),
				"exported method %s has a pointer receiver but no leading nil guard (if %s == nil { ... }); internal/obs promises nil receivers are no-ops",
				fd.Name.Name, recvName)
		}
	}
}

// pointerRecvName returns the receiver identifier when fd's receiver is a
// pointer type; ok=false for value receivers (copy semantics make them
// nil-proof already).
func pointerRecvName(p *Pass, fd *ast.FuncDecl) (name string, ok bool) {
	field := fd.Recv.List[0]
	var obj types.Object
	if len(field.Names) > 0 {
		name = field.Names[0].Name
		obj = p.Info.Defs[field.Names[0]]
	}
	var t types.Type
	if obj != nil {
		t = obj.Type()
	} else {
		t = p.Info.TypeOf(field.Type)
	}
	if t == nil {
		return "", false
	}
	_, isPtr := t.(*types.Pointer)
	return name, isPtr
}

// isNilGuard recognizes a leading `if recv == nil { ... }` (or != nil
// wrapping the body, or a switch-free comparison either way round).
func isNilGuard(stmt ast.Stmt, recv string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	comparesRecvNil := (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
	if !comparesRecvNil {
		return false
	}
	switch bin.Op.String() {
	case "==", "!=":
		return true
	}
	return false
}

// isDelegation recognizes a single-statement body that forwards to another
// method on the same receiver (c.Add(1) from Inc) — the guard lives in the
// callee.
func isDelegation(body *ast.BlockStmt, recv string) bool {
	if len(body.List) != 1 {
		return false
	}
	var call ast.Expr
	switch s := body.List[0].(type) {
	case *ast.ExprStmt:
		call = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call = s.Results[0]
	default:
		return false
	}
	ce, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ce.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == recv
}

package lint

import (
	"go/ast"
	"go/types"
)

// wallclockBanned lists the time functions that read the wall clock or
// schedule against it. Analyzer packages must derive every timestamp from
// the trace (timerange.Micros); only the observability layer and command
// front-ends may consult real time.
var wallclockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true, "Sleep": true,
}

func init() {
	Register(&Analyzer{
		Name: "wallclock",
		Doc: "forbids wall-clock reads (time.Now, time.Since, time.Tick, ...) outside " +
			"internal/obs and cmd/ — directly, as a stored function value, or hidden " +
			"behind any chain of helper calls (interprocedural summaries): the analyzer " +
			"is passive, so all time must come from the trace (PAPER.md §III); " +
			"self-instrumentation goes through the obs clock",
		Run: runWallclock,
	})
}

func runWallclock(p *Pass) {
	if sanctionedClockScope(&Package{RelPath: p.RelPath, Types: p.Pkg}) {
		return
	}
	for _, f := range p.Files {
		// calls records the expressions in call position, so a banned
		// function referenced as a value (stored, passed, assigned) can be
		// told apart from a direct call and reported with its own message.
		calls := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				calls[unparen(c.Fun)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if pkgPath, name, ok := pkgSelector(p.Info, x); ok && pkgPath == "time" && wallclockBanned[name] {
					if calls[ast.Expr(x)] {
						p.Reportf(x.Pos(),
							"time.%s reads the wall clock in analyzer code; derive time from the trace, or use obs.Now/obs.Since for self-instrumentation",
							name)
					} else {
						p.Reportf(x.Pos(),
							"time.%s captured as a function value smuggles the wall clock into analyzer code; derive time from the trace, or use obs.Now/obs.Since",
							name)
					}
				}
			case *ast.CallExpr:
				callee := staticCallee(p.Info, x)
				if callee == nil {
					return true
				}
				if sum := p.Prog.SummaryOf(callee); sum != nil && sum.WallclockVia != "" {
					p.Reportf(x.Pos(),
						"call to %s reaches the wall clock (%s); derive time from the trace, or use obs.Now/obs.Since for self-instrumentation",
						callee.Name(), chainWitness(callee.Name(), sum.WallclockVia))
				}
			}
			return true
		})
	}
}

// pkgSelector resolves sel to a package-level name of an imported package
// whether or not it is being called.
func pkgSelector(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

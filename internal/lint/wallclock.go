package lint

import (
	"go/ast"
	"strings"
)

// wallclockBanned lists the time functions that read the wall clock or
// schedule against it. Analyzer packages must derive every timestamp from
// the trace (timerange.Micros); only the observability layer and command
// front-ends may consult real time.
var wallclockBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
	"After": true, "AfterFunc": true, "Sleep": true,
}

func init() {
	Register(&Analyzer{
		Name: "wallclock",
		Doc: "forbids wall-clock reads (time.Now, time.Since, time.Tick, ...) outside " +
			"internal/obs and cmd/: the analyzer is passive, so all time must come from " +
			"the trace (PAPER.md §III); self-instrumentation goes through the obs clock",
		Run: runWallclock,
	})
}

func runWallclock(p *Pass) {
	if p.RelPath == "internal/obs" || strings.HasPrefix(p.RelPath, "cmd/") || p.PkgName() == "main" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFuncCall(p.Info, call)
			if !ok || pkg != "time" || !wallclockBanned[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock in analyzer code; derive time from the trace, or use obs.Now/obs.Since for self-instrumentation",
				name)
			return true
		})
	}
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	RelPath    string // relative to the module root; "." for the root package
	Dir        string
	ModRoot    string // absolute module root directory
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
}

// Load enumerates patterns (e.g. "./...") relative to dir with the go
// command, parses each package's non-test sources, and type-checks them
// with the stdlib source importer — no external dependencies, per the
// module's zero-dep rule. Test files are deliberately excluded: the
// invariants tdatlint enforces (trace-derived time, seeded randomness)
// do not bind test harness code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modPath, modRoot, err := modInfo(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// Module-internal imports are resolved against the packages this very
	// load has already checked (topological order below guarantees the
	// dependency is done first); everything else falls through to the stdlib
	// source importer. Sharing one *types.Package per module package keeps
	// type identity consistent across the whole program — the property the
	// interprocedural summary engine leans on.
	imp := &moduleImporter{
		base:  importer.ForCompiler(fset, "source", nil),
		local: map[string]*types.Package{},
	}
	listed = topoSort(listed)
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil && tpkg == nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", lp.ImportPath, err)
		}
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-check %s: %v (and %d more)", lp.ImportPath, typeErrs[0], len(typeErrs)-1)
		}
		imp.local[lp.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			RelPath:    relPkgPath(modPath, lp.ImportPath),
			Dir:        lp.Dir,
			ModRoot:    modRoot,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// moduleImporter resolves imports of packages loaded in this very run from
// their checked form, deferring to base (the stdlib source importer) for
// everything outside the load set.
type moduleImporter struct {
	base  types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.base.Import(path)
}

// topoSort orders listed so that every package follows all its in-set
// dependencies (valid Go has no import cycles; any malformed leftovers are
// appended in listing order and fail type-check with a real error).
func topoSort(listed []listedPackage) []listedPackage {
	byPath := make(map[string]int, len(listed))
	for i, lp := range listed {
		byPath[lp.ImportPath] = i
	}
	done := make([]bool, len(listed))
	out := make([]listedPackage, 0, len(listed))
	var visit func(i int, trail map[int]bool)
	visit = func(i int, trail map[int]bool) {
		if done[i] || trail[i] {
			return
		}
		trail[i] = true
		for _, dep := range listed[i].Imports {
			if j, ok := byPath[dep]; ok {
				visit(j, trail)
			}
		}
		delete(trail, i)
		done[i] = true
		out = append(out, listed[i])
	}
	for i := range listed {
		visit(i, map[int]bool{})
	}
	return out
}

// modInfo returns the module path and root directory governing dir.
func modInfo(dir string) (path, root string, err error) {
	out, err := runGo(dir, "list", "-m", "-f", "{{.Path}}\n{{.Dir}}")
	if err != nil {
		return "", "", err
	}
	fields := strings.SplitN(strings.TrimSpace(out), "\n", 2)
	if len(fields) != 2 || fields[0] == "" || fields[1] == "" {
		return "", "", fmt.Errorf("lint: cannot resolve module for %s (output %q)", dir, out)
	}
	return fields[0], fields[1], nil
}

// relPkgPath strips the module prefix off importPath.
func relPkgPath(modPath, importPath string) string {
	if importPath == modPath {
		return "."
	}
	if rel, ok := strings.CutPrefix(importPath, modPath+"/"); ok {
		return rel
	}
	return importPath
}

// goList resolves package patterns to their file sets.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports", "--"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var pkgs []listedPackage
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// runGo invokes the go command in dir and returns its stdout.
func runGo(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return "", fmt.Errorf("lint: go %s: %s", strings.Join(args, " "), msg)
	}
	return stdout.String(), nil
}

package lint

import (
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	type entry struct {
		code   string
		reason string
		bad    bool
	}
	cases := []struct {
		name string
		text string
		isIg bool
		want []entry
	}{
		{"well-formed", "//tdatlint:ignore wallclock the profile times itself", true,
			[]entry{{"wallclock", "the profile times itself", false}}},
		{"leading space", "// tdatlint:ignore maporder keys sorted upstream", true,
			[]entry{{"maporder", "keys sorted upstream", false}}},
		{"missing reason", "//tdatlint:ignore wallclock", true,
			[]entry{{"wallclock", "", true}}},
		{"missing code", "//tdatlint:ignore", true,
			[]entry{{"", "", true}}},
		{"missing code whitespace", "//tdatlint:ignore   ", true,
			[]entry{{"", "", true}}},
		{"multi-code", "//tdatlint:ignore globalrand,wallclock deliberate demo", true,
			[]entry{{"globalrand", "deliberate demo", false}, {"wallclock", "deliberate demo", false}}},
		{"multi-code missing reason", "//tdatlint:ignore globalrand,wallclock", true,
			[]entry{{"globalrand", "", true}, {"wallclock", "", true}}},
		{"multi-code trailing comma", "//tdatlint:ignore maporder, keys sorted", true,
			[]entry{{"maporder", "keys sorted", false}, {"", "", true}}},
		{"not ours", "// just a comment", false, nil},
		{"prefix collision", "//tdatlint:ignorexyz wallclock r", false, nil},
		{"block comment", "/*tdatlint:ignore wallclock r*/", false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			igs, ok := parseIgnore(tc.text)
			if ok != tc.isIg {
				t.Fatalf("parseIgnore(%q) recognized=%v, want %v", tc.text, ok, tc.isIg)
			}
			if !ok {
				return
			}
			if len(igs) != len(tc.want) {
				t.Fatalf("parseIgnore(%q) = %d entries, want %d", tc.text, len(igs), len(tc.want))
			}
			for i, ig := range igs {
				w := tc.want[i]
				if ig.code != w.code || ig.reason != w.reason || (ig.bad != "") != w.bad {
					t.Errorf("parseIgnore(%q)[%d] = code %q reason %q bad %q; want code %q reason %q bad=%v",
						tc.text, i, ig.code, ig.reason, ig.bad, w.code, w.reason, w.bad)
				}
			}
		})
	}
}

func TestSuppressionMatching(t *testing.T) {
	mk := func(line int) *suppressions {
		ig := &ignore{file: "a.go", line: line, code: "wallclock", reason: "r"}
		return &suppressions{
			list:  []*ignore{ig},
			byKey: map[string]map[int][]*ignore{"a.go": {line: {ig}}},
		}
	}
	diag := Diagnostic{File: "a.go", Line: 10, Code: "wallclock"}

	if s := mk(10); !s.matches(diag) {
		t.Error("same-line ignore should suppress")
	}
	if s := mk(9); !s.matches(diag) {
		t.Error("line-above ignore should suppress")
	}
	if s := mk(8); s.matches(diag) {
		t.Error("ignore two lines up must not suppress")
	}
	if s := mk(11); s.matches(diag) {
		t.Error("ignore below the diagnostic must not suppress")
	}
	other := diag
	other.Code = "maporder"
	if s := mk(10); s.matches(other) {
		t.Error("code mismatch must not suppress")
	}
	wrongFile := diag
	wrongFile.File = "b.go"
	if s := mk(10); s.matches(wrongFile) {
		t.Error("file mismatch must not suppress")
	}
}

func TestSuppressionProblems(t *testing.T) {
	used := &ignore{file: "a.go", line: 3, code: "wallclock", reason: "r", used: true}
	unused := &ignore{file: "a.go", line: 5, code: "wallclock", reason: "r"}
	otherAnalyzer := &ignore{file: "a.go", line: 7, code: "maporder", reason: "r"}
	malformed := &ignore{file: "a.go", line: 9, bad: "missing code"}
	s := &suppressions{list: []*ignore{used, unused, otherAnalyzer, malformed}}

	got := s.problems(map[string]bool{"wallclock": true})
	if len(got) != 2 {
		t.Fatalf("problems = %d diagnostics (%v), want 2", len(got), got)
	}
	var codes []string
	for _, d := range got {
		codes = append(codes, d.Code)
	}
	joined := strings.Join(codes, ",")
	if !strings.Contains(joined, "unusedignore") || !strings.Contains(joined, "badignore") {
		t.Errorf("problems codes = %v, want one unusedignore and one badignore", codes)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/core/pipeline.go", Line: 12, Col: 3, Code: "wallclock", Message: "m"}
	want := "internal/core/pipeline.go:12:3: wallclock: m"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestRelFile(t *testing.T) {
	if got := relFile("/repo", "/repo/internal/a.go"); got != "internal/a.go" {
		t.Errorf("relFile inside root = %q", got)
	}
	if got := relFile("/repo", "/elsewhere/b.go"); got != "/elsewhere/b.go" {
		t.Errorf("relFile outside root = %q", got)
	}
	if got := relFile("", "c.go"); got != "c.go" {
		t.Errorf("relFile empty root = %q", got)
	}
}

func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"aliasretain", "globalrand", "maporder", "nilobs", "poolleak", "setpurity", "wallclock"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s (sorted)", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%s) does not round-trip", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown analyzer should be nil")
	}
}

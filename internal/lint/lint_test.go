package lint

import (
	"strings"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		name   string
		text   string
		isIg   bool
		code   string
		reason string
		bad    bool
	}{
		{"well-formed", "//tdatlint:ignore wallclock the profile times itself", true, "wallclock", "the profile times itself", false},
		{"leading space", "// tdatlint:ignore maporder keys sorted upstream", true, "maporder", "keys sorted upstream", false},
		{"missing reason", "//tdatlint:ignore wallclock", true, "wallclock", "", true},
		{"missing code", "//tdatlint:ignore", true, "", "", true},
		{"missing code whitespace", "//tdatlint:ignore   ", true, "", "", true},
		{"not ours", "// just a comment", false, "", "", false},
		{"prefix collision", "//tdatlint:ignorexyz wallclock r", false, "", "", false},
		{"block comment", "/*tdatlint:ignore wallclock r*/", false, "", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ig, ok := parseIgnore(tc.text)
			if ok != tc.isIg {
				t.Fatalf("parseIgnore(%q) recognized=%v, want %v", tc.text, ok, tc.isIg)
			}
			if !ok {
				return
			}
			if ig.code != tc.code || ig.reason != tc.reason || (ig.bad != "") != tc.bad {
				t.Errorf("parseIgnore(%q) = code %q reason %q bad %q; want code %q reason %q bad=%v",
					tc.text, ig.code, ig.reason, ig.bad, tc.code, tc.reason, tc.bad)
			}
		})
	}
}

func TestSuppressionMatching(t *testing.T) {
	mk := func(line int) *suppressions {
		ig := &ignore{file: "a.go", line: line, code: "wallclock", reason: "r"}
		return &suppressions{
			list:  []*ignore{ig},
			byKey: map[string]map[int][]*ignore{"a.go": {line: {ig}}},
		}
	}
	diag := Diagnostic{File: "a.go", Line: 10, Code: "wallclock"}

	if s := mk(10); !s.matches(diag) {
		t.Error("same-line ignore should suppress")
	}
	if s := mk(9); !s.matches(diag) {
		t.Error("line-above ignore should suppress")
	}
	if s := mk(8); s.matches(diag) {
		t.Error("ignore two lines up must not suppress")
	}
	if s := mk(11); s.matches(diag) {
		t.Error("ignore below the diagnostic must not suppress")
	}
	other := diag
	other.Code = "maporder"
	if s := mk(10); s.matches(other) {
		t.Error("code mismatch must not suppress")
	}
	wrongFile := diag
	wrongFile.File = "b.go"
	if s := mk(10); s.matches(wrongFile) {
		t.Error("file mismatch must not suppress")
	}
}

func TestSuppressionProblems(t *testing.T) {
	used := &ignore{file: "a.go", line: 3, code: "wallclock", reason: "r", used: true}
	unused := &ignore{file: "a.go", line: 5, code: "wallclock", reason: "r"}
	otherAnalyzer := &ignore{file: "a.go", line: 7, code: "maporder", reason: "r"}
	malformed := &ignore{file: "a.go", line: 9, bad: "missing code"}
	s := &suppressions{list: []*ignore{used, unused, otherAnalyzer, malformed}}

	got := s.problems(map[string]bool{"wallclock": true})
	if len(got) != 2 {
		t.Fatalf("problems = %d diagnostics (%v), want 2", len(got), got)
	}
	var codes []string
	for _, d := range got {
		codes = append(codes, d.Code)
	}
	joined := strings.Join(codes, ",")
	if !strings.Contains(joined, "unusedignore") || !strings.Contains(joined, "badignore") {
		t.Errorf("problems codes = %v, want one unusedignore and one badignore", codes)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "internal/core/pipeline.go", Line: 12, Col: 3, Code: "wallclock", Message: "m"}
	want := "internal/core/pipeline.go:12:3: wallclock: m"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestRelFile(t *testing.T) {
	if got := relFile("/repo", "/repo/internal/a.go"); got != "internal/a.go" {
		t.Errorf("relFile inside root = %q", got)
	}
	if got := relFile("/repo", "/elsewhere/b.go"); got != "/elsewhere/b.go" {
		t.Errorf("relFile outside root = %q", got)
	}
	if got := relFile("", "c.go"); got != "c.go" {
		t.Errorf("relFile empty root = %q", got)
	}
}

func TestAnalyzersRegistered(t *testing.T) {
	want := []string{"globalrand", "maporder", "nilobs", "setpurity", "wallclock"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s (sorted)", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%s) does not round-trip", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown analyzer should be nil")
	}
}

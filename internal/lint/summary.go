package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// summarize computes fi's summary from its body and the current summaries
// of its callees (one fixpoint round). The analysis is flow-insensitive:
// parameter aliases ("taint") propagate through assignments to a local
// fixpoint, then one effects pass records where aliases end up and which
// ambient effects (clock, randomness, ordered output, pool traffic) the
// body exercises. Function literals are analyzed inline — their bodies run
// with the enclosing function's bindings, which both handles captured
// variables and conservatively attributes a literal's effects to its
// definer even when the literal is only stored.
func (prog *Program) summarize(fi *funcInfo) *Summary {
	st := &intraState{
		prog:  prog,
		fi:    fi,
		info:  fi.pkg.Info,
		pidx:  map[types.Object]int{},
		taint: map[types.Object]uint64{},
	}
	params := paramObjs(fi.pkg.Info, fi.decl)
	st.sum = &Summary{
		Flows:      make([]ParamFlow, len(params)),
		AppendsVia: map[int]bool{},
		PutsParam:  map[int]bool{},
	}
	for i, o := range params {
		if o != nil && o.Name() != "_" && refBearing(o.Type()) {
			st.pidx[o] = i
			st.taint[o] = 1 << uint(i%64)
		}
	}
	st.exemptWallclock = sanctionedClockScope(fi.pkg)
	st.propagate(fi.decl.Body)
	st.effects(fi.decl.Body)
	return st.sum
}

// sanctionedClockScope reports whether pkg may read the wall clock: the
// observability layer and command front-ends (the same scope rule the
// wallclock analyzer applies directly).
func sanctionedClockScope(pkg *Package) bool {
	return pkg.RelPath == "internal/obs" ||
		strings.HasPrefix(pkg.RelPath, "cmd/") ||
		pkg.Types.Name() == "main"
}

type intraState struct {
	prog  *Program
	fi    *funcInfo
	info  *types.Info
	pidx  map[types.Object]int // parameter object → summary index
	taint map[types.Object]uint64
	sum   *Summary

	exemptWallclock bool
}

// propagate runs the local taint fixpoint: every binding whose RHS carries
// a parameter alias taints its LHS root, including aliases a callee stores
// through a pointer argument (ParamFlow.ToParams).
func (st *intraState) propagate(body *ast.BlockStmt) {
	for round := 0; round < 32; round++ {
		changed := false
		mark := func(obj types.Object, bits uint64) {
			if obj == nil || bits == 0 {
				return
			}
			if st.taint[obj]|bits != st.taint[obj] {
				st.taint[obj] |= bits
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				st.bindAssign(s, mark)
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						mark(st.info.Defs[name], st.exprTaint(s.Values[i]))
					} else if len(s.Values) == 1 {
						mark(st.info.Defs[name], st.exprTaint(s.Values[0]))
					}
				}
			case *ast.RangeStmt:
				st.bindRange(s, mark)
			case *ast.CallExpr:
				st.bindCallFlows(s, mark)
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// bindAssign applies one assignment's taint transfer to local roots.
// Non-local roots are recorded later by the effects pass.
func (st *intraState) bindAssign(s *ast.AssignStmt, mark func(types.Object, uint64)) {
	for i, lhs := range s.Lhs {
		var bits uint64
		if len(s.Rhs) == len(s.Lhs) {
			bits = st.exprTaint(s.Rhs[i])
		} else if len(s.Rhs) == 1 {
			bits = st.exprTaint(s.Rhs[0]) // tuple: every result may alias
		}
		if bits == 0 {
			continue
		}
		if t := st.info.TypeOf(lhs); t != nil && !refBearing(t) {
			continue
		}
		if root := rootIdent(lhs); root != nil {
			mark(objOf(st.info, root), bits)
		}
	}
}

// bindRange taints range variables drawn from a tainted collection.
func (st *intraState) bindRange(s *ast.RangeStmt, mark func(types.Object, uint64)) {
	bits := st.exprTaint(s.X)
	if bits == 0 {
		return
	}
	markExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		if t := st.info.TypeOf(e); t != nil && !refBearing(t) {
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			mark(objOf(st.info, id), bits)
		}
	}
	markExpr(s.Key)
	markExpr(s.Value)
}

// bindCallFlows applies a callee's ToParams flows: an alias of a tainted
// argument stored by the callee into another argument's pointee taints
// that argument's local root here.
func (st *intraState) bindCallFlows(call *ast.CallExpr, mark func(types.Object, uint64)) {
	callee := staticCallee(st.info, call)
	if callee == nil {
		return
	}
	sum := st.prog.SummaryOf(callee)
	if sum == nil {
		return
	}
	args := callArgs(st.info, call)
	for i, arg := range args {
		bits := st.exprTaint(arg)
		if bits == 0 {
			continue
		}
		fl := sum.flow(argIndex(callee, i))
		if fl.ToParams == 0 {
			continue
		}
		for j, target := range args {
			if fl.ToParams&(1<<uint(argIndex(callee, j)%64)) == 0 {
				continue
			}
			if root := rootIdent(stripAddr(target)); root != nil {
				mark(objOf(st.info, root), bits)
			}
		}
	}
}

// stripAddr unwraps a leading &.
func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		return u.X
	}
	return e
}

// exprTaint returns the parameter bitset an expression's value may alias.
func (st *intraState) exprTaint(e ast.Expr) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		return st.taint[objOf(st.info, x)]
	case *ast.ParenExpr:
		return st.exprTaint(x.X)
	case *ast.SelectorExpr:
		if t := st.info.TypeOf(x); t != nil && !refBearing(t) {
			return 0 // scalar field of a tainted struct carries no alias
		}
		if sel := st.info.Selections[x]; sel != nil && sel.Kind() != types.FieldVal {
			return 0 // method values do not alias data
		}
		return st.exprTaint(x.X)
	case *ast.IndexExpr:
		if t := st.info.TypeOf(x); t != nil && !refBearing(t) {
			return 0
		}
		return st.exprTaint(x.X)
	case *ast.SliceExpr:
		return st.exprTaint(x.X)
	case *ast.StarExpr:
		return st.exprTaint(x.X)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return st.exprTaint(x.X)
		}
		return 0
	case *ast.TypeAssertExpr:
		return st.exprTaint(x.X)
	case *ast.CompositeLit:
		var bits uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			bits |= st.exprTaint(el)
		}
		return bits
	case *ast.CallExpr:
		return st.callTaint(x)
	}
	return 0
}

// callTaint models value flow through calls: append and conversions by
// their copy semantics, module callees by their ToResult summaries, and
// everything else (stdlib, dynamic dispatch) as alias-free — the engine's
// documented optimism (DESIGN.md §18).
func (st *intraState) callTaint(call *ast.CallExpr) uint64 {
	// Conversions: []byte(s)/string(b) copy; same-shape reference
	// conversions (e.g. json.RawMessage(b)) keep the alias.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		src := st.info.TypeOf(call.Args[0])
		if refBearing(tv.Type) && src != nil && refBearing(src) {
			// string→[]byte and []byte→string copy even though one side
			// is reference-shaped.
			if isString(src) || isString(tv.Type) {
				return 0
			}
			return st.exprTaint(call.Args[0])
		}
		return 0
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := objOf(st.info, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				return st.appendTaint(call)
			case "min", "max", "len", "cap", "copy", "make", "new", "clear", "delete":
				return 0
			default:
				return 0
			}
		}
	}
	callee := staticCallee(st.info, call)
	if callee == nil {
		return 0
	}
	sum := st.prog.SummaryOf(callee)
	if sum == nil {
		return 0
	}
	var bits uint64
	args := callArgs(st.info, call)
	for i, arg := range args {
		if sum.flow(argIndex(callee, i)).ToResult {
			bits |= st.exprTaint(arg)
		}
	}
	return bits
}

// appendTaint: append(dst, src...) with scalar elements copies src (the
// sanctioned ownership transfer); appending reference-bearing elements —
// or the slice header itself as an element — retains the alias.
func (st *intraState) appendTaint(call *ast.CallExpr) uint64 {
	if len(call.Args) == 0 {
		return 0
	}
	bits := st.exprTaint(call.Args[0])
	elemScalar := false
	if t := st.info.TypeOf(call.Args[0]); t != nil {
		if sl, ok := t.Underlying().(*types.Slice); ok {
			elemScalar = !refBearing(sl.Elem())
		}
	}
	for _, arg := range call.Args[1:] {
		if call.Ellipsis.IsValid() && elemScalar {
			continue // spread copy of scalar elements: ownership transferred
		}
		bits |= st.exprTaint(arg)
	}
	return bits
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// effects performs the single post-fixpoint pass that fills in the
// summary: ambient effects and where parameter aliases escape to.
func (st *intraState) effects(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SelectorExpr:
			st.noteBannedRef(s)
		case *ast.SendStmt:
			st.sum.EmitsChan = true
			st.escape(st.exprTaint(s.Value))
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				st.result(res)
			}
		case *ast.AssignStmt:
			st.noteStores(s)
		case *ast.CallExpr:
			st.noteCall(s)
		}
		return true
	})
}

// noteBannedRef records wall-clock and global-rand references — calls and
// function values alike, since both reach the effect.
func (st *intraState) noteBannedRef(sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := st.info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	// Only selected functions carry the effect: referring to the type
	// *rand.Rand or a constant like time.Microsecond is exactly how the
	// sanctioned seeded/trace-derived code is written.
	if _, isFunc := st.info.Uses[sel.Sel].(*types.Func); !isFunc {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if wallclockBanned[sel.Sel.Name] && !st.exemptWallclock && st.sum.WallclockVia == "" {
			st.sum.WallclockVia = "time." + sel.Sel.Name
		}
	case "math/rand", "math/rand/v2":
		if !globalrandAllowed[sel.Sel.Name] && st.sum.GlobalrandVia == "" {
			st.sum.GlobalrandVia = "rand." + sel.Sel.Name
		}
	}
}

// escape marks every parameter in bits as heap-escaping.
func (st *intraState) escape(bits uint64) {
	for i := range st.sum.Flows {
		if bits&(1<<uint(i%64)) != 0 {
			st.sum.Flows[i].Escapes = true
		}
	}
}

// result marks parameters aliased by a returned expression, and detects
// the pooled-lease pattern (returning a live Pool.Get obligation).
func (st *intraState) result(res ast.Expr) {
	bits := st.exprTaint(res)
	for i := range st.sum.Flows {
		if bits&(1<<uint(i%64)) != 0 {
			st.sum.Flows[i].ToResult = true
		}
	}
	if st.pooledExpr(res) {
		st.sum.ReturnsPooled = true
	}
}

// pooledExpr reports whether e is a live pool obligation: a direct
// sync.Pool.Get (possibly type-asserted), a call to a lease function, or a
// local that such a value was assigned to.
func (st *intraState) pooledExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return st.pooledExpr(x.X)
	case *ast.CallExpr:
		if isSyncPoolMethod(st.info, x, "Get") {
			return true
		}
		if callee := staticCallee(st.info, x); callee != nil {
			if sum := st.prog.SummaryOf(callee); sum != nil && sum.ReturnsPooled {
				return true
			}
		}
	case *ast.Ident:
		obj := objOf(st.info, x)
		if obj == nil {
			return false
		}
		return st.pooledLocal(obj)
	}
	return false
}

// pooledLocal reports whether obj was (syntactically) assigned a pool
// obligation anywhere in the function.
func (st *intraState) pooledLocal(obj types.Object) bool {
	found := false
	ast.Inspect(st.fi.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || objOf(st.info, id) != obj {
				continue
			}
			if st.pooledRHS(as.Rhs[i]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// pooledRHS is pooledExpr without the ident case (avoiding recursion
// through chained locals; one level of naming is the repo idiom).
func (st *intraState) pooledRHS(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return st.pooledRHS(x.X)
	case *ast.CallExpr:
		if isSyncPoolMethod(st.info, x, "Get") {
			return true
		}
		if callee := staticCallee(st.info, x); callee != nil {
			if sum := st.prog.SummaryOf(callee); sum != nil && sum.ReturnsPooled {
				return true
			}
		}
	}
	return false
}

// noteStores records alias escapes through assignment targets: package
// variables and pointer parameters receive caller-visible aliases; append
// through a parameter is the map-order accumulation effect.
func (st *intraState) noteStores(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// append through a parameter (receiver field or *[]T deref).
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(st.info, call) {
			if root := rootIdent(lhs); root != nil {
				if idx, isParam := st.pidx[objOf(st.info, root)]; isParam {
					if _, plain := lhs.(*ast.Ident); !plain {
						st.sum.AppendsVia[idx] = true
					}
				}
			}
		}
		bits := st.exprTaint(rhs)
		if bits == 0 {
			continue
		}
		if t := st.info.TypeOf(lhs); t != nil && !refBearing(t) {
			continue
		}
		root := rootIdent(lhs)
		if root == nil {
			st.escape(bits) // store through an unrooted expression
			continue
		}
		obj := objOf(st.info, root)
		switch {
		case obj == nil:
			st.escape(bits)
		case st.isPackageLevel(obj):
			st.escape(bits)
		default:
			if idx, isParam := st.pidx[obj]; isParam {
				if _, plain := lhs.(*ast.Ident); !plain {
					// Store through a parameter's pointee: the alias is
					// now visible to the caller via that argument.
					for src := range st.sum.Flows {
						if bits&(1<<uint(src%64)) != 0 {
							st.sum.Flows[src].ToParams |= 1 << uint(idx%64)
						}
					}
				}
			}
		}
	}
}

// isPackageLevel reports whether obj is a package-scoped variable.
func (st *intraState) isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == st.fi.pkg.Types.Scope()
}

// noteCall records call-mediated effects: ordered output, transitive
// clock/rand reach, pool Put transfer, and argument-alias escapes.
func (st *intraState) noteCall(call *ast.CallExpr) {
	// fmt printers and io.Writer writes — the map-order output effect.
	if pkg, name, ok := pkgFuncCall(st.info, call); ok {
		if pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			st.sum.EmitsWriter = true
		}
	} else if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
		if implementsWriter(st.info.TypeOf(sel.X)) {
			st.sum.EmitsWriter = true
		}
	}
	// sync.Pool.Put on a parameter transfers the obligation to callers.
	if isSyncPoolMethod(st.info, call, "Put") && len(call.Args) == 1 {
		if root := rootIdent(stripAddr(call.Args[0])); root != nil {
			if idx, isParam := st.pidx[objOf(st.info, root)]; isParam {
				st.sum.PutsParam[idx] = true
			}
		}
	}
	callee := staticCallee(st.info, call)
	if callee == nil {
		return
	}
	sum := st.prog.SummaryOf(callee)
	if sum == nil {
		return
	}
	if sum.EmitsWriter {
		st.sum.EmitsWriter = true
	}
	if sum.EmitsChan {
		st.sum.EmitsChan = true
	}
	if sum.WallclockVia != "" && !st.exemptWallclock && st.sum.WallclockVia == "" {
		st.sum.WallclockVia = chainWitness(callee.Name(), sum.WallclockVia)
	}
	if sum.GlobalrandVia != "" && st.sum.GlobalrandVia == "" {
		st.sum.GlobalrandVia = chainWitness(callee.Name(), sum.GlobalrandVia)
	}
	args := callArgs(st.info, call)
	for i, arg := range args {
		ci := argIndex(callee, i)
		bits := st.exprTaint(arg)
		if bits != 0 && sum.flow(ci).Escapes {
			st.escape(bits)
		}
		root := rootIdent(stripAddr(arg))
		if root == nil {
			continue
		}
		obj := objOf(st.info, root)
		if idx, isParam := st.pidx[obj]; isParam {
			if sum.PutsParam[ci] {
				st.sum.PutsParam[idx] = true
			}
			if sum.AppendsVia[ci] {
				st.sum.AppendsVia[idx] = true
			}
		}
	}
}

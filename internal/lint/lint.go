package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding: a position, a machine-readable code (the
// analyzer name, or one of the framework codes "badignore"/"unusedignore"),
// and a human-readable message.
type Diagnostic struct {
	File    string `json:"file"` // module-root-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// String renders the diagnostic in the classic file:line:col: code: message
// form every editor understands.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Code, d.Message)
}

// Analyzer is one self-contained check. Name doubles as the diagnostic code
// and the suppression-comment key.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// RelPath is the package path relative to the module root ("." for the
	// root package), the key analyzers use for their scope rules so fixtures
	// under any module name exercise the same logic as the real tree.
	RelPath string

	// Prog is the whole-module interprocedural view: function summaries
	// computed bottom-up over the package set before any analyzer ran.
	Prog *Program

	report func(Diagnostic)
	relDir string
}

// PkgName returns the package's declared name ("main" for commands).
func (p *Pass) PkgName() string { return p.Pkg.Name() }

// Reportf emits a diagnostic at pos under the pass's analyzer code.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:    relFile(p.relDir, position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Code:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Analyzer{}
)

// Register adds a to the global analyzer set. Analyzers call it from init,
// so importing the package assembles the full catalog.
func Register(a *Analyzer) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[a.Name]; dup {
		panic("lint: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// Analyzers returns the registered analyzers sorted by name.
func Analyzers() []*Analyzer {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named analyzer, or nil.
func Lookup(name string) *Analyzer {
	registryMu.Lock()
	defer registryMu.Unlock()
	return registry[name]
}

// Run applies every analyzer to every package, applies suppression
// comments, and returns the surviving diagnostics sorted by position then
// code. Suppressed diagnostics are dropped; malformed or unused
// suppressions become diagnostics of their own (codes "badignore" and
// "unusedignore").
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers, nil)
	return diags
}

// Timing is one row of a timed run: how long an analyzer (or the shared
// summary engine, reported as "summaries") spent across all packages.
type Timing struct {
	Name  string
	Nanos int64
}

// RunTimed is Run with optional per-analyzer wall-time accounting. clock
// returns a monotonic nanosecond reading and is injected by the driver —
// this package never reads the clock itself, holding the linter to the
// wallclock rule it enforces. A nil clock skips accounting.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, clock func() int64) ([]Diagnostic, []Timing) {
	now := func() int64 { return 0 }
	if clock != nil {
		now = clock
	}
	var raw []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	t0 := now()
	prog := BuildProgram(pkgs)
	elapsed := map[string]int64{"summaries": now() - t0}
	var sup suppressions
	for _, pkg := range pkgs {
		sup.collect(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				Prog:     prog,
				relDir:   pkg.ModRoot,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			ta := now()
			a.Run(pass)
			elapsed[a.Name] += now() - ta
		}
	}
	out := raw[:0]
	for _, d := range raw {
		if sup.matches(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, sup.problems(ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	// Nested constructs (e.g. a map range inside a map range) can attribute
	// one site to two scopes; identical diagnostics collapse to one.
	dedup := out[:0]
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			dedup = append(dedup, d)
		}
	}
	var timings []Timing
	if clock != nil {
		timings = append(timings, Timing{Name: "summaries", Nanos: elapsed["summaries"]})
		for _, a := range analyzers {
			timings = append(timings, Timing{Name: a.Name, Nanos: elapsed[a.Name]})
		}
		sort.SliceStable(timings, func(i, j int) bool { return timings[i].Nanos > timings[j].Nanos })
	}
	return dedup, timings
}

// IgnorePrefix is the suppression-comment marker: //tdatlint:ignore CODE reason.
const IgnorePrefix = "tdatlint:ignore"

// CountIgnores returns the number of suppressed codes (well-formed or not)
// across pkgs — the quantity scripts/lintcheck.sh ratchets against
// scripts/lintfloor.txt. A multi-code line (//tdatlint:ignore a,b reason)
// counts once per code: each code is a separate waiver. Parsing the ASTs,
// rather than grepping, keeps documentation examples and string literals
// out of the count.
func CountIgnores(pkgs []*Package) int {
	var s suppressions
	for _, pkg := range pkgs {
		s.collect(pkg)
	}
	return len(s.list)
}

// IgnoreList renders every suppression across pkgs as a sorted
// "file:line:col: code: reason" line — one line per suppressed code, so
// scripts/lintcheck.sh can name the analyzer behind each new waiver when
// the ratchet fails.
func IgnoreList(pkgs []*Package) []string {
	var s suppressions
	for _, pkg := range pkgs {
		s.collect(pkg)
	}
	out := make([]string, 0, len(s.list))
	for _, ig := range s.list {
		code := ig.code
		if ig.bad != "" {
			code = "badignore"
		}
		out = append(out, fmt.Sprintf("%s:%d:%d: %s: %s", ig.file, ig.line, ig.col, code, ig.reason))
	}
	sort.Strings(out)
	return out
}

// ignore is one parsed suppression comment.
type ignore struct {
	file   string // module-root-relative
	line   int    // line the comment sits on
	col    int
	code   string
	reason string
	bad    string // non-empty: malformed, with explanation
	used   bool
}

// suppressions indexes the //tdatlint:ignore comments of a package set.
type suppressions struct {
	list []*ignore
	// byKey maps file -> line -> ignores on that line.
	byKey map[string]map[int][]*ignore
}

// collect parses the suppression comments out of pkg's files. A comment
// carrying several comma-separated codes contributes one ignore entry per
// code, so matching and unused-detection are per-code.
func (s *suppressions) collect(pkg *Package) {
	if s.byKey == nil {
		s.byKey = map[string]map[int][]*ignore{}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				igs, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, ig := range igs {
					ig.file = relFile(pkg.ModRoot, pos.Filename)
					ig.line = pos.Line
					ig.col = pos.Column
					s.list = append(s.list, ig)
					if s.byKey[ig.file] == nil {
						s.byKey[ig.file] = map[int][]*ignore{}
					}
					s.byKey[ig.file][ig.line] = append(s.byKey[ig.file][ig.line], ig)
				}
			}
		}
	}
}

// parseIgnore recognizes a //tdatlint:ignore comment, reporting whether the
// comment is a suppression at all. The code field may carry several codes
// separated by commas (//tdatlint:ignore maporder,wallclock reason); each
// becomes its own entry so suppression matching and the unusedignore check
// work per-code, not per-line. Malformed suppressions come back with a
// non-empty bad field.
func parseIgnore(text string) ([]*ignore, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, false // /* */ comments are not suppression carriers
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, IgnorePrefix)
	if !ok {
		return nil, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. tdatlint:ignorexyz — not ours
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return []*ignore{{bad: "missing code: want //tdatlint:ignore CODE reason"}}, true
	}
	codes := strings.Split(fields[0], ",")
	reason := strings.Join(fields[1:], " ")
	out := make([]*ignore, 0, len(codes))
	for _, code := range codes {
		switch {
		case code == "":
			out = append(out, &ignore{bad: fmt.Sprintf("empty code in multi-code suppression %q", fields[0])})
		case reason == "":
			out = append(out, &ignore{code: code, bad: fmt.Sprintf("missing reason for suppressed code %q", code)})
		default:
			out = append(out, &ignore{code: code, reason: reason})
		}
	}
	return out, true
}

// matches reports whether d is suppressed by an ignore on its own line or
// the line directly above, consuming the ignore.
func (s *suppressions) matches(d Diagnostic) bool {
	lines := s.byKey[d.File]
	for _, ln := range []int{d.Line, d.Line - 1} {
		for _, ig := range lines[ln] {
			if ig.bad == "" && ig.code == d.Code {
				ig.used = true
				return true
			}
		}
	}
	return false
}

// problems returns diagnostics for malformed ignores and for well-formed
// ignores that suppressed nothing (only for codes whose analyzer actually
// ran, so a filtered -analyzers run never cries wolf).
func (s *suppressions) problems(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ig := range s.list {
		switch {
		case ig.bad != "":
			out = append(out, Diagnostic{
				File: ig.file, Line: ig.line, Col: ig.col,
				Code: "badignore", Message: ig.bad,
			})
		case !ig.used && ran[ig.code]:
			out = append(out, Diagnostic{
				File: ig.file, Line: ig.line, Col: ig.col,
				Code:    "unusedignore",
				Message: fmt.Sprintf("suppression for %q matches no diagnostic; delete it (suppressions only ratchet down)", ig.code),
			})
		}
	}
	return out
}

// relFile rebases filename onto the module root; absolute paths outside the
// root (which should not happen) pass through unchanged.
func relFile(root, filename string) string {
	if root == "" {
		return filename
	}
	if rel, ok := strings.CutPrefix(filename, root+"/"); ok {
		return rel
	}
	return filename
}

package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-module view the interprocedural analyzers share: an
// index of every declared function and method plus a bottom-up effect
// summary for each, computed to a cycle-tolerant fixpoint before any
// analyzer runs. Summaries are keyed by a stable string ID rather than
// object identity because each package is type-checked separately — the
// *types.Func an importer materializes for flows.AddSeq is not the same
// object the flows package's own check produced.
type Program struct {
	pkgs []*Package
	// byImportPath resolves a callee's defining package to its loaded
	// module-relative path ("" for functions outside the module).
	byImportPath map[string]*Package
	// funcs holds every function and method declared in the module, in a
	// deterministic order (package import path, then source position).
	funcs []*funcInfo
	// summaries maps funcID → converged summary.
	summaries map[string]*Summary
}

// funcInfo pairs one declared function with its package context.
type funcInfo struct {
	id   string
	decl *ast.FuncDecl
	pkg  *Package
}

// Summary is the bottom-up effect abstraction of one function — everything
// a caller needs to reason about a call without reading the body. All
// fields grow monotonically across fixpoint rounds.
type Summary struct {
	// WallclockVia is non-empty when the function transitively reads the
	// wall clock through non-exempt code; it holds a witness chain such as
	// "stamp → time.Now". Functions defined in sanctioned scope
	// (internal/obs, cmd/, package main) always summarize clean.
	WallclockVia string
	// GlobalrandVia is the math/rand analogue: non-empty when the function
	// transitively draws from the process-global source.
	GlobalrandVia string

	// EmitsWriter marks a function that (transitively) writes to an
	// io.Writer or fmt printer; EmitsChan one that sends on a channel.
	// Calling either inside a map iteration leaks map order into output.
	EmitsWriter bool
	EmitsChan   bool
	// AppendsVia marks parameters (receiver first, see paramObjs) through
	// which the function appends into caller-visible storage — *[]T
	// parameters and pointer receivers whose fields accumulate.
	AppendsVia map[int]bool

	// Flows[i] describes where a view (alias) of parameter i may travel.
	Flows []ParamFlow

	// ReturnsPooled marks a function whose result is a live sync.Pool.Get
	// obligation (the getStream/newTable lease pattern); PutsParam marks
	// parameters the function returns to a pool on at least one path.
	ReturnsPooled bool
	PutsParam     map[int]bool
}

// ParamFlow is the alias-escape abstraction of one parameter.
type ParamFlow struct {
	// Escapes: a view of the parameter reaches a heap location the caller
	// cannot see (package-level variable, channel, or an escaping callee).
	Escapes bool
	// ToResult: a view of the parameter may be returned.
	ToResult bool
	// ToParams: bitset of parameters into whose pointee a view may be
	// stored (packet.DecodeInto flows param 0 into param 1).
	ToParams uint64
}

func (s *Summary) flow(i int) ParamFlow {
	if s == nil || i < 0 || i >= len(s.Flows) {
		return ParamFlow{}
	}
	return s.Flows[i]
}

func (s *Summary) equal(o *Summary) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.WallclockVia != o.WallclockVia || s.GlobalrandVia != o.GlobalrandVia ||
		s.EmitsWriter != o.EmitsWriter || s.EmitsChan != o.EmitsChan ||
		s.ReturnsPooled != o.ReturnsPooled ||
		len(s.Flows) != len(o.Flows) ||
		len(s.AppendsVia) != len(o.AppendsVia) || len(s.PutsParam) != len(o.PutsParam) {
		return false
	}
	for i := range s.Flows {
		if s.Flows[i] != o.Flows[i] {
			return false
		}
	}
	for k := range s.AppendsVia {
		if !o.AppendsVia[k] {
			return false
		}
	}
	for k := range s.PutsParam {
		if !o.PutsParam[k] {
			return false
		}
	}
	return true
}

// BuildProgram indexes every function of pkgs and runs the summary fixpoint.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		byImportPath: map[string]*Package{},
		summaries:    map[string]*Summary{},
	}
	prog.pkgs = pkgs
	for _, pkg := range pkgs {
		prog.byImportPath[pkg.ImportPath] = pkg
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs = append(prog.funcs, &funcInfo{id: funcID(obj), decl: fd, pkg: pkg})
			}
		}
	}
	// Deterministic worklist order: Load sorts packages by import path and
	// files arrive in go-list order, so the slice is already stable; sort
	// by ID anyway so the fixpoint (and its witness strings) cannot depend
	// on enumeration details.
	sort.SliceStable(prog.funcs, func(i, j int) bool { return prog.funcs[i].id < prog.funcs[j].id })
	// Cycle-tolerant fixpoint: recompute every summary from the current
	// callee summaries until a full round changes nothing. Every summary
	// field grows monotonically and witness chains are truncated, so the
	// lattice is finite and the loop terminates; recursion (direct or
	// mutual) simply converges at the loop head.
	for round := 0; ; round++ {
		changed := false
		for _, fi := range prog.funcs {
			ns := prog.summarize(fi)
			if !ns.equal(prog.summaries[fi.id]) {
				prog.summaries[fi.id] = ns
				changed = true
			}
		}
		if !changed || round > 64 {
			break
		}
	}
	return prog
}

// SummaryOf returns the converged summary for a resolved callee, or nil for
// functions outside the module (stdlib, interface methods without bodies).
func (prog *Program) SummaryOf(fn *types.Func) *Summary {
	if prog == nil || fn == nil {
		return nil
	}
	return prog.summaries[funcID(fn)]
}

// RelPathOf returns the module-relative path of the package defining fn
// ("" when fn is not a module function).
func (prog *Program) RelPathOf(fn *types.Func) string {
	if prog == nil || fn == nil || fn.Pkg() == nil {
		return ""
	}
	if pkg := prog.byImportPath[fn.Pkg().Path()]; pkg != nil {
		return pkg.RelPath
	}
	return ""
}

// funcID builds the stable cross-package key for a function or method:
// importpath.(Recv).Name. The receiver type is spelled without package
// qualifiers — the path already scopes it.
func funcID(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := types.TypeString(t, func(*types.Package) string { return "" })
		// Drop any type-parameter brackets so generic methods key the same
		// from every instantiation site.
		if i := strings.IndexByte(name, '['); i > 0 {
			name = name[:i]
		}
		return pkgPath + ".(" + name + ")." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// paramObjs lists the taint-relevant parameter objects of fd: the receiver
// first (when present), then each declared parameter. The returned slice
// is index-aligned with Summary.Flows/AppendsVia/PutsParam.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil) // unnamed: position reserved
				continue
			}
			for _, name := range field.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// callArgs aligns a call's argument expressions with the callee's
// paramObjs indexing: for method calls the receiver expression comes
// first. Variadic tail arguments all map to the last parameter index.
func callArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	return append(out, call.Args...)
}

// argIndex maps the i-th callArgs entry to a callee parameter index, given
// the callee signature (receiver counts as parameter 0 when present).
// Variadic overflow clamps to the last parameter.
func argIndex(fn *types.Func, i int) int {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return i
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n == 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// staticCallee resolves a call to the function or method it statically
// invokes: package-level functions, methods with concrete receivers, and
// locally-declared functions. Interface dispatch, function-typed fields,
// and builtins return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := objOf(info, fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if f, ok := s.Obj().(*types.Func); ok {
				// Interface methods have no body to summarize; returning
				// them is harmless (no summary ⇒ assumed effect-free).
				return f
			}
			return nil
		}
		if f, ok := objOf(info, fun.Sel).(*types.Func); ok {
			return f // pkg.Func
		}
	}
	return nil
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// refBearing reports whether values of t can carry an alias of another
// value's backing store: pointers, slices, maps, channels, functions, and
// interfaces do; strings and arrays copy; structs and named types inherit
// from their contents. depth bounds recursive types.
func refBearing(t types.Type) bool { return refBearingDepth(t, 0) }

func refBearingDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return true // unresolvable or too deep: assume aliasing
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return false
	case *types.Array:
		return refBearingDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refBearingDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return true
}

// chainWitness composes a caller-side witness: "callee → root" when the
// callee reaches the effect directly, "callee → … → root" otherwise, so
// chains stay bounded (and the fixpoint terminates) at any call depth.
func chainWitness(callee string, calleeVia string) string {
	root := calleeVia
	direct := true
	if i := strings.LastIndex(calleeVia, "→"); i >= 0 {
		root = strings.TrimSpace(calleeVia[i+len("→"):])
		direct = false
	}
	if direct {
		return fmt.Sprintf("%s → %s", callee, root)
	}
	return fmt.Sprintf("%s → … → %s", callee, root)
}

// isSyncPoolMethod reports whether call invokes name ("Get"/"Put") on a
// sync.Pool value or pointer.
func isSyncPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

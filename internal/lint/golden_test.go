package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// loadFixture loads the fixture mini-module once for every golden test.
var loadFixture = sync.OnceValues(func() ([]*Package, error) {
	return Load("testdata/mod")
})

// render formats diagnostics the way the goldens store them.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against testdata/golden/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestAnalyzerGoldens runs each analyzer alone over the fixture module and
// pins its exact diagnostics. Every analyzer must both trigger (non-empty
// golden) and stay quiet on the fixture's clean idioms (pinned by the
// golden being exactly these lines and no more).
func TestAnalyzerGoldens(t *testing.T) {
	pkgs, err := loadFixture()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			got := render(Run(pkgs, []*Analyzer{a}))
			if got == "" {
				t.Fatalf("analyzer %s found nothing in the fixture module; every analyzer needs a triggering fixture", a.Name)
			}
			checkGolden(t, a.Name, got)
		})
	}
}

// TestAllGolden runs the full analyzer set — the driver's default — and
// pins the combined, suppression-filtered output, including the badignore
// and unusedignore framework diagnostics.
func TestAllGolden(t *testing.T) {
	pkgs, err := loadFixture()
	if err != nil {
		t.Fatal(err)
	}
	got := render(Run(pkgs, Analyzers()))
	for _, code := range []string{"badignore", "unusedignore"} {
		if !strings.Contains(got, code) {
			t.Errorf("combined run should exercise %s", code)
		}
	}
	if strings.Contains(got, "ignored.go:12") {
		t.Error("the documented suppression in Jitter should have silenced its diagnostic")
	}
	checkGolden(t, "all", got)
}

// TestRunDeterministic is the metamorphic check: loading and linting the
// same tree twice yields byte-identical diagnostics — the linter holds
// itself to the determinism bar it enforces.
func TestRunDeterministic(t *testing.T) {
	first, err := Load("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	second, err := Load("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	a := render(Run(first, Analyzers()))
	b := render(Run(second, Analyzers()))
	if a != b {
		t.Errorf("two identical runs diverge:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestSelfClean lints this repository with its own analyzers — the tree
// must stay clean, mirroring scripts/lintcheck.sh in-process so the gate
// also binds plain `go test ./...` runs.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; covered by scripts/lintcheck.sh in CI")
	}
	pkgs, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) > 0 {
		t.Errorf("repository is not lint-clean:\n%s", render(diags))
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgFuncCall resolves call to a package-level function of an imported
// package, returning the package's import path and the function name.
// Method calls and local calls return ok=false.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// rootIdent unwraps selector, index, slice, paren, and star chains down to
// the base identifier: rootIdent(s.ranges[i]) == s. Non-ident roots (e.g.
// a call result) return nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object via Uses then Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// ioWriter is a structural stand-in for io.Writer, built once so analyzers
// can test "does this type implement Write([]byte) (int, error)" without
// requiring the package under analysis to import io.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice)),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType),
		), false)
	fn := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t or *t satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// Package lint is T-DAT's in-repo static-analysis framework: a stdlib-only
// (go/parser + go/ast + go/types) analog of go/analysis, purpose-built to
// check the correctness contracts the compiler cannot see.
//
// T-DAT's credibility rests on source-level invariants that ordinary tests
// only catch after they have shipped a flaky diff:
//
//   - the analyzer is passive — all time must come from the trace, never the
//     wall clock (PAPER.md §III); enforced by the wallclock analyzer,
//   - reports are byte-identical at any worker count; map iteration order
//     must never leak into output (the determinism contract behind the
//     ordered merge); enforced by the maporder analyzer,
//   - simulators are seed-reproducible so the ground-truth oracle can score
//     them; enforced by the globalrand analyzer,
//   - timerange.Set operations are non-mutating, so the quick-check algebra
//     laws quantify over real behavior; enforced by the setpurity analyzer,
//   - internal/obs keeps its nil-fast-path contract (a nil receiver is a
//     no-op); enforced by the nilobs analyzer.
//
// Analyzers self-register via Register in an init function and run over
// type-checked packages produced by Load. Diagnostics carry a
// machine-readable code (the analyzer name) and can be suppressed, one site
// at a time, with an explanatory comment:
//
//	//tdatlint:ignore wallclock the self-profile measures the analyzer, not the trace
//
// placed on the flagged line or the line directly above it. A suppression
// without a code or a reason is itself a diagnostic (badignore), and a
// suppression that no longer matches anything is reported too
// (unusedignore), so the ignore inventory can only ratchet down — see
// scripts/lintcheck.sh.
//
// The driver lives in cmd/tdatlint.
package lint
